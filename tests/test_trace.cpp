// Flight recorder, Chrome trace export, per-lock metrics, and the GWC
// invariant checker — the observability layer end to end: unit behavior of
// the ring/histogram/JSON pieces, then whole-scenario runs proving the
// recorder captures the paper's figure-7 interaction and the checker
// accepts real runs while rejecting doctored streams.
#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dsm/types.hpp"
#include "stats/histogram.hpp"
#include "stats/json.hpp"
#include "stats/lock_stats.hpp"
#include "trace/chrome_export.hpp"
#include "trace/gwc_checker.hpp"
#include "workloads/counter.hpp"
#include "workloads/scenario_fig7.hpp"

namespace optsync {
namespace {

using trace::Event;
using trace::EventKind;
using trace::GwcChecker;
using trace::Recorder;

Event make_event(EventKind kind, sim::Time t = 0) {
  Event e;
  e.kind = kind;
  e.t = t;
  return e;
}

// ------------------------------------------------------------- recorder ---

TEST(Recorder, RetainsInOrderAndCounts) {
  Recorder rec(8);
  for (int i = 0; i < 5; ++i) {
    rec.record(make_event(EventKind::kNodeApply, static_cast<sim::Time>(i)));
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.count(EventKind::kNodeApply), 5u);
  EXPECT_EQ(rec.count(EventKind::kRollback), 0u);
  sim::Time expect = 0;
  rec.for_each([&expect](const Event& e) { EXPECT_EQ(e.t, expect++); });
}

TEST(Recorder, RingEvictsOldestWhenFull) {
  Recorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(make_event(EventKind::kNetDeliver, static_cast<sim::Time>(i)));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::vector<sim::Time> times;
  rec.for_each([&times](const Event& e) { times.push_back(e.t); });
  EXPECT_EQ(times, (std::vector<sim::Time>{6, 7, 8, 9}));
}

TEST(Recorder, SinksSeeEveryEventDespiteEviction) {
  Recorder rec(2);
  std::uint64_t seen = 0;
  rec.add_sink([&seen](const Event&) { ++seen; });
  for (int i = 0; i < 100; ++i) rec.record(make_event(EventKind::kRollback));
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(rec.size(), 2u);
}

TEST(Recorder, ClearResetsRetentionAndCounters) {
  Recorder rec(8);
  rec.record(make_event(EventKind::kLockAcquire));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.count(EventKind::kLockAcquire), 0u);
}

TEST(Recorder, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(EventKind::kHistoryVeto); ++k) {
    EXPECT_FALSE(
        trace::event_kind_name(static_cast<EventKind>(k)).empty());
  }
}

// ------------------------------------------------------------ histogram ---

TEST(Histogram, SmallValuesAreExact) {
  stats::Histogram h;
  for (std::int64_t v : {0, 1, 2, 3, 7, 15}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(1.0), 15);
}

TEST(Histogram, PercentilesWithinRelativeErrorBound) {
  stats::Histogram h;
  for (std::int64_t v = 1; v <= 10'000; ++v) h.record(v);
  // Log bucketing with 16 sub-buckets guarantees <= 6.25% relative error.
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = q * 10'000;
    const double got = static_cast<double>(h.percentile(q));
    EXPECT_NEAR(got, exact, exact * 0.0625 + 1)
        << "q=" << q << " got " << got;
  }
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

// Regression: percentile() computed the 1-based rank as ceil(q * count)
// with no epsilon, and 0.95 * 20 evaluates to 19.000000000000004 in
// binary floating point — ceil() jumped to rank 20, reporting p95 of a
// 20-sample distribution as its MAXIMUM. Exact-rank quantiles over small
// sample counts are the adversarial case.
TEST(Histogram, ExactRankQuantilesAreNotOffByOne) {
  stats::Histogram h;
  // 20 distinct small values (exact buckets: no bucketing error at all).
  for (std::int64_t v = 1; v <= 20; ++v) h.record(v);
  // q * count lands exactly on a rank for these; FP noise must not bump
  // the answer into the next sample up.
  EXPECT_EQ(h.percentile(0.05), 1);   // rank 1
  EXPECT_EQ(h.percentile(0.50), 10);  // rank 10
  EXPECT_EQ(h.percentile(0.95), 19);  // rank 19 — the historical bug
  EXPECT_EQ(h.percentile(1.0), 20);
  EXPECT_EQ(h.percentile(0.0), 1);
}

TEST(Histogram, BoundaryQuantilesMatchTrackedExtremes) {
  stats::Histogram h;
  for (std::int64_t v : {5, 5, 5, 900'000, 900'001}) h.record(v);
  // p0/p100 answer from the exact min/max words, never from bucket
  // midpoints, so wide buckets at the top cannot leak into them.
  EXPECT_EQ(h.percentile(0.0), 5);
  EXPECT_EQ(h.percentile(1.0), 900'001);
  // Quantiles strictly below the top sample's rank stay at the mode.
  EXPECT_EQ(h.percentile(0.50), 5);
  // Negative and >1 quantiles clamp to the extremes rather than walking
  // off the bucket array.
  EXPECT_EQ(h.percentile(-0.5), 5);
  EXPECT_EQ(h.percentile(1.5), 900'001);
}

// Merging histograms whose ranges straddle each other must answer
// percentiles from the COMBINED distribution, clamped to the combined
// [min, max] — the per-shard latency rollup case.
TEST(Histogram, MergeAcrossStraddlingRangesKeepsQuantilesSane) {
  stats::Histogram low;
  stats::Histogram high;
  for (std::int64_t v = 1; v <= 100; ++v) low.record(v);
  for (std::int64_t v = 1'000'000; v < 1'000'100; ++v) high.record(v);
  stats::Histogram merged = low;
  merged.merge(high);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 1'000'099);
  // Rank 100 is the top of the low half; rank 101 the bottom of the high
  // half. The boundary-straddling quantiles must come from the right half
  // (6.25% relative bucketing error allowed, no cross-half bleeding).
  EXPECT_LE(merged.percentile(0.50), 110);
  EXPECT_GE(merged.percentile(0.505), 900'000);
  EXPECT_GE(merged.percentile(0.99), 900'000);
  // Merging into an empty histogram adopts the source's extremes.
  stats::Histogram empty;
  empty.merge(high);
  EXPECT_EQ(empty.min(), 1'000'000);
  EXPECT_EQ(empty.max(), 1'000'099);
  EXPECT_EQ(empty.percentile(0.0), 1'000'000);
  EXPECT_EQ(empty.percentile(1.0), 1'000'099);
  // Merging an empty histogram in is a no-op on the extremes.
  stats::Histogram target = low;
  target.merge(stats::Histogram{});
  EXPECT_EQ(target.min(), 1);
  EXPECT_EQ(target.max(), 100);
  EXPECT_EQ(target.count(), 100u);
}

TEST(Histogram, EmptyHistogramAnswersZeroEverywhere) {
  const stats::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.p999(), 0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  stats::Histogram h;
  h.record(4'321);
  EXPECT_EQ(h.count(), 1u);
  // p0 and p100 are exact (tracked min/max), and every quantile between
  // them resolves to the one sample's bucket.
  EXPECT_EQ(h.percentile(0.0), 4'321);
  EXPECT_EQ(h.percentile(1.0), 4'321);
  for (const double q : {0.001, 0.25, 0.50, 0.95, 0.999}) {
    const double got = static_cast<double>(h.percentile(q));
    EXPECT_NEAR(got, 4'321.0, 4'321.0 * 0.0625) << "q=" << q;
  }
}

TEST(Histogram, OutOfRangeQuantilesClampToMinMax) {
  stats::Histogram h;
  h.record(10);
  h.record(1'000);
  EXPECT_EQ(h.percentile(-0.5), 10);
  EXPECT_EQ(h.percentile(1.5), 1'000);
}

TEST(Histogram, NegativeClampsAndMergeAccumulates) {
  stats::Histogram a;
  a.record(-5);
  EXPECT_EQ(a.min(), 0);
  stats::Histogram b;
  b.record(100);
  b.record(200);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 200);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(0.5), 0);
}

// ----------------------------------------------------------------- json ---

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream out;
  stats::JsonWriter w(out);
  w.begin_object();
  w.value("name", "a\"b\\c\n");
  w.begin_array("xs");
  w.value(static_cast<std::int64_t>(1));
  w.value(2.5);
  w.end_array();
  w.value("flag", true);
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"xs\":[1,2.5],\"flag\":true}");
}

TEST(LockStats, WritesWellFormedJson) {
  stats::LockStats ls;
  ls.name = "test.lock";
  ls.acquisitions = 3;
  ls.speculative_attempts = 2;
  ls.speculative_commits = 1;
  ls.rollbacks = 1;
  ls.acquire_ns.record(1'000);
  ls.acquire_ns.record(2'000);
  std::ostringstream out;
  stats::JsonWriter w(out);
  ls.write_json(w);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"name\":\"test.lock\""), std::string::npos);
  EXPECT_NE(s.find("\"rollbacks\":1"), std::string::npos);
  EXPECT_NE(s.find("\"commit_rate\":0.5"), std::string::npos);
  EXPECT_NE(s.find("\"p99_ns\":"), std::string::npos);
}

// -------------------------------------------------- scenario + exporter ---

workloads::Fig7Result run_fig7_recorded(Recorder& rec,
                                        GwcChecker* checker = nullptr) {
  if (checker != nullptr) checker->install(rec);
  workloads::Fig7Params p;
  p.dsm.recorder = &rec;
  return workloads::run_scenario_fig7(p);
}

TEST(TraceIntegration, Fig7RecordsTheRollbackInteraction) {
  Recorder rec;
  const auto res = run_fig7_recorded(rec);
  ASSERT_EQ(res.final_a, res.expected_a);
  // The figure's mechanisms, as flight-recorder events: both nodes see a
  // free lock and speculate, the near node's speculation commits, the far
  // node's rolls back, the root silently drops the stale write, and
  // hardware blocking eats the winner's own echo.
  EXPECT_EQ(rec.count(EventKind::kSpeculateBegin), 2u);
  EXPECT_EQ(rec.count(EventKind::kSpeculateCommit), 1u);
  EXPECT_EQ(rec.count(EventKind::kRollback), 1u);
  EXPECT_GE(rec.count(EventKind::kRootDropSpec), 1u);
  EXPECT_GE(rec.count(EventKind::kEchoDrop), 1u);
  EXPECT_EQ(rec.count(EventKind::kLockRequest), 2u);
  EXPECT_EQ(rec.count(EventKind::kLockAcquire), 2u);
  EXPECT_EQ(rec.count(EventKind::kLockRelease), 2u);
  // Event times are monotone non-decreasing (the stream is the sim clock).
  sim::Time last = 0;
  rec.for_each([&last](const Event& e) {
    EXPECT_GE(e.t, last);
    last = e.t;
  });
  // Per-lock record agrees with the scenario's own counters.
  EXPECT_EQ(res.lock_stats.rollbacks, 1u);
  EXPECT_EQ(res.lock_stats.acquisitions, 2u);
  EXPECT_EQ(res.lock_stats.speculative_attempts, 2u);
  EXPECT_EQ(res.lock_stats.speculative_commits, 1u);
  EXPECT_EQ(res.lock_stats.acquire_ns.count(), 2u);
  EXPECT_GT(res.lock_stats.acquire_ns.max(), 0);
}

TEST(TraceIntegration, ChromeExportIsBalancedAndLoadable) {
  Recorder rec;
  run_fig7_recorded(rec);
  std::ostringstream out;
  trace::write_chrome_trace(out, rec);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"speculate\""), std::string::npos);
  EXPECT_NE(json.find("\"rollback\""), std::string::npos);
  // Spans must balance: equal numbers of begin and end events, and braces
  // must nest (a cheap well-formedness proxy that catches truncation).
  auto occurrences = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"ph\":\"B\""), occurrences("\"ph\":\"E\""));
  EXPECT_GE(occurrences("\"ph\":\"B\""), 2u);  // speculate + two holds
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// ---------------------------------------------------------- GWC checker ---

TEST(GwcChecker, AcceptsTheFig7Run) {
  Recorder rec;
  GwcChecker checker;
  const auto res = run_fig7_recorded(rec, &checker);
  ASSERT_EQ(res.final_a, res.expected_a);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.writes_checked(), 0u);
}

TEST(GwcChecker, AcceptsAContendedCounterRun) {
  Recorder rec;
  GwcChecker checker;
  checker.install(rec);
  workloads::CounterParams p;
  p.increments_per_node = 20;
  p.think_mean_ns = 5'000;  // heavy contention: rollbacks + vetoes
  p.dsm.recorder = &rec;
  const auto topo = net::MeshTorus2D::near_square(8);
  const auto res =
      run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
  ASSERT_EQ(res.final_count, res.expected_count);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.writes_checked(), 100u);
}

// Doctored streams: each of the checker's four invariants, violated.

Event sequenced(std::uint32_t group, std::uint64_t seq, std::uint32_t var,
                std::int64_t value, std::uint32_t origin,
                std::string_view label) {
  Event e;
  e.kind = EventKind::kRootSequence;
  e.group = group;
  e.seq = seq;
  e.var = var;
  e.value = value;
  e.origin = origin;
  e.label = label;
  return e;
}

Event applied(std::uint32_t group, std::uint64_t seq, std::uint32_t node,
              std::uint32_t var, std::int64_t value, std::uint32_t origin,
              std::string_view label) {
  Event e;
  e.kind = EventKind::kNodeApply;
  e.group = group;
  e.seq = seq;
  e.node = node;
  e.var = var;
  e.value = value;
  e.origin = origin;
  e.label = label;
  return e;
}

TEST(GwcChecker, RejectsOutOfOrderApplication) {
  GwcChecker c;
  c.on_event(sequenced(0, 1, 7, 10, 2, "data"));
  c.on_event(sequenced(0, 2, 7, 20, 2, "data"));
  c.on_event(applied(0, 1, 3, 7, 10, 2, "data"));
  c.on_event(applied(0, 2, 3, 7, 20, 2, "data"));
  EXPECT_TRUE(c.ok()) << c.report();
  c.on_event(applied(0, 1, 3, 7, 10, 2, "data"));  // goes backwards
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("after seq"), std::string::npos);
  EXPECT_EQ(c.writes_checked(), 3u);
}

TEST(GwcChecker, RejectsValueMismatchAgainstRootSequence) {
  GwcChecker c;
  c.on_event(sequenced(0, 1, 7, 10, 2, "data"));
  c.on_event(applied(0, 1, 3, 7, 99, 2, "data"));  // wrong value
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("root sequenced"), std::string::npos);
}

TEST(GwcChecker, RejectsInventedSequenceNumber) {
  GwcChecker c;
  c.on_event(sequenced(0, 1, 7, 10, 2, "data"));
  c.on_event(applied(0, 1, 3, 7, 10, 2, "data"));
  c.on_event(applied(0, 5, 3, 7, 77, 2, "data"));  // root never issued seq 5
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("never issued"), std::string::npos);
}

TEST(GwcChecker, RejectsGapThatIsNotAnOwnEcho) {
  GwcChecker c;
  c.on_event(sequenced(0, 1, 7, 10, 2, "data"));
  c.on_event(sequenced(0, 2, 7, 20, 2, "data"));
  // Node 3 skips seq 1 — but seq 1 is plain data, not node 3's own
  // mutex-data echo, so the gap is a lost update, not hardware blocking.
  c.on_event(applied(0, 2, 3, 7, 20, 2, "data"));
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("skipped seq"), std::string::npos);
}

TEST(GwcChecker, AcceptsGapFromOwnMutexDataEcho) {
  GwcChecker c;
  const std::int64_t grant3 = dsm::lock_grant_value(3);
  c.on_event(sequenced(0, 1, 9, grant3, 3, "lock"));
  c.on_event(applied(0, 1, 3, 9, grant3, 3, "lock"));
  // Node 3's own mutex-data write: sequenced, then echo-blocked locally.
  c.on_event(sequenced(0, 2, 7, 10, 3, "mutex-data"));
  c.on_event(sequenced(0, 3, 9, dsm::kLockFree, 3, "lock"));
  c.on_event(applied(0, 3, 3, 9, dsm::kLockFree, 3, "lock"));  // skips seq 2
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(GwcChecker, RejectsSpeculativeWriteSequencedForNonHolder) {
  GwcChecker c;
  // Lock granted to node 2; then a mutex-data write from node 5 is
  // sequenced — the root failed to filter a speculative write.
  c.on_event(sequenced(0, 1, 9, dsm::lock_grant_value(2), 2, "lock"));
  c.on_event(sequenced(0, 2, 7, 42, 5, "mutex-data"));
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("holds the lock"), std::string::npos);
}

TEST(GwcChecker, RejectsMutexDataSequencedWhileLockFree) {
  GwcChecker c;
  c.on_event(sequenced(0, 1, 7, 42, 5, "mutex-data"));  // no grant ever
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("lock is free"), std::string::npos);
}

}  // namespace
}  // namespace optsync
