#include "simkern/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"

namespace optsync::sim {
namespace {

TEST(Scheduler, TimeStartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, AdvancesToEventTime) {
  Scheduler s;
  Time seen = kNever;
  s.at(100, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, AfterIsRelativeToNow) {
  Scheduler s;
  Time seen = 0;
  s.at(50, [&] { s.after(25, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 75u);
}

TEST(Scheduler, SchedulingInThePastRejected) {
  Scheduler s;
  s.at(100, [] {});
  s.run();
  EXPECT_THROW(s.at(50, [] {}), ContractViolation);
}

TEST(Scheduler, RunReturnsEventCount) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.after(static_cast<Duration>(i), [] {});
  EXPECT_EQ(s.run(), 7u);
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Scheduler, StepRunsOneEvent) {
  Scheduler s;
  int fired = 0;
  s.after(1, [&] { ++fired; });
  s.after(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, StopEndsRunEarly) {
  Scheduler s;
  int fired = 0;
  s.after(1, [&] {
    ++fired;
    s.stop();
  });
  s.after(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 1u);
  s.run();  // resumes after stop
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {10u, 20u, 30u, 40u}) {
    s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_until(25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 25u);  // clock parked at the deadline
  s.run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30, 40}));
}

TEST(Scheduler, RunUntilIncludesDeadlineEvents) {
  Scheduler s;
  bool fired = false;
  s.at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelStopsPendingEvent) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.after(10, [&] { fired = true; });
  s.after(20, [] {});
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CascadedEventsKeepDeterministicOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(5, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(3); });
  });
  s.at(5, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, ManyEventsProcessInOrder) {
  Scheduler s;
  Time last = 0;
  bool monotonic = true;
  for (int i = 1000; i > 0; --i) {
    s.at(static_cast<Time>(i), [&, i] {
      if (static_cast<Time>(i) < last) monotonic = false;
      last = static_cast<Time>(i);
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last, 1000u);
}

}  // namespace
}  // namespace optsync::sim
