#include "dsm/system.hpp"

#include <gtest/gtest.h>

#include "simkern/assert.hpp"

namespace optsync::dsm {
namespace {

TEST(DsmSystem, CreatesOneNodePerTopologyNode) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo(3, 3);
  DsmSystem sys(sched, topo, DsmConfig{});
  EXPECT_EQ(sys.node_count(), 9u);
  for (NodeId i = 0; i < 9; ++i) EXPECT_EQ(sys.node(i).id(), i);
}

TEST(DsmSystem, VariableDefinitionAndMetadata) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1, 2}, 1);
  const auto d = sys.define_data("d", g, 5);
  const auto l = sys.define_lock("l", g);
  const auto m = sys.define_mutex_data("m", g, l, 7);

  EXPECT_EQ(sys.var(d).kind, VarKind::kData);
  EXPECT_EQ(sys.var(l).kind, VarKind::kLock);
  EXPECT_EQ(sys.var(m).kind, VarKind::kMutexData);
  EXPECT_EQ(sys.var(m).guard, l);
  EXPECT_EQ(sys.var(d).name, "d");
  EXPECT_EQ(sys.var_count(), 3u);
}

TEST(DsmSystem, InitializationReachesAllMembersWithoutTraffic) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 2, 3}, 0);
  const auto d = sys.define_data("d", g, 41);
  EXPECT_EQ(sys.node(0).read(d), 41);
  EXPECT_EQ(sys.node(2).read(d), 41);
  EXPECT_EQ(sys.node(3).read(d), 41);
  EXPECT_EQ(sys.network().stats().messages, 0u);
}

TEST(DsmSystem, LocksInitializeFree) {
  sim::Scheduler sched;
  const net::FullyConnected topo(3);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1, 2}, 0);
  const auto l = sys.define_lock("l", g);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(sys.node(n).read(l), kLockFree);
  }
}

TEST(DsmSystem, MutexDataRequiresLockInSameGroup) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g1 = sys.create_group({0, 1}, 0);
  const auto g2 = sys.create_group({2, 3}, 2);
  const auto l1 = sys.define_lock("l1", g1);
  const auto d1 = sys.define_data("d1", g1);
  EXPECT_THROW(sys.define_mutex_data("m", g2, l1), ContractViolation);
  EXPECT_THROW(sys.define_mutex_data("m", g1, d1), ContractViolation);
}

TEST(DsmSystem, NonMemberCannotShareOut) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  const auto d = sys.define_data("d", g);
  EXPECT_THROW(sys.node(3).write(d, 1), ContractViolation);
}

TEST(DsmSystem, PerVarWireBytesAffectLatency) {
  sim::Scheduler sched;
  const net::FullyConnected topo(2);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  const auto small = sys.define_data("s", g, 0);
  const auto big = sys.define_data("b", g, 0, 256);
  EXPECT_EQ(sys.bytes_for(small), DsmConfig{}.update_bytes);
  EXPECT_EQ(sys.bytes_for(big), 256u);

  sim::Time small_at = 0, big_at = 0;
  sys.node(1).write(small, 1);
  sched.run();
  small_at = sched.now();
  const sim::Time start = sched.now();
  sys.node(1).write(big, 1);
  sched.run();
  big_at = sched.now() - start;
  EXPECT_GT(big_at, small_at);  // serialization grows with size
}

TEST(DsmSystem, UpdatesDeliveredToGroupMembersOnly) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  const auto d = sys.define_data("d", g);
  sys.node(1).write(d, 9);
  sched.run();
  EXPECT_EQ(sys.node(0).read(d), 9);
  EXPECT_EQ(sys.node(2).read(d), 0);
  EXPECT_EQ(sys.node(3).read(d), 0);
}

TEST(DsmSystem, MultipleGroupsIndependentSequencing) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g1 = sys.create_group({0, 1}, 0);
  const auto g2 = sys.create_group({2, 3}, 2);
  const auto d1 = sys.define_data("d1", g1);
  const auto d2 = sys.define_data("d2", g2);
  sys.node(0).write(d1, 1);
  sys.node(2).write(d2, 2);
  sched.run();
  EXPECT_EQ(sys.root_of(g1).stats().sequenced, 1u);
  EXPECT_EQ(sys.root_of(g2).stats().sequenced, 1u);
  EXPECT_EQ(sys.node(1).read(d1), 1);
  EXPECT_EQ(sys.node(3).read(d2), 2);
}

TEST(DsmSystem, OverlappingGroupsAllowed) {
  // Node 1 belongs to two groups (the paper: overlapping groups are not
  // globally ordered; explicit mutual exclusion handles the rare cases).
  sim::Scheduler sched;
  const net::FullyConnected topo(3);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g1 = sys.create_group({0, 1}, 0);
  const auto g2 = sys.create_group({1, 2}, 2);
  const auto d1 = sys.define_data("d1", g1);
  const auto d2 = sys.define_data("d2", g2);
  sys.node(0).write(d1, 10);
  sys.node(2).write(d2, 20);
  sched.run();
  EXPECT_EQ(sys.node(1).read(d1), 10);
  EXPECT_EQ(sys.node(1).read(d2), 20);
}

TEST(DsmSystem, RootOwnWritesLoopBack) {
  sim::Scheduler sched;
  const net::FullyConnected topo(3);
  DsmSystem sys(sched, topo, DsmConfig{});
  const auto g = sys.create_group({0, 1, 2}, 0);
  const auto d = sys.define_data("d", g);
  sys.node(0).write(d, 3);  // root writes its own group's variable
  sched.run();
  EXPECT_EQ(sys.node(1).read(d), 3);
  EXPECT_EQ(sys.node(2).read(d), 3);
}

}  // namespace
}  // namespace optsync::dsm
