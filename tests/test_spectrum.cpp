#include "consistency/spectrum.hpp"

#include <gtest/gtest.h>

namespace optsync::consistency {
namespace {

SpectrumResult run(Model m, std::size_t n) {
  SpectrumParams p;
  p.nodes = n;
  const auto topo = net::MeshTorus2D::near_square(n);
  return run_spectrum(m, p, topo);
}

TEST(Spectrum, GwcNeverStalls) {
  // "A processor can immediately perform the next instruction, even if it
  // is another shared write."
  for (const std::size_t n : {2u, 16u, 64u}) {
    const auto res = run(Model::kGroupWrite, n);
    EXPECT_EQ(res.avg_write_stall_ns, 0.0) << n;
    EXPECT_EQ(res.avg_sync_stall_ns, 0.0) << n;
  }
}

TEST(Spectrum, SequentialStallsEveryWrite) {
  const auto res = run(Model::kSequential, 16);
  EXPECT_GT(res.avg_write_stall_ns, 1'000.0);  // >= one RTT per write
  EXPECT_EQ(res.avg_sync_stall_ns, 0.0);       // nothing left to wait for
}

TEST(Spectrum, SequentialIsWorstEvenAtTwoProcessors) {
  // "It is inefficient even for two processors."
  const auto sc = run(Model::kSequential, 2);
  for (const Model m : {Model::kProcessor, Model::kTotalStore,
                        Model::kPartialStore, Model::kWeakRelease,
                        Model::kGroupWrite}) {
    EXPECT_GT(sc.elapsed, run(m, 2).elapsed)
        << "vs " << model_name(m);
  }
}

TEST(Spectrum, TsoArbitratorDegradesWithScale) {
  // "Its use of a centralized memory write arbitrator is not viable for
  // large distributed memories": TSO's stall grows superlinearly with N
  // while processor consistency's stays flat.
  const auto tso_small = run(Model::kTotalStore, 4);
  const auto tso_big = run(Model::kTotalStore, 64);
  const auto pc_small = run(Model::kProcessor, 4);
  const auto pc_big = run(Model::kProcessor, 64);

  const double tso_growth =
      (tso_big.avg_write_stall_ns + tso_big.avg_sync_stall_ns + 1) /
      (tso_small.avg_write_stall_ns + tso_small.avg_sync_stall_ns + 1);
  const double pc_growth =
      (pc_big.avg_write_stall_ns + pc_big.avg_sync_stall_ns + 1) /
      (pc_small.avg_write_stall_ns + pc_small.avg_sync_stall_ns + 1);
  EXPECT_GT(tso_growth, pc_growth * 2);
}

TEST(Spectrum, WeakReleasePaysAtSyncPointOnly) {
  const auto res = run(Model::kWeakRelease, 16);
  EXPECT_EQ(res.avg_write_stall_ns, 0.0);
  EXPECT_GT(res.avg_sync_stall_ns, 0.0);
}

TEST(Spectrum, PartialStoreBuffersDeeperThanProcessor) {
  // A deeper buffer can only reduce write stalls.
  const auto pc = run(Model::kProcessor, 16);
  const auto pso = run(Model::kPartialStore, 16);
  EXPECT_LE(pso.avg_write_stall_ns, pc.avg_write_stall_ns);
}

TEST(Spectrum, GwcTradesMessagesForStalls) {
  // GWC multicasts everything (root echo included): most traffic, least
  // waiting.
  const auto gwc = run(Model::kGroupWrite, 16);
  const auto pc = run(Model::kProcessor, 16);
  EXPECT_GT(gwc.messages, pc.messages);
  EXPECT_LT(gwc.elapsed, pc.elapsed + 1);
}

TEST(Spectrum, ElapsedOrderingMatchesPaperNarrative) {
  // At 16 CPUs: SC slowest; GWC fastest.
  const auto sc = run(Model::kSequential, 16);
  const auto gwc = run(Model::kGroupWrite, 16);
  for (const Model m : {Model::kProcessor, Model::kTotalStore,
                        Model::kPartialStore, Model::kWeakRelease}) {
    const auto r = run(m, 16);
    EXPECT_LT(r.elapsed, sc.elapsed) << model_name(m);
    EXPECT_GE(r.elapsed, gwc.elapsed) << model_name(m);
  }
}

TEST(Spectrum, ModelNamesDistinct) {
  EXPECT_NE(model_name(Model::kSequential), model_name(Model::kGroupWrite));
  EXPECT_FALSE(model_name(Model::kTotalStore).empty());
}

TEST(Spectrum, Deterministic) {
  const auto a = run(Model::kTotalStore, 16);
  const auto b = run(Model::kTotalStore, 16);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
}

}  // namespace
}  // namespace optsync::consistency
