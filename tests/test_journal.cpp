// Decision-journal unit tests: typed appends, the bounded pool's drop
// accounting, and the optsync-journal/1 JSON document — round-tripped
// through the stats JSON parser dsm_inspect reads it back with.
#include "telemetry/journal.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "stats/json_parse.hpp"

namespace optsync::telemetry {
namespace {

TEST(Journal, TypedAppendsLandWithKindAndFields) {
  Journal j;
  j.txn_abort(100, AbortReason::kCommitValidation, /*node=*/3, /*shard=*/1,
              /*stripe=*/7, /*owner=*/9, /*attempt=*/2);
  j.lease_grant(200, /*node=*/4, /*shard=*/0, /*slot=*/5, /*epoch_old=*/10,
                /*epoch_new=*/11);
  j.lease_expiry(300, /*node=*/4, /*shard=*/0, /*slot=*/5, /*epoch=*/11);
  j.elastic_decision(400, "promote", /*shard=*/1, /*target=*/4,
                     /*slope_per_s=*/32000.0, /*peak_backlog=*/36.0,
                     /*backlog=*/20.0, /*top_key=*/17, /*top_share=*/0.58,
                     /*streak=*/2, /*cooldown=*/0);
  ASSERT_EQ(j.size(), 4u);
  EXPECT_EQ(j.count(Journal::Kind::kTxnAbort), 1u);
  EXPECT_EQ(j.count(Journal::Kind::kLeaseGrant), 1u);
  EXPECT_EQ(j.count(Journal::Kind::kLeaseExpiry), 1u);
  EXPECT_EQ(j.count(Journal::Kind::kElasticDecision), 1u);
  EXPECT_EQ(j.count(Journal::Kind::kLeaseInvalidation), 0u);

  const auto& abort = j.events()[0];
  EXPECT_EQ(abort.kind, Journal::Kind::kTxnAbort);
  EXPECT_EQ(abort.reason, AbortReason::kCommitValidation);
  EXPECT_EQ(abort.stripe, 7u);
  EXPECT_EQ(abort.owner, 9u);
  // Expiry records a zero epoch delta (old == new).
  const auto& expiry = j.events()[2];
  EXPECT_EQ(expiry.epoch_old, expiry.epoch_new);
  const auto& decision = j.events()[3];
  EXPECT_STREQ(decision.step, "promote");
  EXPECT_EQ(decision.target, 4u);
  EXPECT_EQ(decision.streak, 2u);
}

TEST(Journal, PoolDropsAtCapacityWithoutPerturbingContents) {
  Journal j(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    j.txn_abort(static_cast<sim::Time>(i), AbortReason::kReadSetClobber,
                static_cast<std::uint32_t>(i), 0, 0, 0, 0);
  }
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.capacity(), 4u);
  EXPECT_EQ(j.dropped(), 6u);
  // The pool keeps the FIRST records (forensics of how trouble started),
  // never shifts.
  EXPECT_EQ(j.events().front().node, 0u);
  EXPECT_EQ(j.events().back().node, 3u);
}

TEST(Journal, NamesAreStableStrings) {
  EXPECT_STREQ(abort_reason_name(AbortReason::kReadSetClobber),
               "read_set_clobber");
  EXPECT_STREQ(abort_reason_name(AbortReason::kCommitValidation),
               "commit_validation");
  EXPECT_STREQ(abort_reason_name(AbortReason::kDirectoryEpoch),
               "directory_epoch");
  EXPECT_STREQ(abort_reason_name(AbortReason::kFallbackEscalation),
               "fallback_escalation");
  EXPECT_STREQ(Journal::kind_name(Journal::Kind::kTxnAbort), "txn_abort");
  EXPECT_STREQ(Journal::kind_name(Journal::Kind::kElasticDecision),
               "elastic_decision");
}

TEST(Journal, JsonRoundTripsThroughTheParser) {
  Journal j(/*capacity=*/8);
  j.txn_abort(100, AbortReason::kDirectoryEpoch, 3, 1, 7, 9, 1);
  j.lease_invalidation(200, 4, 0, 5, 10, 11);
  j.elastic_decision(400, "split", 2, 6, 1500.0, 40.0, 25.0, 99, 0.7, 3, 1);
  for (int i = 0; i < 10; ++i) {
    j.lease_grant(500 + i, 0, 0, 0, 0, 1);
  }
  std::ostringstream out;
  j.write_json(out);

  const auto parsed = stats::parse_json(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& doc = parsed.value;
  EXPECT_EQ(doc["schema"].as_string(), "optsync-journal/1");
  EXPECT_EQ(doc["dropped"].as_uint(), j.dropped());
  const auto& events = doc["events"];
  ASSERT_EQ(events.size(), j.size());

  EXPECT_EQ(events[0]["kind"].as_string(), "txn_abort");
  EXPECT_EQ(events[0]["reason"].as_string(), "directory_epoch");
  EXPECT_EQ(events[0]["stripe"].as_uint(), 7u);
  EXPECT_EQ(events[0]["owner"].as_uint(), 9u);

  EXPECT_EQ(events[1]["kind"].as_string(), "lease_invalidation");
  EXPECT_EQ(events[1]["epoch_old"].as_uint(), 10u);
  EXPECT_EQ(events[1]["epoch_new"].as_uint(), 11u);

  EXPECT_EQ(events[2]["kind"].as_string(), "elastic_decision");
  EXPECT_EQ(events[2]["step"].as_string(), "split");
  EXPECT_EQ(events[2]["target"].as_uint(), 6u);
  EXPECT_NEAR(events[2]["top_share"].as_double(), 0.7, 1e-9);
  EXPECT_EQ(events[2]["streak"].as_uint(), 3u);
  EXPECT_EQ(events[2]["cooldown"].as_uint(), 1u);
}

TEST(Journal, ParserRejectsGarbageAndTruncation) {
  EXPECT_FALSE(stats::parse_json("{bad").ok);
  EXPECT_FALSE(stats::parse_json("").ok);
  EXPECT_FALSE(stats::parse_json("{\"a\": 1} trailing").ok);
  EXPECT_TRUE(stats::parse_json("{\"a\": [1, 2, {\"b\": null}]}").ok);
}

}  // namespace
}  // namespace optsync::telemetry
