// Determinism soak: one seed, one universe.
//
// The raw-speed kernel pass swapped the event queue's heap of std::function
// for a slot table of pooled SmallFn callbacks, put frame payloads behind a
// RecyclePool, and moved root queues / node inboxes onto ring buffers. None
// of that may perturb a run: event order is (time, insertion seq), never
// allocator addresses, so the SAME --seed must replay the SAME simulation
// byte for byte. These suites run the full service and txn workloads twice
// per seed and compare a complete JSON serialization of everything a bench
// would report — goodput, messages, per-shard ledgers, latency percentiles,
// lock stats, applied-write streams, pool/scheduler counters. Any hidden
// dependence on heap layout (e.g. iterating an unordered_map of pointers,
// or pool reuse changing a tiebreak) shows up as a byte diff here.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/system.hpp"
#include "load/generator.hpp"
#include "net/topology.hpp"
#include "shard/client.hpp"
#include "shard/coalesce_controller.hpp"
#include "shard/sharded_store.hpp"
#include "stats/json.hpp"
#include "stats/service_report.hpp"
#include "simkern/scheduler.hpp"

namespace optsync {
namespace {

struct WorkloadParams {
  std::uint32_t nodes = 16;
  std::uint32_t shards = 4;
  std::uint64_t requests = 600;
  double rate_rps = 400'000;
  double read_fraction = 0.25;
  double txn_fraction = 0.05;
  bool adaptive_coalesce = false;
};

void serialize_histogram(stats::JsonWriter& w, std::string_view key,
                         const stats::Histogram& h) {
  w.begin_object(key)
      .value("count", h.count())
      .value("min", static_cast<std::int64_t>(h.min()))
      .value("max", static_cast<std::int64_t>(h.max()))
      .value("p50", static_cast<std::int64_t>(h.p50()))
      .value("p95", static_cast<std::int64_t>(h.percentile(0.95)))
      .value("p99", static_cast<std::int64_t>(h.p99()))
      .value("p999", static_cast<std::int64_t>(h.p999()))
      .value("mean", h.mean())
      .end_object();
}

// Runs the workload to completion and serializes every observable a bench
// would export. The returned string is the run's fingerprint.
std::string run_fingerprint(std::uint64_t seed, const WorkloadParams& p) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(p.nodes);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  for (dsm::NodeId n = 0; n < static_cast<dsm::NodeId>(topo.size()); ++n) {
    sys.node(n).enable_applied_log(true);
  }

  shard::ShardedStoreConfig scfg;
  scfg.shards = p.shards;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = p.requests;
  gcfg.rate_rps = p.rate_rps;
  gcfg.keys.keys = 512;
  gcfg.read_fraction = p.read_fraction;
  gcfg.txn_fraction = p.txn_fraction;
  load::Generator gen(gcfg);

  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  shard::CoalesceController ctrl(store, report);
  if (p.adaptive_coalesce) ctrl.start();
  sched.run();
  store.fill_report(report);
  EXPECT_TRUE(gen.done());
  EXPECT_TRUE(report.serializable());
  EXPECT_TRUE(store.replicas_converged());

  std::ostringstream out;
  stats::JsonWriter w(out);
  w.begin_object()
      .value("elapsed_ns", static_cast<std::uint64_t>(report.elapsed_ns))
      .value("messages", report.messages)
      .value("offered_rps", report.offered_rps)
      .value("goodput_rps", report.goodput_rps())
      .value("events_processed", sched.events_processed())
      .value("final_time", static_cast<std::uint64_t>(sched.now()))
      .value("pool_created", sys.pool_stats().created)
      .value("pool_acquires", sys.pool_stats().acquires);
  w.begin_array("shards");
  for (const auto& s : report.shards) {
    w.begin_object()
        .value("shard", s.shard)
        .value("sequenced", s.sequenced)
        .value("frames", s.frames)
        .value("max_frame_writes", s.max_frame_writes)
        .value("version", static_cast<std::int64_t>(s.version))
        .value("committed_writes", s.committed_writes)
        .value("txn_commits", s.txn_commits)
        .value("txn_aborts", s.txn_aborts)
        .value("txn_retries", s.txn_retries)
        .value("txn_fallbacks", s.txn_fallbacks);
    for (std::size_t o = 0; o < stats::kServiceOpCount; ++o) {
      const auto& op = s.ops[o];
      w.begin_object("op" + std::to_string(o))
          .value("issued", op.issued)
          .value("completed", op.completed);
      serialize_histogram(w, "latency", op.latency_ns);
      w.end_object();
    }
    w.value("acquisitions", s.lock.acquisitions)
        .value("rollbacks", s.lock.rollbacks)
        .value("speculative_commits", s.lock.speculative_commits);
    serialize_histogram(w, "acquire_ns", s.lock.acquire_ns);
    w.end_object();
  }
  w.end_array();
  if (p.adaptive_coalesce) {
    w.begin_array("coalesce_caps");
    for (std::uint32_t s = 0; s < store.shards(); ++s) {
      w.begin_object()
          .value("cap", ctrl.cap(s))
          .value("peak", ctrl.peak_cap(s))
          .value("raises", ctrl.raises(s))
          .value("lowers", ctrl.lowers(s))
          .end_object();
    }
    w.end_array();
    w.value("ticks", ctrl.ticks());
  }
  // The applied-write stream of every replica of every shard: the strongest
  // fingerprint — any reordering anywhere in the protocol lands here.
  w.begin_array("applied");
  for (std::uint32_t s = 0; s < store.shards(); ++s) {
    const auto g = store.group_of(s);
    std::uint64_t fnv = 1469598103934665603ull;
    auto mix = [&fnv](std::uint64_t v) {
      fnv ^= v;
      fnv *= 1099511628211ull;
    };
    for (const dsm::NodeId m : sys.group(g).members()) {
      for (const auto& u : sys.node(m).applied_log(g)) {
        mix(u.seq);
        mix(u.var);
        mix(static_cast<std::uint64_t>(u.value));
        mix(u.origin);
      }
    }
    w.value(std::to_string(fnv));
  }
  w.end_array();
  w.end_object();
  return out.str();
}

TEST(Determinism, ServiceWorkloadSameSeedIsByteIdentical) {
  WorkloadParams p;
  for (const std::uint64_t seed : {42ull, 7ull, 0xdeadbeefull}) {
    const std::string a = run_fingerprint(seed, p);
    const std::string b = run_fingerprint(seed, p);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed " << seed << " diverged between two runs";
  }
}

TEST(Determinism, TxnHeavyWorkloadSameSeedIsByteIdentical) {
  WorkloadParams p;
  p.txn_fraction = 0.40;  // exercise the OCC/abort/fallback machinery hard
  p.read_fraction = 0.10;
  for (const std::uint64_t seed : {42ull, 1234ull}) {
    const std::string a = run_fingerprint(seed, p);
    const std::string b = run_fingerprint(seed, p);
    EXPECT_EQ(a, b) << "seed " << seed << " diverged between two runs";
  }
}

TEST(Determinism, AdaptiveCoalescingControllerIsDeterministic) {
  WorkloadParams p;
  p.adaptive_coalesce = true;
  const std::string a = run_fingerprint(42, p);
  const std::string b = run_fingerprint(42, p);
  EXPECT_EQ(a, b) << "the coalesce control loop diverged between two runs";
  // And the controller must actually change behaviour vs. unbatched — the
  // fingerprint includes messages, so a different universe, same laws.
  WorkloadParams q = p;
  q.adaptive_coalesce = false;
  const std::string c = run_fingerprint(42, q);
  EXPECT_NE(a, c) << "controller ran but changed nothing";
}

TEST(Determinism, DifferentSeedsAreDifferentUniverses) {
  WorkloadParams p;
  EXPECT_NE(run_fingerprint(1, p), run_fingerprint(2, p));
}

}  // namespace
}  // namespace optsync
