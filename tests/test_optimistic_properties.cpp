// Property tests for optimistic synchronization: over randomized schedules,
// the optimistic protocol must be (a) serializable — the final shared state
// equals SOME serial order of the sections, (b) invisible when speculating —
// non-holders' writes are never observed remotely, and (c) equivalent to the
// regular protocol's final state when sections commute up to ordering.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/optimistic_mutex.hpp"
#include "simkern/random.hpp"

namespace optsync::core {
namespace {

using dsm::DsmConfig;
using dsm::DsmSystem;
using dsm::VarId;
using dsm::Word;
using net::NodeId;

struct PropertyCase {
  std::size_t nodes;
  int sections_per_node;
  sim::Duration spread_ns;    ///< request start times spread over this window
  sim::Duration section_ns;
  std::uint64_t seed;
};

class OptimisticSerializability
    : public ::testing::TestWithParam<PropertyCase> {};

// Each section appends its (node, iteration) tag to a shared "log" realized
// as a counter + per-slot variables; serializability means every tag appears
// exactly once and slots are dense.
TEST_P(OptimisticSerializability, EveryIncrementAppliedExactlyOnce) {
  const auto& c = GetParam();
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(c.nodes);
  DsmSystem sys(sched, topo, DsmConfig{});
  std::vector<NodeId> members;
  for (NodeId i = 0; i < c.nodes; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto lock = sys.define_lock("L", g);
  const auto counter = sys.define_mutex_data("ctr", g, lock, 0);
  OptimisticMutex mux(sys, lock, OptimisticMutex::Config{});

  sim::Rng rng(c.seed);
  std::vector<sim::Process> procs;
  auto worker = [&](NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng local(seed);
    for (int k = 0; k < c.sections_per_node; ++k) {
      co_await sim::delay(sched, local.below(c.spread_ns));
      Section sec;
      sec.shared_writes = {counter};
      sec.body = [&sys, &sched, counter, section_ns = c.section_ns](
                     dsm::DsmNode& nd) -> sim::Process {
        const Word v = nd.read(counter);
        co_await sim::delay(sched, section_ns);
        nd.write(counter, v + 1);
      };
      co_await mux.execute(me, std::move(sec)).join();
    }
  };
  for (NodeId i = 0; i < c.nodes; ++i) procs.push_back(worker(i, rng.next()));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  const Word expected =
      static_cast<Word>(c.nodes) * static_cast<Word>(c.sections_per_node);
  for (const NodeId m : members) {
    EXPECT_EQ(sys.node(m).read(counter), expected) << "node " << m;
  }
  const auto& ms = mux.stats();
  EXPECT_EQ(ms.executions,
            static_cast<std::uint64_t>(c.nodes) *
                static_cast<std::uint64_t>(c.sections_per_node));
  EXPECT_EQ(ms.optimistic_successes + ms.rollbacks + ms.regular_paths,
            ms.executions);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, OptimisticSerializability,
    ::testing::Values(PropertyCase{2, 20, 2'000, 500, 11},
                      PropertyCase{4, 12, 5'000, 800, 12},
                      PropertyCase{8, 8, 3'000, 1'000, 13},
                      PropertyCase{8, 8, 50'000, 1'000, 14},
                      PropertyCase{16, 5, 10'000, 700, 15},
                      PropertyCase{16, 5, 200'000, 700, 16},
                      PropertyCase{25, 4, 100'000, 500, 17}));

// Speculation invisibility: an observer node records every value of the
// mutex datum it ever applies; none may come from a node that was not the
// holder when the root sequenced it. We detect that indirectly: observed
// values must form the serial chain 1, 2, 3, ... with no gaps, duplicates,
// or foreign values.
TEST(OptimisticInvisibility, ObserversOnlySeeCommittedChain) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(9);
  DsmSystem sys(sched, topo, DsmConfig{});
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 9; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto lock = sys.define_lock("L", g);
  const auto counter = sys.define_mutex_data("ctr", g, lock, 0);
  OptimisticMutex mux(sys, lock, OptimisticMutex::Config{});

  const NodeId observer = 4;
  sys.node(observer).enable_applied_log(true);

  sim::Rng rng(31);
  std::vector<sim::Process> procs;
  auto worker = [&](NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng local(seed);
    for (int k = 0; k < 6; ++k) {
      co_await sim::delay(sched, local.below(4'000));
      Section sec;
      sec.shared_writes = {counter};
      sec.body = [&sys, &sched, counter](dsm::DsmNode& nd) -> sim::Process {
        const Word v = nd.read(counter);
        co_await sim::delay(sched, 600);
        nd.write(counter, v + 1);
      };
      co_await mux.execute(me, std::move(sec)).join();
    }
  };
  for (const NodeId n : {0u, 2u, 7u, 8u}) procs.push_back(worker(n, rng.next()));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  // Force some rollbacks to have happened, or the test is vacuous; with 4
  // hammering nodes and short think times there is real contention.
  EXPECT_GT(mux.stats().rollbacks + mux.stats().regular_paths, 0u);

  Word expect = 1;
  for (const auto& upd : sys.node(observer).applied_log(g)) {
    if (upd.var != counter) continue;
    EXPECT_EQ(upd.value, expect) << "observer saw a speculative or stale "
                                    "value break the committed chain";
    ++expect;
  }
  EXPECT_EQ(expect, 25);  // 4 workers x 6 increments, all observed
}

// Equivalence: with identical workloads, optimistic and regular executions
// reach the same final shared value (the protocols may order sections
// differently, but the commutative increment makes end states comparable).
class OptimisticEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OptimisticEquivalence, FinalStateMatchesRegularProtocol) {
  auto run_once = [&](bool optimistic) {
    sim::Scheduler sched;
    const auto topo = net::MeshTorus2D::near_square(8);
    DsmSystem sys(sched, topo, DsmConfig{});
    std::vector<NodeId> members;
    for (NodeId i = 0; i < 8; ++i) members.push_back(i);
    const auto g = sys.create_group(members, 0);
    const auto lock = sys.define_lock("L", g);
    const auto counter = sys.define_mutex_data("ctr", g, lock, 7);
    OptimisticMutex::Config cfg;
    cfg.enable_optimistic = optimistic;
    OptimisticMutex mux(sys, lock, cfg);

    sim::Rng rng(GetParam());
    std::vector<sim::Process> procs;
    auto worker = [&](NodeId me, std::uint64_t seed) -> sim::Process {
      sim::Rng local(seed);
      for (int k = 0; k < 5; ++k) {
        co_await sim::delay(sched, local.below(6'000));
        Section sec;
        sec.shared_writes = {counter};
        sec.body = [&sys, &sched, counter](dsm::DsmNode& nd) -> sim::Process {
          const Word v = nd.read(counter);
          co_await sim::delay(sched, 400);
          nd.write(counter, v + 3);
        };
        co_await mux.execute(me, std::move(sec)).join();
      }
    };
    for (NodeId i = 0; i < 8; ++i) procs.push_back(worker(i, rng.next()));
    sched.run();
    for (auto& p : procs) p.rethrow_if_failed();
    return sys.node(3).read(counter);
  };

  EXPECT_EQ(run_once(true), run_once(false));
  EXPECT_EQ(run_once(true), 7 + 8 * 5 * 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimisticEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace optsync::core
