#include "rt/rt_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace optsync::rt {
namespace {

RtSystem::Config small(std::size_t n) {
  RtSystem::Config cfg;
  cfg.nodes = n;
  return cfg;
}

TEST(RtSystem, WritePropagatesToAllNodes) {
  RtSystem sys(small(4));
  const auto d = sys.define_data("d");
  sys.write(1, d, 42);
  sys.quiesce();
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(sys.read(n, d), 42);
}

TEST(RtSystem, LocksInitializeFree) {
  RtSystem sys(small(3));
  const auto l = sys.define_lock("l");
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(sys.read(n, l), kLockFree);
}

TEST(RtSystem, LockRequestGrantRelease) {
  RtSystem sys(small(3));
  const auto l = sys.define_lock("l");
  sys.write(1, l, dsm::lock_request_value(1));
  sys.wait_until(1, l, [](Word v) { return dsm::lock_granted_to(v, 1); });
  sys.write(1, l, kLockFree);
  sys.wait_until(2, l, [](Word v) { return v == kLockFree; });
  sys.quiesce();
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(sys.read(n, l), kLockFree);
}

TEST(RtSystem, QueuedRequesterGetsGrantAfterRelease) {
  RtSystem sys(small(3));
  const auto l = sys.define_lock("l");
  sys.write(0, l, dsm::lock_request_value(0));
  sys.wait_until(0, l, [](Word v) { return dsm::lock_granted_to(v, 0); });
  sys.write(2, l, dsm::lock_request_value(2));  // queued at the sequencer
  sys.write(0, l, kLockFree);
  sys.wait_until(2, l, [](Word v) { return dsm::lock_granted_to(v, 2); });
  sys.write(2, l, kLockFree);
  sys.quiesce();
}

TEST(RtSystem, SpeculativeMutexWriteFiltered) {
  RtSystem sys(small(4));
  const auto l = sys.define_lock("l");
  const auto m = sys.define_mutex_data("m", l);
  sys.write(1, m, 77);  // nobody holds the lock
  sys.quiesce();
  EXPECT_EQ(sys.read(1, m), 77);  // local speculation visible locally
  EXPECT_EQ(sys.read(0, m), 0);   // invisible everywhere else
  EXPECT_EQ(sys.read(2, m), 0);
  EXPECT_GE(sys.stats().speculative_drops.load(), 1u);
}

TEST(RtSystem, HolderMutexWritePropagates) {
  RtSystem sys(small(4));
  const auto l = sys.define_lock("l");
  const auto m = sys.define_mutex_data("m", l);
  sys.write(2, l, dsm::lock_request_value(2));
  sys.wait_until(2, l, [](Word v) { return dsm::lock_granted_to(v, 2); });
  sys.write(2, m, 55);
  sys.quiesce();
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(sys.read(n, m), 55);
  EXPECT_GE(sys.stats().echoes_dropped.load(), 1u);  // writer's echo blocked
  sys.write(2, l, kLockFree);
  sys.quiesce();
}

TEST(RtSystem, SuspensionHoldsBackUpdates) {
  RtSystem sys(small(3));
  const auto d = sys.define_data("d");
  sys.suspend_insharing(2);
  sys.write(0, d, 9);
  // Everyone else applies it; node 2's applier is parked.
  sys.wait_until(1, d, [](Word v) { return v == 9; });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(sys.read(2, d), 0);
  sys.resume_insharing(2);
  sys.quiesce();
  EXPECT_EQ(sys.read(2, d), 9);
}

TEST(RtSystem, InterruptFiresOnAppliedLockChange) {
  RtSystem sys(small(3));
  const auto l = sys.define_lock("l");
  std::atomic<int> fires{0};
  std::atomic<Word> seen{0};
  sys.arm_interrupt(2, l, [&](VarId, Word value, NodeId) {
    fires.fetch_add(1);
    seen.store(value);
    sys.resume_insharing(2);
  });
  sys.write(0, l, dsm::lock_request_value(0));
  sys.wait_until(2, l, [](Word v) { return dsm::lock_granted_to(v, 0); });
  EXPECT_GE(fires.load(), 1);
  EXPECT_EQ(seen.load(), dsm::lock_grant_value(0));
  sys.disarm_interrupt(2, l);
  sys.write(0, l, kLockFree);
  sys.quiesce();
}

TEST(RtSystem, ConcurrentWritersConverge) {
  RtSystem sys(small(4));
  const auto d = sys.define_data("d");
  std::vector<std::thread> threads;
  for (NodeId n = 0; n < 4; ++n) {
    threads.emplace_back([&sys, n, d] {
      for (int k = 0; k < 200; ++k) {
        sys.write(n, d, static_cast<Word>(n) * 1000 + k);
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.quiesce();
  // All nodes converged on the same (sequencer-chosen) final value.
  const Word v0 = sys.read(0, d);
  for (NodeId n = 1; n < 4; ++n) EXPECT_EQ(sys.read(n, d), v0);
  EXPECT_EQ(sys.stats().sequenced.load(), 800u);
}

TEST(RtSystem, AtomicExchangeReturnsPrevious) {
  RtSystem sys(small(2));
  const auto d = sys.define_data("d");
  sys.poke(0, d, 5);
  EXPECT_EQ(sys.atomic_exchange(0, d, 6), 5);
  sys.quiesce();
  EXPECT_EQ(sys.read(1, d), 6);
}

TEST(RtSystem, CleanShutdownWithPendingTraffic) {
  // Destructor must join all threads even with traffic still in queues.
  auto sys = std::make_unique<RtSystem>(small(8));
  const auto d = sys->define_data("d");
  for (NodeId n = 0; n < 8; ++n) sys->write(n, d, n);
  sys.reset();  // no deadlock, no crash
  SUCCEED();
}

}  // namespace
}  // namespace optsync::rt
