#include "core/multi_group_mutex.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::core {
namespace {

// Two overlapping groups on one mesh; nodes in the overlap update data from
// both groups under cross-group mutual exclusion.
struct Fixture {
  Fixture() : topo(net::MeshTorus2D::near_square(12)),
              sys(sched, topo, dsm::DsmConfig{}) {
    ga = sys.create_group({0, 1, 2, 3, 4, 5, 6, 7}, 0);
    gb = sys.create_group({4, 5, 6, 7, 8, 9, 10, 11}, 11);
    la = sys.define_lock("la", ga);
    lb = sys.define_lock("lb", gb);
    da = sys.define_mutex_data("da", ga, la, 0);
    db = sys.define_mutex_data("db", gb, lb, 0);
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  dsm::GroupId ga = 0, gb = 0;
  dsm::VarId la = 0, lb = 0, da = 0, db = 0;
};

sim::Process cross_update(Fixture& f, MultiGroupMutex& m, dsm::NodeId n,
                          int count, std::uint64_t seed, int* active,
                          int* max_active) {
  sim::Rng rng(seed);
  auto& node = f.sys.node(n);
  for (int k = 0; k < count; ++k) {
    co_await sim::delay(f.sched, rng.below(4'000));
    co_await m.acquire(n).join();
    *active += 1;
    *max_active = std::max(*max_active, *active);
    const dsm::Word a = node.read(f.da);
    const dsm::Word b = node.read(f.db);
    co_await sim::delay(f.sched, 500);
    node.write(f.da, a + 1);
    node.write(f.db, b + 1);
    *active -= 1;
    m.release(n);
  }
}

TEST(MultiGroupMutex, SingleHolderAcrossGroups) {
  Fixture f;
  MultiGroupMutex m(f.sys, {f.la, f.lb});
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  // Only overlap nodes (members of both groups) may take both locks.
  for (const dsm::NodeId n : {4u, 5u, 6u, 7u}) {
    procs.push_back(cross_update(f, m, n, 8, n * 11 + 1, &active,
                                 &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  // 4 nodes x 8 updates on both variables, atomically.
  EXPECT_EQ(f.sys.node(4).read(f.da), 32);
  EXPECT_EQ(f.sys.node(4).read(f.db), 32);
  // Consistency on non-overlap members too.
  EXPECT_EQ(f.sys.node(0).read(f.da), 32);
  EXPECT_EQ(f.sys.node(11).read(f.db), 32);
}

TEST(MultiGroupMutex, CrossGroupInvariantPreserved) {
  // da and db are always updated together; any reader holding both locks
  // must observe da == db.
  Fixture f;
  MultiGroupMutex m(f.sys, {f.la, f.lb});
  bool consistent = true;
  auto checker = [&f, &m, &consistent](dsm::NodeId n, int rounds)
      -> sim::Process {
    auto& node = f.sys.node(n);
    for (int k = 0; k < rounds; ++k) {
      co_await sim::delay(f.sched, 2'500);
      co_await m.acquire(n).join();
      if (node.read(f.da) != node.read(f.db)) consistent = false;
      m.release(n);
    }
  };
  int active = 0, max_active = 0;
  auto w1 = cross_update(f, m, 5, 10, 7, &active, &max_active);
  auto w2 = cross_update(f, m, 6, 10, 8, &active, &max_active);
  auto c = checker(4, 12);
  f.sched.run();
  w1.rethrow_if_failed();
  w2.rethrow_if_failed();
  c.rethrow_if_failed();
  EXPECT_TRUE(consistent);
}

TEST(MultiGroupMutex, NoDeadlockWhenSectionsOverlapPartially) {
  // Node 5 takes {la}, node 6 takes {lb}, node 7 takes {la, lb} — the
  // global acquisition order (ascending VarId) excludes cycles.
  Fixture f;
  MultiGroupMutex m_a(f.sys, {f.la});
  MultiGroupMutex m_b(f.sys, {f.lb});
  MultiGroupMutex m_ab(f.sys, {f.lb, f.la});  // order normalized internally
  std::uint64_t completions = 0;
  auto worker = [&f, &completions](MultiGroupMutex& m, dsm::NodeId n,
                                   std::uint64_t seed) -> sim::Process {
    sim::Rng rng(seed);
    for (int k = 0; k < 15; ++k) {
      co_await sim::delay(f.sched, rng.below(2'000));
      co_await m.acquire(n).join();
      co_await sim::delay(f.sched, 300);
      m.release(n);
      ++completions;
    }
  };
  auto p1 = worker(m_a, 5, 1);
  auto p2 = worker(m_b, 6, 2);
  auto p3 = worker(m_ab, 7, 3);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();
  p3.rethrow_if_failed();
  EXPECT_EQ(completions, 45u);  // everything ran to completion: no deadlock
}

TEST(MultiGroupMutex, LocksNormalizedToGlobalOrder) {
  Fixture f;
  MultiGroupMutex m(f.sys, {f.lb, f.la});
  ASSERT_EQ(m.locks().size(), 2u);
  EXPECT_LT(m.locks()[0], m.locks()[1]);
}

TEST(MultiGroupMutex, ShuffledInputAcquiresInCanonicalOrder) {
  // The canonical-order invariant (ascending lock VarId, shared with the
  // OCC commit path): whatever order the caller lists the locks in, the
  // mutex normalizes to strictly ascending order and acquires that way.
  Fixture f;
  const dsm::VarId lc = f.sys.define_lock("lc", f.ga);
  for (const auto& input :
       {std::vector<dsm::VarId>{lc, f.lb, f.la},
        std::vector<dsm::VarId>{f.lb, lc, f.la},
        std::vector<dsm::VarId>{f.la, lc, f.lb}}) {
    MultiGroupMutex m(f.sys, input);
    ASSERT_EQ(m.locks().size(), 3u);
    EXPECT_LT(m.locks()[0], m.locks()[1]);
    EXPECT_LT(m.locks()[1], m.locks()[2]);
  }
  // And a shuffled-input mutex still runs sections to completion.
  MultiGroupMutex m(f.sys, {lc, f.lb, f.la});
  std::uint64_t completions = 0;
  auto worker = [&](dsm::NodeId n) -> sim::Process {
    for (int k = 0; k < 5; ++k) {
      co_await m.acquire(n).join();
      co_await sim::delay(f.sched, 200);
      m.release(n);
      ++completions;
    }
  };
  auto p1 = worker(4);
  auto p2 = worker(5);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();
  EXPECT_EQ(completions, 10u);
}

TEST(MultiGroupMutex, HeldByTracksAllLocks) {
  Fixture f;
  MultiGroupMutex m(f.sys, {f.la, f.lb});
  EXPECT_FALSE(m.held_by(5));
  auto p = [](MultiGroupMutex& mm) -> sim::Process {
    co_await mm.acquire(5).join();
    EXPECT_TRUE(mm.held_by(5));
    mm.release(5);
  }(m);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_FALSE(m.held_by(5));
}

TEST(MultiGroupMutex, DuplicateLocksRejected) {
  Fixture f;
  EXPECT_THROW(MultiGroupMutex(f.sys, {f.la, f.la}), ContractViolation);
}

TEST(MultiGroupMutex, NonMemberRejected) {
  Fixture f;
  MultiGroupMutex m(f.sys, {f.la, f.lb});
  // Node 0 is only in group A.
  EXPECT_THROW(m.acquire(0), ContractViolation);
}

TEST(MultiGroupMutex, SingleLockDegeneratesToQueueLock) {
  Fixture f;
  MultiGroupMutex m(f.sys, {f.la});
  int active = 0, max_active = 0;
  auto worker = [&](dsm::NodeId n) -> sim::Process {
    auto& node = f.sys.node(n);
    co_await m.acquire(n).join();
    active += 1;
    max_active = std::max(max_active, active);
    node.write(f.da, node.read(f.da) + 1);
    co_await sim::delay(f.sched, 400);
    active -= 1;
    m.release(n);
  };
  std::vector<sim::Process> procs;
  for (const dsm::NodeId n : {0u, 1u, 2u, 3u}) procs.push_back(worker(n));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(f.sys.node(0).read(f.da), 4);
  EXPECT_EQ(m.stats().acquisitions, 4u);
}

}  // namespace
}  // namespace optsync::core
