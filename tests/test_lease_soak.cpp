// Lease tier fault soak (soak label): the leased read-replica cache runs a
// read-heavy zipf mix over partial replication — four server nodes, four
// client nodes — while the fiber drops, duplicates, and partitions every
// message class, INCLUDING the lease RPCs and the forwarded client
// mutations. For 20+ fault seeds, every run must prove:
//
//   * bounded staleness: the StaleReadAuditor (an independent witness fed
//     only invalidation deliveries and lease-served reads) observes zero
//     serves of a superseded epoch and zero serves past TTL;
//   * GWC (invariant 1): trace::GwcChecker audits every applied write of
//     every shard group into a gapless, identical total order — the lease
//     tier rides the flush path and must not perturb it;
//   * serializability + convergence: per-shard ledgers stay exact and all
//     member replicas agree after quiesce;
//   * closed accounting: every request completes (forwarded mutations
//     survive the faults via the reliable channel's retransmission);
//   * the tier was exercised: across the suite, lease hits, grants, and
//     invalidations are all nonzero (a soak that never leased proves
//     nothing).
//
// Seeds 1400+ keep these fault schedules disjoint from the other soaks.
#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/lease.hpp"
#include "shard/sharded_store.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync {
namespace {

faults::FaultPlan lease_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.08, "lock")
      .drop(0.08, "data")
      .drop(0.08, "lease")  // grants, requests, update-invalidations
      .drop(0.08, "svc")    // forwarded client mutations + acks
      .drop(0.08, "read")   // linearizable remote reads
      .duplicate(0.04);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 220'000);
  return plan;
}

struct GwcAudit {
  trace::Recorder recorder{1 << 10};
  trace::GwcChecker checker;
  GwcAudit() { checker.install(recorder); }
};

// Aggregated across the whole suite so the exercised-tier assertions can
// live in one place (any single seed may legitimately see few leases).
struct SuiteTotals {
  std::uint64_t hits = 0;
  std::uint64_t grants = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t audited_serves = 0;
};
SuiteTotals g_totals;

class LeaseFaultSoak : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Runs once after the whole seed sweep: the soak must actually have
  // exercised every leg of the tier — hits, grants, update-invalidations,
  // and auditor-witnessed serves (a soak that never leased proves nothing).
  static void TearDownTestSuite() {
    EXPECT_GT(g_totals.hits, 0u);
    EXPECT_GT(g_totals.grants, 0u);
    EXPECT_GT(g_totals.invalidations, 0u);
    EXPECT_GT(g_totals.audited_serves, 0u);
  }
};

TEST_P(LeaseFaultSoak, StalenessBoundHoldsUnderDropAndPartition) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = lease_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);
  ASSERT_TRUE(sys.reliable_transport());

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  scfg.slots_per_shard = 16;
  scfg.lease.server_nodes = 4;
  scfg.lease.enabled = true;
  // Short TTL relative to the run so expiry paths fire under faults too.
  scfg.lease.ttl_ns = 400'000;
  shard::ShardedStore store(sys, scfg);

  // Read-heavy and skewed: hot stripes are leased by every client and
  // written often enough that update-invalidations race the reads they
  // chase. A slice of linearizable reads keeps the bypass path honest.
  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = 260;
  gcfg.rate_rps = 80'000.0;
  gcfg.read_fraction = 0.75;
  gcfg.txn_fraction = 0.10;
  gcfg.rmw_fraction = 0.05;
  gcfg.keys.dist = load::KeyDist::kZipfian;
  gcfg.keys.keys = 24;
  gcfg.keys.zipf_s = 1.0;
  gcfg.read_level = shard::ConsistencyLevel::kLeased;
  load::Generator gen(gcfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(report);

  ASSERT_TRUE(gen.done());
  EXPECT_EQ(report.completed(), gcfg.requests);
  EXPECT_EQ(report.issued(), report.completed()) << "seed " << seed;

  const auto& auditor = store.leases()->auditor();
  EXPECT_TRUE(auditor.ok()) << "seed " << seed << ": " << auditor.report();
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
  for (shard::ShardId s = 0; s < scfg.shards; ++s) {
    EXPECT_EQ(store.version(s),
              static_cast<dsm::Word>(store.committed_writes(s)))
        << "shard " << s << " seed " << seed;
    const auto& c = store.leases()->counters(s);
    g_totals.hits += c.hits;
    g_totals.grants += c.grants;
    g_totals.invalidations += c.invalidations;
  }
  g_totals.audited_serves += auditor.checks();
  EXPECT_TRUE(store.replicas_converged()) << "seed " << seed;
  EXPECT_GT(report.faults.drops_injected, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(DropPartitionSeeds, LeaseFaultSoak,
                         ::testing::Range<std::uint64_t>(1400, 1422));

}  // namespace
}  // namespace optsync
