// Randomized fault soak: the substrate's correctness invariants (GWC total
// order, optimistic-mutex serializability, the Fig. 7 rollback interaction)
// must survive seeded message loss, duplication, and reorder — the reliable
// channel is the mechanism under test, the existing property suites are the
// oracle. Seed ranges are disjoint per suite; together they cover well over
// 100 distinct fault schedules. Every parameterized run additionally streams
// its flight-recorder events through the GWC invariant checker, which proves
// the total-order and no-speculative-visibility properties independently of
// each suite's own assertions.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "simkern/random.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"
#include "workloads/counter.hpp"
#include "workloads/scenario_fig7.hpp"

namespace optsync {
namespace {

/// The standard attack: 10% loss on lock and data traffic (request, grant,
/// and update messages all travel under these tags), 5% duplication and 10%
/// extra-delay reorder on everything including acks.
faults::FaultPlan standard_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.10, "lock")
      .drop(0.10, "data")
      .duplicate(0.05)
      .delay(0.10, 3'000);
  return plan;
}

/// Recorder + checker pair for one soak run. A tiny ring suffices: the
/// checker is a streaming sink and sees every event before eviction.
struct GwcAudit {
  trace::Recorder recorder{1 << 10};
  trace::GwcChecker checker;
  GwcAudit() { checker.install(recorder); }
};

class GwcFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

// Mirror of GwcTotalOrder.AllMembersApplySameSequence, run over a lossy
// fiber: every member still applies the identical sequenced write stream.
TEST_P(GwcFaultSoak, TotalOrderSurvivesLossDupAndReorder) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::Ring topo(6);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = standard_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);
  ASSERT_TRUE(sys.reliable_transport());  // faults imply the reliable layer

  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < 6; ++i) members.push_back(i);
  sim::Rng rng(seed * 2 + 1);
  const auto g = sys.create_group(members, static_cast<net::NodeId>(
                                               rng.below(6)));
  std::vector<dsm::VarId> vars;
  for (int v = 0; v < 3; ++v) {
    vars.push_back(sys.define_data("v" + std::to_string(v), g));
  }
  for (const net::NodeId m : members) sys.node(m).enable_applied_log(true);

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kWritesPer = 6;
  for (std::size_t w = 0; w < kWriters; ++w) {
    const auto writer = static_cast<net::NodeId>(rng.below(6));
    for (std::size_t k = 0; k < kWritesPer; ++k) {
      const dsm::VarId var = vars[rng.below(vars.size())];
      const auto value = static_cast<dsm::Word>(rng.below(1'000'000));
      sched.at(rng.below(50'000), [&sys, writer, var, value] {
        sys.node(writer).write(var, value);
      });
    }
  }
  sched.run();

  // Reliability must have fully recovered: nothing abandoned, nothing stuck.
  EXPECT_EQ(sys.reliable().stats().expirations, 0u);
  EXPECT_EQ(sys.reliable().in_flight(), 0u);

  const auto& reference = sys.node(members[0]).applied_log(g);
  ASSERT_EQ(reference.size(), kWriters * kWritesPer);
  for (const net::NodeId m : members) {
    const auto& log = sys.node(m).applied_log(g);
    ASSERT_EQ(log.size(), reference.size()) << "node " << m << " seed " << seed;
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, reference[i].seq);
      EXPECT_EQ(log[i].var, reference[i].var);
      EXPECT_EQ(log[i].value, reference[i].value);
      EXPECT_EQ(log[i].origin, reference[i].origin);
    }
  }
  for (const dsm::VarId v : vars) {
    const dsm::Word expect = sys.node(members[0]).read(v);
    for (const net::NodeId m : members) EXPECT_EQ(sys.node(m).read(v), expect);
  }
  EXPECT_TRUE(audit.checker.ok()) << "seed " << seed << ": "
                                  << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GwcFaultSoak,
                         ::testing::Range<std::uint64_t>(1000, 1060));

class CounterFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

// Mirror of the optimistic-properties invariant: every increment applied
// exactly once (mutual exclusion + serializability), now with speculation,
// rollback, and lock hand-off all running over the lossy fiber.
TEST_P(CounterFaultSoak, EveryIncrementAppliedExactlyOnce) {
  const std::uint64_t seed = GetParam();
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams p;
  p.increments_per_node = 6;
  p.think_mean_ns = 20'000;  // contended: speculation and queuing both occur
  p.seed = seed;
  p.dsm.faults = standard_attack(seed);
  GwcAudit audit;
  p.dsm.recorder = &audit.recorder;
  const auto method = seed % 2 == 0 ? workloads::CounterMethod::kOptimisticGwc
                                    : workloads::CounterMethod::kRegularGwc;
  const auto res = workloads::run_counter(method, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count) << "seed " << seed;
  EXPECT_EQ(res.faults.expirations, 0u);
  EXPECT_TRUE(audit.checker.ok()) << "seed " << seed << ": "
                                  << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterFaultSoak,
                         ::testing::Range<std::uint64_t>(2000, 2040));

class Fig7FaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

// The paper's most complex rollback interaction, replayed under loss: the
// end state must still equal both updates applied in lock order, whatever
// the retransmission timing did to the interleaving.
TEST_P(Fig7FaultSoak, RollbackInteractionStaysCorrect) {
  workloads::Fig7Params p;
  p.dsm.faults = standard_attack(GetParam());
  GwcAudit audit;
  p.dsm.recorder = &audit.recorder;
  const auto res = workloads::run_scenario_fig7(p);
  EXPECT_EQ(res.final_a, res.expected_a) << "seed " << GetParam();
  EXPECT_TRUE(audit.checker.ok()) << "seed " << GetParam() << ": "
                                  << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig7FaultSoak,
                         ::testing::Range<std::uint64_t>(3000, 3010));

class CoalescedFaultSoak
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t>> {};

// The counter soak again, now with root write coalescing (and, at batch > 1,
// piggybacked acks) layered on top of the lossy fiber: frames holding many
// sequenced writes — including grants riding with the releaser's final
// updates — are dropped, duplicated, and reordered, and every member must
// still apply the root's exact sequence.
TEST_P(CoalescedFaultSoak, CounterStaysExactAtEveryBatchSize) {
  const auto [batch, seed] = GetParam();
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams p;
  p.increments_per_node = 6;
  p.think_mean_ns = 20'000;
  p.seed = seed;
  p.dsm.faults = standard_attack(seed);
  p.dsm.coalesce_max_writes = batch;
  if (batch > 1) p.dsm.reliable.ack_delay_ns = 4'000;
  GwcAudit audit;
  p.dsm.recorder = &audit.recorder;
  const auto method = seed % 2 == 0 ? workloads::CounterMethod::kOptimisticGwc
                                    : workloads::CounterMethod::kRegularGwc;
  const auto res = workloads::run_counter(method, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count)
      << "batch " << batch << " seed " << seed;
  EXPECT_EQ(res.faults.expirations, 0u);
  EXPECT_TRUE(audit.checker.ok()) << "batch " << batch << " seed " << seed
                                  << ": " << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BatchBySeed, CoalescedFaultSoak,
    ::testing::Combine(::testing::Values(1u, 4u, 64u),
                       ::testing::Range<std::uint64_t>(5000, 5012)));

TEST(FaultSoak, PartitionWindowHealsWithoutDataLoss) {
  // A tree edge goes dark for 100 us at the start of the run: every message
  // across it in the window is destroyed, yet retransmission after the heal
  // delivers everything and the counter stays exact.
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams p;
  p.increments_per_node = 5;
  p.think_mean_ns = 30'000;
  p.dsm.faults = faults::FaultPlan(1);
  p.dsm.faults.partition_link(0, 1, 0, 100'000);
  const auto res =
      workloads::run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_GT(res.faults.drops_injected, 0u);  // the partition actually bit
  EXPECT_GT(res.faults.retransmits, 0u);
  EXPECT_EQ(res.faults.expirations, 0u);
}

TEST(FaultSoak, NodePauseDelaysButPreservesCorrectness) {
  // Node 2 stalls for 80 us mid-run (GC-style): its traffic is held, not
  // lost; the reliable layer reorders the held messages back into FIFO.
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams p;
  p.increments_per_node = 5;
  p.think_mean_ns = 30'000;
  p.dsm.faults = faults::FaultPlan(2);
  p.dsm.faults.pause_node(2, 40'000, 120'000);
  const auto res =
      workloads::run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_GT(res.faults.delays_injected, 0u);
  EXPECT_EQ(res.faults.expirations, 0u);
}

TEST(FaultSoak, FaultScheduleReplaysDeterministically) {
  // A (plan, seed) pair is a value: the same configured run twice produces
  // bit-identical results — the property every soak seed above relies on.
  auto run = [] {
    const net::MeshTorus2D topo(2, 2);
    workloads::CounterParams p;
    p.increments_per_node = 6;
    p.dsm.faults = standard_attack(4242);
    return workloads::run_counter(workloads::CounterMethod::kOptimisticGwc, p,
                                  topo);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.final_count, b.final_count);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.faults.drops_injected, b.faults.drops_injected);
  EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);
}

TEST(FaultSoak, FaultCountersSurfaceInResult) {
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams p;
  p.increments_per_node = 8;
  p.dsm.faults = faults::FaultPlan(7);
  p.dsm.faults.drop(0.25, "data").drop(0.25, "lock");
  const auto res =
      workloads::run_counter(workloads::CounterMethod::kRegularGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_GT(res.faults.drops_injected, 0u);
  EXPECT_GT(res.faults.retransmits, 0u);
  EXPECT_GT(res.faults.acks_sent, 0u);
  EXPECT_FALSE(res.faults.quiet());
}

TEST(FaultSoak, ExplicitReliableWithoutFaultsIsTransparent) {
  // Turning the reliable layer on over a loss-free fiber must not change
  // the workload's outcome — only add ack traffic.
  const net::MeshTorus2D topo(2, 2);
  workloads::CounterParams base;
  base.increments_per_node = 6;
  const auto plain = workloads::run_counter(
      workloads::CounterMethod::kOptimisticGwc, base, topo);
  workloads::CounterParams rel = base;
  rel.dsm.reliable.enabled = true;
  const auto reliable = workloads::run_counter(
      workloads::CounterMethod::kOptimisticGwc, rel, topo);
  EXPECT_EQ(reliable.final_count, reliable.expected_count);
  EXPECT_EQ(reliable.final_count, plain.final_count);
  EXPECT_EQ(reliable.faults.retransmits, 0u);
  EXPECT_GT(reliable.faults.acks_sent, 0u);
  EXPECT_GT(reliable.messages, plain.messages);  // the acks
}

}  // namespace
}  // namespace optsync
