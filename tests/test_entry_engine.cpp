#include "consistency/entry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/random.hpp"

namespace optsync::consistency {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n)
      : topo(n), net_(sched, topo, net::LinkModel::paper()),
        ec(net_, EntryEngine::Config{}) {}
  sim::Scheduler sched;
  net::FullyConnected topo;
  net::Network net_;
  EntryEngine ec;
};

sim::Process hold_helper(sim::Scheduler& sched, EntryEngine& ec,
                         EntryEngine::LockId l, net::NodeId n,
                         sim::Duration d, int* active, int* max_active) {
  co_await ec.acquire(n, l).join();
  *active += 1;
  *max_active = std::max(*max_active, *active);
  co_await sim::delay(sched, d);
  *active -= 1;
  ec.release(n, l);
}

sim::Process hold(Fixture& f, EntryEngine::LockId l, net::NodeId n,
                  sim::Duration d, int* active, int* max_active) {
  co_await f.ec.acquire(n, l).join();
  *active += 1;
  *max_active = std::max(*max_active, *active);
  co_await sim::delay(f.sched, d);
  *active -= 1;
  f.ec.release(n, l);
}

TEST(EntryEngine, OwnerReacquiresLocally) {
  Fixture f(4);
  const auto l = f.ec.create_lock(2, 128);
  int active = 0, max_active = 0;
  auto p = hold(f, l, 2, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.ec.stats().local_grants, 1u);
  EXPECT_EQ(f.ec.stats().transfers, 0u);
  EXPECT_EQ(f.net_.stats().messages, 0u);  // releases are local too
}

TEST(EntryEngine, RemoteAcquireTransfersOwnershipAndData) {
  Fixture f(4);
  const auto l = f.ec.create_lock(0, 128);
  int active = 0, max_active = 0;
  auto p = hold(f, l, 3, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.ec.owner(l), 3u);
  EXPECT_EQ(f.ec.stats().transfers, 1u);
  // Data travelled with the grant: 16 control + 128 data bytes.
  EXPECT_GE(f.net_.stats().bytes, 16u + 144u);
}

TEST(EntryEngine, MutualExclusion) {
  Fixture f(8);
  const auto l = f.ec.create_lock(0, 64);
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < 8; ++n) {
    procs.push_back(hold(f, l, n, 500, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(f.ec.stats().acquisitions, 8u);
}

TEST(EntryEngine, QueuedRequestsServedInOrderAtOwner) {
  Fixture f(4);
  const auto l = f.ec.create_lock(0, 64);
  std::vector<net::NodeId> order;
  auto worker = [&f, &order, l](net::NodeId n,
                                sim::Duration start) -> sim::Process {
    co_await sim::delay(f.sched, start);
    co_await f.ec.acquire(n, l).join();
    order.push_back(n);
    co_await sim::delay(f.sched, 200);
    f.ec.release(n, l);
  };
  std::vector<sim::Process> procs;
  procs.push_back(worker(1, 0));
  procs.push_back(worker(2, 10'000));
  procs.push_back(worker(3, 20'000));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(order, (std::vector<net::NodeId>{1, 2, 3}));
}

TEST(EntryEngine, ExclusiveEntryInvalidatesReaders) {
  Fixture f(4);
  const auto l = f.ec.create_lock(0, 64);
  f.ec.add_reader(l, 2);
  f.ec.add_reader(l, 3);
  int active = 0, max_active = 0;
  auto p = hold(f, l, 1, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.ec.stats().invalidations, 1u);
}

TEST(EntryEngine, InvalidationSignalsReachReaders) {
  Fixture f(4);
  const auto l = f.ec.create_lock(0, 64);
  f.ec.add_reader(l, 2);
  bool invalidated = false;
  // Named closure: invoking a capturing lambda coroutine as a temporary
  // would leave the frame referencing a destroyed closure.
  auto waiter_fn = [&f, &invalidated]() -> sim::Process {
    co_await f.ec.invalidation_signal(2).wait();
    invalidated = true;
  };
  auto waiter = waiter_fn();
  int active = 0, max_active = 0;
  auto p = hold(f, l, 1, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  waiter.rethrow_if_failed();
  EXPECT_TRUE(invalidated);
}

TEST(EntryEngine, DemandFetchCostsRoundTrip) {
  Fixture f(4);
  const auto l = f.ec.create_lock(0, 64);
  sim::Time done_at = 0;
  auto p = [](Fixture& fx, EntryEngine::LockId lk,
              sim::Time* out) -> sim::Process {
    co_await fx.ec.read_nonexclusive(3, lk).join();
    *out = fx.sched.now();
  }(f, l, &done_at);
  f.sched.run();
  p.rethrow_if_failed();
  // One hop each way: request 16B (328 ns) + reply 24B (392 ns).
  EXPECT_EQ(done_at, 328u + 392u);
  EXPECT_EQ(f.ec.stats().demand_fetches, 1u);
}

TEST(EntryEngine, OwnerReadIsLocal) {
  Fixture f(4);
  const auto l = f.ec.create_lock(3, 64);
  auto p = [](Fixture& fx, EntryEngine::LockId lk) -> sim::Process {
    co_await fx.ec.read_nonexclusive(3, lk).join();
  }(f, l);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.ec.stats().demand_fetches, 0u);
  EXPECT_EQ(f.net_.stats().messages, 0u);
}

TEST(EntryEngine, CachedReadsSkipRefetchUntilInvalidated) {
  Fixture fx(4);
  EntryEngine::Config cfg;
  cfg.cache_reads = true;
  EntryEngine ec(fx.net_, cfg);
  const auto l = ec.create_lock(0, 64);
  auto p = [](EntryEngine& e, EntryEngine::LockId lk) -> sim::Process {
    co_await e.read_nonexclusive(2, lk).join();  // fetch
    co_await e.read_nonexclusive(2, lk).join();  // cached
    co_await e.read_nonexclusive(2, lk).join();  // cached
  }(ec, l);
  fx.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(ec.stats().demand_fetches, 1u);
  EXPECT_EQ(ec.stats().cached_reads, 2u);
}

TEST(EntryEngine, LargerDataCostsMoreTransferTime) {
  auto time_for = [](std::uint32_t bytes) {
    Fixture f(2);
    const auto l = f.ec.create_lock(0, bytes);
    int active = 0, max_active = 0;
    auto p = hold(f, l, 1, 0, &active, &max_active);
    f.sched.run();
    p.rethrow_if_failed();
    return f.sched.now();
  };
  EXPECT_GT(time_for(1024), time_for(16));
}

TEST(EntryEngine, ManagerRoutingAddsALeg) {
  // Directory scheme: request -> manager -> owner -> data+grant, vs the
  // perfect-guess direct request. Same result, one extra message.
  auto run_acquire = [](bool via_manager) {
    sim::Scheduler sched;
    net::FullyConnected topo(4);
    net::Network net(sched, topo, net::LinkModel::paper());
    EntryEngine::Config cfg;
    cfg.route_via_manager = via_manager;
    cfg.manager = 2;
    EntryEngine ec(net, cfg);
    const auto l = ec.create_lock(0, 64);
    int active = 0, max_active = 0;
    auto p = hold_helper(sched, ec, l, 3, 100, &active, &max_active);
    sched.run();
    p.rethrow_if_failed();
    return net.stats().messages;
  };
  EXPECT_EQ(run_acquire(true), run_acquire(false) + 1);
}

TEST(EntryEngine, ManagerIsOwnRequestStillDirect) {
  sim::Scheduler sched;
  net::FullyConnected topo(4);
  net::Network net(sched, topo, net::LinkModel::paper());
  EntryEngine::Config cfg;
  cfg.route_via_manager = true;
  cfg.manager = 3;
  EntryEngine ec(net, cfg);
  const auto l = ec.create_lock(0, 64);
  int active = 0, max_active = 0;
  // The manager itself requesting: no self-send, just request + grant.
  auto p = hold_helper(sched, ec, l, 3, 100, &active, &max_active);
  sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(ec.owner(l), 3u);
}

TEST(EntryEngine, StressRandomizedExclusivity) {
  Fixture f(6);
  const auto l = f.ec.create_lock(0, 32);
  int active = 0, max_active = 0;
  sim::Rng rng(5);
  auto worker = [&](net::NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng local(seed);
    for (int k = 0; k < 10; ++k) {
      co_await sim::delay(f.sched, local.below(4'000));
      co_await f.ec.acquire(me, l).join();
      active += 1;
      max_active = std::max(max_active, active);
      co_await sim::delay(f.sched, 100 + local.below(400));
      active -= 1;
      f.ec.release(me, l);
    }
  };
  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < 6; ++i) procs.push_back(worker(i, rng.next()));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
}

}  // namespace
}  // namespace optsync::consistency
