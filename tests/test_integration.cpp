// Cross-module integration: optimistic mutexes, single-writer publication,
// and the eager barrier cooperating in one simulation — the combination a
// real application (e.g. the iterative_solver example) uses.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/optimistic_mutex.hpp"
#include "core/publication.hpp"
#include "core/section_builder.hpp"
#include "dsm/system.hpp"
#include "simkern/random.hpp"
#include "sync/barrier.hpp"

namespace optsync {
namespace {

// A BSP round: every node bumps a global counter under the optimistic
// mutex, publishes its view, crosses the barrier, then checks that every
// other node's published view matches the committed counter — which GWC
// ordering (writes precede the barrier arrival in group order) guarantees.
TEST(Integration, MutexPublicationBarrierRounds) {
  constexpr std::size_t kNodes = 8;
  constexpr int kRounds = 6;

  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(kNodes);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  std::vector<dsm::NodeId> members;
  for (dsm::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto lock = sys.define_lock("L", g);
  const auto counter = sys.define_mutex_data("ctr", g, lock, 0);
  core::OptimisticMutex mux(sys, lock, core::OptimisticMutex::Config{});
  sync::EagerBarrier barrier(sys, g, "bar");

  std::vector<std::unique_ptr<core::PublishedRecord>> views;
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    views.push_back(std::make_unique<core::PublishedRecord>(
        sys, g, "view" + std::to_string(i), 1, i));
  }

  bool consistent = true;
  std::vector<sim::Process> procs;
  auto node_main = [&](dsm::NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng rng(seed);
    for (int round = 0; round < kRounds; ++round) {
      co_await sim::delay(sched, rng.below(3'000));
      // 1. increment the global counter under the mutex.
      auto sec = core::read_compute_write(
          sys, counter, counter, 400, [](dsm::Word v) { return v + 1; });
      co_await mux.execute(me, std::move(sec)).join();
      // 2. publish my local view of the counter.
      views[me]->publish({sys.node(me).read(counter)});
      // 3. barrier.
      co_await barrier.wait(me).join();
      // 4. after the barrier every published view from this round is both
      // locally present and consistent with group order: no view may
      // exceed the counter value visible locally now.
      const dsm::Word now_visible = sys.node(me).read(counter);
      for (dsm::NodeId other = 0; other < kNodes; ++other) {
        const auto snap = views[other]->try_read(me);
        if (!snap.has_value() || (*snap)[0] > now_visible) {
          consistent = false;
        }
      }
    }
  };
  sim::Rng seeds(2026);
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    procs.push_back(node_main(i, seeds.next()));
  }
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  EXPECT_TRUE(consistent);
  // Every increment committed exactly once despite speculation.
  for (dsm::NodeId n = 0; n < kNodes; ++n) {
    EXPECT_EQ(sys.node(n).read(counter),
              static_cast<dsm::Word>(kNodes) * kRounds);
  }
  EXPECT_EQ(barrier.stats().episodes, kNodes * kRounds);
  const auto& ms = mux.stats();
  EXPECT_EQ(ms.optimistic_successes + ms.rollbacks + ms.regular_paths,
            ms.executions);
}

// The same application logic must also hold under injected root congestion.
TEST(Integration, SurvivesRootJitter) {
  constexpr std::size_t kNodes = 6;
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(kNodes);
  dsm::DsmConfig cfg;
  cfg.root_jitter_ns = 4'000;
  dsm::DsmSystem sys(sched, topo, cfg);
  std::vector<dsm::NodeId> members;
  for (dsm::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 2);
  const auto lock = sys.define_lock("L", g);
  const auto counter = sys.define_mutex_data("ctr", g, lock, 0);
  core::OptimisticMutex mux(sys, lock, core::OptimisticMutex::Config{});
  sync::EagerBarrier barrier(sys, g, "bar");

  std::vector<sim::Process> procs;
  auto node_main = [&](dsm::NodeId me) -> sim::Process {
    for (int round = 0; round < 4; ++round) {
      auto sec = core::read_compute_write(
          sys, counter, counter, 300, [](dsm::Word v) { return v + 1; });
      co_await mux.execute(me, std::move(sec)).join();
      co_await barrier.wait(me).join();
      // Barrier implies all increments of the round are locally visible.
      EXPECT_GE(sys.node(me).read(counter),
                static_cast<dsm::Word>(kNodes) * (round + 1));
    }
  };
  for (dsm::NodeId i = 0; i < kNodes; ++i) procs.push_back(node_main(i));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(sys.node(0).read(counter), 24);
}

}  // namespace
}  // namespace optsync
