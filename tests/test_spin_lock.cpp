#include "sync/spin_lock.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/random.hpp"

namespace optsync::sync {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n)
      : topo(net::MeshTorus2D::near_square(n)),
        net_(sched, topo, net::LinkModel::paper()) {}
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  net::Network net_;
};

sim::Process cycle(Fixture& f, TasSpinLock& lk, net::NodeId n,
                   sim::Duration hold, int* active, int* max_active) {
  co_await lk.acquire(n).join();
  *active += 1;
  *max_active = std::max(*max_active, *active);
  co_await sim::delay(f.sched, hold);
  *active -= 1;
  lk.release(n);
}

TEST(TasSpinLock, UncontendedAcquireTakesOneAttempt) {
  Fixture f(4);
  TasSpinLock lk(f.net_, 0, TasSpinLock::Config{});
  int active = 0, max_active = 0;
  auto p = cycle(f, lk, 3, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(lk.stats().attempts, 1u);
  EXPECT_EQ(lk.stats().acquisitions, 1u);
  EXPECT_EQ(lk.stats().releases, 1u);
}

TEST(TasSpinLock, MutualExclusion) {
  Fixture f(9);
  TasSpinLock lk(f.net_, 0, TasSpinLock::Config{});
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < 9; ++n) {
    procs.push_back(cycle(f, lk, n, 700, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(lk.stats().acquisitions, 9u);
}

TEST(TasSpinLock, ContentionCostsExtraAttempts) {
  // The paper's §1.3 point: repeated testing produces network traffic.
  Fixture f(9);
  TasSpinLock lk(f.net_, 0, TasSpinLock::Config{});
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < 9; ++n) {
    procs.push_back(cycle(f, lk, n, 5'000, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_GT(lk.stats().attempts, lk.stats().acquisitions);
  EXPECT_GT(f.net_.stats().messages, 9u * 3u);
}

TEST(TasSpinLock, BackoffBounded) {
  TasSpinLock::Config cfg;
  cfg.backoff_base_ns = 100;
  cfg.backoff_max_ns = 400;
  Fixture f(4);
  TasSpinLock lk(f.net_, 0, cfg);
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < 4; ++n) {
    procs.push_back(cycle(f, lk, n, 20'000, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(lk.stats().acquisitions, 4u);
}

TEST(TasSpinLock, HolderTracked) {
  Fixture f(4);
  TasSpinLock lk(f.net_, 1, TasSpinLock::Config{});
  EXPECT_FALSE(lk.held());
  auto p = [](TasSpinLock& lock) -> sim::Process {
    co_await lock.acquire(2).join();
    EXPECT_TRUE(lock.held());
    EXPECT_EQ(lock.holder(), 2u);
    lock.release(2);
  }(lk);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_FALSE(lk.held());
}

}  // namespace
}  // namespace optsync::sync
