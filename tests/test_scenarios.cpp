// Integration tests over the figure scenarios (Fig. 1 and Fig. 7).
#include <gtest/gtest.h>

#include "workloads/scenario_fig1.hpp"
#include "workloads/scenario_fig7.hpp"

namespace optsync::workloads {
namespace {

// ------------------------------------------------------------- Figure 1 --

TEST(Fig1, AllModelsServeAllThreeCpus) {
  for (const auto m :
       {Fig1Model::kGwc, Fig1Model::kEntry, Fig1Model::kWeakRelease}) {
    const auto res = run_scenario_fig1(m, Fig1Params{});
    int served = 0;
    for (const int cpu : res.grant_order) {
      if (cpu >= 1 && cpu <= 3) ++served;
    }
    EXPECT_EQ(served, 3) << fig1_model_name(m);
    EXPECT_GT(res.total_ns, 0u);
    EXPECT_FALSE(res.timeline.empty());
  }
}

TEST(Fig1, EarlyRequestersGoFirst) {
  // CPU1 requests first, CPU3 second, CPU2 last — FIFO service in every
  // model given the generous request spacing.
  for (const auto m :
       {Fig1Model::kGwc, Fig1Model::kEntry, Fig1Model::kWeakRelease}) {
    const auto res = run_scenario_fig1(m, Fig1Params{});
    EXPECT_EQ(res.grant_order[0], 1) << fig1_model_name(m);
    EXPECT_EQ(res.grant_order[1], 3) << fig1_model_name(m);
    EXPECT_EQ(res.grant_order[2], 2) << fig1_model_name(m);
  }
}

TEST(Fig1, ModelOrderingMatchesPaper) {
  // §3: "Entry consistency is not as rapid as Sesame. ... Weak and release
  // consistency take much longer than GWC" — GWC < entry < weak/release.
  const auto gwc = run_scenario_fig1(Fig1Model::kGwc, Fig1Params{});
  const auto entry = run_scenario_fig1(Fig1Model::kEntry, Fig1Params{});
  const auto weak = run_scenario_fig1(Fig1Model::kWeakRelease, Fig1Params{});
  EXPECT_LT(gwc.total_ns, entry.total_ns);
  EXPECT_LT(entry.total_ns, weak.total_ns);
}

TEST(Fig1, GwcWastesLeastIdleTime) {
  const auto gwc = run_scenario_fig1(Fig1Model::kGwc, Fig1Params{});
  const auto entry = run_scenario_fig1(Fig1Model::kEntry, Fig1Params{});
  const auto weak = run_scenario_fig1(Fig1Model::kWeakRelease, Fig1Params{});
  const auto idle = [](const Fig1Result& r) {
    return r.idle_ns[0] + r.idle_ns[1] + r.idle_ns[2];
  };
  EXPECT_LT(idle(gwc), idle(entry));
  EXPECT_LT(idle(gwc), idle(weak));
}

TEST(Fig1, FirstRequesterBarelyWaitsUnderGwc) {
  const auto res = run_scenario_fig1(Fig1Model::kGwc, Fig1Params{});
  // CPU1's wait is just its request/grant round trip through the root.
  EXPECT_LT(res.idle_ns[0], 2'000u);
}

TEST(Fig1, WeakReleaseBlocksOnUpdatePropagation) {
  // Weak/release holds each grant back until the previous holder's updates
  // reached all nodes, so CPU3 (second in line) waits longer than under GWC.
  const auto gwc = run_scenario_fig1(Fig1Model::kGwc, Fig1Params{});
  const auto weak = run_scenario_fig1(Fig1Model::kWeakRelease, Fig1Params{});
  EXPECT_GT(weak.idle_ns[2], gwc.idle_ns[2]);
}

// ------------------------------------------------------------- Figure 7 --

TEST(Fig7, RollbackInteractionEndsCorrect) {
  const auto res = run_scenario_fig7(Fig7Params{});
  EXPECT_EQ(res.final_a, res.expected_a);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_GE(res.speculative_drops, 1u);
  EXPECT_TRUE(res.far_used_optimistic);
  EXPECT_TRUE(res.near_used_optimistic);
}

TEST(Fig7, TraceMentionsTheProtocolSteps) {
  const auto res = run_scenario_fig7(Fig7Params{});
  EXPECT_NE(res.trace.find("lock-up"), std::string::npos);
  EXPECT_NE(res.trace.find("lock-down"), std::string::npos);
  EXPECT_NE(res.trace.find("data-up"), std::string::npos);
}

TEST(Fig7, LongerSpeculationStillRollsBackCleanly) {
  Fig7Params p;
  p.far_section_ns = 20'000;  // far node mid-body when the interrupt hits
  p.near_section_ns = 60'000;
  const auto res = run_scenario_fig7(p);
  EXPECT_EQ(res.final_a, res.expected_a);
  EXPECT_EQ(res.rollbacks, 1u);
}

TEST(Fig7, LateArrivingStaleWritePropagatesButIsCorrectedBeforeRelease) {
  // The other timing (paper §4 last paragraph of the HW-blocking
  // discussion): the stale write reaches the root AFTER the root granted
  // the lock to the speculator, so it passes through — but locking means
  // nobody can read it before the re-executed section overwrites it.
  Fig7Params p;
  p.near_section_ns = 500;  // near releases before the stale write lands
  p.far_section_ns = 8'000;
  const auto res = run_scenario_fig7(p);
  EXPECT_EQ(res.final_a, res.expected_a);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_EQ(res.speculative_drops, 0u);  // root let it through this time
  EXPECT_GE(res.echoes_dropped, 1u);     // HW blocking caught the echo
}

TEST(Fig7, BiggerRingsWork) {
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    Fig7Params p;
    p.nodes = n;
    const auto res = run_scenario_fig7(p);
    EXPECT_EQ(res.final_a, res.expected_a) << "ring " << n;
    EXPECT_EQ(res.rollbacks, 1u) << "ring " << n;
  }
}

TEST(Fig7, Deterministic) {
  const auto a = run_scenario_fig7(Fig7Params{});
  const auto b = run_scenario_fig7(Fig7Params{});
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

}  // namespace
}  // namespace optsync::workloads
