// The optimistic mutex under real concurrency: threads race the interrupt
// handler, the sequencer filters speculative writes, rollbacks restore
// memory — and the shared counter must still be exact.
#include "rt/rt_mutex.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

namespace optsync::rt {
namespace {

RtSystem::Config cfg(std::size_t n, std::uint32_t delay_us = 0) {
  RtSystem::Config c;
  c.nodes = n;
  c.link_delay_us = delay_us;
  return c;
}

TEST(RtOptimisticMutex, SingleSectionSucceedsOptimistically) {
  RtSystem sys(cfg(4));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex mux(sys, l, RtOptimisticMutex::Config{});

  RtOptimisticMutex::Section sec;
  sec.shared_writes = {a};
  sec.body = [&sys, a](NodeId me) {
    const Word v = sys.read(me, a);
    sys.write(me, a, v + 1);
  };
  const auto outcome = mux.execute(2, sec);
  EXPECT_TRUE(outcome.used_optimistic);
  EXPECT_FALSE(outcome.rolled_back);
  sys.quiesce();
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(sys.read(n, a), 1);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(sys.read(n, l), kLockFree);
}

TEST(RtOptimisticMutex, DisabledOptimismTakesRegularPath) {
  RtSystem sys(cfg(3));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex::Config mcfg;
  mcfg.enable_optimistic = false;
  RtOptimisticMutex mux(sys, l, mcfg);
  RtOptimisticMutex::Section sec;
  sec.shared_writes = {a};
  sec.body = [&sys, a](NodeId me) { sys.write(me, a, sys.read(me, a) + 1); };
  mux.execute(1, sec);
  sys.quiesce();
  EXPECT_EQ(mux.stats_view().regular_paths, 1u);
  EXPECT_EQ(mux.stats_view().optimistic_attempts, 0u);
  EXPECT_EQ(sys.read(0, a), 1);
}

struct StressCase {
  std::size_t nodes;
  int sections;
  std::uint32_t link_delay_us;
  unsigned jitter_us;
};

class RtMutexStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(RtMutexStress, CounterExactUnderRacingThreads) {
  const auto& c = GetParam();
  RtSystem sys(cfg(c.nodes, c.link_delay_us));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex mux(sys, l, RtOptimisticMutex::Config{});

  std::atomic<int> in_section{0};
  std::atomic<bool> overlap{false};

  std::vector<std::thread> threads;
  for (NodeId n = 0; n < c.nodes; ++n) {
    threads.emplace_back([&, n] {
      std::mt19937 rng(n * 7919u + 13u);
      std::uniform_int_distribution<unsigned> jitter(0, c.jitter_us);
      for (int k = 0; k < c.sections; ++k) {
        if (c.jitter_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter(rng)));
        }
        RtOptimisticMutex::Section sec;
        sec.shared_writes = {a};
        sec.body = [&sys, a, &in_section, &overlap](NodeId me) {
          // The body may run speculatively without the lock; the EXCLUSIVE
          // property we can assert is on committed state, checked below.
          // Still track simultaneous *post-grant* bodies via rollback-free
          // reasoning: count overlapping body executions; speculative
          // overlap is legal, so only record, don't assert.
          if (in_section.fetch_add(1) > 0) overlap.store(true);
          const Word v = sys.read(me, a);
          std::this_thread::yield();
          sys.write(me, a, v + 1);
          in_section.fetch_sub(1);
        };
        mux.execute(n, sec);
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.quiesce();

  const Word expected = static_cast<Word>(c.nodes) * c.sections;
  for (NodeId n = 0; n < c.nodes; ++n) {
    EXPECT_EQ(sys.read(n, a), expected) << "node " << n;
  }
  const auto ms = mux.stats_view();
  EXPECT_EQ(ms.executions,
            static_cast<std::uint64_t>(c.nodes) * c.sections);
  EXPECT_EQ(ms.optimistic_successes + ms.rollbacks + ms.regular_paths,
            ms.executions);
}

INSTANTIATE_TEST_SUITE_P(
    Races, RtMutexStress,
    ::testing::Values(StressCase{2, 60, 0, 0}, StressCase{4, 30, 0, 50},
                      StressCase{4, 30, 30, 0}, StressCase{8, 15, 10, 100}));

TEST(RtOptimisticMutex, RollbacksHappenAndStateStaysExact) {
  // Two nodes hammer with no think time: speculation failures are certain
  // on at least some runs; correctness must hold regardless.
  RtSystem sys(cfg(2, /*link delay*/ 50));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex mux(sys, l, RtOptimisticMutex::Config{});

  auto hammer = [&](NodeId n, int count) {
    for (int k = 0; k < count; ++k) {
      RtOptimisticMutex::Section sec;
      sec.shared_writes = {a};
      sec.body = [&sys, a](NodeId me) {
        const Word v = sys.read(me, a);
        sys.write(me, a, v + 1);
      };
      mux.execute(n, sec);
    }
  };
  std::thread t0(hammer, 0, 40);
  std::thread t1(hammer, 1, 40);
  t0.join();
  t1.join();
  sys.quiesce();
  EXPECT_EQ(sys.read(0, a), 80);
  EXPECT_EQ(sys.read(1, a), 80);
}

TEST(RtOptimisticMutex, ObserverNeverSeesSpeculativeValues) {
  // A third node that polls the counter concurrently must observe only the
  // committed chain: non-decreasing, stepping by 1 (speculative writes are
  // filtered at the sequencer and HW-blocked as echoes; they can only ever
  // pollute the speculator's own memory, which rollback repairs).
  RtSystem sys(cfg(3, /*link delay*/ 20));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex mux(sys, l, RtOptimisticMutex::Config{});

  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::thread observer([&] {
    Word last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const Word v = sys.read(2, a);
      if (v < last || v > last + 64) monotone.store(false);
      if (v > last) last = v;
      std::this_thread::yield();
    }
  });

  auto hammer = [&](NodeId n) {
    for (int k = 0; k < 30; ++k) {
      RtOptimisticMutex::Section sec;
      sec.shared_writes = {a};
      sec.body = [&sys, a](NodeId me) {
        sys.write(me, a, sys.read(me, a) + 1);
      };
      mux.execute(n, sec);
    }
  };
  std::thread t0(hammer, 0);
  std::thread t1(hammer, 1);
  t0.join();
  t1.join();
  sys.quiesce();
  stop.store(true, std::memory_order_release);
  observer.join();

  EXPECT_TRUE(monotone.load());
  EXPECT_EQ(sys.read(2, a), 60);
}

TEST(RtOptimisticMutex, LocalSaveRestoreHooksRunOnRollback) {
  RtSystem sys(cfg(2, 50));
  const auto l = sys.define_lock("l");
  const auto a = sys.define_mutex_data("a", l);
  RtOptimisticMutex mux(sys, l, RtOptimisticMutex::Config{});

  std::atomic<int> saves{0}, restores{0};
  auto worker = [&](NodeId n) {
    for (int k = 0; k < 30; ++k) {
      RtOptimisticMutex::Section sec;
      sec.shared_writes = {a};
      sec.save_locals = [&saves] { saves.fetch_add(1); };
      sec.restore_locals = [&restores] { restores.fetch_add(1); };
      sec.body = [&sys, a](NodeId me) {
        sys.write(me, a, sys.read(me, a) + 1);
      };
      mux.execute(n, sec);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  sys.quiesce();
  EXPECT_EQ(sys.read(0, a), 60);
  EXPECT_EQ(restores.load(),
            static_cast<int>(mux.stats_view().rollbacks));
  EXPECT_EQ(saves.load(),
            static_cast<int>(mux.stats_view().optimistic_attempts));
}

}  // namespace
}  // namespace optsync::rt
