// OCC transaction-layer unit tests: orec versioning propagates with the
// frames, speculative writes stay local until commit, the undo log
// restores exact bytes on abort, read-set validation catches conflicting
// commits, a read-set clobber dooms the transaction while a blind write
// survives it (and aborts converge on the foreign committed value), the
// contention manager escalates after its abort budget, and the store's
// multi_rmw/multi_get ride the layer without losing updates.
#include "txn/txn.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/assert.hpp"
#include "sync/gwc_lock.hpp"
#include "txn/contention.hpp"
#include "txn/orec.hpp"

namespace optsync::txn {
namespace {

// One site over one 8-node group; payload vars x/y/z sit on stripes
// 0/1/2 by convention (the caller owns the stripe mapping, like the
// sharded store's slot == stripe rule).
struct Fixture {
  Fixture() : topo(net::MeshTorus2D::near_square(8)),
              sys(sched, topo, dsm::DsmConfig{}) {
    g = sys.create_group({0, 1, 2, 3, 4, 5, 6, 7}, 0);
    lock = sys.define_lock("site.lock", g);
    ver = sys.define_mutex_data("site.ver", g, lock, 0);
    x = sys.define_mutex_data("x", g, lock, 0);
    y = sys.define_mutex_data("y", g, lock, 0);
    z = sys.define_mutex_data("z", g, lock, 0);
    TxnConfig cfg;
    cfg.orec_stripes = 4;
    mgr = std::make_unique<TxnManager>(sys, cfg);
    site = mgr->add_site("site", g, lock, ver);
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  dsm::GroupId g = 0;
  dsm::VarId lock = 0, ver = 0, x = 0, y = 0, z = 0;
  std::unique_ptr<TxnManager> mgr;
  SiteId site = 0;
};

// A conflicting committed write from `n`: takes the site lock, publishes
// `value` into `v`, bumps the stripe's orec — what any non-transactional
// writer (e.g. a single-key put) does.
sim::Process foreign_commit(Fixture& f, dsm::NodeId n, dsm::VarId v,
                            std::uint32_t stripe, dsm::Word value) {
  sync::GwcQueueLock lk(f.sys, f.lock);
  co_await lk.acquire(n).join();
  f.sys.node(n).write(v, value);
  f.mgr->orecs().bump(n, f.site, stripe);
  lk.release(n);
}

// ------------------------------------------------------------------ orec ---

TEST(OrecTable, VersionsStartAtZeroAndBumpPropagates) {
  Fixture f;
  auto& orecs = f.mgr->orecs();
  ASSERT_EQ(orecs.stripes(), 4u);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(orecs.version(3, f.site, k), 0);
  }
  auto p = foreign_commit(f, 2, f.x, 0, 11);
  f.sched.run();
  p.rethrow_if_failed();
  // The bump rode the root's frames to every member.
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(orecs.version(n, f.site, 0), 1) << "node " << n;
    EXPECT_EQ(orecs.version(n, f.site, 1), 0) << "node " << n;
  }
}

TEST(OrecTable, StripeOfIsStableAndInRange) {
  Fixture f;
  auto& orecs = f.mgr->orecs();
  for (std::uint64_t k = 1; k < 200; ++k) {
    const auto s = orecs.stripe_of(k);
    EXPECT_LT(s, orecs.stripes());
    EXPECT_EQ(s, orecs.stripe_of(k));
  }
}

// ------------------------------------------------------------ speculation ---

TEST(TxnManager, SpeculativeWritesStayLocalUntilCommit) {
  Fixture f;
  bool mid_checked = false;
  auto p = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 1);
    f.mgr->write_word(t, f.site, 0, f.x, 42);
    // Read-your-writes locally; no other replica has seen anything.
    EXPECT_EQ(f.mgr->read_word(t, f.site, 0, f.x), 42);
    EXPECT_EQ(f.sys.node(2).read(f.x), 0);
    mid_checked = true;
    TxnManager::CommitResult res;
    co_await f.mgr->commit(t, &res).join();
    EXPECT_TRUE(res.committed);
  }();
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(mid_checked);
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.x), 42) << "node " << n;
    EXPECT_EQ(f.mgr->orecs().version(n, f.site, 0), 1) << "node " << n;
    EXPECT_EQ(f.sys.node(n).read(f.ver), 1) << "node " << n;
  }
  EXPECT_EQ(f.mgr->commits(), 1u);
  EXPECT_EQ(f.mgr->aborts(), 0u);
}

TEST(TxnManager, AbortRestoresExactBytes) {
  Fixture f;
  // Establish non-zero committed state first.
  auto setup = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 0);
    f.mgr->write_word(t, f.site, 0, f.x, 7);
    f.mgr->write_word(t, f.site, 1, f.y, 9);
    TxnManager::CommitResult res;
    co_await f.mgr->commit(t, &res).join();
    EXPECT_TRUE(res.committed);
  }();
  f.sched.run();
  setup.rethrow_if_failed();

  auto p = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 3);
    f.mgr->write_word(t, f.site, 0, f.x, 100);
    f.mgr->write_word(t, f.site, 1, f.y, 200);
    f.mgr->write_word(t, f.site, 1, f.y, 201);  // overwrite: one undo entry
    EXPECT_EQ(f.sys.node(3).read(f.x), 100);
    EXPECT_EQ(f.sys.node(3).read(f.y), 201);
    co_await f.mgr->abort(t).join();
  }();
  f.sched.run();
  p.rethrow_if_failed();
  // Exact pre-images restored locally; nothing ever left the node.
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.x), 7) << "node " << n;
    EXPECT_EQ(f.sys.node(n).read(f.y), 9) << "node " << n;
  }
  EXPECT_EQ(f.mgr->aborts(), 1u);
  // The ledger saw exactly the one committed transaction.
  EXPECT_EQ(f.sys.node(0).read(f.ver), 1);
}

// ------------------------------------------------------------- validation ---

TEST(TxnManager, ReadSetValidationCatchesConflictingCommit) {
  Fixture f;
  auto reader = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 1);
    // Read x (stripe 0), then speculate on y (stripe 1) while a foreign
    // commit bumps stripe 0.
    const dsm::Word seen = f.mgr->read_word(t, f.site, 0, f.x);
    EXPECT_EQ(seen, 0);
    f.mgr->write_word(t, f.site, 1, f.y, seen + 1);
    co_await sim::delay(f.sched, 300'000);  // let the writer commit
    TxnManager::CommitResult res;
    co_await f.mgr->commit(t, &res).join();
    EXPECT_FALSE(res.committed);
    EXPECT_TRUE(res.validation_failed);
  }();
  auto writer = [&]() -> sim::Process {
    co_await sim::delay(f.sched, 10'000);
    co_await foreign_commit(f, 2, f.x, 0, 55).join();
  }();
  f.sched.run();
  reader.rethrow_if_failed();
  writer.rethrow_if_failed();
  EXPECT_EQ(f.mgr->validation_failures(), 1u);
  EXPECT_EQ(f.mgr->aborts(), 1u);
  // y's speculative value was rolled back everywhere it existed (node 1).
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.x), 55) << "node " << n;
    EXPECT_EQ(f.sys.node(n).read(f.y), 0) << "node " << n;
  }
}

TEST(TxnManager, BlindWriteSurvivesClobberAndCommitsOverIt) {
  // Write-write race, no read: a foreign commit clobbers the write-set
  // variable mid-speculation, but a blind writer is NOT doomed — its
  // commit republishes the whole write-set under the site lock, which
  // orders the race (foreign first, ours second) and stays serializable.
  Fixture f;
  auto spec = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 1);
    f.mgr->write_word(t, f.site, 0, f.x, 100);  // arms the clobber interrupt
    co_await sim::delay(f.sched, 300'000);  // foreign commit lands meanwhile
    EXPECT_FALSE(t.doomed);
    // Read-your-own-writes: the local replica now holds the foreign 55,
    // but the transaction still sees its own pending 100.
    EXPECT_EQ(f.mgr->read_word(t, f.site, 0, f.x), 100);
    TxnManager::CommitResult res;
    co_await f.mgr->commit(t, &res).join();
    EXPECT_TRUE(res.committed);
  }();
  auto writer = [&]() -> sim::Process {
    co_await sim::delay(f.sched, 10'000);
    co_await foreign_commit(f, 2, f.x, 0, 55).join();
  }();
  f.sched.run();
  spec.rethrow_if_failed();
  writer.rethrow_if_failed();
  EXPECT_GE(f.mgr->clobbers_observed(), 1u);
  // Our commit is the later one in the site's serial order: 100 wins.
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.x), 100) << "node " << n;
  }
  // Both the foreign writer and our commit bumped the stripe orec; only
  // our transactional commit bumps the ledger.
  EXPECT_EQ(f.sys.node(0).read(f.ver), 1);
  EXPECT_EQ(f.mgr->orecs().version(0, f.site, 0), 2);
}

TEST(TxnManager, ReadSetClobberDoomsAndAbortKeepsForeignValue) {
  // The same race, but the transaction READ the stripe first: its
  // speculation is built on superseded state, so the clobber dooms it,
  // the commit path aborts without acquiring any lock, and the rollback
  // converges the local replica on the foreign committed value.
  Fixture f;
  auto spec = [&]() -> sim::Process {
    Txn t;
    f.mgr->begin(t, 1);
    const dsm::Word seen = f.mgr->read_word(t, f.site, 0, f.x);
    f.mgr->write_word(t, f.site, 0, f.x, seen + 100);
    co_await sim::delay(f.sched, 300'000);  // foreign commit lands meanwhile
    EXPECT_TRUE(t.doomed);
    TxnManager::CommitResult res;
    co_await f.mgr->commit(t, &res).join();
    EXPECT_FALSE(res.committed);
    EXPECT_TRUE(res.doomed_at_commit);
  }();
  auto writer = [&]() -> sim::Process {
    co_await sim::delay(f.sched, 10'000);
    co_await foreign_commit(f, 2, f.x, 0, 55).join();
  }();
  f.sched.run();
  spec.rethrow_if_failed();
  writer.rethrow_if_failed();
  EXPECT_GE(f.mgr->clobbers_observed(), 1u);
  // The abort did NOT restore node 1's pre-image over the foreign value:
  // every replica converged on the committed 55.
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.x), 55) << "node " << n;
  }
  EXPECT_EQ(f.sys.node(0).read(f.ver), 0);  // no transactional commit
}

// ------------------------------------------------------------- contention ---

TEST(ContentionManager, BackoffDoublesToCapAndEscalates) {
  Fixture f;
  ContentionConfig cfg;
  cfg.max_aborts = 4;
  cfg.backoff_base_ns = 2'000;
  cfg.backoff_cap_ns = 64'000;
  ContentionManager cm(f.sys, cfg);
  EXPECT_EQ(cm.base_delay(1), 2'000u);
  EXPECT_EQ(cm.base_delay(2), 4'000u);
  EXPECT_EQ(cm.base_delay(3), 8'000u);
  EXPECT_EQ(cm.base_delay(10), 64'000u);  // capped
  EXPECT_FALSE(cm.should_fallback(0));
  EXPECT_FALSE(cm.should_fallback(3));
  EXPECT_TRUE(cm.should_fallback(4));
  EXPECT_TRUE(cm.should_fallback(9));
}

TEST(ContentionManager, JitteredBackoffIsDeterministicPerSeed) {
  auto run_once = [] {
    Fixture f;
    ContentionConfig cfg;
    cfg.seed = 99;
    ContentionManager cm(f.sys, cfg);
    auto p = [&]() -> sim::Process {
      for (std::uint32_t k = 1; k <= 5; ++k) {
        co_await cm.backoff(4, k).join();
      }
    }();
    f.sched.run();
    p.rethrow_if_failed();
    EXPECT_EQ(cm.backoffs(), 5u);
    return cm.total_backoff_ns();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  // Jitter keeps each delay within [base/2, base].
  EXPECT_LE(a, 2'000u + 4'000u + 8'000u + 16'000u + 32'000u);
  EXPECT_GE(a, (2'000u + 4'000u + 8'000u + 16'000u + 32'000u) / 2);
}

// ------------------------------------------------- store-level transactions ---

struct StoreFixture {
  explicit StoreFixture(shard::ShardedStoreConfig scfg = {})
      : topo(net::MeshTorus2D::near_square(8)),
        sys(sched, topo, dsm::DsmConfig{}),
        store(sys, scfg),
        client(store) {}
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  shard::ShardedStore store;
  shard::Client client;
};

std::optional<dsm::Word> read_now(StoreFixture& f, dsm::NodeId n,
                                  shard::Key k) {
  std::optional<dsm::Word> out;
  auto p = f.client.read(n, k, &out);
  EXPECT_TRUE(p.done());
  return out;
}

TEST(StoreTxn, SingleKeyPutBumpsItsOrecStripe) {
  StoreFixture f;
  auto p = f.client.write(1, 17, 1234);
  f.sched.run();
  p.rethrow_if_failed();
  const auto s = f.store.shard_of(17);
  auto& orecs = f.store.txn_manager().orecs();
  std::uint64_t bumped = 0;
  for (std::uint32_t k = 0; k < orecs.stripes(); ++k) {
    bumped += static_cast<std::uint64_t>(
        orecs.version(0, static_cast<SiteId>(s), k));
  }
  EXPECT_EQ(bumped, 1u);
}

TEST(StoreTxn, MultiRmwHasNoLostUpdates) {
  // The YCSB-F torture case: every node increments the same two keys.
  // Any lost update would break the final sums; any ledger drift would
  // break serializability.
  StoreFixture f;
  const std::vector<shard::Key> keys{5, 6};
  constexpr int kRounds = 5;
  auto worker = [&](dsm::NodeId n) -> sim::Process {
    for (int k = 0; k < kRounds; ++k) {
      shard::TxnRequest req;
      req.adds = keys;
      req.delta = 1;
      co_await f.client.txn(n, std::move(req)).join();
    }
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 8; ++n) procs.push_back(worker(n));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  const auto expect = static_cast<dsm::Word>(8 * kRounds);
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(read_now(f, n, 5).value_or(-1), expect) << "node " << n;
    EXPECT_EQ(read_now(f, n, 6).value_or(-1), expect) << "node " << n;
  }
  EXPECT_TRUE(f.store.replicas_converged());
  stats::ServiceReport report;
  f.store.fill_report(report);
  EXPECT_TRUE(report.serializable());
  // Eight nodes hammering two keys must collide: the OCC layer had to
  // abort and retry (or escalate) at least once to stay exact.
  EXPECT_GT(f.store.txn_manager().aborts() +
                f.store.txn_manager().contention().fallbacks_signalled(),
            0u);
}

TEST(StoreTxn, MultiGetReturnsCommittedSnapshot) {
  StoreFixture f;
  auto setup = [&]() -> sim::Process {
    shard::TxnRequest req;
    req.puts = {{10, 111}, {11, 222}};
    co_await f.client.txn(0, std::move(req)).join();
  }();
  f.sched.run();
  setup.rethrow_if_failed();

  shard::TxnRequest req;
  req.reads = {10, 11, 12};
  shard::TxnResult res;
  auto p = f.client.txn(3, std::move(req), &res);
  f.sched.run();
  p.rethrow_if_failed();
  ASSERT_EQ(res.values.size(), 3u);
  EXPECT_EQ(res.values[0].value_or(-1), 111);
  EXPECT_EQ(res.values[1].value_or(-1), 222);
  EXPECT_FALSE(res.values[2].has_value());  // never written
}

TEST(StoreTxn, OccAndLegacyAgreeOnFinalState) {
  auto run_mode = [](shard::TxnMode mode) {
    shard::ShardedStoreConfig scfg;
    scfg.shards = 4;
    scfg.txn.mode = mode;
    StoreFixture f(scfg);
    auto worker = [&](dsm::NodeId n, std::uint64_t seed) -> sim::Process {
      sim::Rng rng(seed);
      for (int k = 0; k < 6; ++k) {
        const auto a = static_cast<shard::Key>(1 + rng.below(30));
        auto b = static_cast<shard::Key>(1 + rng.below(30));
        if (b == a) b = (b % 30) + 1;
        shard::TxnRequest req;
        req.puts = {{a, static_cast<dsm::Word>(k)},
                    {b, static_cast<dsm::Word>(k + 100)}};
        co_await f.client.txn(n, std::move(req)).join();
      }
    };
    std::vector<sim::Process> procs;
    for (dsm::NodeId n = 0; n < 4; ++n) {
      procs.push_back(worker(n, 31 + n));
    }
    f.sched.run();
    for (auto& p : procs) p.rethrow_if_failed();
    EXPECT_TRUE(f.store.replicas_converged());
    stats::ServiceReport report;
    f.store.fill_report(report);
    EXPECT_TRUE(report.serializable());
  };
  run_mode(shard::TxnMode::kOcc);
  run_mode(shard::TxnMode::kLegacy);
}

TEST(StoreTxn, AbortBudgetEscalatesToIrrevocableFallback) {
  shard::ShardedStoreConfig scfg;
  scfg.txn.tuning.contention.max_aborts = 1;  // escalate after the first abort
  StoreFixture f(scfg);
  const std::vector<shard::Key> keys{5, 6};
  auto worker = [&](dsm::NodeId n) -> sim::Process {
    for (int k = 0; k < 6; ++k) {
      shard::TxnRequest req;
      req.adds = keys;
      req.delta = 1;
      co_await f.client.txn(n, std::move(req)).join();
    }
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 8; ++n) procs.push_back(worker(n));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  // Still exact under escalation...
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(read_now(f, n, 5).value_or(-1), 48) << "node " << n;
  }
  // ...and the budget of one abort forced at least one fallback.
  EXPECT_GT(f.store.txn_manager().contention().fallbacks_signalled(), 0u);
  std::uint64_t fallbacks = 0;
  for (shard::ShardId s = 0; s < f.store.shards(); ++s) {
    fallbacks += f.store.txn_fallbacks(s);
  }
  EXPECT_GT(fallbacks, 0u);
}

}  // namespace
}  // namespace optsync::txn
