// Property tests for the substrate's central guarantee: group write
// consistency. "Group write consistency guarantees the order of writes
// within each sharing group whether the writes are from one source or many."
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dsm/system.hpp"
#include "simkern/random.hpp"

namespace optsync::dsm {
namespace {

struct GwcCase {
  net::TopologyKind kind;
  std::size_t nodes;
  std::size_t writers;
  std::size_t writes_per_writer;
  std::uint64_t seed;
};

class GwcTotalOrder : public ::testing::TestWithParam<GwcCase> {};

TEST_P(GwcTotalOrder, AllMembersApplySameSequence) {
  const auto& c = GetParam();
  sim::Scheduler sched;
  const auto topo = net::make_topology(c.kind, c.nodes);
  DsmSystem sys(sched, *topo, DsmConfig{});

  std::vector<NodeId> members;
  for (NodeId i = 0; i < c.nodes; ++i) members.push_back(i);
  sim::Rng rng(c.seed);
  const NodeId root = static_cast<NodeId>(rng.below(c.nodes));
  const auto g = sys.create_group(members, root);

  std::vector<VarId> vars;
  for (int v = 0; v < 4; ++v) {
    vars.push_back(sys.define_data("v" + std::to_string(v), g));
  }
  for (const NodeId m : members) sys.node(m).enable_applied_log(true);

  // Writers issue writes at random times to random variables.
  for (std::size_t w = 0; w < c.writers; ++w) {
    const NodeId writer = static_cast<NodeId>(rng.below(c.nodes));
    for (std::size_t k = 0; k < c.writes_per_writer; ++k) {
      const VarId var = vars[rng.below(vars.size())];
      const Word value = static_cast<Word>(rng.below(1'000'000));
      const sim::Time at = rng.below(50'000);
      sched.at(at, [&sys, writer, var, value] {
        sys.node(writer).write(var, value);
      });
    }
  }
  sched.run();

  // Every member (except for dropped self-echoes, which data vars don't
  // have) must have applied the identical (seq, var, value, origin) stream.
  const auto& reference = sys.node(members[0]).applied_log(g);
  EXPECT_EQ(reference.size(), c.writers * c.writes_per_writer);
  for (const NodeId m : members) {
    const auto& log = sys.node(m).applied_log(g);
    ASSERT_EQ(log.size(), reference.size()) << "node " << m;
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, reference[i].seq);
      EXPECT_EQ(log[i].var, reference[i].var);
      EXPECT_EQ(log[i].value, reference[i].value);
      EXPECT_EQ(log[i].origin, reference[i].origin);
    }
  }

  // Final memory convergence: all members agree on every variable.
  for (const VarId v : vars) {
    const Word expect = sys.node(members[0]).read(v);
    for (const NodeId m : members) {
      EXPECT_EQ(sys.node(m).read(v), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, GwcTotalOrder,
    ::testing::Values(
        GwcCase{net::TopologyKind::kFullyConnected, 3, 2, 5, 1},
        GwcCase{net::TopologyKind::kFullyConnected, 8, 8, 10, 2},
        GwcCase{net::TopologyKind::kRing, 7, 4, 8, 3},
        GwcCase{net::TopologyKind::kRing, 16, 8, 12, 4},
        GwcCase{net::TopologyKind::kMeshTorus, 16, 16, 6, 5},
        GwcCase{net::TopologyKind::kMeshTorus, 36, 12, 10, 6},
        GwcCase{net::TopologyKind::kHypercube, 16, 10, 10, 7},
        GwcCase{net::TopologyKind::kMeshTorus, 64, 20, 5, 8}));

TEST(GwcOrdering, SameSourceWritesStayInProgramOrder) {
  // FIFO from one writer: later writes never overtake earlier ones.
  sim::Scheduler sched;
  const net::MeshTorus2D topo(4, 4);
  DsmSystem sys(sched, topo, DsmConfig{});
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 16; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto v = sys.define_data("v", g);
  sys.node(9).enable_applied_log(true);

  for (int i = 1; i <= 50; ++i) {
    sys.node(5).write(v, i);
  }
  sched.run();
  const auto& log = sys.node(9).applied_log(g);
  ASSERT_EQ(log.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)].value, i + 1);
  }
}

TEST(GwcOrdering, WriterNeverBlocks) {
  // Eagersharing: issuing 100 writes consumes zero simulated time at the
  // writer ("a processor can immediately perform the next instruction,
  // even if it is another shared write").
  sim::Scheduler sched;
  const net::MeshTorus2D topo(4, 4);
  DsmSystem sys(sched, topo, DsmConfig{});
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 16; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto v = sys.define_data("v", g);

  sched.at(1000, [&] {
    for (int i = 0; i < 100; ++i) sys.node(3).write(v, i);
    EXPECT_EQ(sched.now(), 1000u);
  });
  sched.run();
}

class GwcJitterTotalOrder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GwcJitterTotalOrder, HoldsUnderRootCongestion) {
  // Fault/congestion injection: random root processing delays must not be
  // able to reorder sequenced updates (the root dispatches serially).
  sim::Scheduler sched;
  const net::MeshTorus2D topo(4, 4);
  DsmConfig cfg;
  cfg.root_jitter_ns = 5'000;
  cfg.jitter_seed = GetParam();
  DsmSystem sys(sched, topo, cfg);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 16; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto v1 = sys.define_data("v1", g);
  const auto v2 = sys.define_data("v2", g);
  for (const NodeId m : members) sys.node(m).enable_applied_log(true);

  sim::Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 60; ++i) {
    const NodeId w = static_cast<NodeId>(rng.below(16));
    const VarId var = rng.chance(0.5) ? v1 : v2;
    const Word value = static_cast<Word>(i);
    sched.at(rng.below(20'000), [&sys, w, var, value] {
      sys.node(w).write(var, value);
    });
  }
  sched.run();

  const auto& reference = sys.node(0).applied_log(g);
  ASSERT_EQ(reference.size(), 60u);
  for (const NodeId m : members) {
    const auto& log = sys.node(m).applied_log(g);
    ASSERT_EQ(log.size(), reference.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, reference[i].seq);
      EXPECT_EQ(log[i].value, reference[i].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GwcJitterTotalOrder,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GwcOrdering, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Scheduler sched;
    const net::MeshTorus2D topo(3, 3);
    DsmSystem sys(sched, topo, DsmConfig{});
    std::vector<NodeId> members;
    for (NodeId i = 0; i < 9; ++i) members.push_back(i);
    const auto g = sys.create_group(members, 4);
    const auto v = sys.define_data("v", g);
    sim::Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      const NodeId w = static_cast<NodeId>(rng.below(9));
      const Word val = static_cast<Word>(rng.below(1000));
      sched.at(rng.below(10'000), [&sys, w, v, val] {
        sys.node(w).write(v, val);
      });
    }
    sched.run();
    return std::pair{sys.node(8).read(v), sched.now()};
  };
  const auto a = run_once(77);
  const auto b = run_once(77);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(78);
  // Different seed very likely produces a different end state or end time.
  EXPECT_TRUE(c.first != a.first || c.second != a.second);
}

}  // namespace
}  // namespace optsync::dsm
