// ReliableChannel: exactly-once, per-(src,dst) FIFO delivery over a lossy
// network — retransmission, duplicate suppression, reorder recovery, ack
// loss, and the retransmit cap.
#include "net/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "net/network.hpp"

namespace optsync::net {
namespace {

struct Harness {
  sim::Scheduler sched;
  MeshTorus2D topo{2, 2};
  Network net{sched, topo, LinkModel::paper()};
  ReliableChannel rel{net, ReliableConfig{}};
};

TEST(ReliableChannel, FaultFreeDeliversInOrderAndDrains) {
  Harness h;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(h.rel.stats().data_packets, 10u);
  EXPECT_EQ(h.rel.stats().retransmits, 0u);
  EXPECT_EQ(h.rel.stats().dup_suppressed, 0u);
  EXPECT_EQ(h.rel.stats().expirations, 0u);
  EXPECT_EQ(h.rel.in_flight(), 0u);  // every packet cumulatively acked
  EXPECT_GE(h.rel.stats().acks_sent, 1u);
}

TEST(ReliableChannel, LoopbackBypassesTheProtocol) {
  Harness h;
  int delivered = 0;
  h.rel.send(2, 2, 0, 16, "self", [&] { ++delivered; });
  h.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(h.rel.stats().data_packets, 0u);
  EXPECT_EQ(h.rel.stats().acks_sent, 0u);
}

TEST(ReliableChannel, RetransmitRecoversFromDrops) {
  Harness h;
  // Drop the first three data transmissions outright; let acks through.
  int to_drop = 3;
  h.net.set_fault_hook([&to_drop](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "m" && to_drop > 0) {
      --to_drop;
      act.drop = true;
    }
    return act;
  });
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_GE(h.rel.stats().retransmits, 3u);
  EXPECT_EQ(h.rel.stats().expirations, 0u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
  // Recovery is visible in the latency accounting: a retransmitted packet
  // arrived at least one RTO late.
  EXPECT_GE(h.rel.stats().max_delivery_delay_ns, h.rel.config().rto_ns);
}

TEST(ReliableChannel, InjectedDuplicatesAreSuppressed) {
  Harness h;
  faults::FaultPlan plan(5);
  plan.duplicate(1.0, "m");
  faults::FaultInjector inj(h.net, plan);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    h.rel.send(0, 3, 2, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  // Exactly once each, in order, despite every packet arriving twice.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_GE(h.rel.stats().dup_suppressed, 8u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, ReorderIsHeldAndReleasedInOrder) {
  Harness h;
  // Delay only the first packet far past the second: the receiver must hold
  // the early arrival and release 0 then 1.
  bool first = true;
  h.net.set_fault_hook([&first](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "m" && first) {
      first = false;
      act.extra_delay = 10'000;
    }
    return act;
  });
  std::vector<int> order;
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(0); });
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(1); });
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_GE(h.rel.stats().out_of_order, 1u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, LostAcksCauseRetransmitThenDedup) {
  Harness h;
  // Kill the first four acks: the sender times out and retransmits packets
  // the receiver already consumed; dedup + re-ack settle the flow.
  int acks_to_drop = 4;
  h.net.set_fault_hook([&acks_to_drop](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "rel-ack" && acks_to_drop > 0) {
      --acks_to_drop;
      act.drop = true;
    }
    return act;
  });
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GE(h.rel.stats().retransmits, 1u);
  EXPECT_GE(h.rel.stats().dup_suppressed, 1u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, RetransmitCapAbandonsAndCounts) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.max_retransmits = 3;  // keep the backoff walk short
  ReliableChannel rel(net, cfg);
  net.set_fault_hook([](const MessageMeta& m) {
    FaultAction act;
    act.drop = m.tag == "void";  // this flow is permanently dark
    return act;
  });
  int delivered = 0;
  rel.send(0, 1, 1, 16, "void", [&] { ++delivered; });
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rel.stats().retransmits, 3u);
  EXPECT_EQ(rel.stats().expirations, 1u);
  // The abandoned packet stays visible — a stuck flow is diagnosable.
  EXPECT_EQ(rel.in_flight(), 1u);
}

TEST(ReliableChannel, TraceDistinguishesRetransmitAndSuppression) {
  Harness h;
  int to_drop = 1;
  h.net.set_fault_hook([&to_drop](const MessageMeta& m) {
    FaultAction act;
    // Drop the first transmission and duplicate the retransmission, so the
    // run exercises both rexmit and dedup trace kinds.
    if (m.tag == "m") {
      if (to_drop > 0) {
        --to_drop;
        act.drop = true;
      } else if (m.kind == DeliveryKind::kRetransmit) {
        act.duplicates = 1;
      }
    }
    return act;
  });
  std::vector<DeliveryKind> kinds;
  h.net.set_trace_hook(
      [&kinds](const MessageTrace& t) { kinds.push_back(t.kind); });
  int delivered = 0;
  h.rel.send(0, 1, 1, 16, "m", [&] { ++delivered; });
  h.sched.run();
  EXPECT_EQ(delivered, 1);
  auto count = [&kinds](DeliveryKind k) {
    std::size_t n = 0;
    for (const auto kk : kinds) n += kk == k;
    return n;
  };
  EXPECT_EQ(count(DeliveryKind::kInjectedDrop), 1u);
  EXPECT_GE(count(DeliveryKind::kRetransmit), 1u);
  EXPECT_GE(count(DeliveryKind::kDupSuppressed), 1u);
}

// Regression (ack encoding): an ack sent before anything was released must
// carry "next expected = 0" and erase nothing. The seed encoded acks as
// `next_release - 1`, which wrapped to UINT64_MAX in this state and
// cumulatively erased every in-flight packet — including the dropped one the
// receiver was still waiting for, wedging the flow forever.
TEST(ReliableChannel, AckBeforeFirstReleaseErasesNothing) {
  Harness h;
  // Drop only the very first transmission of packet 0; packet 1 gets through
  // and is held out of order, which makes the receiver ack "still at 0".
  bool drop_one = true;
  h.net.set_fault_hook([&drop_one](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "m" && drop_one) {
      drop_one = false;
      act.drop = true;
    }
    return act;
  });
  std::vector<int> order;
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(0); });
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(1); });
  // Run just past the out-of-order ack's arrival: both packets must still be
  // tracked (nothing falsely acked), and none abandoned.
  h.sched.run_until(h.rel.config().rto_ns / 2);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(h.rel.in_flight(), 2u);
  EXPECT_EQ(h.rel.stats().expirations, 0u);
  // The retransmission then fills the gap and the flow drains in order.
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_GE(h.rel.stats().retransmits, 1u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

// Regression (expiry + late ack): a packet abandoned at the retransmit cap
// can still be settled by a later cumulative ack (its delivery raced the
// expiry, or every ack was lost while copies got through). The seed asserted
// `received && !on_delivery` for every cumulatively acked packet, which an
// abandoned one violates — the ack handler crashed the simulation instead of
// counting the packet.
TEST(ReliableChannel, ExpiredThenAckedPacketIsToleratedAndCounted) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.rto_ns = 1'000;
  cfg.max_retransmits = 2;  // expired by t = 1000 + 2000 + 4000 = 7000
  ReliableChannel rel(net, cfg);
  // Every ack is lost until t = 10us: packet 0 is delivered immediately but
  // the sender never hears so, retransmits to the cap, and abandons it.
  net.set_fault_hook([&sched](const MessageMeta& m) {
    FaultAction act;
    act.drop = m.tag == "rel-ack" && sched.now() < 10'000;
    return act;
  });
  std::vector<int> order;
  rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(0); });
  sched.run_until(9'000);
  EXPECT_EQ(order, (std::vector<int>{0}));  // receiver got it long ago
  EXPECT_EQ(rel.stats().expirations, 1u);   // sender gave up on it
  EXPECT_EQ(rel.in_flight(), 1u);
  // A second packet (acks now flow) produces a cumulative ack covering the
  // abandoned packet. The ack must settle it, not crash.
  sched.at(20'000, [&rel, &order] {
    rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(1); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(rel.stats().expired_acked, 1u);
  EXPECT_EQ(rel.stats().revivals, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

// An abandoned packet the receiver is still waiting for (it was never
// delivered — the flow is truly wedged) is revived when an ack names it as
// the next expected sequence: the ack proves the path and the receiver are
// alive, so the sender restarts the retransmission state machine rather than
// stalling every later packet in the out-of-order buffer forever.
TEST(ReliableChannel, WedgedFlowIsRevivedByLaterAck) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.rto_ns = 1'000;
  cfg.max_retransmits = 2;
  ReliableChannel rel(net, cfg);
  // Packet 0 ("head") is dark until t = 10us — original and all retransmits
  // die, so the sender abandons it at t = 7us.
  net.set_fault_hook([&sched](const MessageMeta& m) {
    FaultAction act;
    act.drop = m.tag == "head" && sched.now() < 10'000;
    return act;
  });
  std::vector<int> order;
  rel.send(0, 1, 1, 16, "head", [&order] { order.push_back(0); });
  sched.run_until(9'000);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(rel.stats().expirations, 1u);
  // Packet 1 arrives out of order; the receiver's ack says "still expecting
  // 0", which revives the abandoned head and unwedges the flow.
  sched.at(20'000, [&rel, &order] {
    rel.send(0, 1, 1, 16, "tail", [&order] { order.push_back(1); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(rel.stats().revivals, 1u);
  EXPECT_EQ(rel.stats().expired_acked, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableChannel, FlowsAreIndependentPerDirection) {
  Harness h;
  std::vector<std::string> order;
  h.rel.send(0, 1, 1, 16, "fwd", [&order] { order.push_back("fwd"); });
  h.rel.send(1, 0, 1, 16, "rev", [&order] { order.push_back("rev"); });
  h.rel.send(2, 1, 1, 16, "other", [&order] { order.push_back("other"); });
  h.sched.run();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(h.rel.stats().data_packets, 3u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, ZeroAckDelayNeverPiggybacks) {
  // The default config is the legacy protocol: every release acks
  // immediately on its own packet, nothing rides on reverse traffic.
  Harness h;
  h.rel.send(0, 1, 1, 16, "fwd", [] {});
  h.sched.at(1'000, [&h] { h.rel.send(1, 0, 1, 16, "rev", [] {}); });
  h.sched.run();
  EXPECT_EQ(h.rel.stats().acks_piggybacked, 0u);
  EXPECT_GE(h.rel.stats().acks_sent, 2u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, AckRidesOnReverseTraffic) {
  sim::Scheduler sched;
  MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.ack_delay_ns = 50'000;  // long window: the reverse send always wins
  ReliableChannel rel(net, cfg);
  bool fwd = false, rev = false;
  rel.send(0, 1, 1, 16, "fwd", [&fwd] { fwd = true; });
  // Reverse-direction data inside the window carries 0 -> 1's ack for free.
  sched.at(2'000, [&rel, &rev] {
    rel.send(1, 0, 1, 16, "rev", [&rev] { rev = true; });
  });
  sched.run();
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
  EXPECT_GE(rel.stats().acks_piggybacked, 1u);
  EXPECT_EQ(rel.in_flight(), 0u);  // the piggybacked ack cleared the sender
  // The piggybacked release never also went out standalone; only the final
  // reverse packet (no forward traffic left to ride) costs an ack message.
  EXPECT_LE(rel.stats().acks_sent, 1u);
}

TEST(ReliableChannel, IdleFlowFallsBackToStandaloneAck) {
  // No reverse traffic ever appears: the delayed ack must still go out on
  // its own packet after the idle window, or the sender retransmits forever.
  sim::Scheduler sched;
  MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.ack_delay_ns = 4'000;
  ReliableChannel rel(net, cfg);
  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    rel.send(0, 1, 1, 16, "fwd", [&delivered] { ++delivered; });
  }
  sched.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(rel.stats().acks_piggybacked, 0u);
  EXPECT_GE(rel.stats().acks_sent, 1u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(ReliableChannel, DelayedAcksSurviveLossOnBothDirections) {
  // Piggybacking under 20% loss each way: dup-triggered loss-recovery acks
  // are never delayed, so the flows still drain and FIFO still holds.
  sim::Scheduler sched;
  MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.ack_delay_ns = 4'000;
  ReliableChannel rel(net, cfg);
  faults::FaultPlan plan(11);
  plan.drop(0.20, "fwd").drop(0.20, "rev");
  faults::FaultInjector inj(net, plan);
  std::vector<int> fwd_order, rev_order;
  for (int i = 0; i < 12; ++i) {
    sched.at(static_cast<sim::Time>(i) * 3'000, [&rel, &fwd_order, i] {
      rel.send(0, 1, 1, 16, "fwd", [&fwd_order, i] { fwd_order.push_back(i); });
    });
    sched.at(static_cast<sim::Time>(i) * 3'000 + 500, [&rel, &rev_order, i] {
      rel.send(1, 0, 1, 16, "rev", [&rev_order, i] { rev_order.push_back(i); });
    });
  }
  sched.run();
  ASSERT_EQ(fwd_order.size(), 12u);
  ASSERT_EQ(rev_order.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(fwd_order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(rev_order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GE(rel.stats().acks_piggybacked, 1u);
  EXPECT_EQ(rel.stats().expirations, 0u);
  EXPECT_EQ(rel.in_flight(), 0u);
}

}  // namespace
}  // namespace optsync::net
