// ReliableChannel: exactly-once, per-(src,dst) FIFO delivery over a lossy
// network — retransmission, duplicate suppression, reorder recovery, ack
// loss, and the retransmit cap.
#include "net/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "net/network.hpp"

namespace optsync::net {
namespace {

struct Harness {
  sim::Scheduler sched;
  MeshTorus2D topo{2, 2};
  Network net{sched, topo, LinkModel::paper()};
  ReliableChannel rel{net, ReliableConfig{}};
};

TEST(ReliableChannel, FaultFreeDeliversInOrderAndDrains) {
  Harness h;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(h.rel.stats().data_packets, 10u);
  EXPECT_EQ(h.rel.stats().retransmits, 0u);
  EXPECT_EQ(h.rel.stats().dup_suppressed, 0u);
  EXPECT_EQ(h.rel.stats().expirations, 0u);
  EXPECT_EQ(h.rel.in_flight(), 0u);  // every packet cumulatively acked
  EXPECT_GE(h.rel.stats().acks_sent, 1u);
}

TEST(ReliableChannel, LoopbackBypassesTheProtocol) {
  Harness h;
  int delivered = 0;
  h.rel.send(2, 2, 0, 16, "self", [&] { ++delivered; });
  h.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(h.rel.stats().data_packets, 0u);
  EXPECT_EQ(h.rel.stats().acks_sent, 0u);
}

TEST(ReliableChannel, RetransmitRecoversFromDrops) {
  Harness h;
  // Drop the first three data transmissions outright; let acks through.
  int to_drop = 3;
  h.net.set_fault_hook([&to_drop](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "m" && to_drop > 0) {
      --to_drop;
      act.drop = true;
    }
    return act;
  });
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_GE(h.rel.stats().retransmits, 3u);
  EXPECT_EQ(h.rel.stats().expirations, 0u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
  // Recovery is visible in the latency accounting: a retransmitted packet
  // arrived at least one RTO late.
  EXPECT_GE(h.rel.stats().max_delivery_delay_ns, h.rel.config().rto_ns);
}

TEST(ReliableChannel, InjectedDuplicatesAreSuppressed) {
  Harness h;
  faults::FaultPlan plan(5);
  plan.duplicate(1.0, "m");
  faults::FaultInjector inj(h.net, plan);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    h.rel.send(0, 3, 2, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  // Exactly once each, in order, despite every packet arriving twice.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_GE(h.rel.stats().dup_suppressed, 8u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, ReorderIsHeldAndReleasedInOrder) {
  Harness h;
  // Delay only the first packet far past the second: the receiver must hold
  // the early arrival and release 0 then 1.
  bool first = true;
  h.net.set_fault_hook([&first](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "m" && first) {
      first = false;
      act.extra_delay = 10'000;
    }
    return act;
  });
  std::vector<int> order;
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(0); });
  h.rel.send(0, 1, 1, 16, "m", [&order] { order.push_back(1); });
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_GE(h.rel.stats().out_of_order, 1u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, LostAcksCauseRetransmitThenDedup) {
  Harness h;
  // Kill the first four acks: the sender times out and retransmits packets
  // the receiver already consumed; dedup + re-ack settle the flow.
  int acks_to_drop = 4;
  h.net.set_fault_hook([&acks_to_drop](const MessageMeta& m) {
    FaultAction act;
    if (m.tag == "rel-ack" && acks_to_drop > 0) {
      --acks_to_drop;
      act.drop = true;
    }
    return act;
  });
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    h.rel.send(0, 1, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  h.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GE(h.rel.stats().retransmits, 1u);
  EXPECT_GE(h.rel.stats().dup_suppressed, 1u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

TEST(ReliableChannel, RetransmitCapAbandonsAndCounts) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  ReliableConfig cfg;
  cfg.max_retransmits = 3;  // keep the backoff walk short
  ReliableChannel rel(net, cfg);
  net.set_fault_hook([](const MessageMeta& m) {
    FaultAction act;
    act.drop = m.tag == "void";  // this flow is permanently dark
    return act;
  });
  int delivered = 0;
  rel.send(0, 1, 1, 16, "void", [&] { ++delivered; });
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rel.stats().retransmits, 3u);
  EXPECT_EQ(rel.stats().expirations, 1u);
  // The abandoned packet stays visible — a stuck flow is diagnosable.
  EXPECT_EQ(rel.in_flight(), 1u);
}

TEST(ReliableChannel, TraceDistinguishesRetransmitAndSuppression) {
  Harness h;
  int to_drop = 1;
  h.net.set_fault_hook([&to_drop](const MessageMeta& m) {
    FaultAction act;
    // Drop the first transmission and duplicate the retransmission, so the
    // run exercises both rexmit and dedup trace kinds.
    if (m.tag == "m") {
      if (to_drop > 0) {
        --to_drop;
        act.drop = true;
      } else if (m.kind == DeliveryKind::kRetransmit) {
        act.duplicates = 1;
      }
    }
    return act;
  });
  std::vector<DeliveryKind> kinds;
  h.net.set_trace_hook(
      [&kinds](const MessageTrace& t) { kinds.push_back(t.kind); });
  int delivered = 0;
  h.rel.send(0, 1, 1, 16, "m", [&] { ++delivered; });
  h.sched.run();
  EXPECT_EQ(delivered, 1);
  auto count = [&kinds](DeliveryKind k) {
    std::size_t n = 0;
    for (const auto kk : kinds) n += kk == k;
    return n;
  };
  EXPECT_EQ(count(DeliveryKind::kInjectedDrop), 1u);
  EXPECT_GE(count(DeliveryKind::kRetransmit), 1u);
  EXPECT_GE(count(DeliveryKind::kDupSuppressed), 1u);
}

TEST(ReliableChannel, FlowsAreIndependentPerDirection) {
  Harness h;
  std::vector<std::string> order;
  h.rel.send(0, 1, 1, 16, "fwd", [&order] { order.push_back("fwd"); });
  h.rel.send(1, 0, 1, 16, "rev", [&order] { order.push_back("rev"); });
  h.rel.send(2, 1, 1, 16, "other", [&order] { order.push_back("other"); });
  h.sched.run();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(h.rel.stats().data_packets, 3u);
  EXPECT_EQ(h.rel.in_flight(), 0u);
}

}  // namespace
}  // namespace optsync::net
