#include "net/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::net {
namespace {

std::vector<NodeId> all_nodes(std::size_t n) {
  std::vector<NodeId> v;
  for (NodeId i = 0; i < n; ++i) v.push_back(i);
  return v;
}

TEST(SpanningTree, RootProperties) {
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, all_nodes(16), 5);
  EXPECT_EQ(tree.root(), 5u);
  EXPECT_EQ(tree.depth(5), 0u);
  EXPECT_EQ(tree.hops_to_root(5), 0u);
  EXPECT_EQ(tree.parent(5), 5u);
}

TEST(SpanningTree, CoversAllMembers) {
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, all_nodes(16), 0);
  for (NodeId i = 0; i < 16; ++i) {
    EXPECT_TRUE(tree.contains(i));
  }
  EXPECT_FALSE(tree.contains(16));
}

TEST(SpanningTree, ParentChildConsistency) {
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, all_nodes(16), 3);
  for (NodeId i = 0; i < 16; ++i) {
    if (i == tree.root()) continue;
    const NodeId par = tree.parent(i);
    const auto& kids = tree.children(par);
    EXPECT_NE(std::find(kids.begin(), kids.end(), i), kids.end())
        << "node " << i << " missing from children of " << par;
    EXPECT_EQ(tree.depth(i), tree.depth(par) + 1);
  }
}

TEST(SpanningTree, EveryNodeReachesRootThroughParents) {
  const MeshTorus2D topo(8, 8);
  SpanningTree tree(topo, all_nodes(64), 17);
  for (NodeId i = 0; i < 64; ++i) {
    NodeId cur = i;
    unsigned steps = 0;
    unsigned hops = 0;
    while (cur != tree.root()) {
      hops += tree.edge_hops(cur);
      cur = tree.parent(cur);
      ASSERT_LT(++steps, 100u) << "parent chain does not terminate";
    }
    EXPECT_EQ(hops, tree.hops_to_root(i));
  }
}

TEST(SpanningTree, BfsDepthIsMinimalOnMemberGraph) {
  // On a ring of 8 with all members, the BFS tree depth from node 0 to the
  // opposite node must be exactly 4 (shortest path).
  const Ring topo(8);
  SpanningTree tree(topo, all_nodes(8), 0);
  EXPECT_EQ(tree.hops_to_root(4), 4u);
  EXPECT_EQ(tree.radius_hops(), 4u);
}

TEST(SpanningTree, BfsUsesTopologyEdges) {
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, all_nodes(16), 0);
  for (NodeId i = 0; i < 16; ++i) {
    if (i == 0) continue;
    EXPECT_EQ(tree.edge_hops(i), 1u)
        << "contiguous group must use direct physical edges";
    // Tree distance equals shortest-path distance on a torus with all
    // members present (BFS property).
    EXPECT_EQ(tree.hops_to_root(i), topo.hop_count(i, 0));
  }
}

TEST(SpanningTree, SparseMembersFallBackToVirtualLinks) {
  // Members 0 and 10 on a 4x4 torus with nothing in between: 10 hangs off
  // the root via a routed link of the full shortest-path length.
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, {0, 10}, 0);
  EXPECT_EQ(tree.parent(10), 0u);
  EXPECT_EQ(tree.edge_hops(10), topo.hop_count(0, 10));
  EXPECT_EQ(tree.hops_to_root(10), topo.hop_count(0, 10));
}

TEST(SpanningTree, RootMustBeMember) {
  const MeshTorus2D topo(4, 4);
  EXPECT_THROW(SpanningTree(topo, {1, 2, 3}, 9), ContractViolation);
}

TEST(SpanningTree, DuplicateMembersRejected) {
  const MeshTorus2D topo(4, 4);
  EXPECT_THROW(SpanningTree(topo, {1, 2, 2}, 1), ContractViolation);
}

TEST(SpanningTree, SingleMemberTree) {
  const MeshTorus2D topo(4, 4);
  SpanningTree tree(topo, {7}, 7);
  EXPECT_EQ(tree.radius_hops(), 0u);
  EXPECT_TRUE(tree.children(7).empty());
}

TEST(SpanningTree, SingleNodeTopology) {
  // The degenerate network: one processor, no fiber at all.
  const FullyConnected topo(1);
  SpanningTree tree(topo, {0}, 0);
  EXPECT_EQ(tree.root(), 0u);
  EXPECT_EQ(tree.parent(0), 0u);
  EXPECT_EQ(tree.depth(0), 0u);
  EXPECT_EQ(tree.hops_to_root(0), 0u);
  EXPECT_EQ(tree.radius_hops(), 0u);
  EXPECT_TRUE(tree.children(0).empty());
}

TEST(SpanningTree, TwoNodeLine) {
  // Ring(2) degenerates to a line with a doubled edge; the tree must use
  // the single physical hop once, from either root.
  const Ring topo(2);
  for (const NodeId root : {NodeId{0}, NodeId{1}}) {
    SpanningTree tree(topo, all_nodes(2), root);
    const NodeId leaf = 1 - root;
    EXPECT_EQ(tree.parent(leaf), root);
    EXPECT_EQ(tree.edge_hops(leaf), 1u);
    EXPECT_EQ(tree.depth(leaf), 1u);
    EXPECT_EQ(tree.radius_hops(), 1u);
    ASSERT_EQ(tree.children(root).size(), 1u);
    EXPECT_EQ(tree.children(root)[0], leaf);
  }
}

TEST(SpanningTree, PartitionedMemberSetBridgesViaRoot) {
  // Members form two islands on the ring ({0,1} and {4,5}) with no member
  // path between them: the far island cannot be reached by BFS over member
  // edges, so each far node hangs off the root on a routed virtual link of
  // full shortest-path length.
  const Ring topo(8);
  SpanningTree tree(topo, {0, 1, 4, 5}, 0);
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_EQ(tree.edge_hops(1), 1u);
  for (const NodeId far : {NodeId{4}, NodeId{5}}) {
    EXPECT_EQ(tree.parent(far), 0u);
    EXPECT_EQ(tree.depth(far), 1u);
    EXPECT_EQ(tree.edge_hops(far), topo.hop_count(far, 0));
    EXPECT_EQ(tree.hops_to_root(far), topo.hop_count(far, 0));
  }
  // Still a tree: n-1 edges counted through the children lists.
  std::size_t edges = 0;
  for (const NodeId m : tree.members()) edges += tree.children(m).size();
  EXPECT_EQ(edges, tree.members().size() - 1);
  EXPECT_EQ(tree.radius_hops(), topo.hop_count(4, 0));
}

TEST(SpanningTree, RandomSubsetsAlwaysValid) {
  const MeshTorus2D topo(6, 6);
  sim::Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    std::set<NodeId> chosen;
    const std::size_t count = 2 + rng.below(20);
    while (chosen.size() < count) {
      chosen.insert(static_cast<NodeId>(rng.below(36)));
    }
    std::vector<NodeId> members(chosen.begin(), chosen.end());
    const NodeId root = members[rng.below(members.size())];
    SpanningTree tree(topo, members, root);
    // Invariants: every member reaches the root; child counts add up.
    std::size_t edges = 0;
    for (const NodeId m : members) {
      edges += tree.children(m).size();
      NodeId cur = m;
      unsigned steps = 0;
      while (cur != root) {
        cur = tree.parent(cur);
        ASSERT_LT(++steps, 100u);
      }
    }
    EXPECT_EQ(edges, members.size() - 1);  // a tree has n-1 edges
  }
}

}  // namespace
}  // namespace optsync::net
