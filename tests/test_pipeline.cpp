#include "workloads/pipeline.hpp"

#include <gtest/gtest.h>

namespace optsync::workloads {
namespace {

PipelineParams small(std::uint32_t items = 64) {
  PipelineParams p;
  p.data_items = items;
  return p;
}

TEST(Pipeline, AccumulatorCountsEveryHop) {
  const auto topo = net::MeshTorus2D::near_square(4);
  for (const auto m : {PipelineMethod::kNoDelay, PipelineMethod::kOptimistic,
                       PipelineMethod::kRegular, PipelineMethod::kEntry}) {
    const auto res = run_pipeline(m, small(), topo);
    EXPECT_EQ(res.shared_accumulator, 64) << "method " << static_cast<int>(m);
  }
}

TEST(Pipeline, NoDelayBoundNearPaperValue) {
  // (A + M + C) / (A + M) with A = C and M = A/5 gives 11/6 = 1.833; the
  // paper reports 1.89 for its (unpublished) constants. Must be < 2
  // ("linear pipelining keeps the maximum below 2") and flat in N.
  const auto r2 =
      run_pipeline(PipelineMethod::kNoDelay, small(128), net::MeshTorus2D::near_square(2));
  const auto r16 =
      run_pipeline(PipelineMethod::kNoDelay, small(128), net::MeshTorus2D::near_square(16));
  EXPECT_GT(r2.network_power, 1.7);
  EXPECT_LT(r2.network_power, 2.0);
  EXPECT_NEAR(r2.network_power, r16.network_power, 0.08);
}

TEST(Pipeline, OptimisticBeatsRegularBeatsEntry) {
  const auto topo = net::MeshTorus2D::near_square(8);
  const auto p = small(128);
  const auto opt = run_pipeline(PipelineMethod::kOptimistic, p, topo);
  const auto reg = run_pipeline(PipelineMethod::kRegular, p, topo);
  const auto entry = run_pipeline(PipelineMethod::kEntry, p, topo);
  EXPECT_GT(opt.network_power, reg.network_power);
  EXPECT_GT(reg.network_power, entry.network_power);
}

TEST(Pipeline, NoContentionMeansNoRollbacks) {
  const auto topo = net::MeshTorus2D::near_square(8);
  const auto res = run_pipeline(PipelineMethod::kOptimistic, small(), topo);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.optimistic_attempts, res.optimistic_successes);
  EXPECT_GT(res.optimistic_attempts, 0u);
}

TEST(Pipeline, PowerDeclinesWithNetworkSize) {
  // Communication delays grow with the mesh; the mutex section overlaps
  // less of the lock request delay (paper §4.1).
  const auto p = small(128);
  const auto r2 = run_pipeline(PipelineMethod::kOptimistic, p,
                               net::MeshTorus2D::near_square(2));
  const auto r32 = run_pipeline(PipelineMethod::kOptimistic, p,
                                net::MeshTorus2D::near_square(32));
  EXPECT_GT(r2.network_power, r32.network_power);
}

TEST(Pipeline, OptimisticAdvantageShrinksAsDelaysGrow) {
  const auto p = small(128);
  auto gap_at = [&](std::size_t n) {
    const auto topo = net::MeshTorus2D::near_square(n);
    const auto opt = run_pipeline(PipelineMethod::kOptimistic, p, topo);
    const auto reg = run_pipeline(PipelineMethod::kRegular, p, topo);
    return opt.network_power / reg.network_power;
  };
  // Both above 1, and the ratio should not explode with size (the paper
  // keeps it around 1.1); sanity-check both ends.
  const double g2 = gap_at(2);
  const double g32 = gap_at(32);
  EXPECT_GT(g2, 1.0);
  EXPECT_GT(g32, 1.0);
  EXPECT_LT(g2, 1.6);
  EXPECT_LT(g32, 1.6);
}

TEST(Pipeline, EntrySlowerThanSerialAtTwoCpus) {
  // The striking paper datum: entry consistency's network power at 2 CPUs
  // is below 1.0 (0.81) — the parallel pipeline runs slower than one CPU.
  const auto res = run_pipeline(PipelineMethod::kEntry, small(128),
                                net::MeshTorus2D::near_square(2));
  EXPECT_LT(res.network_power, 1.1);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto topo = net::MeshTorus2D::near_square(4);
  const auto a = run_pipeline(PipelineMethod::kOptimistic, small(), topo);
  const auto b = run_pipeline(PipelineMethod::kOptimistic, small(), topo);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
}

class PipelineAllMethods : public ::testing::TestWithParam<PipelineMethod> {};

TEST_P(PipelineAllMethods, UsefulWorkConserved) {
  // network_power * elapsed == total useful compute, independent of method.
  const auto topo = net::MeshTorus2D::near_square(4);
  const auto p = small(32);
  const auto res = run_pipeline(GetParam(), p, topo);
  const double useful = res.network_power * static_cast<double>(res.elapsed);
  // 32 hops x (A + M + C); A = C = local, M = 0.2 local, local = 5000ns.
  const double expected = 32.0 * (5000.0 + 1000.0 + 5000.0);
  EXPECT_NEAR(useful, expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Methods, PipelineAllMethods,
                         ::testing::Values(PipelineMethod::kNoDelay,
                                           PipelineMethod::kOptimistic,
                                           PipelineMethod::kRegular,
                                           PipelineMethod::kEntry));

}  // namespace
}  // namespace optsync::workloads
