#include "simkern/channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace optsync::sim {
namespace {

TEST(SimChannel, PushThenPop) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.push(1);
  ch.push(2);
  std::optional<int> a, b;
  auto p1 = ch.pop_into(&a);
  auto p2 = ch.pop_into(&b);
  sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_TRUE(ch.empty());
}

TEST(SimChannel, PopBlocksUntilPush) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::optional<int> got;
  Time popped_at = 0;
  // Named closure: an immediately-invoked capturing lambda coroutine would
  // dangle (the temporary closure dies while the coroutine is suspended).
  auto consumer_fn = [&]() -> Process {
    co_await ch.pop_into(&got).join();
    popped_at = sched.now();
  };
  auto consumer = consumer_fn();
  sched.at(500, [&] { ch.push(42); });
  sched.run();
  consumer.rethrow_if_failed();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(popped_at, 500u);
}

TEST(SimChannel, CloseDrainsThenSignalsEnd) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.push(7);
  ch.close();
  std::optional<int> first, second;
  auto p1 = ch.pop_into(&first);
  auto p2 = ch.pop_into(&second);
  sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();
  EXPECT_EQ(first, 7);
  EXPECT_EQ(second, std::nullopt);
}

TEST(SimChannel, BlockedConsumerWakesOnClose) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::optional<int> got{123};
  auto p = ch.pop_into(&got);
  sched.at(100, [&] { ch.close(); });
  sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(got, std::nullopt);
}

TEST(SimChannel, PushAfterCloseRejected) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.close();
  EXPECT_THROW(ch.push(1), ContractViolation);
  ch.close();  // idempotent
}

TEST(SimChannel, TryPopNonBlocking) {
  Scheduler sched;
  Channel<int> ch(sched);
  EXPECT_EQ(ch.try_pop(), std::nullopt);
  ch.push(5);
  EXPECT_EQ(ch.try_pop(), 5);
  EXPECT_EQ(ch.try_pop(), std::nullopt);
}

TEST(SimChannel, ProducerConsumerPipeline) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> received;
  auto producer_fn = [&]() -> Process {
    for (int i = 0; i < 20; ++i) {
      co_await delay(sched, 100);
      ch.push(i);
    }
    ch.close();
  };
  auto consumer_fn = [&]() -> Process {
    for (;;) {
      std::optional<int> item;
      co_await ch.pop_into(&item).join();
      if (!item) break;
      received.push_back(*item);
      co_await delay(sched, 250);  // slower than the producer
    }
  };
  auto producer = producer_fn();
  auto consumer = consumer_fn();
  sched.run();
  producer.rethrow_if_failed();
  consumer.rethrow_if_failed();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(SimChannel, MoveOnlyPayloads) {
  Scheduler sched;
  Channel<std::unique_ptr<int>> ch(sched);
  ch.push(std::make_unique<int>(9));
  std::optional<std::unique_ptr<int>> got;
  auto p = ch.pop_into(&got);
  sched.run();
  p.rethrow_if_failed();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(**got, 9);
}

}  // namespace
}  // namespace optsync::sim
