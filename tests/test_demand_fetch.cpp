#include "dsm/demand_fetch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::dsm {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n)
      : topo(net::MeshTorus2D::near_square(n)),
        net_(sched, topo, net::LinkModel::paper()),
        store(net_, DemandFetchStore::Config{}) {}
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  net::Network net_;
  DemandFetchStore store;
};

TEST(DemandFetch, HomeReadsAndWritesAreLocal) {
  Fixture f(4);
  const auto v = f.store.define("x", 2, 7);
  Word out = 0;
  auto p = [](Fixture& fx, VarId var, Word* o) -> sim::Process {
    co_await fx.store.read(2, var, o).join();
    co_await fx.store.write(2, var, 9).join();
  }(f, v, &out);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(out, 7);
  EXPECT_EQ(f.store.peek(v), 9);
  EXPECT_EQ(f.net_.stats().messages, 0u);
  EXPECT_EQ(f.store.stats().read_hits, 1u);
  EXPECT_EQ(f.store.stats().write_hits, 1u);
}

TEST(DemandFetch, RemoteReadMissFetchesAndCaches) {
  Fixture f(4);
  const auto v = f.store.define("x", 0, 42);
  Word first = 0, second = 0;
  auto p = [](Fixture& fx, VarId var, Word* a, Word* b) -> sim::Process {
    co_await fx.store.read(3, var, a).join();  // miss
    co_await fx.store.read(3, var, b).join();  // hit (cached)
  }(f, v, &first, &second);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(first, 42);
  EXPECT_EQ(second, 42);
  EXPECT_EQ(f.store.stats().read_misses, 1u);
  EXPECT_EQ(f.store.stats().read_hits, 1u);
  EXPECT_TRUE(f.store.has_valid_copy(3, v));
}

TEST(DemandFetch, MissStallsForTheRoundTrip) {
  // "The processor must halt until each remote datum can be fetched."
  Fixture f(4);
  const auto v = f.store.define("x", 0, 1);
  sim::Time stall = 0;
  auto p = [](Fixture& fx, VarId var, sim::Time* out) -> sim::Process {
    const sim::Time t0 = fx.sched.now();
    Word val = 0;
    co_await fx.store.read(3, var, &val).join();
    *out = fx.sched.now() - t0;
  }(f, v, &stall);
  f.sched.run();
  p.rethrow_if_failed();
  // Request (16B) + data reply (24B); node 3 is diagonal from home node 0
  // on the 2x2 torus: two hops each way.
  EXPECT_EQ(stall, (2u * 200 + 128) + (2u * 200 + 192));
}

TEST(DemandFetch, WriteInvalidatesSharers) {
  Fixture f(4);
  const auto v = f.store.define("x", 0, 5);
  auto p = [](Fixture& fx, VarId var) -> sim::Process {
    Word tmp = 0;
    co_await fx.store.read(1, var, &tmp).join();
    co_await fx.store.read(2, var, &tmp).join();
    co_await fx.store.read(3, var, &tmp).join();
    // Node 1 writes: nodes 2, 3 (and home 0) must lose their copies.
    co_await fx.store.write(1, var, 6).join();
  }(f, v);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.store.peek(v), 6);
  EXPECT_TRUE(f.store.has_valid_copy(1, v));
  EXPECT_FALSE(f.store.has_valid_copy(2, v));
  EXPECT_FALSE(f.store.has_valid_copy(3, v));
  EXPECT_GE(f.store.stats().invalidations, 2u);
}

TEST(DemandFetch, ReadAfterRemoteWriteSeesNewValue) {
  Fixture f(9);
  const auto v = f.store.define("x", 0, 1);
  Word seen = 0;
  auto p = [](Fixture& fx, VarId var, Word* out) -> sim::Process {
    Word tmp = 0;
    co_await fx.store.read(5, var, &tmp).join();   // 5 caches 1
    co_await fx.store.write(7, var, 99).join();    // invalidates 5
    co_await fx.store.read(5, var, out).join();    // must refetch 99
  }(f, v, &seen);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(seen, 99);
  EXPECT_EQ(f.store.stats().read_misses, 2u);
}

TEST(DemandFetch, DirtyOwnerForwardsData) {
  Fixture f(9);
  const auto v = f.store.define("x", 0, 1);
  Word seen = 0;
  auto p = [](Fixture& fx, VarId var, Word* out) -> sim::Process {
    co_await fx.store.write(4, var, 77).join();  // 4 becomes dirty owner
    co_await fx.store.read(8, var, out).join();  // home forwards to 4
  }(f, v, &seen);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(seen, 77);
}

TEST(DemandFetch, RepeatedWritesBySameNodeHitLocally) {
  Fixture f(4);
  const auto v = f.store.define("x", 0, 0);
  auto p = [](Fixture& fx, VarId var) -> sim::Process {
    for (int i = 1; i <= 10; ++i) {
      co_await fx.store.write(2, var, i).join();
    }
  }(f, v);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.store.peek(v), 10);
  EXPECT_EQ(f.store.stats().write_misses, 1u);
  EXPECT_EQ(f.store.stats().write_hits, 9u);
}

TEST(DemandFetch, CoherenceUnderRandomAccesses) {
  // Linearized ground truth: sequential coroutine issuing random reads and
  // writes from random nodes always observes the last written value.
  Fixture f(9);
  const auto v = f.store.define("x", 4, 0);
  bool coherent = true;
  auto p = [](Fixture& fx, VarId var, bool* ok) -> sim::Process {
    sim::Rng rng(321);
    Word truth = 0;
    for (int i = 0; i < 120; ++i) {
      const auto node = static_cast<NodeId>(rng.below(9));
      if (rng.chance(0.4)) {
        truth = static_cast<Word>(i);
        co_await fx.store.write(node, var, truth).join();
      } else {
        Word got = 0;
        co_await fx.store.read(node, var, &got).join();
        if (got != truth) *ok = false;
      }
    }
  }(f, v, &coherent);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(coherent);
}

TEST(DemandFetch, InvalidHomeRejected) {
  Fixture f(4);
  EXPECT_THROW(f.store.define("x", 99, 0), ContractViolation);
}

}  // namespace
}  // namespace optsync::dsm
