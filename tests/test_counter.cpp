#include "workloads/counter.hpp"

#include <gtest/gtest.h>

namespace optsync::workloads {
namespace {

CounterParams small() {
  CounterParams p;
  p.increments_per_node = 15;
  return p;
}

class CounterAllMethods : public ::testing::TestWithParam<CounterMethod> {};

TEST_P(CounterAllMethods, ExactCountModerateContention) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.think_mean_ns = 50'000;
  const auto res = run_counter(GetParam(), p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_GT(res.elapsed, 0u);
}

TEST_P(CounterAllMethods, ExactCountHeavyContention) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.think_mean_ns = 2'000;
  const auto res = run_counter(GetParam(), p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
}

INSTANTIATE_TEST_SUITE_P(Methods, CounterAllMethods,
                         ::testing::Values(CounterMethod::kOptimisticGwc,
                                           CounterMethod::kRegularGwc,
                                           CounterMethod::kEntry,
                                           CounterMethod::kTasSpin));

TEST(Counter, OptimisticSpeculatesWhenIdle) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.think_mean_ns = 500'000;  // lock almost always free
  const auto res = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_GT(res.optimistic_attempts, res.expected_count / 2 * 1ull);
}

TEST(Counter, HistoryShutsOffSpeculationUnderContention) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.increments_per_node = 40;
  p.think_mean_ns = 1'000;  // saturated lock
  const auto res = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  // Most executions should have fallen back to the regular path.
  EXPECT_GT(res.regular_paths, res.optimistic_attempts);
}

TEST(Counter, OptimisticNoSlowerWhenIdle) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.think_mean_ns = 500'000;
  p.jitter = false;
  const auto opt = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  const auto reg = run_counter(CounterMethod::kRegularGwc, p, topo);
  EXPECT_LE(opt.avg_sync_overhead_ns, reg.avg_sync_overhead_ns);
}

TEST(Counter, TasSpinGeneratesMostTraffic) {
  const auto topo = net::MeshTorus2D::near_square(8);
  auto p = small();
  p.think_mean_ns = 2'000;
  const auto gwc = run_counter(CounterMethod::kRegularGwc, p, topo);
  const auto tas = run_counter(CounterMethod::kTasSpin, p, topo);
  EXPECT_EQ(tas.final_count, tas.expected_count);
  EXPECT_GT(tas.spin_attempts, gwc.expected_count * 1ull);
}

TEST(Counter, DeterministicForFixedSeed) {
  const auto topo = net::MeshTorus2D::near_square(4);
  auto p = small();
  p.seed = 77;
  const auto a = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  const auto b = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Counter, SeedChangesSchedule) {
  const auto topo = net::MeshTorus2D::near_square(4);
  auto p1 = small();
  p1.seed = 1;
  auto p2 = small();
  p2.seed = 2;
  const auto a = run_counter(CounterMethod::kOptimisticGwc, p1, topo);
  const auto b = run_counter(CounterMethod::kOptimisticGwc, p2, topo);
  EXPECT_NE(a.elapsed, b.elapsed);
}

TEST(Counter, SingleNodeTrivial) {
  const auto topo = net::MeshTorus2D::near_square(1);
  auto p = small();
  const auto res = run_counter(CounterMethod::kOptimisticGwc, p, topo);
  EXPECT_EQ(res.final_count, res.expected_count);
  EXPECT_EQ(res.rollbacks, 0u);
}

}  // namespace
}  // namespace optsync::workloads
