#include "core/publication.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::core {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n, std::size_t fields = 3)
      : topo(net::MeshTorus2D::near_square(n)),
        sys(sched, topo, dsm::DsmConfig{}) {
    std::vector<dsm::NodeId> members;
    for (dsm::NodeId i = 0; i < n; ++i) members.push_back(i);
    g = sys.create_group(members, 0);
    rec = std::make_unique<PublishedRecord>(sys, g, "rec", fields,
                                            /*writer=*/1);
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  dsm::GroupId g = 0;
  std::unique_ptr<PublishedRecord> rec;
};

TEST(PublishedRecord, PublishReachesAllReaders) {
  Fixture f(9);
  f.rec->publish({10, 20, 30});
  f.sched.run();
  for (dsm::NodeId n = 0; n < 9; ++n) {
    const auto snap = f.rec->try_read(n);
    ASSERT_TRUE(snap.has_value()) << "node " << n;
    EXPECT_EQ(*snap, (std::vector<dsm::Word>{10, 20, 30}));
  }
}

TEST(PublishedRecord, VersionIsEvenWhenQuiescent) {
  Fixture f(4);
  EXPECT_EQ(f.rec->current_version(), 0);
  f.rec->publish({1, 2, 3});
  f.rec->publish({4, 5, 6});
  f.sched.run();
  EXPECT_EQ(f.rec->current_version(), 4);
  EXPECT_EQ(f.sys.node(3).read(f.rec->version_var()), 4);
}

TEST(PublishedRecord, NoTornReadsEver) {
  // The central property: any snapshot a reader accepts equals one of the
  // published tuples, never a mix — even while the writer is mid-publish
  // (slow publishes open real odd-version windows).
  Fixture f(9);
  std::set<std::vector<dsm::Word>> published;
  sim::Rng rng(404);
  std::vector<sim::Process> writers;
  for (int k = 1; k <= 20; ++k) {
    const std::vector<dsm::Word> values{k, k * 100, k * 10'000};
    published.insert(values);
    f.sched.at(static_cast<sim::Time>(k) * 2'000, [&f, &writers, values] {
      writers.push_back(f.rec->publish_slowly(values, /*per_field=*/300));
    });
  }
  published.insert({0, 0, 0});  // initial state

  // Readers sample at random times while publishes are in flight.
  int accepted = 0, rejected = 0;
  for (int s = 0; s < 400; ++s) {
    const auto node = static_cast<dsm::NodeId>(rng.below(9));
    f.sched.at(rng.below(42'000), [&, node] {
      const auto snap = f.rec->try_read(node);
      if (!snap.has_value()) {
        ++rejected;
        return;
      }
      ++accepted;
      EXPECT_TRUE(published.contains(*snap))
          << "torn read: " << (*snap)[0] << "," << (*snap)[1] << ","
          << (*snap)[2];
    });
  }
  f.sched.run();
  for (const auto& w : writers) w.rethrow_if_failed();
  EXPECT_GT(accepted, 0);
  // Publishes hold the odd version for ~900ns each, 20 times in 40us, so
  // random sampling must land inside some window.
  EXPECT_GT(rejected, 0);
}

TEST(PublishedRecord, BlockingReadRetriesUntilConsistent) {
  Fixture f(4);
  // Start a slow publish; a reader on the WRITER's node sees the odd
  // version immediately and must retry until the publish completes.
  auto w = f.rec->publish_slowly({7, 8, 9}, 500);
  std::vector<dsm::Word> out;
  auto r = f.rec->read(f.rec->writer(), &out);
  EXPECT_FALSE(r.done());  // blocked mid-publish
  f.sched.run();
  w.rethrow_if_failed();
  r.rethrow_if_failed();
  EXPECT_EQ(out, (std::vector<dsm::Word>{7, 8, 9}));
  EXPECT_GT(f.rec->stats().retried_reads, 0u);
}

TEST(PublishedRecord, StatsCountRetries) {
  Fixture f(4);
  f.rec->publish({1, 1, 1});
  f.sched.run();
  (void)f.rec->try_read(2);
  EXPECT_EQ(f.rec->stats().clean_reads, 1u);
  EXPECT_EQ(f.rec->stats().publishes, 1u);
}

TEST(PublishedRecord, WriterMustBeGroupMember) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  EXPECT_THROW(PublishedRecord(sys, g, "r", 2, /*writer=*/3),
               ContractViolation);
}

TEST(PublishedRecord, FieldCountValidated) {
  Fixture f(4);
  EXPECT_THROW(f.rec->publish({1, 2}), ContractViolation);  // needs 3
}

TEST(PublishedRecord, ZeroFieldsRejected) {
  sim::Scheduler sched;
  const net::FullyConnected topo(2);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  EXPECT_THROW(PublishedRecord(sys, g, "r", 0, 0), ContractViolation);
}

TEST(PublishedRecord, ManyFieldsWork) {
  Fixture f(4, 16);
  std::vector<dsm::Word> big;
  for (int i = 0; i < 16; ++i) big.push_back(i * 3);
  f.rec->publish(big);
  f.sched.run();
  const auto snap = f.rec->try_read(2);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(*snap, big);
}

}  // namespace
}  // namespace optsync::core
