#include "rt/rt_lock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace optsync::rt {
namespace {

RtSystem::Config cfg(std::size_t n, std::uint32_t delay_us = 0) {
  RtSystem::Config c;
  c.nodes = n;
  c.link_delay_us = delay_us;
  return c;
}

TEST(RtGwcQueueLock, SingleThreadAcquireRelease) {
  RtSystem sys(cfg(3));
  const auto l = sys.define_lock("l");
  RtGwcQueueLock lk(sys, l);
  lk.acquire(1);
  EXPECT_TRUE(dsm::lock_granted_to(sys.read(1, l), 1));
  lk.release(1);
  sys.quiesce();
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(sys.read(n, l), kLockFree);
  EXPECT_EQ(lk.acquisitions(), 1u);
  EXPECT_EQ(lk.releases(), 1u);
}

TEST(RtGwcQueueLock, MutualExclusionAcrossThreads) {
  RtSystem sys(cfg(4));
  const auto l = sys.define_lock("l");
  const auto d = sys.define_mutex_data("d", l);
  RtGwcQueueLock lk(sys, l);

  std::atomic<int> in_section{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (NodeId n = 0; n < 4; ++n) {
    threads.emplace_back([&, n] {
      for (int k = 0; k < 25; ++k) {
        RtGwcQueueLock::Guard guard(lk, n);
        if (in_section.fetch_add(1) != 0) overlap.store(true);
        sys.write(n, d, sys.read(n, d) + 1);
        std::this_thread::yield();
        in_section.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.quiesce();
  EXPECT_FALSE(overlap.load());
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(sys.read(n, d), 100);
}

TEST(RtGwcQueueLock, GuardReleasesOnScopeExit) {
  RtSystem sys(cfg(2));
  const auto l = sys.define_lock("l");
  RtGwcQueueLock lk(sys, l);
  {
    RtGwcQueueLock::Guard guard(lk, 0);
    EXPECT_TRUE(dsm::lock_granted_to(sys.read(0, l), 0));
  }
  sys.quiesce();
  EXPECT_EQ(sys.read(1, l), kLockFree);
}

TEST(RtGwcQueueLock, LinkDelayWidensRaceWindows) {
  RtSystem sys(cfg(3, /*link delay us*/ 30));
  const auto l = sys.define_lock("l");
  const auto d = sys.define_mutex_data("d", l);
  RtGwcQueueLock lk(sys, l);
  std::vector<std::thread> threads;
  for (NodeId n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      for (int k = 0; k < 10; ++k) {
        RtGwcQueueLock::Guard guard(lk, n);
        sys.write(n, d, sys.read(n, d) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.quiesce();
  EXPECT_EQ(sys.read(0, d), 30);
}

}  // namespace
}  // namespace optsync::rt
