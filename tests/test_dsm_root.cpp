#include "dsm/root.hpp"

#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"

namespace optsync::dsm {
namespace {

class GroupRootTest : public ::testing::Test {
 protected:
  GroupRootTest() : topo_(5), sys_(sched_, topo_, DsmConfig{}) {
    group_ = sys_.create_group({0, 1, 2, 3, 4}, 2);
    lock_ = sys_.define_lock("l", group_);
    mdata_ = sys_.define_mutex_data("m", group_, lock_);
    data_ = sys_.define_data("d", group_);
  }

  GroupRoot& root() { return sys_.root_of(group_); }

  sim::Scheduler sched_;
  net::FullyConnected topo_;
  DsmSystem sys_;
  GroupId group_ = 0;
  VarId lock_ = 0, mdata_ = 0, data_ = 0;
};

TEST_F(GroupRootTest, LockStateOfUntouchedLockIsIdle) {
  // A lock nobody has ever requested has no entry in the root's map;
  // lock_state must hand back the idle state, not fault (stats readers and
  // the speculative-write filter both query locks that may never have been
  // written).
  const auto& ls = root().lock_state(lock_);
  EXPECT_EQ(ls.holder, kNoNode);
  EXPECT_EQ(ls.requests, 0u);
  EXPECT_TRUE(ls.queue.empty());
  // Same for a VarId that is not a lock at all.
  const auto& not_a_lock = root().lock_state(data_);
  EXPECT_EQ(not_a_lock.holder, kNoNode);
  EXPECT_EQ(not_a_lock.requests, 0u);
}

TEST_F(GroupRootTest, FreeLockGrantedImmediately) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  const auto& ls = root().lock_state(lock_);
  EXPECT_EQ(ls.holder, 3u);
  EXPECT_EQ(ls.requests, 1u);
  EXPECT_EQ(ls.immediate_grants, 1u);
  EXPECT_TRUE(ls.queue.empty());
  // Grant propagated to every member.
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(sys_.node(n).read(lock_), lock_grant_value(3));
  }
}

TEST_F(GroupRootTest, BusyLockQueuesRequester) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  const auto& ls = root().lock_state(lock_);
  EXPECT_EQ(ls.holder, 3u);
  ASSERT_EQ(ls.queue.size(), 1u);
  EXPECT_EQ(ls.queue.front(), 1u);
  EXPECT_EQ(ls.max_queue_depth, 1u);
  // A queued request does NOT disturb anyone's lock copy.
  EXPECT_EQ(sys_.node(0).read(lock_), lock_grant_value(3));
}

TEST_F(GroupRootTest, ReleaseHandsToNextQueued) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  sys_.node(1).write(lock_, lock_request_value(1));
  sys_.node(4).write(lock_, lock_request_value(4));
  sched_.run();
  sys_.node(3).write(lock_, kLockFree);
  sched_.run();
  const auto& ls = root().lock_state(lock_);
  EXPECT_EQ(ls.holder, 1u);  // FIFO
  EXPECT_EQ(ls.queued_grants, 1u);
  EXPECT_EQ(sys_.node(0).read(lock_), lock_grant_value(1));
  sys_.node(1).write(lock_, kLockFree);
  sched_.run();
  EXPECT_EQ(root().lock_state(lock_).holder, 4u);
}

TEST_F(GroupRootTest, ReleaseWithEmptyQueuePropagatesFree) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  sys_.node(3).write(lock_, kLockFree);
  sched_.run();
  EXPECT_EQ(root().lock_state(lock_).holder, kNoNode);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(sys_.node(n).read(lock_), kLockFree);
  }
}

TEST_F(GroupRootTest, ReleaseByNonHolderRejected) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  sys_.node(1).write(lock_, kLockFree);
  EXPECT_THROW(sched_.run(), ContractViolation);
}

TEST_F(GroupRootTest, NestedRequestRejected) {
  sys_.node(3).write(lock_, lock_request_value(3));
  sched_.run();
  sys_.node(3).write(lock_, lock_request_value(3));
  EXPECT_THROW(sched_.run(), ContractViolation);
}

TEST_F(GroupRootTest, SpeculativeWriteFromNonHolderDropped) {
  sys_.node(1).write(mdata_, 77);  // nobody holds the lock
  sched_.run();
  EXPECT_EQ(root().stats().speculative_drops, 1u);
  EXPECT_EQ(sys_.node(0).read(mdata_), 0);
  // The speculator's own local memory still shows its write (to be rolled
  // back by the mutex machinery).
  EXPECT_EQ(sys_.node(1).read(mdata_), 77);
}

TEST_F(GroupRootTest, HolderWritesPropagate) {
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  sys_.node(1).write(mdata_, 88);
  sched_.run();
  EXPECT_EQ(root().stats().speculative_drops, 0u);
  for (NodeId n = 0; n < 5; ++n) {
    if (n == 1) continue;  // writer's echo is HW-blocked
    EXPECT_EQ(sys_.node(n).read(mdata_), 88);
  }
}

TEST_F(GroupRootTest, FilteringCanBeDisabled) {
  DsmConfig cfg;
  cfg.root_filters_speculative = false;
  sim::Scheduler sched;
  DsmSystem sys(sched, topo_, cfg);
  const auto g = sys.create_group({0, 1, 2}, 0);
  const auto l = sys.define_lock("l", g);
  const auto m = sys.define_mutex_data("m", g, l);
  sys.node(1).write(m, 5);
  sched.run();
  EXPECT_EQ(sys.node(2).read(m), 5);
  EXPECT_EQ(sys.root_of(g).stats().speculative_drops, 0u);
}

TEST_F(GroupRootTest, PlainDataNeverFiltered) {
  sys_.node(1).write(data_, 13);
  sched_.run();
  EXPECT_EQ(root().stats().speculative_drops, 0u);
  EXPECT_EQ(sys_.node(4).read(data_), 13);
}

TEST_F(GroupRootTest, SequenceNumbersIncrease) {
  sys_.node(1).write(data_, 1);
  sys_.node(2).write(data_, 2);
  sched_.run();
  EXPECT_EQ(root().stats().sequenced, 2u);
  EXPECT_EQ(root().next_seq(), 3u);
}

TEST_F(GroupRootTest, GrantFollowsReleasersDataInGroupOrder) {
  // The paper's key handoff property: the holder's last data write reaches
  // every member BEFORE the next grant does.
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  sys_.node(3).write(lock_, lock_request_value(3));  // queued
  sched_.run();

  sys_.node(4).enable_applied_log(true);
  sys_.node(1).write(mdata_, 1234);  // last data write
  sys_.node(1).write(lock_, kLockFree);  // then release
  sched_.run();

  const auto& log = sys_.node(4).applied_log(group_);
  ASSERT_GE(log.size(), 2u);
  // Find positions of the data write and the grant-to-3.
  int data_pos = -1, grant_pos = -1;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].var == mdata_ && log[i].value == 1234) {
      data_pos = static_cast<int>(i);
    }
    if (log[i].var == lock_ && log[i].value == lock_grant_value(3)) {
      grant_pos = static_cast<int>(i);
    }
  }
  ASSERT_NE(data_pos, -1);
  ASSERT_NE(grant_pos, -1);
  EXPECT_LT(data_pos, grant_pos);
}

}  // namespace
}  // namespace optsync::dsm
