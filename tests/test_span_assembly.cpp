// Span assembly end-to-end: every traced service op must yield a COMPLETE
// span tree (no orphan parents, no unfinished request spans) whose latency
// buckets sum exactly to the measured arrival->completion latency — on a
// clean fiber, and across a battery of drop/duplicate/partition fault
// schedules where retransmission legs stretch the trees. Also the overload
// detector's acceptance pair: a deep-overload run must flag its saturated
// shard `drowning`, an at-capacity run must not. Seeds 1100+ keep the
// fault schedules disjoint from the other soak suites.
#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "telemetry/overload.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/tracer.hpp"

namespace optsync {
namespace {

/// Same attack shape as the service soak (drops on both traffic classes,
/// duplication, a healed link partition), over this suite's seed range.
faults::FaultPlan span_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.08, "lock").drop(0.08, "data").duplicate(0.04);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 220'000);
  return plan;
}

struct TracedRun {
  telemetry::Tracer tracer;
  stats::ServiceReport report;
  std::uint64_t requests = 0;
};

void run_traced_service(TracedRun& run, std::uint64_t seed,
                        const faults::FaultPlan* faults, bool zipfian,
                        std::uint64_t requests, double rate_rps) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  dsm::DsmConfig cfg;
  if (faults != nullptr) cfg.faults = *faults;
  cfg.tracer = &run.tracer;
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = requests;
  gcfg.rate_rps = rate_rps;
  gcfg.txn_fraction = 0.10;
  if (zipfian) {
    gcfg.keys.dist = load::KeyDist::kZipfian;
    gcfg.keys.keys = 1024;
  }
  load::Generator gen(gcfg);
  run.requests = requests;

  shard::Client client(store);
  auto drive = gen.run(client, run.report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(run.report);
  ASSERT_TRUE(gen.done());
}

/// The assembly contract shared by the clean and faulted runs: one
/// complete tree per request, buckets exactly covering each request
/// window, and most latency attributed to a named cause.
void expect_complete_assembly(const TracedRun& run, std::uint64_t seed,
                              double min_named_fraction) {
  const telemetry::Analysis an = run.tracer.analyze();
  EXPECT_EQ(an.orphan_spans, 0u) << "seed " << seed;
  EXPECT_EQ(an.incomplete_ops, 0u) << "seed " << seed;
  EXPECT_EQ(an.open_spans, 0u) << "seed " << seed;
  EXPECT_EQ(an.ops.size(), run.requests) << "seed " << seed;
  EXPECT_EQ(run.tracer.dropped_spans(), 0u) << "seed " << seed;

  sim::Duration total = 0;
  for (const telemetry::OpBreakdown& op : an.ops) {
    sim::Duration sum = 0;
    for (const sim::Duration b : op.buckets) sum += b;
    // Exact by construction: the sweep covers the window with buckets
    // plus the kOther remainder. Any mismatch is a broken tree.
    ASSERT_EQ(sum, op.total()) << "trace " << op.trace << " seed " << seed;
    total += op.total();
  }
  EXPECT_EQ(total, an.total_latency);
  EXPECT_GE(an.named_fraction(), min_named_fraction)
      << "seed " << seed << ": named buckets cover only "
      << 100.0 * an.named_fraction() << "% of measured latency";
}

TEST(SpanAssembly, CleanZipfianRunYieldsCompleteTrees) {
  TracedRun run;
  run_traced_service(run, /*seed=*/41, /*faults=*/nullptr, /*zipfian=*/true,
                     /*requests=*/600, /*rate_rps=*/200'000.0);
  EXPECT_EQ(run.report.completed(), 600u);
  EXPECT_TRUE(run.report.serializable());
  // Acceptance: per-op buckets sum to measured latency (exact, asserted
  // inside) and >= 95% of the total is attributed to a named cause.
  expect_complete_assembly(run, 41, 0.95);
}

class SpanAssemblyFaultSoak : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SpanAssemblyFaultSoak, TreesSurviveDropAndPartition) {
  const std::uint64_t seed = GetParam();
  const faults::FaultPlan plan = span_attack(seed);
  TracedRun run;
  run_traced_service(run, seed, &plan, /*zipfian=*/false, /*requests=*/220,
                     /*rate_rps=*/60'000.0);
  EXPECT_EQ(run.report.completed(), 220u);
  EXPECT_GT(run.report.faults.drops_injected, 0u) << "seed " << seed;
  // Loss recovery stretches trees with retransmit legs but must never
  // tear them: every parent resolves, every window stays fully bucketed.
  expect_complete_assembly(run, seed, 0.90);
}

INSTANTIATE_TEST_SUITE_P(DropPartitionSeeds, SpanAssemblyFaultSoak,
                         ::testing::Range<std::uint64_t>(1100, 1122));

// --- overload detection acceptance pair ---------------------------------

struct OverloadRun {
  stats::ServiceReport report;
  bool drowning = false;
  double slope = 0.0;
};

OverloadRun run_overloaded_service(double rate_rps) {
  OverloadRun run;
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  dsm::DsmConfig cfg;
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = 1;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = 7;
  gcfg.requests = 1'500;
  gcfg.rate_rps = rate_rps;
  gcfg.read_fraction = 0.10;
  gcfg.txn_fraction = 0.0;
  load::Generator gen(gcfg);

  telemetry::Sampler sampler;
  run.report.shards.resize(store.shards());
  store.register_telemetry(sampler, run.report);

  shard::Client client(store);
  auto drive = gen.run(client, run.report);
  sampler.start(sched);
  sched.run();
  drive.rethrow_if_failed();
  sampler.sample_now(sched.now());
  store.fill_report(run.report);
  telemetry::flag_overload(run.report, sampler.series());

  run.drowning = run.report.shards.at(0).drowning;
  run.slope = run.report.shards.at(0).backlog_slope_per_s;
  return run;
}

TEST(OverloadDetection, DeepOverloadFlagsTheShardDrowning) {
  // 2M req/s against a single shard whose goodput ceiling is ~600k: the
  // backlog grows for the whole offered-load window.
  const OverloadRun run = run_overloaded_service(2'000'000.0);
  EXPECT_EQ(run.report.completed(), 1'500u);
  EXPECT_TRUE(run.drowning)
      << "saturated shard not flagged (slope " << run.slope << " req/s)";
  EXPECT_GT(run.slope, 0.0);
  EXPECT_EQ(run.report.drowning_shards(), 1u);
  EXPECT_NE(run.report.format().find("DROWNING"), std::string::npos);
}

TEST(OverloadDetection, AtCapacityLoadIsNotFlagged) {
  // 25k req/s is well within one shard's capacity: latency is fine and
  // the backlog never grows structurally. High latency != drowning.
  const OverloadRun run = run_overloaded_service(25'000.0);
  EXPECT_EQ(run.report.completed(), 1'500u);
  EXPECT_FALSE(run.drowning)
      << "healthy shard flagged (slope " << run.slope << " req/s)";
  EXPECT_EQ(run.report.drowning_shards(), 0u);
  EXPECT_EQ(run.report.format().find("DROWNING"), std::string::npos);
}

}  // namespace
}  // namespace optsync
