// Fault-injection layer: FaultPlan decisions, FaultInjector wiring, and the
// network-side counters/trace kinds the injector produces.
#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "faults/fault_plan.hpp"
#include "net/network.hpp"

namespace optsync::faults {
namespace {

net::MessageMeta meta(net::NodeId src, net::NodeId dst, std::string_view tag,
                      sim::Time sent_at = 0, sim::Duration base_delay = 328) {
  return net::MessageMeta{src,     dst,        1,  16, tag,
                          sent_at, base_delay, net::DeliveryKind::kNormal};
}

TEST(FaultPlan, EmptyPlanLeavesEverythingAlone) {
  FaultPlan plan(1);
  EXPECT_TRUE(plan.empty());
  const auto act = plan.decide(meta(0, 1, "data-up"));
  EXPECT_FALSE(act.drop);
  EXPECT_EQ(act.duplicates, 0u);
  EXPECT_EQ(act.extra_delay, 0u);
}

TEST(FaultPlan, CertainDropAlwaysDrops) {
  FaultPlan plan(7);
  plan.drop(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.decide(meta(0, 1, "anything")).drop);
  }
}

TEST(FaultPlan, TagPrefixSelectsMessages) {
  FaultPlan plan(7);
  plan.drop(1.0, "lock");
  EXPECT_TRUE(plan.decide(meta(0, 1, "lock-up")).drop);
  EXPECT_TRUE(plan.decide(meta(0, 1, "lock-down")).drop);
  EXPECT_FALSE(plan.decide(meta(0, 1, "data-up")).drop);
  EXPECT_FALSE(plan.decide(meta(0, 1, "rel-ack")).drop);
}

TEST(FaultPlan, SrcDstPredicatesSelectMessages) {
  FaultPlan plan(7);
  plan.drop(1.0, "", 2, kAnyNode);
  plan.drop(1.0, "", kAnyNode, 5);
  EXPECT_TRUE(plan.decide(meta(2, 9, "m")).drop);
  EXPECT_TRUE(plan.decide(meta(8, 5, "m")).drop);
  EXPECT_FALSE(plan.decide(meta(3, 4, "m")).drop);
}

TEST(FaultPlan, LoopbackIsNeverFaulted) {
  FaultPlan plan(7);
  plan.drop(1.0);
  plan.pause_node(3, 0, 1'000'000);
  const auto act = plan.decide(meta(3, 3, "self"));
  EXPECT_FALSE(act.drop);
  EXPECT_EQ(act.extra_delay, 0u);
}

TEST(FaultPlan, SameSeedReplaysIdenticalDecisions) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.drop(0.3).duplicate(0.2).delay(0.4, 1'000);
    std::vector<net::FaultAction> acts;
    for (int i = 0; i < 200; ++i) {
      acts.push_back(plan.decide(meta(0, 1, "m", static_cast<sim::Time>(i))));
    }
    return acts;
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  bool any_fault = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop);
    EXPECT_EQ(a[i].duplicates, b[i].duplicates);
    EXPECT_EQ(a[i].extra_delay, b[i].extra_delay);
    any_fault = any_fault || a[i].drop || a[i].duplicates > 0;
  }
  EXPECT_TRUE(any_fault);
  // A different seed diverges somewhere in 200 draws.
  const auto c = run(43);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].drop != c[i].drop ||
              a[i].extra_delay != c[i].extra_delay;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ReseedRestartsTheSchedule) {
  FaultPlan plan(9);
  plan.delay(1.0, 10'000);
  std::vector<sim::Duration> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(plan.decide(meta(0, 1, "m")).extra_delay);
  }
  plan.reseed(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plan.decide(meta(0, 1, "m")).extra_delay,
              first[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultPlan, PartitionDropsOnlyInsideWindowBothDirections) {
  FaultPlan plan(1);
  plan.partition_link(2, 6, 1'000, 5'000);
  EXPECT_FALSE(plan.decide(meta(2, 6, "m", 999)).drop);
  EXPECT_TRUE(plan.decide(meta(2, 6, "m", 1'000)).drop);
  EXPECT_TRUE(plan.decide(meta(6, 2, "m", 4'999)).drop);
  EXPECT_FALSE(plan.decide(meta(2, 6, "m", 5'000)).drop);
  EXPECT_FALSE(plan.decide(meta(2, 7, "m", 2'000)).drop);  // other link
}

TEST(FaultPlan, PausedSourceHoldsTrafficUntilWindowEnd) {
  FaultPlan plan(1);
  plan.pause_node(1, 100, 500);
  // Sent at t=200 while paused: held until 500 (extra 300).
  EXPECT_EQ(plan.decide(meta(1, 0, "m", 200)).extra_delay, 300u);
  // Outside the window: untouched.
  EXPECT_EQ(plan.decide(meta(1, 0, "m", 600)).extra_delay, 0u);
}

TEST(FaultPlan, PausedDestinationDefersArrivalPastWindow) {
  FaultPlan plan(1);
  plan.pause_node(0, 100, 2'000);
  // Sent at t=0, base arrival 328 falls in the window: arrival moves to
  // 2'000, i.e. extra delay 1'672.
  EXPECT_EQ(plan.decide(meta(1, 0, "m", 0, 328)).extra_delay, 1'672u);
  // Arrival after the window: untouched.
  EXPECT_EQ(plan.decide(meta(1, 0, "m", 2'000, 328)).extra_delay, 0u);
}

TEST(FaultInjector, InstallsAndUninstallsTheHook) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo(2, 2);
  net::Network net(sched, topo, net::LinkModel::paper());
  EXPECT_FALSE(net.fault_hook_installed());
  {
    FaultPlan plan(1);
    plan.drop(1.0);
    FaultInjector inj(net, plan);
    EXPECT_TRUE(net.fault_hook_installed());
  }
  EXPECT_FALSE(net.fault_hook_installed());
}

TEST(FaultInjector, DropsAreCountedAndNeverDelivered) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo(2, 2);
  net::Network net(sched, topo, net::LinkModel::paper());
  FaultPlan plan(1);
  plan.drop(1.0, "doomed");
  FaultInjector inj(net, plan);

  std::vector<net::MessageTrace> traces;
  net.set_trace_hook([&](const net::MessageTrace& t) { traces.push_back(t); });

  int doomed = 0;
  int safe = 0;
  net.send(0, 1, 16, "doomed", [&] { ++doomed; });
  net.send(0, 1, 16, "safe", [&] { ++safe; });
  sched.run();

  EXPECT_EQ(doomed, 0);
  EXPECT_EQ(safe, 1);
  EXPECT_EQ(net.stats().drops_injected, 1u);
  ASSERT_EQ(traces.size(), 2u);
  // The drop is traced at send time with the would-have-arrived timestamp.
  EXPECT_EQ(traces[0].kind, net::DeliveryKind::kInjectedDrop);
  EXPECT_EQ(traces[0].tag, "doomed");
  EXPECT_GT(traces[0].delivered_at, traces[0].sent_at);
  EXPECT_EQ(traces[1].kind, net::DeliveryKind::kNormal);
}

TEST(FaultInjector, DuplicatesDeliverTwiceAndAreCounted) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo(2, 2);
  net::Network net(sched, topo, net::LinkModel::paper());
  FaultPlan plan(1);
  plan.duplicate(1.0);
  FaultInjector inj(net, plan);

  std::vector<net::DeliveryKind> kinds;
  net.set_trace_hook(
      [&](const net::MessageTrace& t) { kinds.push_back(t.kind); });

  int delivered = 0;
  net.send(0, 1, 16, "m", [&] { ++delivered; });
  sched.run();

  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().dups_injected, 1u);
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], net::DeliveryKind::kNormal);
  EXPECT_EQ(kinds[1], net::DeliveryKind::kDuplicate);
}

TEST(FaultInjector, InjectedDelayBreaksFifoAndIsCounted) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo(2, 2);
  net::Network net(sched, topo, net::LinkModel::paper());
  FaultPlan plan(1);
  // Delay only the "slow" message by a fixed-ish jitter far larger than the
  // base latency, so the later "fast" send overtakes it.
  plan.add_rule(MessageFaultRule{"slow", kAnyNode, kAnyNode, 0.0, 0.0, 1.0,
                                 100'000});
  FaultInjector inj(net, plan);

  std::vector<std::string> order;
  net.send(0, 1, 16, "slow", [&] { order.push_back("slow"); });
  net.send(0, 1, 16, "fast", [&] { order.push_back("fast"); });
  sched.run();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(net.stats().delays_injected, 1u);
  EXPECT_GT(net.stats().max_extra_delay_ns, 0u);
  // Overtaking is probabilistic in the jitter draw but overwhelmingly likely
  // with a 100 us bound vs a 328 ns base delay; assert on the counters and
  // accept either order only if the draw landed tiny.
  if (net.stats().max_extra_delay_ns > 1'000) {
    EXPECT_EQ(order[0], "fast");
    EXPECT_EQ(order[1], "slow");
  }
}

}  // namespace
}  // namespace optsync::faults
