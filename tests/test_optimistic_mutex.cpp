#include "core/optimistic_mutex.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"

namespace optsync::core {
namespace {

using dsm::DsmConfig;
using dsm::DsmSystem;
using dsm::VarId;
using dsm::Word;
using net::NodeId;

struct Fixture {
  explicit Fixture(std::size_t n, OptimisticMutex::Config cfg = {})
      : topo(net::MeshTorus2D::near_square(n)), sys(sched, topo, DsmConfig{}) {
    std::vector<NodeId> members;
    for (NodeId i = 0; i < n; ++i) members.push_back(i);
    group = sys.create_group(members, 0);
    lock = sys.define_lock("L", group);
    a = sys.define_mutex_data("a", group, lock, 100);
    mux = std::make_unique<OptimisticMutex>(sys, lock, cfg);
  }

  Section increment_section(sim::Duration compute = 1'000) {
    Section sec;
    sec.shared_writes = {a};
    sec.body = [this, compute](dsm::DsmNode& nd) -> sim::Process {
      const Word before = nd.read(a);
      co_await sim::delay(sched, compute);
      nd.write(a, before + 1);
    };
    return sec;
  }

  sim::Scheduler sched;
  net::MeshTorus2D topo;
  DsmSystem sys;
  dsm::GroupId group = 0;
  VarId lock = 0, a = 0;
  std::unique_ptr<OptimisticMutex> mux;
};

sim::Process run_at(Fixture& f, NodeId n, sim::Duration at, Section sec,
                    ExecuteStats* out = nullptr) {
  co_await sim::delay(f.sched, at);
  co_await f.mux->execute(n, std::move(sec), out).join();
}

TEST(OptimisticMutex, UncontendedSpeculationSucceeds) {
  Fixture f(9);
  ExecuteStats stats;
  auto p = run_at(f, 5, 0, f.increment_section(), &stats);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(stats.used_optimistic);
  EXPECT_FALSE(stats.rolled_back);
  EXPECT_EQ(f.mux->stats().optimistic_successes, 1u);
  EXPECT_EQ(f.mux->stats().rollbacks, 0u);
  // The update reached every member.
  for (NodeId n = 0; n < 9; ++n) EXPECT_EQ(f.sys.node(n).read(f.a), 101);
  // And the lock ended free everywhere.
  for (NodeId n = 0; n < 9; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.lock), dsm::kLockFree);
  }
}

TEST(OptimisticMutex, SpeculationOverlapsLockRoundTrip) {
  // With an uncontended lock, the optimistic execution should finish in
  // roughly max(section, round trip) rather than round trip + section.
  auto run_one = [](bool optimistic) {
    OptimisticMutex::Config c;
    c.enable_optimistic = optimistic;
    Fixture fx(16, c);
    auto p = run_at(fx, 15, 0, fx.increment_section(2'000));
    fx.sched.run();
    p.rethrow_if_failed();
    return fx.sched.now();
  };
  const auto opt_time = run_one(true);
  const auto reg_time = run_one(false);
  EXPECT_LT(opt_time, reg_time);
}

TEST(OptimisticMutex, ContendedSpeculationRollsBackAndRetries) {
  Fixture f(9);
  ExecuteStats s1, s2;
  // Node 1 (near root) wins and holds long enough that node 8's speculative
  // write reaches the root while the lock is still node 1's — forcing the
  // root to filter it.
  auto p1 = run_at(f, 1, 0, f.increment_section(12'000), &s1);
  auto p2 = run_at(f, 8, 100, f.increment_section(2'000), &s2);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();

  EXPECT_EQ(f.mux->stats().rollbacks, 1u);
  EXPECT_TRUE(s2.rolled_back || s1.rolled_back);
  // Both increments applied exactly once, in some serial order.
  for (NodeId n = 0; n < 9; ++n) EXPECT_EQ(f.sys.node(n).read(f.a), 102);
  // The loser's speculative write was filtered at the root.
  EXPECT_GE(f.sys.root_of(f.group).stats().speculative_drops, 1u);
}

TEST(OptimisticMutex, RollbackRestoresLocalValuesBeforeReexecution) {
  Fixture f(9);
  std::vector<Word> observed_before;  // value each body run started from
  Section sec;
  sec.shared_writes = {f.a};
  sec.body = [&f, &observed_before](dsm::DsmNode& nd) -> sim::Process {
    observed_before.push_back(nd.read(f.a));
    co_await sim::delay(f.sched, 2'000);
    nd.write(f.a, nd.read(f.a) * 2);
  };
  Section winner = f.increment_section(2'000);

  auto p1 = run_at(f, 1, 0, winner);
  auto p2 = run_at(f, 8, 50, sec);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();

  ASSERT_EQ(observed_before.size(), 2u);  // speculative run + retry
  EXPECT_EQ(observed_before[0], 100);     // stale (pre-increment) value
  EXPECT_EQ(observed_before[1], 101);     // valid value after the grant
  for (NodeId n = 0; n < 9; ++n) EXPECT_EQ(f.sys.node(n).read(f.a), 202);
}

TEST(OptimisticMutex, LocalVariablesRestoredOnRollback) {
  Fixture f(9);
  Word lcl_c = 5;  // the paper's lcl_c
  Word saved_lcl_c = 0;
  Section sec;
  sec.shared_writes = {f.a};
  sec.save_locals = [&] { saved_lcl_c = lcl_c; };
  sec.restore_locals = [&] { lcl_c = saved_lcl_c; };
  sec.body = [&](dsm::DsmNode& nd) -> sim::Process {
    lcl_c = nd.read(f.a) + lcl_c;  // Fig. 3: lcl_c = shared_a + ... + lcl_c
    co_await sim::delay(f.sched, 2'000);
    nd.write(f.a, lcl_c);
  };

  auto p1 = run_at(f, 1, 0, f.increment_section(2'000));
  auto p2 = run_at(f, 8, 50, sec);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();

  // Retry computed from the valid a=101 and the RESTORED lcl_c=5.
  EXPECT_EQ(f.sys.node(0).read(f.a), 106);
  EXPECT_EQ(f.mux->stats().rollbacks, 1u);
}

TEST(OptimisticMutex, HighHistoryForcesRegularPath) {
  OptimisticMutex::Config cfg;
  cfg.history_threshold = 0.30;
  Fixture f(4, cfg);
  // Drive the history through real contention: many back-to-back sections
  // from two nodes leave both histories hot, so later requests take the
  // regular path without speculating.
  std::vector<sim::Process> procs;
  auto hammer = [&f](NodeId n, int count) -> sim::Process {
    for (int k = 0; k < count; ++k) {
      co_await f.mux->execute(n, f.increment_section(4'000)).join();
    }
  };
  procs.push_back(hammer(1, 15));
  procs.push_back(hammer(2, 15));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  EXPECT_GT(f.mux->stats().regular_paths, 0u);
  EXPECT_GT(f.mux->history_value(1) + f.mux->history_value(2), 0.0);
  EXPECT_EQ(f.sys.node(0).read(f.a), 130);
}

TEST(OptimisticMutex, DisabledOptimismNeverSpeculates) {
  OptimisticMutex::Config cfg;
  cfg.enable_optimistic = false;
  Fixture f(4, cfg);
  auto p = run_at(f, 2, 0, f.increment_section());
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.mux->stats().optimistic_attempts, 0u);
  EXPECT_EQ(f.mux->stats().regular_paths, 1u);
  EXPECT_EQ(f.sys.node(0).read(f.a), 101);
}

TEST(OptimisticMutex, NestedExecutionRejected) {
  Fixture f(4);
  Section outer;
  outer.shared_writes = {f.a};
  bool threw = false;
  outer.body = [&f, &threw](dsm::DsmNode&) -> sim::Process {
    try {
      co_await f.mux->execute(1, f.increment_section()).join();
    } catch (const ContractViolation&) {
      threw = true;
    }
  };
  auto p = run_at(f, 1, 0, std::move(outer));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(threw);
}

TEST(OptimisticMutex, CrossMutexOverlapOnOneNodeRejected) {
  // A node is one instruction stream: overlapping sections under two
  // DIFFERENT locks is the same Fig. 4 nesting error.
  Fixture f(4);
  const auto lock2 = f.sys.define_lock("L2", f.group);
  const auto b = f.sys.define_mutex_data("b", f.group, lock2, 0);
  OptimisticMutex mux2(f.sys, lock2, OptimisticMutex::Config{});

  bool threw = false;
  Section outer;
  outer.shared_writes = {f.a};
  outer.body = [&](dsm::DsmNode&) -> sim::Process {
    Section inner;
    inner.shared_writes = {b};
    inner.body = [](dsm::DsmNode&) -> sim::Process { co_return; };
    try {
      co_await mux2.execute(1, std::move(inner)).join();
    } catch (const ContractViolation&) {
      threw = true;
    }
  };
  auto p = run_at(f, 1, 0, std::move(outer));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(threw);
  // Occupancy was cleaned up: a later section on the node succeeds.
  // (The outer body never wrote f.a, so only this increment applies.)
  auto p2 = run_at(f, 1, 0, f.increment_section(100));
  f.sched.run();
  p2.rethrow_if_failed();
  EXPECT_EQ(f.sys.node(0).read(f.a), 101);
}

TEST(OptimisticMutex, WorksUnderRootJitter) {
  // Speculation + rollback must stay correct when the root's sequencing
  // latency is noisy.
  dsm::DsmConfig cfg;
  cfg.root_jitter_ns = 3'000;
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(9);
  DsmSystem sys(sched, topo, cfg);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < 9; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto lock = sys.define_lock("L", g);
  const auto a = sys.define_mutex_data("a", g, lock, 0);
  OptimisticMutex mux(sys, lock, OptimisticMutex::Config{});

  std::vector<sim::Process> procs;
  auto worker = [&](NodeId n) -> sim::Process {
    for (int k = 0; k < 6; ++k) {
      co_await sim::delay(sched, 1'000 + n * 333);
      Section sec;
      sec.shared_writes = {a};
      sec.body = [&sys, &sched, a](dsm::DsmNode& nd) -> sim::Process {
        const Word v = nd.read(a);
        co_await sim::delay(sched, 700);
        nd.write(a, v + 1);
      };
      co_await mux.execute(n, std::move(sec)).join();
    }
  };
  for (NodeId n = 0; n < 9; ++n) procs.push_back(worker(n));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  for (NodeId n = 0; n < 9; ++n) EXPECT_EQ(sys.node(n).read(a), 54);
}

TEST(OptimisticMutex, MismatchedLocalHooksRejected) {
  Fixture f(4);
  Section sec;
  sec.shared_writes = {f.a};
  sec.save_locals = [] {};
  sec.body = [](dsm::DsmNode&) -> sim::Process { co_return; };
  EXPECT_THROW(f.mux->execute(1, std::move(sec)), ContractViolation);
}

TEST(OptimisticMutex, RequiresLockVariable) {
  Fixture f(4);
  EXPECT_THROW(OptimisticMutex(f.sys, f.a, OptimisticMutex::Config{}),
               ContractViolation);
}

TEST(OptimisticMutex, InSectionTracking) {
  Fixture f(4);
  EXPECT_FALSE(f.mux->in_section(1));
  Section sec;
  sec.shared_writes = {f.a};
  sec.body = [&f](dsm::DsmNode&) -> sim::Process {
    EXPECT_TRUE(f.mux->in_section(1));
    co_return;
  };
  auto p = run_at(f, 1, 0, std::move(sec));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_FALSE(f.mux->in_section(1));
}

TEST(OptimisticMutex, ImmediateReentryAfterReleaseIsSafe) {
  // The Fig. 6 discussion: a processor releases and re-enters before the
  // official free returns; hardware blocking keeps rollback state sound.
  Fixture f(9);
  auto back_to_back = [&f](NodeId n) -> sim::Process {
    for (int k = 0; k < 5; ++k) {
      co_await f.mux->execute(n, f.increment_section(500)).join();
    }
  };
  auto p = back_to_back(8);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.sys.node(0).read(f.a), 105);
  for (NodeId n = 0; n < 9; ++n) EXPECT_EQ(f.sys.node(n).read(f.a), 105);
}

TEST(OptimisticMutex, ContextSwitchChargedOnlyWhenBlockedLong) {
  // Spin-then-swap: a regular-path wait longer than the swap budget pays
  // 2x the swap cost; an uncontended optimistic execution pays nothing.
  OptimisticMutex::Config cfg;
  cfg.context_switch_ns = 100;  // tiny budget: any real wait swaps
  cfg.enable_optimistic = false;
  Fixture reg(16, cfg);
  auto p1 = run_at(reg, 15, 0, reg.increment_section(1'000));
  reg.sched.run();
  p1.rethrow_if_failed();
  EXPECT_EQ(reg.mux->stats().context_switches, 1u);

  cfg.enable_optimistic = true;
  Fixture opt(16, cfg);
  auto p2 = run_at(opt, 15, 0, opt.increment_section(10'000));
  opt.sched.run();
  p2.rethrow_if_failed();
  // Grant arrived during the 10us body: no blocking, no swap.
  EXPECT_EQ(opt.mux->stats().context_switches, 0u);
}

TEST(OptimisticMutex, NoSwapWhenWaitWithinSpinBudget) {
  OptimisticMutex::Config cfg;
  cfg.context_switch_ns = 1'000'000;  // 1ms budget: everything spins
  cfg.enable_optimistic = false;
  Fixture f(16, cfg);
  auto p = run_at(f, 15, 0, f.increment_section(1'000));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.mux->stats().context_switches, 0u);
}

TEST(OptimisticMutex, ManyNodesSerializeCorrectly) {
  Fixture f(16);
  std::vector<sim::Process> procs;
  for (NodeId n = 0; n < 16; ++n) {
    procs.push_back(run_at(f, n, n * 37, f.increment_section(800)));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(f.sys.node(n).read(f.a), 116);
  }
  const auto& ms = f.mux->stats();
  EXPECT_EQ(ms.executions, 16u);
  EXPECT_EQ(ms.optimistic_successes + ms.rollbacks + ms.regular_paths,
            ms.executions);
}

}  // namespace
}  // namespace optsync::core
