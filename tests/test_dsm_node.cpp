#include "dsm/node.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"

namespace optsync::dsm {
namespace {

class DsmNodeTest : public ::testing::Test {
 protected:
  DsmNodeTest() : topo_(2, 2), sys_(sched_, topo_, DsmConfig{}) {
    group_ = sys_.create_group({0, 1, 2, 3}, 0);
    data_ = sys_.define_data("d", group_);
    lock_ = sys_.define_lock("l", group_);
    mdata_ = sys_.define_mutex_data("m", group_, lock_);
  }

  sim::Scheduler sched_;
  net::MeshTorus2D topo_;
  DsmSystem sys_;
  GroupId group_ = 0;
  VarId data_ = 0, lock_ = 0, mdata_ = 0;
};

TEST_F(DsmNodeTest, LocalWriteVisibleImmediately) {
  sys_.node(1).write(data_, 42);
  EXPECT_EQ(sys_.node(1).read(data_), 42);
  // Not yet on other nodes — eagersharing takes network time.
  EXPECT_EQ(sys_.node(2).read(data_), 0);
  sched_.run();
  EXPECT_EQ(sys_.node(2).read(data_), 42);
}

TEST_F(DsmNodeTest, AtomicExchangeReturnsOldValue) {
  sys_.node(0).poke(data_, 7);
  EXPECT_EQ(sys_.node(0).atomic_exchange(data_, 9), 7);
  EXPECT_EQ(sys_.node(0).read(data_), 9);
}

TEST_F(DsmNodeTest, PokeDoesNotShare) {
  sys_.node(1).poke(data_, 5);
  sched_.run();
  EXPECT_EQ(sys_.node(2).read(data_), 0);
  EXPECT_EQ(sys_.network().stats().messages, 0u);
}

TEST_F(DsmNodeTest, SuspensionQueuesIncomingUpdates) {
  sys_.node(2).suspend_insharing();
  sys_.node(1).write(data_, 11);
  sched_.run();
  EXPECT_EQ(sys_.node(2).read(data_), 0);
  EXPECT_EQ(sys_.node(2).stats().queued_while_suspended, 1u);
  sys_.node(2).resume_insharing();
  EXPECT_EQ(sys_.node(2).read(data_), 11);
}

TEST_F(DsmNodeTest, ResumeAppliesQueuedInOrder) {
  sys_.node(2).enable_applied_log(true);
  sys_.node(2).suspend_insharing();
  sys_.node(1).write(data_, 1);
  sys_.node(1).write(data_, 2);
  sys_.node(1).write(data_, 3);
  sched_.run();
  sys_.node(2).resume_insharing();
  const auto& log = sys_.node(2).applied_log(group_);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].value, 1);
  EXPECT_EQ(log[1].value, 2);
  EXPECT_EQ(log[2].value, 3);
  EXPECT_EQ(sys_.node(2).read(data_), 3);
}

TEST_F(DsmNodeTest, HardwareBlockingDropsOwnMutexEchoes) {
  // Make node 1 the lock holder so its mutex-data writes pass the root.
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  ASSERT_EQ(sys_.node(1).read(lock_), lock_grant_value(1));

  sys_.node(1).write(mdata_, 99);
  sched_.run();
  // Other members applied it; the writer dropped its own echo.
  EXPECT_EQ(sys_.node(2).read(mdata_), 99);
  EXPECT_EQ(sys_.node(1).read(mdata_), 99);  // local write already applied
  EXPECT_EQ(sys_.node(1).stats().echoes_dropped, 1u);
  EXPECT_EQ(sys_.node(2).stats().echoes_dropped, 0u);
}

TEST_F(DsmNodeTest, PlainDataEchoesAreApplied) {
  sys_.node(1).write(data_, 5);
  sched_.run();
  EXPECT_EQ(sys_.node(1).stats().echoes_dropped, 0u);
}

TEST_F(DsmNodeTest, HardwareBlockingCanBeDisabled) {
  sys_.node(1).set_hardware_blocking(false);
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  sys_.node(1).write(mdata_, 99);
  sched_.run();
  EXPECT_EQ(sys_.node(1).stats().echoes_dropped, 0u);
}

TEST_F(DsmNodeTest, InterruptFiresAndSuspendsInsharing) {
  int fires = 0;
  Word seen = 0;
  sys_.node(2).arm_interrupt(lock_, [&](VarId, Word value, NodeId) {
    ++fires;
    seen = value;
    // Leave insharing suspended: the test resumes manually.
  });
  sys_.node(1).write(lock_, lock_request_value(1));  // root grants
  sched_.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(seen, lock_grant_value(1));
  EXPECT_TRUE(sys_.node(2).insharing_suspended());
  EXPECT_EQ(sys_.node(2).stats().interrupts, 1u);
  sys_.node(2).resume_insharing();
}

TEST_F(DsmNodeTest, InterruptValueAppliedBeforeHandlerRuns) {
  Word local_at_fire = -1;
  sys_.node(2).arm_interrupt(lock_, [&](VarId v, Word, NodeId) {
    local_at_fire = sys_.node(2).read(v);
    sys_.node(2).resume_insharing();
  });
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  EXPECT_EQ(local_at_fire, lock_grant_value(1));
}

TEST_F(DsmNodeTest, DisarmStopsInterrupts) {
  int fires = 0;
  sys_.node(2).arm_interrupt(lock_, [&](VarId, Word, NodeId) {
    ++fires;
    sys_.node(2).resume_insharing();
  });
  sys_.node(2).disarm_interrupt(lock_);
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  EXPECT_EQ(fires, 0);
  EXPECT_FALSE(sys_.node(2).insharing_suspended());
}

TEST_F(DsmNodeTest, HandlerMayDisarmItself) {
  int fires = 0;
  sys_.node(2).arm_interrupt(lock_, [&](VarId v, Word, NodeId) {
    ++fires;
    sys_.node(2).disarm_interrupt(v);
    sys_.node(2).resume_insharing();
  });
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  sys_.node(1).write(lock_, kLockFree);
  sched_.run();
  EXPECT_EQ(fires, 1);
}

TEST_F(DsmNodeTest, SignalNotifiedOnLocalAndRemoteChange) {
  int wakes = 0;
  auto waiter = [&](DsmNode& node) -> sim::Process {
    co_await node.on_change(data_).wait();
    ++wakes;
    co_await node.on_change(data_).wait();
    ++wakes;
  };
  auto p = waiter(sys_.node(2));
  sys_.node(2).poke(data_, 0);
  sys_.node(2).write(data_, 1);  // local change -> first wake
  sched_.run();
  EXPECT_GE(wakes, 1);
  sys_.node(1).write(data_, 2);  // remote change -> second wake
  sched_.run();
  EXPECT_EQ(wakes, 2);
  EXPECT_TRUE(p.done());
}

TEST_F(DsmNodeTest, AppliedSeqMonotonic) {
  sys_.node(3).enable_applied_log(true);
  for (int i = 0; i < 10; ++i) {
    sys_.node(static_cast<NodeId>(i % 3)).write(data_, i);
  }
  sched_.run();
  const auto& log = sys_.node(3).applied_log(group_);
  ASSERT_EQ(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].seq, log[i - 1].seq);
  }
}

TEST_F(DsmNodeTest, InterruptDuringDrainStopsTheDrain) {
  // The subtlest path: resume_insharing() drains the queue, and an armed
  // interrupt fires on an update mid-drain — the drain must stop with the
  // remaining updates still queued (insharing re-suspended atomically).
  sys_.node(2).enable_applied_log(true);
  sys_.node(2).suspend_insharing();

  // Queue: data=1, lock grant (interrupt!), data=2, data=3.
  sys_.node(1).write(data_, 1);
  sys_.node(1).write(lock_, lock_request_value(1));  // root -> grant
  sched_.run();
  sys_.node(1).write(data_, 2);
  sys_.node(1).write(data_, 3);
  sched_.run();
  ASSERT_EQ(sys_.node(2).stats().queued_while_suspended, 4u);

  int fires = 0;
  sys_.node(2).arm_interrupt(lock_, [&](VarId, Word, NodeId) {
    ++fires;
    // Handler leaves insharing suspended (the rollback case of Fig. 5).
  });
  sys_.node(2).resume_insharing();

  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(sys_.node(2).insharing_suspended());
  EXPECT_EQ(sys_.node(2).read(data_), 1);  // drain stopped after the grant
  EXPECT_EQ(sys_.node(2).read(lock_), lock_grant_value(1));

  // Resuming finishes the drain in order.
  sys_.node(2).disarm_interrupt(lock_);
  sys_.node(2).resume_insharing();
  EXPECT_EQ(sys_.node(2).read(data_), 3);
  const auto& log = sys_.node(2).applied_log(group_);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].value, 1);
  EXPECT_EQ(log[3].value, 3);
}

TEST_F(DsmNodeTest, HandlerResumingSynchronouslyContinuesDrain) {
  sys_.node(2).suspend_insharing();
  sys_.node(1).write(lock_, lock_request_value(1));
  sched_.run();
  sys_.node(1).write(data_, 9);
  sched_.run();

  int fires = 0;
  sys_.node(2).arm_interrupt(lock_, [&](VarId v, Word, NodeId) {
    ++fires;
    sys_.node(2).disarm_interrupt(v);
    sys_.node(2).resume_insharing();  // re-enter while draining: must not
                                      // recurse or drop queued updates
  });
  sys_.node(2).resume_insharing();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(sys_.node(2).insharing_suspended());
  EXPECT_EQ(sys_.node(2).read(data_), 9);  // the drain completed
}

TEST_F(DsmNodeTest, ReadOfUnknownVarRejected) {
  EXPECT_THROW((void)sys_.node(0).read(12345), ContractViolation);
  EXPECT_THROW(sys_.node(0).write(12345, 1), ContractViolation);
}

}  // namespace
}  // namespace optsync::dsm
