#include "consistency/release.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simkern/assert.hpp"

namespace optsync::consistency {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n)
      : topo(n), net_(sched, topo, net::LinkModel::paper()) {
    std::vector<net::NodeId> sharers;
    for (net::NodeId i = 0; i < n; ++i) sharers.push_back(i);
    rc = std::make_unique<ReleaseEngine>(net_, sharers,
                                         ReleaseEngine::Config{});
  }
  sim::Scheduler sched;
  net::FullyConnected topo;
  net::Network net_;
  std::unique_ptr<ReleaseEngine> rc;
};

sim::Process cycle(Fixture& f, ReleaseEngine::LockId l, net::NodeId n,
                   sim::Duration d, std::uint32_t writes, int* active,
                   int* max_active) {
  co_await f.rc->acquire(n, l).join();
  *active += 1;
  *max_active = std::max(*max_active, *active);
  co_await sim::delay(f.sched, d);
  if (writes > 0) f.rc->write_shared(n, l, writes);
  *active -= 1;
  co_await f.rc->release(n, l).join();
}

TEST(ReleaseEngine, AcquireViaManagerAndOwner) {
  Fixture f(4);
  const auto l = f.rc->create_lock(1);
  int active = 0, max_active = 0;
  auto p = cycle(f, l, 3, 100, 0, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.rc->stats().acquisitions, 1u);
  EXPECT_EQ(f.rc->stats().forwards, 1u);
  // request + forward + grant = 3 one-way messages.
  EXPECT_EQ(f.net_.stats().messages, 3u);
}

TEST(ReleaseEngine, MutualExclusion) {
  Fixture f(8);
  const auto l = f.rc->create_lock(0);
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < 8; ++n) {
    procs.push_back(cycle(f, l, n, 300, 2, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(f.rc->stats().releases, 8u);
}

TEST(ReleaseEngine, ReleaseBlockedUntilUpdatesFlush) {
  Fixture f(4);
  const auto l = f.rc->create_lock(0);
  sim::Time no_writes_release = 0, with_writes_release = 0;
  {
    auto p = [](Fixture& fx, ReleaseEngine::LockId lk,
                sim::Time* out) -> sim::Process {
      co_await fx.rc->acquire(0, lk).join();
      const sim::Time before = fx.sched.now();
      co_await fx.rc->release(0, lk).join();
      *out = fx.sched.now() - before;
    }(f, l, &no_writes_release);
    f.sched.run();
    p.rethrow_if_failed();
  }
  {
    auto p = [](Fixture& fx, ReleaseEngine::LockId lk,
                sim::Time* out) -> sim::Process {
      co_await fx.rc->acquire(0, lk).join();
      fx.rc->write_shared(0, lk, 10);
      const sim::Time before = fx.sched.now();
      co_await fx.rc->release(0, lk).join();
      *out = fx.sched.now() - before;
    }(f, l, &with_writes_release);
    f.sched.run();
    p.rethrow_if_failed();
  }
  EXPECT_EQ(no_writes_release, 0u);
  EXPECT_GT(with_writes_release, 0u);
}

TEST(ReleaseEngine, UpdatePacketCountScalesWithSharers) {
  Fixture f(5);
  const auto l = f.rc->create_lock(0);
  auto p = [](Fixture& fx, ReleaseEngine::LockId lk) -> sim::Process {
    co_await fx.rc->acquire(0, lk).join();
    fx.rc->write_shared(0, lk, 3);
    co_await fx.rc->release(0, lk).join();
  }(f, l);
  f.sched.run();
  p.rethrow_if_failed();
  // 3 writes to 4 other sharers.
  EXPECT_EQ(f.rc->stats().update_packets, 12u);
}

TEST(ReleaseEngine, QueuedWaiterGetsGrantAfterFlush) {
  Fixture f(4);
  const auto l = f.rc->create_lock(0);
  std::vector<net::NodeId> order;
  auto worker = [&f, &order, l](net::NodeId n, sim::Duration start,
                                std::uint32_t writes) -> sim::Process {
    co_await sim::delay(f.sched, start);
    co_await f.rc->acquire(n, l).join();
    order.push_back(n);
    co_await sim::delay(f.sched, 5'000);
    if (writes) f.rc->write_shared(n, l, writes);
    co_await f.rc->release(n, l).join();
  };
  std::vector<sim::Process> procs;
  procs.push_back(worker(1, 0, 5));
  procs.push_back(worker(2, 1'000, 0));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(order, (std::vector<net::NodeId>{1, 2}));
}

TEST(ReleaseEngine, WriteWithoutHoldRejected) {
  Fixture f(4);
  const auto l = f.rc->create_lock(0);
  EXPECT_THROW(f.rc->write_shared(2, l), ContractViolation);
}

TEST(ReleaseEngine, HolderTracked) {
  Fixture f(4);
  const auto l = f.rc->create_lock(1);
  auto p = [](Fixture& fx, ReleaseEngine::LockId lk) -> sim::Process {
    EXPECT_EQ(fx.rc->holder(lk), ~net::NodeId{0});
    co_await fx.rc->acquire(2, lk).join();
    EXPECT_EQ(fx.rc->holder(lk), 2u);
    co_await fx.rc->release(2, lk).join();
  }(f, l);
  f.sched.run();
  p.rethrow_if_failed();
}

}  // namespace
}  // namespace optsync::consistency
