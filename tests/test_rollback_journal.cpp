#include "core/rollback_journal.hpp"

#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"

namespace optsync::core {
namespace {

struct Fixture {
  Fixture() : topo(3), sys(sched, topo, dsm::DsmConfig{}) {
    g = sys.create_group({0, 1, 2}, 0);
    a = sys.define_data("a", g, 10);
    b = sys.define_data("b", g, 20);
  }
  sim::Scheduler sched;
  net::FullyConnected topo;
  dsm::DsmSystem sys;
  dsm::GroupId g = 0;
  dsm::VarId a = 0, b = 0;
};

TEST(RollbackJournal, RestoresSnapshotValues) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(1), {f.a, f.b});
  f.sys.node(1).poke(f.a, 111);
  f.sys.node(1).poke(f.b, 222);
  j.restore(f.sys.node(1));
  EXPECT_EQ(f.sys.node(1).read(f.a), 10);
  EXPECT_EQ(f.sys.node(1).read(f.b), 20);
}

TEST(RollbackJournal, RestoreIsLocalOnly) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(1), {f.a});
  f.sys.node(1).poke(f.a, 99);
  j.restore(f.sys.node(1));
  f.sched.run();
  EXPECT_EQ(f.sys.network().stats().messages, 0u);
  EXPECT_EQ(f.sys.node(2).read(f.a), 10);  // untouched elsewhere
}

TEST(RollbackJournal, EmptyAfterRestore) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(0), {f.a});
  EXPECT_FALSE(j.empty());
  EXPECT_EQ(j.shared_count(), 1u);
  j.restore(f.sys.node(0));
  EXPECT_TRUE(j.empty());
}

TEST(RollbackJournal, DiscardDropsWithoutRestoring) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(0), {f.a});
  f.sys.node(0).poke(f.a, 55);
  j.discard();
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(f.sys.node(0).read(f.a), 55);
}

TEST(RollbackJournal, LocalVariableSaveRestore) {
  Fixture f;
  RollbackJournal j;
  int lcl = 7;
  int saved = 0;
  j.add_local([&] { saved = lcl; }, [&] { lcl = saved; });
  EXPECT_EQ(saved, 7);  // save ran immediately
  lcl = 42;
  j.restore(f.sys.node(0));
  EXPECT_EQ(lcl, 7);
}

TEST(RollbackJournal, SecondSnapshotWithoutClearRejected) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(0), {f.a});
  EXPECT_THROW(j.snapshot(f.sys.node(0), {f.b}), ContractViolation);
  j.discard();
  EXPECT_NO_THROW(j.snapshot(f.sys.node(0), {f.b}));
}

TEST(RollbackJournal, EmptyVarListIsValid) {
  Fixture f;
  RollbackJournal j;
  j.snapshot(f.sys.node(0), {});
  EXPECT_TRUE(j.empty());
  j.restore(f.sys.node(0));  // no-op
}

TEST(RollbackJournal, NullLocalHooksRejected) {
  RollbackJournal j;
  EXPECT_THROW(j.add_local(nullptr, [] {}), ContractViolation);
  EXPECT_THROW(j.add_local([] {}, nullptr), ContractViolation);
}

TEST(RollbackJournal, MultipleLocalsRestoreInRegistrationOrder) {
  Fixture f;
  RollbackJournal j;
  std::vector<int> order;
  j.add_local([] {}, [&] { order.push_back(1); });
  j.add_local([] {}, [&] { order.push_back(2); });
  j.restore(f.sys.node(0));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace optsync::core
