#include "simkern/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "simkern/assert.hpp"

namespace optsync::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  Rng rng(9);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(13);
  EXPECT_THROW(rng.range(3, -3), ContractViolation);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(19);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(23);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / kN, 100.0, 5.0);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(5.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(29);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleDeterministic) {
  Rng a(41), b(41);
  std::vector<int> va{1, 2, 3, 4, 5, 6}, vb{1, 2, 3, 4, 5, 6};
  a.shuffle(va.begin(), va.end());
  b.shuffle(vb.begin(), vb.end());
  EXPECT_EQ(va, vb);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace optsync::sim
