#include "core/usage_history.hpp"

#include <gtest/gtest.h>

#include "simkern/assert.hpp"

namespace optsync::core {
namespace {

TEST(UsageHistory, StartsAtZero) {
  UsageHistory h;
  EXPECT_EQ(h.value(), 0.0);
  EXPECT_FALSE(h.indicates_usage(0.30));
}

TEST(UsageHistory, PaperFormulaExact) {
  // old = 0.95*old + 0.05*new
  UsageHistory h(0.95);
  h.observe(1.0);
  EXPECT_NEAR(h.value(), 0.05, 1e-12);
  h.observe(1.0);
  EXPECT_NEAR(h.value(), 0.95 * 0.05 + 0.05, 1e-12);
}

TEST(UsageHistory, ConvergesTowardOneUnderConstantBusy) {
  UsageHistory h(0.95);
  for (int i = 0; i < 200; ++i) h.observe(1.0);
  EXPECT_GT(h.value(), 0.99);
  EXPECT_LE(h.value(), 1.0 + 1e-12);
}

TEST(UsageHistory, DecaysTowardZeroWhenIdle) {
  UsageHistory h(0.95);
  for (int i = 0; i < 30; ++i) h.observe(1.0);
  const double peak = h.value();
  for (int i = 0; i < 200; ++i) h.observe(0.0);
  EXPECT_LT(h.value(), 0.01);
  EXPECT_LT(h.value(), peak);
}

TEST(UsageHistory, CrossesPaperThresholdAfterSustainedContention) {
  // With decay 0.95 the estimate passes 0.30 after 7 consecutive busy
  // observations: 1 - 0.95^7 = 0.302.
  UsageHistory h(0.95);
  int n = 0;
  while (!h.indicates_usage(0.30)) {
    h.observe(1.0);
    ++n;
    ASSERT_LT(n, 100);
  }
  EXPECT_EQ(n, 7);
}

TEST(UsageHistory, ThresholdBoundaryIsExclusive) {
  UsageHistory h(0.0);  // value tracks the last observation exactly
  h.observe(0.30);
  EXPECT_FALSE(h.indicates_usage(0.30));
  h.observe(0.31);
  EXPECT_TRUE(h.indicates_usage(0.30));
}

TEST(UsageHistory, ZeroDecayTracksLastObservation) {
  UsageHistory h(0.0);
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.value(), 1.0);
  h.observe(0.0);
  EXPECT_DOUBLE_EQ(h.value(), 0.0);
}

TEST(UsageHistory, FullDecayIgnoresObservations) {
  UsageHistory h(1.0);
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.value(), 0.0);
}

TEST(UsageHistory, ResetClears) {
  UsageHistory h;
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  h.reset();
  EXPECT_EQ(h.value(), 0.0);
}

TEST(UsageHistory, RejectsOutOfRangeInputs) {
  EXPECT_THROW(UsageHistory(-0.1), ContractViolation);
  EXPECT_THROW(UsageHistory(1.1), ContractViolation);
  UsageHistory h;
  EXPECT_THROW(h.observe(-0.5), ContractViolation);
  EXPECT_THROW(h.observe(1.5), ContractViolation);
}

class HistoryDecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(HistoryDecaySweep, ValueStaysInUnitInterval) {
  UsageHistory h(GetParam());
  for (int i = 0; i < 100; ++i) {
    h.observe(i % 3 == 0 ? 1.0 : 0.0);
    EXPECT_GE(h.value(), 0.0);
    EXPECT_LE(h.value(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Decays, HistoryDecaySweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.95, 0.99, 1.0));

}  // namespace
}  // namespace optsync::core
