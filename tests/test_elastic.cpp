// Elastic fabric tests: the versioned directory overlays route exactly as
// specified (pins beat overrides beat the base policy, every mutation bumps
// the epoch), online root migration keeps each group's sequenced stream
// gapless across the cut (streaming GwcChecker), stripe split/merge and
// hot-key promote/demote move data without losing a value or a ledger
// count, stale-directory clients are redirected — never served a wrong
// answer — for reads, writes, leased reads, and multi-key txns, and the
// controller's hysteresis keeps the trigger quiet under oscillating load.
#include "elastic/controller.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dsm/system.hpp"
#include "elastic/directory_manager.hpp"
#include "elastic/migrator.hpp"
#include "shard/client.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/assert.hpp"
#include "telemetry/overload.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/series.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync {
namespace {

using shard::Key;
using shard::ShardId;
using shard::ShardMap;

// ------------------------------------------------- ShardMap overlays ---

TEST(ShardMapOverlay, PinBeatsOverrideBeatsBase) {
  auto map = ShardMap::ranged(4, 1024);
  ASSERT_EQ(map.shard_of(5), 0u);
  map.assign_range(0, 16, 2);
  map.pin(5, 7);  // hot groups live past the base modulus on purpose
  EXPECT_EQ(map.shard_of(5), 7u);    // pin wins
  EXPECT_EQ(map.shard_of(6), 2u);    // override next
  EXPECT_EQ(map.shard_of(100), 0u);  // base policy elsewhere
  map.unpin(5);
  EXPECT_EQ(map.shard_of(5), 2u);  // falls back to the override
  map.clear_range(0, 16);
  EXPECT_EQ(map.shard_of(5), 0u);  // and then to the base stripe
}

TEST(ShardMapOverlay, OverridesNeverOverlap) {
  auto map = ShardMap::ranged(4, 1024);
  map.assign_range(0, 16, 2);
  map.assign_range(8, 24, 3);  // trims the first override to [0, 8)
  EXPECT_EQ(map.shard_of(4), 2u);
  EXPECT_EQ(map.shard_of(12), 3u);
  EXPECT_EQ(map.shard_of(20), 3u);
  Key prev_hi = 0;
  for (const auto& o : map.overrides()) {
    EXPECT_GE(o.lo, prev_hi);  // sorted, disjoint
    EXPECT_LT(o.lo, o.hi);
    prev_hi = o.hi;
  }
  map.clear_range(10, 14);  // punches a hole: partial coverage trims
  EXPECT_EQ(map.shard_of(12), 0u);
  EXPECT_EQ(map.shard_of(9), 3u);
  EXPECT_EQ(map.shard_of(15), 3u);
}

TEST(ShardMapOverlay, EveryMutationBumpsTheVersion) {
  // The exact count is unspecified (assign_range clears first, so it may
  // bump more than once); what clients rely on is that EVERY mutation
  // strictly advances the epoch — equality means "nothing moved".
  auto map = ShardMap::ranged(4, 1024);
  EXPECT_EQ(map.version(), 0u);
  EXPECT_FALSE(map.mutated());
  std::uint64_t prev = 0;
  map.pin(1, 5);
  EXPECT_GT(map.version(), prev);
  prev = map.version();
  map.unpin(1);
  EXPECT_GT(map.version(), prev);
  prev = map.version();
  map.assign_range(0, 8, 1);
  EXPECT_GT(map.version(), prev);
  prev = map.version();
  map.clear_range(0, 8);
  EXPECT_GT(map.version(), prev);
  EXPECT_TRUE(map.mutated());
}

// ---------------------------------------------------- root placement ---

TEST(RootStride, RejectsStrideWhoseCycleStacksRoots) {
  // 8 members, stride 2: the cycle reaches only 4 distinct nodes. With 8
  // shards that silently stacked two roots per node while half the machine
  // sat idle — now a construction-time contract violation.
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(8);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  shard::ShardedStoreConfig cfg;
  cfg.shards = 8;
  cfg.root_stride = 2;
  EXPECT_THROW(shard::ShardedStore(sys, cfg), ContractViolation);
}

TEST(RootStride, EvenWrapAndShortCyclesStayAllowed) {
  // A coprime stride covers all members, so wrapping (shards > members) is
  // an even stack; and a short cycle is fine while it still covers the
  // shard count.
  {
    sim::Scheduler sched;
    const auto topo = net::MeshTorus2D::near_square(8);
    dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
    shard::ShardedStoreConfig cfg;
    cfg.shards = 16;
    cfg.root_stride = 3;
    shard::ShardedStore store(sys, cfg);
    std::vector<std::uint32_t> roots(8, 0);
    for (ShardId s = 0; s < 16; ++s) ++roots[store.root_of(s)];
    for (const auto c : roots) EXPECT_EQ(c, 2u);  // even, not stacked
  }
  {
    sim::Scheduler sched;
    const auto topo = net::MeshTorus2D::near_square(8);
    dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
    shard::ShardedStoreConfig cfg;
    cfg.shards = 4;
    cfg.root_stride = 2;  // cycle of 4 >= 4 shards: distinct roots
    shard::ShardedStore store(sys, cfg);
    std::vector<bool> seen(8, false);
    for (ShardId s = 0; s < 4; ++s) {
      EXPECT_FALSE(seen[store.root_of(s)]);
      seen[store.root_of(s)] = true;
    }
  }
}

// ------------------------------------------------------------ fixture ---

struct Fixture {
  explicit Fixture(shard::ShardedStoreConfig cfg, std::uint32_t nodes = 8,
                   dsm::DsmConfig dcfg = {})
      : topo(net::MeshTorus2D::near_square(nodes)),
        sys(sched, topo, dcfg),
        store(sys, cfg),
        client(store) {}
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  shard::ShardedStore store;
  shard::Client client;
};

shard::ShardedStoreConfig elastic_cfg() {
  shard::ShardedStoreConfig cfg;
  cfg.shards = 4;
  cfg.policy = ShardMap::Policy::kRange;
  cfg.key_space = 64;
  cfg.slots_per_shard = 32;
  cfg.elastic.enabled = true;
  cfg.elastic.hot_groups = 2;
  return cfg;
}

sim::Process put_batch(Fixture& f, dsm::NodeId n, std::vector<Key> keys,
                       dsm::Word base) {
  for (const Key k : keys) {
    co_await f.client.write(n, k, base + static_cast<dsm::Word>(k)).join();
  }
}

// Reads may pay an async stale-directory probe after a mutation, so run
// the scheduler to completion rather than expecting a synchronous answer.
std::optional<dsm::Word> read_run(Fixture& f, dsm::NodeId n, Key k) {
  std::optional<dsm::Word> out;
  auto p = f.client.read(n, k, &out);
  f.sched.run();
  p.rethrow_if_failed();
  return out;
}

void expect_ledgers_exact(Fixture& f) {
  for (ShardId s = 0; s < f.store.shards(); ++s) {
    EXPECT_EQ(f.store.version(s),
              static_cast<dsm::Word>(f.store.committed_writes(s)))
        << "shard " << s;
  }
  EXPECT_TRUE(f.store.replicas_converged());
}

// ----------------------------------------------------- root migration ---

TEST(RootMigration, SequencedStreamContinuesAcrossTheCut) {
  trace::Recorder rec(1 << 10);
  trace::GwcChecker checker;
  checker.install(rec);
  dsm::DsmConfig dcfg;
  dcfg.recorder = &rec;
  Fixture f(elastic_cfg(), 8, dcfg);
  elastic::RootMigrator mig(f.store);

  const dsm::NodeId old_root = f.store.root_of(0);
  const dsm::NodeId new_root = old_root == 1 ? 2 : 1;
  ASSERT_NE(new_root, f.store.control_node());

  // Writers on several nodes hammer shard 0's stripe [0, 16) while the
  // migration cuts over mid-stream; the handoff log must replay the racers
  // with no gap and no reorder (the checker proves it).
  std::vector<sim::Process> writers;
  for (dsm::NodeId n = 0; n < 4; ++n) {
    std::vector<Key> keys;
    for (int r = 0; r < 10; ++r) keys.push_back(1 + (n * 7 + r) % 15);
    writers.push_back(put_batch(f, n, std::move(keys), 1'000 * (n + 1)));
  }
  std::optional<sim::Process> move;
  f.sched.at(5'000, [&] { move = mig.migrate(0, new_root); });
  f.sched.run();
  for (auto& w : writers) w.rethrow_if_failed();
  ASSERT_TRUE(move.has_value());
  move->rethrow_if_failed();

  EXPECT_EQ(f.store.root_of(0), new_root);
  EXPECT_EQ(mig.stats().migrations, 1u);
  EXPECT_GT(mig.stats().total_quiesce_ns, 0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.writes_checked(), 0u);
  expect_ledgers_exact(f);

  // The report names the effective placement, not the construction-time
  // stride walk.
  stats::ServiceReport report;
  report.shards.resize(f.store.shards());
  f.store.fill_report(report);
  EXPECT_EQ(report.shards[0].root_node, new_root);
}

// ------------------------------------------------- split / merge-back ---

TEST(Directory, SplitMovesTheUpperHalfAndMergeRestoresIt) {
  Fixture f(elastic_cfg());
  elastic::DirectoryManager dir(f.store);

  auto fill = put_batch(f, 0, {1, 3, 5, 8, 10, 12, 15}, 7'000);
  f.sched.run();
  fill.rethrow_if_failed();

  const std::uint64_t epoch0 = f.store.dir_epoch();
  std::uint64_t moved = 0;
  auto split = dir.split(0, 1, &moved);
  f.sched.run();
  split.rethrow_if_failed();
  EXPECT_GT(moved, 0u);  // occupied slots in [8, 16) relocated
  EXPECT_GT(f.store.dir_epoch(), epoch0);
  EXPECT_EQ(f.store.map().shard_of(10), 1u);
  EXPECT_EQ(f.store.map().shard_of(5), 0u);
  EXPECT_TRUE(dir.has_donation(0));
  EXPECT_EQ(f.store.splits(0), 1u);
  // Every value survives the move, readable from any replica.
  for (const Key k : {1ull, 3ull, 5ull, 8ull, 10ull, 12ull, 15ull}) {
    const auto got = read_run(f, 5, k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, 7'000 + static_cast<dsm::Word>(k));
  }
  expect_ledgers_exact(f);

  auto merge = dir.merge_back(0);
  f.sched.run();
  merge.rethrow_if_failed();
  EXPECT_EQ(f.store.map().shard_of(10), 0u);
  EXPECT_FALSE(dir.has_donation(0));
  EXPECT_EQ(f.store.merges(0), 1u);
  for (const Key k : {8ull, 10ull, 12ull, 15ull}) {
    const auto got = read_run(f, 2, k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, 7'000 + static_cast<dsm::Word>(k));
  }
  expect_ledgers_exact(f);
}

// ------------------------------------------------- promote / demote ---

TEST(Directory, PromoteRoutesToTheHotGroupAndDemoteReturnsHome) {
  Fixture f(elastic_cfg());
  elastic::DirectoryManager dir(f.store);
  const ShardId hot = f.store.base_shards();  // first dedicated hot group

  auto fill = put_batch(f, 1, {9}, 400);
  f.sched.run();
  fill.rethrow_if_failed();

  auto up = dir.promote(9, hot);
  f.sched.run();
  up.rethrow_if_failed();
  EXPECT_EQ(f.store.map().shard_of(9), hot);
  EXPECT_EQ(f.store.promotions(0), 1u);
  EXPECT_EQ(read_run(f, 3, 9).value_or(0), 409u);

  // Writes land on the hot group while the pin holds.
  auto w = put_batch(f, 2, {9}, 500);
  f.sched.run();
  w.rethrow_if_failed();

  auto down = dir.demote(9);
  f.sched.run();
  down.rethrow_if_failed();
  EXPECT_EQ(f.store.map().shard_of(9), 0u);
  EXPECT_EQ(f.store.demotions(0), 1u);
  EXPECT_EQ(read_run(f, 6, 9).value_or(0), 509u);
  expect_ledgers_exact(f);
}

// ------------------------------------------- stale-directory clients ---

TEST(Client, StaleEpochIsRedirectedNeverWrong) {
  Fixture f(elastic_cfg());
  elastic::DirectoryManager dir(f.store);
  const ShardId hot = f.store.base_shards();

  // The client routes once at epoch 0 and caches its view.
  auto warm = put_batch(f, 0, {7, 20}, 100);
  f.sched.run();
  warm.rethrow_if_failed();
  ASSERT_EQ(f.client.stats().redirects, 0u);

  auto up = dir.promote(7, hot);
  f.sched.run();
  up.rethrow_if_failed();

  // Read through the stale view: redirected to the hot group, right value.
  EXPECT_EQ(read_run(f, 4, 7).value_or(0), 107u);
  EXPECT_GE(f.client.stats().redirects, 1u);
  EXPECT_GE(f.client.stats().refreshes, 1u);
  EXPECT_EQ(f.client.view_epoch(), f.store.dir_epoch());

  // Stale again (demote), now through the write path.
  auto down = dir.demote(7);
  f.sched.run();
  down.rethrow_if_failed();
  const std::uint64_t before = f.client.stats().redirects;
  auto w = put_batch(f, 4, {7}, 200);
  f.sched.run();
  w.rethrow_if_failed();
  EXPECT_GT(f.client.stats().redirects, before);
  EXPECT_EQ(read_run(f, 1, 7).value_or(0), 207u);

  // And the txn path: a multi-key txn spanning the repromoted key commits
  // against the new owner (doomed at the old epoch, retried — not lost).
  auto up2 = dir.promote(7, hot);
  f.sched.run();
  up2.rethrow_if_failed();
  shard::TxnRequest req;
  req.puts = {{7, 900}, {20, 901}};
  auto txn = f.client.txn(2, std::move(req));
  f.sched.run();
  txn.rethrow_if_failed();
  EXPECT_EQ(read_run(f, 0, 7).value_or(0), 900u);
  EXPECT_EQ(read_run(f, 0, 20).value_or(0), 901u);
  expect_ledgers_exact(f);
}

TEST(Client, LeasedReadsSurviveAPromotion) {
  // Partial replication: servers [0, 4), clients beyond, leased read tier
  // on, elastic directory mutations moving the key mid-stream. The stale
  // read auditor is the independent witness that no redirect ever served
  // a superseded value.
  shard::ShardedStoreConfig cfg = elastic_cfg();
  cfg.lease.enabled = true;
  cfg.lease.server_nodes = 4;
  cfg.lease.ttl_ns = 2'000'000;
  Fixture f(cfg);
  elastic::DirectoryManager dir(f.store);
  const ShardId hot = f.store.base_shards();

  auto warm = put_batch(f, 5, {11}, 300);
  f.sched.run();
  warm.rethrow_if_failed();

  std::optional<dsm::Word> out;
  auto r1 = f.client.read(5, 11, &out,
                          {shard::ConsistencyLevel::kLeased});
  f.sched.run();
  r1.rethrow_if_failed();
  EXPECT_EQ(out.value_or(0), 311u);

  auto up = dir.promote(11, hot);
  f.sched.run();
  up.rethrow_if_failed();

  // The cached lease belongs to the old owner's slot; the leased read
  // after the move must redirect and still be epoch-clean.
  out.reset();
  auto r2 = f.client.read(6, 11, &out,
                          {shard::ConsistencyLevel::kLeased});
  f.sched.run();
  r2.rethrow_if_failed();
  EXPECT_EQ(out.value_or(0), 311u);
  EXPECT_GE(f.client.stats().redirects, 1u);

  auto w = put_batch(f, 7, {11}, 600);
  f.sched.run();
  w.rethrow_if_failed();
  out.reset();
  auto r3 = f.client.read(5, 11, &out,
                          {shard::ConsistencyLevel::kLeased});
  f.sched.run();
  r3.rethrow_if_failed();
  EXPECT_EQ(out.value_or(0), 611u);

  ASSERT_NE(f.store.leases(), nullptr);
  EXPECT_TRUE(f.store.leases()->auditor().ok())
      << f.store.leases()->auditor().report();
  expect_ledgers_exact(f);
}

// ------------------------------------------------ detector hysteresis ---

telemetry::Series backlog_series(const std::vector<double>& values,
                                 sim::Duration step = 20'000) {
  telemetry::Series s;
  s.name = "optsync_shard_backlog";
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.samples.push_back(
        telemetry::Sample{static_cast<sim::Time>(i) * step, values[i]});
  }
  return s;
}

TEST(Overload, OscillatingLoadCannotFlapTheVerdict) {
  // Backlog oscillates: drown, recover, drown, recover. Because the fit
  // window pins to the series PEAK, the verdict is sticky — once the
  // queue has demonstrably grown past the gate, later drains do not
  // un-flag it. Prefix-by-prefix assessment must show exactly ONE
  // false -> true transition and none back.
  std::vector<double> v;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 15; ++i) v.push_back(8.0 * i);
    for (int i = 14; i >= 0; --i) v.push_back(8.0 * i);
  }
  int transitions = 0;
  bool prev = false;
  for (std::size_t n = 1; n <= v.size(); ++n) {
    const std::vector<double> prefix(v.begin(), v.begin() + n);
    const bool now =
        telemetry::assess_backlog(backlog_series(prefix)).drowning;
    if (now != prev) ++transitions;
    prev = now;
  }
  EXPECT_TRUE(prev);  // flagged at the end despite finishing drained
  EXPECT_EQ(transitions, 1);
}

TEST(ElasticController, OscillatingBacklogNeverTriggersAnAction) {
  // The live-recovery overlay is the controller's half of the hysteresis:
  // a series-level drowning verdict only counts while the CURRENT queue is
  // material, and an action needs `drowning_ticks` consecutive such ticks.
  // Oscillating live backlog (drown, drain, drown, ...) must therefore
  // never fire an action; a sustained phase afterwards must.
  Fixture f(elastic_cfg());
  stats::ServiceReport live;
  live.shards.resize(f.store.shards());
  telemetry::SeriesSet series;
  const auto h = series.series("optsync_shard_backlog", {{"shard", "0"}});
  // A structurally-drowning history: the series-level verdict is true for
  // every tick of the test; only the live overlay varies.
  for (int i = 0; i < 40; ++i) {
    series.append(h, static_cast<sim::Time>(i) * 20'000, 8.0 * i);
  }

  elastic::ElasticControllerConfig ccfg;
  ccfg.interval_ns = 40'000;
  ccfg.drowning_ticks = 2;
  ccfg.cooldown_ticks = 1;
  elastic::ElasticController ctrl(f.store, live, series, ccfg);
  ctrl.start();

  auto& issued = live.shards[0].op(stats::ServiceOp::kWrite).issued;
  auto& completed = live.shards[0].op(stats::ServiceOp::kWrite).completed;
  issued = 200;
  // Phase A, [0, 2ms): the live queue drains on every other control tick,
  // so the drowning streak resets before it can reach drowning_ticks.
  for (int t = 0; t < 50; ++t) {
    f.sched.at(static_cast<sim::Time>(t) * 40'000 + 1'000, [&, t] {
      completed = (t % 2) != 0 ? issued : 0;
    });
  }
  std::uint64_t actions_after_oscillation = 0;
  // Phase B, [2ms, 4ms): sustained — the queue stays deep every tick.
  f.sched.at(2'000'000, [&] {
    actions_after_oscillation = ctrl.actions();
    completed = 0;
  });
  f.sched.at(4'000'000, [] {});  // keep the sim busy through phase B
  f.sched.run();
  ctrl.stop();

  EXPECT_EQ(actions_after_oscillation, 0u);
  EXPECT_GE(ctrl.actions(), 1u);  // the sustained phase did trigger
  // The action taken was a stripe split (no key sketch traffic, range
  // policy): shard 0 donated to a cold base shard.
  EXPECT_GE(f.store.splits(0), 1u);
  EXPECT_GT(f.store.dir_epoch(), 0u);
}

}  // namespace
}  // namespace optsync
