#include "sync/barrier.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::sync {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n)
      : topo(net::MeshTorus2D::near_square(n)),
        sys(sched, topo, dsm::DsmConfig{}) {
    std::vector<dsm::NodeId> members;
    for (dsm::NodeId i = 0; i < n; ++i) members.push_back(i);
    g = sys.create_group(members, 0);
    bar = std::make_unique<EagerBarrier>(sys, g, "bar");
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  dsm::GroupId g = 0;
  std::unique_ptr<EagerBarrier> bar;
};

TEST(EagerBarrier, NobodyPassesUntilAllArrive) {
  Fixture f(8);
  int passed = 0;
  auto worker = [&f, &passed](dsm::NodeId n,
                              sim::Duration arrive_at) -> sim::Process {
    co_await sim::delay(f.sched, arrive_at);
    co_await f.bar->wait(n).join();
    ++passed;
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 7; ++n) {
    procs.push_back(worker(n, n * 1'000));
  }
  f.sched.run_until(50'000);
  EXPECT_EQ(passed, 0);  // the straggler (node 7) has not arrived
  procs.push_back(worker(7, 0));  // arrives now (sim time 50us)
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(passed, 8);
}

TEST(EagerBarrier, RepeatedEpisodesStaySynchronized) {
  Fixture f(9);
  constexpr int kEpisodes = 12;
  // Track the phase each node believes it is in; at no instant may two
  // nodes be more than one episode apart once past the barrier.
  std::vector<int> phase(9, 0);
  bool violation = false;
  auto worker = [&](dsm::NodeId n, std::uint64_t seed) -> sim::Process {
    sim::Rng rng(seed);
    for (int e = 0; e < kEpisodes; ++e) {
      co_await sim::delay(f.sched, rng.below(5'000));
      co_await f.bar->wait(n).join();
      phase[n] = e + 1;
      for (int other = 0; other < 9; ++other) {
        if (std::abs(phase[other] - phase[n]) > 1) violation = true;
      }
    }
  };
  std::vector<sim::Process> procs;
  sim::Rng rng(99);
  for (dsm::NodeId n = 0; n < 9; ++n) procs.push_back(worker(n, rng.next()));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_FALSE(violation);
  for (dsm::NodeId n = 0; n < 9; ++n) {
    EXPECT_EQ(f.bar->generation(n), kEpisodes);
  }
}

TEST(EagerBarrier, OneWritePerParticipantPerEpisode) {
  Fixture f(4);
  const auto before = f.sys.network().stats().messages;
  auto worker = [&f](dsm::NodeId n) -> sim::Process {
    co_await f.bar->wait(n).join();
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 4; ++n) procs.push_back(worker(n));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  // 4 arrival writes, each = 1 unicast to root + 4 multicast deliveries.
  EXPECT_EQ(f.sys.network().stats().messages - before, 4u * 5u);
}

TEST(EagerBarrier, NonMemberRejected) {
  sim::Scheduler sched;
  const net::FullyConnected topo(4);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  const auto g = sys.create_group({0, 1}, 0);
  EagerBarrier bar(sys, g, "b");
  EXPECT_THROW(bar.wait(3), ContractViolation);
}

class BarrierSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrierSizes, AllEpisodesComplete) {
  Fixture f(GetParam());
  const std::size_t n = GetParam();
  auto worker = [&f](dsm::NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng rng(seed);
    for (int e = 0; e < 5; ++e) {
      co_await sim::delay(f.sched, rng.below(3'000));
      co_await f.bar->wait(me).join();
    }
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId i = 0; i < n; ++i) procs.push_back(worker(i, i * 31 + 7));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(f.bar->stats().episodes, n * 5u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierSizes,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{8}, std::size_t{16},
                                           std::size_t{25}));

}  // namespace
}  // namespace optsync::sync
