// Root write coalescing: the multicast frame model (dsm/frame.hpp) and the
// GroupRoot batching built on it. The invariant under test throughout:
// framing changes packaging — message counts, wire bytes, flush timing —
// and NEVER the sequenced write stream a member observes. Sequence numbers
// are assigned at root arrival, before batching, so every batch size must
// produce the same applied (var, value, origin) stream per node and the
// same grant order.
#include "dsm/frame.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string_view>
#include <tuple>
#include <vector>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "net/topology.hpp"
#include "simkern/coro.hpp"
#include "sync/gwc_lock.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync::dsm {
namespace {

// ------------------------------------------------------------ wire model ---

TEST(FrameWireBytes, OneWriteFrameCostsExactlyTheUnbatchedMessage) {
  // The unbatched protocol is the n = 1 special case, byte for byte.
  EXPECT_EQ(frame_wire_bytes(16, 1, 8), 16u);
  EXPECT_EQ(frame_wire_bytes(40, 1, 8), 40u);
  EXPECT_EQ(frame_wire_bytes(20, 1, 12), 20u);
}

TEST(FrameWireBytes, SharedHeaderAmortizesAcrossWrites) {
  // Four 16-byte writes share one 8-byte header: 64 - 3*8 = 40.
  EXPECT_EQ(frame_wire_bytes(64, 4, 8), 40u);
  // Two 20-byte writes, 12-byte header: 40 - 12 = 28.
  EXPECT_EQ(frame_wire_bytes(40, 2, 12), 28u);
}

TEST(FrameWireBytes, FlooredAtHeaderPlusRecordStubs) {
  // Eight 8-byte writes would amortize to 64 - 56 = 8, but each write keeps
  // a 4-byte record stub: floor = 8 + 4*8 = 40.
  EXPECT_EQ(frame_wire_bytes(64, 8, 8), 40u);
  EXPECT_EQ(frame_wire_bytes(0, 3, 8), 8u + 12u);
}

TEST(FrameWireBytes, EmptyFrameIsFree) {
  EXPECT_EQ(frame_wire_bytes(0, 0, 8), 0u);
}

Frame make_frame(std::uint64_t first_seq, std::size_t n) {
  Frame f;
  for (std::size_t i = 0; i < n; ++i) {
    f.writes.push_back(SequencedWrite{
        first_seq + i, static_cast<VarId>(i % 3),
        static_cast<Word>(100 + i), static_cast<NodeId>(i % 2)});
  }
  return f;
}

TEST(FrameSplitMerge, RoundTripsExactly) {
  const Frame f = make_frame(7, 10);
  const auto parts = split_frame(f, 3);
  ASSERT_EQ(parts.size(), 4u);  // 3 + 3 + 3 + 1
  EXPECT_EQ(parts[0].size(), 3u);
  EXPECT_EQ(parts[3].size(), 1u);
  // Chunks preserve order and contiguous sequence numbers.
  EXPECT_EQ(parts[0].first_seq(), 7u);
  EXPECT_EQ(parts[1].first_seq(), 10u);
  EXPECT_EQ(parts[3].last_seq(), 16u);
  const Frame merged = merge_frames(parts);
  ASSERT_EQ(merged.size(), f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(merged.writes[i].seq, f.writes[i].seq);
    EXPECT_EQ(merged.writes[i].var, f.writes[i].var);
    EXPECT_EQ(merged.writes[i].value, f.writes[i].value);
    EXPECT_EQ(merged.writes[i].origin, f.writes[i].origin);
  }
}

TEST(FrameSplitMerge, ZeroMaxWritesIsTreatedAsOne) {
  const Frame f = make_frame(1, 4);
  const auto parts = split_frame(f, 0);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_EQ(p.size(), 1u);
}

// --------------------------------------------- batching at the live root ---

/// Two nodes contend for one lock over a batching root; each holder streams
/// writes into the guarded variables and releases. Deterministic: fixed
/// start offsets, no randomness.
struct ContendedRun {
  /// Applied mutex-data writes per node as (var, value, origin) — the
  /// observable stream batching must not change. Sequence numbers are
  /// deliberately excluded: contended lock words may be sequenced
  /// differently when grant *delivery* shifts, but the data stream and the
  /// grant order may not.
  std::map<net::NodeId,
           std::vector<std::tuple<VarId, Word, net::NodeId>>> applied;
  std::vector<net::NodeId> grant_order;
  std::uint64_t frames = 0;
  std::uint64_t size_flushes = 0;
  std::uint64_t timer_flushes = 0;
  std::uint64_t messages = 0;
  std::uint64_t hop_bytes = 0;
  std::uint64_t mixed_frames = 0;  ///< frames carrying lock + mutex-data
  bool checker_ok = false;
  std::string checker_report;
};

sim::Process contender(DsmSystem& sys, sync::GwcQueueLock& lk,
                       const std::vector<VarId>& data, net::NodeId me,
                       sim::Duration start_at,
                       std::vector<net::NodeId>& grants) {
  auto& sched = sys.scheduler();
  co_await sim::delay(sched, start_at);
  for (int round = 0; round < 2; ++round) {
    co_await lk.acquire(me).join();
    grants.push_back(me);
    auto& node = sys.node(me);
    for (std::size_t w = 0; w < data.size(); ++w) {
      co_await sim::delay(sched, 400);
      node.write(data[w],
                 static_cast<Word>(me) * 1000 + round * 100 +
                     static_cast<Word>(w));
    }
    lk.release(me);
    co_await sim::delay(sched, 2'000);
  }
}

ContendedRun run_contended(std::uint32_t batch) {
  ContendedRun out;
  sim::Scheduler sched;
  net::FullyConnected topo(3);
  trace::Recorder rec(1 << 16);
  trace::GwcChecker checker;
  checker.install(rec);
  DsmConfig cfg;
  cfg.coalesce_max_writes = batch;
  cfg.recorder = &rec;
  DsmSystem sys(sched, topo, cfg);
  const GroupId g = sys.create_group({0, 1, 2}, 0);
  const VarId lock = sys.define_lock("l", g);
  std::vector<VarId> data;
  for (int w = 0; w < 6; ++w) {
    data.push_back(sys.define_mutex_data("m" + std::to_string(w), g, lock));
  }
  sync::GwcQueueLock lk(sys, lock);
  for (net::NodeId n = 0; n < 3; ++n) sys.node(n).enable_applied_log(true);

  std::vector<sim::Process> procs;
  procs.push_back(contender(sys, lk, data, 1, 0, out.grant_order));
  procs.push_back(contender(sys, lk, data, 2, 500, out.grant_order));
  sched.run();
  for (const auto& p : procs) p.rethrow_if_failed();
  for (const auto& p : procs) EXPECT_TRUE(p.done());

  for (net::NodeId n = 0; n < 3; ++n) {
    for (const auto& u : sys.node(n).applied_log(g)) {
      if (sys.var(u.var).kind == VarKind::kMutexData) {
        out.applied[n].emplace_back(u.var, u.value, u.origin);
      }
    }
  }
  out.frames = sys.root_of(g).stats().frames;
  out.size_flushes = sys.root_of(g).stats().size_flushes;
  out.timer_flushes = sys.root_of(g).stats().timer_flushes;
  out.messages = sys.network().stats().messages;
  out.hop_bytes = sys.network().stats().hop_bytes;
  out.checker_ok = checker.ok();
  out.checker_report = checker.report();

  // Reconstruct each flushed frame's [first, last] sequence range and count
  // the frames that carry both a lock word and mutex-data — a grant riding
  // in the same frame as the releaser's final writes.
  std::map<std::uint64_t, std::string_view> label_by_seq;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  rec.for_each([&](const trace::Event& e) {
    if (e.kind == trace::EventKind::kRootSequence) {
      label_by_seq[e.seq] = e.label;
    } else if (e.kind == trace::EventKind::kFrameFlush) {
      ranges.emplace_back(e.seq,
                          e.seq + static_cast<std::uint64_t>(e.value) - 1);
    }
  });
  for (const auto& [first, last] : ranges) {
    bool has_lock = false, has_data = false;
    for (std::uint64_t s = first; s <= last; ++s) {
      const auto it = label_by_seq.find(s);
      if (it == label_by_seq.end()) continue;
      if (it->second == "lock") has_lock = true;
      if (it->second == "mutex-data") has_data = true;
    }
    if (has_lock && has_data) ++out.mixed_frames;
  }
  return out;
}

TEST(RootCoalescing, BatchSweepPreservesAppliedDataAndGrantOrder) {
  const auto b1 = run_contended(1);
  const auto b4 = run_contended(4);
  const auto b64 = run_contended(64);
  ASSERT_TRUE(b1.checker_ok) << b1.checker_report;
  ASSERT_TRUE(b4.checker_ok) << b4.checker_report;
  ASSERT_TRUE(b64.checker_ok) << b64.checker_report;
  // Four sections of six writes happened in the same order everywhere.
  EXPECT_EQ(b1.grant_order.size(), 4u);
  EXPECT_EQ(b1.grant_order, b4.grant_order);
  EXPECT_EQ(b1.grant_order, b64.grant_order);
  EXPECT_EQ(b1.applied, b4.applied);
  EXPECT_EQ(b1.applied, b64.applied);
  // Batching only ever removes messages and bytes from the wire.
  EXPECT_LT(b64.frames, b1.frames);
  EXPECT_LT(b64.messages, b1.messages);
  EXPECT_LT(b64.hop_bytes, b1.hop_bytes);
  EXPECT_LE(b4.messages, b1.messages);
}

TEST(RootCoalescing, UnbatchedRootShipsOneFramePerWrite) {
  const auto b1 = run_contended(1);
  // Every frame closed by the size cap (cap = 1), none by the timer: the
  // batch=1 configuration is behaviorally the pre-coalescing protocol.
  EXPECT_EQ(b1.timer_flushes, 0u);
  EXPECT_EQ(b1.size_flushes, b1.frames);
}

TEST(RootCoalescing, GrantRidesInTheSameFrameAsTheReleasersWrites) {
  const auto b64 = run_contended(64);
  // With a large cap the queued grant is sequenced while the releaser's
  // final writes are still pending in the open frame, so at least one frame
  // mixes lock words with mutex-data.
  EXPECT_GE(b64.mixed_frames, 1u);
  // Lock cut-through ships a frame the moment a lock word lands, so in this
  // lock-paced workload no grant ever waits for the coalesce timer: every
  // flush is a size/lock flush. (Before cut-through the grants sat in the
  // open frame until the timer fired — one hand-off per timer period.)
  EXPECT_EQ(b64.timer_flushes, 0u);
  EXPECT_EQ(b64.size_flushes, b64.frames);
}

TEST(RootCoalescing, PartialFrameLossRecoversToIdenticalStreams) {
  // Down-frames (root -> member copies) are dropped, duplicated, and
  // delayed; each member loses *different* copies of the multicast, yet the
  // reliable layer must rebuild the identical sequenced stream on all of
  // them.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    sim::Scheduler sched;
    net::Ring topo(6);
    trace::Recorder rec(1 << 10);
    trace::GwcChecker checker;
    checker.install(rec);
    DsmConfig cfg;
    cfg.coalesce_max_writes = 8;
    cfg.faults = faults::FaultPlan(seed);
    cfg.faults.drop(0.25, "data-down").duplicate(0.05).delay(0.10, 3'000);
    cfg.recorder = &rec;
    DsmSystem sys(sched, topo, cfg);
    ASSERT_TRUE(sys.reliable_transport());

    std::vector<net::NodeId> members;
    for (net::NodeId i = 0; i < 6; ++i) members.push_back(i);
    const GroupId g = sys.create_group(members, 2);
    std::vector<VarId> vars;
    for (int v = 0; v < 3; ++v) {
      vars.push_back(sys.define_data("v" + std::to_string(v), g));
    }
    for (const net::NodeId m : members) sys.node(m).enable_applied_log(true);

    constexpr std::size_t kWrites = 24;
    for (std::size_t k = 0; k < kWrites; ++k) {
      const auto writer = static_cast<net::NodeId>((k * 5) % 6);
      const VarId var = vars[k % vars.size()];
      sched.at(k * 1'500, [&sys, writer, var, k] {
        sys.node(writer).write(var, static_cast<Word>(k + 1));
      });
    }
    sched.run();

    EXPECT_EQ(sys.reliable().stats().expirations, 0u) << "seed " << seed;
    EXPECT_EQ(sys.reliable().in_flight(), 0u) << "seed " << seed;
    EXPECT_GT(sys.network().stats().drops_injected, 0u) << "seed " << seed;

    const auto& reference = sys.node(members[0]).applied_log(g);
    ASSERT_EQ(reference.size(), kWrites) << "seed " << seed;
    for (const net::NodeId m : members) {
      const auto& log = sys.node(m).applied_log(g);
      ASSERT_EQ(log.size(), reference.size())
          << "node " << m << " seed " << seed;
      for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(log[i].seq, reference[i].seq);
        EXPECT_EQ(log[i].var, reference[i].var);
        EXPECT_EQ(log[i].value, reference[i].value);
        EXPECT_EQ(log[i].origin, reference[i].origin);
      }
    }
    EXPECT_TRUE(checker.ok()) << "seed " << seed << ": " << checker.report();
    EXPECT_GT(checker.writes_checked(), 0u);
  }
}

}  // namespace
}  // namespace optsync::dsm
