#include "simkern/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    q.push(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(7, [] {});
  auto popped = q.pop();
  EXPECT_EQ(popped.time, 7u);
  EXPECT_EQ(popped.id, id);
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(5, [&] { fired = true; });
  q.push(6, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(5, [] {});
  q.push(9, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(5, [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelledTop) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 9u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(1, nullptr), ContractViolation);
}

// Regression: cancel used to scan the heap linearly, so retransmit-timer
// churn (every reliable-channel packet arms a timer that is almost always
// cancelled by its ack) was quadratic in pending timers. With the live-id
// set, cancelling most of a 10k+ backlog is effectively instant; the
// wall-clock bound below is ~100x slack for the O(1) implementation and
// hopeless for a linear scan (~10^10 comparisons).
TEST(EventQueue, CancelStormOverLargeBacklogIsFast) {
  constexpr int kBatches = 10;
  constexpr int kPerBatch = 10'000;
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(kPerBatch);
  int fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < kBatches; ++b) {
    ids.clear();
    for (int i = 0; i < kPerBatch; ++i) {
      // Far-future "timers"; one in a hundred survives its batch.
      ids.push_back(q.push(1'000'000 + b, [&fired] { ++fired; }));
    }
    for (int i = 0; i < kPerBatch; ++i) {
      if (i % 100 != 0) {
        EXPECT_TRUE(q.cancel(ids[static_cast<size_t>(i)]));
      }
    }
  }
  const auto cancel_done = std::chrono::steady_clock::now();
  EXPECT_EQ(q.size(), static_cast<size_t>(kBatches * kPerBatch / 100));
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, kBatches * kPerBatch / 100);
  // Double-cancel after the drain: all ids are dead, none fire again.
  for (const EventId id : ids) EXPECT_FALSE(q.cancel(id));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      cancel_done - start);
  EXPECT_LT(elapsed.count(), 2'000) << "cancel looks superlinear";
}

TEST(EventQueue, CancelledBacklogDoesNotLeakIntoPopOrder) {
  Rng rng(7);
  EventQueue q;
  std::vector<EventId> live;
  std::vector<Time> expected;
  for (int i = 0; i < 20'000; ++i) {
    const Time t = rng.below(1'000);
    const EventId id = q.push(t, [] {});
    if (rng.below(4) == 0) {
      live.push_back(id);
      expected.push_back(t);
    } else {
      ASSERT_TRUE(q.cancel(id));
    }
  }
  EXPECT_EQ(q.size(), live.size());
  std::sort(expected.begin(), expected.end());
  for (const Time t : expected) {
    auto popped = q.pop();
    EXPECT_EQ(popped.time, t);
  }
  EXPECT_TRUE(q.empty());
}

// Regression: the old dual-hash-set queue kept every cancelled id in a
// tombstone set until its heap entry surfaced, so a long-running arm/cancel
// storm (retransmit timers over days of sim time) grew without bound even
// though the LIVE population stayed tiny. The slot-table queue destroys the
// callback at cancel and compacts the heap when dead entries outnumber live
// ones: after a million arm/cancel ops with <= 1024 live, every internal
// structure must still be sized by the live count, not the op count.
TEST(EventQueue, MillionOpArmCancelStormStaysBounded) {
  constexpr std::uint64_t kOps = 1'000'000;
  constexpr std::size_t kLive = 1024;
  EventQueue q;
  std::vector<EventId> live(kLive, 0);
  std::size_t peak_heap = 0;
  std::size_t peak_slots = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::size_t k = i % kLive;
    if (live[k] != 0) ASSERT_TRUE(q.cancel(live[k]));
    live[k] = q.push(static_cast<Time>(kOps + i), [] {});
    peak_heap = std::max(peak_heap, q.heap_entries());
    peak_slots = std::max(peak_slots, q.slot_count());
  }
  EXPECT_EQ(q.size(), kLive);
  // Slots are recycled through the freelist; the heap holds at most ~2x
  // live before compaction kicks in (plus the compaction threshold).
  EXPECT_LE(peak_slots, 4 * kLive);
  EXPECT_LE(peak_heap, 8 * kLive);
  // The survivors still pop in time order with their callbacks intact.
  int fired = 0;
  while (!q.empty()) {
    auto popped = q.pop();
    popped.callback();
    ++fired;
  }
  EXPECT_EQ(fired, static_cast<int>(kLive));
}

// Regression: clear() used to leave the cancelled-id bookkeeping behind, so
// an id armed BEFORE the clear could alias (and cancel) an unrelated event
// armed after it once the slot was reused. clear() now bumps every slot's
// generation: stale ids are dead forever.
TEST(EventQueue, StaleIdsFromBeforeClearCannotCancelNewEvents) {
  EventQueue q;
  std::vector<EventId> stale;
  for (int i = 0; i < 64; ++i) stale.push_back(q.push(10 + i, [] {}));
  q.clear();
  EXPECT_TRUE(q.empty());
  // Re-arm into the same (recycled) slots.
  bool fired[64] = {};
  std::vector<EventId> fresh;
  for (int i = 0; i < 64; ++i) {
    fresh.push_back(q.push(10 + i, [&fired, i] { fired[i] = true; }));
  }
  for (const EventId id : stale) EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 64u);
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(fired[i]) << i;
  // The fresh ids are spent now, and the stale ones still dead.
  for (const EventId id : fresh) EXPECT_FALSE(q.cancel(id));
  for (const EventId id : stale) EXPECT_FALSE(q.cancel(id));
}

// Ids never collide across slot reuse within a generation epoch: a slot
// freed by pop/cancel comes back with a new generation, so the old id's
// cancel misses even when the slot number matches.
TEST(EventQueue, RecycledSlotGetsFreshGeneration) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.pop().callback();          // slot freed by firing
  const EventId b = q.push(2, [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));   // stale id: dead
  EXPECT_TRUE(q.cancel(b));    // fresh id: live
}

TEST(EventQueue, RandomizedOrderMatchesStableSort) {
  Rng rng(2024);
  EventQueue q;
  struct Expect {
    Time t;
    int tag;
  };
  std::vector<Expect> expected;
  for (int i = 0; i < 500; ++i) {
    const Time t = rng.below(50);  // many ties
    expected.push_back({t, i});
    q.push(t, [] {});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expect& a, const Expect& b) { return a.t < b.t; });
  for (const auto& e : expected) {
    auto popped = q.pop();
    EXPECT_EQ(popped.time, e.t);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace optsync::sim
