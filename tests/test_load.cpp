// Traffic-engine tests: the planned schedule is a pure function of the seed
// (determinism invariant 7 — two plans from one seed are identical, field
// for field), the key popularity distributions have the right shape
// (Zipf frequency follows rank), the arrival processes keep their
// configured mean, and an end-to-end run completes every request with
// coherent per-shard accounting.
#include "load/generator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "load/arrival.hpp"
#include "load/key_dist.hpp"

namespace optsync::load {
namespace {

// -------------------------------------------------------------- arrivals ---

TEST(Arrival, PoissonKeepsConfiguredMean) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.mean_gap_ns = 10'000.0;
  ArrivalProcess arr(cfg);
  sim::Rng rng(7);
  double total = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    total += static_cast<double>(arr.next_gap(rng));
  }
  EXPECT_NEAR(total / kN, cfg.mean_gap_ns, cfg.mean_gap_ns * 0.05);
}

TEST(Arrival, UniformGapsStayInBand) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kUniform;
  cfg.mean_gap_ns = 8'000.0;
  ArrivalProcess arr(cfg);
  sim::Rng rng(11);
  double total = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const auto gap = arr.next_gap(rng);
    EXPECT_GE(gap, 4'000u);
    EXPECT_LE(gap, 12'000u);
    total += static_cast<double>(gap);
  }
  EXPECT_NEAR(total / kN, cfg.mean_gap_ns, cfg.mean_gap_ns * 0.05);
}

TEST(Arrival, BurstTrainsCompressThenIdle) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBurst;
  cfg.mean_gap_ns = 10'000.0;
  cfg.burst_size = 4;
  cfg.burst_compression = 10.0;
  ArrivalProcess arr(cfg);
  sim::Rng rng(3);
  // Train: 4 arrivals 1000 ns apart, then one idle gap restoring the mean
  // (4 * 10000 - 3 * 1000 = 37000 ns), repeating.
  std::vector<sim::Duration> gaps;
  for (int i = 0; i < 12; ++i) gaps.push_back(arr.next_gap(rng));
  for (const int i : {0, 1, 2, 3, 5, 6, 7, 9, 10, 11}) {
    EXPECT_EQ(gaps[static_cast<std::size_t>(i)], 1'000u) << "gap " << i;
  }
  EXPECT_EQ(gaps[4], 37'000u);
  EXPECT_EQ(gaps[8], 37'000u);
  // Steady state (full trains, gaps 4..11) keeps the configured mean; the
  // ramp-in train is one compressed gap short of a full period.
  double total = 0;
  for (int i = 4; i < 12; ++i) total += static_cast<double>(gaps[i]);
  EXPECT_NEAR(total / 8.0, cfg.mean_gap_ns, 1.0);
}

// ------------------------------------------------------------------ keys ---

TEST(KeySampler, UniformCoversDomain) {
  KeyConfig cfg;
  cfg.dist = KeyDist::kUniform;
  cfg.keys = 10;
  const KeySampler sampler(cfg);
  sim::Rng rng(5);
  std::vector<int> counts(cfg.keys + 1, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = sampler.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, cfg.keys);
    ++counts[k];
  }
  for (std::uint64_t k = 1; k <= cfg.keys; ++k) {
    EXPECT_GT(counts[k], 700) << "key " << k;  // expect ~1000 each
  }
}

TEST(KeySampler, ZipfFrequencyFollowsRank) {
  KeyConfig cfg;
  cfg.dist = KeyDist::kZipfian;
  cfg.keys = 64;
  cfg.zipf_s = 1.0;
  const KeySampler sampler(cfg);
  sim::Rng rng(9);
  std::vector<int> counts(cfg.keys + 1, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.sample(rng)];
  // Rank order: key 1 is the hottest, and well-separated ranks keep their
  // order in the empirical frequencies.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[8]);
  EXPECT_GT(counts[8], counts[32]);
  // With s = 1 the hottest key draws about 1/H(64) ~ 21% of the traffic.
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.21, 0.03);
}

// ------------------------------------------------------------------ plan ---

GeneratorConfig small_cfg(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.requests = 500;
  cfg.rate_rps = 100'000.0;
  cfg.txn_fraction = 0.10;
  return cfg;
}

TEST(GeneratorPlan, SameSeedSameScheduleByteForByte) {
  const auto a = Generator::plan(small_cfg(42), 8);
  const auto b = Generator::plan(small_cfg(42), 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "request " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "request " << i;
    EXPECT_EQ(a[i].op, b[i].op) << "request " << i;
    EXPECT_EQ(a[i].keys, b[i].keys) << "request " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "request " << i;
  }
}

TEST(GeneratorPlan, DifferentSeedDifferentSchedule) {
  const auto a = Generator::plan(small_cfg(42), 8);
  const auto b = Generator::plan(small_cfg(43), 8);
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].at != b[i].at || a[i].keys != b[i].keys;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorPlan, ShapeMatchesConfig) {
  auto cfg = small_cfg(1);
  cfg.requests = 2'000;
  cfg.read_fraction = 0.30;
  cfg.txn_fraction = 0.20;
  cfg.txn_keys = 3;
  const auto plan = Generator::plan(cfg, 4);
  ASSERT_EQ(plan.size(), 2'000u);
  std::uint64_t reads = 0, writes = 0, txns = 0;
  sim::Time prev = 0;
  for (const auto& r : plan) {
    EXPECT_GE(r.at, prev);  // arrivals are time-ordered
    prev = r.at;
    EXPECT_LT(r.node, 4u);
    switch (r.op) {
      case stats::ServiceOp::kRead:
        ++reads;
        EXPECT_EQ(r.keys.size(), 1u);
        break;
      case stats::ServiceOp::kWrite:
        ++writes;
        EXPECT_EQ(r.keys.size(), 1u);
        break;
      case stats::ServiceOp::kTxn:
        ++txns;
        EXPECT_GE(r.keys.size(), 2u);
        EXPECT_LE(r.keys.size(), 3u);
        break;
      case stats::ServiceOp::kRmw:
        ADD_FAILURE() << "rmw_fraction is 0; no rmw may be planned";
        break;
    }
    for (const auto k : r.keys) EXPECT_GE(k, 1u);
  }
  EXPECT_NEAR(static_cast<double>(reads) / 2'000, 0.30, 0.05);
  EXPECT_NEAR(static_cast<double>(txns) / 2'000, 0.20, 0.05);
  EXPECT_EQ(reads + writes + txns, 2'000u);
}

TEST(GeneratorPlan, ZeroRmwFractionLeavesScheduleByteIdentical) {
  // The rmw op class is carved out of the op stream's single uniform
  // draw, after txn — with rmw_fraction = 0 the interval is empty, so a
  // plan made before the feature existed is reproduced byte for byte.
  auto with = small_cfg(42);
  with.rmw_fraction = 0.0;
  const auto a = Generator::plan(small_cfg(42), 8);
  const auto b = Generator::plan(with, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "request " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "request " << i;
    EXPECT_EQ(a[i].op, b[i].op) << "request " << i;
    EXPECT_EQ(a[i].keys, b[i].keys) << "request " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "request " << i;
  }
}

TEST(GeneratorPlan, RmwFractionPlansMultiKeyRmws) {
  auto cfg = small_cfg(13);
  cfg.requests = 2'000;
  cfg.read_fraction = 0.30;
  cfg.txn_fraction = 0.10;
  cfg.rmw_fraction = 0.20;
  cfg.txn_keys = 3;
  const auto plan = Generator::plan(cfg, 4);
  std::uint64_t rmws = 0;
  for (const auto& r : plan) {
    if (r.op != stats::ServiceOp::kRmw) continue;
    ++rmws;
    EXPECT_GE(r.keys.size(), 2u);
    EXPECT_LE(r.keys.size(), 3u);
  }
  EXPECT_NEAR(static_cast<double>(rmws) / 2'000, 0.20, 0.05);
  // Arrival times and issuing nodes are untouched by the op-mix change
  // (independent streams): compare against a mix without rmw.
  auto base = cfg;
  base.rmw_fraction = 0.0;
  const auto ref = Generator::plan(base, 4);
  ASSERT_EQ(plan.size(), ref.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].at, ref[i].at) << "request " << i;
    EXPECT_EQ(plan[i].node, ref[i].node) << "request " << i;
  }
}

TEST(Generator, RmwRunCompletesWithExactIncrements) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  auto cfg = small_cfg(21);
  cfg.requests = 300;
  cfg.read_fraction = 0.20;
  cfg.txn_fraction = 0.10;
  cfg.rmw_fraction = 0.30;
  Generator gen(cfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(report);

  EXPECT_TRUE(gen.done());
  EXPECT_EQ(report.completed(), 300u);
  EXPECT_TRUE(report.serializable());
  EXPECT_TRUE(store.replicas_converged());
  std::uint64_t rmws = 0;
  for (const auto& s : report.shards) {
    rmws += s.op(stats::ServiceOp::kRmw).completed;
  }
  EXPECT_GT(rmws, 0u);
}

// ------------------------------------------------------------ end to end ---

TEST(Generator, RunCompletesEveryRequestWithCoherentAccounting) {
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  auto cfg = small_cfg(77);
  cfg.requests = 300;
  Generator gen(cfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(report);

  EXPECT_TRUE(gen.done());
  EXPECT_EQ(report.issued(), 300u);
  EXPECT_EQ(report.completed(), 300u);
  EXPECT_GT(report.elapsed_ns, 0u);
  EXPECT_GT(report.goodput_rps(), 0.0);
  EXPECT_TRUE(report.serializable());
  EXPECT_TRUE(store.replicas_converged());
  // Latency histograms hold exactly the completed requests, per op class.
  std::uint64_t samples = 0;
  for (const auto& s : report.shards) {
    for (const auto& o : s.ops) {
      EXPECT_EQ(o.issued, o.completed);
      samples += o.latency_ns.count();
    }
  }
  EXPECT_EQ(samples, 300u);
  // Every write latency includes at least the in-section compute time.
  const auto w = report.merged_latency(stats::ServiceOp::kWrite);
  EXPECT_GE(w.min(), static_cast<std::int64_t>(
                         store.config().write_compute_ns));
}

TEST(Generator, ServiceRunIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Scheduler sched;
    const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
    dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
    shard::ShardedStoreConfig scfg;
    scfg.shards = 2;
    shard::ShardedStore store(sys, scfg);
    auto cfg = small_cfg(seed);
    cfg.requests = 200;
    Generator gen(cfg);
    stats::ServiceReport report;
    shard::Client client(store);
    auto drive = gen.run(client, report);
    sched.run();
    drive.rethrow_if_failed();
    store.fill_report(report);
    return std::tuple{report.elapsed_ns, report.messages,
                      report.merged_latency(stats::ServiceOp::kWrite).max(),
                      sched.now()};
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace optsync::load
