#include "simkern/log.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/scheduler.hpp"

namespace optsync::sim {
namespace {

class CaptureLog {
 public:
  CaptureLog() {
    Logger::global().set_sink([this](std::string_view line) {
      lines_.emplace_back(line);
    });
    Logger::global().set_level(LogLevel::kTrace);
  }
  ~CaptureLog() {
    Logger::global().set_sink(nullptr);
    Logger::global().set_level(LogLevel::kWarn);
    Logger::global().attach_clock(nullptr);
  }
  std::vector<std::string> lines_;
};

TEST(Logger, LevelsFilter) {
  CaptureLog cap;
  Logger::global().set_level(LogLevel::kWarn);
  log_debug("hidden");
  log_info("hidden too");
  log_warn("visible");
  ASSERT_EQ(cap.lines_.size(), 1u);
  EXPECT_NE(cap.lines_[0].find("visible"), std::string::npos);
  EXPECT_NE(cap.lines_[0].find("WARN"), std::string::npos);
}

TEST(Logger, ConcatenatesArguments) {
  CaptureLog cap;
  log_info("n", 3, " -> ", 4.5);
  ASSERT_EQ(cap.lines_.size(), 1u);
  EXPECT_NE(cap.lines_[0].find("n3 -> 4.5"), std::string::npos);
}

TEST(Logger, SimTimePrefixWhenClockAttached) {
  CaptureLog cap;
  Scheduler sched;
  Logger::global().attach_clock(&sched);
  sched.at(1500, [] { log_info("at event"); });
  sched.run();
  ASSERT_EQ(cap.lines_.size(), 1u);
  EXPECT_NE(cap.lines_[0].find("1.500us"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  CaptureLog cap;
  Logger::global().set_level(LogLevel::kOff);
  log_warn("nope");
  EXPECT_TRUE(cap.lines_.empty());
}

TEST(Logger, EnabledReflectsLevel) {
  CaptureLog cap;
  Logger::global().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kError));
}

TEST(FormatTime, AdaptiveUnits) {
  EXPECT_EQ(format_time(999), "999ns");
  EXPECT_EQ(format_time(1'234), "1.234us");
  EXPECT_EQ(format_time(5'000'000), "5.000ms");
  EXPECT_EQ(format_time(2'500'000'000ull), "2.500s");
}

}  // namespace
}  // namespace optsync::sim
