// Telemetry unit tests: ring-buffered series + exports, the sim-clock
// sampler (gauges, rates, zero-window guards, scheduler interaction), the
// overload detector over synthetic backlog shapes, the wall-clock sampler,
// the causal tracer's span trees and critical-path sweep, and the
// ServiceReport rate guards the telemetry stack leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "simkern/scheduler.hpp"
#include "stats/service_report.hpp"
#include "telemetry/overload.hpp"
#include "telemetry/rt_sampler.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/series.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::telemetry {
namespace {

// --- SeriesSet ----------------------------------------------------------

TEST(SeriesSet, RingEvictsOldestAndCountsDrops) {
  SeriesSet set(/*capacity=*/4);
  const auto idx = set.series("m", {});
  for (int i = 0; i < 10; ++i) {
    set.append(idx, static_cast<sim::Time>(i), static_cast<double>(i));
  }
  const Series& s = set.at(idx);
  ASSERT_EQ(s.samples.size(), 4u);
  EXPECT_EQ(s.samples.front().v, 6.0);  // 0..5 evicted
  EXPECT_EQ(s.samples.back().v, 9.0);
  EXPECT_EQ(s.dropped, 6u);
  EXPECT_EQ(s.last(), 9.0);
}

TEST(SeriesSet, IdentityIsNamePlusLabels) {
  SeriesSet set;
  const auto a = set.series("m", {{"shard", "0"}});
  const auto b = set.series("m", {{"shard", "1"}});
  const auto a2 = set.series("m", {{"shard", "0"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.find("m", {{"shard", "1"}}), &set.at(b));
  EXPECT_EQ(set.find("m", {{"shard", "9"}}), nullptr);
  EXPECT_EQ(set.find("absent", {}), nullptr);
}

TEST(SeriesSet, PrometheusExpositionGroupsFamiliesAndEscapes) {
  SeriesSet set;
  const auto a = set.series("optsync_backlog", {{"shard", "0"}});
  const auto other = set.series("optsync_goodput", {});
  const auto b = set.series("optsync_backlog", {{"shard", "a\"b\\c\nd"}});
  set.append(a, 10, 3.0);
  set.append(other, 10, 7.5);
  set.append(b, 10, 4.0);
  std::ostringstream out;
  set.write_prometheus(out);
  const std::string text = out.str();
  // One TYPE line per family, and both backlog series under ONE block even
  // though another family was registered between them.
  EXPECT_EQ(text.find("# TYPE optsync_backlog gauge"),
            text.rfind("# TYPE optsync_backlog gauge"));
  EXPECT_NE(text.find("optsync_backlog{shard=\"0\"} 3"), std::string::npos);
  EXPECT_NE(text.find("optsync_goodput 7.5"), std::string::npos);
  // Escaped label value: backslash, quote, newline.
  EXPECT_NE(text.find("shard=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  const auto family_pos = text.find("# TYPE optsync_backlog gauge");
  const auto next_family = text.find("# TYPE optsync_goodput gauge");
  const auto second_sample = text.find("optsync_backlog{shard=\"a");
  EXPECT_TRUE(second_sample < next_family || next_family < family_pos)
      << "family block must be contiguous:\n"
      << text;
}

TEST(SeriesSet, JsonExportCarriesSchemaAndSamples) {
  SeriesSet set;
  const auto idx = set.series("m", {{"k", "v"}});
  set.append(idx, 5, 1.5);
  set.append(idx, 10, 2.5);
  std::ostringstream out;
  set.write_json(out, /*interval_ns=*/5);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\": \"optsync-timeseries/1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"interval_ns\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped\": 0"), std::string::npos);
  // Both samples retained, timestamps then values (pretty print splits the
  // [t, v] pairs across lines, so match the scalars).
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_LT(text.find("1.5"), text.find("2.5"));
}

// --- Sampler (sim clock) ------------------------------------------------

TEST(Sampler, TicksWhileEventsPendingAndStopsWhenIdle) {
  sim::Scheduler sched;
  Sampler sampler(SamplerConfig{/*interval_ns=*/100, /*capacity=*/1024});
  int gauge = 0;
  sampler.add_gauge("g", {}, [&] { return static_cast<double>(gauge); });
  // Keep the simulation alive to t=1000 with a chain of no-op events.
  for (sim::Time t = 0; t <= 1000; t += 50) {
    sched.at(t, [&] { ++gauge; });
  }
  sampler.start(sched);
  sched.run();  // must terminate: the sampler may not self-perpetuate
  sampler.sample_now(sched.now());
  const Series* s = sampler.series().find("g", {});
  ASSERT_NE(s, nullptr);
  ASSERT_GE(s->samples.size(), 5u);
  EXPECT_GE(sampler.ticks(), 5u);
  // Samples are in time order and end at the final sample_now.
  for (std::size_t i = 1; i < s->samples.size(); ++i) {
    EXPECT_GE(s->samples[i].t, s->samples[i - 1].t);
  }
  EXPECT_EQ(s->samples.back().t, sched.now());
}

TEST(Sampler, RateProbeMeasuresPerSecondDelta) {
  sim::Scheduler sched;
  Sampler sampler(SamplerConfig{/*interval_ns=*/1'000'000, /*capacity=*/64});
  std::uint64_t counter = 0;
  sampler.add_rate("r", {}, [&] { return static_cast<double>(counter); });
  // +5 just before each millisecond tick => 5000 per second. No events
  // after the last increment: the sampler must not outlive the load.
  for (int i = 1; i <= 3; ++i) {
    sched.at(static_cast<sim::Time>(i) * 1'000'000 - 1, [&] { counter += 5; });
  }
  sampler.start(sched);
  sched.run();
  const Series* s = sampler.series().find("r", {});
  ASSERT_NE(s, nullptr);
  ASSERT_GE(s->samples.size(), 3u);
  EXPECT_EQ(s->samples.front().v, 0.0);  // priming tick
  for (std::size_t i = 1; i < s->samples.size(); ++i) {
    EXPECT_NEAR(s->samples[i].v, 5'000.0, 1e-6) << "tick " << i;
  }
}

TEST(Sampler, RateProbeZeroWindowYieldsZeroNotNan) {
  sim::Scheduler sched;
  Sampler sampler;
  std::uint64_t counter = 0;
  sampler.add_rate("r", {}, [&] { return static_cast<double>(counter); });
  sampler.sample_now(100);
  counter = 50;
  sampler.sample_now(100);  // same instant: dt == 0
  const Series* s = sampler.series().find("r", {});
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->samples.size(), 2u);
  EXPECT_EQ(s->samples[1].v, 0.0);
}

// --- Overload detector --------------------------------------------------

Series make_series(const std::vector<double>& values,
                   sim::Duration step = 50'000) {
  Series s;
  s.name = "optsync_shard_backlog";
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.samples.push_back(Sample{static_cast<sim::Time>(i) * step, values[i]});
  }
  return s;
}

TEST(Overload, SustainedGrowthIsDrowning) {
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) v.push_back(5.0 * i);  // 100k/s at 50µs step
  const auto verdict = assess_backlog(make_series(v));
  EXPECT_TRUE(verdict.drowning);
  EXPECT_GT(verdict.slope_per_s, 1'000.0);
  EXPECT_EQ(verdict.peak_backlog, 195.0);
}

TEST(Overload, GrowthThenDrainIsStillDrowning) {
  // A finite run: backlog ramps while load is offered, then drains to zero
  // after the last arrival. The drain tail must not mask the saturation.
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(10.0 * i);
  for (int i = 19; i >= 0; --i) v.push_back(10.0 * i);
  const auto verdict = assess_backlog(make_series(v));
  EXPECT_TRUE(verdict.drowning);
  EXPECT_EQ(verdict.final_backlog, 0.0);
  EXPECT_EQ(verdict.peak_backlog, 190.0);
}

TEST(Overload, PlateauIsNotDrowning) {
  // At capacity: a material backlog oscillating around a plateau with only
  // a faint drift (~200 req/s, well under the 1000 req/s gate).
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) {
    v.push_back(50.0 + 0.01 * i + ((i % 2) != 0 ? 1.0 : -1.0));
  }
  const auto verdict = assess_backlog(make_series(v));
  EXPECT_GT(verdict.peak_backlog, 16.0);  // material queue, just not growing
  EXPECT_LT(verdict.slope_per_s, 1'000.0);
  EXPECT_FALSE(verdict.drowning);
}

TEST(Overload, TinyBacklogGrowthIsNotDrowning) {
  // Steep slope, immaterial queue: 0 -> 8 requests over the run.
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) v.push_back(0.2 * i);
  const auto verdict = assess_backlog(make_series(v));
  EXPECT_GT(verdict.slope_per_s, 1'000.0);
  EXPECT_FALSE(verdict.drowning);  // peak < min_final_backlog
}

TEST(Overload, ShortSeriesGivesNoVerdict) {
  const auto verdict = assess_backlog(make_series({0.0, 100.0, 200.0}));
  EXPECT_FALSE(verdict.drowning);
  EXPECT_EQ(assess_backlog(Series{}).drowning, false);
}

TEST(Overload, EmptyAndOneSampleSeriesGiveNoVerdictAnywhere) {
  // Guards at every entry point: assess, the live overlay, both shapes.
  EXPECT_FALSE(assess_backlog(Series{}).drowning);
  EXPECT_EQ(assess_backlog(Series{}).slope_per_s, 0.0);
  EXPECT_FALSE(assess_backlog(make_series({42.0})).drowning);
  EXPECT_FALSE(live_drowning(Series{}, /*current_backlog=*/1e9));
  EXPECT_FALSE(live_drowning(make_series({42.0}), /*current_backlog=*/1e9));
}

TEST(Overload, LiveVerdictFlipsExactlyOnceAcrossMigrateThenDrain) {
  // The elastic recovery story: a shard drowns, a migration peels its load
  // off, the queue drains. The LIVE verdict must flip false->true once
  // (saturation detected) and true->false once (recovered), with no
  // flapping — assess_backlog alone would stay pinned to the historical
  // peak forever.
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) v.push_back(5.0 * i);   // ramp to 195
  for (int i = 0; i < 40; ++i) {                       // post-migration drain
    v.push_back(std::max(0.0, 195.0 - 5.0 * i));
  }
  Series s;
  s.name = "optsync_shard_backlog";
  bool prev = false;
  int rising = 0;
  int falling = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    s.samples.push_back(Sample{static_cast<sim::Time>(i) * 50'000, v[i]});
    const bool now = live_drowning(s, /*current_backlog=*/v[i]);
    if (now && !prev) ++rising;
    if (!now && prev) ++falling;
    prev = now;
  }
  EXPECT_EQ(rising, 1);
  EXPECT_EQ(falling, 1);
  EXPECT_FALSE(prev);  // drained below the materiality floor at the end
  // The historical verdict stays pinned: slope over the pre-peak window.
  EXPECT_TRUE(assess_backlog(s).drowning);
}

TEST(Overload, FlagOverloadFillsReportShards) {
  SeriesSet set;
  const auto hot = set.series("optsync_shard_backlog", {{"shard", "0"}});
  const auto cold = set.series("optsync_shard_backlog", {{"shard", "1"}});
  for (int i = 0; i < 40; ++i) {
    set.append(hot, static_cast<sim::Time>(i) * 50'000, 5.0 * i);
    set.append(cold, static_cast<sim::Time>(i) * 50'000, 1.0);
  }
  stats::ServiceReport report;
  report.shards.resize(3);
  for (std::uint32_t s = 0; s < 3; ++s) report.shards[s].shard = s;
  flag_overload(report, set);
  EXPECT_TRUE(report.shards[0].drowning);
  EXPECT_FALSE(report.shards[1].drowning);
  EXPECT_FALSE(report.shards[2].drowning);  // no series: left untouched
  EXPECT_EQ(report.drowning_shards(), 1u);
  const std::string text = report.format();
  EXPECT_NE(text.find("DROWNING"), std::string::npos);
}

// --- Prometheus exposition: HELP + sanitization -------------------------

TEST(SeriesSet, PrometheusHelpPrecedesTypeAndEscapes) {
  SeriesSet set;
  const auto a = set.series("optsync_backlog", {});
  const auto b = set.series("optsync_goodput", {});
  set.append(a, 10, 1.0);
  set.append(b, 10, 2.0);
  set.set_help("optsync_backlog", "Queue depth\nper shard \\ raw");
  std::ostringstream out;
  set.write_prometheus(out);
  const std::string text = out.str();
  // Registered help renders escaped; HELP comes before TYPE.
  EXPECT_NE(
      text.find("# HELP optsync_backlog Queue depth\\nper shard \\\\ raw"),
      std::string::npos);
  EXPECT_LT(text.find("# HELP optsync_backlog"),
            text.find("# TYPE optsync_backlog"));
  // Families without registered help still carry a full preamble.
  EXPECT_NE(text.find("# HELP optsync_goodput optsync gauge optsync_goodput"),
            std::string::npos);
  EXPECT_LT(text.find("# HELP optsync_goodput"),
            text.find("# TYPE optsync_goodput"));
}

TEST(SeriesSet, SanitizesMetricAndLabelNamesToExpositionGrammar) {
  EXPECT_EQ(SeriesSet::sanitize_metric_name("optsync_ok:metric"),
            "optsync_ok:metric");
  EXPECT_EQ(SeriesSet::sanitize_metric_name("bad.metric-name"),
            "bad_metric_name");
  EXPECT_EQ(SeriesSet::sanitize_metric_name("9leading"), "_9leading");
  EXPECT_EQ(SeriesSet::sanitize_metric_name(""), "_");
  // Labels additionally reject ':'.
  EXPECT_EQ(SeriesSet::sanitize_label_name("shard:id"), "shard_id");
  EXPECT_EQ(SeriesSet::sanitize_label_name("ok_label"), "ok_label");

  SeriesSet set;
  const auto idx = set.series("rt.latency p50", {{"shard-id", "3"}});
  set.append(idx, 10, 1.5);
  std::ostringstream out;
  set.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE rt_latency_p50 gauge"), std::string::npos);
  EXPECT_NE(text.find("rt_latency_p50{shard_id=\"3\"} 1.5"),
            std::string::npos);
}

TEST(SeriesSet, CollidingSanitizedNamesMergeIntoOneFamily) {
  // "a.b" and "a_b" collapse to the same exposition name; the output must
  // render them as ONE contiguous family or promtool rejects it.
  SeriesSet set;
  const auto a = set.series("a.b", {{"v", "dot"}});
  const auto mid = set.series("other", {});
  const auto b = set.series("a_b", {{"v", "underscore"}});
  set.append(a, 10, 1.0);
  set.append(mid, 10, 2.0);
  set.append(b, 10, 3.0);
  std::ostringstream out;
  set.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("# TYPE a_b gauge"), text.rfind("# TYPE a_b gauge"));
  const auto dot = text.find("a_b{v=\"dot\"}");
  const auto under = text.find("a_b{v=\"underscore\"}");
  const auto other = text.find("# TYPE other gauge");
  ASSERT_NE(dot, std::string::npos);
  ASSERT_NE(under, std::string::npos);
  EXPECT_TRUE(other < dot || other > under)
      << "family split by another family:\n"
      << text;
}

// --- RtSampler (wall clock) ---------------------------------------------

TEST(RtSampler, SamplesOnAThreadAndStopJoins) {
  RtSampler sampler(std::chrono::microseconds(200), /*capacity=*/1024);
  std::atomic<std::uint64_t> counter{0};
  sampler.add_gauge("c", {}, [&] {
    return static_cast<double>(counter.load(std::memory_order_relaxed));
  });
  sampler.start();
  for (int i = 0; i < 50; ++i) {
    counter.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  sampler.stop();
  sampler.stop();  // idempotent
  const Series* s = sampler.series().find("c", {});
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(s->samples.empty());
  EXPECT_GE(sampler.ticks(), 1u);
  EXPECT_EQ(s->samples.back().v, 50.0);  // final sample on the way out
  for (std::size_t i = 1; i < s->samples.size(); ++i) {
    EXPECT_GE(s->samples[i].v, s->samples[i - 1].v);
  }
}

TEST(RtSampler, RateProbeMirrorsSimSamplerSemantics) {
  RtSampler sampler(std::chrono::microseconds(200), /*capacity=*/1024);
  std::atomic<std::uint64_t> counter{0};
  sampler.add_rate("r", {{"shard", "0"}}, [&] {
    return static_cast<double>(counter.load(std::memory_order_relaxed));
  });
  sampler.start();
  for (int i = 0; i < 50; ++i) {
    counter.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  sampler.stop();
  const Series* s = sampler.series().find("r", {{"shard", "0"}});
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(s->samples.empty());
  EXPECT_EQ(s->samples.front().v, 0.0);  // priming tick records 0
  double max_rate = 0.0;
  for (const Sample& p : s->samples) {
    EXPECT_GE(p.v, 0.0);  // monotone counter: deltas never negative
    max_rate = std::max(max_rate, p.v);
  }
  // 50 increments landed inside the sampling window, so some tick must
  // have seen a positive per-second delta.
  EXPECT_GT(max_rate, 0.0);
}

// --- Tracer -------------------------------------------------------------

TEST(Tracer, OpLifecycleRecordsBacklogAndRequestSpans) {
  Tracer trc;
  EXPECT_FALSE(trc.node_ctx(3).valid());
  const auto ctx = trc.begin_op(3, "write", 1, /*arrival=*/100, /*now=*/250);
  ASSERT_TRUE(ctx.valid());
  EXPECT_TRUE(trc.node_ctx(3).valid());
  EXPECT_EQ(trc.op_of(ctx.trace), "write");
  trc.record_span(ctx.trace, ctx.span, SpanKind::kCs, 3, 250, 900);
  trc.end_op(3, 1000);
  EXPECT_FALSE(trc.node_ctx(3).valid());

  const Analysis an = trc.analyze();
  ASSERT_EQ(an.ops.size(), 1u);
  EXPECT_EQ(an.orphan_spans, 0u);
  EXPECT_EQ(an.incomplete_ops, 0u);
  const OpBreakdown& op = an.ops[0];
  EXPECT_EQ(op.total(), 900);  // arrival 100 -> end 1000
  EXPECT_EQ(op.buckets[static_cast<std::size_t>(Bucket::kBacklog)], 150);
  EXPECT_EQ(op.buckets[static_cast<std::size_t>(Bucket::kCompute)], 650);
  EXPECT_EQ(op.buckets[static_cast<std::size_t>(Bucket::kOther)], 100);
  sim::Duration sum = 0;
  for (const auto b : op.buckets) sum += b;
  EXPECT_EQ(sum, op.total());
}

TEST(Tracer, SweepPrefersComputeOverWaitLegs) {
  // The paper's latency-hiding story: speculation overlapping the lock
  // wait must be attributed to compute, not to the wait.
  Tracer trc;
  const auto ctx = trc.begin_op(0, "write", 0, 0, 0);
  const SpanId wait =
      trc.start_span(ctx.trace, ctx.span, SpanKind::kLockWait, 0, 0);
  trc.record_span(ctx.trace, wait, SpanKind::kWireUp, 0, 0, 1000);
  trc.record_span(ctx.trace, ctx.span, SpanKind::kSpeculate, 0, 200, 700);
  trc.end_span(wait, 1000);
  trc.end_op(0, 1000);
  const Analysis an = trc.analyze();
  ASSERT_EQ(an.ops.size(), 1u);
  const auto& b = an.ops[0].buckets;
  EXPECT_EQ(b[static_cast<std::size_t>(Bucket::kCompute)], 500);
  EXPECT_EQ(b[static_cast<std::size_t>(Bucket::kWire)], 500);
  EXPECT_EQ(b[static_cast<std::size_t>(Bucket::kOther)], 0);
}

TEST(Tracer, CriticalPathPartitionsWindowAndNamesDominantBucket) {
  // wire [0,500] under a lock wait ending 600, then cs [600,1000]. The
  // backward walk: cs gated completion, before it the wait, whose tail
  // [500,600] is umbrella self time (other), gated by the wire leg.
  Tracer trc;
  const auto ctx = trc.begin_op(0, "write", 0, /*arrival=*/0, /*now=*/0);
  const SpanId wait =
      trc.start_span(ctx.trace, ctx.span, SpanKind::kLockWait, 0, 0);
  trc.record_span(ctx.trace, wait, SpanKind::kWireUp, 0, 0, 500);
  trc.end_span(wait, 600);
  trc.record_span(ctx.trace, ctx.span, SpanKind::kCs, 0, 600, 1000);
  trc.end_op(0, 1000);

  const Analysis an = trc.analyze();
  ASSERT_EQ(an.ops.size(), 1u);
  const OpBreakdown& op = an.ops[0];
  const auto& pb = op.path_buckets;
  EXPECT_EQ(pb[static_cast<std::size_t>(Bucket::kWire)], 500);
  EXPECT_EQ(pb[static_cast<std::size_t>(Bucket::kCompute)], 400);
  EXPECT_EQ(pb[static_cast<std::size_t>(Bucket::kOther)], 100);
  sim::Duration sum = 0;
  for (const auto b : pb) sum += b;
  EXPECT_EQ(sum, op.total());  // path segments partition the window
  EXPECT_EQ(op.path_named(), 900);
  EXPECT_EQ(op.dominant_path_bucket(), Bucket::kWire);
  EXPECT_NEAR(an.path_named_fraction(), 0.9, 1e-9);
  // Analysis-level path totals mirror the single op.
  EXPECT_EQ(an.path_totals[static_cast<std::size_t>(Bucket::kWire)], 500);
}

TEST(Tracer, CriticalPathExcludesConcurrentOffPathWork) {
  // Speculation overlapping the full-length lock wait: the coverage sweep
  // credits the overlap to compute (latency hiding), but the CRITICAL PATH
  // runs through the wait's wire leg — the speculation finished early and
  // gated nothing.
  Tracer trc;
  const auto ctx = trc.begin_op(0, "write", 0, 0, 0);
  const SpanId wait =
      trc.start_span(ctx.trace, ctx.span, SpanKind::kLockWait, 0, 0);
  trc.record_span(ctx.trace, wait, SpanKind::kWireUp, 0, 0, 1000);
  trc.record_span(ctx.trace, ctx.span, SpanKind::kSpeculate, 0, 200, 700);
  trc.end_span(wait, 1000);
  trc.end_op(0, 1000);

  const Analysis an = trc.analyze();
  ASSERT_EQ(an.ops.size(), 1u);
  const OpBreakdown& op = an.ops[0];
  EXPECT_EQ(op.buckets[static_cast<std::size_t>(Bucket::kCompute)], 500);
  EXPECT_EQ(op.path_buckets[static_cast<std::size_t>(Bucket::kWire)], 1000);
  EXPECT_EQ(op.path_buckets[static_cast<std::size_t>(Bucket::kCompute)], 0);
  EXPECT_EQ(op.dominant_path_bucket(), Bucket::kWire);
  sim::Duration sum = 0;
  for (const auto b : op.path_buckets) sum += b;
  EXPECT_EQ(sum, op.total());
}

TEST(Tracer, EmptyAnalysisAttributesNothingWrongly) {
  const Analysis an = Tracer().analyze();
  EXPECT_EQ(an.total_latency, 0);
  EXPECT_EQ(an.named_fraction(), 1.0);
  EXPECT_EQ(an.path_named_fraction(), 1.0);
}

TEST(Tracer, OrphanParentIsDetected) {
  Tracer trc;
  const auto ctx = trc.begin_op(0, "write", 0, 0, 0);
  trc.record_span(ctx.trace, /*parent=*/987654, SpanKind::kCs, 0, 10, 20);
  trc.end_op(0, 100);
  EXPECT_EQ(trc.analyze().orphan_spans, 1u);
}

TEST(Tracer, UnfinishedOpIsIncompleteNotAnalyzed) {
  Tracer trc;
  (void)trc.begin_op(0, "write", 0, 0, 0);
  const Analysis an = trc.analyze();
  EXPECT_EQ(an.ops.size(), 0u);
  EXPECT_EQ(an.incomplete_ops, 1u);
}

TEST(Tracer, CapacityCapCountsDroppedSpans) {
  Tracer trc(/*capacity=*/4);
  const auto ctx = trc.begin_op(0, "write", 0, 0, 0);
  for (int i = 0; i < 10; ++i) {
    trc.record_span(ctx.trace, ctx.span, SpanKind::kCs, 0, i * 10, i * 10 + 5);
  }
  trc.end_op(0, 200);
  EXPECT_GT(trc.dropped_spans(), 0u);
  EXPECT_LE(trc.completed_spans(), 4u + 1u);  // ring + the request span
}

TEST(Tracer, NodeParentRepointNestsSpansUnderWait) {
  Tracer trc;
  const auto ctx = trc.begin_op(2, "write", 0, 0, 0);
  const SpanId wait =
      trc.start_span(ctx.trace, ctx.span, SpanKind::kLockWait, 2, 0);
  trc.set_node_parent(2, wait);
  EXPECT_EQ(trc.node_ctx(2).span, wait);
  EXPECT_EQ(trc.node_ctx(2).trace, ctx.trace);
  trc.set_node_parent(2, ctx.span);
  EXPECT_EQ(trc.node_ctx(2).span, ctx.span);
  trc.end_span(wait, 50);
  trc.end_op(2, 100);
  EXPECT_EQ(trc.analyze().orphan_spans, 0u);
}

// --- ServiceReport guards -----------------------------------------------

TEST(ServiceReportGuards, ZeroWindowRatesAreZeroNotInf) {
  EXPECT_EQ(stats::ServiceReport::safe_rate(100.0, 0), 0.0);
  stats::ServiceReport report;
  report.shards.resize(1);
  report.shards[0].op(stats::ServiceOp::kWrite).completed = 10;
  report.elapsed_ns = 0;
  EXPECT_EQ(report.goodput_rps(), 0.0);
  EXPECT_EQ(report.shard_goodput_rps(0), 0.0);
  EXPECT_EQ(report.shard_goodput_rps(99), 0.0);  // out of range
  report.elapsed_ns = 1'000'000'000;
  EXPECT_NEAR(report.goodput_rps(), 10.0, 1e-9);
  EXPECT_NEAR(report.shard_goodput_rps(0), 10.0, 1e-9);
}

}  // namespace
}  // namespace optsync::telemetry
