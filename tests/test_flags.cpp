#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optsync::util {
namespace {

TEST(Flags, SpaceSeparatedValues) {
  Flags f({"--cpus", "33", "--variant", "gwc"});
  EXPECT_EQ(f.get_int("cpus", 0), 33);
  EXPECT_EQ(f.get("variant"), "gwc");
}

TEST(Flags, EqualsSeparatedValues) {
  Flags f({"--cpus=16", "--ratio=0.5"});
  EXPECT_EQ(f.get_int("cpus", 0), 16);
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0), 0.5);
}

TEST(Flags, BooleanForms) {
  Flags f({"--csv", "--verbose=false", "--fast=yes"});
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_TRUE(f.get_bool("fast"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, PositionalArguments) {
  Flags f({"taskqueue", "--cpus", "8", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "taskqueue");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, TrailingBooleanFlag) {
  // A flag at the end with no value is boolean-true.
  Flags f({"--cpus", "8", "--csv"});
  EXPECT_EQ(f.get_int("cpus", 0), 8);
  EXPECT_TRUE(f.get_bool("csv"));
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  Flags f({"--csv", "--cpus", "8"});
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_EQ(f.get_int("cpus", 0), 8);
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags f({});
  EXPECT_EQ(f.get("x", "def"), "def");
  EXPECT_EQ(f.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
}

TEST(Flags, MalformedNumbersThrow) {
  Flags f({"--cpus", "eight", "--ratio", "1.2.3"});
  EXPECT_THROW((void)f.get_int("cpus", 0), std::invalid_argument);
  EXPECT_THROW((void)f.get_double("ratio", 0), std::invalid_argument);
}

TEST(Flags, MalformedBooleanThrows) {
  Flags f({"--csv=maybe"});
  EXPECT_THROW((void)f.get_bool("csv"), std::invalid_argument);
}

TEST(Flags, BareDoubleDashRejected) {
  EXPECT_THROW(Flags({"--"}), std::invalid_argument);
}

TEST(Flags, AllowOnlyCatchesTypos) {
  Flags f({"--cpus", "4", "--vairant", "gwc"});
  EXPECT_THROW(f.allow_only({"cpus", "variant"}), std::invalid_argument);
  EXPECT_NO_THROW(f.allow_only({"cpus", "vairant"}));
}

TEST(Flags, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--n", "3"};
  Flags f(3, argv);
  EXPECT_EQ(f.get_int("n", 0), 3);
}

TEST(Flags, NamesListsAllFlags) {
  Flags f({"--b", "1", "--a", "2"});
  const auto names = f.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace optsync::util
