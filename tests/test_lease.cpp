// Lease tier unit tests: grant/hit/update/expire mechanics of the leased
// read-replica cache, the epoch/orec lockstep invariant that anchors leased
// reads to the OCC validation order, directory bounds, and the
// full-replication inertness guarantees (default configs never construct
// the tier).
#include "shard/lease.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "dsm/system.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"

namespace optsync::shard {
namespace {

// Eight nodes, the first four of which carry the shard groups; nodes 4..7
// are pure clients whose only read path is the lease tier (or the
// linearizable round trip).
struct Fixture {
  explicit Fixture(ShardedStoreConfig cfg = partial_config())
      : topo(net::MeshTorus2D::near_square(8)),
        sys(sched, topo, dsm::DsmConfig{}),
        store(sys, cfg),
        client(store) {}

  static ShardedStoreConfig partial_config() {
    ShardedStoreConfig cfg;
    cfg.shards = 2;
    cfg.slots_per_shard = 32;
    cfg.lease.server_nodes = 4;
    cfg.lease.enabled = true;
    return cfg;
  }

  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  ShardedStore store;
  Client client;

  LeaseManager& leases() { return *store.leases(); }

  // Runs one client-side op to completion and rethrows its failure.
  void run(sim::Process p) {
    sched.run();
    p.rethrow_if_failed();
  }

  std::optional<dsm::Word> read(dsm::NodeId n, Key k,
                                ConsistencyLevel level) {
    std::optional<dsm::Word> out;
    run(client.read(n, k, &out, {level}));
    return out;
  }

  void write(dsm::NodeId n, Key k, dsm::Word v) {
    run(client.write(n, k, v));
  }
};

TEST(LeaseConfigDefaults, FullReplicationNeverBuildsTheTier) {
  // The seed configuration: no server_nodes split, no lease manager, every
  // node a member. The deprecated surface and the Client facade both serve
  // reads from local replica memory.
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(8);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  ShardedStore store(sys, ShardedStoreConfig{});
  EXPECT_FALSE(store.partial());
  EXPECT_EQ(store.leases(), nullptr);
  for (dsm::NodeId n = 0; n < 8; ++n) EXPECT_TRUE(store.is_member(n));
}

TEST(LeaseConfigDefaults, NestedConfigDefaultsMatchTheSeedLayout) {
  // The nested TxnConfig / CoalesceConfig / LeaseConfig blocks must
  // default to exactly the pre-refactor flat behavior: OCC commits,
  // coalescing inherited from DsmConfig, full replication with the tier
  // off. test_determinism proves the resulting runs are byte-identical;
  // this pins the values the fingerprint depends on.
  ShardedStoreConfig cfg;
  EXPECT_EQ(cfg.txn.mode, TxnMode::kOcc);
  EXPECT_EQ(cfg.coalesce.max_writes, 0u);    // inherit DsmConfig
  EXPECT_LT(cfg.coalesce.max_ns, 0);         // inherit DsmConfig
  EXPECT_FALSE(cfg.lease.enabled);
  EXPECT_EQ(cfg.lease.server_nodes, 0u);     // full replication
  EXPECT_EQ(cfg.lease.stripe_width, 1u);     // lease stripe == orec stripe
}

TEST(LeaseConfigDefaults, ServerSpanCoveringAllNodesNormalizesToFull) {
  ShardedStoreConfig cfg;
  cfg.lease.server_nodes = 8;  // == node count: nothing left to client
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(8);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
  ShardedStore store(sys, cfg);
  EXPECT_FALSE(store.partial());
  EXPECT_EQ(store.leases(), nullptr);
}

TEST(Lease, MissGrantsThenHitsServeWithZeroMessages) {
  Fixture f;
  f.write(0, 7, 700);
  const ShardId s = f.store.shard_of(7);

  // First leased read from a client: a miss — one grant round trip.
  EXPECT_EQ(f.read(5, 7, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(700));
  EXPECT_EQ(f.leases().counters(s).grants, 1u);
  EXPECT_EQ(f.leases().counters(s).hits, 0u);

  // Repeat reads are local: hit counter moves, the wire does not.
  const std::uint64_t wire_before = f.sys.network().stats().messages;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.read(5, 7, ConsistencyLevel::kLeased),
              std::optional<dsm::Word>(700));
  }
  EXPECT_EQ(f.sys.network().stats().messages, wire_before);
  EXPECT_EQ(f.leases().counters(s).hits, 5u);
  EXPECT_EQ(f.leases().counters(s).grants, 1u);
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();
}

TEST(Lease, LinearizableReadsBypassTheCache) {
  Fixture f;
  f.write(0, 11, 42);
  const ShardId s = f.store.shard_of(11);

  EXPECT_EQ(f.read(6, 11, ConsistencyLevel::kLinearizable),
            std::optional<dsm::Word>(42));
  EXPECT_EQ(f.leases().counters(s).remote_reads, 1u);
  EXPECT_EQ(f.leases().counters(s).grants, 0u);

  // No lease was installed: a later leased read still has to fetch one.
  EXPECT_EQ(f.read(6, 11, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(42));
  EXPECT_EQ(f.leases().counters(s).grants, 1u);
}

TEST(Lease, WriteShipsUpdateAndHolderServesNewValueLocally) {
  Fixture f;
  f.write(0, 3, 30);
  EXPECT_EQ(f.read(4, 3, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(30));
  const ShardId s = f.store.shard_of(3);
  EXPECT_EQ(f.leases().counters(s).invalidations, 0u);

  // A write to the held stripe ships the holder one update-carrying
  // invalidation at the flush; the holder stays a holder, so the next
  // read is a HIT on the new value — no re-grant.
  f.write(1, 3, 31);
  EXPECT_EQ(f.leases().counters(s).invalidations, 1u);
  const std::uint64_t grants_before = f.leases().counters(s).grants;
  EXPECT_EQ(f.read(4, 3, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(31));
  EXPECT_EQ(f.leases().counters(s).grants, grants_before);
  EXPECT_GT(f.leases().counters(s).hits, 0u);
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();
}

TEST(Lease, EpochAdvancesInLockstepWithOrecVersion) {
  Fixture f;
  const Key k = 9;
  const ShardId s = f.store.shard_of(k);
  const auto slot = static_cast<std::uint32_t>(f.store.slot_of(k));

  for (dsm::Word i = 1; i <= 4; ++i) {
    f.write(0, k, i * 10);
    // stripe_width == 1 pins lease stripe == slot == orec stripe, so the
    // directory epoch must equal the orec version every reader validates
    // (site id == shard id in the txn layer).
    EXPECT_EQ(f.leases().stripe_epoch(s, slot),
              f.store.txn_manager().orecs().version(f.store.root_of(s), s,
                                                    slot))
        << "after write " << i;
  }
  EXPECT_EQ(f.leases().stripe_epoch(s, slot), 4u);
}

sim::Process expiry_script(Fixture& f, Key k, bool* served_after_ttl) {
  // Grant with a short TTL, let it lapse, then read again: the lease must
  // not serve past its expiry — the re-read is a fresh grant.
  std::optional<dsm::Word> out;
  co_await f.client.read(4, k, &out, {ConsistencyLevel::kLeased}).join();
  co_await sim::delay(f.sched, 50'000);  // >> ttl_ns below
  out.reset();
  co_await f.client.read(4, k, &out, {ConsistencyLevel::kLeased}).join();
  *served_after_ttl = out.has_value();
}

TEST(Lease, TtlExpiryForcesRefetchAndPrunesSilently) {
  ShardedStoreConfig cfg = Fixture::partial_config();
  cfg.lease.ttl_ns = 10'000;
  Fixture f(cfg);
  f.write(0, 5, 55);
  const ShardId s = f.store.shard_of(5);

  bool served = false;
  f.run(expiry_script(f, 5, &served));
  EXPECT_TRUE(served);
  EXPECT_EQ(f.leases().counters(s).grants, 2u);  // expiry forced the refetch
  EXPECT_EQ(f.leases().counters(s).hits, 0u);
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();

  // Let the second lease lapse too, then write the stripe: the flush prunes
  // the expired holder without a message — no invalidation is charged.
  f.run([](Fixture& fx) -> sim::Process {
    co_await sim::delay(fx.sched, 50'000);
  }(f));
  const std::uint64_t invals_before = f.leases().counters(s).invalidations;
  f.write(1, 5, 56);
  EXPECT_EQ(f.leases().counters(s).invalidations, invals_before);
  EXPECT_EQ(f.leases().directory_size(s), 0u);
}

TEST(Lease, TtlShorterThanTheRoundTripStillTerminates) {
  // Degenerate TTL: every grant expires in flight. The read must still
  // terminate (serving the grant's own atomic answer) instead of
  // re-requesting forever, and must return the authoritative value.
  ShardedStoreConfig cfg = Fixture::partial_config();
  cfg.lease.ttl_ns = 1;
  Fixture f(cfg);
  f.write(0, 7, 700);
  const ShardId s = f.store.shard_of(7);
  EXPECT_EQ(f.read(5, 7, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(700));
  EXPECT_EQ(f.read(5, 7, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(700));
  // Each read was one grant round trip, never a cache hit.
  EXPECT_EQ(f.leases().counters(s).grants, 2u);
  EXPECT_EQ(f.leases().counters(s).hits, 0u);
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();
}

TEST(Lease, WarmSnapshotTxnReadsServeWithZeroMessages) {
  Fixture f;
  f.write(0, 21, 210);
  f.write(0, 22, 220);
  // Warm both stripes from client node 7.
  EXPECT_EQ(f.read(7, 21, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(210));
  EXPECT_EQ(f.read(7, 22, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(220));

  const std::uint64_t wire_before = f.sys.network().stats().messages;
  TxnRequest req;
  req.reads = {21, 22};
  TxnResult result;
  f.run(f.client.txn(7, req, &result, {ConsistencyLevel::kSnapshot}));
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0], std::optional<dsm::Word>(210));
  EXPECT_EQ(result.values[1], std::optional<dsm::Word>(220));
  // Every stripe was warm: the whole multi-get was served locally.
  EXPECT_EQ(f.sys.network().stats().messages, wire_before);
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();
}

TEST(Lease, DirectoryIsBoundedByClientsTimesStripes) {
  Fixture f;
  // Every client node leases a spread of keys on both shards. The store is
  // direct-mapped (slot_of hashes the key), so a later key colliding on a
  // slot evicts the earlier one — track the surviving writer per stripe and
  // expect nullopt for the evicted keys.
  std::vector<Key> keys;
  for (Key k = 1; k <= 24; ++k) keys.push_back(k);
  std::map<std::pair<ShardId, std::size_t>, Key> resident;
  for (const Key k : keys) {
    f.write(0, k, k * 2);
    resident[{f.store.shard_of(k), f.store.slot_of(k)}] = k;
  }
  for (dsm::NodeId n = 4; n < 8; ++n) {
    for (const Key k : keys) {
      const bool live =
          resident[{f.store.shard_of(k), f.store.slot_of(k)}] == k;
      EXPECT_EQ(f.read(n, k, ConsistencyLevel::kLeased),
                live ? std::optional<dsm::Word>(k * 2) : std::nullopt)
          << "key " << k;
    }
  }
  const std::size_t clients = 4;
  for (ShardId s = 0; s < 2; ++s) {
    EXPECT_LE(f.leases().directory_size(s),
              clients * f.leases().stripes());
    EXPECT_GT(f.leases().directory_size(s), 0u);
  }
}

TEST(Lease, DisabledTierStillForwardsWritesAndServesReads) {
  // Partial replication with the client cache switched off: reads work,
  // every one a remote round trip — the leases-off baseline the benches
  // compare against.
  ShardedStoreConfig cfg = Fixture::partial_config();
  cfg.lease.enabled = false;
  Fixture f(cfg);
  f.write(5, 13, 130);  // client-node write: forwarded to the root
  const ShardId s = f.store.shard_of(13);
  EXPECT_EQ(f.read(6, 13, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(130));
  EXPECT_EQ(f.read(6, 13, ConsistencyLevel::kLeased),
            std::optional<dsm::Word>(130));
  EXPECT_EQ(f.leases().counters(s).grants, 0u);
  EXPECT_EQ(f.leases().counters(s).hits, 0u);
  EXPECT_EQ(f.leases().counters(s).remote_reads, 2u);
  EXPECT_GT(f.leases().counters(s).forwarded, 0u);
}

TEST(Lease, MemberNodesNeverTouchTheLeaseTier) {
  Fixture f;
  f.write(0, 17, 170);
  const ShardId s = f.store.shard_of(17);
  // Reads on member nodes are plain local replica reads at every level.
  for (const auto level :
       {ConsistencyLevel::kLinearizable, ConsistencyLevel::kLeased,
        ConsistencyLevel::kSnapshot}) {
    EXPECT_EQ(f.read(2, 17, level), std::optional<dsm::Word>(170));
  }
  EXPECT_EQ(f.leases().counters(s).grants, 0u);
  EXPECT_EQ(f.leases().counters(s).hits, 0u);
  EXPECT_EQ(f.leases().counters(s).remote_reads, 0u);
}

TEST(Lease, ReplicasConvergeAndLedgersStayExactUnderClientTraffic) {
  Fixture f;
  for (Key k = 1; k <= 10; ++k) f.write(static_cast<dsm::NodeId>(k % 8), k, k);
  for (dsm::NodeId n = 4; n < 8; ++n) {
    for (Key k = 1; k <= 10; ++k) {
      EXPECT_EQ(f.read(n, k, ConsistencyLevel::kLeased),
                std::optional<dsm::Word>(k));
    }
  }
  for (ShardId s = 0; s < 2; ++s) {
    EXPECT_EQ(f.store.version(s),
              static_cast<dsm::Word>(f.store.committed_writes(s)))
        << "shard " << s;
  }
  EXPECT_TRUE(f.store.replicas_converged());
  EXPECT_TRUE(f.leases().auditor().ok()) << f.leases().auditor().report();
}

}  // namespace
}  // namespace optsync::shard
