#include "simkern/coro.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace optsync::sim {
namespace {

Process simple_delayer(Scheduler& s, Duration d, Time* seen) {
  co_await delay(s, d);
  *seen = s.now();
}

TEST(Coro, ProcessStartsEagerly) {
  Scheduler s;
  bool started = false;
  auto body = [&](Scheduler& sched) -> Process {
    started = true;
    co_await delay(sched, 1);
  };
  auto p = body(s);
  EXPECT_TRUE(started);  // ran to its first suspension synchronously
  EXPECT_FALSE(p.done());
  s.run();
  EXPECT_TRUE(p.done());
}

TEST(Coro, DelayResumesAtRightTime) {
  Scheduler s;
  Time seen = 0;
  auto p = simple_delayer(s, 250, &seen);
  s.run();
  EXPECT_EQ(seen, 250u);
  EXPECT_TRUE(p.done());
}

Process chain(Scheduler& s, std::vector<Time>* marks) {
  co_await delay(s, 10);
  marks->push_back(s.now());
  co_await delay(s, 10);
  marks->push_back(s.now());
  co_await delay(s, 10);
  marks->push_back(s.now());
}

TEST(Coro, SequentialDelaysAccumulate) {
  Scheduler s;
  std::vector<Time> marks;
  auto p = chain(s, &marks);
  s.run();
  EXPECT_EQ(marks, (std::vector<Time>{10, 20, 30}));
}

Process joiner(Scheduler& s, Process& other, Time* joined_at) {
  co_await other.join();
  *joined_at = s.now();
}

TEST(Coro, JoinWaitsForCompletion) {
  Scheduler s;
  Time seen = 0;
  Time joined_at = 0;
  auto p1 = simple_delayer(s, 100, &seen);
  auto p2 = joiner(s, p1, &joined_at);
  s.run();
  EXPECT_EQ(joined_at, 100u);
}

TEST(Coro, JoinOnCompletedProcessReturnsImmediately) {
  Scheduler s;
  Time seen = 0;
  auto p1 = simple_delayer(s, 5, &seen);
  s.run();
  ASSERT_TRUE(p1.done());
  Time joined_at = kNever;
  auto p2 = joiner(s, p1, &joined_at);
  s.run();
  EXPECT_EQ(joined_at, 5u);
}

Process thrower(Scheduler& s) {
  co_await delay(s, 10);
  throw std::runtime_error("boom");
}

TEST(Coro, ExceptionCapturedAndRethrown) {
  Scheduler s;
  auto p = thrower(s);
  s.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow_if_failed(), std::runtime_error);
}

Process join_thrower(Scheduler&, Process& other, bool* caught) {
  try {
    co_await other.join();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Coro, JoinPropagatesException) {
  Scheduler s;
  bool caught = false;
  auto p1 = thrower(s);
  auto p2 = join_thrower(s, p1, &caught);
  s.run();
  EXPECT_TRUE(caught);
  p2.rethrow_if_failed();
}

Process wait_on(Signal& sig, int* wakes) {
  co_await sig.wait();
  ++*wakes;
  co_await sig.wait();
  ++*wakes;
}

TEST(Coro, SignalWakesAllWaiters) {
  Scheduler s;
  Signal sig(s);
  int wakes = 0;
  auto p1 = wait_on(sig, &wakes);
  auto p2 = wait_on(sig, &wakes);
  s.run();
  EXPECT_EQ(wakes, 0);
  EXPECT_EQ(sig.waiter_count(), 2u);
  sig.notify_all();
  s.run();
  EXPECT_EQ(wakes, 2);  // each woke once, re-armed
  sig.notify_all();
  s.run();
  EXPECT_EQ(wakes, 4);
  EXPECT_TRUE(p1.done());
  EXPECT_TRUE(p2.done());
}

TEST(Coro, NotifyWithNoWaitersIsNoop) {
  Scheduler s;
  Signal sig(s);
  sig.notify_all();
  EXPECT_TRUE(s.idle());
}

Process pred_waiter(Scheduler& s, Signal& sig, const int& value, int want,
                    Time* woke_at) {
  while (value != want) co_await sig.wait();
  *woke_at = s.now();
}

TEST(Coro, PredicateLoopIdiom) {
  Scheduler s;
  Signal sig(s);
  int value = 0;
  Time woke_at = kNever;
  auto p = pred_waiter(s, sig, value, 3, &woke_at);
  for (int i = 1; i <= 3; ++i) {
    s.after(static_cast<Duration>(10 * i) - s.now(), [&, i] {
      value = i;
      sig.notify_all();
    });
    s.run();
  }
  EXPECT_EQ(woke_at, 30u);
  EXPECT_TRUE(p.done());
}

TEST(Coro, DefaultConstructedProcessIsInert) {
  Process p;
  EXPECT_FALSE(p.done());
  EXPECT_FALSE(p.failed());
  p.rethrow_if_failed();  // no-op
}

TEST(Coro, DroppingTheHandleDoesNotCancel) {
  // Simulated programs run to completion like real ones; the Process
  // handle is only an observer.
  Scheduler s;
  bool finished = false;
  {
    auto run = [&](Scheduler& sched) -> Process {
      co_await delay(sched, 50);
      finished = true;
    };
    auto p = run(s);
    // p goes out of scope here, before the coroutine resumes.
  }
  s.run();
  EXPECT_TRUE(finished);
}

TEST(Coro, ExceptionBeforeFirstSuspensionIsCaptured) {
  Scheduler s;
  auto boom = [](Scheduler& sched) -> Process {
    (void)sched;
    throw std::runtime_error("early");
    co_return;  // unreachable; makes this a coroutine
  };
  auto p = boom(s);
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow_if_failed(), std::runtime_error);
}

TEST(Coro, ManyProcessesInterleaveDeterministically) {
  Scheduler s;
  std::vector<int> order;
  std::vector<Process> procs;
  auto make = [&](int id, Duration d) -> Process {
    co_await delay(s, d);
    order.push_back(id);
  };
  for (int i = 0; i < 10; ++i) {
    procs.push_back(make(i, static_cast<Duration>(100 - i * 10)));
  }
  s.run();
  const std::vector<int> expect{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace optsync::sim
