#include "core/section_builder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/assert.hpp"

namespace optsync::core {
namespace {

struct Fixture {
  Fixture() : topo(net::MeshTorus2D::near_square(9)),
              sys(sched, topo, dsm::DsmConfig{}) {
    std::vector<dsm::NodeId> members;
    for (dsm::NodeId i = 0; i < 9; ++i) members.push_back(i);
    g = sys.create_group(members, 0);
    lock = sys.define_lock("L", g);
    a = sys.define_mutex_data("a", g, lock, 100);
    mux = std::make_unique<OptimisticMutex>(sys, lock,
                                            OptimisticMutex::Config{});
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  dsm::GroupId g = 0;
  dsm::VarId lock = 0, a = 0;
  std::unique_ptr<OptimisticMutex> mux;
};

sim::Process exec_at(Fixture& f, dsm::NodeId n, sim::Duration at, Section sec,
                     ExecuteStats* out = nullptr) {
  co_await sim::delay(f.sched, at);
  co_await f.mux->execute(n, std::move(sec), out).join();
}

TEST(SectionBuilder, BuildsWorkingSection) {
  Fixture f;
  auto sec = SectionBuilder(f.sys)
                 .writes(f.a)
                 .compute_ns(1'000)
                 .body([&f](dsm::DsmNode& n) { n.write(f.a, n.read(f.a) + 5); })
                 .build();
  auto p = exec_at(f, 3, 0, std::move(sec));
  f.sched.run();
  p.rethrow_if_failed();
  for (dsm::NodeId n = 0; n < 9; ++n) EXPECT_EQ(f.sys.node(n).read(f.a), 105);
}

TEST(SectionBuilder, LocalsRestoredOnRollback) {
  Fixture f;
  dsm::Word lcl_c = 7;
  // The paper's Fig. 3: lcl_c = shared_a + lcl_c; shared_a += lcl_c.
  auto loser = SectionBuilder(f.sys)
                   .writes(f.a)
                   .local(lcl_c)
                   .compute_ns(2'000)
                   .body([&](dsm::DsmNode& n) {
                     lcl_c = n.read(f.a) + lcl_c;
                     n.write(f.a, n.read(f.a) + lcl_c);
                   })
                   .build();
  auto winner = read_compute_write(f.sys, f.a, f.a, 12'000,
                                   [](dsm::Word v) { return v + 1; });

  ExecuteStats loser_stats;
  auto p1 = exec_at(f, 1, 0, std::move(winner));       // near root: wins
  auto p2 = exec_at(f, 8, 100, std::move(loser), &loser_stats);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();

  EXPECT_TRUE(loser_stats.rolled_back);
  // Retry computed from valid a=101 and RESTORED lcl_c=7:
  // lcl_c = 101 + 7 = 108; a = 101 + 108 = 209.
  EXPECT_EQ(f.sys.node(0).read(f.a), 209);
  EXPECT_EQ(lcl_c, 108);
}

TEST(SectionBuilder, MultipleLocalsAndWrites) {
  Fixture f;
  const auto b = f.sys.define_mutex_data("b", f.g, f.lock, 50);
  int x = 1;
  double y = 2.5;
  auto sec = SectionBuilder(f.sys)
                 .writes({f.a, b})
                 .local(x)
                 .local(y)
                 .body([&](dsm::DsmNode& n) {
                   x += 1;
                   y *= 2;
                   n.write(f.a, n.read(f.a) + x);
                   n.write(b, n.read(b) + static_cast<dsm::Word>(y));
                 })
                 .build();
  ASSERT_NE(sec.save_locals, nullptr);
  ASSERT_NE(sec.restore_locals, nullptr);
  sec.save_locals();
  x = 99;
  y = 99.0;
  sec.restore_locals();
  EXPECT_EQ(x, 1);
  EXPECT_DOUBLE_EQ(y, 2.5);

  auto p = exec_at(f, 2, 0, std::move(sec));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.sys.node(0).read(f.a), 102);
  EXPECT_EQ(f.sys.node(0).read(b), 55);
}

TEST(SectionBuilder, BodyRequired) {
  Fixture f;
  EXPECT_THROW((void)SectionBuilder(f.sys).writes(f.a).build(),
               ContractViolation);
}

TEST(ReadComputeWrite, AppliesFunction) {
  Fixture f;
  auto sec = read_compute_write(f.sys, f.a, f.a, 500,
                                [](dsm::Word v) { return v * 3; });
  auto p = exec_at(f, 4, 0, std::move(sec));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.sys.node(7).read(f.a), 300);
}

TEST(ReadComputeWrite, DistinctSourceAndDestination) {
  Fixture f;
  const auto out = f.sys.define_mutex_data("out", f.g, f.lock, 0);
  auto sec = read_compute_write(f.sys, f.a, out, 500,
                                [](dsm::Word v) { return v + 11; });
  auto p = exec_at(f, 4, 0, std::move(sec));
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.sys.node(0).read(out), 111);
  EXPECT_EQ(f.sys.node(0).read(f.a), 100);  // source untouched
}

TEST(ReadComputeWrite, NullFunctionRejected) {
  Fixture f;
  EXPECT_THROW((void)read_compute_write(f.sys, f.a, f.a, 0, nullptr),
               ContractViolation);
}

}  // namespace
}  // namespace optsync::core
