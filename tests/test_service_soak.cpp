// Service-layer fault soak: the full sharded service — open-loop generator,
// per-shard lock protocols, cross-shard transactions — runs over a lossy,
// partitioned fiber, and every correctness invariant must hold on every
// shard: the applied write stream of each shard's group is a gapless total
// order with no speculative visibility (GWC, invariant 1 — proved by the
// streaming trace::GwcChecker), each shard's version word matches its
// committed-write count (mutual exclusion / serializability, invariant 2),
// and all replicas converge after quiesce. Seeds 900+ keep this suite's
// fault schedules disjoint from the substrate soak suites.
#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync {
namespace {

/// Drop + partition attack: 8% loss on lock and data traffic, 4%
/// duplication, plus a seeded link partition window early in the run (the
/// reliable channel must retransmit across the healed link).
faults::FaultPlan service_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.08, "lock").drop(0.08, "data").duplicate(0.04);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 220'000);
  return plan;
}

struct GwcAudit {
  trace::Recorder recorder{1 << 10};
  trace::GwcChecker checker;
  GwcAudit() { checker.install(recorder); }
};

class ServiceFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceFaultSoak, EveryShardSurvivesDropAndPartition) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = service_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);
  ASSERT_TRUE(sys.reliable_transport());

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = 220;
  gcfg.rate_rps = 60'000.0;
  gcfg.txn_fraction = 0.10;
  load::Generator gen(gcfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(report);

  ASSERT_TRUE(gen.done());
  EXPECT_EQ(report.completed(), gcfg.requests);
  // Invariant 2, per shard: version word == committed writes.
  for (shard::ShardId s = 0; s < scfg.shards; ++s) {
    EXPECT_EQ(store.version(s),
              static_cast<dsm::Word>(store.committed_writes(s)))
        << "shard " << s << " seed " << seed;
  }
  EXPECT_TRUE(store.replicas_converged()) << "seed " << seed;
  // Invariant 1, per shard group: the checker audited every applied write
  // across all four groups and found a gapless, identical total order.
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
  // The attack actually did something.
  EXPECT_GT(report.faults.drops_injected, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(DropPartitionSeeds, ServiceFaultSoak,
                         ::testing::Range<std::uint64_t>(900, 922));

}  // namespace
}  // namespace optsync
