// OCC transaction fault soak (soak label): the optimistic commit protocol
// runs a contended multi-key mix — cross-shard multi_puts and rmw
// increments with zipf-skewed keys — over a lossy, partitioned fiber, for
// 20+ fault seeds. Every seed must prove:
//
//   * serializability: each shard's version word equals its committed
//     write count, with transactions counted once per involved shard;
//   * zero lost or duplicated writes across aborts: the rmw increments of
//     a tracked hot key sum exactly, however many speculative attempts
//     were rolled back or escalated to the irrevocable fallback;
//   * GWC (invariant 1): trace::GwcChecker audits every applied write of
//     every shard group into a gapless, identical total order;
//   * convergence: all replicas agree after quiesce;
//   * the optimism was real: across the suite the contended mix must
//     produce a nonzero abort count (otherwise the soak proves nothing
//     about the abort/rollback path).
//
// Seeds 1300+ keep these fault schedules disjoint from the other soaks.
#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync {
namespace {

faults::FaultPlan txn_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.08, "lock").drop(0.08, "data").duplicate(0.04);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 220'000);
  return plan;
}

struct GwcAudit {
  trace::Recorder recorder{1 << 10};
  trace::GwcChecker checker;
  GwcAudit() { checker.install(recorder); }
};

class TxnFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnFaultSoak, OccStaysSerializableUnderDropAndPartition) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = txn_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);
  ASSERT_TRUE(sys.reliable_transport());

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  // A transaction-heavy, zipf-skewed mix: most requests are multi-key,
  // and the hot keys force speculation windows to overlap.
  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = 220;
  gcfg.rate_rps = 60'000.0;
  gcfg.read_fraction = 0.10;
  gcfg.txn_fraction = 0.35;
  gcfg.rmw_fraction = 0.35;
  gcfg.keys.dist = load::KeyDist::kZipfian;
  gcfg.keys.keys = 24;
  gcfg.keys.zipf_s = 1.0;
  load::Generator gen(gcfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(report);

  ASSERT_TRUE(gen.done());
  EXPECT_EQ(report.completed(), gcfg.requests);
  // Serializability ledger, per shard: version word == committed writes
  // (transactions bump once per involved shard, aborts bump nothing).
  for (shard::ShardId s = 0; s < scfg.shards; ++s) {
    EXPECT_EQ(store.version(s),
              static_cast<dsm::Word>(store.committed_writes(s)))
        << "shard " << s << " seed " << seed;
  }
  EXPECT_TRUE(store.replicas_converged()) << "seed " << seed;
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
  EXPECT_GT(report.faults.drops_injected, 0u) << "seed " << seed;
  // Commit accounting is closed: every planned txn/rmw either committed
  // optimistically or went through the fallback — nothing vanished.
  EXPECT_EQ(report.issued(), report.completed()) << "seed " << seed;
}

TEST(TxnFaultSoak, ContendedMixProducesAbortsAndLosesNoIncrements) {
  // Dedicated lost-update audit, with faults: every node hammers the same
  // two keys with rmw increments while the fiber drops and partitions.
  // The final sums must be exact to the increment, and the run must have
  // exercised the abort path (nonzero aborts) for the proof to bite.
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = txn_attack(1299);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  shard::ShardedStore store(sys, scfg);

  shard::Client client(store);
  const std::vector<shard::Key> keys{5, 6};
  constexpr int kRounds = 8;
  auto worker = [&](dsm::NodeId n) -> sim::Process {
    shard::TxnRequest req;
    req.adds = keys;
    req.delta = 1;
    for (int k = 0; k < kRounds; ++k) {
      co_await client.txn(n, req).join();
    }
  };
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 8; ++n) procs.push_back(worker(n));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  const auto expect = static_cast<dsm::Word>(8 * kRounds);
  auto read_now = [&](dsm::NodeId n, shard::Key k) {
    std::optional<dsm::Word> out;
    auto p = client.read(n, k, &out);
    EXPECT_TRUE(p.done());
    return out;
  };
  for (dsm::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(read_now(n, 5).value_or(-1), expect) << "node " << n;
    EXPECT_EQ(read_now(n, 6).value_or(-1), expect) << "node " << n;
  }
  EXPECT_TRUE(store.replicas_converged());
  stats::ServiceReport report;
  store.fill_report(report);
  EXPECT_TRUE(report.serializable());
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  // The optimism was real: speculation collided and rolled back.
  EXPECT_GT(store.txn_manager().aborts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(DropPartitionSeeds, TxnFaultSoak,
                         ::testing::Range<std::uint64_t>(1300, 1322));

}  // namespace
}  // namespace optsync
