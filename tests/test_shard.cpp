// Shard directory and sharded-store tests: key routing is deterministic and
// total, every shard keeps its own serializability ledger exact (version
// word == committed writes, invariant 2 per shard), replicas of every shard
// converge, and the per-shard lock-policy plumbing (queue / optimistic /
// adaptive) routes writes the way the config says.
#include "shard/sharded_store.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dsm/system.hpp"
#include "shard/client.hpp"
#include "shard/shard_map.hpp"

namespace optsync::shard {
namespace {

// ------------------------------------------------------------- ShardMap ---

TEST(ShardMap, HashRoutesEveryKeyInRange) {
  const auto map = ShardMap::hashed(8);
  std::set<ShardId> hit;
  for (Key k = 1; k <= 4'000; ++k) {
    const ShardId s = map.shard_of(k);
    ASSERT_LT(s, 8u);
    hit.insert(s);
  }
  // splitmix64 spreads a dense key range over all shards.
  EXPECT_EQ(hit.size(), 8u);
}

TEST(ShardMap, HashIsDeterministic) {
  const auto a = ShardMap::hashed(16);
  const auto b = ShardMap::hashed(16);
  for (Key k = 1; k <= 500; ++k) EXPECT_EQ(a.shard_of(k), b.shard_of(k));
}

TEST(ShardMap, RangeStripesAreContiguous) {
  const auto map = ShardMap::ranged(4, 1000);
  EXPECT_EQ(map.stripe_width(), 250u);
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(249), 0u);
  EXPECT_EQ(map.shard_of(250), 1u);
  EXPECT_EQ(map.shard_of(999), 3u);
  // Keys beyond the declared space land on the last shard, not out of range.
  EXPECT_EQ(map.shard_of(5'000), 3u);
}

TEST(ShardMap, SingleShardTakesEverything) {
  const auto map = ShardMap::hashed(1);
  for (Key k = 1; k <= 100; ++k) EXPECT_EQ(map.shard_of(k), 0u);
}

// Regression: range routing computed key / (key_space / shards), which (a)
// dumped the whole division remainder on the LAST stripe (up to 2x width
// at small key spaces) and (b) routed the top keys of an uneven space past
// shards - 1. Balanced striping spreads the remainder one key per stripe;
// this sweep checks every key of several adversarial spaces against a
// directly computed stripe walk, plus the max-key/overflow clamps.
TEST(ShardMap, RangeBoundariesExhaustive) {
  const struct {
    std::uint32_t shards;
    Key space;
  } cases[] = {
      {1, 1},   {1, 7},    {2, 3},    {3, 10},   {4, 1000},
      {7, 100}, {8, 1024}, {16, 100}, {5, 5},    {6, 13},
  };
  for (const auto& c : cases) {
    const auto map = ShardMap::ranged(c.shards, c.space);
    const Key base = c.space / c.shards;
    const std::uint32_t wide = static_cast<std::uint32_t>(c.space % c.shards);
    EXPECT_EQ(map.stripe_width(), base);
    EXPECT_EQ(map.wide_stripes(), wide);
    // Walk the stripes exactly as the spec says and check every key.
    Key k = 0;
    std::uint64_t last_count = 0;
    for (std::uint32_t s = 0; s < c.shards; ++s) {
      const Key width = base + (s < wide ? 1 : 0);
      for (Key i = 0; i < width; ++i, ++k) {
        ASSERT_EQ(map.shard_of(k), s)
            << "shards=" << c.shards << " space=" << c.space << " key=" << k;
      }
      last_count = width;
    }
    EXPECT_EQ(k, c.space);  // the walk covered the whole space
    // No stripe is more than one key wider than another.
    EXPECT_GE(last_count + 1, base);
    // Keys at and past the end of the space clamp to the last shard.
    EXPECT_EQ(map.shard_of(c.space), c.shards - 1);
    EXPECT_EQ(map.shard_of(c.space + 1), c.shards - 1);
    EXPECT_EQ(map.shard_of(~Key{0}), c.shards - 1);  // max 64-bit key
  }
}

TEST(ShardMap, HashModeBoundaryKeysStayInRange) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 8u, 16u, 64u}) {
    const auto map = ShardMap::hashed(shards);
    for (const Key k : {Key{0}, Key{1}, Key{shards}, Key{shards} - 1,
                        ~Key{0}, ~Key{0} - 1, Key{1} << 63}) {
      EXPECT_LT(map.shard_of(k), shards) << "shards=" << shards << " k=" << k;
    }
  }
}

TEST(ShardMap, RangeKeepsNeighbouringKeysTogether) {
  // The locality property hash sharding gives up: all but shards-1 of the
  // adjacent key pairs share a shard.
  const auto map = ShardMap::ranged(8, 1000);
  std::uint32_t splits = 0;
  for (Key k = 0; k + 1 < 1000; ++k) {
    if (map.shard_of(k) != map.shard_of(k + 1)) ++splits;
  }
  EXPECT_EQ(splits, 7u);
}

// --------------------------------------------------------- ShardedStore ---

struct Fixture {
  explicit Fixture(ShardedStoreConfig cfg = {})
      : topo(net::MeshTorus2D::near_square(8)),
        sys(sched, topo, dsm::DsmConfig{}),
        store(sys, cfg),
        client(store) {}
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  dsm::DsmSystem sys;
  ShardedStore store;
  Client client;
};

sim::Process put_batch(Fixture& f, dsm::NodeId n, std::vector<Key> keys,
                       dsm::Word base) {
  for (const Key k : keys) {
    co_await f.client.write(n, k, base + static_cast<dsm::Word>(k)).join();
  }
}

// Member-node reads complete without scheduler involvement, so the process
// is done the moment read() returns.
std::optional<dsm::Word> read_now(Fixture& f, dsm::NodeId n, Key k) {
  std::optional<dsm::Word> out;
  auto p = f.client.read(n, k, &out);
  EXPECT_TRUE(p.done());
  return out;
}

TEST(ShardedStore, PutGetRoundtripAcrossShards) {
  // Plenty of slots per shard so this key set maps collision-free (the
  // store is slot-addressed like a cache: a colliding later put evicts).
  ShardedStoreConfig cfg;
  cfg.slots_per_shard = 64;
  Fixture f(cfg);
  auto p = put_batch(f, 0, {1, 2, 3, 17, 101, 999}, 5'000);
  f.sched.run();
  p.rethrow_if_failed();
  // Reads are local on every node — all replicas serve the same values.
  for (const dsm::NodeId n : {0u, 3u, 7u}) {
    for (const Key k : {1ull, 2ull, 3ull, 17ull, 101ull, 999ull}) {
      const auto got = read_now(f, n, k);
      ASSERT_TRUE(got.has_value()) << "key " << k << " on node " << n;
      EXPECT_EQ(*got, 5'000 + static_cast<dsm::Word>(k));
    }
  }
  EXPECT_FALSE(read_now(f, 0, 123'456).has_value());
}

TEST(ShardedStore, PerShardLedgerStaysExactUnderContention) {
  ShardedStoreConfig cfg;
  cfg.shards = 4;
  Fixture f(cfg);
  std::vector<sim::Process> procs;
  for (dsm::NodeId n = 0; n < 8; ++n) {
    std::vector<Key> keys;
    for (Key k = 1; k <= 12; ++k) keys.push_back(k * 7 + n);
    procs.push_back(put_batch(f, n, std::move(keys), n * 1'000));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  for (ShardId s = 0; s < 4; ++s) {
    EXPECT_EQ(f.store.version(s),
              static_cast<dsm::Word>(f.store.committed_writes(s)))
        << "shard " << s;
  }
  EXPECT_TRUE(f.store.replicas_converged());
}

sim::Process txn_batch(Fixture& f, dsm::NodeId n, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    TxnRequest req;
    req.puts = {
        {static_cast<Key>(r * 3 + 1), n * 100 + r},
        {static_cast<Key>(r * 3 + 2), n * 100 + r + 1},
        {static_cast<Key>(r * 3 + 3), n * 100 + r + 2},
    };
    co_await f.client.txn(n, std::move(req)).join();
  }
}

TEST(ShardedStore, MultiPutKeepsEveryInvolvedLedgerExact) {
  ShardedStoreConfig cfg;
  cfg.shards = 4;
  Fixture f(cfg);
  std::vector<sim::Process> procs;
  for (const dsm::NodeId n : {0u, 2u, 5u, 7u}) {
    procs.push_back(txn_batch(f, n, 6));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  std::uint64_t committed = 0;
  for (ShardId s = 0; s < 4; ++s) {
    EXPECT_EQ(f.store.version(s),
              static_cast<dsm::Word>(f.store.committed_writes(s)))
        << "shard " << s;
    committed += f.store.committed_writes(s);
  }
  EXPECT_GT(committed, 0u);
  EXPECT_GT(f.store.txn_stats().acquisitions, 0u);
  EXPECT_TRUE(f.store.replicas_converged());
}

TEST(ShardedStore, QueuePolicyUsesOnlyQueuePath) {
  ShardedStoreConfig cfg;
  cfg.shards = 2;
  cfg.lock = LockPolicy::kQueue;
  Fixture f(cfg);
  auto p = put_batch(f, 1, {1, 2, 3, 4, 5, 6, 7, 8}, 0);
  f.sched.run();
  p.rethrow_if_failed();
  for (ShardId s = 0; s < 2; ++s) {
    EXPECT_EQ(f.store.optimistic_path_ops(s), 0u);
  }
  EXPECT_EQ(f.store.queue_path_ops(0) + f.store.queue_path_ops(1), 8u);
  EXPECT_TRUE(f.store.replicas_converged());
}

TEST(ShardedStore, OptimisticPolicyUsesOnlyOptimisticPath) {
  ShardedStoreConfig cfg;
  cfg.shards = 2;
  cfg.lock = LockPolicy::kOptimistic;
  Fixture f(cfg);
  auto p = put_batch(f, 1, {1, 2, 3, 4, 5, 6, 7, 8}, 0);
  f.sched.run();
  p.rethrow_if_failed();
  for (ShardId s = 0; s < 2; ++s) {
    EXPECT_EQ(f.store.queue_path_ops(s), 0u);
  }
  EXPECT_EQ(f.store.optimistic_path_ops(0) + f.store.optimistic_path_ops(1),
            8u);
}

TEST(ShardedStore, AdaptiveGateSpeculatesWhenAlone) {
  // A single writer never observes a busy lock, so the store-level EWMA
  // stays at zero and every write takes the optimistic path.
  ShardedStoreConfig cfg;
  cfg.shards = 1;
  cfg.lock = LockPolicy::kAdaptive;
  Fixture f(cfg);
  auto p = put_batch(f, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.store.queue_path_ops(0), 0u);
  EXPECT_EQ(f.store.optimistic_path_ops(0), 10u);
  EXPECT_DOUBLE_EQ(f.store.shard_history(0), 0.0);
}

TEST(ShardedStore, LockStatsCoverBothPaths) {
  // Whatever mix of protocols served the shard, one LockStats carries the
  // whole flight record: acquisitions == committed single-key writes.
  ShardedStoreConfig cfg;
  cfg.shards = 1;
  cfg.lock = LockPolicy::kQueue;
  Fixture f(cfg);
  auto a = put_batch(f, 0, {1, 2, 3}, 0);
  auto b = put_batch(f, 5, {4, 5, 6}, 0);
  f.sched.run();
  a.rethrow_if_failed();
  b.rethrow_if_failed();
  const auto& ls = f.store.lock_stats(0);
  EXPECT_EQ(ls.acquisitions, 6u);
  EXPECT_EQ(ls.acquire_ns.count(), 6u);
  EXPECT_EQ(ls.hold_ns.count(), 6u);
}

TEST(ShardedStore, FillReportRollsUpEveryShard) {
  ShardedStoreConfig cfg;
  cfg.shards = 3;
  Fixture f(cfg);
  auto p = put_batch(f, 0, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 0);
  f.sched.run();
  p.rethrow_if_failed();
  stats::ServiceReport report;
  f.store.fill_report(report);
  ASSERT_EQ(report.shards.size(), 3u);
  std::uint64_t committed = 0;
  for (const auto& s : report.shards) {
    EXPECT_TRUE(s.serializable());
    EXPECT_FALSE(s.lock_name.empty());
    committed += s.committed_writes;
  }
  EXPECT_EQ(committed, 12u);
  EXPECT_TRUE(report.serializable());
  EXPECT_GT(report.messages, 0u);
}

// The pre-Client methods must keep working until callers finish migrating:
// each shim delegates to the Client entry points, so values written through
// one surface read back identically through the other.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
sim::Process shim_ops(Fixture& f) {
  co_await f.store.put(0, 11, 110).join();
  std::vector<std::pair<Key, dsm::Word>> kvs;
  kvs.emplace_back(12, 120);
  kvs.emplace_back(13, 130);
  co_await f.store.multi_put(1, std::move(kvs)).join();
  std::vector<Key> rmw_keys;
  rmw_keys.push_back(11);
  co_await f.store.multi_rmw(2, std::move(rmw_keys), 5).join();
}

TEST(ShardedStore, DeprecatedShimsStillServe) {
  ShardedStoreConfig cfg;
  cfg.slots_per_shard = 16;
  Fixture f(cfg);
  auto p = shim_ops(f);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_EQ(f.store.get(3, 11), std::optional<dsm::Word>(115));
  EXPECT_EQ(f.store.get(4, 12), std::optional<dsm::Word>(120));
  EXPECT_EQ(f.store.get(5, 13), std::optional<dsm::Word>(130));
  // And the new surface observes the same state.
  EXPECT_EQ(read_now(f, 6, 11), std::optional<dsm::Word>(115));

  std::vector<std::optional<dsm::Word>> snap;
  auto g = f.store.multi_get(0, {11, 12, 13}, &snap);
  f.sched.run();
  g.rethrow_if_failed();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], std::optional<dsm::Word>(115));
  EXPECT_EQ(snap[1], std::optional<dsm::Word>(120));
  EXPECT_EQ(snap[2], std::optional<dsm::Word>(130));
  EXPECT_TRUE(f.store.replicas_converged());
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace optsync::shard
