#include "workloads/task_queue.hpp"

#include <gtest/gtest.h>

#include "dsm/types.hpp"

namespace optsync::workloads {
namespace {

TaskQueueParams small_params(std::uint32_t tasks = 64) {
  TaskQueueParams p;
  p.total_tasks = tasks;
  p.queue_capacity = 16;
  return p;
}

TEST(TaskQueueGwc, AllTasksExecutedExactlyOnce) {
  const auto topo = net::MeshTorus2D::near_square(5);
  const auto res = run_task_queue_gwc(small_params(), topo, dsm::DsmConfig{});
  EXPECT_EQ(res.tasks_executed, 64u);
  EXPECT_GT(res.elapsed, 0u);
  EXPECT_GT(res.network_power, 0.0);
}

TEST(TaskQueueGwc, SpeedupGrowsWithProcessors) {
  const auto p = small_params(128);
  const auto r3 =
      run_task_queue_gwc(p, net::MeshTorus2D::near_square(3), dsm::DsmConfig{});
  const auto r9 =
      run_task_queue_gwc(p, net::MeshTorus2D::near_square(9), dsm::DsmConfig{});
  EXPECT_GT(r9.network_power, r3.network_power * 1.5);
}

TEST(TaskQueueGwc, EfficiencyBelowOne) {
  const auto topo = net::MeshTorus2D::near_square(5);
  const auto res = run_task_queue_gwc(small_params(), topo, dsm::DsmConfig{});
  EXPECT_LT(res.avg_efficiency, 1.0);
  EXPECT_GT(res.avg_efficiency, 0.0);
}

TEST(TaskQueueIdeal, BeatsRealNetwork) {
  const auto topo = net::MeshTorus2D::near_square(9);
  const auto p = small_params(128);
  const auto ideal = run_task_queue_ideal(p, topo);
  const auto real = run_task_queue_gwc(p, topo, dsm::DsmConfig{});
  EXPECT_GE(ideal.network_power, real.network_power * 0.999);
  EXPECT_LT(ideal.elapsed, real.elapsed + 1);
}

TEST(TaskQueueEntry, AllTasksExecutedExactlyOnce) {
  const auto topo = net::MeshTorus2D::near_square(5);
  const auto res =
      run_task_queue_entry(small_params(), topo, net::LinkModel::paper());
  EXPECT_EQ(res.tasks_executed, 64u);
  EXPECT_GT(res.demand_fetches, 0u);
}

TEST(TaskQueueEntry, GwcOutperformsEntry) {
  // The Figure 2 headline, at test scale.
  const auto topo = net::MeshTorus2D::near_square(9);
  const auto p = small_params(128);
  const auto gwc = run_task_queue_gwc(p, topo, dsm::DsmConfig{});
  const auto entry = run_task_queue_entry(p, topo, net::LinkModel::paper());
  EXPECT_GT(gwc.network_power, entry.network_power);
}

TEST(TaskQueueEntry, PaysInvalidationAndFetchTraffic) {
  const auto topo = net::MeshTorus2D::near_square(5);
  const auto res =
      run_task_queue_entry(small_params(), topo, net::LinkModel::paper());
  EXPECT_GT(res.invalidation_rounds, 0u);
  EXPECT_GT(res.demand_fetches, 0u);
}

TEST(TaskQueueGwc, DeterministicAcrossRuns) {
  const auto topo = net::MeshTorus2D::near_square(5);
  const auto a = run_task_queue_gwc(small_params(), topo, dsm::DsmConfig{});
  const auto b = run_task_queue_gwc(small_params(), topo, dsm::DsmConfig{});
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.lock_acquisitions, b.lock_acquisitions);
}

TEST(TaskQueueGwc, SmallCapacityStillCompletes) {
  auto p = small_params(48);
  p.queue_capacity = 2;  // heavy producer blocking
  const auto topo = net::MeshTorus2D::near_square(3);
  const auto res = run_task_queue_gwc(p, topo, dsm::DsmConfig{});
  EXPECT_EQ(res.tasks_executed, 48u);
}

TEST(TaskQueueGwc, TwoNodeDegenerateCase) {
  // One producer, one consumer.
  const auto topo = net::MeshTorus2D::near_square(2);
  const auto res = run_task_queue_gwc(small_params(32), topo, dsm::DsmConfig{});
  EXPECT_EQ(res.tasks_executed, 32u);
  EXPECT_LE(res.network_power, 2.0);
}

class TaskQueueSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TaskQueueSizes, ConservationAcrossVariants) {
  const auto topo = net::MeshTorus2D::near_square(GetParam());
  const auto p = small_params(96);
  const auto gwc = run_task_queue_gwc(p, topo, dsm::DsmConfig{});
  const auto entry = run_task_queue_entry(p, topo, net::LinkModel::paper());
  const auto ideal = run_task_queue_ideal(p, topo);
  EXPECT_EQ(gwc.tasks_executed, 96u);
  EXPECT_EQ(entry.tasks_executed, 96u);
  EXPECT_EQ(ideal.tasks_executed, 96u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TaskQueueSizes,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{5}, std::size_t{9},
                                           std::size_t{17}));

}  // namespace
}  // namespace optsync::workloads
