// Elastic-fabric fault soak: the full reconfiguration repertoire — hot-key
// promotion, stripe split, online root migration, merge-back, demotion —
// executes mid-stream while the open-loop generator hammers the service
// over a lossy, duplicating, partitioned fiber. Every invariant must hold
// on every seed: the applied write stream of every shard group (hot groups
// included) is a gapless total order across each cut (streaming
// trace::GwcChecker), every shard's version word matches its committed
// write count, replicas converge after quiesce, and — in the leased
// partial-replication variant — the StaleReadAuditor records zero
// superseded serves across the moves. Seeds 1200+ keep the fault schedules
// disjoint from the other soak suites.
#include <gtest/gtest.h>

#include "dsm/system.hpp"
#include "elastic/directory_manager.hpp"
#include "elastic/migrator.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/coro.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"

namespace optsync {
namespace {

using shard::Key;
using shard::ShardId;

faults::FaultPlan elastic_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.06, "lock").drop(0.06, "data").duplicate(0.03);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 200'000);
  return plan;
}

struct GwcAudit {
  trace::Recorder recorder{1 << 10};
  trace::GwcChecker checker;
  GwcAudit() { checker.install(recorder); }
};

/// The scripted reconfiguration storm, serialized in one coroutine so at
/// most one directory mutation is in flight (the controller's own rule):
/// promote -> split -> migrate -> merge-back -> demote, spread across the
/// load window so each lands under different traffic and fault phases.
sim::Process reconfigure(shard::ShardedStore& store,
                         elastic::DirectoryManager& dir,
                         elastic::RootMigrator& mig, Key hot_key,
                         dsm::NodeId mig_to) {
  auto& sched = store.system().scheduler();
  const ShardId hot = store.base_shards();
  co_await sim::delay(sched, 120'000);
  co_await dir.promote(hot_key, hot).join();
  co_await sim::delay(sched, 250'000);
  co_await dir.split(0, 1).join();
  co_await sim::delay(sched, 250'000);
  co_await mig.migrate(0, mig_to).join();
  co_await sim::delay(sched, 250'000);
  co_await dir.merge_back(0).join();
  co_await sim::delay(sched, 250'000);
  co_await dir.demote(hot_key).join();
}

class ElasticFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElasticFaultSoak, ReconfigurationsSurviveDropsAndPartitions) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = elastic_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);
  ASSERT_TRUE(sys.reliable_transport());

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  scfg.policy = shard::ShardMap::Policy::kRange;
  scfg.key_space = 256;
  scfg.slots_per_shard = 16;
  scfg.elastic.enabled = true;
  scfg.elastic.hot_groups = 2;
  shard::ShardedStore store(sys, scfg);
  elastic::DirectoryManager dir(store);
  elastic::RootMigrator mig(store);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = 260;
  gcfg.rate_rps = 60'000.0;
  gcfg.keys.dist = load::KeyDist::kZipfian;
  gcfg.keys.keys = 256;
  gcfg.txn_fraction = 0.10;
  gcfg.node_span = 7;  // full replication: keep the control node client-free
  load::Generator gen(gcfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);

  // Zipf rank 1 is key 1 — the head the promotion targets. The migration
  // target is any member that is neither the current root nor the control
  // node.
  const dsm::NodeId cur = store.root_of(0);
  const dsm::NodeId mig_to = cur == 1 ? 2 : 1;
  auto storm = reconfigure(store, dir, mig, 1, mig_to);
  sched.run();
  drive.rethrow_if_failed();
  storm.rethrow_if_failed();
  store.fill_report(report);

  ASSERT_TRUE(gen.done());
  EXPECT_EQ(report.completed(), gcfg.requests);
  // The storm actually exercised every reconfiguration class.
  EXPECT_EQ(mig.stats().migrations, 1u) << "seed " << seed;
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(dir.stats().demotions, 1u);
  EXPECT_EQ(dir.stats().splits, 1u);
  EXPECT_EQ(dir.stats().merges, 1u);
  EXPECT_EQ(store.root_of(0), mig_to);
  // Invariant 2 on every shard, hot groups included.
  for (ShardId s = 0; s < store.shards(); ++s) {
    EXPECT_EQ(store.version(s),
              static_cast<dsm::Word>(store.committed_writes(s)))
        << "shard " << s << " seed " << seed;
  }
  EXPECT_TRUE(store.replicas_converged()) << "seed " << seed;
  // Invariant 1 across every cut: gapless, identical, no speculation.
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  EXPECT_GT(audit.checker.writes_checked(), 0u);
  EXPECT_GT(report.faults.drops_injected, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(DropPartitionSeeds, ElasticFaultSoak,
                         ::testing::Range<std::uint64_t>(1200, 1222));

// Partial replication + leases: the directory moves route through proxy
// chains, lease epochs travel with their slots, and the StaleReadAuditor
// independently witnesses that no leased read ever served a superseded
// value across a promotion/demotion cycle.
/// Promotion/split/merge/demotion cycle without a migration (roots stay
/// on server nodes; the proxy-chain reassign path is what's under test).
sim::Process lease_storm(shard::ShardedStore& store,
                         elastic::DirectoryManager& dir) {
  auto& sched = store.system().scheduler();
  const ShardId hot = store.base_shards();
  co_await sim::delay(sched, 150'000);
  co_await dir.promote(1, hot).join();
  co_await sim::delay(sched, 400'000);
  co_await dir.split(0, 2).join();
  co_await sim::delay(sched, 400'000);
  co_await dir.merge_back(0).join();
  co_await sim::delay(sched, 400'000);
  co_await dir.demote(1).join();
}

class ElasticLeaseSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElasticLeaseSoak, LeasedReadsStayEpochCleanAcrossMoves) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(8);
  GwcAudit audit;
  dsm::DsmConfig cfg;
  cfg.faults = elastic_attack(seed);
  cfg.recorder = &audit.recorder;
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = 4;
  scfg.policy = shard::ShardMap::Policy::kRange;
  scfg.key_space = 256;
  scfg.slots_per_shard = 16;
  scfg.elastic.enabled = true;
  scfg.elastic.hot_groups = 2;
  scfg.lease.enabled = true;
  scfg.lease.server_nodes = 4;
  scfg.lease.ttl_ns = 1'000'000;
  shard::ShardedStore store(sys, scfg);
  elastic::DirectoryManager dir(store);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed ^ 0x1ea5e;
  gcfg.requests = 220;
  gcfg.rate_rps = 50'000.0;
  gcfg.keys.dist = load::KeyDist::kZipfian;
  gcfg.keys.keys = 256;
  gcfg.read_fraction = 0.5;
  gcfg.read_level = shard::ConsistencyLevel::kLeased;
  load::Generator gen(gcfg);
  stats::ServiceReport report;
  shard::Client client(store);
  auto drive = gen.run(client, report);

  auto storm = lease_storm(store, dir);
  sched.run();
  drive.rethrow_if_failed();
  storm.rethrow_if_failed();
  store.fill_report(report);

  ASSERT_TRUE(gen.done());
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(dir.stats().demotions, 1u);
  EXPECT_EQ(dir.stats().splits, 1u);
  EXPECT_EQ(dir.stats().merges, 1u);
  for (ShardId s = 0; s < store.shards(); ++s) {
    EXPECT_EQ(store.version(s),
              static_cast<dsm::Word>(store.committed_writes(s)))
        << "shard " << s << " seed " << seed;
  }
  EXPECT_TRUE(store.replicas_converged()) << "seed " << seed;
  EXPECT_TRUE(audit.checker.ok()) << audit.checker.report();
  ASSERT_NE(store.leases(), nullptr);
  EXPECT_TRUE(store.leases()->auditor().ok())
      << store.leases()->auditor().report();
}

INSTANTIATE_TEST_SUITE_P(LeasedMoveSeeds, ElasticLeaseSoak,
                         ::testing::Range<std::uint64_t>(1300, 1310));

}  // namespace
}  // namespace optsync
