#include <gtest/gtest.h>

#include <sstream>

#include "simkern/assert.hpp"
#include "stats/metrics.hpp"
#include "stats/table.hpp"
#include "stats/timeline.hpp"

namespace optsync::stats {
namespace {

// ------------------------------------------------------------- metrics ---

TEST(EfficiencyMeter, NetworkPowerIsUsefulOverElapsed) {
  EfficiencyMeter m(4);
  m.add_useful(0, 500);
  m.add_useful(1, 250);
  m.add_useful(1, 250);
  EXPECT_DOUBLE_EQ(m.network_power(1000), 1.0);
  EXPECT_DOUBLE_EQ(m.average_efficiency(1000), 0.25);
  EXPECT_DOUBLE_EQ(m.efficiency(0, 1000), 0.5);
  EXPECT_DOUBLE_EQ(m.efficiency(2, 1000), 0.0);
}

TEST(EfficiencyMeter, ZeroElapsedSafe) {
  EfficiencyMeter m(2);
  m.add_useful(0, 10);
  EXPECT_EQ(m.network_power(0), 0.0);
  EXPECT_EQ(m.efficiency(0, 0), 0.0);
}

TEST(EfficiencyMeter, ResetClears) {
  EfficiencyMeter m(2);
  m.add_useful(1, 100);
  m.reset();
  EXPECT_EQ(m.useful(1), 0u);
}

TEST(EfficiencyMeter, OutOfRangeNodeThrows) {
  EfficiencyMeter m(2);
  EXPECT_THROW(m.add_useful(5, 1), std::out_of_range);
}

// --------------------------------------------------------------- table ---

TEST(Table, AlignsAndPrintsAllRows) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"10", "20", "30"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

// ------------------------------------------------------------ timeline ---

TEST(Timeline, RecordsAndTotals) {
  Timeline tl(2);
  tl.record(0, 0, 100, Activity::kCompute);
  tl.record(0, 100, 150, Activity::kWait);
  tl.record(1, 0, 50, Activity::kMutex);
  EXPECT_EQ(tl.total(0, Activity::kCompute), 100u);
  EXPECT_EQ(tl.total(0, Activity::kWait), 50u);
  EXPECT_EQ(tl.total(1, Activity::kMutex), 50u);
  EXPECT_EQ(tl.total(1, Activity::kWait), 0u);
}

TEST(Timeline, ZeroLengthIntervalIgnored) {
  Timeline tl(1);
  tl.record(0, 5, 5, Activity::kCompute);
  EXPECT_EQ(tl.total(0, Activity::kCompute), 0u);
}

TEST(Timeline, InvalidIntervalRejected) {
  Timeline tl(1);
  EXPECT_THROW(tl.record(0, 10, 5, Activity::kCompute), ContractViolation);
  EXPECT_THROW(tl.record(3, 0, 5, Activity::kCompute), ContractViolation);
}

TEST(Timeline, RenderContainsGlyphsAndNames) {
  Timeline tl(2);
  tl.record(0, 0, 500, Activity::kCompute);
  tl.record(1, 500, 1000, Activity::kWait);
  tl.annotate(1, 750, "interrupt");
  std::ostringstream os;
  tl.render(os, 1000, 40, {"CPU1", "CPU2"});
  const auto out = os.str();
  EXPECT_NE(out.find("CPU1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
  EXPECT_NE(out.find("interrupt"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(ScopedActivity, RecordsOnDestruction) {
  sim::Scheduler sched;
  Timeline tl(1);
  sched.at(100, [] {});
  {
    ScopedActivity act(tl, 0, Activity::kCompute, sched);
    sched.run();
  }
  EXPECT_EQ(tl.total(0, Activity::kCompute), 100u);
}

TEST(ScopedActivity, StopIsIdempotent) {
  sim::Scheduler sched;
  Timeline tl(1);
  sched.at(50, [] {});
  ScopedActivity act(tl, 0, Activity::kWait, sched);
  sched.run();
  act.stop();
  act.stop();
  EXPECT_EQ(tl.total(0, Activity::kWait), 50u);
}

}  // namespace
}  // namespace optsync::stats
