#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace optsync::net {
namespace {

TEST(LinkModel, PaperConstants) {
  const auto link = LinkModel::paper();
  EXPECT_EQ(link.hop_latency_ns, 200u);
  EXPECT_EQ(link.ns_per_byte, 8u);  // 1 Gbit/s
  // 3 hops, 16 bytes: 3*200 + 16*8 = 728 ns.
  EXPECT_EQ(link.delay(3, 16), 728u);
}

TEST(LinkModel, ZeroModelIsFree) {
  const auto link = LinkModel::zero();
  EXPECT_EQ(link.delay(10, 1000), 0u);
}

TEST(LinkModel, SelfDeliveryPaysSerializationOnly) {
  const auto link = LinkModel::paper();
  EXPECT_EQ(link.delay(0, 16), 128u);
}

TEST(CpuModel, PaperConstants) {
  const auto cpu = CpuModel::paper();
  // 33 flops at 33 MFLOPS = 1 us.
  EXPECT_EQ(cpu.flops_time(33), 1'000u);
  // 400 bytes at 400 MB/s = 1 us.
  EXPECT_EQ(cpu.mem_time(400), 1'000u);
}

TEST(Network, DeliversAfterModelDelay) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  sim::Time delivered_at = 0;
  net.send(0, 3, 16, "test", [&] { delivered_at = sched.now(); });
  sched.run();
  // 0 -> 3 on a 2x2 torus is 2 hops: 2*200 + 16*8 = 528.
  EXPECT_EQ(delivered_at, 528u);
  EXPECT_EQ(net.latency(0, 3, 16), 528u);
}

TEST(Network, ExplicitHopsOverrideShortestPath) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  sim::Time delivered_at = 0;
  net.send_hops(0, 3, 5, 16, "test", [&] { delivered_at = sched.now(); });
  sched.run();
  EXPECT_EQ(delivered_at, 5u * 200 + 128);
}

TEST(Network, StatsAccumulate) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  net.send(0, 1, 16, "a", [] {});
  net.send(0, 3, 32, "b", [] {});
  sched.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 48u);
  EXPECT_EQ(net.stats().hop_bytes, 16u * 1 + 32u * 2);
}

TEST(Network, FifoBetweenSamePair) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.send(0, 1, 16, "m", [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Network, TraceHookSeesEveryDelivery) {
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::paper());
  std::vector<MessageTrace> traces;
  net.set_trace_hook([&](const MessageTrace& t) { traces.push_back(t); });
  net.send(1, 2, 24, "hello", [] {});
  sched.run();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].src, 1u);
  EXPECT_EQ(traces[0].dst, 2u);
  EXPECT_EQ(traces[0].bytes, 24u);
  EXPECT_EQ(traces[0].tag, "hello");
  EXPECT_EQ(traces[0].sent_at, 0u);
  EXPECT_GT(traces[0].delivered_at, 0u);
}

TEST(Network, ZeroDelayStillAsynchronous) {
  // Even with zero latency, delivery happens via a scheduler event — the
  // callback must not run inline during send().
  sim::Scheduler sched;
  const MeshTorus2D topo(2, 2);
  Network net(sched, topo, LinkModel::zero());
  bool delivered = false;
  net.send(0, 1, 16, "m", [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  sched.run();
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace optsync::net
