#include "sync/gwc_lock.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::sync {
namespace {

using dsm::DsmConfig;
using dsm::DsmSystem;
using dsm::GroupId;
using dsm::VarId;
using dsm::Word;
using net::NodeId;

struct Fixture {
  explicit Fixture(std::size_t n, NodeId root = 0)
      : topo(net::MeshTorus2D::near_square(n)), sys(sched, topo, DsmConfig{}) {
    std::vector<NodeId> members;
    for (NodeId i = 0; i < n; ++i) members.push_back(i);
    group = sys.create_group(members, root);
    lock_var = sys.define_lock("L", group);
  }
  sim::Scheduler sched;
  net::MeshTorus2D topo;
  DsmSystem sys;
  GroupId group = 0;
  VarId lock_var = 0;
};

sim::Process acquire_release(Fixture& f, GwcQueueLock& lk, NodeId n,
                             sim::Duration hold, int* active,
                             int* max_active) {
  co_await lk.acquire(n).join();
  *active += 1;
  *max_active = std::max(*max_active, *active);
  co_await sim::delay(f.sched, hold);
  *active -= 1;
  lk.release(n);
}

TEST(GwcQueueLock, SingleAcquireRelease) {
  Fixture f(4);
  GwcQueueLock lk(f.sys, f.lock_var);
  int active = 0, max_active = 0;
  auto p = acquire_release(f, lk, 2, 1000, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(lk.stats().acquisitions, 1u);
  EXPECT_EQ(lk.stats().releases, 1u);
  EXPECT_EQ(max_active, 1);
}

TEST(GwcQueueLock, MutualExclusionUnderContention) {
  Fixture f(9);
  GwcQueueLock lk(f.sys, f.lock_var);
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (NodeId n = 0; n < 9; ++n) {
    procs.push_back(acquire_release(f, lk, n, 500, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);  // never two holders
  EXPECT_EQ(lk.stats().acquisitions, 9u);
}

TEST(GwcQueueLock, GrantWithinOneRoundTripOfFree) {
  // "A processor always receives exclusive access within one or one half
  // round-trip time of the lock being freed."
  Fixture f(16, /*root=*/0);
  GwcQueueLock lk(f.sys, f.lock_var);
  const NodeId holder = 1, waiter = 15;

  sim::Time released_at = 0;
  sim::Time granted_at = 0;
  auto p1 = [](Fixture& fx, GwcQueueLock& lock, NodeId n, sim::Time* rel)
      -> sim::Process {
    co_await lock.acquire(n).join();
    co_await sim::delay(fx.sched, 10'000);
    *rel = fx.sched.now();
    lock.release(n);
  }(f, lk, holder, &released_at);
  auto p2 = [](Fixture& fx, GwcQueueLock& lock, NodeId n, sim::Time* got)
      -> sim::Process {
    co_await sim::delay(fx.sched, 2'000);  // request while p1 holds
    co_await lock.acquire(n).join();
    *got = fx.sched.now();
    lock.release(n);
  }(f, lk, waiter, &granted_at);
  f.sched.run();
  p1.rethrow_if_failed();
  p2.rethrow_if_failed();

  // Upper bound: release travels waiter->root is irrelevant; the grant takes
  // holder->root (release) + root->waiter (grant) plus bookkeeping.
  const auto& grp = f.sys.group(f.group);
  const auto& link = f.sys.config().link;
  const sim::Duration bound =
      link.delay(grp.up_hops(holder), f.sys.config().lock_bytes) +
      link.delay(grp.down_hops(waiter), f.sys.config().lock_bytes) +
      2 * f.sys.config().root_process_ns + 100;
  EXPECT_LE(granted_at - released_at, bound);
}

TEST(GwcQueueLock, FifoGrantOrder) {
  Fixture f(8);
  GwcQueueLock lk(f.sys, f.lock_var);
  std::vector<NodeId> grant_order;
  std::vector<sim::Process> procs;
  auto worker = [&f, &lk, &grant_order](NodeId n,
                                        sim::Duration start) -> sim::Process {
    co_await sim::delay(f.sched, start);
    co_await lk.acquire(n).join();
    grant_order.push_back(n);
    co_await sim::delay(f.sched, 300);
    lk.release(n);
  };
  // Stagger requests far enough apart that arrival order at the root is the
  // request order (all at least one max-RTT apart).
  for (NodeId n = 0; n < 8; ++n) {
    procs.push_back(worker(n, static_cast<sim::Duration>(n) * 10'000));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  ASSERT_EQ(grant_order.size(), 8u);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(grant_order[n], n);
}

TEST(GwcQueueLock, ThreeMessagesPerUncontendedCycle) {
  // "There is no network traffic except three one-way messages to request,
  // grant, and release the lock" — plus the grant/free multicasts to the
  // other members, which is the eagersharing of the lock value itself.
  Fixture f(2, /*root=*/0);
  GwcQueueLock lk(f.sys, f.lock_var);
  int active = 0, max_active = 0;
  auto p = acquire_release(f, lk, 1, 100, &active, &max_active);
  f.sched.run();
  p.rethrow_if_failed();
  // request(1->0), grant multicast (2 members), release(1->0),
  // free multicast (2 members) = 6 messages on a 2-node group.
  EXPECT_EQ(f.sys.network().stats().messages, 6u);
}

TEST(GwcQueueLock, ReleaseWithoutHoldRejected) {
  Fixture f(4);
  GwcQueueLock lk(f.sys, f.lock_var);
  EXPECT_THROW(lk.release(2), ContractViolation);
}

TEST(GwcQueueLock, HeldByReflectsLocalCopy) {
  Fixture f(4);
  GwcQueueLock lk(f.sys, f.lock_var);
  EXPECT_FALSE(lk.held_by(1));
  auto p = [](GwcQueueLock& lock) -> sim::Process {
    co_await lock.acquire(1).join();
    EXPECT_TRUE(lock.held_by(1));
    EXPECT_FALSE(lock.held_by(2));
    lock.release(1);
  }(lk);
  f.sched.run();
  p.rethrow_if_failed();
}

TEST(GwcQueueLock, WaitStatsTracked) {
  Fixture f(4);
  GwcQueueLock lk(f.sys, f.lock_var);
  int active = 0, max_active = 0;
  std::vector<sim::Process> procs;
  for (NodeId n = 0; n < 4; ++n) {
    procs.push_back(acquire_release(f, lk, n, 2'000, &active, &max_active));
  }
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_GT(lk.stats().total_wait_ns, 0u);
  EXPECT_GE(lk.stats().max_wait_ns, 6'000u);  // last waiter sat through 3 holds
}

class GwcLockStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GwcLockStress, RepeatedCyclesStayExclusive) {
  const std::size_t n = GetParam();
  Fixture f(n);
  GwcQueueLock lk(f.sys, f.lock_var);
  int active = 0, max_active = 0;
  std::uint64_t completed = 0;
  sim::Rng rng(n * 131);

  auto worker = [&](NodeId me, std::uint64_t seed) -> sim::Process {
    sim::Rng local(seed);
    for (int k = 0; k < 12; ++k) {
      co_await sim::delay(f.sched, local.below(5'000));
      co_await lk.acquire(me).join();
      active += 1;
      max_active = std::max(max_active, active);
      co_await sim::delay(f.sched, 200 + local.below(600));
      active -= 1;
      lk.release(me);
      ++completed;
    }
  };
  std::vector<sim::Process> procs;
  for (NodeId i = 0; i < n; ++i) procs.push_back(worker(i, rng.next()));
  f.sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  EXPECT_EQ(max_active, 1);
  EXPECT_EQ(completed, n * 12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GwcLockStress,
                         ::testing::Values(std::size_t{2}, std::size_t{5},
                                           std::size_t{9}, std::size_t{16}));

}  // namespace
}  // namespace optsync::sync
