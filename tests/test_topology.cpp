#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "simkern/assert.hpp"

namespace optsync::net {
namespace {

// Reference BFS distance for cross-checking analytic hop counts.
unsigned bfs_distance(const Topology& t, NodeId a, NodeId b) {
  if (a == b) return 0;
  std::vector<int> dist(t.size(), -1);
  std::deque<NodeId> frontier{a};
  dist[a] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const NodeId nb : t.neighbors(cur)) {
      if (dist[nb] != -1) continue;
      dist[nb] = dist[cur] + 1;
      if (nb == b) return static_cast<unsigned>(dist[nb]);
      frontier.push_back(nb);
    }
  }
  ADD_FAILURE() << "disconnected topology";
  return 0;
}

TEST(FullyConnected, EverythingOneHop) {
  FullyConnected t(5);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      EXPECT_EQ(t.hop_count(a, b), a == b ? 0u : 1u);
    }
  }
}

TEST(FullyConnected, NeighborsExcludeSelf) {
  FullyConnected t(4);
  const auto nb = t.neighbors(2);
  EXPECT_EQ(nb.size(), 3u);
  EXPECT_EQ(std::count(nb.begin(), nb.end(), 2u), 0);
}

TEST(Ring, HopCountWrapsAround) {
  Ring t(10);
  EXPECT_EQ(t.hop_count(0, 1), 1u);
  EXPECT_EQ(t.hop_count(0, 9), 1u);
  EXPECT_EQ(t.hop_count(0, 5), 5u);
  EXPECT_EQ(t.hop_count(2, 8), 4u);
}

TEST(Ring, TwoNodeRingHasOneNeighbor) {
  Ring t(2);
  EXPECT_EQ(t.neighbors(0), std::vector<NodeId>{1});
  EXPECT_EQ(t.neighbors(1), std::vector<NodeId>{0});
}

TEST(Ring, SingleNodeHasNoNeighbors) {
  Ring t(1);
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(MeshTorus2D, NearSquareFactorsExactly) {
  for (std::size_t n : {1u, 2u, 4u, 12u, 16u, 30u, 128u, 129u, 257u}) {
    const auto t = MeshTorus2D::near_square(n);
    EXPECT_EQ(t.size(), n);
    EXPECT_LE(t.rows(), t.cols());
  }
}

TEST(MeshTorus2D, NearSquareOfSquareIsSquare) {
  const auto t = MeshTorus2D::near_square(64);
  EXPECT_EQ(t.rows(), 8u);
  EXPECT_EQ(t.cols(), 8u);
}

TEST(MeshTorus2D, PrimeDegeneratesToRingShape) {
  const auto t = MeshTorus2D::near_square(13);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 13u);
}

TEST(MeshTorus2D, CompactStaysNearSquare) {
  // compact(n) trades a few idle slots for a sane aspect ratio.
  const auto t129 = MeshTorus2D::compact(129);
  EXPECT_EQ(t129.rows(), 11u);
  EXPECT_EQ(t129.cols(), 12u);
  EXPECT_GE(t129.size(), 129u);

  const auto t257 = MeshTorus2D::compact(257);
  EXPECT_EQ(t257.rows(), 16u);
  EXPECT_GE(t257.size(), 257u);

  const auto t16 = MeshTorus2D::compact(16);
  EXPECT_EQ(t16.rows(), 4u);
  EXPECT_EQ(t16.cols(), 4u);
  EXPECT_EQ(t16.size(), 16u);  // exact when n is a square
}

TEST(MeshTorus2D, CompactNeverWastesMoreThanOneRow) {
  for (std::size_t n = 2; n <= 300; ++n) {
    const auto t = MeshTorus2D::compact(n);
    EXPECT_GE(t.size(), n);
    EXPECT_LT(t.size() - n, t.rows());
  }
}

TEST(MeshTorus2D, HopCountMatchesBfs) {
  const MeshTorus2D t(4, 6);
  for (NodeId a = 0; a < t.size(); a += 5) {
    for (NodeId b = 0; b < t.size(); ++b) {
      EXPECT_EQ(t.hop_count(a, b), bfs_distance(t, a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(MeshTorus2D, NeighborsAreMutual) {
  const MeshTorus2D t(3, 5);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (const NodeId b : t.neighbors(a)) {
      const auto back = t.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(MeshTorus2D, NoDuplicateNeighbors) {
  const MeshTorus2D t(2, 2);
  for (NodeId a = 0; a < t.size(); ++a) {
    const auto nb = t.neighbors(a);
    const std::set<NodeId> uniq(nb.begin(), nb.end());
    EXPECT_EQ(uniq.size(), nb.size());
  }
}

TEST(Hypercube, HopCountIsHammingDistance) {
  Hypercube t(16);
  EXPECT_EQ(t.hop_count(0b0000, 0b1111), 4u);
  EXPECT_EQ(t.hop_count(0b0101, 0b0100), 1u);
  EXPECT_EQ(t.hop_count(3, 3), 0u);
}

TEST(Hypercube, RequiresPowerOfTwo) {
  EXPECT_THROW(Hypercube(12), ContractViolation);
  EXPECT_NO_THROW(Hypercube(1));
  EXPECT_NO_THROW(Hypercube(8));
}

TEST(Hypercube, DegreeIsLogN) {
  Hypercube t(32);
  EXPECT_EQ(t.neighbors(7).size(), 5u);
}

TEST(Factory, MakesAllKinds) {
  EXPECT_EQ(make_topology(TopologyKind::kFullyConnected, 6)->size(), 6u);
  EXPECT_EQ(make_topology(TopologyKind::kRing, 6)->size(), 6u);
  EXPECT_EQ(make_topology(TopologyKind::kMeshTorus, 6)->size(), 6u);
  EXPECT_EQ(make_topology(TopologyKind::kHypercube, 8)->size(), 8u);
}

class HopCountSymmetry
    : public ::testing::TestWithParam<std::tuple<TopologyKind, std::size_t>> {
};

TEST_P(HopCountSymmetry, Symmetric) {
  const auto [kind, n] = GetParam();
  const auto t = make_topology(kind, n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a; b < n; ++b) {
      EXPECT_EQ(t->hop_count(a, b), t->hop_count(b, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, HopCountSymmetry,
    ::testing::Combine(::testing::Values(TopologyKind::kFullyConnected,
                                         TopologyKind::kRing,
                                         TopologyKind::kMeshTorus),
                       ::testing::Values(std::size_t{2}, std::size_t{7},
                                         std::size_t{16})));

class TriangleInequality
    : public ::testing::TestWithParam<std::tuple<TopologyKind, std::size_t>> {
};

TEST_P(TriangleInequality, Holds) {
  const auto [kind, n] = GetParam();
  const auto t = make_topology(kind, n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      for (NodeId c = 0; c < n; c += 3) {
        EXPECT_LE(t->hop_count(a, b),
                  t->hop_count(a, c) + t->hop_count(c, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TriangleInequality,
    ::testing::Combine(::testing::Values(TopologyKind::kFullyConnected,
                                         TopologyKind::kRing,
                                         TopologyKind::kMeshTorus,
                                         TopologyKind::kHypercube),
                       ::testing::Values(std::size_t{8}, std::size_t{16})));

}  // namespace
}  // namespace optsync::net
