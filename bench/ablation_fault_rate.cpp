// Ablation F: synchronization cost versus message-loss rate.
//
// Sweeps the injected drop probability on lock and data traffic and measures
// what the reliability layer pays to keep GWC intact: lock latency (sync
// overhead per section), rollback rate, retransmissions, and the worst-case
// delivery delay. The paper assumes loss-free hardware retransmission; this
// table shows how gracefully the protocol degrades when loss is real.
//
// Flags:
//   --seed N     fault-schedule and workload seed (default 42)
//   --nodes N    CPUs (default 16)
//   --incr N     increments per node (default 30)
//   --think NS   mean think time in ns (default 50000)
//   --csv        emit machine-readable CSV only
#include <iostream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "stats/metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/counter.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;
  util::Flags flags(argc, argv);
  bench::Harness harness("ablation_fault_rate", flags);
  harness.allow_only(flags, {"nodes", "incr", "think", "csv"});
  auto& metrics = harness.metrics();
  const auto seed = harness.seed();
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  const auto incr = static_cast<std::uint32_t>(flags.get_int("incr", 30));
  const auto think = static_cast<sim::Duration>(flags.get_int("think", 50'000));
  const bool csv = flags.get_bool("csv");

  const auto topo = net::MeshTorus2D::near_square(nodes);
  const double drop_rates[] = {0.0, 0.01, 0.02, 0.05, 0.10};

  if (csv) {
    std::cout << "drop_p,method,sections_per_ms,sync_overhead_ns,messages,"
                 "rollbacks," << stats::fault_report_csv_header() << "\n";
  } else {
    std::cout << "Ablation: fault rate sweep (" << nodes << " CPUs, " << incr
              << " incr/node, seed " << seed << ")\n"
              << "Drop probability applies to lock and data tags; the\n"
              << "reliable channel retransmits until delivery.\n\n";
  }

  for (const auto method : {workloads::CounterMethod::kOptimisticGwc,
                            workloads::CounterMethod::kRegularGwc}) {
    const char* name = method == workloads::CounterMethod::kOptimisticGwc
                           ? "optimistic"
                           : "regular";
    stats::Table table({"drop p", "sections/ms", "sync overhead", "rollbacks",
                        "drops", "rexmits", "max extra delay"});
    for (const double drop : drop_rates) {
      workloads::CounterParams p;
      p.increments_per_node = incr;
      p.think_mean_ns = think;
      p.seed = seed;
      harness.apply(p.dsm);
      if (drop > 0.0) {
        p.dsm.faults = faults::FaultPlan(seed);
        p.dsm.faults.drop(drop, "lock").drop(drop, "data");
      } else {
        // Rate 0 still routes through the reliable channel so the sweep
        // measures loss, not the ack overhead discontinuity.
        p.dsm.reliable.enabled = true;
      }
      const auto res = workloads::run_counter(method, p, topo);
      if (res.final_count != res.expected_count) {
        std::cout << "MUTUAL EXCLUSION VIOLATION at drop " << drop << " ("
                  << name << "): " << res.final_count
                  << " != " << res.expected_count << "\n";
        return 1;
      }
      metrics
          .row(std::string(name) + ",drop=" + stats::Table::num(drop))
          .set("sections_per_ms", res.sections_per_ms)
          .set("sync_overhead_ns", res.avg_sync_overhead_ns)
          .set("messages", static_cast<double>(res.messages))
          .set("rollbacks", static_cast<double>(res.rollbacks))
          .set("drops_injected", static_cast<double>(res.faults.drops_injected))
          .set("retransmits", static_cast<double>(res.faults.retransmits))
          .set("expired_acked", static_cast<double>(res.faults.expired_acked))
          .set("revivals", static_cast<double>(res.faults.revivals))
          .set("max_delivery_delay_ns",
               static_cast<double>(res.faults.max_delivery_delay_ns));
      if (drop == drop_rates[4]) {
        auto ls = res.lock_stats;
        ls.name = "ctr.lock/" + std::string(name) + "/drop=0.10";
        metrics.lock(ls);
      }
      if (csv) {
        std::cout << drop << "," << name << "," << res.sections_per_ms << ","
                  << res.avg_sync_overhead_ns << "," << res.messages << ","
                  << res.rollbacks << ","
                  << stats::fault_report_csv_row(res.faults) << "\n";
      } else {
        table.add_row(
            {stats::Table::num(drop), stats::Table::num(res.sections_per_ms),
             sim::format_time(static_cast<sim::Time>(res.avg_sync_overhead_ns)),
             std::to_string(res.rollbacks),
             std::to_string(res.faults.drops_injected),
             std::to_string(res.faults.retransmits),
             sim::format_time(res.faults.max_delivery_delay_ns)});
      }
    }
    if (!csv) {
      std::cout << "--- " << name << " GWC ---\n";
      table.print(std::cout);
      std::cout << "\n";
    }
  }
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
