// Regenerates the paper's Figure 8: "Mutex Methods (Network Power in CPUs)".
//
// A single wavefront circulates a ring of N processors (1024 data items,
// 1024/N iterations each); every hop performs local computation, one
// uncontended critical section (mutex:local compute = 1:5), and passes a
// datum to the next processor. Four lines:
//   no-delay    — zero network delay bound ("linear pipelining keeps the
//                 maximum below 2"; paper value 1.89),
//   optimistic  — optimistic mutual exclusion under GWC (paper: 1.68 @ 2
//                 CPUs, 1.15 @ 128),
//   regular     — non-optimistic GWC queue lock (paper: 1.53 @ 2, 1.03 @ 128),
//   entry       — entry consistency (paper: 0.81 @ 2, 0.64 @ 128).
// Headline ratios (paper §4.1): optimistic is ~1.1x regular GWC and ~2.1x
// entry consistency.
#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/pipeline.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;
  using workloads::PipelineMethod;

  const util::Flags flags(argc, argv);
  bench::Harness harness("fig8_mutex_methods", flags);
  harness.allow_only(flags, {"quick"});
  auto& metrics = harness.metrics();
  const bool quick = flags.get_bool("quick");
  std::vector<std::size_t> sizes = {2, 4, 8, 16, 32, 64};
  if (!quick) sizes.push_back(128);

  workloads::PipelineParams params;
  harness.apply(params.dsm);

  std::cout << "Figure 8: mutex methods — network power in CPUs\n"
            << "(pipeline of " << params.data_items
            << " data items; mutex:local compute = 1:"
            << static_cast<int>(1.0 / params.mutex_ratio + 0.5)
            << "; square mesh torus, 200ns hops, 1Gb/s links)\n\n";

  stats::Table table({"CPUs", "no-delay", "optimistic", "regular GWC",
                      "entry", "opt/reg", "opt/entry", "rollbacks"});

  double opt2 = 0, reg2 = 0, entry2 = 0;
  for (const std::size_t n : sizes) {
    const auto topo = net::MeshTorus2D::near_square(n);

    const auto nodelay =
        run_pipeline(PipelineMethod::kNoDelay, params, topo);
    const auto opt = run_pipeline(PipelineMethod::kOptimistic, params, topo);
    const auto reg = run_pipeline(PipelineMethod::kRegular, params, topo);
    const auto entry = run_pipeline(PipelineMethod::kEntry, params, topo);

    if (n == 2) {
      opt2 = opt.network_power;
      reg2 = reg.network_power;
      entry2 = entry.network_power;
    }

    table.add_row(
        {std::to_string(n), stats::Table::num(nodelay.network_power),
         stats::Table::num(opt.network_power),
         stats::Table::num(reg.network_power),
         stats::Table::num(entry.network_power),
         stats::Table::num(opt.network_power /
                           std::max(reg.network_power, 1e-9)),
         stats::Table::num(opt.network_power /
                           std::max(entry.network_power, 1e-9)),
         std::to_string(opt.rollbacks)});
    metrics.row("cpus=" + std::to_string(n))
        .set("nodelay_power", nodelay.network_power)
        .set("optimistic_power", opt.network_power)
        .set("regular_power", reg.network_power)
        .set("entry_power", entry.network_power)
        .set("rollbacks", static_cast<double>(opt.rollbacks));
    if (n == sizes.back()) {
      auto opt_ls = opt.lock_stats;
      opt_ls.name = "pipe.lock/optimistic";
      metrics.lock(opt_ls);
      auto reg_ls = reg.lock_stats;
      reg_ls.name = "pipe.lock/regular";
      metrics.lock(reg_ls);
    }
  }

  table.print(std::cout);
  std::cout << "\nat 2 CPUs: optimistic " << stats::Table::num(opt2)
            << ", regular " << stats::Table::num(reg2) << ", entry "
            << stats::Table::num(entry2) << "\n"
            << "paper:     optimistic 1.68, regular 1.53, entry 0.81"
               " (no-delay bound 1.89)\n"
            << "paper summary: optimistic ~1.1x regular GWC, ~2.1x entry"
               " consistency; no rollbacks occur.\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
