// §1.1 reproduction: the remote-access spectrum — demand fetch vs
// eagersharing.
//
// "Demand-fetch protocols do not scale well; for many important parallel
// algorithms, they do not execute efficiently on more than a few dozen
// processors. ... Eagersharing of writes allows efficient execution in much
// larger networks than does demand-fetch access."
//
// Workload: one producer repeatedly updates a shared datum; all other nodes
// read it after every update (the reader-heavy sharing pattern eagersharing
// targets). Under demand fetch every update invalidates N-1 cached copies
// and triggers N-1 fetch round trips; under eagersharing the update is one
// sequenced multicast and every read is a local hit.
//
// A second workload inverts the pattern — the datum is written often but
// read rarely — where demand fetch's "network traffic is minimized" claim
// wins on messages.
#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "dsm/demand_fetch.hpp"
#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

using namespace optsync;

namespace {

struct Result {
  sim::Time elapsed = 0;
  std::uint64_t messages = 0;
  double avg_read_stall_ns = 0;
};

constexpr int kRounds = 64;
constexpr sim::Duration kGap = 2'000;  // producer update period

// --- demand fetch ---------------------------------------------------------

Result run_demand(std::size_t n, int reads_per_round) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(n);
  net::Network net(sched, topo, net::LinkModel::paper());
  dsm::DemandFetchStore store(net, dsm::DemandFetchStore::Config{});
  const auto v = store.define("x", 0, 0);

  sim::Duration read_stall = 0;
  std::uint64_t reads = 0;
  std::vector<sim::Process> procs;

  auto producer = [&]() -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      co_await store.write(0, v, r).join();
    }
  };
  auto reader = [&](net::NodeId me) -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      for (int k = 0; k < reads_per_round; ++k) {
        const sim::Time t0 = sched.now();
        dsm::Word out = 0;
        co_await store.read(me, v, &out).join();
        read_stall += sched.now() - t0;
        ++reads;
      }
    }
  };
  procs.push_back(producer());
  for (net::NodeId i = 1; i < n; ++i) procs.push_back(reader(i));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  Result res;
  res.elapsed = sched.now();
  res.messages = net.stats().messages;
  res.avg_read_stall_ns =
      reads == 0 ? 0 : static_cast<double>(read_stall) /
                           static_cast<double>(reads);
  return res;
}

// --- eagersharing ----------------------------------------------------------

Result run_eager(std::size_t n, int reads_per_round,
                 const dsm::DsmConfig& dcfg) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(n);
  dsm::DsmSystem sys(sched, topo, dcfg);
  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < n; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto v = sys.define_data("x", g, 0);

  sim::Duration read_stall = 0;  // eager reads are local: stays zero
  std::uint64_t reads = 0;
  std::vector<sim::Process> procs;

  auto producer = [&]() -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      sys.node(0).write(v, r);
    }
  };
  auto reader = [&](net::NodeId me) -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      for (int k = 0; k < reads_per_round; ++k) {
        const sim::Time t0 = sched.now();
        co_await sim::delay(sched, 25);  // local load
        (void)sys.node(me).read(v);
        read_stall += sched.now() - t0 - 25;
        ++reads;
      }
    }
  };
  procs.push_back(producer());
  for (net::NodeId i = 1; i < n; ++i) procs.push_back(reader(i));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();

  Result res;
  res.elapsed = sched.now();
  res.messages = sys.network().stats().messages;
  res.avg_read_stall_ns =
      reads == 0 ? 0 : static_cast<double>(read_stall) /
                           static_cast<double>(reads);
  return res;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Flags flags(argc, argv);
  bench::Harness harness("spectrum_remote_access", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();
  dsm::DsmConfig dcfg;
  harness.apply(dcfg);
  std::cout << "Remote-access spectrum (§1.1): demand fetch vs eagersharing\n"
            << "(1 producer updating every " << sim::format_time(kGap)
            << ", " << kRounds << " rounds)\n\n";

  std::cout << "--- reader-heavy: every node reads after every update ---\n";
  stats::Table hot({"CPUs", "demand read stall", "eager read stall",
                    "demand msgs", "eager msgs"});
  for (const std::size_t n : {4, 16, 64}) {
    const auto d = run_demand(n, 1);
    const auto e = run_eager(n, 1, dcfg);
    hot.add_row({std::to_string(n),
                 sim::format_time(static_cast<sim::Time>(d.avg_read_stall_ns)),
                 sim::format_time(static_cast<sim::Time>(e.avg_read_stall_ns)),
                 std::to_string(d.messages), std::to_string(e.messages)});
    metrics.row("reader-heavy,cpus=" + std::to_string(n))
        .set("demand_read_stall_ns", d.avg_read_stall_ns)
        .set("eager_read_stall_ns", e.avg_read_stall_ns)
        .set("demand_messages", static_cast<double>(d.messages))
        .set("eager_messages", static_cast<double>(e.messages));
  }
  hot.print(std::cout);

  std::cout << "\n--- write-mostly: readers sample 1 round in 16 ---\n";
  stats::Table cold({"CPUs", "demand msgs", "eager msgs"});
  for (const std::size_t n : {4, 16, 64}) {
    // Model rare reads by reading once every 16 rounds: run 1/16 the reads.
    const auto d = run_demand(n, 0);       // writes only: demand sends nothing
    const auto e = run_eager(n, 0, dcfg);  // eagersharing still multicasts
    cold.add_row({std::to_string(n), std::to_string(d.messages),
                  std::to_string(e.messages)});
    metrics.row("write-mostly,cpus=" + std::to_string(n))
        .set("demand_messages", static_cast<double>(d.messages))
        .set("eager_messages", static_cast<double>(e.messages));
  }
  cold.print(std::cout);

  std::cout << "\npaper: eagersharing keeps remote data pre-delivered (zero"
               " read stalls)\nat the price of multicast traffic; demand"
               " fetch minimizes traffic but stalls\nevery post-update read"
               " — and the stalls grow with machine size.\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
