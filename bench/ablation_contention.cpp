// Ablation B: synchronization methods across a contention sweep.
//
// Compares per-section synchronization overhead and total throughput of
//   optimistic GWC, regular GWC, entry consistency, and a test-and-set spin
// lock, on the shared-counter workload, as contention rises. Shows the
// paper's claims off the figure axes: queue locks beat repeated testing in
// DSM (§1.3), GWC beats entry consistency, and optimism pays off exactly
// when the lock is usually free.
#include <iostream>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/counter.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;
  using workloads::CounterMethod;

  util::Flags flags(argc, argv);
  bench::Harness harness("ablation_contention", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();
  const auto seed = harness.seed();

  const auto topo = net::MeshTorus2D::near_square(16);
  const sim::Duration think_levels[] = {800'000, 100'000, 10'000, 2'000};

  std::cout << "Ablation: method comparison across contention\n"
            << "(16 CPUs, shared counter, 1us sections)\n\n";

  for (const auto think : think_levels) {
    std::cout << "--- mean think time " << sim::format_time(think) << " ---\n";
    stats::Table table({"method", "sections/ms", "sync overhead", "messages",
                        "rollbacks", "notes"});
    struct Row {
      CounterMethod method;
      const char* name;
    };
    const Row rows[] = {
        {CounterMethod::kOptimisticGwc, "optimistic GWC"},
        {CounterMethod::kRegularGwc, "regular GWC"},
        {CounterMethod::kEntry, "entry consistency"},
        {CounterMethod::kTasSpin, "test-and-set spin"},
    };
    for (const auto& row : rows) {
      workloads::CounterParams p;
      p.increments_per_node = 40;
      p.think_mean_ns = think;
      p.seed = seed;
      harness.apply(p.dsm);
      const auto res = run_counter(row.method, p, topo);
      if (res.final_count != res.expected_count) {
        std::cout << "MUTUAL EXCLUSION VIOLATION under " << row.name << ": "
                  << res.final_count << " != " << res.expected_count << "\n";
        return 1;
      }
      std::string notes;
      if (row.method == CounterMethod::kOptimisticGwc) {
        notes = std::to_string(res.optimistic_successes) + "/" +
                std::to_string(res.optimistic_attempts) + " speculations ok";
      } else if (row.method == CounterMethod::kTasSpin) {
        notes = std::to_string(res.spin_attempts) + " TAS round trips";
      }
      table.add_row({row.name, stats::Table::num(res.sections_per_ms),
                     sim::format_time(
                         static_cast<sim::Time>(res.avg_sync_overhead_ns)),
                     std::to_string(res.messages),
                     std::to_string(res.rollbacks), notes});
      metrics
          .row("think=" + std::to_string(think) + "," + std::string(row.name))
          .set("sections_per_ms", res.sections_per_ms)
          .set("sync_overhead_ns", res.avg_sync_overhead_ns)
          .set("messages", static_cast<double>(res.messages))
          .set("rollbacks", static_cast<double>(res.rollbacks));
      if (row.method == CounterMethod::kOptimisticGwc ||
          row.method == CounterMethod::kRegularGwc) {
        auto ls = res.lock_stats;
        ls.name = std::string("ctr.lock/") + row.name +
                  "/think=" + std::to_string(think);
        metrics.lock(ls);
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
