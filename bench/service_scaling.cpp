// Service scaling: goodput and tail latency of the sharded DSM service as
// the shard count grows.
//
// Single-root sequencing is the GWC scaling bottleneck — every write of a
// group funnels through one root node. The sharded service breaks the
// namespace into independent groups, each with its own root and lock, so
// unrelated keys never contend. This bench quantifies the payoff: for each
// shard count in {1, 2, 4, 8, 16} it sweeps an open-loop offered load
// (fixed rate PER SHARD, so total offered load grows with the shard count)
// and reports goodput plus write p50/p99/p999. The run fails loudly if
// peak goodput does not increase monotonically with the shard count — the
// claim the subsystem exists to make — or if any per-shard serializability
// ledger or replica-convergence check breaks.
//
// Keys are drawn uniformly (hash sharding then spreads them evenly); use
// tools/dsm_service to explore skewed (Zipfian) traffic, burst arrivals,
// and fault injection on the same service stack.
#include <algorithm>
#include <array>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "dsm/system.hpp"
#include "elastic/controller.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "net/topology.hpp"
#include "shard/client.hpp"
#include "shard/coalesce_controller.hpp"
#include "shard/sharded_store.hpp"
#include "stats/table.hpp"
#include "telemetry/sampler.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"
#include "util/flags.hpp"

namespace {

using namespace optsync;

struct RunResult {
  stats::ServiceReport report;
  bool converged = false;
};

RunResult run_service(bench::Harness& harness, std::uint32_t nodes,
                      std::uint32_t shards, double per_shard_rate,
                      std::uint64_t requests_per_shard, std::uint64_t seed,
                      telemetry::Tracer* tracer = nullptr,
                      bool zipfian = false) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(nodes);
  dsm::DsmConfig cfg;
  harness.apply(cfg);
  // The grid shares the harness tracer (spans accumulate, unanalyzed); the
  // attribution stage passes a fresh one so its analysis covers one run.
  if (tracer != nullptr) cfg.tracer = tracer;
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = shards;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = requests_per_shard * shards;
  gcfg.rate_rps = per_shard_rate * shards;
  gcfg.keys.dist = zipfian ? load::KeyDist::kZipfian : load::KeyDist::kUniform;
  gcfg.keys.keys = 1024;
  gcfg.read_fraction = 0.25;
  gcfg.txn_fraction = 0.05;
  load::Generator gen(gcfg);

  RunResult res;
  shard::Client client(store);
  auto drive = gen.run(client, res.report);
  sched.run();
  store.fill_report(res.report);
  res.converged = store.replicas_converged();
  if (!gen.done()) throw std::runtime_error("generator did not finish");
  return res;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  bench::Harness harness("service_scaling", flags);
  harness.allow_only(flags, {"nodes", "requests-per-shard"});
  auto& metrics = harness.metrics();

  const auto nodes =
      static_cast<std::uint32_t>(flags.get_int("nodes", 16));
  const auto requests_per_shard = static_cast<std::uint64_t>(
      flags.get_int("requests-per-shard", 400));

  const std::uint32_t shard_counts[] = {1, 2, 4, 8, 16};
  // Offered load per shard (req/s). The top levels push a single shard's
  // root past saturation, which is exactly where extra shards pay; 400k is
  // past every shard's capacity (~680k req/s single-shard lock hand-off
  // ceiling shared across its offered mix), so the peak-goodput row reads
  // the service's true saturation throughput.
  const double rate_levels[] = {25'000, 50'000, 100'000, 200'000, 400'000};

  std::cout << "Service scaling: sharded DSM KV service, " << nodes
            << " nodes, open-loop load (uniform keys, 25% reads, 5% txns)\n"
            << "offered load is per shard; peak goodput must rise with the"
               " shard count\n\n";

  double prev_peak = 0.0;
  bool ok = true;
  for (const std::uint32_t shards : shard_counts) {
    stats::Table table({"per-shard req/s", "offered req/s", "goodput req/s",
                        "w.p50", "w.p99", "w.p999", "messages"});
    double peak = 0.0;
    for (std::size_t li = 0; li < std::size(rate_levels); ++li) {
      const double rate = rate_levels[li];
      // Per-run seed: deterministic in --seed, distinct per grid point.
      const std::uint64_t run_seed =
          harness.seed() ^ (0x9e3779b97f4a7c15ull * (shards * 16 + li + 1));
      const auto res = run_service(harness, nodes, shards, rate,
                                   requests_per_shard, run_seed);
      const auto& r = res.report;
      if (!r.serializable() || !res.converged) {
        std::cout << "SERVICE INVARIANT VIOLATION at shards=" << shards
                  << " rate=" << rate << " (serializable="
                  << r.serializable() << ", converged=" << res.converged
                  << ")\n";
        ok = false;
      }
      const auto w = r.merged_latency(stats::ServiceOp::kWrite);
      peak = std::max(peak, r.goodput_rps());
      table.add_row(
          {stats::Table::num(rate), stats::Table::num(r.offered_rps),
           stats::Table::num(r.goodput_rps()),
           sim::format_time(static_cast<sim::Time>(w.p50())),
           sim::format_time(static_cast<sim::Time>(w.p99())),
           sim::format_time(static_cast<sim::Time>(w.p999())),
           std::to_string(r.messages)});

      const std::string label =
          "shards=" + std::to_string(shards) + ",rate=" +
          std::to_string(static_cast<std::uint64_t>(rate));
      metrics.row(label)
          .set("shards", shards)
          .set("per_shard_rps", rate)
          .set("offered_rps", r.offered_rps)
          .set("goodput_rps", r.goodput_rps())
          .set("write_p50_ns", static_cast<double>(w.p50()))
          .set("write_p99_ns", static_cast<double>(w.p99()))
          .set("write_p999_ns", static_cast<double>(w.p999()))
          .set("messages", static_cast<double>(r.messages))
          .set("elapsed_ns", static_cast<double>(r.elapsed_ns));
      for (const auto& s : r.shards) {
        const auto& sw = s.op(stats::ServiceOp::kWrite).latency_ns;
        const auto& sr = s.op(stats::ServiceOp::kRead).latency_ns;
        metrics.row(label + ",shard=" + std::to_string(s.shard))
            .set("write_p50_ns", static_cast<double>(sw.p50()))
            .set("write_p99_ns", static_cast<double>(sw.p99()))
            .set("write_p999_ns", static_cast<double>(sw.p999()))
            .set("read_p99_ns", static_cast<double>(sr.p99()))
            .set("completed",
                 static_cast<double>(s.op(stats::ServiceOp::kWrite).completed +
                                     s.op(stats::ServiceOp::kRead).completed +
                                     s.op(stats::ServiceOp::kTxn).completed));
        auto ls = s.lock;
        ls.name = label + "/" + ls.name;
        metrics.lock(ls);
      }
    }
    std::cout << "--- " << shards << " shard" << (shards == 1 ? "" : "s")
              << " (peak goodput " << static_cast<std::uint64_t>(peak)
              << " req/s) ---\n";
    table.print(std::cout);
    std::cout << "\n";
    if (peak <= prev_peak) {
      std::cout << "SCALING REGRESSION: peak goodput at " << shards
                << " shards (" << peak << " req/s) did not exceed the "
                << "previous shard count's peak (" << prev_peak
                << " req/s)\n";
      ok = false;
    }
    prev_peak = peak;
  }

  // --- latency attribution (causal tracing) ------------------------------
  // One skewed (Zipfian) run with a fresh tracer: hot keys pile onto a few
  // shards, so the queue-wait and coalesce legs actually show up. The
  // critical-path sweep must attribute >= 95% of total measured latency to
  // named buckets (the rest is "other" — uninstrumented time).
  {
    telemetry::Tracer tracer;
    const auto res =
        run_service(harness, nodes, /*shards=*/4, /*per_shard_rate=*/50'000,
                    requests_per_shard, harness.seed() ^ 0xa77b0ull, &tracer,
                    /*zipfian=*/true);
    const telemetry::Analysis an = tracer.analyze();
    std::cout << "--- latency attribution (Zipfian, 4 shards, 50k req/s per"
                 " shard; "
              << an.ops.size() << " traced ops) ---\n";
    stats::Table atable({"bucket", "time", "share", "path share"});
    auto& arow = metrics.row("attribution");
    for (std::size_t b = 0; b < telemetry::kBucketCount; ++b) {
      const std::string name(
          telemetry::bucket_name(static_cast<telemetry::Bucket>(b)));
      const double share =
          an.total_latency == 0
              ? 0.0
              : static_cast<double>(an.totals[b]) /
                    static_cast<double>(an.total_latency);
      const double path_share =
          an.total_latency == 0
              ? 0.0
              : static_cast<double>(an.path_totals[b]) /
                    static_cast<double>(an.total_latency);
      atable.add_row({name, sim::format_time(static_cast<sim::Time>(an.totals[b])),
                      stats::Table::num(100.0 * share) + "%",
                      stats::Table::num(100.0 * path_share) + "%"});
      arow.set(name + "_ns", static_cast<double>(an.totals[b]));
      arow.set("path_" + name + "_ns",
               static_cast<double>(an.path_totals[b]));
      arow.set("path_" + name + "_share", path_share);
    }
    // The forensics gate reads the TAIL: over the slowest 1% of traced ops
    // (by request latency), how much of their latency does the critical
    // path land in a named segment? A good sweep number can hide a tail
    // whose slow ops are unexplained — the p99 cut cannot.
    std::vector<sim::Duration> latencies;
    latencies.reserve(an.ops.size());
    for (const auto& op : an.ops) latencies.push_back(op.total());
    std::sort(latencies.begin(), latencies.end());
    const sim::Duration p99_cut =
        latencies.empty()
            ? 0
            : latencies[latencies.size() - 1 -
                        std::min(latencies.size() - 1, latencies.size() / 100)];
    sim::Duration p99_total = 0;
    sim::Duration p99_other = 0;
    std::array<std::uint64_t, telemetry::kBucketCount> verdicts{};
    for (const auto& op : an.ops) {
      ++verdicts[static_cast<std::size_t>(op.dominant_path_bucket())];
      if (op.total() < p99_cut) continue;
      p99_total += op.total();
      p99_other += op.path_buckets[static_cast<std::size_t>(
          telemetry::Bucket::kOther)];
    }
    const double p99_path_named =
        p99_total == 0 ? 1.0
                       : static_cast<double>(p99_total - p99_other) /
                             static_cast<double>(p99_total);
    arow.set("total_latency_ns", static_cast<double>(an.total_latency))
        .set("named_fraction", an.named_fraction())
        .set("path_named_fraction", an.path_named_fraction())
        .set("p99_path_named_fraction", p99_path_named)
        .set("orphan_spans", static_cast<double>(an.orphan_spans))
        .set("traced_ops", static_cast<double>(an.ops.size()));
    atable.print(std::cout);
    std::cout << "named buckets cover "
              << stats::Table::num(100.0 * an.named_fraction())
              << "% of measured latency; critical path names "
              << stats::Table::num(100.0 * an.path_named_fraction())
              << "% overall, "
              << stats::Table::num(100.0 * p99_path_named)
              << "% of the p99 tail\n"
              << "dominant path verdicts:";
    for (std::size_t b = 0; b < telemetry::kBucketCount; ++b) {
      if (verdicts[b] == 0) continue;
      std::cout << " "
                << telemetry::bucket_name(static_cast<telemetry::Bucket>(b))
                << "=" << verdicts[b];
    }
    std::cout << "\n\n";
    if (an.orphan_spans != 0 || an.incomplete_ops != 0) {
      std::cout << "ATTRIBUTION VIOLATION: " << an.orphan_spans
                << " orphan spans, " << an.incomplete_ops
                << " incomplete ops (span trees must be complete)\n";
      ok = false;
    }
    if (an.named_fraction() < 0.95) {
      std::cout << "ATTRIBUTION VIOLATION: named buckets cover only "
                << stats::Table::num(100.0 * an.named_fraction())
                << "% of measured latency (need >= 95%)\n";
      ok = false;
    }
    if (p99_path_named < 0.95) {
      std::cout << "ATTRIBUTION VIOLATION: critical path names only "
                << stats::Table::num(100.0 * p99_path_named)
                << "% of the p99 tail's latency (need >= 95%)\n";
      ok = false;
    }
    if (!res.report.serializable() || !res.converged) {
      std::cout << "SERVICE INVARIANT VIOLATION in the attribution run\n";
      ok = false;
    }
  }

  // --- verified streams (GWC checker + applied-log equality) -------------
  // One saturated run with the full event checker streaming off the flight
  // recorder AND every member's applied-write log captured: beyond the
  // ledger/convergence checks above, this proves every replica of every
  // shard applied the same canonical (seq, var, value, origin) stream —
  // identical across members except for the root echoes of a member's own
  // mutex-data writes, which Fig. 6 hardware blocking drops by design. The
  // goodput numbers describe a correct service, not a fast broken one.
  {
    sim::Scheduler sched;
    const auto topo = net::MeshTorus2D::near_square(nodes);
    dsm::DsmConfig cfg;
    harness.apply(cfg);
    trace::Recorder rec(1 << 12);  // ring may evict; the checker streams
    trace::GwcChecker checker;
    checker.install(rec);
    cfg.recorder = &rec;
    dsm::DsmSystem sys(sched, topo, cfg);
    for (dsm::NodeId n = 0; n < static_cast<dsm::NodeId>(topo.size()); ++n) {
      sys.node(n).enable_applied_log(true);
    }

    shard::ShardedStoreConfig scfg;
    scfg.shards = 4;
    shard::ShardedStore store(sys, scfg);

    load::GeneratorConfig gcfg;
    gcfg.seed = harness.seed() ^ 0x5ea1edull;
    gcfg.requests = requests_per_shard * 4;
    gcfg.rate_rps = 200'000.0 * 4;
    gcfg.keys.keys = 1024;
    gcfg.read_fraction = 0.25;
    gcfg.txn_fraction = 0.05;
    load::Generator gen(gcfg);
    stats::ServiceReport report;
    shard::Client client(store);
    auto drive = gen.run(client, report);
    sched.run();
    store.fill_report(report);

    std::uint64_t compared_writes = 0;
    bool streams_identical = true;
    for (std::uint32_t s = 0; s < store.shards(); ++s) {
      const auto g = store.group_of(s);
      const auto& members = sys.group(g).members();
      // Hardware blocking (Fig. 6) makes each member drop the root echo of
      // its OWN mutex-data writes, so member logs are not literally equal:
      // member m's log must be the group's canonical sequenced stream minus
      // exactly those echoes. Merge the canonical stream from every member
      // (each write survives on all but one replica), insisting that any
      // seq seen twice carries the same (var, value, origin), then check
      // each member applied exactly its expected subsequence in order.
      std::map<std::uint64_t, dsm::DsmNode::AppliedUpdate> canon;
      for (const dsm::NodeId m : members) {
        for (const auto& u : sys.node(m).applied_log(g)) {
          auto [it, fresh] = canon.emplace(u.seq, u);
          if (!fresh &&
              (it->second.var != u.var || it->second.value != u.value ||
               it->second.origin != u.origin)) {
            streams_identical = false;
          }
        }
      }
      compared_writes += canon.size();
      for (const dsm::NodeId m : members) {
        const auto& log = sys.node(m).applied_log(g);
        std::size_t i = 0;
        for (const auto& [seq, u] : canon) {
          const bool echo_dropped =
              u.origin == m &&
              sys.var(u.var).kind == dsm::VarKind::kMutexData;
          if (echo_dropped) continue;
          if (i >= log.size() || log[i].seq != seq || log[i].var != u.var ||
              log[i].value != u.value || log[i].origin != u.origin) {
            streams_identical = false;
            break;
          }
          ++i;
        }
        if (i != log.size()) streams_identical = false;
      }
    }
    std::cout << "--- verified streams (4 shards, 200k req/s per shard) ---\n"
              << "GWC checker: " << checker.report() << " ("
              << checker.writes_checked() << " writes checked)\n"
              << "applied-log equality: "
              << (streams_identical ? "identical" : "DIVERGED") << " across "
              << topo.size() << " members, " << compared_writes
              << " canonical sequenced writes (own mutex echoes excluded "
                 "per Fig. 6 hardware blocking)\n\n";
    if (!checker.ok() || !streams_identical || !report.serializable() ||
        !store.replicas_converged()) {
      std::cout << "STREAM VERIFICATION VIOLATION\n";
      ok = false;
    }
    metrics.row("verified_streams")
        .set("writes_checked", static_cast<double>(checker.writes_checked()))
        .set("applied_writes", static_cast<double>(compared_writes))
        .set("streams_identical", streams_identical ? 1.0 : 0.0)
        .set("checker_ok", checker.ok() ? 1.0 : 0.0);
  }

  // --- adaptive coalescing vs unbatched -----------------------------------
  // Same saturated 4-shard workload twice: once unbatched (the default),
  // once with the telemetry-driven CoalesceController setting each shard's
  // frame cap from its live backlog. The controller must cut the message
  // count materially without giving up goodput — batching only where the
  // backlog proves it free.
  {
    struct AdaptiveResult {
      stats::ServiceReport report;
      bool converged = false;
      std::uint32_t peak_cap = 1;
      std::uint64_t raises = 0;
    };
    auto run_once = [&](bool adaptive) {
      sim::Scheduler sched;
      const auto topo = net::MeshTorus2D::near_square(nodes);
      dsm::DsmConfig cfg;
      harness.apply(cfg);
      dsm::DsmSystem sys(sched, topo, cfg);
      shard::ShardedStoreConfig scfg;
      scfg.shards = 4;
      shard::ShardedStore store(sys, scfg);
      load::GeneratorConfig gcfg;
      gcfg.seed = harness.seed() ^ 0xadab7ull;  // same seed both runs
      // Long enough that the steady state dominates: goodput is
      // completed/elapsed, and a short run charges the final frames' fill
      // latency against the whole quotient.
      gcfg.requests = std::max<std::uint64_t>(requests_per_shard, 2400) * 4;
      // Well past the ~400k req/s a single shard sustains: the backlog
      // signal must actually fire, or the controller (correctly) leaves
      // every cap at the floor and this stage measures nothing.
      gcfg.rate_rps = 1'000'000.0 * 4;
      gcfg.keys.keys = 1024;
      gcfg.read_fraction = 0.25;
      gcfg.txn_fraction = 0.05;
      load::Generator gen(gcfg);
      AdaptiveResult res;
      shard::Client client(store);
      auto drive = gen.run(client, res.report);
      shard::CoalesceController ctrl(store, res.report);
      if (adaptive) ctrl.start();
      sched.run();
      store.fill_report(res.report);
      res.converged = store.replicas_converged();
      for (std::uint32_t s = 0; s < store.shards(); ++s) {
        res.peak_cap = std::max(res.peak_cap, ctrl.peak_cap(s));
        res.raises += ctrl.raises(s);
      }
      if (!gen.done()) throw std::runtime_error("generator did not finish");
      return res;
    };
    const auto fixed = run_once(false);
    const auto adaptive = run_once(true);
    const double msg_ratio =
        adaptive.report.messages == 0
            ? 0.0
            : static_cast<double>(fixed.report.messages) /
                  static_cast<double>(adaptive.report.messages);
    const double goodput_ratio =
        fixed.report.goodput_rps() == 0
            ? 0.0
            : adaptive.report.goodput_rps() / fixed.report.goodput_rps();
    std::cout << "--- adaptive coalescing (4 shards, 1M req/s per shard,"
                 " saturated) ---\n"
              << "unbatched: " << fixed.report.messages << " messages, "
              << static_cast<std::uint64_t>(fixed.report.goodput_rps())
              << " req/s goodput\n"
              << "adaptive:  " << adaptive.report.messages << " messages, "
              << static_cast<std::uint64_t>(adaptive.report.goodput_rps())
              << " req/s goodput (peak cap " << adaptive.peak_cap << ", "
              << adaptive.raises << " raises)\n"
              << "message reduction " << stats::Table::num(msg_ratio)
              << "x at " << stats::Table::num(100.0 * goodput_ratio)
              << "% of unbatched goodput\n\n";
    if (msg_ratio < 1.3 || goodput_ratio < 0.9) {
      std::cout << "ADAPTIVE COALESCING REGRESSION: need >= 1.3x message "
                   "reduction at >= 90% goodput\n";
      ok = false;
    }
    if (!fixed.report.serializable() || !fixed.converged ||
        !adaptive.report.serializable() || !adaptive.converged) {
      std::cout << "SERVICE INVARIANT VIOLATION in the adaptive stage\n";
      ok = false;
    }
    metrics.row("adaptive_coalescing")
        .set("messages_unbatched", static_cast<double>(fixed.report.messages))
        .set("messages_adaptive",
             static_cast<double>(adaptive.report.messages))
        .set("message_ratio", msg_ratio)
        .set("goodput_unbatched_rps", fixed.report.goodput_rps())
        .set("goodput_adaptive_rps", adaptive.report.goodput_rps())
        .set("goodput_ratio", goodput_ratio)
        .set("peak_cap", static_cast<double>(adaptive.peak_cap))
        .set("cap_raises", static_cast<double>(adaptive.raises));
  }

  // --- leased read replicas (partial replication, read-heavy) -------------
  // Sixteen shards whose groups span only nodes [0, 4); the other twelve
  // nodes are pure clients. Under a 95/5 read/write Zipfian mix every
  // client read in the leases-off baseline is a round trip into one of the
  // four server nodes, whose outbound links are the capacity ceiling. The
  // lease tier turns repeat reads into zero-message local serves, so the
  // SAME seed with leases on must deliver at least 2x the goodput — that is
  // the number the tier exists to produce. A fault-seeded soak (drops and
  // duplicates across every message class, including the lease RPCs) then
  // re-runs the leased configuration with the GWC checker streaming and the
  // stale-read auditor required clean: the speedup may not cost the
  // staleness bound.
  {
    struct LeaseRun {
      stats::ServiceReport report;
      bool converged = false;
      bool auditor_ok = true;
      std::uint64_t audit_checks = 0;
      std::uint64_t hits = 0;
      std::uint64_t grants = 0;
      std::uint64_t invals = 0;
      std::uint64_t remote = 0;
    };
    auto run_once = [&](bool leases, std::uint64_t seed,
                        const faults::FaultPlan* plan,
                        trace::GwcChecker* checker) {
      sim::Scheduler sched;
      const auto topo = net::MeshTorus2D::near_square(nodes);
      dsm::DsmConfig cfg;
      harness.apply(cfg);
      trace::Recorder rec(1 << 12);
      if (plan != nullptr) cfg.faults = *plan;
      if (checker != nullptr) {
        checker->install(rec);
        cfg.recorder = &rec;
      }
      dsm::DsmSystem sys(sched, topo, cfg);
      shard::ShardedStoreConfig scfg;
      scfg.shards = 16;
      scfg.lease.server_nodes = 4;
      scfg.lease.enabled = leases;
      shard::ShardedStore store(sys, scfg);
      load::GeneratorConfig gcfg;
      gcfg.seed = seed;
      gcfg.requests = std::max<std::uint64_t>(requests_per_shard, 400) * 16;
      // Well past the ~6M RPC/s the four server nodes' serializers sustain
      // (4 x 1/650ns): the leases-off baseline must queue on the fan-in
      // ceiling for the comparison to measure the tier, not the load.
      gcfg.rate_rps = 1'200'000.0 * 16;
      gcfg.keys.dist = load::KeyDist::kZipfian;
      gcfg.keys.keys = 1024;
      gcfg.read_fraction = 0.95;
      gcfg.txn_fraction = 0.0;
      gcfg.read_level = shard::ConsistencyLevel::kLeased;
      load::Generator gen(gcfg);
      LeaseRun res;
      shard::Client client(store);
      auto drive = gen.run(client, res.report);
      sched.run();
      store.fill_report(res.report);
      res.converged = store.replicas_converged();
      const auto& aud = store.leases()->auditor();
      res.auditor_ok = aud.ok();
      res.audit_checks = aud.checks();
      for (const auto& s : res.report.shards) {
        res.hits += s.lease_hits;
        res.grants += s.lease_grants;
        res.invals += s.lease_invalidations;
        res.remote += s.remote_reads;
      }
      if (!gen.done()) throw std::runtime_error("generator did not finish");
      return res;
    };

    const std::uint64_t lease_seed = harness.seed() ^ 0x1ea5edull;
    const auto off = run_once(false, lease_seed, nullptr, nullptr);
    const auto on = run_once(true, lease_seed, nullptr, nullptr);
    const double speedup =
        off.report.goodput_rps() == 0.0
            ? 0.0
            : on.report.goodput_rps() / off.report.goodput_rps();
    const double hit_total = static_cast<double>(on.hits + on.grants +
                                                 on.remote);
    const double hit_rate =
        hit_total > 0.0 ? static_cast<double>(on.hits) / hit_total : 0.0;
    std::cout << "--- leased read replicas (16 shards on 4 server nodes,"
                 " 95/5 Zipfian) ---\n"
              << "leases off: "
              << static_cast<std::uint64_t>(off.report.goodput_rps())
              << " req/s goodput, " << off.report.messages << " messages\n"
              << "leases on:  "
              << static_cast<std::uint64_t>(on.report.goodput_rps())
              << " req/s goodput, " << on.report.messages << " messages ("
              << on.hits << " local serves, " << on.grants << " grants, "
              << on.invals << " invalidations)\n"
              << "read-heavy speedup " << stats::Table::num(speedup)
              << "x at " << stats::Table::num(100.0 * hit_rate)
              << "% lease hit rate\n";
    if (speedup < 2.0) {
      std::cout << "LEASE SPEEDUP REGRESSION: leased reads delivered only "
                << stats::Table::num(speedup)
                << "x the leases-off goodput (need >= 2x)\n";
      ok = false;
    }
    if (!off.report.serializable() || !off.converged ||
        !on.report.serializable() || !on.converged || !on.auditor_ok) {
      std::cout << "SERVICE INVARIANT VIOLATION in the lease stage\n";
      ok = false;
    }
    metrics.row("lease_read_heavy")
        .set("goodput_off_rps", off.report.goodput_rps())
        .set("goodput_on_rps", on.report.goodput_rps())
        .set("speedup", speedup)
        .set("messages_off", static_cast<double>(off.report.messages))
        .set("messages_on", static_cast<double>(on.report.messages))
        .set("lease_hits", static_cast<double>(on.hits))
        .set("lease_grants", static_cast<double>(on.grants))
        .set("lease_invalidations", static_cast<double>(on.invals))
        .set("remote_reads", static_cast<double>(on.remote))
        .set("hit_rate", hit_rate)
        .set("audit_checks", static_cast<double>(on.audit_checks))
        .set("auditor_ok", on.auditor_ok ? 1.0 : 0.0);

    // Fault-seeded soak over the leased configuration.
    std::uint64_t soak_checks = 0;
    std::uint64_t soak_writes = 0;
    bool soak_ok = true;
    for (std::uint64_t fs = 1; fs <= 3; ++fs) {
      faults::FaultPlan plan(fs);
      plan.drop(0.08, "lock").drop(0.08, "data").drop(0.08, "lease")
          .drop(0.08, "svc").duplicate(0.04);
      trace::GwcChecker checker;
      const auto res = run_once(true, lease_seed ^ (fs << 8), &plan,
                                &checker);
      soak_checks += res.audit_checks;
      soak_writes += checker.writes_checked();
      if (!checker.ok() || !res.auditor_ok || !res.report.serializable() ||
          !res.converged) {
        std::cout << "LEASE SOAK VIOLATION at fault seed " << fs
                  << " (gwc=" << checker.ok()
                  << ", auditor=" << res.auditor_ok
                  << ", serializable=" << res.report.serializable()
                  << ", converged=" << res.converged << ")\n";
        soak_ok = false;
      }
    }
    std::cout << "fault soak (3 seeds, drops+duplicates on all message"
                 " classes): "
              << (soak_ok ? "clean" : "VIOLATIONS") << " — " << soak_checks
              << " audited lease serves, " << soak_writes
              << " GWC-checked writes\n\n";
    if (!soak_ok) ok = false;
    metrics.row("lease_fault_soak")
        .set("seeds", 3.0)
        .set("audit_checks", static_cast<double>(soak_checks))
        .set("gwc_writes_checked", static_cast<double>(soak_writes))
        .set("clean", soak_ok ? 1.0 : 0.0);
  }

  // --- elastic fabric under a hotspot shift --------------------------------
  // Range-partitioned Zipfian traffic whose popularity head JUMPS to the
  // opposite half of the key space halfway through the schedule. Both runs
  // replay the IDENTICAL plan (same seed, same node span, shift included);
  // the static fabric funnels the post-shift head through one drowning
  // shard root until the drain completes, while the elastic control plane
  // re-pins, re-splits, and re-roots around the new hotspot. The gate is
  // the post-shift goodput ratio — elastic must deliver >= 1.5x static —
  // with the GWC event checker streaming on both runs and every
  // ledger/convergence check clean: reconfiguration may not cost a single
  // sequenced write.
  {
    struct ShiftRun {
      stats::ServiceReport report;
      bool converged = false;
      bool checker_ok = true;
      std::uint64_t writes_checked = 0;
      std::uint64_t actions = 0;
      std::uint64_t migrations = 0;
      std::uint64_t splits = 0;
      std::uint64_t merges = 0;
      std::uint64_t promotions = 0;
      std::uint64_t demotions = 0;
      std::uint64_t redirects = 0;
      std::uint64_t client_redirects = 0;
    };
    const std::uint64_t shift_requests =
        std::max<std::uint64_t>(requests_per_shard, 600) * 8;
    const std::uint64_t shift_at = shift_requests / 2;

    load::GeneratorConfig gbase;
    gbase.seed = harness.seed() ^ 0xe1a57ull;
    gbase.requests = shift_requests;
    // Well past the hot stripe's root capacity: under Zipf 0.99 on the
    // range policy ~80% of the traffic lands in ONE quarter of the key
    // space, so the static fabric's post-shift drain is bound by a single
    // sequencer while the elastic one sheds the head onto hot groups.
    gbase.rate_rps = 2'000'000.0;
    gbase.keys.dist = load::KeyDist::kZipfian;
    gbase.keys.keys = 1024;
    gbase.keys.shift_at_request = shift_at;
    gbase.keys.shift_offset = 512;  // head jumps to the opposite half
    gbase.node_span = nodes - 1;    // the elastic control node stays client-free
    gbase.read_fraction = 0.25;
    gbase.txn_fraction = 0.05;

    // The shift instant is a plan property: both runs share it exactly.
    const auto shared_plan = load::Generator::plan(gbase, nodes);
    const auto shift_time = static_cast<sim::Time>(shared_plan[shift_at].at);

    auto run_once = [&](bool elastic_on) {
      sim::Scheduler sched;
      const auto topo = net::MeshTorus2D::near_square(nodes);
      dsm::DsmConfig cfg;
      harness.apply(cfg);
      trace::Recorder rec(1 << 12);
      trace::GwcChecker checker;
      checker.install(rec);
      cfg.recorder = &rec;
      dsm::DsmSystem sys(sched, topo, cfg);
      shard::ShardedStoreConfig scfg;
      scfg.shards = 4;
      scfg.policy = shard::ShardMap::Policy::kRange;
      scfg.key_space = 1024;
      scfg.elastic.enabled = elastic_on;
      scfg.elastic.hot_groups = 3;
      shard::ShardedStore store(sys, scfg);
      load::Generator gen(gbase);
      ShiftRun res;
      shard::Client client(store);
      auto drive = gen.run(client, res.report);
      telemetry::SamplerConfig smpcfg;
      smpcfg.interval_ns = 20'000;
      telemetry::Sampler sampler(smpcfg);
      store.register_telemetry(sampler, res.report);
      std::optional<elastic::ElasticController> ctrl;
      if (elastic_on) {
        // Faster loop than the defaults: the post-shift window is a few
        // milliseconds, so the controller ticks near the sampler rate and
        // promotes down to the Zipf head's ~8% ranks.
        elastic::ElasticControllerConfig ccfg;
        ccfg.interval_ns = 40'000;
        ccfg.cooldown_ticks = 1;
        ccfg.hot_key_share = 0.08;
        ccfg.max_pins_per_hot = 8;
        ctrl.emplace(store, res.report, sampler.series(), ccfg);
        ctrl->register_telemetry(sampler);
        ctrl->start();
      }
      sampler.start(sched);
      sched.run();
      sampler.stop();
      if (ctrl) ctrl->stop();
      store.fill_report(res.report);
      res.converged = store.replicas_converged();
      res.checker_ok = checker.ok();
      res.writes_checked = checker.writes_checked();
      if (ctrl) res.actions = ctrl->actions();
      for (std::uint32_t s = 0; s < store.shards(); ++s) {
        res.migrations += store.migrations(s);
        res.splits += store.splits(s);
        res.merges += store.merges(s);
        res.promotions += store.promotions(s);
        res.demotions += store.demotions(s);
        res.redirects += store.redirects(s);
      }
      res.client_redirects = client.stats().redirects;
      if (!gen.done()) throw std::runtime_error("generator did not finish");
      return res;
    };
    const auto fixed = run_once(false);
    const auto elastic = run_once(true);
    // Post-shift goodput: the second half of the schedule over the time it
    // took to serve it (shift instant to last completion). The arrivals are
    // identical, so this compares drain speed against the NEW hotspot.
    auto post_rps = [&](const ShiftRun& r) {
      const auto win =
          static_cast<double>(r.report.elapsed_ns) - static_cast<double>(shift_time);
      return win > 0.0
                 ? static_cast<double>(shift_requests - shift_at) / win * 1e9
                 : 0.0;
    };
    const double post_static = post_rps(fixed);
    const double post_elastic = post_rps(elastic);
    const double ratio = post_static > 0.0 ? post_elastic / post_static : 0.0;
    std::cout << "--- elastic fabric, hotspot shift (4 base shards + 3 hot"
                 " groups, range policy, Zipf 0.99, head jumps at request "
              << shift_at << ") ---\n"
              << "static:  post-shift goodput "
              << static_cast<std::uint64_t>(post_static) << " req/s (run "
              << sim::format_time(static_cast<sim::Time>(fixed.report.elapsed_ns))
              << ")\n"
              << "elastic: post-shift goodput "
              << static_cast<std::uint64_t>(post_elastic) << " req/s (run "
              << sim::format_time(
                     static_cast<sim::Time>(elastic.report.elapsed_ns))
              << "; " << elastic.actions << " control actions: "
              << elastic.promotions << " promotions, " << elastic.splits
              << " splits, " << elastic.migrations << " migrations, "
              << elastic.merges << " merges, " << elastic.demotions
              << " demotions; " << elastic.redirects
              << " stale-directory redirects)\n"
              << "post-shift speedup " << stats::Table::num(ratio) << "x ("
              << elastic.writes_checked << " GWC-checked writes across the"
                 " reconfigurations)\n\n";
    if (ratio < 1.5) {
      std::cout << "ELASTIC SHIFT REGRESSION: post-shift goodput ratio "
                << stats::Table::num(ratio) << "x (need >= 1.5x)\n";
      ok = false;
    }
    if (!fixed.checker_ok || !fixed.report.serializable() ||
        !fixed.converged || !elastic.checker_ok ||
        !elastic.report.serializable() || !elastic.converged) {
      std::cout << "SERVICE INVARIANT VIOLATION in the hotspot-shift stage "
                << "(static: gwc=" << fixed.checker_ok
                << " serializable=" << fixed.report.serializable()
                << " converged=" << fixed.converged
                << "; elastic: gwc=" << elastic.checker_ok
                << " serializable=" << elastic.report.serializable()
                << " converged=" << elastic.converged << ")\n";
      ok = false;
    }
    metrics.row("hotspot_shift")
        .set("post_goodput_static_rps", post_static)
        .set("post_goodput_elastic_rps", post_elastic)
        .set("post_goodput_ratio", ratio)
        .set("elapsed_static_ns", static_cast<double>(fixed.report.elapsed_ns))
        .set("elapsed_elastic_ns",
             static_cast<double>(elastic.report.elapsed_ns))
        .set("control_actions", static_cast<double>(elastic.actions))
        .set("migrations", static_cast<double>(elastic.migrations))
        .set("splits", static_cast<double>(elastic.splits))
        .set("merges", static_cast<double>(elastic.merges))
        .set("promotions", static_cast<double>(elastic.promotions))
        .set("demotions", static_cast<double>(elastic.demotions))
        .set("redirects", static_cast<double>(elastic.redirects))
        .set("client_redirects", static_cast<double>(elastic.client_redirects))
        .set("gwc_writes_checked",
             static_cast<double>(elastic.writes_checked))
        .set("checker_ok",
             fixed.checker_ok && elastic.checker_ok ? 1.0 : 0.0);
  }

  if (ok) {
    std::cout << "peak goodput increased monotonically with the shard "
                 "count; all runs serializable and convergent; streams "
                 "verified; adaptive coalescing holding goodput; leased "
                 "reads delivering the read-heavy speedup within the "
                 "staleness bound; the elastic fabric outrunning the static "
                 "one after the hotspot shift with a clean checker\n";
  }
  return harness.finish() && ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
