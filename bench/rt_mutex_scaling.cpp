// Threaded-rt mutex scaling with live wall-clock telemetry.
//
// Runs the Fig. 4/5 optimistic mutex on the threaded runtime (rt/) at
// --nodes threads over --shards independent mutexes, with an RtSampler
// scraping per-shard gauges and rates the whole time — the same probe
// vocabulary the sim-clock Sampler exports for the sharded service
// (per-shard labels, optsync_* families, HELP preambles), so the rt
// substrate's telemetry lines up with the sim substrate's ahead of the
// threaded-rt service port:
//
//   optsync_rt_executions_per_s{shard=N}    completed sections/s per mutex
//   optsync_rt_rollbacks{shard=N}           cumulative rollbacks per mutex
//   optsync_rt_optimistic_share{shard=N}    optimistic successes / executions
//   optsync_rt_sequenced_per_s              root-sequenced updates/s
//   optsync_rt_speculative_drops_per_s      non-holder writes filtered/s
//   optsync_rt_echoes_dropped_per_s         hardware-blocked self-echoes/s
//   optsync_rt_interrupts_per_s             sharing interrupts raised/s
//
// Self-checks (exit 1 on violation): every shard's counter is exactly
// nodes * sections-per-shard on every node, and each mutex's outcome
// partition (optimistic + rollbacks + regular == executions) holds.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_metrics.hpp"
#include "rt/rt_mutex.hpp"
#include "stats/table.hpp"
#include "telemetry/rt_sampler.hpp"
#include "util/flags.hpp"

namespace {

using namespace optsync;

struct Params {
  std::size_t nodes = 4;
  std::size_t shards = 2;
  int sections = 200;      ///< sections per node (spread across shards)
  std::uint32_t link_delay_us = 0;
  unsigned jitter_us = 20;
  std::int64_t sample_interval_us = 500;
};

int usage() {
  std::cout
      << "usage: rt_mutex_scaling [--nodes N] [--shards N] [--sections N]\n"
      << "                        [--link-delay-us N] [--jitter-us N]\n"
      << "                        [--sample-interval-us N] [--seed N]\n"
      << "                        [--prom-out PATH] [--timeseries-out PATH]\n"
      << "                        [--metrics-out PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.has("help")) return usage();
  try {
    flags.allow_only({"nodes", "shards", "sections", "link-delay-us",
                      "jitter-us", "sample-interval-us", "seed", "prom-out",
                      "timeseries-out", "metrics-out", "help"});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  }

  Params p;
  p.nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  p.shards = static_cast<std::size_t>(flags.get_int("shards", 2));
  p.sections = static_cast<int>(flags.get_int("sections", 200));
  p.link_delay_us =
      static_cast<std::uint32_t>(flags.get_int("link-delay-us", 0));
  p.jitter_us = static_cast<unsigned>(flags.get_int("jitter-us", 20));
  p.sample_interval_us = flags.get_int("sample-interval-us", 500);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  if (p.nodes == 0 || p.shards == 0 || p.sections <= 0) {
    std::cerr << "error: --nodes, --shards, --sections must be positive\n";
    return 2;
  }

  rt::RtSystem::Config scfg;
  scfg.nodes = p.nodes;
  scfg.link_delay_us = p.link_delay_us;
  rt::RtSystem sys(scfg);

  struct Shard {
    rt::VarId lock;
    rt::VarId data;
    std::unique_ptr<rt::RtOptimisticMutex> mux;
  };
  std::vector<Shard> shards(p.shards);
  for (std::size_t s = 0; s < p.shards; ++s) {
    // Append rather than operator+ — GCC 12's -Wrestrict false-positives
    // on "lit" + to_string (PR105651).
    std::string lock_name = "l";
    lock_name += std::to_string(s);
    std::string data_name = "a";
    data_name += std::to_string(s);
    shards[s].lock = sys.define_lock(std::move(lock_name));
    shards[s].data = sys.define_mutex_data(std::move(data_name),
                                           shards[s].lock);
    shards[s].mux = std::make_unique<rt::RtOptimisticMutex>(
        sys, shards[s].lock, rt::RtOptimisticMutex::Config{});
  }

  // Wall-clock sampler: same probe API as the sim Sampler, per-shard labels.
  telemetry::RtSampler sampler(
      std::chrono::microseconds(p.sample_interval_us));
  sampler.set_help("optsync_rt_executions_per_s",
                   "Completed mutex sections per second, per shard");
  sampler.set_help("optsync_rt_rollbacks",
                   "Cumulative speculative rollbacks, per shard");
  sampler.set_help("optsync_rt_optimistic_share",
                   "Fraction of executions that committed optimistically");
  sampler.set_help("optsync_rt_sequenced_per_s",
                   "Root-sequenced updates per second");
  sampler.set_help("optsync_rt_speculative_drops_per_s",
                   "Non-holder mutex-data writes filtered per second");
  sampler.set_help("optsync_rt_echoes_dropped_per_s",
                   "Hardware-blocked self-echoes dropped per second");
  sampler.set_help("optsync_rt_interrupts_per_s",
                   "Sharing interrupts raised per second");
  for (std::size_t s = 0; s < p.shards; ++s) {
    const telemetry::Labels labels{{"shard", std::to_string(s)}};
    rt::RtOptimisticMutex* mux = shards[s].mux.get();
    sampler.add_rate("optsync_rt_executions_per_s", labels, [mux] {
      return static_cast<double>(mux->stats_view().executions);
    });
    sampler.add_gauge("optsync_rt_rollbacks", labels, [mux] {
      return static_cast<double>(mux->stats_view().rollbacks);
    });
    sampler.add_gauge("optsync_rt_optimistic_share", labels, [mux] {
      const auto v = mux->stats_view();
      return v.executions == 0 ? 0.0
                               : static_cast<double>(v.optimistic_successes) /
                                     static_cast<double>(v.executions);
    });
  }
  const rt::RtSystem::Stats& rstats = sys.stats();
  sampler.add_rate("optsync_rt_sequenced_per_s", {}, [&rstats] {
    return static_cast<double>(
        rstats.sequenced.load(std::memory_order_relaxed));
  });
  sampler.add_rate("optsync_rt_speculative_drops_per_s", {}, [&rstats] {
    return static_cast<double>(
        rstats.speculative_drops.load(std::memory_order_relaxed));
  });
  sampler.add_rate("optsync_rt_echoes_dropped_per_s", {}, [&rstats] {
    return static_cast<double>(
        rstats.echoes_dropped.load(std::memory_order_relaxed));
  });
  sampler.add_rate("optsync_rt_interrupts_per_s", {}, [&rstats] {
    return static_cast<double>(
        rstats.interrupts.load(std::memory_order_relaxed));
  });
  sampler.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(p.nodes);
  for (rt::NodeId n = 0; n < p.nodes; ++n) {
    threads.emplace_back([&, n] {
      std::mt19937 rng(static_cast<unsigned>(seed * 7919u + n * 104729u));
      std::uniform_int_distribution<unsigned> jitter(0, p.jitter_us);
      for (int k = 0; k < p.sections; ++k) {
        if (p.jitter_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(jitter(rng)));
        }
        Shard& sh = shards[static_cast<std::size_t>(k) % p.shards];
        rt::RtOptimisticMutex::Section sec;
        sec.shared_writes = {sh.data};
        sec.body = [&sys, &sh](rt::NodeId me) {
          const rt::Word v = sys.read(me, sh.data);
          std::this_thread::yield();
          sys.write(me, sh.data, v + 1);
        };
        sh.mux->execute(n, sec);
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.quiesce();
  sampler.stop();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  benchio::MetricsOut metrics("rt_mutex_scaling", flags.get("metrics-out"));

  stats::Table table({"shard", "executions", "optimistic", "rollbacks",
                      "regular", "throughput/s"});
  bool ok = true;
  std::uint64_t total_exec = 0;
  for (std::size_t s = 0; s < p.shards; ++s) {
    const auto v = shards[s].mux->stats_view();
    total_exec += v.executions;
    table.add_row({std::to_string(s), std::to_string(v.executions),
                   std::to_string(v.optimistic_successes),
                   std::to_string(v.rollbacks),
                   std::to_string(v.regular_paths),
                   stats::Table::num(static_cast<double>(v.executions) /
                                     wall_s)});
    metrics.row("shard=" + std::to_string(s))
        .set("executions", static_cast<double>(v.executions))
        .set("optimistic_successes",
             static_cast<double>(v.optimistic_successes))
        .set("rollbacks", static_cast<double>(v.rollbacks))
        .set("regular_paths", static_cast<double>(v.regular_paths));
    if (v.optimistic_successes + v.rollbacks + v.regular_paths !=
        v.executions) {
      std::cout << "OUTCOME VIOLATION: shard " << s
                << " outcomes do not partition executions\n";
      ok = false;
    }
    // Exactness: every node converged on nodes * sections-for-this-shard.
    rt::Word expected = 0;
    for (int k = 0; k < p.sections; ++k) {
      if (static_cast<std::size_t>(k) % p.shards == s) ++expected;
    }
    expected *= static_cast<rt::Word>(p.nodes);
    for (rt::NodeId n = 0; n < p.nodes; ++n) {
      if (sys.read(n, shards[s].data) != expected) {
        std::cout << "COUNTER VIOLATION: shard " << s << " node " << n
                  << " read " << sys.read(n, shards[s].data) << ", expected "
                  << expected << "\n";
        ok = false;
      }
    }
  }
  table.print(std::cout);
  std::cout << total_exec << " sections on " << p.nodes << " threads x "
            << p.shards << " shards in " << stats::Table::num(wall_s * 1e3)
            << " ms; sampler ticks=" << sampler.ticks() << "\n";
  if (total_exec != static_cast<std::uint64_t>(p.nodes) * p.sections) {
    std::cout << "EXECUTION VIOLATION: " << total_exec << " != "
              << static_cast<std::uint64_t>(p.nodes) * p.sections << "\n";
    ok = false;
  }

  metrics.row("system")
      .set("sequenced", static_cast<double>(rstats.sequenced.load()))
      .set("speculative_drops",
           static_cast<double>(rstats.speculative_drops.load()))
      .set("echoes_dropped",
           static_cast<double>(rstats.echoes_dropped.load()))
      .set("interrupts", static_cast<double>(rstats.interrupts.load()))
      .set("wall_s", wall_s)
      .set("sampler_ticks", static_cast<double>(sampler.ticks()));

  const std::string prom_out = flags.get("prom-out");
  if (!prom_out.empty()) {
    std::ofstream out(prom_out);
    if (!out) {
      std::cerr << "error: cannot open --prom-out file: " << prom_out << "\n";
      ok = false;
    } else {
      sampler.series().write_prometheus(out);
      std::cout << "prometheus exposition written to " << prom_out << "\n";
    }
  }
  const std::string ts_out = flags.get("timeseries-out");
  if (!ts_out.empty()) {
    std::ofstream out(ts_out);
    if (!out) {
      std::cerr << "error: cannot open --timeseries-out file: " << ts_out
                << "\n";
      ok = false;
    } else {
      sampler.series().write_json(
          out, static_cast<sim::Duration>(p.sample_interval_us) * 1000);
      std::cout << "timeseries written to " << ts_out << "\n";
    }
  }
  if (!metrics.write()) ok = false;
  return ok ? 0 : 1;
}
