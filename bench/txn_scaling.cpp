// Txn scaling: optimistic multi-key commit (OCC over GWC) versus the
// pessimistic MultiGroupMutex baseline as the shard count grows.
//
// Both protocols acquire the involved shard locks in the same canonical
// ascending-VarId order; the difference is WHEN. The legacy path takes
// every lock first and holds them across the whole per-key compute, so a
// 3-key transaction occupies three shard roots for the full service time.
// The OCC path speculates outside the locks (local pokes + undo log,
// clobber interrupts armed) and holds them only for validate + publish —
// a fraction of the compute — trading a shorter critical section for the
// occasional abort/retry and, past the abort budget, an irrevocable
// fallback through the very same MultiGroupMutex.
//
// For each shard count in {1, 2, 4, 8} this bench replays an identical
// open-loop, transaction-heavy schedule (same seed, same plan bytes)
// under both commit modes, across a uniform-key and a contended
// (Zipfian keys) mix, and compares cross-shard goodput — completed
// multi-key operations (txn + rmw) per second. The run FAILS unless OCC
// goodput strictly exceeds the baseline at every shard count >= 4 on
// both mixes — the claim the subsystem exists to make. It also
// fails on any serializability-ledger or convergence
// violation, and, when --fault-seed injects a lossy fiber, on any GWC
// total-order violation found by trace::GwcChecker (faulted runs check
// correctness only — the goodput gate applies to fault-free runs).
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "dsm/system.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "net/topology.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "stats/table.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"
#include "util/flags.hpp"

namespace {

using namespace optsync;

struct Mix {
  const char* name;
  double read_fraction;
  double txn_fraction;
  double rmw_fraction;
  load::KeyDist dist;
  bool gated;  ///< the OCC-beats-baseline gate applies to this mix
};

// Both mixes are transaction-heavy and both carry the gate (OCC strictly
// beats the baseline at >= 4 shards). The uniform mix is the regime
// optimism exists for — conflicts occasional, compute dominant, abort
// rate a few percent. The contended mix adds Zipfian skew so hot stripes
// force real abort/retry/fallback traffic: OCC still wins because blind
// writes tolerate write-write clobbers and doomed transactions abort
// before touching any lock, while read-set conflicts pay the documented
// abort + backoff + irrevocable-escalation cost.
constexpr Mix kMixes[] = {
    {"uniform", 0.40, 0.25, 0.25, load::KeyDist::kUniform, true},
    {"contended", 0.10, 0.35, 0.35, load::KeyDist::kZipfian, true},
};

// Same drop/duplicate/partition shape as the txn fault soak, so the CI
// smoke run exercises the retransmit + abort paths together.
faults::FaultPlan txn_attack(std::uint64_t seed) {
  faults::FaultPlan plan(seed);
  plan.drop(0.08, "lock").drop(0.08, "data").duplicate(0.04);
  const auto a = static_cast<net::NodeId>(seed % 8);
  const auto b = static_cast<net::NodeId>((seed / 8 + 1 + a) % 8);
  if (a != b) plan.partition_link(a, b, 20'000, 220'000);
  return plan;
}

struct RunResult {
  stats::ServiceReport report;
  bool converged = false;
  bool gwc_ok = true;
  std::uint64_t gwc_writes = 0;
  std::string gwc_report;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  /// Completed multi-key (txn + rmw) operations per second.
  [[nodiscard]] double multikey_goodput_rps() const {
    if (report.elapsed_ns == 0) return 0.0;
    std::uint64_t done = 0;
    for (const auto& s : report.shards) {
      done += s.op(stats::ServiceOp::kTxn).completed +
              s.op(stats::ServiceOp::kRmw).completed;
    }
    return 1e9 * static_cast<double>(done) /
           static_cast<double>(report.elapsed_ns);
  }
  [[nodiscard]] double abort_rate() const {
    const double total =
        static_cast<double>(commits) + static_cast<double>(aborts);
    return total > 0.0 ? static_cast<double>(aborts) / total : 0.0;
  }
};

RunResult run_txn(bench::Harness& harness, std::uint32_t nodes,
                  std::uint32_t shards, shard::TxnMode mode, const Mix& mix,
                  double per_shard_rate, std::uint64_t requests_per_shard,
                  std::uint64_t seed, std::uint64_t fault_seed) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(nodes);
  dsm::DsmConfig cfg;
  harness.apply(cfg);
  trace::Recorder recorder(1 << 10);
  trace::GwcChecker checker;
  if (fault_seed != 0) {
    cfg.faults = txn_attack(fault_seed);
    checker.install(recorder);
    cfg.recorder = &recorder;
  }
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = shards;
  scfg.txn.mode = mode;
  // Compute-heavy transactions over a wide slot space: per-key compute
  // dominates the lock round trips (so WHERE the compute runs — inside or
  // outside the critical section — decides throughput), and conflict
  // detection at stripe == slot granularity has enough stripes that
  // uniform traffic conflicts occasionally rather than constantly.
  scfg.write_compute_ns = 10'000;
  scfg.slots_per_shard = 64;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;  // same seed for both modes -> identical plan bytes
  gcfg.requests = requests_per_shard * shards;
  gcfg.rate_rps = per_shard_rate * shards;
  gcfg.read_fraction = mix.read_fraction;
  gcfg.txn_fraction = mix.txn_fraction;
  gcfg.rmw_fraction = mix.rmw_fraction;
  gcfg.keys.dist = mix.dist;
  gcfg.keys.keys = 64 * shards;  // spread the key set across every shard
  gcfg.keys.zipf_s = 1.0;
  load::Generator gen(gcfg);

  RunResult res;
  shard::Client client(store);
  auto drive = gen.run(client, res.report);
  sched.run();
  drive.rethrow_if_failed();
  store.fill_report(res.report);
  res.converged = store.replicas_converged();
  if (fault_seed != 0) {
    res.gwc_ok = checker.ok();
    res.gwc_writes = checker.writes_checked();
    if (!res.gwc_ok) res.gwc_report = checker.report();
  }
  for (const auto& s : res.report.shards) {
    res.commits += s.txn_commits;
    res.aborts += s.txn_aborts;
    res.retries += s.txn_retries;
    res.fallbacks += s.txn_fallbacks;
  }
  if (!gen.done()) throw std::runtime_error("generator did not finish");
  return res;
}

std::vector<std::uint32_t> parse_shards(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::uint32_t>(
        std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::runtime_error("empty --shards list");
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  bench::Harness harness("txn_scaling", flags);
  harness.allow_only(flags,
                     {"nodes", "requests-per-shard", "shards", "fault-seed"});
  auto& metrics = harness.metrics();

  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 16));
  const auto requests_per_shard =
      static_cast<std::uint64_t>(flags.get_int("requests-per-shard", 300));
  const auto shard_counts = parse_shards(flags.get("shards", "1,2,4,8"));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  // Offered load per shard, chosen to straddle the two capacities: with
  // 10us of per-key compute the pessimistic baseline saturates its shard
  // locks below this rate (hold time = lock chain + full compute), while
  // OCC — which holds locks only for validate + publish — absorbs it
  // with occasional aborts. Elapsed time for the saturated mode is
  // decided by its commit throughput, so goodput compares capacity.
  const double per_shard_rate = 25'000.0;

  std::cout << "Txn scaling: OCC commit vs MultiGroupMutex baseline, "
            << nodes << " nodes, identical open-loop schedules ("
            << requests_per_shard << " req/shard @ "
            << static_cast<std::uint64_t>(per_shard_rate)
            << " req/s/shard)\n"
            << "gate: OCC cross-shard goodput must strictly beat the "
               "baseline on both mixes at >= 4 shards\n";
  if (fault_seed != 0) {
    std::cout << "fault injection on (seed " << fault_seed
              << "): drops + duplicates + a flapping partition, GWC "
                 "order audited per run; the goodput gate is waived (a "
                 "lossy fiber stretches the OCC exposure window — the "
                 "faulted run checks correctness, not capacity)\n";
  }
  std::cout << "\n";

  bool ok = true;
  for (const Mix& mix : kMixes) {
    std::cout << "=== mix " << mix.name << " (reads "
              << stats::Table::num(100 * mix.read_fraction) << "%, txns "
              << stats::Table::num(100 * mix.txn_fraction) << "%, rmws "
              << stats::Table::num(100 * mix.rmw_fraction) << "%, "
              << (mix.dist == load::KeyDist::kZipfian ? "zipfian" : "uniform")
              << " keys)"
              << (mix.gated ? " [gated]" : "") << " ===\n";
    stats::Table table({"shards", "mode", "multikey req/s", "goodput req/s",
                        "commits", "aborts", "retries", "fallbacks",
                        "abort%"});
    for (const std::uint32_t shards : shard_counts) {
      const std::uint64_t run_seed =
          harness.seed() ^
          (0x9e3779b97f4a7c15ull *
           (shards * 64 + (&mix - kMixes) * 8 + 1));
      double occ_goodput = 0.0;
      for (const shard::TxnMode mode :
           {shard::TxnMode::kOcc, shard::TxnMode::kLegacy}) {
        const auto res =
            run_txn(harness, nodes, shards, mode, mix, per_shard_rate,
                    requests_per_shard, run_seed, fault_seed);
        const auto& r = res.report;
        if (!r.serializable() || !res.converged) {
          std::cout << "TXN INVARIANT VIOLATION at mix=" << mix.name
                    << " shards=" << shards << " mode="
                    << shard::txn_mode_name(mode) << " (serializable="
                    << r.serializable() << ", converged=" << res.converged
                    << ")\n";
          ok = false;
        }
        if (!res.gwc_ok) {
          std::cout << "GWC ORDER VIOLATION at mix=" << mix.name
                    << " shards=" << shards << " mode="
                    << shard::txn_mode_name(mode) << "\n"
                    << res.gwc_report << "\n";
          ok = false;
        }
        const double multikey = res.multikey_goodput_rps();
        if (mode == shard::TxnMode::kOcc) {
          occ_goodput = multikey;
        } else if (mix.gated && fault_seed == 0 && shards >= 4 &&
                   occ_goodput <= multikey) {
          std::cout << "OCC SCALING REGRESSION: at " << shards
                    << " shards (" << mix.name << " mix) OCC multi-key "
                    << "goodput (" << occ_goodput
                    << " req/s) did not exceed the MultiGroupMutex "
                    << "baseline (" << multikey << " req/s)\n";
          ok = false;
        }
        table.add_row({std::to_string(shards),
                       std::string(shard::txn_mode_name(mode)),
                       stats::Table::num(multikey),
                       stats::Table::num(r.goodput_rps()),
                       std::to_string(res.commits),
                       std::to_string(res.aborts),
                       std::to_string(res.retries),
                       std::to_string(res.fallbacks),
                       stats::Table::num(100.0 * res.abort_rate())});

        const std::string label =
            std::string("mix=") + mix.name + ",shards=" +
            std::to_string(shards) + ",mode=" +
            std::string(shard::txn_mode_name(mode));
        metrics.row(label)
            .set("shards", shards)
            .set("occ", mode == shard::TxnMode::kOcc ? 1.0 : 0.0)
            .set("multikey_goodput_rps", multikey)
            .set("goodput_rps", r.goodput_rps())
            .set("offered_rps", r.offered_rps)
            .set("txn_commits", static_cast<double>(res.commits))
            .set("txn_aborts", static_cast<double>(res.aborts))
            .set("txn_retries", static_cast<double>(res.retries))
            .set("txn_fallbacks", static_cast<double>(res.fallbacks))
            .set("txn_abort_rate", res.abort_rate())
            .set("gwc_writes_checked",
                 static_cast<double>(res.gwc_writes))
            .set("elapsed_ns", static_cast<double>(r.elapsed_ns));
        for (const auto& s : r.shards) {
          auto ls = s.lock;
          ls.name = label + "/" + ls.name;
          metrics.lock(ls);
        }
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (ok) {
    std::cout << "OCC beat the pessimistic baseline at every gated point; "
                 "all runs serializable and convergent\n";
  }
  return harness.finish() && ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
