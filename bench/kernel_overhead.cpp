// Kernel overhead: wall-clock micro-costs of the simulation kernel's hot
// paths, and the scale ceiling they buy.
//
// The discrete-event kernel is the substrate every figure stands on: a
// simulated message is one EventQueue push + pop, so kernel overhead
// multiplies into every protocol number and bounds how big a machine a run
// can afford. This bench measures the post-"raw-speed pass" kernel directly
// (real nanoseconds, std::chrono — the only bench in the suite where wall
// time is the subject rather than noise):
//
//   1. event-storm    arm/cancel churn on a raw EventQueue. The slot-table
//                     design must hold ns/op flat AND memory bounded — the
//                     old dual-hash-set queue leaked cancelled ids.
//   2. dispatch       push+pop through a live Scheduler, ns/event.
//   3. alloc-audit    a real sharded-service run, counting the allocations
//                     the hot paths still make: SmallFn heap fallbacks
//                     (callbacks too big for the 88-byte inline buffer) and
//                     frame-pool recycling (steady state must reuse, not
//                     new). Gates: inline share and reuse share >= 95%.
//   4. scale-ceiling  the same service workload at 256 and 1024 nodes x 64
//                     shards. Every multicast fans out to every member, so
//                     messages per op grow ~4x — but the kernel cost PER
//                     MESSAGE DELIVERED must stay flat (within
//                     --ceiling-tolerance, default 10%): the kernel has no
//                     per-node superlinear state left. This is the
//                     1024-node ceiling claim.
//
// Wall-clock stages repeat --reps times and keep the fastest rep (minimum
// is the standard noise-robust estimator for cost floors).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "dsm/system.hpp"
#include "load/generator.hpp"
#include "net/topology.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/event_queue.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/small_fn.hpp"

namespace {

using namespace optsync;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

struct ServiceRun {
  double wall_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t completed_ops = 0;
  std::uint64_t heap_allocs = 0;   // SmallFn heap fallbacks during the run
  std::uint64_t pool_acquires = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t messages = 0;
  bool converged = false;
  bool serializable = false;
};

// One sharded-service run (the service_scaling workload shape) with the
// kernel counters sampled around it.
ServiceRun run_service(bench::Harness& harness, std::uint32_t nodes,
                       std::uint32_t shards, double per_shard_rate,
                       std::uint64_t requests_per_shard, std::uint64_t seed) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(nodes);
  dsm::DsmConfig cfg;
  harness.apply(cfg);
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = shards;
  shard::ShardedStore store(sys, scfg);

  load::GeneratorConfig gcfg;
  gcfg.seed = seed;
  gcfg.requests = requests_per_shard * shards;
  gcfg.rate_rps = per_shard_rate * shards;
  gcfg.keys.keys = 1024;
  gcfg.read_fraction = 0.25;
  gcfg.txn_fraction = 0.05;
  load::Generator gen(gcfg);

  ServiceRun out;
  stats::ServiceReport report;
  const std::uint64_t heap0 = util::small_fn_heap_allocs();
  shard::Client client(store);
  auto drive = gen.run(client, report);
  const auto t0 = Clock::now();
  sched.run();
  out.wall_ns = elapsed_ns(t0);
  out.heap_allocs = util::small_fn_heap_allocs() - heap0;
  store.fill_report(report);
  out.events = sched.events_processed();
  out.completed_ops = 0;
  for (const auto& s : report.shards) {
    for (const auto& o : s.ops) out.completed_ops += o.completed;
  }
  out.pool_acquires = sys.pool_stats().acquires;
  out.pool_reuses = sys.pool_stats().reuses;
  out.messages = report.messages;
  out.converged = store.replicas_converged();
  out.serializable = report.serializable();
  if (!gen.done()) throw std::runtime_error("generator did not finish");
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  bench::Harness harness("kernel_overhead", flags);
  harness.allow_only(flags, {"storm-ops", "dispatch-events", "reps",
                             "ceiling-shards", "ceiling-requests-per-shard",
                             "ceiling-tolerance"});
  auto& metrics = harness.metrics();

  const auto storm_ops =
      static_cast<std::uint64_t>(flags.get_int("storm-ops", 1'000'000));
  const auto dispatch_events =
      static_cast<std::uint64_t>(flags.get_int("dispatch-events", 1'000'000));
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  const auto ceiling_shards =
      static_cast<std::uint32_t>(flags.get_int("ceiling-shards", 64));
  const auto ceiling_requests = static_cast<std::uint64_t>(
      flags.get_int("ceiling-requests-per-shard", 48));
  const double ceiling_tol = flags.get_double("ceiling-tolerance", 0.10);

  bool ok = true;
  std::cout << "Kernel overhead: wall-clock hot-path costs (best of " << reps
            << " reps)\n\n";

  // --- 1. event-storm ------------------------------------------------------
  // Arm/cancel churn with a live population: every op arms one timer and
  // cancels a previously armed one, the retransmit-timer pattern. Memory
  // must stay bounded by the LIVE count, not the op count.
  {
    double best = 1e300;
    std::size_t peak_heap = 0;
    std::size_t peak_slots = 0;
    for (int r = 0; r < reps; ++r) {
      sim::EventQueue q;
      constexpr std::size_t kLive = 1024;
      std::vector<sim::EventId> live(kLive, 0);
      const auto t0 = Clock::now();
      for (std::uint64_t i = 0; i < storm_ops; ++i) {
        const std::size_t k = i % kLive;
        if (live[k] != 0) q.cancel(live[k]);
        live[k] = q.push(static_cast<sim::Time>(i + 1'000'000), [] {});
        peak_heap = std::max(peak_heap, q.heap_entries());
        peak_slots = std::max(peak_slots, q.slot_count());
      }
      best = std::min(best, elapsed_ns(t0) / static_cast<double>(storm_ops));
    }
    const bool bounded = peak_slots <= 4 * 1024 && peak_heap <= 8 * 1024;
    std::cout << "event-storm:  " << stats::Table::num(best) << " ns/op ("
              << storm_ops << " arm+cancel ops, peak heap " << peak_heap
              << " entries, peak slots " << peak_slots << ", live 1024) "
              << (bounded ? "[bounded]" : "[LEAK]") << "\n";
    if (!bounded) ok = false;
    metrics.row("event_storm")
        .set("ns_per_op", best)
        .set("ops", static_cast<double>(storm_ops))
        .set("peak_heap_entries", static_cast<double>(peak_heap))
        .set("peak_slots", static_cast<double>(peak_slots))
        .set("bounded", bounded ? 1.0 : 0.0);
  }

  // --- 2. dispatch ---------------------------------------------------------
  // Self-rearming event chains through a full Scheduler::run — push, heap
  // sift, pop, SmallFn invoke. The end-to-end per-event kernel cost.
  {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      sim::Scheduler sched;
      constexpr std::uint64_t kChains = 64;
      std::uint64_t remaining = dispatch_events;
      struct Chain {
        sim::Scheduler* sched;
        std::uint64_t* remaining;
        sim::Time at;
        void fire() {
          if (*remaining == 0) return;
          --*remaining;
          at += 100;
          Chain self = *this;
          sched->at(at, [self]() mutable { self.fire(); });
        }
      };
      const auto t0 = Clock::now();
      for (std::uint64_t c = 0; c < kChains; ++c) {
        Chain chain{&sched, &remaining, static_cast<sim::Time>(c)};
        chain.fire();
      }
      sched.run();
      best = std::min(best,
                      elapsed_ns(t0) / static_cast<double>(dispatch_events));
    }
    std::cout << "dispatch:     " << stats::Table::num(best)
              << " ns/event (" << dispatch_events
              << " scheduled events, 64 chains)\n";
    metrics.row("dispatch")
        .set("ns_per_event", best)
        .set("events", static_cast<double>(dispatch_events));
  }

  // --- 3. alloc-audit ------------------------------------------------------
  // A real service run at saturation. Steady state must run out of the
  // inline callback buffer and the frame pool, not the heap.
  {
    const auto run = run_service(harness, /*nodes=*/16, /*shards=*/4,
                                 /*per_shard_rate=*/200'000,
                                 /*requests_per_shard=*/400,
                                 harness.seed() ^ 0xa110cull);
    const double inline_share =
        run.events == 0
            ? 1.0
            : 1.0 - static_cast<double>(run.heap_allocs) /
                        static_cast<double>(run.events);
    const double reuse_share =
        run.pool_acquires == 0
            ? 1.0
            : static_cast<double>(run.pool_reuses) /
                  static_cast<double>(run.pool_acquires);
    std::cout << "alloc-audit:  " << run.heap_allocs
              << " SmallFn heap fallbacks over " << run.events
              << " events (inline share "
              << stats::Table::num(100.0 * inline_share) << "%), frame pool "
              << run.pool_reuses << "/" << run.pool_acquires << " reused ("
              << stats::Table::num(100.0 * reuse_share) << "%)\n";
    if (inline_share < 0.95 || reuse_share < 0.95) {
      std::cout << "ALLOCATION REGRESSION: hot paths are heap-allocating "
                   "(need >= 95% inline and >= 95% pool reuse)\n";
      ok = false;
    }
    if (!run.serializable || !run.converged) {
      std::cout << "SERVICE INVARIANT VIOLATION in the alloc-audit run\n";
      ok = false;
    }
    metrics.row("alloc_audit")
        .set("events", static_cast<double>(run.events))
        .set("small_fn_heap_allocs", static_cast<double>(run.heap_allocs))
        .set("inline_share", inline_share)
        .set("pool_acquires", static_cast<double>(run.pool_acquires))
        .set("pool_reuses", static_cast<double>(run.pool_reuses))
        .set("pool_reuse_share", reuse_share)
        .set("wall_ns_per_event",
             run.events == 0 ? 0.0 : run.wall_ns /
                                         static_cast<double>(run.events));
  }

  // --- 4. scale-ceiling ----------------------------------------------------
  // 64 shards on 256 vs 1024 nodes (full replication: every frame fans out
  // to every member, so the big machine does ~4x the per-member deliveries
  // per op). The cost of moving ONE message — wall time over messages
  // delivered — must not grow with the node count. That is the unit of
  // per-op overhead: an op's work is its message fan-out, so flat ns/message
  // means flat overhead per unit of work. (ns/event is reported but not
  // gated: the hop-class multicast deliberately packs a whole same-time
  // class into one event, so events/op *shrinks* with scale and the
  // per-event average measures batch width, not kernel cost.)
  {
    stats::Table table({"nodes", "events", "msgs", "ops", "wall ms",
                        "ns/msg", "ns/event", "msgs/op"});
    double per_msg[2] = {0, 0};
    const std::uint32_t node_counts[2] = {256, 1024};
    for (int i = 0; i < 2; ++i) {
      ServiceRun best;
      best.wall_ns = 1e300;
      for (int r = 0; r < reps; ++r) {
        auto run = run_service(harness, node_counts[i], ceiling_shards,
                               /*per_shard_rate=*/50'000, ceiling_requests,
                               harness.seed() ^ (0xce111ull + i));
        if (!run.serializable || !run.converged) {
          std::cout << "SERVICE INVARIANT VIOLATION at " << node_counts[i]
                    << " nodes\n";
          ok = false;
        }
        if (run.wall_ns < best.wall_ns) best = run;
      }
      per_msg[i] = best.messages == 0
                       ? 0.0
                       : best.wall_ns / static_cast<double>(best.messages);
      const double per_event =
          best.events == 0 ? 0.0
                           : best.wall_ns / static_cast<double>(best.events);
      table.add_row({std::to_string(node_counts[i]),
                     std::to_string(best.events),
                     std::to_string(best.messages),
                     std::to_string(best.completed_ops),
                     stats::Table::num(best.wall_ns / 1e6),
                     stats::Table::num(per_msg[i]),
                     stats::Table::num(per_event),
                     stats::Table::num(
                         static_cast<double>(best.messages) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, best.completed_ops)))});
      metrics.row("ceiling,nodes=" + std::to_string(node_counts[i]))
          .set("nodes", node_counts[i])
          .set("shards", ceiling_shards)
          .set("events", static_cast<double>(best.events))
          .set("completed_ops", static_cast<double>(best.completed_ops))
          .set("wall_ns", best.wall_ns)
          .set("ns_per_message", per_msg[i])
          .set("ns_per_event", per_event)
          .set("messages", static_cast<double>(best.messages));
    }
    std::cout << "scale-ceiling: 64-shard service, 256 vs 1024 nodes\n";
    table.print(std::cout);
    const double ratio = per_msg[0] == 0 ? 0.0 : per_msg[1] / per_msg[0];
    std::cout << "per-message overhead ratio (1024/256): "
              << stats::Table::num(ratio) << " (tolerance ±"
              << stats::Table::num(100.0 * ceiling_tol) << "%)\n\n";
    if (ratio > 1.0 + ceiling_tol) {
      std::cout << "SCALE CEILING REGRESSION: per-message kernel cost grew "
                << stats::Table::num(100.0 * (ratio - 1.0))
                << "% from 256 to 1024 nodes\n";
      ok = false;
    }
    metrics.row("ceiling")
        .set("ns_per_message_256", per_msg[0])
        .set("ns_per_message_1024", per_msg[1])
        .set("ratio", ratio)
        .set("tolerance", ceiling_tol);
  }

  if (ok) {
    std::cout << "kernel overhead flat: memory bounded under churn, hot "
                 "paths allocation-free, per-message cost holds to 1024 "
                 "nodes\n";
  }
  return harness.finish() && ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
