// Regenerates the paper's Figure 2: "Speedup for Task Management".
//
// One producer generates 1024 tasks into a shared queue guarded by one lock;
// N-1 consumers dequeue and execute them. Network sizes are a power of two
// plus one "to eliminate load balancing effects". Three series:
//   ideal — zero network delay bound,
//   GWC   — eagersharing + GWC queue lock (paper peak: 84.1 @ 129 CPUs),
//   entry — fast entry consistency (paper peak: 22.5 @ 33 CPUs).
// The paper reports GWC's peak 3.7x entry's peak, with efficiency collapsing
// past ~129 CPUs where the 1/128 produce/execute ratio starves consumers.
#include <iostream>
#include <vector>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/task_queue.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;

  // --quick trims the largest sizes (used by the smoke script); the default
  // reproduces the figure's full x-axis. --seed varies the consumers'
  // polling jitter.
  util::Flags flags(argc, argv);
  bench::Harness harness("fig2_task_management", flags);
  harness.allow_only(flags, {"quick"});
  auto& metrics = harness.metrics();
  const bool quick = flags.get_bool("quick");
  std::vector<std::size_t> sizes = {3, 5, 9, 17, 33, 65, 129};
  if (!quick) sizes.push_back(257);

  workloads::TaskQueueParams params;
  params.seed = harness.seed();
  dsm::DsmConfig dcfg;
  harness.apply(dcfg);

  std::cout << "Figure 2: speedup for task management (" << params.total_tasks
            << " tasks, produce:execute = 1:"
            << static_cast<int>(1.0 / params.produce_ratio + 0.5) << ")\n\n";

  stats::Table table({"CPUs", "ideal", "GWC", "entry", "GWC/entry",
                      "GWC msgs", "entry msgs", "entry fetches"});

  double peak_gwc = 0, peak_entry = 0;
  std::size_t peak_gwc_n = 0, peak_entry_n = 0;

  for (const std::size_t n : sizes) {
    // Compact ("square mesh torus") layout: awkward counts like 129 get a
    // 11x12 grid with a few idle slots, not a degenerate 3x43 one.
    const auto topo = net::MeshTorus2D::compact(n);
    params.nodes_used = n;

    const auto ideal = workloads::run_task_queue_ideal(params, topo);
    const auto gwc = workloads::run_task_queue_gwc(params, topo, dcfg);
    const auto entry =
        workloads::run_task_queue_entry(params, topo, net::LinkModel::paper());

    if (gwc.network_power > peak_gwc) {
      peak_gwc = gwc.network_power;
      peak_gwc_n = n;
    }
    if (entry.network_power > peak_entry) {
      peak_entry = entry.network_power;
      peak_entry_n = n;
    }

    table.add_row({std::to_string(n), stats::Table::num(ideal.network_power),
                   stats::Table::num(gwc.network_power),
                   stats::Table::num(entry.network_power),
                   stats::Table::num(gwc.network_power /
                                     std::max(entry.network_power, 1e-9)),
                   std::to_string(gwc.messages), std::to_string(entry.messages),
                   std::to_string(entry.demand_fetches)});
    metrics.row("cpus=" + std::to_string(n))
        .set("ideal_power", ideal.network_power)
        .set("gwc_power", gwc.network_power)
        .set("entry_power", entry.network_power)
        .set("gwc_messages", static_cast<double>(gwc.messages))
        .set("entry_messages", static_cast<double>(entry.messages));
  }

  table.print(std::cout);
  std::cout << "\npeaks: GWC " << stats::Table::num(peak_gwc) << " @ "
            << peak_gwc_n << " CPUs; entry " << stats::Table::num(peak_entry)
            << " @ " << peak_entry_n << " CPUs; ratio "
            << stats::Table::num(peak_gwc / std::max(peak_entry, 1e-9)) << "\n";
  std::cout << "paper:  GWC 84.1 @ 129; entry 22.5 @ 33; ratio 3.7\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
