// Ablation A: the usage-frequency history threshold (paper §4).
//
// The paper gates speculation on an EWMA busyness estimate
// (old = 0.95*old + 0.05*new) against a threshold (example value 0.30):
// "This method does not add any network traffic when the lock is heavily
// contended." This bench sweeps the threshold across contention levels and
// reports rollback rates and throughput — showing why an intermediate
// threshold beats both "never speculate" (threshold < 0, all regular) and
// "always speculate" (threshold >= 1, rollback storms under contention).
#include <iostream>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/counter.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;

  util::Flags flags(argc, argv);
  bench::Harness harness("ablation_history_threshold", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();
  const auto seed = harness.seed();

  const auto topo = net::MeshTorus2D::near_square(16);
  const double thresholds[] = {0.0, 0.10, 0.30, 0.50, 0.90, 1.01};
  const sim::Duration think_levels[] = {400'000, 50'000, 5'000};

  std::cout << "Ablation: history threshold sweep (16 CPUs, shared counter,\n"
            << "section 1us; think time controls contention)\n\n";

  for (const auto think : think_levels) {
    std::cout << "--- mean think time " << sim::format_time(think)
              << (think >= 400'000 ? "  (idle lock)"
                  : think >= 50'000 ? "  (moderate contention)"
                                    : "  (heavy contention)")
              << " ---\n";
    stats::Table table({"threshold", "sections/ms", "opt attempts",
                        "opt successes", "rollbacks", "regular paths",
                        "sync overhead"});
    for (const double th : thresholds) {
      workloads::CounterParams p;
      p.increments_per_node = 60;
      p.think_mean_ns = think;
      p.history_threshold = th;
      p.seed = seed;
      harness.apply(p.dsm);
      const auto res =
          run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
      if (res.final_count != res.expected_count) {
        std::cout << "MUTUAL EXCLUSION VIOLATION: " << res.final_count
                  << " != " << res.expected_count << "\n";
        return 1;
      }
      table.add_row({stats::Table::num(th), stats::Table::num(res.sections_per_ms),
                     std::to_string(res.optimistic_attempts),
                     std::to_string(res.optimistic_successes),
                     std::to_string(res.rollbacks),
                     std::to_string(res.regular_paths),
                     sim::format_time(static_cast<sim::Time>(
                         res.avg_sync_overhead_ns))});
      metrics
          .row("think=" + std::to_string(think) +
               ",threshold=" + stats::Table::num(th))
          .set("sections_per_ms", res.sections_per_ms)
          .set("optimistic_attempts",
               static_cast<double>(res.optimistic_attempts))
          .set("optimistic_successes",
               static_cast<double>(res.optimistic_successes))
          .set("rollbacks", static_cast<double>(res.rollbacks))
          .set("regular_paths", static_cast<double>(res.regular_paths))
          .set("sync_overhead_ns", res.avg_sync_overhead_ns);
      auto ls = res.lock_stats;
      ls.name = "ctr.lock/think=" + std::to_string(think) +
                ",threshold=" + stats::Table::num(th);
      metrics.lock(ls);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "paper: example threshold 0.30 with decay 0.95; heavily\n"
               "contended locks fall back to regular requests, adding zero\n"
               "extra traffic.\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
