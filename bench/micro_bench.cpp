// Micro-benchmarks (google-benchmark): substrate costs and the group-size /
// topology ablation (DESIGN.md ablation C).
#include <benchmark/benchmark.h>

#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "net/spanning_tree.hpp"
#include "simkern/random.hpp"
#include "simkern/scheduler.hpp"
#include "sync/gwc_lock.hpp"
#include "workloads/counter.hpp"
#include "workloads/scenario_fig7.hpp"

namespace {

using namespace optsync;

// ----------------------------------------------------------- simkern -----

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t fired = 0;
    for (int i = 0; i < 1024; ++i) {
      sched.after(static_cast<sim::Duration>(i % 97), [&fired] { ++fired; });
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 256; ++i) {
      q.push(static_cast<sim::Time>((i * 37) % 101), [] {});
    }
    while (!q.empty()) {
      auto e = q.pop();
      benchmark::DoNotOptimize(e.id);
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(123);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Rng);

// ------------------------------------------------------------ network ----

void BM_SpanningTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = net::MeshTorus2D::near_square(n);
  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < n; ++i) members.push_back(i);
  for (auto _ : state) {
    net::SpanningTree tree(topo, members, 0);
    benchmark::DoNotOptimize(tree.radius_hops());
  }
}
BENCHMARK(BM_SpanningTreeBuild)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

sim::Process one_grant_cycle(sync::GwcQueueLock& lock, net::NodeId who) {
  co_await lock.acquire(who).join();
  lock.release(who);
}

// Group-size ablation: simulated grant latency + multicast cost as the
// sharing group grows (one full request/grant/release cycle, idle lock).
void BM_GwcGrantCycle_GroupSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = net::MeshTorus2D::near_square(n);
  // Farthest node from root 0 on a torus is the wrap-around midpoint —
  // NOT node n-1, which is diagonal-adjacent to 0.
  const auto far = static_cast<net::NodeId>(
      (topo.rows() / 2) * topo.cols() + topo.cols() / 2);
  std::uint64_t grant_ns_total = 0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
    std::vector<net::NodeId> members;
    for (net::NodeId i = 0; i < n; ++i) members.push_back(i);
    const auto g = sys.create_group(members, 0);
    const auto lockvar = sys.define_lock("L", g);
    sync::GwcQueueLock lock(sys, lockvar);
    auto proc = one_grant_cycle(lock, far);
    sched.run();
    proc.rethrow_if_failed();
    grant_ns_total += lock.stats().total_wait_ns;
    ++cycles;
  }
  state.counters["sim_grant_ns"] =
      benchmark::Counter(static_cast<double>(grant_ns_total) /
                         static_cast<double>(cycles));
}
BENCHMARK(BM_GwcGrantCycle_GroupSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ---------------------------------------------------------- optimistic ---

// Host-side cost of running one full optimistic execution in the simulator
// (includes journal save/restore bookkeeping).
void BM_OptimisticExecute(benchmark::State& state) {
  const auto topo = net::MeshTorus2D::near_square(8);
  for (auto _ : state) {
    sim::Scheduler sched;
    dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
    std::vector<net::NodeId> members;
    for (net::NodeId i = 0; i < 8; ++i) members.push_back(i);
    const auto g = sys.create_group(members, 0);
    const auto lockvar = sys.define_lock("L", g);
    const auto a = sys.define_mutex_data("a", g, lockvar);
    core::OptimisticMutex mux(sys, lockvar, core::OptimisticMutex::Config{});
    core::Section sec;
    sec.shared_writes = {a};
    sec.body = [&sched, a](dsm::DsmNode& nd) -> sim::Process {
      const auto v = nd.read(a);
      co_await sim::delay(sched, 500);
      nd.write(a, v + 1);
    };
    auto proc = mux.execute(3, sec);
    sched.run();
    proc.rethrow_if_failed();
    benchmark::DoNotOptimize(sys.node(0).read(a));
  }
}
BENCHMARK(BM_OptimisticExecute);

// Full Fig. 7 rollback interaction per iteration: measures the host cost of
// the heaviest protocol path (speculate, interrupt, rollback, retry).
void BM_RollbackInteraction(benchmark::State& state) {
  workloads::Fig7Params p;
  for (auto _ : state) {
    const auto res = workloads::run_scenario_fig7(p);
    if (res.final_a != res.expected_a) state.SkipWithError("wrong result");
    benchmark::DoNotOptimize(res.rollbacks);
  }
}
BENCHMARK(BM_RollbackInteraction);

// Host throughput of the counter workload (whole simulation per iteration).
void BM_CounterWorkload(benchmark::State& state) {
  const auto topo = net::MeshTorus2D::near_square(8);
  workloads::CounterParams p;
  p.increments_per_node = 10;
  for (auto _ : state) {
    const auto res =
        run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
    if (res.final_count != res.expected_count) {
      state.SkipWithError("mutual exclusion violation");
    }
    benchmark::DoNotOptimize(res.elapsed);
  }
}
BENCHMARK(BM_CounterWorkload);

}  // namespace

BENCHMARK_MAIN();
