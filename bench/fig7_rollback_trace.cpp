// Regenerates the paper's Figure 7: "The Most Complex Rollback Interaction".
//
// A requester far from the group root speculates (optimistic update a = x)
// while a nearer processor's request, update (a = y), and release win the
// race to the root. The trace shows: both lock requests, the near grant, the
// far node's interrupt + rollback, the root silently dropping the stale
// speculative update, and the final correct update after the queued grant.
#include <iostream>

#include "bench_metrics.hpp"
#include "util/flags.hpp"
#include "workloads/scenario_fig7.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;

  const util::Flags flags(argc, argv);
  bench::Harness harness("fig7_rollback_trace", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();

  workloads::Fig7Params params;
  harness.apply(params.dsm);
  const auto res = workloads::run_scenario_fig7(params);

  std::cout << "Figure 7: the most complex rollback interaction\n\n"
            << "message trace:\n"
            << res.trace << "\n";

  std::cout << "checks:\n"
            << "  final a                 = " << res.final_a << " (expected "
            << res.expected_a << ") "
            << (res.final_a == res.expected_a ? "OK" : "MISMATCH") << "\n"
            << "  rollbacks               = " << res.rollbacks
            << " (expected 1) " << (res.rollbacks == 1 ? "OK" : "MISMATCH")
            << "\n"
            << "  root speculative drops  = " << res.speculative_drops
            << " (expected >= 1) "
            << (res.speculative_drops >= 1 ? "OK" : "MISMATCH") << "\n"
            << "  far node used optimistic= "
            << (res.far_used_optimistic ? "yes" : "no") << "\n"
            << "  HW-blocked self echoes  = " << res.echoes_dropped << "\n"
            << "  elapsed                 = " << sim::format_time(res.elapsed)
            << "\n";

  bool ok = res.final_a == res.expected_a && res.rollbacks == 1 &&
            res.speculative_drops >= 1 && res.far_used_optimistic;
  std::cout << "\n" << (ok ? "PASS" : "FAIL")
            << ": wrong-speculation is rolled back, the speculative write is"
               " suppressed at the root,\nand the retried section produces"
               " the same state a non-optimistic execution would.\n";

  metrics.row("fig7")
      .set("final_a", static_cast<double>(res.final_a))
      .set("rollbacks", static_cast<double>(res.rollbacks))
      .set("speculative_drops", static_cast<double>(res.speculative_drops))
      .set("echoes_dropped", static_cast<double>(res.echoes_dropped))
      .set("elapsed_ns", static_cast<double>(res.elapsed));
  metrics.lock(res.lock_stats);
  if (!harness.finish()) ok = false;
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
