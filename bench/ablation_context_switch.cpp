// Ablation C': context-swap cost (paper §4/§5: a blocked requester does
// "either a context swap or a busy wait").
//
// Optimistic synchronization's benefit compounds with expensive blocking:
// a successful speculation never blocks, so it never swaps. Sweeping the
// per-swap cost under light contention shows the per-section
// synchronization overhead gap widening between the optimistic and regular
// protocols, while heavy contention (where the history disables
// speculation) keeps them equal.
#include <iostream>

#include "bench_metrics.hpp"
#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "simkern/random.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

using namespace optsync;

namespace {

struct RunResult {
  double avg_overhead_ns = 0;  ///< (request..release) - body, per section
  std::uint64_t swaps = 0;
  std::uint64_t speculations = 0;
  stats::LockStats lock_stats;
};

RunResult run(bool optimistic, sim::Duration swap_ns,
              sim::Duration think_mean_ns, std::uint64_t seed,
              const dsm::DsmConfig& dcfg) {
  constexpr std::size_t kNodes = 64;
  constexpr int kSections = 20;
  constexpr sim::Duration kBody = 4'000;

  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(kNodes);
  dsm::DsmSystem sys(sched, topo, dcfg);
  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);
  const auto lock = sys.define_lock("L", g);
  const auto a = sys.define_mutex_data("a", g, lock, 0);

  stats::LockStats lstats;
  lstats.name = optimistic ? "L/optimistic" : "L/regular";
  core::OptimisticMutex::Config cfg;
  cfg.enable_optimistic = optimistic;
  cfg.context_switch_ns = swap_ns;
  cfg.lock_stats = &lstats;
  core::OptimisticMutex mux(sys, lock, cfg);

  sim::Duration total_overhead = 0;
  std::vector<sim::Process> procs;
  auto worker = [&](net::NodeId n) -> sim::Process {
    sim::Rng rng(seed * 0x9e3779b9ull + n * 131 + 7);
    // Phase-stagger the starts so the first requests don't collide.
    co_await sim::delay(sched,
                        static_cast<sim::Duration>(n) * think_mean_ns / 8);
    for (int k = 0; k < kSections; ++k) {
      co_await sim::delay(
          sched, static_cast<sim::Duration>(
                     rng.exponential(static_cast<double>(think_mean_ns))));
      const sim::Time entered = sched.now();
      core::Section sec;
      sec.shared_writes = {a};
      sec.body = [&sys, &sched, a](dsm::DsmNode& nd) -> sim::Process {
        const auto v = nd.read(a);
        co_await sim::delay(sched, kBody);
        nd.write(a, v + 1);
      };
      co_await mux.execute(n, std::move(sec)).join();
      total_overhead += sched.now() - entered - kBody;
    }
  };
  for (net::NodeId n = 0; n < kNodes; ++n) procs.push_back(worker(n));
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  if (sys.node(0).read(a) != static_cast<dsm::Word>(kNodes) * kSections) {
    std::cerr << "MUTUAL EXCLUSION VIOLATION\n";
    std::exit(1);
  }
  RunResult res;
  res.avg_overhead_ns = static_cast<double>(total_overhead) /
                        (static_cast<double>(kNodes) * kSections);
  res.swaps = mux.stats().context_switches;
  res.speculations = mux.stats().optimistic_attempts;
  lstats.root_speculative_drops = sys.root_of(g).stats().speculative_drops;
  res.lock_stats = std::move(lstats);
  return res;
}

void sweep(const char* label, sim::Duration think_mean_ns, std::uint64_t seed,
           const dsm::DsmConfig& dcfg, benchio::MetricsOut& metrics) {
  std::cout << "--- " << label << " (mean think "
            << sim::format_time(think_mean_ns) << ") ---\n";
  stats::Table table({"swap cost", "opt overhead/section",
                      "reg overhead/section", "reg/opt", "opt swaps",
                      "reg swaps", "speculations"});
  for (const sim::Duration swap : {0ull, 1'000ull, 5'000ull, 20'000ull}) {
    const auto opt = run(true, swap, think_mean_ns, seed, dcfg);
    const auto reg = run(false, swap, think_mean_ns, seed, dcfg);
    table.add_row(
        {sim::format_time(swap),
         sim::format_time(static_cast<sim::Time>(opt.avg_overhead_ns)),
         sim::format_time(static_cast<sim::Time>(reg.avg_overhead_ns)),
         stats::Table::num(reg.avg_overhead_ns /
                           std::max(opt.avg_overhead_ns, 1.0)),
         std::to_string(opt.swaps), std::to_string(reg.swaps),
         std::to_string(opt.speculations)});
    metrics
        .row(std::string(label) + ",swap=" + std::to_string(swap))
        .set("opt_overhead_ns", opt.avg_overhead_ns)
        .set("reg_overhead_ns", reg.avg_overhead_ns)
        .set("opt_swaps", static_cast<double>(opt.swaps))
        .set("reg_swaps", static_cast<double>(reg.swaps))
        .set("speculations", static_cast<double>(opt.speculations))
        .set("rollbacks", static_cast<double>(opt.lock_stats.rollbacks));
    if (swap == 20'000ull) {
      auto opt_ls = opt.lock_stats;
      opt_ls.name = "L/optimistic/" + std::string(label);
      metrics.lock(opt_ls);
      auto reg_ls = reg.lock_stats;
      reg_ls.name = "L/regular/" + std::string(label);
      metrics.lock(reg_ls);
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  bench::Harness harness("ablation_context_switch", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();
  const auto seed = harness.seed();
  dsm::DsmConfig dcfg;
  harness.apply(dcfg);
  std::cout << "Ablation: context-swap cost (64 CPUs, 4us sections)\n\n";
  sweep("light contention", 4'000'000, seed, dcfg, metrics);  // ~2% utilized
  sweep("heavy contention", 100'000, seed, dcfg, metrics);  // oversubscribed
  std::cout << "Light contention: speculation hides the grant entirely, so\n"
               "the optimistic protocol pays neither the wait nor the swap.\n"
               "Heavy contention: the usage history disables speculation and\n"
               "both protocols queue (and swap) identically — optimism never\n"
               "hurts.\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
