// Ablation D: the §2 single-writer claim, quantified.
//
// "Since writes are ordered, the case for one writer is simple; an ordinary
// variable can lock a data structure awaited by reader(s) ... reader-writer
// locks distributed with shared data structures ... eliminate most
// synchronization penalties when there is only one writer."
//
// One producer updates a 4-field record that every other node reads each
// round. Three implementations:
//   publication — PublishedRecord (version + fields, no lock at all);
//   mutex       — OptimisticMutex around the same four writes;
//   regular     — non-optimistic GWC queue lock around them.
// The lock-free publication pays zero synchronization messages and zero
// writer stalls; the mutex variants pay a full lock cycle per update even
// though no contention ever exists.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_metrics.hpp"
#include "core/optimistic_mutex.hpp"
#include "core/publication.hpp"
#include "dsm/system.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

using namespace optsync;

namespace {

constexpr std::size_t kNodes = 16;
constexpr int kRounds = 64;
constexpr sim::Duration kGap = 5'000;

struct Outcome {
  sim::Time elapsed = 0;
  std::uint64_t messages = 0;
  bool torn_free = true;
  stats::LockStats lock_stats;  ///< mutex variants only
};

enum class Variant { kPublication, kOptimisticMutex, kRegularMutex };

Outcome run(Variant variant, const dsm::DsmConfig& dcfg) {
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(kNodes);
  dsm::DsmSystem sys(sched, topo, dcfg);
  std::vector<dsm::NodeId> members;
  for (dsm::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  const auto g = sys.create_group(members, 0);

  Outcome out;
  std::vector<sim::Process> procs;

  if (variant == Variant::kPublication) {
    core::PublishedRecord rec(sys, g, "rec", 4, /*writer=*/1);
    auto writer = [&]() -> sim::Process {
      for (int r = 1; r <= kRounds; ++r) {
        co_await sim::delay(sched, kGap);
        rec.publish({r, r * 2, r * 3, r * 4});
      }
    };
    auto reader = [&](dsm::NodeId me) -> sim::Process {
      for (int r = 1; r <= kRounds; ++r) {
        co_await sim::delay(sched, kGap);
        std::vector<dsm::Word> snap;
        co_await rec.read(me, &snap).join();
        if (snap[1] != snap[0] * 2 || snap[3] != snap[0] * 4) {
          out.torn_free = false;
        }
      }
    };
    procs.push_back(writer());
    for (dsm::NodeId i = 0; i < kNodes; ++i) {
      if (i != 1) procs.push_back(reader(i));
    }
    sched.run();
    for (auto& p : procs) p.rethrow_if_failed();
    out.elapsed = sched.now();
    out.messages = sys.network().stats().messages;
    return out;
  }

  // Mutex variants: same four fields, but guarded.
  const auto lock = sys.define_lock("L", g);
  std::vector<dsm::VarId> fields;
  for (int i = 0; i < 4; ++i) {
    fields.push_back(
        sys.define_mutex_data("f" + std::to_string(i), g, lock, 0));
  }
  stats::LockStats lstats;
  lstats.name =
      variant == Variant::kOptimisticMutex ? "L/optimistic" : "L/regular";
  core::OptimisticMutex::Config cfg;
  cfg.enable_optimistic = variant == Variant::kOptimisticMutex;
  cfg.lock_stats = &lstats;
  core::OptimisticMutex mux(sys, lock, cfg);

  auto writer = [&]() -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      core::Section sec;
      sec.shared_writes = fields;
      sec.body = [&fields, r](dsm::DsmNode& n) -> sim::Process {
        for (int i = 0; i < 4; ++i) {
          n.write(fields[static_cast<std::size_t>(i)],
                  static_cast<dsm::Word>(r * (i + 1)));
        }
        co_return;
      };
      co_await mux.execute(1, std::move(sec)).join();
    }
  };
  auto reader = [&](dsm::NodeId me) -> sim::Process {
    for (int r = 1; r <= kRounds; ++r) {
      co_await sim::delay(sched, kGap);
      // Readers of mutex data would strictly need the lock too; reading
      // locally is the favorable interpretation for the mutex variants.
      const dsm::Word f0 = sys.node(me).read(fields[0]);
      const dsm::Word f1 = sys.node(me).read(fields[1]);
      if (f1 != f0 * 2 && f1 != (f0 + 1) * 2 && f1 != (f0 - 1) * 2) {
        // tearing window (fields from different rounds) is possible here —
        // exactly why the version protocol exists; don't fail, just note.
        out.torn_free = false;
      }
    }
  };
  procs.push_back(writer());
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    if (i != 1) procs.push_back(reader(i));
  }
  sched.run();
  for (auto& p : procs) p.rethrow_if_failed();
  out.elapsed = sched.now();
  out.messages = sys.network().stats().messages;
  lstats.root_speculative_drops = sys.root_of(g).stats().speculative_drops;
  out.lock_stats = std::move(lstats);
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Flags flags(argc, argv);
  bench::Harness harness("ablation_single_writer", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();
  dsm::DsmConfig dcfg;
  harness.apply(dcfg);
  std::cout << "Ablation: single-writer publication vs locking (§2)\n"
            << "(" << kNodes << " CPUs, 1 writer, " << kRounds
            << " updates of a 4-field record, readers every round)\n\n";
  stats::Table table({"variant", "elapsed", "messages", "consistent reads"});
  const auto pub = run(Variant::kPublication, dcfg);
  const auto opt = run(Variant::kOptimisticMutex, dcfg);
  const auto reg = run(Variant::kRegularMutex, dcfg);
  table.add_row({"publication (no lock)", sim::format_time(pub.elapsed),
                 std::to_string(pub.messages), pub.torn_free ? "yes" : "NO"});
  table.add_row({"optimistic mutex", sim::format_time(opt.elapsed),
                 std::to_string(opt.messages),
                 opt.torn_free ? "yes" : "torn possible"});
  table.add_row({"regular GWC lock", sim::format_time(reg.elapsed),
                 std::to_string(reg.messages),
                 reg.torn_free ? "yes" : "torn possible"});
  table.print(std::cout);
  std::cout << "\nOne writer needs no mutual exclusion under GWC. Traffic is"
               " a wash\n(two version multicasts cost what one lock cycle"
               " costs at this group\nsize), but the publication never waits:"
               " no request/grant round trip\nserializes the writer, so the"
               " run finishes ~12% sooner — and the\nversion bracket makes"
               " torn reads structurally impossible rather than\nmerely"
               " unobserved.\n";

  metrics.row("publication")
      .set("elapsed_ns", static_cast<double>(pub.elapsed))
      .set("messages", static_cast<double>(pub.messages))
      .set("torn_free", pub.torn_free ? 1.0 : 0.0);
  metrics.row("optimistic_mutex")
      .set("elapsed_ns", static_cast<double>(opt.elapsed))
      .set("messages", static_cast<double>(opt.messages))
      .set("rollbacks", static_cast<double>(opt.lock_stats.rollbacks));
  metrics.row("regular_mutex")
      .set("elapsed_ns", static_cast<double>(reg.elapsed))
      .set("messages", static_cast<double>(reg.messages))
      .set("rollbacks", static_cast<double>(reg.lock_stats.rollbacks));
  metrics.lock(opt.lock_stats);
  metrics.lock(reg.lock_stats);
  if (!harness.finish()) return 1;
  return pub.torn_free ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
