// Regenerates the paper's Figure 1: wasted idle times for three successive
// sets of mutually exclusive accesses under Sesame group write consistency,
// entry consistency, and weak/release consistency.
//
// Expected shape (paper §3): GWC finishes first with the least idle time;
// entry consistency pays an invalidation round trip plus data transmission
// with each grant; weak/release consistency is slowest because each release
// is blocked until the holder's updates reach all nodes and each acquire may
// need three one-way messages.
#include <iostream>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/scenario_fig1.hpp"

int main(int argc, char** argv) {
  using namespace optsync;
  using workloads::Fig1Model;

  const util::Flags flags(argc, argv);
  flags.allow_only({"metrics-out"});
  benchio::MetricsOut metrics("fig1_locking_comparison",
                              flags.get("metrics-out"));

  std::cout << "Figure 1: locking comparison (3 CPUs, one lock; CPU1 and\n"
               "CPU3 request early, CPU2 — the root/manager — later)\n\n";

  workloads::Fig1Params params;
  stats::Table table({"model", "total", "idle CPU1", "idle CPU2", "idle CPU3",
                      "total idle", "grant order"});

  for (const auto model :
       {Fig1Model::kGwc, Fig1Model::kEntry, Fig1Model::kWeakRelease}) {
    const auto res = workloads::run_scenario_fig1(model, params);
    std::cout << "--- " << workloads::fig1_model_name(model) << " ---\n"
              << res.timeline << "\n";
    const auto total_idle = res.idle_ns[0] + res.idle_ns[1] + res.idle_ns[2];
    table.add_row({workloads::fig1_model_name(model),
                   sim::format_time(res.total_ns),
                   sim::format_time(res.idle_ns[0]),
                   sim::format_time(res.idle_ns[1]),
                   sim::format_time(res.idle_ns[2]),
                   sim::format_time(total_idle),
                   std::to_string(res.grant_order[0]) + "," +
                       std::to_string(res.grant_order[1]) + "," +
                       std::to_string(res.grant_order[2])});
    metrics.row(std::string(workloads::fig1_model_name(model)))
        .set("total_ns", static_cast<double>(res.total_ns))
        .set("idle_cpu1_ns", static_cast<double>(res.idle_ns[0]))
        .set("idle_cpu2_ns", static_cast<double>(res.idle_ns[1]))
        .set("idle_cpu3_ns", static_cast<double>(res.idle_ns[2]))
        .set("total_idle_ns", static_cast<double>(total_idle));
  }

  table.print(std::cout);
  std::cout << "\npaper: same time scale in all three parts shows GWC better"
               " than entry,\nweak, or release consistency for this example.\n";
  return metrics.write() ? 0 : 1;
}
