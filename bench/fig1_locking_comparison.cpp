// Regenerates the paper's Figure 1: wasted idle times for three successive
// sets of mutually exclusive accesses under Sesame group write consistency,
// entry consistency, and weak/release consistency.
//
// Expected shape (paper §3): GWC finishes first with the least idle time;
// entry consistency pays an invalidation round trip plus data transmission
// with each grant; weak/release consistency is slowest because each release
// is blocked until the holder's updates reach all nodes and each acquire may
// need three one-way messages.
//
// A second section quantifies root write coalescing: the same GWC scenario
// runs unbatched (--coalesce-max-writes=1) and batched, each under its own
// flight recorder + GwcChecker, and the bench fails unless the batched run
// applies the exact same mutex-data writes in the exact same order on every
// node with the same grant order — coalescing may only change the framing,
// never the observable write sequence.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_metrics.hpp"
#include "stats/table.hpp"
#include "trace/gwc_checker.hpp"
#include "trace/recorder.hpp"
#include "util/flags.hpp"
#include "workloads/scenario_fig1.hpp"

namespace {

using namespace optsync;

/// (var, value, origin) of every sequenced mutex-data write a node applied,
/// in application order — the observable behavior coalescing must preserve.
/// Lock words are excluded on purpose: batching legitimately changes *which*
/// lock words exist (a request arriving mid-frame sees a queue where the
/// unbatched run saw FREE), but never the data writes or the grant order.
using AppliedLog = std::map<std::uint32_t,
                            std::vector<std::tuple<std::uint32_t, std::int64_t,
                                                   std::uint32_t>>>;

struct CoalesceRun {
  workloads::Fig1Result res;
  AppliedLog applied;
  bool checker_ok = false;
  std::string checker_report;
};

CoalesceRun run_gwc_with_checker(workloads::Fig1Params params,
                                 std::uint32_t batch) {
  CoalesceRun run;
  trace::Recorder rec(1 << 18);
  trace::GwcChecker checker;
  checker.install(rec);
  rec.add_sink([&run](const trace::Event& e) {
    if (e.kind == trace::EventKind::kNodeApply && e.label == "mutex-data") {
      run.applied[e.node].emplace_back(e.var, e.value, e.origin);
    }
  });
  params.dsm.coalesce_max_writes = batch;
  params.dsm.recorder = &rec;
  run.res = run_scenario_fig1(workloads::Fig1Model::kGwc, params);
  run.checker_ok = checker.ok();
  run.checker_report = checker.report();
  return run;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace optsync;
  using workloads::Fig1Model;

  const util::Flags flags(argc, argv);
  bench::Harness harness("fig1_locking_comparison", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();

  std::cout << "Figure 1: locking comparison (3 CPUs, one lock; CPU1 and\n"
               "CPU3 request early, CPU2 — the root/manager — later)\n\n";

  workloads::Fig1Params params;
  harness.apply(params.dsm);
  stats::Table table({"model", "total", "idle CPU1", "idle CPU2", "idle CPU3",
                      "total idle", "grant order"});

  for (const auto model :
       {Fig1Model::kGwc, Fig1Model::kEntry, Fig1Model::kWeakRelease}) {
    const auto res = workloads::run_scenario_fig1(model, params);
    std::cout << "--- " << workloads::fig1_model_name(model) << " ---\n"
              << res.timeline << "\n";
    const auto total_idle = res.idle_ns[0] + res.idle_ns[1] + res.idle_ns[2];
    table.add_row({workloads::fig1_model_name(model),
                   sim::format_time(res.total_ns),
                   sim::format_time(res.idle_ns[0]),
                   sim::format_time(res.idle_ns[1]),
                   sim::format_time(res.idle_ns[2]),
                   sim::format_time(total_idle),
                   std::to_string(res.grant_order[0]) + "," +
                       std::to_string(res.grant_order[1]) + "," +
                       std::to_string(res.grant_order[2])});
    metrics.row(std::string(workloads::fig1_model_name(model)))
        .set("total_ns", static_cast<double>(res.total_ns))
        .set("idle_cpu1_ns", static_cast<double>(res.idle_ns[0]))
        .set("idle_cpu2_ns", static_cast<double>(res.idle_ns[1]))
        .set("idle_cpu3_ns", static_cast<double>(res.idle_ns[2]))
        .set("total_idle_ns", static_cast<double>(total_idle))
        .set("messages", static_cast<double>(res.messages))
        .set("hop_bytes", static_cast<double>(res.hop_bytes));
  }

  table.print(std::cout);
  std::cout << "\npaper: same time scale in all three parts shows GWC better"
               " than entry,\nweak, or release consistency for this example.\n";

  // --- root write coalescing: batch=1 vs batch=N, same observable run ---
  const std::uint32_t batched =
      harness.coalesce_max_writes() > 1 ? harness.coalesce_max_writes() : 64;
  workloads::Fig1Params cp;  // fresh params: the unbatched leg must be the
  harness.apply(cp.dsm);     // true baseline regardless of the user's flags
  const auto base = run_gwc_with_checker(cp, 1);
  const auto coal = run_gwc_with_checker(cp, batched);

  std::cout << "\nroot write coalescing (GWC model, --coalesce-max-writes="
            << batched << " vs 1):\n";
  stats::Table ctable({"batch", "messages", "bytes", "hop bytes", "frames",
                       "total"});
  for (const auto* r : {&base, &coal}) {
    ctable.add_row({std::to_string(r == &base ? 1 : batched),
                    std::to_string(r->res.messages),
                    std::to_string(r->res.bytes),
                    std::to_string(r->res.hop_bytes),
                    std::to_string(r->res.frames),
                    sim::format_time(r->res.total_ns)});
  }
  ctable.print(std::cout);

  const double msg_ratio = static_cast<double>(base.res.messages) /
                           static_cast<double>(std::max<std::uint64_t>(
                               coal.res.messages, 1));
  const double hop_ratio = static_cast<double>(base.res.hop_bytes) /
                           static_cast<double>(std::max<std::uint64_t>(
                               coal.res.hop_bytes, 1));
  std::cout << "  message reduction   " << stats::Table::num(msg_ratio)
            << "x\n  hop-byte reduction  " << stats::Table::num(hop_ratio)
            << "x\n";

  bool ok = true;
  if (!base.checker_ok || !coal.checker_ok) {
    std::cout << "GWC CHECKER FAILED\n  batch=1: " << base.checker_report
              << "\n  batch=" << batched << ": " << coal.checker_report
              << "\n";
    ok = false;
  }
  if (base.applied != coal.applied) {
    std::cout << "APPLIED-WRITE MISMATCH: batching changed the mutex-data"
                 " writes some node observed\n";
    ok = false;
  }
  if (base.res.grant_order != coal.res.grant_order) {
    std::cout << "GRANT-ORDER MISMATCH: batching reordered the critical"
                 " sections\n";
    ok = false;
  }
  if (coal.res.messages >= base.res.messages ||
      coal.res.hop_bytes >= base.res.hop_bytes) {
    std::cout << "NO REDUCTION: batched run sent at least as much as"
                 " unbatched\n";
    ok = false;
  }
  if (batched >= 64 && msg_ratio < 2.0) {
    std::cout << "REDUCTION BELOW TARGET: expected >= 2x messages at batch "
              << batched << "\n";
    ok = false;
  }
  std::cout << (ok ? "coalescing check OK" : "coalescing check FAILED")
            << ": identical GwcChecker-verified write order"
               " across batch sizes\n";

  for (const auto* r : {&base, &coal}) {
    metrics.row("coalesce,batch=" +
                std::to_string(r == &base ? 1 : batched))
        .set("messages", static_cast<double>(r->res.messages))
        .set("bytes", static_cast<double>(r->res.bytes))
        .set("hop_bytes", static_cast<double>(r->res.hop_bytes))
        .set("frames", static_cast<double>(r->res.frames))
        .set("total_ns", static_cast<double>(r->res.total_ns));
  }
  metrics.row("coalesce,reduction")
      .set("message_ratio", msg_ratio)
      .set("hop_byte_ratio", hop_ratio)
      .set("order_identical", ok ? 1.0 : 0.0);

  if (!harness.finish()) ok = false;
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
