// Shared --metrics-out support for the figure/ablation benches.
//
// Every bench main accepts `--metrics-out PATH` and, when given, writes one
// JSON document describing the run (schema "optsync-bench/1", documented in
// EXPERIMENTS.md):
//
//   {
//     "schema": "optsync-bench/1",
//     "bench": "<executable name>",
//     "rows": [ {"label": "...", "<metric>": <number>, ...}, ... ],
//     "locks": [ <stats::LockStats JSON>, ... ]
//   }
//
// "rows" mirrors the human-readable table the bench prints (one object per
// table row, metric names as keys); "locks" carries the per-lock flight
// records (acquire/hold percentiles, speculation outcomes) where the bench
// exercises the GWC lock protocol.
//
// Header-only on purpose: benches are standalone executables and this keeps
// the CMake wiring untouched.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/json.hpp"
#include "stats/lock_stats.hpp"

namespace optsync::benchio {

class MetricsOut {
 public:
  MetricsOut(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  /// False when no --metrics-out was requested; rows may still be added
  /// (cheap), they are simply never written.
  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
    Row& set(std::string key, double v) {
      metrics.emplace_back(std::move(key), v);
      return *this;
    }
  };

  /// Starts a new row; chain `.set("metric", value)` calls on the result.
  Row& row(std::string label) {
    rows_.emplace_back();
    rows_.back().label = std::move(label);
    return rows_.back();
  }

  /// Records a per-lock flight record (copied; call after the run finishes).
  void lock(const stats::LockStats& ls) { locks_.push_back(ls); }

  /// Writes the document. Returns false (and reports on stderr) on I/O
  /// failure so mains can propagate a nonzero exit code.
  [[nodiscard]] bool write() const {
    if (!enabled()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "error: cannot open --metrics-out file: " << path_ << "\n";
      return false;
    }
    stats::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.value("schema", "optsync-bench/1");
    w.value("bench", bench_);
    w.begin_array("rows");
    for (const auto& r : rows_) {
      w.begin_object();
      w.value("label", r.label);
      for (const auto& [key, v] : r.metrics) w.value(key, v);
      w.end_object();
    }
    w.end_array();
    w.begin_array("locks");
    for (const auto& ls : locks_) ls.write_json(w);
    w.end_array();
    w.end_object();
    out << "\n";
    if (!out) {
      std::cerr << "error: failed writing --metrics-out file: " << path_
                << "\n";
      return false;
    }
    std::cerr << "metrics written to " << path_ << "\n";
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
  std::vector<stats::LockStats> locks_;
};

}  // namespace optsync::benchio
