// Shared --metrics-out support for the figure/ablation benches.
//
// Every bench main accepts `--metrics-out PATH` and, when given, writes one
// JSON document describing the run (schema "optsync-bench/5", documented in
// EXPERIMENTS.md):
//
//   {
//     "schema": "optsync-bench/5",
//     "bench": "<executable name>",
//     "rows": [ {"label": "...", "<metric>": <number>, ...}, ... ],
//     "locks": [ <stats::LockStats JSON>, ... ]
//   }
//
// "rows" mirrors the human-readable table the bench prints (one object per
// table row, metric names as keys); "locks" carries the per-lock flight
// records (acquire/hold percentiles, speculation outcomes) where the bench
// exercises the GWC lock protocol.
//
// /3 adds the lease-tier counters: benches and the service CLI running
// partial replication emit "lease,shard=N" rows (hits, grants,
// invalidations, remote_reads, forwarded_ops, hit_rate) and
// service_scaling adds the "lease_read_heavy" / "lease_fault_soak"
// comparison rows.
//
// /4 adds the elastic-fabric counters: dsm_service --elastic emits an
// "elastic" rollup row (control_actions, dir_epoch, client_redirects,
// handoff_replayed) plus per-shard "elastic,shard=N" rows (migrations,
// splits, merges, promotions, demotions, redirects), and service_scaling
// adds the "hotspot_shift" static-vs-elastic comparison row.
//
// /5 adds the decision-forensics fields: "shard=N" rows gain the
// abort-reason partition (aborts_read_clobber, aborts_validation,
// aborts_dir_epoch — they sum to txn_aborts) and hot-stripe attribution
// (hot_stripe, hot_stripe_conflicts), traced benches emit critical-path
// shares per bucket (path_<bucket>_share) plus p99_path_named_fraction,
// and the harness grows `--journal-out PATH` writing the structured
// decision journal ("optsync-journal/1") tools/dsm_inspect consumes.
//
// bench::Harness (below) layers the rest of the shared bench plumbing on
// top: the standard flag set every bench accepts (--seed, --metrics-out,
// --trace-out, --coalesce-max-writes, --coalesce-max-ns, --ack-delay-ns),
// the flight recorder wiring for --trace-out, and the end-of-run writes.
// Before it, eleven bench mains and the CLI each re-parsed these flags by
// hand and each grew its own subset.
//
// Header-only on purpose: benches are standalone executables and this keeps
// the CMake wiring untouched.
#pragma once

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dsm/types.hpp"
#include "stats/json.hpp"
#include "stats/lock_stats.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/tracer.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"
#include "util/flags.hpp"

namespace optsync::benchio {

class MetricsOut {
 public:
  MetricsOut(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  /// False when no --metrics-out was requested; rows may still be added
  /// (cheap), they are simply never written.
  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
    Row& set(std::string key, double v) {
      metrics.emplace_back(std::move(key), v);
      return *this;
    }
  };

  /// Starts a new row; chain `.set("metric", value)` calls on the result.
  Row& row(std::string label) {
    rows_.emplace_back();
    rows_.back().label = std::move(label);
    return rows_.back();
  }

  /// Records a per-lock flight record (copied; call after the run finishes).
  void lock(const stats::LockStats& ls) { locks_.push_back(ls); }

  /// Writes the document. Returns false (and reports on stderr) on I/O
  /// failure so mains can propagate a nonzero exit code.
  [[nodiscard]] bool write() const {
    if (!enabled()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "error: cannot open --metrics-out file: " << path_ << "\n";
      return false;
    }
    stats::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.value("schema", "optsync-bench/5");
    w.value("bench", bench_);
    w.begin_array("rows");
    for (const auto& r : rows_) {
      w.begin_object();
      w.value("label", r.label);
      for (const auto& [key, v] : r.metrics) w.value(key, v);
      w.end_object();
    }
    w.end_array();
    w.begin_array("locks");
    for (const auto& ls : locks_) ls.write_json(w);
    w.end_array();
    w.end_object();
    out << "\n";
    if (!out) {
      std::cerr << "error: failed writing --metrics-out file: " << path_
                << "\n";
      return false;
    }
    std::cerr << "metrics written to " << path_ << "\n";
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
  std::vector<stats::LockStats> locks_;
};

/// The shared bench/CLI plumbing: standard flags, recorder, output writes.
///
/// Usage pattern:
///
///   util::Flags flags(argc, argv);
///   benchio::Harness h("fig1_locking_comparison", flags);
///   h.allow_only(flags, {"nodes", "think"});   // bench-specific extras
///   ...
///   Params p;
///   h.apply(p.dsm);           // coalescing knobs, ack delay, recorder
///   ... run, fill h.metrics() rows ...
///   return h.finish() && ok ? 0 : 1;
///
/// Flags handled here (defaults mirror DsmConfig / ReliableConfig, so an
/// unflagged run is byte-identical to constructing the config directly):
///   --seed N                 workload/fault seed (default 42)
///   --metrics-out PATH       optsync-bench/4 JSON document
///   --trace-out PATH         Chrome trace of the run's flight record
///   --trace-capacity N       flight-recorder ring size (default 65536)
///   --coalesce-max-writes N  root frame size cap (default 1 = unbatched)
///   --coalesce-max-ns NS     partial-frame flush deadline
///   --ack-delay-ns NS        reliable-channel delayed/piggybacked acks
///   --prom-out PATH          Prometheus text exposition of the sampler
///   --timeseries-out PATH    optsync-timeseries/1 JSON of the sampler
///   --sample-interval-ns NS  sampler tick period (default 50000)
///   --journal-out PATH       optsync-journal/1 decision journal
///   --journal-capacity N     journal event pool size (default 65536)
///
/// Validated while still signed — the pool size is a std::size_t, so a
/// negative flag value would otherwise wrap into an absurd reserve.
inline std::size_t checked_journal_capacity(const util::Flags& flags) {
  const std::int64_t cap = flags.get_int("journal-capacity", 1 << 16);
  if (cap <= 0) throw std::invalid_argument("--journal-capacity must be > 0");
  return static_cast<std::size_t>(cap);
}

class Harness {
 public:
  Harness(std::string bench, const util::Flags& flags)
      : metrics_(std::move(bench), flags.get("metrics-out")),
        trace_out_(flags.get("trace-out")),
        prom_out_(flags.get("prom-out")),
        timeseries_out_(flags.get("timeseries-out")),
        journal_out_(flags.get("journal-out")),
        journal_(checked_journal_capacity(flags)),
        seed_(static_cast<std::uint64_t>(flags.get_int("seed", 42))),
        coalesce_max_writes_(static_cast<std::uint32_t>(
            flags.get_int("coalesce-max-writes",
                          dsm::DsmConfig{}.coalesce_max_writes))),
        coalesce_max_ns_(
            flags.get_int("coalesce-max-ns", dsm::DsmConfig{}.coalesce_max_ns)),
        ack_delay_ns_(flags.get_int("ack-delay-ns",
                                    net::ReliableConfig{}.ack_delay_ns)),
        recorder_(static_cast<std::size_t>(
            flags.get_int("trace-capacity", 1 << 16))),
        sampler_(telemetry::SamplerConfig{
            static_cast<sim::Duration>(flags.get_int(
                "sample-interval-ns",
                static_cast<std::int64_t>(
                    telemetry::SamplerConfig{}.interval_ns))),
            telemetry::SamplerConfig{}.capacity}) {}

  /// Flags::allow_only with the harness's standard names spliced in; pass
  /// only the bench-specific extras.
  void allow_only(const util::Flags& flags,
                  std::vector<std::string> extras) const {
    extras.insert(extras.end(),
                  {"seed", "metrics-out", "trace-out", "trace-capacity",
                   "coalesce-max-writes", "coalesce-max-ns", "ack-delay-ns",
                   "prom-out", "timeseries-out", "sample-interval-ns",
                   "journal-out", "journal-capacity"});
    flags.allow_only(extras);
  }

  /// Pushes the standard knobs into a run's DsmConfig. Wires the flight
  /// recorder in when --trace-out was requested; the causal tracer is
  /// always attached (an untraced op costs one branch per hook).
  void apply(dsm::DsmConfig& cfg) {
    cfg.coalesce_max_writes = coalesce_max_writes_;
    cfg.coalesce_max_ns = coalesce_max_ns_;
    cfg.reliable.ack_delay_ns = ack_delay_ns_;
    if (tracing()) cfg.recorder = &recorder_;
    cfg.tracer = &tracer_;
    if (journaling()) cfg.journal = &journal_;
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint32_t coalesce_max_writes() const {
    return coalesce_max_writes_;
  }
  [[nodiscard]] sim::Duration coalesce_max_ns() const {
    return coalesce_max_ns_;
  }
  [[nodiscard]] sim::Duration ack_delay_ns() const { return ack_delay_ns_; }

  [[nodiscard]] bool tracing() const { return !trace_out_.empty(); }
  [[nodiscard]] bool sampling() const {
    return !prom_out_.empty() || !timeseries_out_.empty();
  }
  [[nodiscard]] bool journaling() const { return !journal_out_.empty(); }
  [[nodiscard]] trace::Recorder& recorder() { return recorder_; }
  [[nodiscard]] telemetry::Tracer& tracer() { return tracer_; }
  [[nodiscard]] telemetry::Sampler& sampler() { return sampler_; }
  [[nodiscard]] telemetry::Journal& journal() { return journal_; }
  [[nodiscard]] MetricsOut& metrics() { return metrics_; }

  /// End-of-run writes: the Chrome trace (when requested), the telemetry
  /// exports (when requested), and the metrics document. False on any I/O
  /// failure so mains can exit nonzero.
  [[nodiscard]] bool finish() {
    bool ok = true;
    if (tracing()) {
      std::ofstream out(trace_out_);
      if (!out) {
        std::cerr << "error: cannot open --trace-out file: " << trace_out_
                  << "\n";
        ok = false;
      } else {
        trace::write_chrome_trace(out, recorder_, &tracer_);
        std::cout << "trace written to " << trace_out_ << " ("
                  << recorder_.size() << " events; load in Perfetto or"
                  << " chrome://tracing)\n";
      }
    }
    if (!prom_out_.empty()) {
      std::ofstream out(prom_out_);
      if (!out) {
        std::cerr << "error: cannot open --prom-out file: " << prom_out_
                  << "\n";
        ok = false;
      } else {
        sampler_.series().write_prometheus(out);
        std::cout << "prometheus exposition written to " << prom_out_ << "\n";
      }
    }
    if (!timeseries_out_.empty()) {
      std::ofstream out(timeseries_out_);
      if (!out) {
        std::cerr << "error: cannot open --timeseries-out file: "
                  << timeseries_out_ << "\n";
        ok = false;
      } else {
        sampler_.series().write_json(out, sampler_.interval_ns());
        std::cout << "timeseries written to " << timeseries_out_ << "\n";
      }
    }
    if (journaling()) {
      std::ofstream out(journal_out_);
      if (!out) {
        std::cerr << "error: cannot open --journal-out file: " << journal_out_
                  << "\n";
        ok = false;
      } else {
        journal_.write_json(out);
        out << "\n";
        std::cout << "journal written to " << journal_out_ << " ("
                  << journal_.size() << " events";
        if (journal_.dropped() > 0) {
          std::cout << ", " << journal_.dropped() << " dropped";
        }
        std::cout << ")\n";
      }
    }
    if (!metrics_.write()) ok = false;
    return ok;
  }

 private:
  MetricsOut metrics_;
  std::string trace_out_;
  std::string prom_out_;
  std::string timeseries_out_;
  std::string journal_out_;
  telemetry::Journal journal_;
  std::uint64_t seed_;
  std::uint32_t coalesce_max_writes_;
  sim::Duration coalesce_max_ns_;
  sim::Duration ack_delay_ns_;
  trace::Recorder recorder_;
  telemetry::Tracer tracer_;
  telemetry::Sampler sampler_;
};

}  // namespace optsync::benchio

namespace optsync::bench {
using benchio::Harness;    // canonical alias: bench::Harness
using benchio::MetricsOut;
}  // namespace optsync::bench
