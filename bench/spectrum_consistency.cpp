// §1.2 reproduction: the consistency-model spectrum as write-burst cost.
//
// Each of N processors issues 64 shared writes (200 ns apart) and hits a
// synchronization point. The paper's survey, quantified:
//   * sequential consistency is "inefficient even for two processors"
//     (every write stalls a full observation round trip);
//   * processor consistency pipelines through a store buffer;
//   * total store ordering funnels every write in the system through one
//     arbitrator — "not viable for large distributed memories": its stall
//     grows with N while everyone else's stays flat;
//   * partial store ordering relaxes the buffer;
//   * weak/release consistency defers everything to the sync point;
//   * group write consistency never stalls and owes nothing at the sync
//     point — ordering, not completion, is the guarantee.
#include <iostream>

#include "bench_metrics.hpp"
#include "consistency/spectrum.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) try {
  using namespace optsync;
  using consistency::Model;

  const util::Flags flags(argc, argv);
  bench::Harness harness("spectrum_consistency", flags);
  harness.allow_only(flags, {});
  auto& metrics = harness.metrics();

  consistency::SpectrumParams params;

  std::cout << "Consistency spectrum: " << params.writes_per_node
            << " shared writes per CPU + one sync point\n"
            << "(mesh torus, per-write stall / sync stall / total, in us)\n\n";

  const Model models[] = {Model::kSequential,   Model::kProcessor,
                          Model::kTotalStore,   Model::kPartialStore,
                          Model::kWeakRelease,  Model::kGroupWrite};

  for (const std::size_t n : {4, 16, 64}) {
    const auto topo = net::MeshTorus2D::near_square(n);
    std::cout << "--- " << n << " CPUs ---\n";
    stats::Table table({"model", "write stall", "sync stall", "elapsed",
                        "messages"});
    consistency::SpectrumParams p = params;
    p.nodes = n;
    for (const Model m : models) {
      const auto res = run_spectrum(m, p, topo);
      table.add_row({model_name(m),
                     sim::format_time(static_cast<sim::Time>(
                         res.avg_write_stall_ns)),
                     sim::format_time(static_cast<sim::Time>(
                         res.avg_sync_stall_ns)),
                     sim::format_time(res.elapsed),
                     std::to_string(res.messages)});
      metrics
          .row("cpus=" + std::to_string(n) + "," +
               std::string(model_name(m)))
          .set("write_stall_ns", res.avg_write_stall_ns)
          .set("sync_stall_ns", res.avg_sync_stall_ns)
          .set("elapsed_ns", static_cast<double>(res.elapsed))
          .set("messages", static_cast<double>(res.messages));
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "paper (§1.2): SC worst everywhere; TSO's central arbitrator\n"
               "degrades with size; GWC pays with messages, never with"
               " stalls.\n";
  return harness.finish() ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
