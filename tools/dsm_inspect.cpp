// dsm_inspect — offline forensics analyzer for the service's JSON dumps.
//
// Reads the artifacts a run leaves behind — the structured decision journal
// (--journal-out, schema "optsync-journal/1") and the metrics document
// (--metrics-out, schema "optsync-bench/5") — and answers the questions the
// live report cannot: which orec stripes the aborts piled onto and who
// owned them, what the elastic controller saw at each ladder step, how the
// lease epochs churned, and whether the critical-path extraction explains
// the latency tail.
//
//   dsm_inspect --journal run.journal.json --metrics run.metrics.json \
//               --check-abort-sums --min-p99-named 0.95
//
// Exit status is nonzero on parse errors, schema violations (a txn_abort
// record without its reason/stripe, an elastic decision without its
// triggering inputs), abort-partition mismatches (--check-abort-sums), or
// a p99 critical-path named fraction below --min-p99-named — so the CI
// forensics job is just this binary over the artifacts.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "stats/json_parse.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

namespace {

using namespace optsync;
using stats::JsonValue;

const std::set<std::string> kAbortReasons = {
    "read_set_clobber", "commit_validation", "directory_epoch",
    "fallback_escalation"};

/// Fields every elastic_decision record must carry — the "exact inputs
/// that triggered it" contract.
const std::vector<std::string> kElasticInputs = {
    "step",    "shard",     "target", "slope_per_s", "peak_backlog",
    "backlog", "top_key",   "top_share", "streak",   "cooldown"};

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

std::string pct(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * f);
  return buf;
}

/// Journal analysis: abort forensics, hot stripes, elastic timeline, lease
/// churn. Returns false on any schema violation.
bool inspect_journal(const JsonValue& doc) {
  bool ok = true;
  const std::string schema = doc["schema"].as_string();
  if (schema != "optsync-journal/1") {
    std::cerr << "SCHEMA ERROR: journal schema is '" << schema
              << "', want optsync-journal/1\n";
    return false;
  }
  const auto& events = doc["events"].as_array();
  const std::uint64_t dropped = doc["dropped"].as_uint();
  std::cout << "=== decision journal ===\n"
            << events.size() << " events, " << dropped << " dropped (pool "
            << doc["capacity"].as_uint() << ")\n\n";
  if (dropped > 0) {
    std::cout << "warning: " << dropped << " events dropped at capacity —"
              << " counts below undercount the run\n\n";
  }

  // --- abort forensics ----------------------------------------------------
  std::map<std::string, std::uint64_t> by_reason;
  // (shard, stripe) -> {conflicts, owners seen}
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::pair<std::uint64_t, std::map<std::uint64_t, std::uint64_t>>>
      heat;
  std::uint64_t aborts = 0;
  std::map<std::string, std::vector<const JsonValue*>> by_kind;
  for (const auto& e : events) {
    by_kind[e["kind"].as_string()].push_back(&e);
  }
  for (const JsonValue* ep : by_kind["txn_abort"]) {
    const auto& e = *ep;
    const std::string reason = e["reason"].as_string();
    if (kAbortReasons.count(reason) == 0) {
      std::cerr << "SCHEMA ERROR: txn_abort record at t="
                << e["t"].as_uint() << " has invalid reason '" << reason
                << "'\n";
      ok = false;
      continue;
    }
    if (!e.contains("stripe") || !e.contains("shard") ||
        !e.contains("owner") || !e.contains("node")) {
      std::cerr << "SCHEMA ERROR: txn_abort record at t=" << e["t"].as_uint()
                << " missing stripe/shard/owner/node attribution\n";
      ok = false;
      continue;
    }
    ++aborts;
    ++by_reason[reason];
    auto& cell = heat[{e["shard"].as_uint(), e["stripe"].as_uint()}];
    ++cell.first;
    ++cell.second[e["owner"].as_uint()];
  }
  std::cout << "--- abort forensics (" << aborts << " journaled aborts) ---\n";
  for (const auto& [reason, n] : by_reason) {
    std::cout << "  " << reason << ": " << n;
    if (aborts > 0) {
      std::cout << " (" << pct(static_cast<double>(n) /
                               static_cast<double>(aborts))
                << ")";
    }
    std::cout << "\n";
  }
  if (!heat.empty()) {
    std::vector<std::pair<std::pair<std::uint64_t, std::uint64_t>,
                          std::uint64_t>>
        hot;
    hot.reserve(heat.size());
    for (const auto& [key, cell] : heat) hot.emplace_back(key, cell.first);
    std::sort(hot.begin(), hot.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    stats::Table t({"shard", "stripe", "conflicts", "top owner"});
    const std::size_t show = std::min<std::size_t>(hot.size(), 10);
    for (std::size_t i = 0; i < show; ++i) {
      const auto& cell = heat[hot[i].first];
      std::uint64_t top_owner = 0;
      std::uint64_t top_n = 0;
      for (const auto& [owner, n] : cell.second) {
        if (n > top_n) {
          top_n = n;
          top_owner = owner;
        }
      }
      t.add_row({std::to_string(hot[i].first.first),
                 std::to_string(hot[i].first.second),
                 std::to_string(hot[i].second),
                 "node " + std::to_string(top_owner) + " (" +
                     std::to_string(top_n) + ")"});
    }
    std::cout << "hot conflict stripes (top " << show << " of " << heat.size()
              << "):\n";
    t.print(std::cout);
  }
  std::cout << "\n";

  // --- elastic decision timeline -----------------------------------------
  const auto& decisions = by_kind["elastic_decision"];
  std::cout << "--- elastic decisions (" << decisions.size() << ") ---\n";
  for (const JsonValue* dp : decisions) {
    const auto& d = *dp;
    bool complete = true;
    for (const auto& field : kElasticInputs) {
      if (!d.contains(field)) {
        std::cerr << "SCHEMA ERROR: elastic_decision at t=" << d["t"].as_uint()
                  << " missing input '" << field << "'\n";
        ok = false;
        complete = false;
      }
    }
    if (!complete) continue;
    std::cout << "  t=" << format_ns(d["t"].as_double()) << " "
              << d["step"].as_string() << " shard " << d["shard"].as_uint()
              << " -> " << d["target"].as_uint()
              << "  [backlog " << d["backlog"].as_double() << ", peak "
              << d["peak_backlog"].as_double() << ", slope "
              << d["slope_per_s"].as_double() << "/s, top key "
              << d["top_key"].as_uint() << " @ "
              << pct(d["top_share"].as_double()) << ", streak "
              << d["streak"].as_uint() << ", cooldown "
              << d["cooldown"].as_uint() << "]\n";
  }
  std::cout << "\n";

  // --- lease churn --------------------------------------------------------
  const auto grants = by_kind["lease_grant"].size();
  const auto invals = by_kind["lease_invalidation"].size();
  const auto expiries = by_kind["lease_expiry"].size();
  if (grants + invals + expiries > 0) {
    std::uint64_t max_delta = 0;
    std::uint64_t regressions = 0;
    for (const char* kind : {"lease_grant", "lease_invalidation"}) {
      for (const JsonValue* ep : by_kind[kind]) {
        const auto& e = *ep;
        const std::uint64_t eo = e["epoch_old"].as_uint();
        const std::uint64_t en = e["epoch_new"].as_uint();
        if (en < eo) {
          ++regressions;  // epochs are monotone; a regression is a bug
        } else {
          max_delta = std::max(max_delta, en - eo);
        }
      }
    }
    std::cout << "--- lease churn ---\n"
              << "  " << grants << " grants, " << invals
              << " invalidations, " << expiries
              << " expiries; max epoch delta " << max_delta << "\n";
    if (regressions > 0) {
      std::cerr << "SCHEMA ERROR: " << regressions
                << " lease records with epoch_new < epoch_old\n";
      ok = false;
    }
    std::cout << "\n";
  }
  return ok;
}

/// Metrics analysis: schema gate, abort-partition check over the shard
/// rows, p99 critical-path report from the attribution row.
bool inspect_metrics(const JsonValue& doc, bool check_sums,
                     double min_p99_named) {
  bool ok = true;
  const std::string schema = doc["schema"].as_string();
  if (schema != "optsync-bench/5") {
    std::cerr << "SCHEMA ERROR: metrics schema is '" << schema
              << "', want optsync-bench/5\n";
    return false;
  }
  std::cout << "=== metrics (" << doc["bench"].as_string() << ") ===\n";
  const auto& rows = doc["rows"].as_array();

  // --- abort partition over "shard=N" rows --------------------------------
  std::uint64_t total_aborts = 0;
  std::uint64_t total_attr = 0;
  std::size_t shard_rows = 0;
  bool sums_hold = true;
  for (const auto& row : rows) {
    const std::string label = row["label"].as_string();
    if (label.rfind("shard=", 0) != 0 || !row.contains("txn_aborts")) {
      continue;
    }
    ++shard_rows;
    const std::uint64_t a = row["txn_aborts"].as_uint();
    const std::uint64_t parts = row["aborts_read_clobber"].as_uint() +
                                row["aborts_validation"].as_uint() +
                                row["aborts_dir_epoch"].as_uint();
    total_aborts += a;
    total_attr += parts;
    if (parts != a) {
      std::cerr << "ABORT PARTITION MISMATCH: " << label << " has "
                << a << " aborts but reasons sum to " << parts << "\n";
      sums_hold = false;
    }
  }
  if (shard_rows > 0) {
    std::cout << "abort partition: " << total_attr << "/" << total_aborts
              << " aborts attributed across " << shard_rows << " shards — "
              << (sums_hold ? "exact" : "MISMATCH") << "\n";
    if (check_sums && !sums_hold) ok = false;
  } else if (check_sums) {
    std::cerr << "ABORT PARTITION CHECK: no shard rows with txn_aborts in"
              << " the metrics document\n";
    ok = false;
  }

  // --- critical-path report from the attribution row ----------------------
  const JsonValue* attribution = nullptr;
  for (const auto& row : rows) {
    if (row["label"].as_string() == "attribution") attribution = &row;
  }
  if (attribution != nullptr) {
    const auto& a = *attribution;
    std::cout << "critical path: "
              << a["traced_ops"].as_uint() << " traced ops";
    if (a.contains("path_named_fraction")) {
      std::cout << ", " << pct(a["path_named_fraction"].as_double())
                << " of latency on named path segments";
    }
    if (a.contains("p99_path_named_fraction")) {
      std::cout << ", " << pct(a["p99_path_named_fraction"].as_double())
                << " of the p99 tail";
    }
    std::cout << "\n";
    // Per-bucket path shares, largest first.
    std::vector<std::pair<std::string, double>> shares;
    for (const auto& [key, v] : a.as_object()) {
      const std::string prefix = "path_";
      const std::string suffix = "_share";
      if (key.rfind(prefix, 0) == 0 && key.size() > suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        shares.emplace_back(
            key.substr(prefix.size(),
                       key.size() - prefix.size() - suffix.size()),
            v.as_double());
      }
    }
    std::sort(shares.begin(), shares.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    for (const auto& [bucket, share] : shares) {
      if (share <= 0.0) continue;
      std::cout << "  " << bucket << ": " << pct(share) << "\n";
    }
    if (min_p99_named > 0.0) {
      const double got = a.contains("p99_path_named_fraction")
                             ? a["p99_path_named_fraction"].as_double()
                             : a["path_named_fraction"].as_double(-1.0);
      if (got < min_p99_named) {
        std::cerr << "P99 ATTRIBUTION GATE FAILED: " << pct(got)
                  << " of the p99 tail named (need >= "
                  << pct(min_p99_named) << ")\n";
        ok = false;
      }
    }
  } else if (min_p99_named > 0.0) {
    std::cerr << "P99 ATTRIBUTION GATE FAILED: no 'attribution' row in the"
              << " metrics document\n";
    ok = false;
  }
  std::cout << "\n";
  return ok;
}

void usage() {
  std::cerr
      << "usage: dsm_inspect [--journal PATH] [--metrics PATH]\n"
         "  --journal PATH       optsync-journal/1 dump (--journal-out)\n"
         "  --metrics PATH       optsync-bench/5 dump (--metrics-out)\n"
         "  --check-abort-sums   require the abort-reason partition to sum\n"
         "                       to txn_aborts on every shard row\n"
         "  --min-p99-named F    require the critical path to name >= F of\n"
         "                       the p99 tail's latency (0 disables)\n"
         "prints abort forensics, hot-stripe tables, the elastic decision\n"
         "timeline, lease churn, and the critical-path report; exits\n"
         "nonzero on parse/schema/sum/threshold violations\n";
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  flags.allow_only(
      {"journal", "metrics", "check-abort-sums", "min-p99-named", "help"});
  const std::string journal_path = flags.get("journal", "");
  const std::string metrics_path = flags.get("metrics", "");
  if (journal_path.empty() && metrics_path.empty()) {
    usage();
    return 2;
  }
  bool ok = true;
  if (!journal_path.empty()) {
    const auto parsed = stats::parse_json_file(journal_path);
    if (!parsed.ok) {
      std::cerr << "PARSE ERROR: " << journal_path << ": " << parsed.error
                << " (offset " << parsed.offset << ")\n";
      return 1;
    }
    if (!inspect_journal(parsed.value)) ok = false;
  }
  if (!metrics_path.empty()) {
    const auto parsed = stats::parse_json_file(metrics_path);
    if (!parsed.ok) {
      std::cerr << "PARSE ERROR: " << metrics_path << ": " << parsed.error
                << " (offset " << parsed.offset << ")\n";
      return 1;
    }
    if (!inspect_metrics(parsed.value, flags.get_bool("check-abort-sums", false),
                         flags.get_double("min-p99-named", 0.0))) {
      ok = false;
    }
  }
  std::cout << (ok ? "dsm_inspect: clean" : "dsm_inspect: VIOLATIONS") << "\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
