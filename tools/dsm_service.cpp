// dsm_service — command-line front end for the sharded DSM service.
//
// Runs one service configuration end to end: a shard::ShardedStore over a
// mesh of simulated nodes, driven by the open-loop load::Generator, with
// the full SLO report (per-shard read/write/txn counts and latency
// percentiles, lock flight records, serializability ledger) printed at the
// end. All the standard bench plumbing composes: --seed, --metrics-out,
// --trace-out, --coalesce-max-writes/--coalesce-max-ns, --ack-delay-ns,
// and the fault flags (--fault-drop, --fault-seed, --partition).
//
// In fault-soak mode (any fault flag set) the run additionally streams
// every flight-recorder event through trace::GwcChecker, which proves the
// applied write stream of EVERY shard's group is a gapless total order
// with no speculative visibility — independently of the service's own
// serializability and convergence assertions. Exit status is nonzero on
// any violation, so the CI soak loop is just a shell loop over seeds.
//
//   dsm_service --shards 8 --rate 50000 --requests 2000
//               --fault-drop 0.10 --fault-seed 7 --metrics-out out.json
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "dsm/system.hpp"
#include "elastic/controller.hpp"
#include "faults/fault_plan.hpp"
#include "load/generator.hpp"
#include "net/topology.hpp"
#include "shard/client.hpp"
#include "shard/coalesce_controller.hpp"
#include "shard/sharded_store.hpp"
#include "stats/metrics.hpp"
#include "telemetry/overload.hpp"
#include "trace/gwc_checker.hpp"
#include "util/flags.hpp"

namespace {

using namespace optsync;

/// Builds a FaultPlan from --fault-drop / --fault-seed / --partition
/// (same grammar as optsync_sim).
bool parse_fault_flags(const util::Flags& flags, faults::FaultPlan* plan) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  plan->reseed(seed);
  const double drop = flags.get_double("fault-drop", 0.0);
  if (drop < 0.0 || drop > 1.0) {
    std::cerr << "--fault-drop must be in [0, 1]\n";
    return false;
  }
  if (drop > 0.0) plan->drop(drop, "lock").drop(drop, "data");
  const std::string spec = flags.get("partition", "");
  std::istringstream windows(spec);
  std::string window;
  while (std::getline(windows, window, ',')) {
    std::istringstream fields(window);
    std::string field;
    std::vector<std::uint64_t> v;
    while (std::getline(fields, field, ':')) {
      try {
        v.push_back(std::stoull(field));
      } catch (const std::exception&) {
        v.clear();
        break;
      }
    }
    if (v.size() != 4 || v[0] == v[1] || v[2] >= v[3]) {
      std::cerr << "bad --partition window '" << window
                << "' (want A:B:START:END with A != B, START < END)\n";
      return false;
    }
    plan->partition_link(static_cast<net::NodeId>(v[0]),
                         static_cast<net::NodeId>(v[1]), v[2], v[3]);
  }
  return true;
}

void usage() {
  std::cerr
      << "usage: dsm_service [options]\n"
         "  --nodes N            simulated CPUs (default 16)\n"
         "  --shards N           independent sharing groups (default 4)\n"
         "  --requests N         total requests (default 2000)\n"
         "  --rate R             offered load, req/s (default 100000)\n"
         "  --arrival KIND       poisson | uniform | burst (default poisson)\n"
         "  --dist KIND          zipfian | uniform keys (default zipfian)\n"
         "  --zipf-s S           Zipf exponent (default 0.99)\n"
         "  --keys N             key domain size (default 256)\n"
         "  --read-fraction F    P(read) (default 0.5)\n"
         "  --txn-fraction F     P(multi-key txn) (default 0.05)\n"
         "  --rmw-fraction F     P(multi-key read-modify-write) (default 0)\n"
         "  --txn-keys N         keys per txn/rmw (default 3)\n"
         "  --policy P           queue | optimistic | adaptive (default"
         " adaptive)\n"
         "  --adaptive-coalesce  drive each shard's frame cap from its live"
         " backlog\n"
         "  --txn-mode M         occ | legacy multi-key commit (default"
         " occ)\n"
         "  --server-nodes N     partial replication: groups span nodes"
         " [0,N),\n                       the rest are clients (default 0 ="
         " full replication)\n"
         "  --lease              enable the leased read-replica tier"
         " (needs --server-nodes)\n"
         "  --lease-ttl-ns T     lease lifetime (default 2000000)\n"
         "  --consistency C      linearizable | leased | snapshot read"
         " level (default\n                       leased when --lease is"
         " set, else linearizable)\n"
         "  --elastic            enable the elastic control plane (hot-key"
         " promotion,\n                       stripe split/merge, online root"
         " migration)\n"
         "  --hot-groups N       dedicated hot groups appended after the base"
         " shards\n                       (default 2; needs --elastic)\n"
         "  --migrate-shard S:N  one-shot manual root migration of shard S to"
         " node N,\n                       fired shortly after start (needs"
         " --elastic)\n"
         "  --fault-drop P --fault-seed N --partition A:B:S:E[,...]\n"
         "  plus the standard bench flags (--seed, --metrics-out,"
         " --trace-out,\n  --trace-capacity, --coalesce-max-writes,"
         " --coalesce-max-ns, --ack-delay-ns,\n  --prom-out,"
         " --timeseries-out, --sample-interval-ns, --journal-out,\n"
         "  --journal-capacity)\n";
}

}  // namespace

int main(int argc, char** argv) try {
  util::Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  bench::Harness harness("dsm_service", flags);
  harness.allow_only(
      flags, {"nodes", "shards", "requests", "rate", "arrival", "dist",
              "zipf-s", "keys", "read-fraction", "txn-fraction",
              "rmw-fraction", "txn-keys", "policy", "txn-mode",
              "server-nodes", "lease", "lease-ttl-ns", "consistency",
              "adaptive-coalesce", "elastic", "hot-groups", "migrate-shard",
              "fault-drop", "fault-seed", "partition", "help"});

  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 16));
  const auto shards = static_cast<std::uint32_t>(flags.get_int("shards", 4));

  faults::FaultPlan plan;
  if (!parse_fault_flags(flags, &plan)) return 2;
  const bool soak = !plan.empty();

  dsm::DsmConfig cfg;
  cfg.faults = plan;
  harness.apply(cfg);
  // Fault-soak mode always audits GWC, trace file or not: the checker is a
  // streaming recorder sink, so wire the recorder in regardless.
  trace::GwcChecker checker;
  if (soak) {
    cfg.recorder = &harness.recorder();
    checker.install(harness.recorder());
  }

  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(nodes);
  dsm::DsmSystem sys(sched, topo, cfg);

  shard::ShardedStoreConfig scfg;
  scfg.shards = shards;
  const std::string policy = flags.get("policy", "adaptive");
  if (policy == "queue") {
    scfg.lock = shard::LockPolicy::kQueue;
  } else if (policy == "optimistic") {
    scfg.lock = shard::LockPolicy::kOptimistic;
  } else if (policy == "adaptive") {
    scfg.lock = shard::LockPolicy::kAdaptive;
  } else {
    std::cerr << "unknown --policy '" << policy << "'\n";
    return 2;
  }
  const std::string txn_mode = flags.get("txn-mode", "occ");
  if (txn_mode == "occ") {
    scfg.txn.mode = shard::TxnMode::kOcc;
  } else if (txn_mode == "legacy") {
    scfg.txn.mode = shard::TxnMode::kLegacy;
  } else {
    std::cerr << "unknown --txn-mode '" << txn_mode << "'\n";
    return 2;
  }
  scfg.lease.server_nodes =
      static_cast<std::uint32_t>(flags.get_int("server-nodes", 0));
  scfg.lease.enabled = flags.get_bool("lease", false);
  const std::int64_t ttl_ns = flags.get_int("lease-ttl-ns", 2'000'000);
  if (ttl_ns <= 0) {  // Duration is unsigned: reject before the cast wraps
    std::cerr << "--lease-ttl-ns must be > 0\n";
    return 2;
  }
  scfg.lease.ttl_ns = static_cast<sim::Duration>(ttl_ns);
  if (scfg.lease.enabled && scfg.lease.server_nodes == 0) {
    std::cerr << "--lease needs --server-nodes N (partial replication)\n";
    return 2;
  }
  const bool elastic = flags.get_bool("elastic", false);
  scfg.elastic.enabled = elastic;
  scfg.elastic.hot_groups =
      static_cast<std::uint32_t>(flags.get_int("hot-groups", 2));
  if (!elastic && flags.has("hot-groups")) {
    std::cerr << "--hot-groups needs --elastic\n";
    return 2;
  }
  // --migrate-shard S:N — manual one-shot root migration, parsed up front
  // so a bad spec fails before the simulation spins up.
  const std::string mig_spec = flags.get("migrate-shard", "");
  bool manual_move = false;
  std::uint32_t mig_shard = 0;
  dsm::NodeId mig_node = dsm::kNoNode;
  if (!mig_spec.empty()) {
    if (!elastic) {
      std::cerr << "--migrate-shard needs --elastic\n";
      return 2;
    }
    const auto colon = mig_spec.find(':');
    try {
      if (colon == std::string::npos) throw std::invalid_argument(mig_spec);
      mig_shard = static_cast<std::uint32_t>(
          std::stoul(mig_spec.substr(0, colon)));
      mig_node = static_cast<dsm::NodeId>(
          std::stoul(mig_spec.substr(colon + 1)));
    } catch (const std::exception&) {
      std::cerr << "bad --migrate-shard spec '" << mig_spec
                << "' (want SHARD:NODE)\n";
      return 2;
    }
    if (mig_shard >= shards || mig_node >= nodes) {
      std::cerr << "--migrate-shard " << mig_spec << " out of range ("
                << shards << " shards, " << nodes << " nodes)\n";
      return 2;
    }
    manual_move = true;
  }
  shard::ShardedStore store(sys, scfg);
  if (manual_move && mig_node == store.control_node()) {
    std::cerr << "--migrate-shard target node " << mig_node
              << " is the reserved elastic control node\n";
    return 2;
  }

  load::GeneratorConfig gcfg;
  gcfg.seed = harness.seed();
  gcfg.requests = static_cast<std::uint64_t>(flags.get_int("requests", 2000));
  gcfg.rate_rps = flags.get_double("rate", 100'000.0);
  const std::string arrival = flags.get("arrival", "poisson");
  if (arrival == "poisson") {
    gcfg.arrival.kind = load::ArrivalKind::kPoisson;
  } else if (arrival == "uniform") {
    gcfg.arrival.kind = load::ArrivalKind::kUniform;
  } else if (arrival == "burst") {
    gcfg.arrival.kind = load::ArrivalKind::kBurst;
  } else {
    std::cerr << "unknown --arrival '" << arrival << "'\n";
    return 2;
  }
  const std::string dist = flags.get("dist", "zipfian");
  if (dist == "zipfian") {
    gcfg.keys.dist = load::KeyDist::kZipfian;
  } else if (dist == "uniform") {
    gcfg.keys.dist = load::KeyDist::kUniform;
  } else {
    std::cerr << "unknown --dist '" << dist << "'\n";
    return 2;
  }
  gcfg.keys.keys = static_cast<std::uint64_t>(flags.get_int("keys", 256));
  gcfg.keys.zipf_s = flags.get_double("zipf-s", 0.99);
  gcfg.read_fraction = flags.get_double("read-fraction", 0.5);
  gcfg.txn_fraction = flags.get_double("txn-fraction", 0.05);
  gcfg.rmw_fraction = flags.get_double("rmw-fraction", 0.0);
  gcfg.txn_keys =
      static_cast<std::uint32_t>(flags.get_int("txn-keys", 3));
  const std::string consistency =
      flags.get("consistency", scfg.lease.enabled ? "leased" : "linearizable");
  if (consistency == "linearizable") {
    gcfg.read_level = shard::ConsistencyLevel::kLinearizable;
  } else if (consistency == "leased") {
    gcfg.read_level = shard::ConsistencyLevel::kLeased;
  } else if (consistency == "snapshot") {
    gcfg.read_level = shard::ConsistencyLevel::kSnapshot;
  } else {
    std::cerr << "unknown --consistency '" << consistency << "'\n";
    return 2;
  }
  if (elastic && scfg.lease.server_nodes == 0 && nodes >= 2) {
    // Full replication reserves the last node as the directory-move
    // executor; keep it out of the client span so reconfigurations never
    // queue behind regular traffic on the same instruction stream.
    gcfg.node_span = nodes - 1;
  }
  load::Generator gen(gcfg);

  stats::ServiceReport report;
  if (report.shards.size() < store.shards()) {
    report.shards.resize(store.shards());
  }
  // Live telemetry: per-shard backlog/lock-queue/frame gauges plus
  // client-side queue depth, sampled on the sim clock throughout the run.
  auto& sampler = harness.sampler();
  store.register_telemetry(sampler, report);
  gen.register_telemetry(sampler);
  shard::Client client(store);
  auto drive = gen.run(client, report);
  // --adaptive-coalesce: the per-shard controller tunes each root's frame
  // cap from its live backlog (and exports optsync_coalesce_cap gauges).
  shard::CoalesceController coalesce_ctrl(store, report);
  const bool adaptive_coalesce = flags.get_bool("adaptive-coalesce", false);
  if (adaptive_coalesce) {
    coalesce_ctrl.start();
    coalesce_ctrl.register_telemetry(sampler);
  }
  std::optional<elastic::ElasticController> ctrl;
  if (elastic) {
    ctrl.emplace(store, report, sampler.series());
    ctrl->register_telemetry(sampler);
    ctrl->start();
  }
  const dsm::NodeId mig_from = manual_move ? store.root_of(mig_shard)
                                           : dsm::kNoNode;
  std::function<void()> fire_move;
  if (manual_move) {
    if (scfg.lease.server_nodes > 0 && mig_node >= scfg.lease.server_nodes) {
      std::cerr << "--migrate-shard target node " << mig_node
                << " is a client under --server-nodes "
                << scfg.lease.server_nodes << "\n";
      return 2;
    }
    // Fire shortly after start; if the controller already has a move in
    // flight, retry until the migrator frees up (one migration at a time).
    fire_move = [&] {
      if (ctrl->migrator().in_flight()) {
        sched.at(sched.now() + 10'000, fire_move);
        return;
      }
      (void)ctrl->migrator().migrate(mig_shard, mig_node);
    };
    sched.at(50'000, fire_move);
  }
  sampler.start(sched);
  sched.run();
  if (ctrl) ctrl->stop();
  sampler.sample_now(sched.now());  // final partial interval
  store.fill_report(report);
  telemetry::flag_overload(report, sampler.series());

  std::cout << report.format();

  // Latency attribution rollup across every traced request: the coverage
  // sweep (what ran during the window) next to the critical path (what
  // gated completion).
  const telemetry::Analysis analysis = harness.tracer().analyze();
  if (!analysis.ops.empty() && analysis.total_latency > 0) {
    std::cout << "latency attribution (" << analysis.ops.size()
              << " traced ops, " << analysis.orphan_spans << " orphan spans, "
              << analysis.incomplete_ops << " incomplete):\n"
              << "  bucket            sweep    path\n";
    for (std::size_t b = 0; b < telemetry::kBucketCount; ++b) {
      const auto ns = analysis.totals[b];
      const auto path_ns = analysis.path_totals[b];
      if (ns == 0 && path_ns == 0) continue;
      char line[128];
      std::snprintf(line, sizeof line, "  %-16s %6.2f%% %6.2f%%\n",
                    std::string(telemetry::bucket_name(
                                    static_cast<telemetry::Bucket>(b)))
                        .c_str(),
                    100.0 * static_cast<double>(ns) /
                        static_cast<double>(analysis.total_latency),
                    100.0 * static_cast<double>(path_ns) /
                        static_cast<double>(analysis.total_latency));
      std::cout << line;
    }
    char frac[128];
    std::snprintf(frac, sizeof frac,
                  "  critical path names %.2f%% of traced latency\n",
                  100.0 * analysis.path_named_fraction());
    std::cout << frac;
  }
  if (harness.journaling()) {
    const auto& journal = harness.journal();
    std::cout << "decision journal: " << journal.size() << " events ("
              << journal.count(telemetry::Journal::Kind::kTxnAbort)
              << " txn aborts, "
              << journal.count(telemetry::Journal::Kind::kLeaseGrant)
              << " lease grants, "
              << journal.count(telemetry::Journal::Kind::kLeaseInvalidation)
              << " invalidations, "
              << journal.count(telemetry::Journal::Kind::kLeaseExpiry)
              << " expiries, "
              << journal.count(telemetry::Journal::Kind::kElasticDecision)
              << " elastic decisions";
    if (journal.dropped() > 0) {
      std::cout << "; " << journal.dropped() << " DROPPED";
    }
    std::cout << ")\n";
  }

  bool ok = true;
  if (!gen.done()) {
    std::cout << "GENERATOR STALLED: not all requests completed\n";
    ok = false;
  }
  if (!report.serializable()) {
    std::cout << "SERIALIZABILITY VIOLATION: a shard's version word does "
                 "not match its committed-write count\n";
    ok = false;
  }
  if (!store.replicas_converged()) {
    std::cout << "CONVERGENCE VIOLATION: replicas disagree after quiesce\n";
    ok = false;
  }
  if (soak) {
    std::cout << "fault / reliability report\n"
              << stats::format_fault_report(report.faults);
    std::cout << "GWC audit (" << checker.writes_checked()
              << " applied writes across " << shards
              << " shard groups): " << checker.report() << "\n";
    if (!checker.ok()) ok = false;
  }
  if (store.partial()) {
    // The auditor is the lease tier's independent witness: any serve of a
    // superseded epoch (or past TTL) fails the run, soak mode or not.
    const auto& auditor = store.leases()->auditor();
    std::cout << auditor.report() << "\n";
    if (!auditor.ok()) ok = false;
  }
  std::uint64_t el_migrations = 0;
  std::uint64_t el_splits = 0;
  std::uint64_t el_merges = 0;
  std::uint64_t el_promotions = 0;
  std::uint64_t el_demotions = 0;
  std::uint64_t el_redirects = 0;
  if (elastic) {
    for (std::uint32_t s = 0; s < store.shards(); ++s) {
      el_migrations += store.migrations(s);
      el_splits += store.splits(s);
      el_merges += store.merges(s);
      el_promotions += store.promotions(s);
      el_demotions += store.demotions(s);
      el_redirects += store.redirects(s);
    }
    std::cout << "elastic fabric: " << ctrl->actions()
              << " control actions (" << el_promotions << " promotions, "
              << el_splits << " splits, " << el_migrations
              << " migrations, " << el_merges << " merges, " << el_demotions
              << " demotions), " << el_redirects
              << " stale-directory redirects ("
              << client.stats().redirects
              << " client retries), directory epoch " << store.dir_epoch()
              << "\n";
    if (manual_move && mig_from != mig_node &&
        ctrl->migrator().stats().migrations == 0) {
      std::cout << "MANUAL MIGRATION DID NOT RUN: --migrate-shard "
                << mig_spec << " never completed\n";
      ok = false;
    }
  }

  auto& metrics = harness.metrics();
  metrics.row("service")
      .set("shards", shards)
      .set("offered_rps", report.offered_rps)
      .set("goodput_rps", report.goodput_rps())
      .set("messages", static_cast<double>(report.messages))
      .set("elapsed_ns", static_cast<double>(report.elapsed_ns));
  if (!analysis.ops.empty() && analysis.total_latency > 0) {
    auto& row = metrics.row("attribution")
                    .set("traced_ops",
                         static_cast<double>(analysis.ops.size()))
                    .set("named_fraction", analysis.named_fraction())
                    .set("path_named_fraction",
                         analysis.path_named_fraction());
    for (std::size_t b = 0; b < telemetry::kBucketCount; ++b) {
      row.set("path_" +
                  std::string(telemetry::bucket_name(
                      static_cast<telemetry::Bucket>(b))) +
                  "_share",
              static_cast<double>(analysis.path_totals[b]) /
                  static_cast<double>(analysis.total_latency));
    }
  }
  if (elastic) {
    metrics.row("elastic")
        .set("control_actions", static_cast<double>(ctrl->actions()))
        .set("control_ticks", static_cast<double>(ctrl->ticks()))
        .set("dir_epoch", static_cast<double>(store.dir_epoch()))
        .set("migrations", static_cast<double>(el_migrations))
        .set("splits", static_cast<double>(el_splits))
        .set("merges", static_cast<double>(el_merges))
        .set("promotions", static_cast<double>(el_promotions))
        .set("demotions", static_cast<double>(el_demotions))
        .set("redirects", static_cast<double>(el_redirects))
        .set("client_redirects",
             static_cast<double>(client.stats().redirects))
        .set("handoff_replayed",
             static_cast<double>(ctrl->migrator().stats().handoff_replayed));
    for (std::uint32_t s = 0; s < store.shards(); ++s) {
      metrics.row("elastic,shard=" + std::to_string(s))
          .set("migrations", static_cast<double>(store.migrations(s)))
          .set("splits", static_cast<double>(store.splits(s)))
          .set("merges", static_cast<double>(store.merges(s)))
          .set("promotions", static_cast<double>(store.promotions(s)))
          .set("demotions", static_cast<double>(store.demotions(s)))
          .set("redirects", static_cast<double>(store.redirects(s)));
    }
  }
  if (adaptive_coalesce) {
    for (std::uint32_t s = 0; s < store.shards(); ++s) {
      metrics.row("coalesce,shard=" + std::to_string(s))
          .set("cap", static_cast<double>(coalesce_ctrl.cap(s)))
          .set("peak_cap", static_cast<double>(coalesce_ctrl.peak_cap(s)))
          .set("raises", static_cast<double>(coalesce_ctrl.raises(s)))
          .set("lowers", static_cast<double>(coalesce_ctrl.lowers(s)));
    }
  }
  for (const auto& s : report.shards) {
    const auto& w = s.op(stats::ServiceOp::kWrite).latency_ns;
    const auto& r = s.op(stats::ServiceOp::kRead).latency_ns;
    const auto& t = s.op(stats::ServiceOp::kTxn).latency_ns;
    const auto& m = s.op(stats::ServiceOp::kRmw).latency_ns;
    std::size_t hot_stripe = 0;
    std::uint64_t hot_conflicts = 0;
    for (std::size_t i = 0; i < s.stripe_conflicts.size(); ++i) {
      if (s.stripe_conflicts[i] > hot_conflicts) {
        hot_conflicts = s.stripe_conflicts[i];
        hot_stripe = i;
      }
    }
    metrics.row("shard=" + std::to_string(s.shard))
        .set("reads", static_cast<double>(s.op(stats::ServiceOp::kRead)
                                              .completed))
        .set("writes", static_cast<double>(s.op(stats::ServiceOp::kWrite)
                                               .completed))
        .set("txns", static_cast<double>(s.op(stats::ServiceOp::kTxn)
                                             .completed))
        .set("rmws", static_cast<double>(s.op(stats::ServiceOp::kRmw)
                                             .completed))
        .set("read_p99_ns", static_cast<double>(r.p99()))
        .set("write_p50_ns", static_cast<double>(w.p50()))
        .set("write_p99_ns", static_cast<double>(w.p99()))
        .set("write_p999_ns", static_cast<double>(w.p999()))
        .set("txn_p99_ns", static_cast<double>(t.p99()))
        .set("rmw_p99_ns", static_cast<double>(m.p99()))
        .set("txn_commits", static_cast<double>(s.txn_commits))
        .set("txn_aborts", static_cast<double>(s.txn_aborts))
        .set("txn_retries", static_cast<double>(s.txn_retries))
        .set("txn_fallbacks", static_cast<double>(s.txn_fallbacks))
        .set("txn_abort_rate", s.txn_abort_rate())
        .set("aborts_read_clobber",
             static_cast<double>(s.aborts_read_clobber))
        .set("aborts_validation", static_cast<double>(s.aborts_validation))
        .set("aborts_dir_epoch", static_cast<double>(s.aborts_dir_epoch))
        .set("hot_stripe", static_cast<double>(hot_stripe))
        .set("hot_stripe_conflicts", static_cast<double>(hot_conflicts))
        .set("sequenced", static_cast<double>(s.sequenced))
        .set("frames", static_cast<double>(s.frames))
        .set("goodput_rps", report.shard_goodput_rps(s.shard))
        .set("drowning", s.drowning ? 1.0 : 0.0)
        .set("backlog_slope_per_s", s.backlog_slope_per_s)
        .set("final_backlog", s.final_backlog)
        .set("peak_backlog", s.peak_backlog);
    if (store.partial()) {
      metrics.row("lease,shard=" + std::to_string(s.shard))
          .set("hits", static_cast<double>(s.lease_hits))
          .set("grants", static_cast<double>(s.lease_grants))
          .set("invalidations", static_cast<double>(s.lease_invalidations))
          .set("remote_reads", static_cast<double>(s.remote_reads))
          .set("forwarded_ops", static_cast<double>(s.forwarded_ops))
          .set("hit_rate", s.lease_hit_rate());
    }
    metrics.lock(s.lock);
  }
  if (store.txn_stats().acquisitions > 0) metrics.lock(store.txn_stats());

  return harness.finish() && ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
