// optsync_sim — command-line driver for the simulated workloads.
//
//   optsync_sim taskqueue --cpus 33 [--variant gwc|entry|ideal]
//                         [--tasks 1024] [--batch 16] [--capacity 128]
//                         [--ratio 128] [--csv]
//   optsync_sim pipeline  --cpus 32 [--method optimistic|regular|entry|nodelay]
//                         [--items 1024] [--mutex-ratio 0.2] [--csv]
//   optsync_sim counter   --cpus 16 [--method optimistic|regular|entry|tas]
//                         [--think-ns 50000] [--increments 50]
//                         [--threshold 0.30] [--csv] [fault flags]
//   optsync_sim fig1      [--model gwc|entry|weak]
//   optsync_sim fig7      [--nodes 8] [--near-ns 30000] [--far-ns 2000]
//                         [fault flags]
//
// Fault flags (counter and fig7, GWC substrate only):
//   --fault-drop P         drop probability on lock and data traffic
//   --fault-seed N         fault-schedule seed (default 1)
//   --partition A:B:S:E    link (A,B) dark during [S,E) ns; repeatable via
//                          comma-separated windows
// Any fault flag routes traffic through the reliable channel and appends a
// fault/reliability report to the summary.
//
// Every command additionally accepts the standard bench flags handled by
// bench::Harness (see bench/bench_metrics.hpp): --seed, --metrics-out,
// --trace-out, --coalesce-max-writes, --coalesce-max-ns, --ack-delay-ns.
//
// Every command prints a human-readable summary, or one CSV row (with a
// header) under --csv for scripting sweeps.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.hpp"
#include "faults/fault_plan.hpp"
#include "stats/lock_stats.hpp"
#include "stats/metrics.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "workloads/counter.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/scenario_fig1.hpp"
#include "workloads/scenario_fig7.hpp"
#include "workloads/task_queue.hpp"

using namespace optsync;

namespace {

int usage() {
  std::cerr <<
      "usage: optsync_sim <taskqueue|pipeline|counter|fig1|fig7> [flags]\n"
      "run `optsync_sim <command> --help` for the command's flags\n";
  return 2;
}

void print_kv(const std::string& key, const std::string& value) {
  std::cout << "  " << key;
  for (std::size_t i = key.size(); i < 24; ++i) std::cout << ' ';
  std::cout << value << "\n";
}

/// Builds a FaultPlan from --fault-drop / --fault-seed / --partition.
/// Returns false (with a message) on a malformed --partition spec.
bool parse_fault_flags(const util::Flags& flags, faults::FaultPlan* plan) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  plan->reseed(seed);
  const double drop = flags.get_double("fault-drop", 0.0);
  if (drop < 0.0 || drop > 1.0) {
    std::cerr << "--fault-drop must be in [0, 1]\n";
    return false;
  }
  if (drop > 0.0) plan->drop(drop, "lock").drop(drop, "data");
  // --partition A:B:S:E[,A:B:S:E...]
  const std::string spec = flags.get("partition", "");
  std::istringstream windows(spec);
  std::string window;
  while (std::getline(windows, window, ',')) {
    std::istringstream fields(window);
    std::string field;
    std::vector<std::uint64_t> v;
    while (std::getline(fields, field, ':')) {
      try {
        v.push_back(std::stoull(field));
      } catch (const std::exception&) {
        v.clear();
        break;
      }
    }
    if (v.size() != 4 || v[0] == v[1] || v[2] >= v[3]) {
      std::cerr << "bad --partition window '" << window
                << "' (want A:B:START:END with A != B, START < END)\n";
      return false;
    }
    plan->partition_link(static_cast<net::NodeId>(v[0]),
                         static_cast<net::NodeId>(v[1]), v[2], v[3]);
  }
  return true;
}

void print_fault_report(const stats::FaultReport& r) {
  std::cout << "fault / reliability report\n" << stats::format_fault_report(r);
}

int run_taskqueue(const util::Flags& flags) {
  if (flags.has("help")) {
    std::cout << "taskqueue flags: --cpus N --variant gwc|entry|ideal "
                 "--tasks N --batch N\n  --capacity N --ratio N (t_exec/"
                 "t_prod) --csv\n";
    return 0;
  }
  bench::Harness harness("optsync_sim/taskqueue", flags);
  harness.allow_only(flags, {"cpus", "variant", "tasks", "batch", "capacity",
                             "ratio", "csv", "help"});
  const auto cpus = static_cast<std::size_t>(flags.get_int("cpus", 17));
  const std::string variant = flags.get("variant", "gwc");

  workloads::TaskQueueParams p;
  p.total_tasks = static_cast<std::uint32_t>(flags.get_int("tasks", 1024));
  p.producer_batch = static_cast<std::uint32_t>(flags.get_int("batch", 16));
  p.queue_capacity =
      static_cast<std::uint32_t>(flags.get_int("capacity", 128));
  p.produce_ratio = 1.0 / flags.get_double("ratio", 128.0);
  p.nodes_used = cpus;
  const auto topo = net::MeshTorus2D::compact(cpus);

  workloads::TaskQueueResult res;
  if (variant == "gwc") {
    dsm::DsmConfig dcfg;
    harness.apply(dcfg);
    res = run_task_queue_gwc(p, topo, dcfg);
  } else if (variant == "entry") {
    res = run_task_queue_entry(p, topo, net::LinkModel::paper());
  } else if (variant == "ideal") {
    res = run_task_queue_ideal(p, topo);
  } else {
    std::cerr << "unknown variant '" << variant << "'\n";
    return 2;
  }

  harness.metrics()
      .row("taskqueue")
      .set("network_power", res.network_power)
      .set("avg_efficiency", res.avg_efficiency)
      .set("elapsed_ns", static_cast<double>(res.elapsed))
      .set("messages", static_cast<double>(res.messages))
      .set("wasted_grants", static_cast<double>(res.wasted_grants));
  if (!harness.finish()) return 1;
  if (flags.get_bool("csv")) {
    std::cout << "cpus,variant,power,efficiency,elapsed_ns,messages,"
                 "wasted_grants\n"
              << cpus << "," << variant << "," << res.network_power << ","
              << res.avg_efficiency << "," << res.elapsed << ","
              << res.messages << "," << res.wasted_grants << "\n";
    return 0;
  }
  std::cout << "task management on " << topo.name() << " (" << cpus
            << " CPUs, " << variant << ")\n";
  print_kv("network power", stats::Table::num(res.network_power));
  print_kv("avg efficiency", stats::Table::num(res.avg_efficiency));
  print_kv("elapsed", sim::format_time(res.elapsed));
  print_kv("tasks executed", std::to_string(res.tasks_executed));
  print_kv("messages", std::to_string(res.messages));
  print_kv("wasted grants", std::to_string(res.wasted_grants));
  if (variant == "entry") {
    print_kv("demand fetches", std::to_string(res.demand_fetches));
    print_kv("invalidation rounds", std::to_string(res.invalidation_rounds));
  }
  return 0;
}

int run_pipeline_cmd(const util::Flags& flags) {
  if (flags.has("help")) {
    std::cout << "pipeline flags: --cpus N --method optimistic|regular|entry|"
                 "nodelay\n  --items N --mutex-ratio R --csv\n";
    return 0;
  }
  bench::Harness harness("optsync_sim/pipeline", flags);
  harness.allow_only(flags,
                     {"cpus", "method", "items", "mutex-ratio", "csv", "help"});
  const auto cpus = static_cast<std::size_t>(flags.get_int("cpus", 16));
  const std::string method = flags.get("method", "optimistic");

  workloads::PipelineParams p;
  p.data_items = static_cast<std::uint32_t>(flags.get_int("items", 1024));
  p.mutex_ratio = flags.get_double("mutex-ratio", 0.2);
  harness.apply(p.dsm);
  const auto topo = net::MeshTorus2D::near_square(cpus);

  workloads::PipelineMethod m;
  if (method == "optimistic") {
    m = workloads::PipelineMethod::kOptimistic;
  } else if (method == "regular") {
    m = workloads::PipelineMethod::kRegular;
  } else if (method == "entry") {
    m = workloads::PipelineMethod::kEntry;
  } else if (method == "nodelay") {
    m = workloads::PipelineMethod::kNoDelay;
  } else {
    std::cerr << "unknown method '" << method << "'\n";
    return 2;
  }
  const auto res = run_pipeline(m, p, topo);

  const bool is_gwc = m == workloads::PipelineMethod::kOptimistic ||
                      m == workloads::PipelineMethod::kRegular;
  harness.metrics()
      .row("pipeline")
      .set("network_power", res.network_power)
      .set("avg_efficiency", res.avg_efficiency)
      .set("elapsed_ns", static_cast<double>(res.elapsed))
      .set("messages", static_cast<double>(res.messages))
      .set("rollbacks", static_cast<double>(res.rollbacks));
  if (is_gwc) harness.metrics().lock(res.lock_stats);
  if (!harness.finish()) return 1;
  if (flags.get_bool("csv")) {
    std::cout << "cpus,method,power,efficiency,elapsed_ns,messages,rollbacks\n"
              << cpus << "," << method << "," << res.network_power << ","
              << res.avg_efficiency << "," << res.elapsed << ","
              << res.messages << "," << res.rollbacks << "\n";
    return 0;
  }
  std::cout << "pipeline on " << topo.name() << " (" << cpus << " CPUs, "
            << method << ")\n";
  print_kv("network power", stats::Table::num(res.network_power));
  print_kv("avg efficiency", stats::Table::num(res.avg_efficiency));
  print_kv("elapsed", sim::format_time(res.elapsed));
  print_kv("optimistic attempts", std::to_string(res.optimistic_attempts));
  print_kv("rollbacks", std::to_string(res.rollbacks));
  return 0;
}

int run_counter_cmd(const util::Flags& flags) {
  if (flags.has("help")) {
    std::cout << "counter flags: --cpus N --method optimistic|regular|entry|"
                 "tas\n  --think-ns N --increments N --threshold X --seed N "
                 "--csv\n  --fault-drop P --fault-seed N --partition "
                 "A:B:START:END[,...]\n";
    return 0;
  }
  bench::Harness harness("optsync_sim/counter", flags);
  harness.allow_only(flags, {"cpus", "method", "think-ns", "increments",
                             "threshold", "csv", "help", "fault-drop",
                             "fault-seed", "partition"});
  const auto cpus = static_cast<std::size_t>(flags.get_int("cpus", 16));
  const std::string method = flags.get("method", "optimistic");

  workloads::CounterParams p;
  p.think_mean_ns =
      static_cast<sim::Duration>(flags.get_int("think-ns", 50'000));
  p.increments_per_node =
      static_cast<std::uint32_t>(flags.get_int("increments", 50));
  p.history_threshold = flags.get_double("threshold", 0.30);
  p.seed = harness.seed();
  faults::FaultPlan plan;
  if (!parse_fault_flags(flags, &plan)) return 2;
  p.dsm.faults = plan;
  harness.apply(p.dsm);
  const auto topo = net::MeshTorus2D::near_square(cpus);

  workloads::CounterMethod m;
  if (method == "optimistic") {
    m = workloads::CounterMethod::kOptimisticGwc;
  } else if (method == "regular") {
    m = workloads::CounterMethod::kRegularGwc;
  } else if (method == "entry") {
    m = workloads::CounterMethod::kEntry;
  } else if (method == "tas") {
    m = workloads::CounterMethod::kTasSpin;
  } else {
    std::cerr << "unknown method '" << method << "'\n";
    return 2;
  }
  const auto res = run_counter(m, p, topo);
  if (res.final_count != res.expected_count) {
    std::cerr << "MUTUAL EXCLUSION VIOLATION: " << res.final_count
              << " != " << res.expected_count << "\n";
    return 1;
  }

  const bool is_gwc = m == workloads::CounterMethod::kOptimisticGwc ||
                      m == workloads::CounterMethod::kRegularGwc;
  harness.metrics()
      .row("counter")
      .set("sections_per_ms", res.sections_per_ms)
      .set("sync_overhead_ns", res.avg_sync_overhead_ns)
      .set("messages", static_cast<double>(res.messages))
      .set("rollbacks", static_cast<double>(res.rollbacks))
      .set("optimistic_attempts",
           static_cast<double>(res.optimistic_attempts))
      .set("optimistic_successes",
           static_cast<double>(res.optimistic_successes));
  if (is_gwc) harness.metrics().lock(res.lock_stats);
  if (!harness.finish()) return 1;
  if (flags.get_bool("csv")) {
    std::cout << "cpus,method,sections_per_ms,sync_overhead_ns,messages,"
                 "rollbacks,opt_attempts,opt_successes\n"
              << cpus << "," << method << "," << res.sections_per_ms << ","
              << res.avg_sync_overhead_ns << "," << res.messages << ","
              << res.rollbacks << "," << res.optimistic_attempts << ","
              << res.optimistic_successes << "\n";
    return 0;
  }
  std::cout << "shared counter on " << topo.name() << " (" << cpus
            << " CPUs, " << method << ")\n";
  print_kv("final count", std::to_string(res.final_count) + " (correct)");
  print_kv("sections per ms", stats::Table::num(res.sections_per_ms));
  print_kv("sync overhead", sim::format_time(static_cast<sim::Time>(
                                res.avg_sync_overhead_ns)));
  print_kv("messages", std::to_string(res.messages));
  print_kv("rollbacks", std::to_string(res.rollbacks));
  print_kv("speculations", std::to_string(res.optimistic_attempts));
  if (!plan.empty()) print_fault_report(res.faults);
  return 0;
}

int run_fig1_cmd(const util::Flags& flags) {
  if (flags.has("help")) {
    std::cout << "fig1 flags: --model gwc|entry|weak\n";
    return 0;
  }
  bench::Harness harness("optsync_sim/fig1", flags);
  harness.allow_only(flags, {"model", "help"});
  const std::string model = flags.get("model", "gwc");
  workloads::Fig1Model m;
  if (model == "gwc") {
    m = workloads::Fig1Model::kGwc;
  } else if (model == "entry") {
    m = workloads::Fig1Model::kEntry;
  } else if (model == "weak") {
    m = workloads::Fig1Model::kWeakRelease;
  } else {
    std::cerr << "unknown model '" << model << "'\n";
    return 2;
  }
  workloads::Fig1Params p;
  harness.apply(p.dsm);
  const auto res = run_scenario_fig1(m, p);
  std::cout << workloads::fig1_model_name(m) << "\n" << res.timeline;
  print_kv("total", sim::format_time(res.total_ns));
  print_kv("idle CPU1/2/3", sim::format_time(res.idle_ns[0]) + " / " +
                                sim::format_time(res.idle_ns[1]) + " / " +
                                sim::format_time(res.idle_ns[2]));
  harness.metrics()
      .row("fig1")
      .set("total_ns", static_cast<double>(res.total_ns))
      .set("idle_cpu1_ns", static_cast<double>(res.idle_ns[0]))
      .set("idle_cpu2_ns", static_cast<double>(res.idle_ns[1]))
      .set("idle_cpu3_ns", static_cast<double>(res.idle_ns[2]));
  return harness.finish() ? 0 : 1;
}

int run_fig7_cmd(const util::Flags& flags) {
  if (flags.has("help")) {
    std::cout << "fig7 flags: --nodes N --near-ns N --far-ns N\n"
                 "  --fault-drop P --fault-seed N --partition "
                 "A:B:START:END[,...]\n";
    return 0;
  }
  bench::Harness harness("optsync_sim/fig7", flags);
  harness.allow_only(flags, {"nodes", "near-ns", "far-ns", "help",
                             "fault-drop", "fault-seed", "partition"});
  workloads::Fig7Params p;
  p.nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  p.near_section_ns =
      static_cast<sim::Duration>(flags.get_int("near-ns", 30'000));
  p.far_section_ns =
      static_cast<sim::Duration>(flags.get_int("far-ns", 2'000));
  faults::FaultPlan plan;
  if (!parse_fault_flags(flags, &plan)) return 2;
  p.dsm.faults = plan;
  harness.apply(p.dsm);
  const auto res = run_scenario_fig7(p);
  std::cout << res.trace;
  print_kv("final a", std::to_string(res.final_a) + " (expected " +
                          std::to_string(res.expected_a) + ")");
  print_kv("rollbacks", std::to_string(res.rollbacks));
  print_kv("root drops", std::to_string(res.speculative_drops));
  if (!plan.empty()) print_fault_report(res.faults);
  harness.metrics()
      .row("fig7")
      .set("final_a", static_cast<double>(res.final_a))
      .set("rollbacks", static_cast<double>(res.rollbacks))
      .set("speculative_drops", static_cast<double>(res.speculative_drops))
      .set("elapsed_ns", static_cast<double>(res.elapsed));
  harness.metrics().lock(res.lock_stats);
  if (!harness.finish()) return 1;
  return res.final_a == res.expected_a ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const util::Flags flags(argc - 1, argv + 1);
    if (cmd == "taskqueue") return run_taskqueue(flags);
    if (cmd == "pipeline") return run_pipeline_cmd(flags);
    if (cmd == "counter") return run_counter_cmd(flags);
    if (cmd == "fig1") return run_fig1_cmd(flags);
    if (cmd == "fig7") return run_fig7_cmd(flags);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
