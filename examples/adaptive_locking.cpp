// Adaptive locking: the usage-frequency history in action (paper §4).
//
// A node alternates between a quiet phase (it is effectively the lock's only
// user) and a contended phase (all 8 nodes hammer the same lock). The EWMA
// history (old = 0.95*old + 0.05*new, threshold 0.30) makes the quiet phase
// run optimistically and the contended phase fall back to regular requests —
// "this method does not add any network traffic when the lock is heavily
// contended".
#include <iostream>

#include "stats/table.hpp"
#include "workloads/counter.hpp"

int main() {
  using namespace optsync;
  const auto topo = net::MeshTorus2D::near_square(8);

  stats::Table table({"phase", "think time", "opt attempts", "rollbacks",
                      "regular paths", "sections/ms"});

  struct Phase {
    const char* name;
    sim::Duration think;
  };
  for (const auto& phase : {Phase{"quiet", 500'000},
                            Phase{"contended", 3'000},
                            Phase{"quiet again", 500'000}}) {
    workloads::CounterParams p;
    p.increments_per_node = 50;
    p.think_mean_ns = phase.think;
    const auto res =
        run_counter(workloads::CounterMethod::kOptimisticGwc, p, topo);
    if (res.final_count != res.expected_count) {
      std::cerr << "mutual exclusion violated!\n";
      return 1;
    }
    table.add_row({phase.name, sim::format_time(phase.think),
                   std::to_string(res.optimistic_attempts),
                   std::to_string(res.rollbacks),
                   std::to_string(res.regular_paths),
                   stats::Table::num(res.sections_per_ms)});
  }
  table.print(std::cout);
  std::cout << "\nUnder contention the history estimate crosses the 0.30\n"
               "threshold and requests switch to the regular path, so\n"
               "speculation (and its rollback risk) disappears exactly when\n"
               "it would be wasted.\n";
  return 0;
}
