// Quickstart: share a variable across a Sesame group and update it under an
// optimistic mutex.
//
//   $ ./example_quickstart
//
// Walks through the full public API surface: topology -> DsmSystem -> group
// -> variables -> OptimisticMutex::execute, then prints what the substrate
// did (messages, speculation outcome, final convergent state).
#include <iostream>

#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "simkern/coro.hpp"

using namespace optsync;

// A worker that adds its contribution to a shared total inside an
// optimistically executed critical section.
sim::Process worker(dsm::DsmSystem& sys, core::OptimisticMutex& mux,
                    dsm::VarId total, net::NodeId me, dsm::Word amount,
                    sim::Duration start_at) {
  co_await sim::delay(sys.scheduler(), start_at);

  core::Section section;
  section.shared_writes = {total};  // the rollback save list
  section.body = [&sys, total, amount](dsm::DsmNode& node) -> sim::Process {
    const dsm::Word before = node.read(total);          // local read
    co_await sim::delay(sys.scheduler(), 2'000);        // 2us of "work"
    node.write(total, before + amount);                 // eagershared write
  };
  co_await mux.execute(me, section).join();
}

int main() {
  // 1. A 4x4 mesh torus of workstations, 200ns hops, 1Gb/s links.
  sim::Scheduler sched;
  const auto topo = net::MeshTorus2D::near_square(16);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});

  // 2. A sharing group of four nodes; node 5 is the group root (sequencer,
  //    lock manager).
  const dsm::GroupId g = sys.create_group({1, 5, 9, 13}, /*root=*/5);

  // 3. A lock and a datum guarded by it.
  const dsm::VarId lock = sys.define_lock("demo.lock", g);
  const dsm::VarId total = sys.define_mutex_data("demo.total", g, lock, 100);

  // 4. Optimistic mutual exclusion over that lock.
  core::OptimisticMutex mux(sys, lock, core::OptimisticMutex::Config{});

  // 5. Two workers race; starts are staggered so the first speculation
  //    usually succeeds and the second may roll back.
  auto w1 = worker(sys, mux, total, 1, 10, 0);
  auto w2 = worker(sys, mux, total, 13, 7, 500);
  sched.run();
  w1.rethrow_if_failed();
  w2.rethrow_if_failed();

  std::cout << "final total on every member:";
  for (const auto n : sys.group(g).members()) {
    std::cout << " n" << n << "=" << sys.node(n).read(total);
  }
  std::cout << "\n(expected 117 everywhere)\n\n";

  const auto& ms = mux.stats();
  std::cout << "optimistic attempts:  " << ms.optimistic_attempts << "\n"
            << "optimistic successes: " << ms.optimistic_successes << "\n"
            << "rollbacks:            " << ms.rollbacks << "\n"
            << "regular paths:        " << ms.regular_paths << "\n"
            << "network messages:     " << sys.network().stats().messages
            << "\n"
            << "simulated time:       " << sim::format_time(sched.now())
            << "\n";
  return 0;
}
