// Pipeline stages: the paper's Figure 8 example at a couple of sizes,
// showing how much of the lock round trip optimistic synchronization hides.
#include <iostream>

#include "stats/table.hpp"
#include "workloads/pipeline.hpp"

int main() {
  using namespace optsync;
  using workloads::PipelineMethod;

  workloads::PipelineParams params;
  params.data_items = 256;

  std::cout << "Pipeline of " << params.data_items
            << " data items; one uncontended mutex per hop\n"
            << "(mutex compute : local compute = 1 : "
            << static_cast<int>(1.0 / params.mutex_ratio + 0.5) << ")\n\n";

  stats::Table table(
      {"CPUs", "method", "network power", "efficiency", "rollbacks"});
  for (const std::size_t n : {4, 32}) {
    const auto topo = net::MeshTorus2D::near_square(n);
    struct Row {
      PipelineMethod m;
      const char* name;
    };
    for (const auto& [m, name] :
         {Row{PipelineMethod::kOptimistic, "optimistic GWC"},
          Row{PipelineMethod::kRegular, "regular GWC"},
          Row{PipelineMethod::kEntry, "entry consistency"}}) {
      const auto res = run_pipeline(m, params, topo);
      table.add_row({std::to_string(n), name,
                     stats::Table::num(res.network_power),
                     stats::Table::num(res.avg_efficiency),
                     std::to_string(res.rollbacks)});
    }
  }
  table.print(std::cout);
  std::cout << "\nNo contention ever occurs, so optimistic locking never"
               " rolls back here:\nits whole gain is the hidden lock"
               " round trip.\n";
  return 0;
}
