// Task scheduler: the paper's motivating workload (§3.1) at one size.
//
// One producer fills a shared bounded queue under a GWC queue lock; 16
// consumers drain it. Compares GWC eagersharing against the entry
// consistency baseline and the zero-delay bound, and prints where the time
// goes — the per-size slice of Figure 2.
#include <iostream>

#include "stats/table.hpp"
#include "workloads/task_queue.hpp"

int main() {
  using namespace optsync;

  constexpr std::size_t kCpus = 17;  // power of two plus one, like the paper
  const auto topo = net::MeshTorus2D::near_square(kCpus);

  workloads::TaskQueueParams params;
  params.total_tasks = 512;

  std::cout << "Task scheduler on " << topo.name() << ": 1 producer, "
            << kCpus - 1 << " consumers, " << params.total_tasks
            << " tasks\n\n";

  const auto ideal = run_task_queue_ideal(params, topo);
  const auto gwc = run_task_queue_gwc(params, topo, dsm::DsmConfig{});
  const auto entry =
      run_task_queue_entry(params, topo, net::LinkModel::paper());

  stats::Table table({"variant", "speedup", "efficiency", "elapsed",
                      "messages", "wasted grants"});
  table.add_row({"zero-delay bound", stats::Table::num(ideal.network_power),
                 stats::Table::num(ideal.avg_efficiency),
                 sim::format_time(ideal.elapsed),
                 std::to_string(ideal.messages),
                 std::to_string(ideal.wasted_grants)});
  table.add_row({"GWC eagersharing", stats::Table::num(gwc.network_power),
                 stats::Table::num(gwc.avg_efficiency),
                 sim::format_time(gwc.elapsed), std::to_string(gwc.messages),
                 std::to_string(gwc.wasted_grants)});
  table.add_row({"entry consistency", stats::Table::num(entry.network_power),
                 stats::Table::num(entry.avg_efficiency),
                 sim::format_time(entry.elapsed),
                 std::to_string(entry.messages),
                 std::to_string(entry.wasted_grants)});
  table.print(std::cout);

  std::cout << "\nentry consistency extras: " << entry.demand_fetches
            << " demand fetches, " << entry.invalidation_rounds
            << " invalidation rounds\n"
            << "(eagersharing needs neither: the queue-state test is a local"
               " read)\n";
  return 0;
}
