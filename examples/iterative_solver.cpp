// Iterative (Jacobi-style) solver on eagersharing: bulk-synchronous rounds
// with ZERO lock traffic.
//
// Each of 16 processors owns one strip of a 1-D diffusion problem. Per
// round it:
//   1. publishes its boundary values via a single-writer PublishedRecord
//      (the §2 reader/writer idiom — no mutex needed),
//   2. crosses an EagerBarrier (one eagershared write per node per round),
//   3. reads its neighbors' boundaries from LOCAL memory (eagersharing
//      already delivered them) and relaxes its strip.
//
// Demonstrates the paper's broader claim: with GWC ordering, most
// synchronization penalties vanish when writers are unique.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/publication.hpp"
#include "dsm/system.hpp"
#include "sync/barrier.hpp"

using namespace optsync;

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kCells = 8;  // cells per strip
constexpr int kRounds = 24;
constexpr sim::Duration kComputePerCell = 300;  // ~10 flops at 33 MFLOPS

struct Solver {
  sim::Scheduler sched;
  net::MeshTorus2D topo = net::MeshTorus2D::near_square(kNodes);
  std::unique_ptr<dsm::DsmSystem> sys;
  dsm::GroupId g = 0;
  std::unique_ptr<sync::EagerBarrier> barrier;
  // boundary[i] publishes {left_cell, right_cell} of node i's strip.
  std::vector<std::unique_ptr<core::PublishedRecord>> boundary;
  // Local (unshared) strips, fixed-point values scaled by 1000.
  std::vector<std::vector<dsm::Word>> strip =
      std::vector<std::vector<dsm::Word>>(kNodes,
                                          std::vector<dsm::Word>(kCells, 0));
};

sim::Process node_main(Solver& s, dsm::NodeId me) {
  auto& strip = s.strip[me];
  for (int round = 0; round < kRounds; ++round) {
    // 1. publish boundary cells (single writer: no lock).
    s.boundary[me]->publish({strip.front(), strip.back()});

    // 2. synchronize the round.
    co_await s.barrier->wait(me).join();

    // 3. neighbors' boundaries are already local; relax.
    const auto left = static_cast<dsm::NodeId>((me + kNodes - 1) % kNodes);
    const auto right = static_cast<dsm::NodeId>((me + 1) % kNodes);
    const auto lb = s.boundary[left]->try_read(me);
    const auto rb = s.boundary[right]->try_read(me);
    const dsm::Word left_ghost = lb ? (*lb)[1] : 0;    // their right cell
    const dsm::Word right_ghost = rb ? (*rb)[0] : 0;   // their left cell

    std::vector<dsm::Word> next(kCells);
    for (std::size_t c = 0; c < kCells; ++c) {
      const dsm::Word lv = c == 0 ? left_ghost : strip[c - 1];
      const dsm::Word rv = c + 1 == kCells ? right_ghost : strip[c + 1];
      dsm::Word self = strip[c];
      // Heat source on node 0, cell 0.
      if (me == 0 && c == 0) self = 1'000'000;
      next[c] = (lv + rv + 2 * self) / 4;
    }
    strip = std::move(next);
    co_await sim::delay(s.sched, kComputePerCell * kCells);
  }
}

}  // namespace

int main() {
  Solver s;
  s.sys = std::make_unique<dsm::DsmSystem>(s.sched, s.topo, dsm::DsmConfig{});
  std::vector<dsm::NodeId> members;
  for (dsm::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  s.g = s.sys->create_group(members, 0);
  s.barrier = std::make_unique<sync::EagerBarrier>(*s.sys, s.g, "round");
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    s.boundary.push_back(std::make_unique<core::PublishedRecord>(
        *s.sys, s.g, "b" + std::to_string(i), 2, i));
  }

  std::vector<sim::Process> procs;
  for (dsm::NodeId i = 0; i < kNodes; ++i) procs.push_back(node_main(s, i));
  s.sched.run();
  for (const auto& p : procs) p.rethrow_if_failed();

  std::cout << "heat after " << kRounds << " rounds (node strip averages):\n";
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    dsm::Word sum = 0;
    for (const auto v : s.strip[i]) sum += v;
    std::printf("  node %2u: %8.3f\n", i,
                static_cast<double>(sum) / kCells / 1000.0);
  }

  std::cout << "\nsimulated time: " << sim::format_time(s.sched.now())
            << "\nmessages:       " << s.sys->network().stats().messages
            << "  (0 lock messages: publication + barrier only)\n"
            << "barrier rounds:  " << s.barrier->stats().episodes / kNodes
            << "\n";
  return 0;
}
