// A replicated key-value store on the optsync stack — what a downstream
// user actually builds with this library.
//
// The heavy lifting now lives in the library: shard::ShardedStore stripes
// the namespace over independent sharing groups (one lock + root + slot set
// per shard, roots spread across the machine), routes each put through the
// per-shard lock protocol, and keeps the serializability ledger. Gets are
// LOCAL reads (eagersharing keeps every replica warm); an uncontended shard
// commits a put in roughly its compute time — the lock round trip rides
// under it. This file is just clients plus reporting; compare with the
// pre-refactor revision to see the hand-rolled bucket machinery the store
// replaced.
#include <iostream>
#include <vector>

#include "dsm/system.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/random.hpp"

using namespace optsync;

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::uint32_t kShards = 8;  // was: hand-rolled buckets

struct Counters {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
};

sim::Process worker(shard::Client& kv, Counters& counters, dsm::NodeId me,
                    std::uint64_t seed) {
  auto& sched = kv.store().system().scheduler();
  sim::Rng rng(seed);
  for (int op = 0; op < 40; ++op) {
    co_await sim::delay(sched,
                        static_cast<sim::Duration>(rng.exponential(30'000)));
    const auto key = static_cast<shard::Key>(1 + rng.below(24));
    if (rng.chance(0.3)) {
      ++counters.puts;
      co_await kv.write(me, key, static_cast<dsm::Word>(key) * 1000 + me)
          .join();
    } else {
      ++counters.gets;
      std::optional<dsm::Word> got;
      co_await kv.read(me, key, &got).join();
      if (got.has_value()) ++counters.get_hits;
    }
  }
}

}  // namespace

int main() {
  sim::Scheduler sched;
  const net::MeshTorus2D topo = net::MeshTorus2D::near_square(kNodes);
  dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});

  shard::ShardedStoreConfig cfg;
  cfg.shards = kShards;
  cfg.slots_per_shard = 4;
  cfg.lock = shard::LockPolicy::kOptimistic;  // pure §4 speculation
  cfg.root_stride = 2;  // spread roots (lock managers) across the machine
  shard::ShardedStore store(sys, cfg);
  shard::Client kv(store);

  Counters counters;
  std::vector<sim::Process> procs;
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    procs.push_back(worker(kv, counters, i, 1000 + i));
  }
  sched.run();
  for (const auto& p : procs) p.rethrow_if_failed();

  std::uint64_t speculations = 0, successes = 0, rollbacks = 0;
  for (shard::ShardId s = 0; s < kShards; ++s) {
    const auto& ls = store.lock_stats(s);
    speculations += ls.speculative_attempts;
    successes += ls.speculative_commits;
    rollbacks += ls.rollbacks;
  }

  std::cout << "replicated KV store: " << kNodes << " replicas, " << kShards
            << " buckets\n"
            << "  puts                  " << counters.puts << "\n"
            << "  gets                  " << counters.gets << " ("
            << counters.get_hits << " hits, all local reads)\n"
            << "  speculative puts      " << speculations << " ("
            << successes << " committed without waiting, " << rollbacks
            << " rolled back)\n"
            << "  simulated time        " << sim::format_time(sched.now())
            << "\n"
            << "  messages              " << sys.network().stats().messages
            << "\n\nReplicas agree on every slot:\n";
  const bool consistent = store.replicas_converged();
  std::cout << (consistent ? "  CONSISTENT\n" : "  DIVERGED (BUG)\n");
  return consistent ? 0 : 1;
}
