// A replicated key-value store on the optsync stack — what a downstream
// user actually builds with this library.
//
// Keys hash to buckets; each bucket is a lock + a small set of mutex-data
// slots in one sharing group. Gets are LOCAL reads (eagersharing keeps every
// replica warm); puts run under a per-bucket OptimisticMutex, so an
// uncontended bucket commits a put in roughly the bucket's compute time —
// the lock round trip rides under it.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "simkern/random.hpp"

using namespace optsync;

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kBuckets = 8;
constexpr std::size_t kSlotsPerBucket = 4;  // (key, value) pairs
constexpr sim::Duration kPutCompute = 800;  // hash + slot scan

struct Bucket {
  dsm::VarId lock;
  std::vector<dsm::VarId> keys;
  std::vector<dsm::VarId> values;
  std::unique_ptr<core::OptimisticMutex> mux;
};

struct Store {
  sim::Scheduler sched;
  net::MeshTorus2D topo = net::MeshTorus2D::near_square(kNodes);
  std::unique_ptr<dsm::DsmSystem> sys;
  std::vector<Bucket> buckets;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;

  static std::size_t bucket_of(dsm::Word key) {
    return static_cast<std::size_t>(key) % kBuckets;
  }

  /// Put: optimistic critical section over the bucket.
  sim::Process put(dsm::NodeId n, dsm::Word key, dsm::Word value) {
    Bucket& b = buckets[bucket_of(key)];
    core::Section sec;
    sec.shared_writes.reserve(kSlotsPerBucket * 2);
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      sec.shared_writes.push_back(b.keys[s]);
      sec.shared_writes.push_back(b.values[s]);
    }
    sec.body = [this, &b, key, value](dsm::DsmNode& node) -> sim::Process {
      co_await sim::delay(sched, kPutCompute);
      // First matching or empty slot; evict slot 0 when full (toy policy).
      std::size_t chosen = 0;
      for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
        const dsm::Word k = node.read(b.keys[s]);
        if (k == key || k == 0) {
          chosen = s;
          break;
        }
      }
      node.write(b.keys[chosen], key);
      node.write(b.values[chosen], value);
    };
    ++puts;
    co_await b.mux->execute(n, std::move(sec)).join();
  }

  /// Get: pure local reads — zero network traffic.
  dsm::Word get(dsm::NodeId n, dsm::Word key) {
    ++gets;
    const Bucket& b = buckets[bucket_of(key)];
    const auto& node = sys->node(n);
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      if (node.read(b.keys[s]) == key) {
        ++get_hits;
        return node.read(b.values[s]);
      }
    }
    return 0;
  }
};

sim::Process client(Store& store, dsm::NodeId me, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int op = 0; op < 40; ++op) {
    co_await sim::delay(store.sched,
                        static_cast<sim::Duration>(rng.exponential(30'000)));
    const auto key = static_cast<dsm::Word>(1 + rng.below(24));
    if (rng.chance(0.3)) {
      co_await store.put(me, key, key * 1000 + me).join();
    } else {
      (void)store.get(me, key);
    }
  }
}

}  // namespace

int main() {
  Store store;
  store.sys = std::make_unique<dsm::DsmSystem>(store.sched, store.topo,
                                               dsm::DsmConfig{});
  std::vector<dsm::NodeId> members;
  for (dsm::NodeId i = 0; i < kNodes; ++i) members.push_back(i);
  // Buckets spread their roots (lock managers) across the machine.
  for (std::size_t bkt = 0; bkt < kBuckets; ++bkt) {
    const auto root = static_cast<dsm::NodeId>((bkt * 2) % kNodes);
    const auto g = store.sys->create_group(members, root);
    Bucket b;
    b.lock = store.sys->define_lock("kv.b" + std::to_string(bkt) + ".lock", g);
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      const std::string base =
          "kv.b" + std::to_string(bkt) + ".s" + std::to_string(s);
      b.keys.push_back(
          store.sys->define_mutex_data(base + ".key", g, b.lock, 0));
      b.values.push_back(
          store.sys->define_mutex_data(base + ".val", g, b.lock, 0));
    }
    b.mux = std::make_unique<core::OptimisticMutex>(
        *store.sys, b.lock, core::OptimisticMutex::Config{});
    store.buckets.push_back(std::move(b));
  }

  std::vector<sim::Process> procs;
  for (dsm::NodeId i = 0; i < kNodes; ++i) {
    procs.push_back(client(store, i, 1000 + i));
  }
  store.sched.run();
  for (const auto& p : procs) p.rethrow_if_failed();

  std::uint64_t speculations = 0, successes = 0, rollbacks = 0;
  for (const auto& b : store.buckets) {
    speculations += b.mux->stats().optimistic_attempts;
    successes += b.mux->stats().optimistic_successes;
    rollbacks += b.mux->stats().rollbacks;
  }

  std::cout << "replicated KV store: " << kNodes << " replicas, " << kBuckets
            << " buckets\n"
            << "  puts                  " << store.puts << "\n"
            << "  gets                  " << store.gets << " ("
            << store.get_hits << " hits, all local reads)\n"
            << "  speculative puts      " << speculations << " ("
            << successes << " committed without waiting, " << rollbacks
            << " rolled back)\n"
            << "  simulated time        " << sim::format_time(store.sched.now())
            << "\n"
            << "  messages              " << store.sys->network().stats().messages
            << "\n\nReplicas agree on every slot:\n";
  // Verify convergence across replicas.
  bool consistent = true;
  for (const auto& b : store.buckets) {
    for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
      const dsm::Word k0 = store.sys->node(0).read(b.keys[s]);
      const dsm::Word v0 = store.sys->node(0).read(b.values[s]);
      for (dsm::NodeId n = 1; n < kNodes; ++n) {
        if (store.sys->node(n).read(b.keys[s]) != k0 ||
            store.sys->node(n).read(b.values[s]) != v0) {
          consistent = false;
        }
      }
    }
  }
  std::cout << (consistent ? "  CONSISTENT\n" : "  DIVERGED (BUG)\n");
  return consistent ? 0 : 1;
}
