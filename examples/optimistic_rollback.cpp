// Optimistic rollback, observed at message level — the paper's Figure 7
// walkthrough with commentary.
#include <iostream>

#include "workloads/scenario_fig7.hpp"

int main() {
  using namespace optsync;

  workloads::Fig7Params params;
  params.nodes = 8;
  params.far_section_ns = 2'000;

  std::cout
      << "Two processors race for one lock. The one far from the group root\n"
         "speculates and loses; watch the mechanisms fire:\n"
         "  1. both send non-blocking lock requests and keep computing,\n"
         "  2. the root grants the nearer request, queues the other,\n"
         "  3. the loser's interrupt suspends insharing and triggers a\n"
         "     rollback; its in-flight speculative update is dropped at the\n"
         "     root (it is not the holder),\n"
         "  4. the queued grant arrives, the section re-runs with valid\n"
         "     values, and every node converges on the same state.\n\n";

  const auto res = run_scenario_fig7(params);
  std::cout << res.trace << "\n";

  std::cout << "outcome: a = " << res.final_a << " (serial result "
            << res.expected_a << "), " << res.rollbacks << " rollback, "
            << res.speculative_drops
            << " speculative write(s) suppressed at the root\n";
  return res.final_a == res.expected_a ? 0 : 1;
}
