#include "consistency/entry.hpp"

#include "simkern/assert.hpp"

namespace optsync::consistency {

EntryEngine::EntryEngine(net::Network& net, Config cfg)
    : net_(&net), cfg_(cfg) {}

EntryEngine::LockId EntryEngine::create_lock(net::NodeId initial_owner,
                                             std::uint32_t data_bytes) {
  OPTSYNC_EXPECT(initial_owner < net_->topology().size());
  const auto id = static_cast<LockId>(locks_.size());
  Lock lk;
  lk.owner = initial_owner;
  lk.data_bytes = data_bytes;
  locks_.push_back(std::move(lk));
  return id;
}

EntryEngine::Lock& EntryEngine::lock(LockId l) {
  OPTSYNC_EXPECT(l < locks_.size());
  return locks_[l];
}

net::NodeId EntryEngine::owner(LockId l) const {
  OPTSYNC_EXPECT(l < locks_.size());
  return locks_[l].owner;
}

bool EntryEngine::busy(LockId l) const {
  OPTSYNC_EXPECT(l < locks_.size());
  return locks_[l].busy;
}

void EntryEngine::add_reader(LockId l, net::NodeId n) {
  lock(l).readers.insert(n);
}

sim::Signal& EntryEngine::invalidation_signal(net::NodeId n) {
  auto& slot = inval_signals_[n];
  if (!slot) slot = std::make_unique<sim::Signal>(net_->scheduler());
  return *slot;
}

sim::Process EntryEngine::acquire(net::NodeId n, LockId l) {
  auto& sched = net_->scheduler();
  Lock& L = lock(l);
  ++stats_.acquisitions;

  // Owner re-entering an idle lock: permission is granted locally. Readers
  // must still be invalidated before exclusive mode (Fig. 1b: "Before CPU1
  // is given permission, the lock owner sends an invalidation to the
  // processors holding the data in non-exclusive mode").
  if (L.owner == n && !L.busy && !L.transferring && L.queue.empty()) {
    ++stats_.local_grants;
    L.busy = true;  // reserve now so a concurrent remote request queues
                    // behind us instead of racing the invalidation round
    if (!L.readers.empty()) {
      ++stats_.invalidations;
      sim::Signal done(sched);
      std::size_t pending = L.readers.size();
      for (const net::NodeId r : L.readers) {
        net_->send(n, r, cfg_.ctrl_bytes, "ec-inval", [this, n, r, &pending,
                                                       &done] {
          invalidation_signal(r).notify_all();
          net_->send(r, n, cfg_.ctrl_bytes, "ec-inval-ack", [&pending, &done] {
            if (--pending == 0) done.notify_all();
          });
        });
      }
      while (pending != 0) co_await done.wait();
      L.readers.clear();
    }
    co_await sim::delay(sched, cfg_.local_op_ns);
    co_return;
  }

  // Remote acquisition: the request reaches the owner (directly under the
  // perfect-guess model, via the manager under the directory scheme), gets
  // queued there, and completes when data+grant arrive here.
  bool granted = false;
  sim::Signal wake(sched);
  L.queue.push_back(Waiter{n, [&granted, &wake] {
                             granted = true;
                             wake.notify_all();
                           }});
  if (cfg_.route_via_manager && cfg_.manager != n) {
    net_->send(n, cfg_.manager, cfg_.ctrl_bytes, "ec-req", [this, l] {
      Lock& lk = lock(l);
      net_->send(cfg_.manager, lk.owner, cfg_.ctrl_bytes, "ec-fwd",
                 [this, l] { pump(l); });
    });
  } else {
    net_->send(n, L.owner, cfg_.ctrl_bytes, "ec-req", [this, l] { pump(l); });
  }
  while (!granted) co_await wake.wait();
}

void EntryEngine::release(net::NodeId n, LockId l) {
  Lock& L = lock(l);
  OPTSYNC_EXPECT(L.owner == n);
  OPTSYNC_EXPECT(L.busy);
  // "All releases in entry consistency are local."
  L.busy = false;
  pump(l);
}

void EntryEngine::pump(LockId l) {
  Lock& L = lock(l);
  if (L.busy || L.transferring || L.queue.empty()) return;
  start_transfer(l);
}

void EntryEngine::start_transfer(LockId l) {
  Lock& L = lock(l);
  L.transferring = true;
  const net::NodeId from = L.owner;

  if (L.readers.empty()) {
    send_data_grant(l, from);
    return;
  }
  // Invalidation round trip to every non-exclusive holder, then transfer.
  ++stats_.invalidations;
  L.pending_acks = L.readers.size();
  for (const net::NodeId r : L.readers) {
    net_->send(from, r, cfg_.ctrl_bytes, "ec-inval", [this, l, from, r] {
      invalidation_signal(r).notify_all();
      net_->send(r, from, cfg_.ctrl_bytes, "ec-inval-ack", [this, l, from] {
        Lock& lk = lock(l);
        if (--lk.pending_acks == 0) {
          lk.readers.clear();
          send_data_grant(l, from);
        }
      });
    });
  }
}

void EntryEngine::send_data_grant(LockId l, net::NodeId from) {
  Lock& L = lock(l);
  OPTSYNC_ENSURE(!L.queue.empty());
  const net::NodeId to = L.queue.front().node;
  ++stats_.transfers;
  // The grant carries the guarded data ("extra time to send the data just
  // before each lock").
  net_->send(from, to, cfg_.ctrl_bytes + L.data_bytes, "ec-grant",
             [this, l, to] {
               Lock& lk = lock(l);
               lk.owner = to;
               lk.busy = true;
               lk.transferring = false;
               Waiter w = std::move(lk.queue.front());
               lk.queue.pop_front();
               w.grant();
             });
}

sim::Process EntryEngine::read_nonexclusive(net::NodeId n, LockId l,
                                            std::uint32_t value_bytes) {
  auto& sched = net_->scheduler();
  Lock& L = lock(l);
  if (L.owner == n) {
    co_await sim::delay(sched, cfg_.local_op_ns);
    co_return;
  }
  if (cfg_.cache_reads && L.readers.contains(n)) {
    ++stats_.cached_reads;
    co_await sim::delay(sched, cfg_.local_op_ns);
    co_return;
  }
  // Demand-fetch round trip to the current owner.
  ++stats_.demand_fetches;
  bool done = false;
  sim::Signal wake(sched);
  net_->send(n, L.owner, cfg_.ctrl_bytes, "ec-fetch",
             [this, l, n, value_bytes, &done, &wake] {
               Lock& lk = lock(l);
               net_->send(lk.owner, n, cfg_.ctrl_bytes + value_bytes,
                          "ec-data", [&done, &wake] {
                            done = true;
                            wake.notify_all();
                          });
               lk.readers.insert(n);
             });
  while (!done) co_await wake.wait();
}

}  // namespace optsync::consistency
