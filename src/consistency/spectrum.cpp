#include "consistency/spectrum.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "net/link_model.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"
#include "simkern/scheduler.hpp"

namespace optsync::consistency {

std::string model_name(Model m) {
  switch (m) {
    case Model::kSequential:
      return "sequential";
    case Model::kProcessor:
      return "processor";
    case Model::kTotalStore:
      return "total store order";
    case Model::kPartialStore:
      return "partial store order";
    case Model::kWeakRelease:
      return "weak/release";
    case Model::kGroupWrite:
      return "group write (GWC)";
  }
  return "?";
}

namespace {

struct Shared {
  const SpectrumParams* p;
  const net::Topology* topo;
  net::LinkModel link = net::LinkModel::paper();
  sim::Scheduler* sched;
  Model model;

  sim::Time arbitrator_busy_until = 0;  ///< kTotalStore global queue
  sim::Time root_busy_until = 0;        ///< kGroupWrite serial dispatch

  sim::Duration total_write_stall = 0;
  sim::Duration total_sync_stall = 0;
  std::uint64_t messages = 0;
  sim::Time finished_at = 0;

  /// One-way latency from n to its farthest peer (write visibility bound).
  [[nodiscard]] sim::Duration max_one_way(net::NodeId n) const {
    sim::Duration worst = 0;
    for (net::NodeId m = 0; m < topo->size(); ++m) {
      if (m == n) continue;
      worst = std::max(worst, link.delay(topo->hop_count(n, m),
                                         p->update_bytes));
    }
    return worst;
  }
};

sim::Process spectrum_node(Shared& sh, net::NodeId n) {
  const auto& p = *sh.p;
  auto& sched = *sh.sched;
  const auto others = static_cast<std::uint64_t>(sh.topo->size() - 1);
  const std::uint32_t buffer_depth =
      sh.model == Model::kPartialStore ? p.store_buffer * 4 : p.store_buffer;

  std::deque<sim::Time> outstanding;  // completion times, ascending

  for (std::uint32_t w = 0; w < p.writes_per_node; ++w) {
    co_await sim::delay(sched, p.gap_ns);

    switch (sh.model) {
      case Model::kSequential: {
        // Round trip to the farthest observer before the next instruction.
        const sim::Duration stall = 2 * sh.max_one_way(n);
        sh.total_write_stall += stall;
        sh.messages += 2 * others;  // update + ack per peer
        co_await sim::delay(sched, stall);
        break;
      }
      case Model::kProcessor:
      case Model::kPartialStore:
      case Model::kTotalStore: {
        // Store buffer: stall only when full.
        while (!outstanding.empty() && outstanding.front() <= sched.now()) {
          outstanding.pop_front();
        }
        if (outstanding.size() >= buffer_depth) {
          const sim::Duration stall = outstanding.front() - sched.now();
          sh.total_write_stall += stall;
          co_await sim::delay(sched, stall);
          outstanding.pop_front();
        }
        sim::Time completion;
        if (sh.model == Model::kTotalStore) {
          // One global arbitrator serializes every write in the system —
          // the paper's "centralized memory write arbitrator" bottleneck.
          const sim::Time arrive =
              sched.now() +
              sh.link.delay(sh.topo->hop_count(n, p.hub), p.update_bytes);
          const sim::Time start =
              std::max(arrive, sh.arbitrator_busy_until);
          sh.arbitrator_busy_until = start + p.arbitrator_service_ns;
          completion = sh.arbitrator_busy_until + sh.max_one_way(p.hub);
          sh.messages += 1 + others;  // to arbitrator + fan-out
        } else {
          completion = sched.now() + sh.max_one_way(n);
          sh.messages += others;
        }
        outstanding.push_back(completion);
        break;
      }
      case Model::kWeakRelease: {
        // Pipelined freely; acked at the sync point.
        outstanding.push_back(sched.now() + 2 * sh.max_one_way(n));
        sh.messages += 2 * others;  // update + ack per peer
        break;
      }
      case Model::kGroupWrite: {
        // Interception + root sequencing: the CPU never waits; ordering is
        // the guarantee, so nothing is owed at the sync point either.
        const sim::Time arrive =
            sched.now() +
            sh.link.delay(sh.topo->hop_count(n, p.hub), p.update_bytes);
        const sim::Time dispatch =
            std::max(arrive, sh.root_busy_until) + 25;
        sh.root_busy_until = dispatch;
        sh.messages += 1 + others + 1;  // up-tree + multicast (incl. echo)
        break;
      }
    }
  }

  // Synchronization point.
  const sim::Time sync_begin = sched.now();
  if (!outstanding.empty()) {
    const sim::Time last = outstanding.back();
    if (last > sched.now()) {
      co_await sim::delay(sched, last - sched.now());
    }
  }
  sh.total_sync_stall += sched.now() - sync_begin;
  sh.finished_at = std::max(sh.finished_at, sched.now());
}

}  // namespace

SpectrumResult run_spectrum(Model model, const SpectrumParams& params,
                            const net::Topology& topo) {
  OPTSYNC_EXPECT(topo.size() >= 2);
  OPTSYNC_EXPECT(params.hub < topo.size());
  sim::Scheduler sched;
  Shared sh;
  sh.p = &params;
  sh.topo = &topo;
  sh.sched = &sched;
  sh.model = model;

  std::vector<sim::Process> procs;
  for (net::NodeId n = 0; n < topo.size(); ++n) {
    procs.push_back(spectrum_node(sh, n));
  }
  sched.run();
  for (const auto& p : procs) p.rethrow_if_failed();
  for (const auto& p : procs) OPTSYNC_ENSURE(p.done());

  const double total_writes = static_cast<double>(topo.size()) *
                              static_cast<double>(params.writes_per_node);
  SpectrumResult res;
  res.elapsed = sh.finished_at;
  res.avg_write_stall_ns =
      static_cast<double>(sh.total_write_stall) / total_writes;
  res.avg_sync_stall_ns = static_cast<double>(sh.total_sync_stall) /
                          static_cast<double>(topo.size());
  res.messages = sh.messages;
  return res;
}

}  // namespace optsync::consistency
