// Weak / release consistency baseline (paper [3], [6] and §3/Fig. 1c).
//
// Shared data is eagerly updated (cache-update style) so reads are local,
// but consistency is only enforced at synchronization points: a holder's
// release is blocked until all its pipelined updates have reached every
// node. Lock location follows the classical manager+owner scheme ("This
// method may need three one-way messages to get a lock [5]": requester ->
// manager -> current owner -> grant to requester).
//
// Weak and release consistency behave identically for the paper's workloads
// ("Weak and release consistency behave the same since each processor locks,
// reads or updates, and releases only once"), so one engine serves both.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/network.hpp"
#include "simkern/coro.hpp"

namespace optsync::consistency {

class ReleaseEngine {
 public:
  using LockId = std::uint32_t;

  struct Config {
    std::uint32_t ctrl_bytes = 16;
    std::uint32_t update_bytes = 16;  ///< one shared-variable update packet
    sim::Duration local_op_ns = 50;
  };

  /// `sharers` are the nodes holding copies of the data guarded by locks of
  /// this engine — a release must wait for updates to reach all of them.
  ReleaseEngine(net::Network& net, std::vector<net::NodeId> sharers,
                Config cfg);
  ReleaseEngine(net::Network& net, std::vector<net::NodeId> sharers)
      : ReleaseEngine(net, std::move(sharers), Config{}) {}
  ReleaseEngine(const ReleaseEngine&) = delete;
  ReleaseEngine& operator=(const ReleaseEngine&) = delete;

  /// Creates a lock managed by (and initially owned by) `manager`.
  LockId create_lock(net::NodeId manager);

  /// Acquires the lock: request -> manager -> owner -> grant (up to three
  /// one-way messages). Use as: co_await rc.acquire(n, l).join();
  sim::Process acquire(net::NodeId n, LockId l);

  /// Records `count` pipelined shared writes by the holder; their
  /// propagation cost is charged at release time.
  void write_shared(net::NodeId n, LockId l, std::uint32_t count = 1);

  /// Releases the lock. The release completes — and the next waiter can be
  /// granted — only after the holder's updates reach all sharers
  /// (Fig. 1c: "lock release to CPU3 is blocked until the updates reach
  /// all nodes"). Returns a Process so callers can await the completion.
  sim::Process release(net::NodeId n, LockId l);

  [[nodiscard]] net::NodeId holder(LockId l) const;

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t forwards = 0;  ///< manager-to-owner forwarding messages
    std::uint64_t releases = 0;
    std::uint64_t update_packets = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Waiter {
    net::NodeId node;
    std::function<void()> grant;
  };
  struct Lock {
    net::NodeId manager = 0;
    net::NodeId owner = 0;       ///< last grantee (where the token lives)
    net::NodeId holder = kNone;  ///< kNone when free
    std::uint32_t dirty_updates = 0;
    std::deque<Waiter> queue;
  };
  static constexpr net::NodeId kNone = ~net::NodeId{0};

  void grant_next(LockId l, net::NodeId from);
  Lock& lock(LockId l);

  net::Network* net_;
  std::vector<net::NodeId> sharers_;
  Config cfg_;
  std::vector<Lock> locks_;
  Stats stats_;
};

}  // namespace optsync::consistency
