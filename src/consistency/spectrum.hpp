// The §1.2 consistency-model spectrum as a write-cost model.
//
// "Consistency models place specific requirements on the order in which
// shared memory accesses from one processor may be observed by other
// processors." The paper surveys sequential consistency ("inefficient even
// for two processors"), processor consistency, total store ordering ("its
// use of a centralized memory write arbitrator is not viable for large
// distributed memories"), partial store ordering, weak/release consistency,
// and group write consistency, whose root sequencing removes per-write
// stalls entirely.
//
// This module quantifies that survey: for a burst of W shared writes per
// processor followed by a synchronization point, it simulates what each
// model makes the *issuing processor wait for*:
//
//   kSequential     — every write is a globally-acknowledged round trip
//                     before the next instruction;
//   kProcessor      — writes enter a FIFO store buffer (reads bypass); the
//                     processor stalls only when the buffer is full, and
//                     drains it at the sync point;
//   kTotalStore     — like kProcessor, but every write is serialized
//                     through ONE global arbitrator node whose service
//                     queue all processors share;
//   kPartialStore   — like kProcessor with a deeper buffer (order enforced
//                     only at explicit markers == our sync point);
//   kWeakRelease    — writes are pipelined freely; the sync point blocks
//                     until all of this processor's writes are acked
//                     everywhere;
//   kGroupWrite     — writes stream to the group root (never stall); the
//                     sync point is free because ordering, not completion,
//                     is what GWC guarantees (synchronization rides the
//                     same sequenced stream).
#pragma once

#include <cstdint>
#include <string>

#include "net/topology.hpp"
#include "simkern/time.hpp"

namespace optsync::consistency {

enum class Model {
  kSequential,
  kProcessor,
  kTotalStore,
  kPartialStore,
  kWeakRelease,
  kGroupWrite,
};

std::string model_name(Model m);

struct SpectrumParams {
  std::size_t nodes = 16;
  std::uint32_t writes_per_node = 64;
  /// Local computation between consecutive writes.
  sim::Duration gap_ns = 200;
  std::uint32_t update_bytes = 16;
  /// Store-buffer depth for kProcessor (kPartialStore uses 4x this).
  std::uint32_t store_buffer = 4;
  /// Arbitrator service time per write for kTotalStore.
  sim::Duration arbitrator_service_ns = 100;
  net::NodeId hub = 0;  ///< arbitrator / group root / directory location
};

struct SpectrumResult {
  /// Time until every processor has passed its sync point.
  sim::Time elapsed = 0;
  /// Mean per-write stall experienced by the issuing processors.
  double avg_write_stall_ns = 0;
  /// Mean time spent blocked at the sync point.
  double avg_sync_stall_ns = 0;
  std::uint64_t messages = 0;
};

/// Runs the write-burst benchmark under `model` on `topo`.
SpectrumResult run_spectrum(Model model, const SpectrumParams& params,
                            const net::Topology& topo);

}  // namespace optsync::consistency
