// Entry consistency baseline (Midway-style, paper [2] and §3/Fig. 1b).
//
// Data is associated with a guard lock and moves with it: the grant message
// carries the guarded data, exclusive-mode entry invalidates non-exclusive
// copies, releases are purely local, and data NOT covered by a held guard is
// demand-fetched. Per the paper's §3.1 we model the "fast version of entry
// consistency, which is assumed always to know the lock owner, so no time is
// ever lost in relaying requests to find the lock owner".
//
// The engine is a timed centralized model of the distributed protocol: it
// charges every message the real pattern would send (requests, invalidations
// and their acks, data+grant transfers, demand-fetch round trips) but keeps
// its bookkeeping in one place. The GWC substrate, by contrast, is fully
// distributed — that asymmetry only favors the baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "simkern/coro.hpp"

namespace optsync::consistency {

class EntryEngine {
 public:
  using LockId = std::uint32_t;

  struct Config {
    std::uint32_t ctrl_bytes = 16;     ///< request/grant/invalidation size
    sim::Duration local_op_ns = 50;    ///< local lock bookkeeping cost
    bool cache_reads = false;  ///< non-exclusive reads stay valid until the
                               ///< next exclusive transfer (vs. refetching)
    /// Remote requests route through a fixed manager node that tracks the
    /// owner (the distributed-directory scheme of [5]) instead of going
    /// straight to the owner ("fast version", §3.1). Costs one extra
    /// manager-to-owner leg per remote acquire.
    bool route_via_manager = false;
    net::NodeId manager = 0;
  };

  EntryEngine(net::Network& net, Config cfg);
  explicit EntryEngine(net::Network& net) : EntryEngine(net, Config{}) {}
  EntryEngine(const EntryEngine&) = delete;
  EntryEngine& operator=(const EntryEngine&) = delete;

  /// Creates a guard lock whose data section is `data_bytes` long.
  LockId create_lock(net::NodeId initial_owner, std::uint32_t data_bytes);

  /// Acquires in exclusive mode; completes when data+grant arrive.
  /// Use as: co_await ec.acquire(n, l).join();
  sim::Process acquire(net::NodeId n, LockId l);

  /// Local release; triggers the transfer to the next queued waiter.
  void release(net::NodeId n, LockId l);

  /// Reads guarded data in non-exclusive mode: a demand-fetch round trip to
  /// the owner (unless cached), registering `n` for invalidation.
  /// `value_bytes` is the payload returned (8 = one word).
  sim::Process read_nonexclusive(net::NodeId n, LockId l,
                                 std::uint32_t value_bytes = 8);

  [[nodiscard]] net::NodeId owner(LockId l) const;
  [[nodiscard]] bool busy(LockId l) const;

  /// Notified when an invalidation arrives at node `n` — a non-exclusive
  /// reader's cue that the guarded data changed and must be refetched.
  sim::Signal& invalidation_signal(net::NodeId n);

  /// Registers `n` as holding the guarded data in non-exclusive mode
  /// without charging a fetch — scenario setup only.
  void add_reader(LockId l, net::NodeId n);

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t local_grants = 0;   ///< owner re-acquired without transfer
    std::uint64_t transfers = 0;      ///< ownership moves (data shipped)
    std::uint64_t invalidations = 0;  ///< invalidation rounds
    std::uint64_t demand_fetches = 0;
    std::uint64_t cached_reads = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Waiter {
    net::NodeId node;
    std::function<void()> grant;
  };
  struct Lock {
    net::NodeId owner = 0;
    std::uint32_t data_bytes = 0;
    bool busy = false;
    bool transferring = false;
    std::deque<Waiter> queue;
    std::unordered_set<net::NodeId> readers;
    std::size_t pending_acks = 0;
  };

  /// Starts the next ownership transfer if one is due.
  void pump(LockId l);
  void start_transfer(LockId l);
  void send_data_grant(LockId l, net::NodeId from);
  Lock& lock(LockId l);

  net::Network* net_;
  Config cfg_;
  std::vector<Lock> locks_;
  std::unordered_map<net::NodeId, std::unique_ptr<sim::Signal>> inval_signals_;
  Stats stats_;
};

}  // namespace optsync::consistency
