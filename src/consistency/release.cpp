#include "consistency/release.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::consistency {

ReleaseEngine::ReleaseEngine(net::Network& net,
                             std::vector<net::NodeId> sharers, Config cfg)
    : net_(&net), sharers_(std::move(sharers)), cfg_(cfg) {
  OPTSYNC_EXPECT(!sharers_.empty());
}

ReleaseEngine::LockId ReleaseEngine::create_lock(net::NodeId manager) {
  OPTSYNC_EXPECT(manager < net_->topology().size());
  const auto id = static_cast<LockId>(locks_.size());
  Lock lk;
  lk.manager = manager;
  lk.owner = manager;
  locks_.push_back(std::move(lk));
  return id;
}

ReleaseEngine::Lock& ReleaseEngine::lock(LockId l) {
  OPTSYNC_EXPECT(l < locks_.size());
  return locks_[l];
}

net::NodeId ReleaseEngine::holder(LockId l) const {
  OPTSYNC_EXPECT(l < locks_.size());
  return locks_[l].holder;
}

sim::Process ReleaseEngine::acquire(net::NodeId n, LockId l) {
  auto& sched = net_->scheduler();
  Lock& L = lock(l);
  ++stats_.acquisitions;

  bool granted = false;
  sim::Signal wake(sched);
  auto notify = [&granted, &wake] {
    granted = true;
    wake.notify_all();
  };

  // Request travels to the manager, which forwards it to the token's
  // current location; the grant (or the queueing) happens there.
  net_->send(n, L.manager, cfg_.ctrl_bytes, "rc-req", [this, l, n,
                                                       notify]() mutable {
    Lock& lk = lock(l);
    const net::NodeId at = lk.owner;
    ++stats_.forwards;
    net_->send(lk.manager, at, cfg_.ctrl_bytes, "rc-fwd",
               [this, l, n, notify]() mutable {
                 Lock& k = lock(l);
                 if (k.holder == kNone && k.queue.empty()) {
                   // Free: grant travels from the token holder to n.
                   k.holder = n;  // reserve
                   net_->send(k.owner, n, cfg_.ctrl_bytes, "rc-grant",
                              [this, l, n, notify]() mutable {
                                Lock& kk = lock(l);
                                kk.owner = n;
                                notify();
                              });
                 } else {
                   k.queue.push_back(Waiter{n, std::move(notify)});
                 }
               });
  });

  while (!granted) co_await wake.wait();
  co_await sim::delay(sched, cfg_.local_op_ns);
}

void ReleaseEngine::write_shared(net::NodeId n, LockId l,
                                 std::uint32_t count) {
  Lock& L = lock(l);
  OPTSYNC_EXPECT(L.holder == n);
  L.dirty_updates += count;
  stats_.update_packets +=
      count * static_cast<std::uint64_t>(sharers_.size() - 1);
}

sim::Process ReleaseEngine::release(net::NodeId n, LockId l) {
  auto& sched = net_->scheduler();
  Lock& L = lock(l);
  OPTSYNC_EXPECT(L.holder == n);
  ++stats_.releases;

  // The holder's pipelined updates must reach every sharer — and be
  // acknowledged — before the release takes effect. Updates to distinct
  // nodes travel in parallel; packets to the same node serialize on the
  // outgoing link; the slowest ack closes the release.
  if (L.dirty_updates > 0) {
    sim::Duration flush = 0;
    for (const net::NodeId m : sharers_) {
      if (m == n) continue;
      const sim::Duration serialize =
          static_cast<sim::Duration>(L.dirty_updates) *
          net_->link().ns_per_byte * cfg_.update_bytes;
      const sim::Duration ack = net_->latency(m, n, cfg_.ctrl_bytes);
      flush = std::max(flush, serialize + net_->latency(n, m, 0) + ack);
    }
    L.dirty_updates = 0;
    co_await sim::delay(sched, flush);
  }

  L.holder = kNone;
  grant_next(l, n);
}

void ReleaseEngine::grant_next(LockId l, net::NodeId from) {
  Lock& L = lock(l);
  if (L.queue.empty()) return;
  Waiter w = std::move(L.queue.front());
  L.queue.pop_front();
  L.holder = w.node;  // reserve
  net_->send(from, w.node, cfg_.ctrl_bytes, "rc-grant",
             [this, l, w = std::move(w)]() mutable {
               Lock& k = lock(l);
               k.owner = w.node;
               w.grant();
             });
}

}  // namespace optsync::consistency
