#include "dsm/node.hpp"

#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/log.hpp"
#include "trace/recorder.hpp"

namespace optsync::dsm {

DsmNode::DsmNode(DsmSystem& sys, NodeId id)
    : sys_(&sys), id_(id), hw_blocking_(sys.config().hardware_blocking) {}

void DsmNode::ensure_capacity(VarId v) {
  if (v >= memory_.size()) memory_.resize(v + 1, 0);
}

Word DsmNode::read(VarId v) const {
  OPTSYNC_EXPECT(v < sys_->var_count());
  return v < memory_.size() ? memory_[v] : 0;
}

void DsmNode::write(VarId v, Word value) {
  OPTSYNC_EXPECT(v < sys_->var_count());
  ensure_capacity(v);
  memory_[v] = value;
  ++stats_.local_writes;
  sys_->share_out(id_, v, value);
  if (auto* sig = signal_if_any(v)) sig->notify_all();
}

Word DsmNode::atomic_exchange(VarId v, Word value) {
  OPTSYNC_EXPECT(v < sys_->var_count());
  ensure_capacity(v);
  const Word old = memory_[v];
  // The swap and the outgoing request are one indivisible step: no sequenced
  // update can be applied in between because apply() only runs from
  // scheduler events, never inside this call.
  memory_[v] = value;
  ++stats_.local_writes;
  sys_->share_out(id_, v, value);
  if (auto* sig = signal_if_any(v)) sig->notify_all();
  return old;
}

void DsmNode::poke(VarId v, Word value) {
  OPTSYNC_EXPECT(v < sys_->var_count());
  ensure_capacity(v);
  memory_[v] = value;
}

void DsmNode::enter_mutex_section() {
  if (in_mutex_section_) {
    throw ContractViolation(
        "cannot safely nest mutex lock requests (node " +
        std::to_string(id_) + " is already inside a critical section)");
  }
  in_mutex_section_ = true;
}

void DsmNode::exit_mutex_section() {
  OPTSYNC_ENSURE(in_mutex_section_);
  in_mutex_section_ = false;
}

void DsmNode::suspend_insharing() { suspended_ = true; }

void DsmNode::resume_insharing() {
  suspended_ = false;
  if (draining_) return;  // already inside a drain higher up the stack
  draining_ = true;
  while (!suspended_ && !inbox_.empty()) {
    const Pending p = inbox_.take_front();
    apply(p);
  }
  draining_ = false;
}

void DsmNode::arm_interrupt(VarId v, InterruptHandler handler) {
  OPTSYNC_EXPECT(handler != nullptr);
  if (v >= interrupt_idx_.size()) {
    interrupt_idx_.resize(v + 1, kNoInterrupt);
  }
  std::uint32_t& idx = interrupt_idx_[v];
  if (idx != kNoInterrupt) {
    interrupt_handlers_[idx] = std::move(handler);
    return;
  }
  if (!interrupt_free_.empty()) {
    idx = interrupt_free_.back();
    interrupt_free_.pop_back();
    interrupt_handlers_[idx] = std::move(handler);
  } else {
    idx = static_cast<std::uint32_t>(interrupt_handlers_.size());
    interrupt_handlers_.push_back(std::move(handler));
  }
}

void DsmNode::disarm_interrupt(VarId v) {
  if (v >= interrupt_idx_.size()) return;
  std::uint32_t& idx = interrupt_idx_[v];
  if (idx == kNoInterrupt) return;
  interrupt_handlers_[idx] = nullptr;
  interrupt_free_.push_back(idx);
  idx = kNoInterrupt;
}

bool DsmNode::interrupt_armed(VarId v) const {
  return v < interrupt_idx_.size() && interrupt_idx_[v] != kNoInterrupt;
}

sim::Signal& DsmNode::on_change(VarId v) {
  if (v >= signals_.size()) signals_.resize(v + 1);
  auto& slot = signals_[v];
  if (!slot) slot = std::make_unique<sim::Signal>(sys_->scheduler());
  return *slot;
}

void DsmNode::deliver(GroupId g, std::uint64_t seq, VarId v, Word value,
                      NodeId origin) {
  if (g >= inorder_.size()) inorder_.resize(g + 1);
  GroupInorder& io = inorder_[g];
  if (seq != io.next) {
    if (seq < io.next) {
      // Already delivered on the other flow (cross-flow race around a root
      // migration); a second application would violate GWC, drop it.
      ++stats_.stale_drops;
      return;
    }
    // Early: a later flow overtook an in-flight pre-cut frame. Park until
    // the gap closes; release below is in strict sequence order.
    io.held.emplace(seq, Pending{g, seq, v, value, origin});
    ++stats_.held_out_of_order;
    return;
  }
  accept(Pending{g, seq, v, value, origin});
  ++io.next;
  while (!io.held.empty() && io.held.begin()->first == io.next) {
    const Pending p = io.held.begin()->second;
    io.held.erase(io.held.begin());
    accept(p);
    ++io.next;
  }
}

void DsmNode::accept(const Pending& p) {
  if (suspended_) {
    inbox_.push_back(p);
    ++stats_.queued_while_suspended;
    return;
  }
  apply(p);
}

void DsmNode::deliver_frame(GroupId g, const Frame& frame) {
  for (const SequencedWrite& w : frame.writes) {
    deliver(g, w.seq, w.var, w.value, w.origin);
  }
}

void DsmNode::apply(const Pending& p) {
  // Hardware blocking (Fig. 6): drop root echoes of this node's own writes
  // to mutex-protected data so a late echo can never overwrite values
  // restored by a rollback. Lock variables are never dropped.
  const VarInfo& info = sys_->var(p.var);
  if (hw_blocking_ && p.origin == id_ && info.kind == VarKind::kMutexData) {
    ++stats_.echoes_dropped;
    if (auto* rec = sys_->recorder()) {
      trace::Event e;
      e.t = sys_->scheduler().now();
      e.kind = trace::EventKind::kEchoDrop;
      e.node = id_;
      e.group = p.group;
      e.var = p.var;
      e.seq = p.seq;
      e.value = p.value;
      e.origin = p.origin;
      e.label = var_kind_name(info.kind);
      rec->record(e);
    }
    return;
  }

  // GWC delivery invariant: root sequence numbers apply in increasing order.
  if (p.group >= last_seq_.size()) last_seq_.resize(p.group + 1, 0);
  auto& last = last_seq_[p.group];
  OPTSYNC_ENSURE(p.seq > last);
  last = p.seq;

  ensure_capacity(p.var);
  memory_[p.var] = p.value;
  ++stats_.updates_applied;
  if (auto* rec = sys_->recorder()) {
    trace::Event e;
    e.t = sys_->scheduler().now();
    e.kind = trace::EventKind::kNodeApply;
    e.node = id_;
    e.group = p.group;
    e.var = p.var;
    e.seq = p.seq;
    e.value = p.value;
    e.origin = p.origin;
    e.label = var_kind_name(info.kind);
    rec->record(e);
  }
  if (log_applied_) {
    applied_[p.group].push_back(
        AppliedUpdate{p.seq, p.var, p.value, p.origin});
  }

  const std::uint32_t iidx =
      p.var < interrupt_idx_.size() ? interrupt_idx_[p.var] : kNoInterrupt;
  if (iidx != kNoInterrupt) {
    // Atomic interrupt + insharing suspension (Fig. 5): later packets queue
    // until the interrupt logic resumes insharing.
    suspended_ = true;
    ++stats_.interrupts;
    // Copy the handler: it may disarm itself while running.
    auto handler = interrupt_handlers_[iidx];
    if (auto* sig = signal_if_any(p.var)) sig->notify_all();
    handler(p.var, p.value, p.origin);
    return;
  }
  if (auto* sig = signal_if_any(p.var)) sig->notify_all();
}

const std::vector<DsmNode::AppliedUpdate>& DsmNode::applied_log(
    GroupId g) const {
  static const std::vector<AppliedUpdate> kEmpty;
  const auto it = applied_.find(g);
  return it == applied_.end() ? kEmpty : it->second;
}

}  // namespace optsync::dsm
