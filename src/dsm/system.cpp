#include "dsm/system.hpp"

#include "simkern/assert.hpp"
#include "telemetry/tracer.hpp"
#include "trace/recorder.hpp"

namespace optsync::dsm {

DsmSystem::DsmSystem(sim::Scheduler& sched, const net::Topology& topo,
                     DsmConfig config)
    : sched_(&sched),
      topo_(&topo),
      config_(config),
      net_(sched, topo, config.link),
      rel_(net_, config.reliable),
      jitter_rng_(config.jitter_seed) {
  // Faults imply the reliable layer: a lossy fiber without retransmission
  // cannot uphold GWC, and the delivery assertions in DsmNode would (and
  // should) fire.
  reliable_on_ = config_.reliable.enabled || !config_.faults.empty();
  if (!config_.faults.empty()) {
    injector_.emplace(net_, config_.faults);
  }
  if (config_.recorder != nullptr) {
    // Tap every network delivery (and reliable-channel outcome: expiry,
    // revival, dedup all flow through emit_trace) into the recorder. An
    // observer, not the primary hook, so tests' own hooks coexist.
    net_.add_trace_observer([rec = config_.recorder](
                                const net::MessageTrace& t) {
      trace::Event e;
      e.t = t.delivered_at;
      e.kind = trace::EventKind::kNetDeliver;
      e.node = t.dst;
      e.origin = t.src;
      e.value = static_cast<std::int64_t>(t.bytes);
      e.seq = static_cast<std::uint64_t>(t.kind);  // DeliveryKind ordinal
      e.label = t.tag;
      rec->record(e);
    });
  }
  nodes_.reserve(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) {
    nodes_.push_back(std::make_unique<DsmNode>(*this, i));
  }
}

GroupId DsmSystem::create_group(std::vector<NodeId> members, NodeId root) {
  for (const NodeId m : members) OPTSYNC_EXPECT(m < nodes_.size());
  const auto gid = static_cast<GroupId>(groups_.size());
  groups_.push_back(
      std::make_unique<Group>(gid, *topo_, std::move(members), root));
  roots_.push_back(std::make_unique<GroupRoot>(*this, gid));
  return gid;
}

VarId DsmSystem::define_data(std::string name, GroupId g, Word init,
                             std::uint32_t wire_bytes) {
  OPTSYNC_EXPECT(g < groups_.size());
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(
      VarInfo{std::move(name), g, VarKind::kData, kNoVar, wire_bytes});
  initialize(v, init);
  return v;
}

VarId DsmSystem::define_lock(std::string name, GroupId g) {
  OPTSYNC_EXPECT(g < groups_.size());
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(VarInfo{std::move(name), g, VarKind::kLock, kNoVar, 0});
  initialize(v, kLockFree);
  return v;
}

VarId DsmSystem::define_mutex_data(std::string name, GroupId g, VarId lock,
                                   Word init) {
  OPTSYNC_EXPECT(g < groups_.size());
  OPTSYNC_EXPECT(lock < vars_.size());
  OPTSYNC_EXPECT(vars_[lock].kind == VarKind::kLock);
  OPTSYNC_EXPECT(vars_[lock].group == g);
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(VarInfo{std::move(name), g, VarKind::kMutexData, lock, 0});
  initialize(v, init);
  return v;
}

void DsmSystem::initialize(VarId v, Word value) {
  OPTSYNC_EXPECT(v < vars_.size());
  for (const NodeId m : group(vars_[v].group).members()) {
    nodes_[m]->poke(v, value);
  }
}

void DsmSystem::reroot_group(GroupId g, NodeId new_root) {
  OPTSYNC_EXPECT(g < groups_.size());
  OPTSYNC_EXPECT(new_root < nodes_.size());
  groups_[g]->reroot(new_root);
}

sim::Time DsmSystem::group_clear_at(GroupId g) const {
  return g < group_wire_clear_.size() ? group_wire_clear_[g] : 0;
}

DsmNode& DsmSystem::node(NodeId n) {
  OPTSYNC_EXPECT(n < nodes_.size());
  return *nodes_[n];
}

const DsmNode& DsmSystem::node(NodeId n) const {
  OPTSYNC_EXPECT(n < nodes_.size());
  return *nodes_[n];
}

const Group& DsmSystem::group(GroupId g) const {
  OPTSYNC_EXPECT(g < groups_.size());
  return *groups_[g];
}

GroupRoot& DsmSystem::root_of(GroupId g) {
  OPTSYNC_EXPECT(g < roots_.size());
  return *roots_[g];
}

const VarInfo& DsmSystem::var(VarId v) const {
  OPTSYNC_EXPECT(v < vars_.size());
  return vars_[v];
}

std::uint32_t DsmSystem::bytes_for(VarId v) const {
  const VarInfo& info = vars_[v];
  if (info.kind == VarKind::kLock) return config_.lock_bytes;
  return info.wire_bytes != 0 ? info.wire_bytes : config_.update_bytes;
}

void DsmSystem::transport_send(NodeId src, NodeId dst, unsigned hops,
                               std::uint32_t bytes, std::string_view tag,
                               net::DeliveryFn on_delivery) {
  if (reliable_on_) {
    rel_.send(src, dst, hops, bytes, tag, std::move(on_delivery));
  } else {
    net_.send_hops(src, dst, hops, bytes, tag, std::move(on_delivery));
  }
}

void DsmSystem::send_direct(NodeId src, NodeId dst, std::uint32_t bytes,
                            std::string_view tag,
                            net::DeliveryFn on_delivery) {
  OPTSYNC_EXPECT(src < nodes_.size() && dst < nodes_.size());
  transport_send(src, dst, topo_->hop_count(src, dst), bytes, tag,
                 std::move(on_delivery));
}

void DsmSystem::share_out(NodeId origin, VarId v, Word value) {
  const VarInfo& info = vars_[v];
  const Group& grp = group(info.group);
  OPTSYNC_EXPECT(grp.contains(origin));
  const NodeId root = grp.root();
  const char* tag = info.kind == VarKind::kLock ? "lock-up" : "data-up";
  // Only lock traffic carries causal context: a traced op completes on its
  // local release write, so data-write flight time is never on the op's
  // critical path — but the request/release reaching the root is.
  telemetry::SpanContext ctx{};
  sim::Time sent = 0;
  sim::Duration base = 0;
  if (auto* trc = tracer(); trc != nullptr && info.kind == VarKind::kLock) {
    ctx = trc->node_ctx(origin);
    sent = sched_->now();
    base = net_.latency_hops(grp.up_hops(origin), bytes_for(v));
  }
  transport_send(
      origin, root, grp.up_hops(origin), bytes_for(v), tag,
      [this, g = info.group, origin, v, value, ctx, sent, base] {
        if (auto* trc = tracer(); trc != nullptr && ctx.valid()) {
          // Split flight time into the fault-free base (kWireUp) and
          // whatever retransmission/backoff added on top (kRetransmit).
          const sim::Time now = sched_->now();
          const sim::Time base_end = std::min(sent + base, now);
          trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kWireUp,
                           origin, sent, base_end);
          if (now > base_end) {
            trc->record_span(ctx.trace, ctx.span,
                             telemetry::SpanKind::kRetransmit, origin,
                             base_end, now);
          }
        }
        roots_[g]->on_arrival(origin, v, value, ctx);
      });
}

void DsmSystem::multicast_frame(GroupId g, Frame& frame) {
  OPTSYNC_EXPECT(!frame.writes.empty());
  const Group& grp = group(g);
  const NodeId root = grp.root();
  // A frame carrying any lock word travels as lock traffic (a grant rides
  // with the previous holder's data); pure data frames stay "data-down".
  // At coalesce_max_writes == 1 this reproduces the per-write tags exactly.
  bool has_lock = false;
  std::uint64_t sum_bytes = 0;
  for (const SequencedWrite& w : frame.writes) {
    sum_bytes += bytes_for(w.var);
    if (vars_[w.var].kind == VarKind::kLock) has_lock = true;
  }
  const char* tag = has_lock ? "lock-down" : "data-down";
  const std::uint32_t bytes = frame_wire_bytes(sum_bytes, frame.writes.size(),
                                               config_.frame_header_bytes);
  sim::Duration proc = config_.root_process_ns;
  if (config_.root_jitter_ns > 0) {
    // Congestion injection: one draw per frame (every member's copy of this
    // frame is delayed identically).
    proc += jitter_rng_.below(config_.root_jitter_ns);
  }
  // The root dispatches frames as a serial server: dispatch times are
  // monotone per group, so per-member delivery stays FIFO (the GWC
  // guarantee) even under jittered processing times.
  if (group_busy_until_.size() <= g) group_busy_until_.resize(g + 1, 0);
  if (group_wire_clear_.size() <= g) group_wire_clear_.resize(g + 1, 0);
  sim::Time dispatch = std::max(sched_->now(), group_busy_until_[g]) + proc;
  // Frames vary in size, and a message's flight time grows with its size:
  // a small frame injected right behind a large one could arrive first and
  // violate per-member FIFO. Hold the injection until the previous frame
  // has cleared the root's serializer — with equal-size messages (any
  // coalesce_max_writes == 1 run over uniform update_bytes) the clamp never
  // binds and dispatch times are identical to the unbatched model.
  const sim::Duration serialize =
      static_cast<sim::Duration>(bytes) * config_.link.ns_per_byte;
  if (dispatch + serialize < group_wire_clear_[g]) {
    dispatch = group_wire_clear_[g] - serialize;
  }
  group_busy_until_[g] = dispatch;
  group_wire_clear_[g] = dispatch + serialize;
  const bool traced = tracer() != nullptr;
  if (traced) {
    // Sequencing/serial-dispatch wait at the root: flush -> injection.
    const sim::Time now = sched_->now();
    for (const SequencedWrite& w : frame.writes) {
      if (w.ctx.valid() && dispatch > now) {
        tracer()->record_span(w.ctx.trace, w.ctx.span,
                              telemetry::SpanKind::kRootDispatch, root, now,
                              dispatch);
      }
    }
  }
  // Every member's copy shares one immutable pooled payload; the caller's
  // vector is swapped out and replaced with a recycled (empty, warm) one.
  FramePayload* raw = frame_pool_.acquire();
  raw->pool = &frame_pool_;
  raw->frame.writes.swap(frame.writes);
  // Deliberately non-const: a const capture would make the delivery
  // closures' moves copy the ref (refcount churn on every enqueue).
  FrameRef payload(raw);
  if (reliable_on_ || net_.fault_hook_installed()) {
    // Lossy/reliable transport needs a real per-member message (its own
    // retransmit timer, its own fault draw), so the fan-out stays one
    // transport_send per member, launched from one injection event at the
    // dispatch instant.
    sched_->at(dispatch, [this, g, root, bytes, tag, payload, dispatch,
                          traced] {
      const Group& grp = group(g);
      for (const NodeId m : grp.members()) {
        sim::Duration base = 0;
        if (traced) base = net_.latency_hops(grp.down_hops(m), bytes);
        transport_send(root, m, grp.down_hops(m), bytes, tag,
                       [this, m, g, payload, dispatch, base] {
                         if (auto* trc = tracer()) {
                           record_down_spans(*trc, *payload, m, dispatch, base);
                         }
                         nodes_[m]->deliver_frame(g, *payload);
                       });
      }
    });
    return;
  }
  // Fault-free fast path: every member at the same tree depth receives its
  // copy at the same instant (delay is a pure function of hops and bytes),
  // so the fan-out schedules ONE delivery event per hop-class, not one per
  // member. A 1024-member group in flight holds ~33 pending events instead
  // of 1024 — the scheduler heap stays shallow no matter the fan-out — and
  // the member loop inside the event touches node state in ascending-id
  // order, which the per-member interleaving never did. Per-member message
  // accounting and trace records are preserved; deliveries within a class
  // run in member order, exactly the order the per-member path produced for
  // same-time copies.
  for (const Group::HopClass& hc : grp.down_classes()) {
    const sim::Duration fly = net_.latency_hops(hc.hops, bytes);
    net_.account_sends(hc.members.size(), hc.hops, bytes);
    sched_->at(
        dispatch + fly,
        [this, g, root, bytes, payload, dispatch, fly, traced,
         tag = std::string_view(tag), members = &hc.members] {
          const bool observed = net_.observing();
          for (const NodeId m : *members) {
            if (observed) {
              net_.emit_trace(net::MessageTrace{dispatch, sched_->now(), root,
                                                m, bytes, tag,
                                                net::DeliveryKind::kNormal});
            }
            if (traced) {
              if (auto* trc = tracer()) {
                record_down_spans(*trc, *payload, m, dispatch, fly);
              }
            }
            nodes_[m]->deliver_frame(g, *payload);
          }
        });
  }
}

void DsmSystem::record_down_spans(telemetry::Tracer& trc, const Frame& frame,
                                  NodeId m, sim::Time dispatch,
                                  sim::Duration base) {
  // The down leg matters only to the trace whose grant this frame carries
  // for member m: the waiter is unblocked when the grant lands.
  const sim::Time now = sched_->now();
  for (const SequencedWrite& w : frame.writes) {
    if (!w.ctx.valid()) continue;
    if (vars_[w.var].kind != VarKind::kLock) continue;
    if (!lock_granted_to(w.value, m)) continue;
    const sim::Time base_end = std::min(dispatch + base, now);
    trc.record_span(w.ctx.trace, w.ctx.span, telemetry::SpanKind::kWireDown, m,
                    dispatch, base_end);
    if (now > base_end) {
      trc.record_span(w.ctx.trace, w.ctx.span, telemetry::SpanKind::kRetransmit,
                      m, base_end, now);
    }
  }
}

}  // namespace optsync::dsm
