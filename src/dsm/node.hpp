// The per-node Sesame sharing interface + local memory.
//
// Models the paper's memory-sharing hardware: writes to shared variables are
// applied locally without stalling the CPU and a copy is sent to the group
// root; sequenced updates arriving from the root are applied in order.
// Implements the two mechanisms optimistic synchronization needs:
//   * interrupt-with-insharing-suspension on lock-variable changes (Fig. 5),
//   * hardware blocking of self-echoed mutex data (Fig. 6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dsm/frame.hpp"
#include "dsm/types.hpp"
#include "simkern/coro.hpp"
#include "util/ring.hpp"

namespace optsync::dsm {

class DsmSystem;

class DsmNode {
 public:
  DsmNode(DsmSystem& sys, NodeId id);
  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Local read. Free of network cost — the point of eagersharing is that
  /// shared values are already in local memory when needed.
  [[nodiscard]] Word read(VarId v) const;

  /// Local write + eagershare: applies to local memory immediately (the CPU
  /// is not slowed) and ships the change to the group root for sequencing.
  void write(VarId v, Word value);

  /// Atomically swaps the local copy and issues the eagershare for the new
  /// value. Models Fig. 4 line 04: the swap and the request must be one
  /// operation lest a grant arriving in between be lost.
  Word atomic_exchange(VarId v, Word value);

  /// Direct local set with no sharing traffic; for initialization and tests.
  void poke(VarId v, Word value);

  // --- insharing control (Fig. 5) ------------------------------------
  /// Stops applying incoming sequenced updates; they queue in arrival order.
  void suspend_insharing();
  /// Resumes application; queued updates apply immediately, in order. If an
  /// interrupt fired during the drain suspends again, draining stops.
  void resume_insharing();
  [[nodiscard]] bool insharing_suspended() const { return suspended_; }

  // --- change interrupts ----------------------------------------------
  /// Handler invoked when a sequenced update to `v` arrives while armed.
  /// Invocation is atomically coupled with insharing suspension: the
  /// triggering value is applied, insharing is suspended, then the handler
  /// runs. The handler (or code it resumes) must call resume_insharing().
  using InterruptHandler = std::function<void(VarId, Word, NodeId origin)>;
  void arm_interrupt(VarId v, InterruptHandler handler);
  void disarm_interrupt(VarId v);
  [[nodiscard]] bool interrupt_armed(VarId v) const;

  /// Signal notified after any change to `v`'s local copy (local writes and
  /// applied root updates alike). Coroutines wait on it for lock grants.
  sim::Signal& on_change(VarId v);

  /// Per-node override of the Fig. 6 hardware blocking switch (defaults to
  /// the system config value).
  void set_hardware_blocking(bool enabled) { hw_blocking_ = enabled; }
  [[nodiscard]] bool hardware_blocking() const { return hw_blocking_; }

  // --- mutex-section occupancy ------------------------------------------
  /// A node models one instruction stream; overlapping critical sections on
  /// it — even under different locks — are the Fig. 4 nesting error.
  /// OptimisticMutex brackets executions with these.
  void enter_mutex_section();
  void exit_mutex_section();
  [[nodiscard]] bool in_mutex_section() const { return in_mutex_section_; }

  // --- substrate entry point -------------------------------------------
  /// A sequenced update from a group root arrives at this interface.
  void deliver(GroupId g, std::uint64_t seq, VarId v, Word value,
               NodeId origin);

  /// A whole multicast frame arrives: its writes are applied one by one in
  /// sequence order through deliver(), so an interrupt raised mid-frame
  /// (a lock grant riding with data) suspends insharing and queues the
  /// remainder of the frame exactly as it would queue later packets.
  void deliver_frame(GroupId g, const Frame& frame);

  struct Stats {
    std::uint64_t local_writes = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t echoes_dropped = 0;  ///< HW blocking drops (Fig. 6)
    std::uint64_t interrupts = 0;
    std::uint64_t queued_while_suspended = 0;
    std::uint64_t held_out_of_order = 0;  ///< parked by the delivery gate
    std::uint64_t stale_drops = 0;        ///< already-delivered seq discarded
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Sequence of root-ordered updates applied on this node for `g`
  /// (var, value, origin). Recorded for the GWC total-order property tests.
  struct AppliedUpdate {
    std::uint64_t seq;
    VarId var;
    Word value;
    NodeId origin;
  };
  [[nodiscard]] const std::vector<AppliedUpdate>& applied_log(GroupId g) const;
  void enable_applied_log(bool on) { log_applied_ = on; }

 private:
  friend class DsmSystem;

  struct Pending {
    GroupId group;
    std::uint64_t seq;
    VarId var;
    Word value;
    NodeId origin;
  };

  void accept(const Pending& p);
  void apply(const Pending& p);
  void ensure_capacity(VarId v);

  /// Per-group in-order delivery gate. GWC needs every member to apply a
  /// group's writes in sequence order; on a single root flow the transport
  /// already guarantees that (per-flow FIFO). An online root migration
  /// changes the flow mid-stream — old-root->member and new-root->member
  /// are different FIFO channels, and under faults a retransmitted pre-cut
  /// frame can land after a post-cut frame. The gate holds early arrivals
  /// until the gap closes, releasing them in sequence order, so the apply
  /// path (and GwcChecker) see one uninterrupted stream across the cut.
  struct GroupInorder {
    std::uint64_t next = 1;  ///< next expected delivery seq
    std::map<std::uint64_t, Pending> held;
  };

  /// The signal for `v` if one was ever requested, else nullptr. apply()
  /// notifies through this so vars nobody waits on never allocate a Signal
  /// (the hot path used to create one per written var).
  [[nodiscard]] sim::Signal* signal_if_any(VarId v) const {
    return v < signals_.size() ? signals_[v].get() : nullptr;
  }

  static constexpr std::uint32_t kNoInterrupt =
      std::numeric_limits<std::uint32_t>::max();

  DsmSystem* sys_;
  NodeId id_;
  std::vector<Word> memory_;
  bool suspended_ = false;
  bool draining_ = false;
  bool hw_blocking_ = true;
  bool in_mutex_section_ = false;
  util::Ring<Pending> inbox_;
  // Hot per-var/per-group state is indexed by the dense VarId/GroupId
  // directly (grown on demand) — the unordered_map hash+probe per applied
  // write was a measurable slice of the kernel's per-message cost. The
  // interrupt table is split: a 4-byte index per var into a small handler
  // vector, since only lock vars ever arm interrupts.
  std::vector<std::uint32_t> interrupt_idx_;  ///< kNoInterrupt = not armed
  std::vector<InterruptHandler> interrupt_handlers_;
  std::vector<std::uint32_t> interrupt_free_;
  std::vector<std::unique_ptr<sim::Signal>> signals_;
  std::vector<GroupInorder> inorder_;
  std::vector<std::uint64_t> last_seq_;
  std::unordered_map<GroupId, std::vector<AppliedUpdate>> applied_;
  bool log_applied_ = false;
  Stats stats_;
};

}  // namespace optsync::dsm
