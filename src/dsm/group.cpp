#include "dsm/group.hpp"

namespace optsync::dsm {

Group::Group(GroupId id, const net::Topology& topo,
             std::vector<NodeId> members, NodeId root)
    : id_(id), tree_(topo, std::move(members), root) {}

}  // namespace optsync::dsm
