#include "dsm/group.hpp"

#include <algorithm>

namespace optsync::dsm {

Group::Group(GroupId id, const net::Topology& topo,
             std::vector<NodeId> members, NodeId root)
    : id_(id), tree_(topo, std::move(members), root) {
  // Bucket members by tree depth. Buckets ascend by depth and keep member
  // order inside each bucket, so a bucketed multicast delivers same-time
  // copies in exactly the member order the per-member path used.
  unsigned max_hops = 0;
  for (const NodeId m : tree_.members()) {
    max_hops = std::max(max_hops, tree_.hops_to_root(m));
  }
  classes_.resize(static_cast<std::size_t>(max_hops) + 1);
  for (unsigned h = 0; h <= max_hops; ++h) classes_[h].hops = h;
  for (const NodeId m : tree_.members()) {
    classes_[tree_.hops_to_root(m)].members.push_back(m);
  }
  std::erase_if(classes_, [](const HopClass& c) { return c.members.empty(); });
}

}  // namespace optsync::dsm
