#include "dsm/group.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::dsm {

Group::Group(GroupId id, const net::Topology& topo,
             std::vector<NodeId> members, NodeId root)
    : id_(id), topo_(&topo), tree_(topo, std::move(members), root) {
  rebuild_classes();
}

void Group::rebuild_classes() {
  // Bucket members by tree depth. Buckets ascend by depth and keep member
  // order inside each bucket, so a bucketed multicast delivers same-time
  // copies in exactly the member order the per-member path used.
  classes_.clear();
  unsigned max_hops = 0;
  for (const NodeId m : tree_.members()) {
    max_hops = std::max(max_hops, tree_.hops_to_root(m));
  }
  classes_.resize(static_cast<std::size_t>(max_hops) + 1);
  for (unsigned h = 0; h <= max_hops; ++h) classes_[h].hops = h;
  for (const NodeId m : tree_.members()) {
    classes_[tree_.hops_to_root(m)].members.push_back(m);
  }
  std::erase_if(classes_, [](const HopClass& c) { return c.members.empty(); });
}

void Group::reroot(NodeId new_root) {
  OPTSYNC_EXPECT(tree_.contains(new_root));
  if (new_root == tree_.root()) return;
  tree_ = net::SpanningTree(*topo_, tree_.members(), new_root);
  rebuild_classes();
  ++reroots_;
}

}  // namespace optsync::dsm
