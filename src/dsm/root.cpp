#include "dsm/root.hpp"

#include <algorithm>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/log.hpp"
#include "telemetry/tracer.hpp"
#include "trace/recorder.hpp"

namespace optsync::dsm {

GroupRoot::GroupRoot(DsmSystem& sys, GroupId gid)
    : sys_(&sys),
      gid_(gid),
      coalesce_writes_(std::max(1u, sys.config().coalesce_max_writes)),
      coalesce_ns_(sys.config().coalesce_max_ns) {}

GroupRoot::LockEntry& GroupRoot::lock_entry(VarId v) {
  for (LockEntry& e : locks_) {
    if (e.var == v) return e;
  }
  locks_.emplace_back();
  locks_.back().var = v;
  return locks_.back();
}

const GroupRoot::LockState& GroupRoot::lock_state(VarId lock) const {
  static const LockState kIdle;
  for (const LockEntry& e : locks_) {
    if (e.var == lock) return e.state;
  }
  return kIdle;
}

void GroupRoot::set_coalesce(std::uint32_t max_writes, sim::Duration max_ns) {
  coalesce_writes_ = std::max(1u, max_writes);
  coalesce_ns_ = max_ns;
  // A shrunken cap applies to the open frame too: flush it if it is already
  // at or past the new size, so lowering the cap takes effect immediately.
  if (pending_.writes.size() >= coalesce_writes_) {
    flush_pending(/*timer_fired=*/false);
  }
}

void GroupRoot::on_arrival(NodeId origin, VarId v, Word value,
                           telemetry::SpanContext ctx) {
  const VarInfo& info = sys_->var(v);
  OPTSYNC_EXPECT(info.group == gid_);

  if (quiesced_) {
    // Root handoff in progress: nothing is admitted — not even lock words —
    // so the sequencer state frozen at begin_quiesce() is exactly what the
    // successor inherits. The write is parked and replayed, in arrival
    // order, by end_quiesce(). The log is bounded: a migration stuck long
    // enough to park this much traffic is a protocol bug, not load.
    constexpr std::size_t kHandoffLogCap = 65536;
    OPTSYNC_ENSURE(handoff_log_.size() < kHandoffLogCap);
    handoff_log_.push_back(HeldArrival{origin, v, value, ctx});
    ++mig_stats_.handoff_logged;
    mig_stats_.max_handoff_log =
        std::max(mig_stats_.max_handoff_log, handoff_log_.size());
    return;
  }

  switch (info.kind) {
    case VarKind::kLock:
      handle_lock_write(origin, v, value, ctx);
      return;

    case VarKind::kMutexData:
      if (sys_->config().root_filters_speculative) {
        const LockState& ls = lock_state(info.guard);
        if (ls.holder != origin) {
          // §4: "If the local CPU does not have the lock when the new
          // values reach the root, it will discard them."
          ++stats_.speculative_drops;
          sim::log_debug("root g", gid_, " drops speculative write of ",
                         info.name, "=", value, " from n", origin);
          if (auto* rec = sys_->recorder()) {
            trace::Event e;
            e.t = sys_->scheduler().now();
            e.kind = trace::EventKind::kRootDropSpec;
            e.node = sys_->group(gid_).root();
            e.group = gid_;
            e.var = v;
            e.value = value;
            e.origin = origin;
            e.label = var_kind_name(info.kind);
            rec->record(e);
          }
          return;
        }
      }
      multicast(v, value, origin);
      return;

    case VarKind::kData:
      multicast(v, value, origin);
      return;
  }
}

void GroupRoot::handle_lock_write(NodeId origin, VarId v, Word value,
                                  telemetry::SpanContext ctx) {
  LockEntry& entry = lock_entry(v);
  LockState& ls = entry.state;

  if (value == kLockFree) {
    // Release. The paper assumes correct bracketing; enforce it.
    OPTSYNC_EXPECT(ls.holder == origin);
    ++ls.releases;
    if (!ls.queue.empty()) {
      // "The root checks whether any nodes are queued awaiting exclusive
      // access. If so, the next queued number is written as the new lock
      // value" — the grant is appended right after the releaser's data.
      ls.holder = ls.queue.take_front();
      ++ls.queued_grants;
      telemetry::SpanContext grant_ctx{};
      if (!entry.meta.empty()) {
        const WaiterMeta waiter = entry.meta.take_front();
        grant_ctx = waiter.ctx;
        if (auto* trc = sys_->tracer(); trc != nullptr && grant_ctx.valid()) {
          // The queue-wait leg of the waiter's trace ends here: the grant
          // is being sequenced into the releaser's frame right now.
          trc->record_span(grant_ctx.trace, grant_ctx.span,
                           telemetry::SpanKind::kRootQueue,
                           sys_->group(gid_).root(), waiter.enqueued_at,
                           sys_->scheduler().now());
        }
      }
      multicast(v, lock_grant_value(ls.holder), sys_->group(gid_).root(),
                grant_ctx);
    } else {
      ls.holder = kNoNode;
      multicast(v, kLockFree, sys_->group(gid_).root(), ctx);
    }
    return;
  }

  OPTSYNC_EXPECT(value < 0);  // a request: -(id + 1)
  const NodeId requester = static_cast<NodeId>(-value - 1);
  OPTSYNC_EXPECT(requester == origin);
  OPTSYNC_EXPECT(ls.holder != requester);  // no nested acquisition (Fig. 4)
  ++ls.requests;
  if (ls.holder == kNoNode) {
    ls.holder = requester;
    ++ls.immediate_grants;
    multicast(v, lock_grant_value(requester), sys_->group(gid_).root(), ctx);
  } else {
    // Busy: queue the processor id; requests are consumed by the root and
    // never propagate to other members.
    ls.queue.push_back(requester);
    ls.max_queue_depth = std::max(ls.max_queue_depth, ls.queue.size());
    entry.meta.push_back(WaiterMeta{ctx, sys_->scheduler().now()});
  }
}

void GroupRoot::multicast(VarId v, Word value, NodeId origin,
                          telemetry::SpanContext ctx) {
  const std::uint64_t seq = next_seq_++;
  ++stats_.sequenced;
  if (auto* rec = sys_->recorder()) {
    trace::Event e;
    e.t = sys_->scheduler().now();
    e.kind = trace::EventKind::kRootSequence;
    e.node = sys_->group(gid_).root();
    e.group = gid_;
    e.var = v;
    e.seq = seq;
    e.value = value;
    e.origin = origin;
    e.label = var_kind_name(sys_->var(v).kind);
    rec->record(e);
  }

  // Coalescing: append into the open frame; ship when the size cap fills it
  // or the coalesce timer expires. Sequencing order IS frame order, so a
  // grant emitted right after a release (handle_lock_write) lands in the
  // same frame as the releasing holder's final data writes (§2). At
  // coalesce_max_writes == 1 the size cap fires on every write and this is
  // exactly the old ship-immediately path. The knobs are per-root members
  // (seeded from DsmConfig) so the adaptive controller can tune one shard
  // without touching its neighbours.
  pending_.writes.push_back(
      SequencedWrite{seq, v, value, origin, ctx, sys_->scheduler().now()});
  // Lock cut-through: a lock word is a grant or release on some waiter's
  // critical path, and parking it until the frame fills would serialize
  // every lock hand-off behind the batch (at cap 64 a hand-off could wait
  // for 63 more writes to arrive). Ship the frame the moment a lock word
  // lands: the grant still rides with the data writes sequenced before it
  // (§2), and only pure data traffic coalesces to full depth.
  if (pending_.writes.size() >= coalesce_writes_ ||
      sys_->var(v).kind == VarKind::kLock) {
    flush_pending(/*timer_fired=*/false);
    return;
  }
  if (flush_timer_ == 0) {
    flush_timer_ = sys_->scheduler().after(coalesce_ns_, [this] {
      flush_timer_ = 0;
      flush_pending(/*timer_fired=*/true);
    });
  }
}

void GroupRoot::flush() { flush_pending(/*timer_fired=*/false); }

void GroupRoot::begin_quiesce() {
  OPTSYNC_EXPECT(!quiesced_);
  // Ship the open frame from the outgoing root before the cut: the frame
  // carries everything already sequenced, so the successor starts with an
  // empty coalesce buffer and next_seq_ pointing one past the last shipped
  // write.
  flush_pending(/*timer_fired=*/false);
  quiesced_ = true;
  ++mig_stats_.quiesces;
}

void GroupRoot::end_quiesce() {
  OPTSYNC_EXPECT(quiesced_);
  quiesced_ = false;
  // Replay in arrival order. Replayed writes may themselves flush frames
  // (size cap, lock cut-through) — those multicasts now originate at the
  // new root. Swap the log out first: a replayed write cannot re-enter the
  // log (quiesced_ is false), but keep the loop robust anyway.
  std::vector<HeldArrival> log;
  log.swap(handoff_log_);
  for (const HeldArrival& h : log) {
    ++mig_stats_.handoff_replayed;
    on_arrival(h.origin, h.var, h.value, h.ctx);
  }
}

std::size_t GroupRoot::waiter_queue_depth() const {
  std::size_t depth = 0;
  for (const LockEntry& e : locks_) depth += e.state.queue.size();
  return depth;
}

void GroupRoot::flush_pending(bool timer_fired) {
  if (flush_timer_ != 0) {
    sys_->scheduler().cancel(flush_timer_);
    flush_timer_ = 0;
  }
  if (pending_.writes.empty()) return;
  ++stats_.frames;
  if (timer_fired) {
    ++stats_.timer_flushes;
  } else {
    ++stats_.size_flushes;
  }
  stats_.max_frame_writes =
      std::max(stats_.max_frame_writes, pending_.writes.size());
  if (auto* rec = sys_->recorder()) {
    trace::Event e;
    e.t = sys_->scheduler().now();
    e.kind = trace::EventKind::kFrameFlush;
    e.node = sys_->group(gid_).root();
    e.group = gid_;
    e.seq = pending_.first_seq();
    e.value = static_cast<std::int64_t>(pending_.writes.size());
    e.label = timer_fired ? "timer" : "size";
    rec->record(e);
  }
  if (auto* trc = sys_->tracer()) {
    // Close the coalesce leg of every traced write that sat in the open
    // frame: sequenced-at -> this flush.
    const sim::Time now = sys_->scheduler().now();
    for (const SequencedWrite& w : pending_.writes) {
      if (w.ctx.valid() && now > w.sequenced_at) {
        trc->record_span(w.ctx.trace, w.ctx.span,
                         telemetry::SpanKind::kCoalesce,
                         sys_->group(gid_).root(), w.sequenced_at, now);
      }
    }
  }
  // The observer sees the frame at its commit point, before the writes
  // vector is swapped out into the pooled payload below.
  if (observer_) observer_(pending_);
  // Hands the writes vector to the pooled payload and gets a recycled
  // (empty, warm-capacity) vector back — no allocation either way.
  sys_->multicast_frame(gid_, pending_);
}

}  // namespace optsync::dsm
