#include "dsm/root.hpp"

#include <algorithm>

#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/log.hpp"
#include "trace/recorder.hpp"

namespace optsync::dsm {

GroupRoot::GroupRoot(DsmSystem& sys, GroupId gid) : sys_(&sys), gid_(gid) {}

const GroupRoot::LockState& GroupRoot::lock_state(VarId lock) const {
  static const LockState kIdle;
  const auto it = locks_.find(lock);
  return it == locks_.end() ? kIdle : it->second;
}

void GroupRoot::on_arrival(NodeId origin, VarId v, Word value) {
  const VarInfo& info = sys_->var(v);
  OPTSYNC_EXPECT(info.group == gid_);

  switch (info.kind) {
    case VarKind::kLock:
      handle_lock_write(origin, v, value);
      return;

    case VarKind::kMutexData:
      if (sys_->config().root_filters_speculative) {
        const LockState& ls = lock_state(info.guard);
        if (ls.holder != origin) {
          // §4: "If the local CPU does not have the lock when the new
          // values reach the root, it will discard them."
          ++stats_.speculative_drops;
          sim::log_debug("root g", gid_, " drops speculative write of ",
                         info.name, "=", value, " from n", origin);
          if (auto* rec = sys_->recorder()) {
            trace::Event e;
            e.t = sys_->scheduler().now();
            e.kind = trace::EventKind::kRootDropSpec;
            e.node = sys_->group(gid_).root();
            e.group = gid_;
            e.var = v;
            e.value = value;
            e.origin = origin;
            e.label = var_kind_name(info.kind);
            rec->record(e);
          }
          return;
        }
      }
      multicast(v, value, origin);
      return;

    case VarKind::kData:
      multicast(v, value, origin);
      return;
  }
}

void GroupRoot::handle_lock_write(NodeId origin, VarId v, Word value) {
  LockState& ls = locks_[v];

  if (value == kLockFree) {
    // Release. The paper assumes correct bracketing; enforce it.
    OPTSYNC_EXPECT(ls.holder == origin);
    ++ls.releases;
    if (!ls.queue.empty()) {
      // "The root checks whether any nodes are queued awaiting exclusive
      // access. If so, the next queued number is written as the new lock
      // value" — the grant is appended right after the releaser's data.
      ls.holder = ls.queue.front();
      ls.queue.pop_front();
      ++ls.queued_grants;
      multicast(v, lock_grant_value(ls.holder), sys_->group(gid_).root());
    } else {
      ls.holder = kNoNode;
      multicast(v, kLockFree, sys_->group(gid_).root());
    }
    return;
  }

  OPTSYNC_EXPECT(value < 0);  // a request: -(id + 1)
  const NodeId requester = static_cast<NodeId>(-value - 1);
  OPTSYNC_EXPECT(requester == origin);
  OPTSYNC_EXPECT(ls.holder != requester);  // no nested acquisition (Fig. 4)
  ++ls.requests;
  if (ls.holder == kNoNode) {
    ls.holder = requester;
    ++ls.immediate_grants;
    multicast(v, lock_grant_value(requester), sys_->group(gid_).root());
  } else {
    // Busy: queue the processor id; requests are consumed by the root and
    // never propagate to other members.
    ls.queue.push_back(requester);
    ls.max_queue_depth = std::max(ls.max_queue_depth, ls.queue.size());
  }
}

void GroupRoot::multicast(VarId v, Word value, NodeId origin) {
  const std::uint64_t seq = next_seq_++;
  ++stats_.sequenced;
  if (auto* rec = sys_->recorder()) {
    trace::Event e;
    e.t = sys_->scheduler().now();
    e.kind = trace::EventKind::kRootSequence;
    e.node = sys_->group(gid_).root();
    e.group = gid_;
    e.var = v;
    e.seq = seq;
    e.value = value;
    e.origin = origin;
    e.label = var_kind_name(sys_->var(v).kind);
    rec->record(e);
  }
  sys_->multicast(gid_, seq, v, value, origin);
}

}  // namespace optsync::dsm
