// Multicast frames: the unit of root -> member shipping.
//
// The root sequences every eagershared write of its group; instead of paying
// one network message per sequenced write, it accumulates consecutive writes
// into a frame and multicasts the frame down the spanning tree. Writes keep
// their individual sequence numbers — framing changes packaging, never order
// — and a lock grant issued right after a holder's release rides in the same
// frame as that holder's final data writes (paper §2: "the next queued
// number is written as the new lock value" immediately after the releaser's
// updates).
//
// Wire-format model: each single-write message carries a per-message header
// of `header_bytes` inside its `bytes_for(var)` cost. Writes sharing a frame
// share one header, so an n-write frame costs
//
//     sum(bytes_for(var_i)) - (n - 1) * header_bytes
//
// floored at header_bytes + 4n (a 4-byte record stub per write can never be
// amortized away). A 1-write frame therefore costs exactly bytes_for(var) —
// the unbatched model is the n = 1 special case, byte for byte.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dsm/types.hpp"
#include "simkern/time.hpp"
#include "telemetry/span.hpp"
#include "util/pool.hpp"

namespace optsync::dsm {

/// One root-sequenced write as shipped in a frame.
struct SequencedWrite {
  std::uint64_t seq = 0;
  VarId var = kNoVar;
  Word value = 0;
  NodeId origin = kNoNode;
  /// Causal context of the traced op this write belongs to (lock grants
  /// carry the waiter's context; requests/releases the sender's). Invalid
  /// for untraced traffic. Rides the frame so the coalesce/dispatch/
  /// wire-down legs can be attributed to the right trace.
  telemetry::SpanContext ctx{};
  sim::Time sequenced_at = 0;  ///< when the root sequenced it (coalesce leg)
};

/// An ordered run of sequenced writes multicast as one network message.
/// Sequence numbers are contiguous and ascending (the root appends writes
/// in sequencing order and never reorders).
struct Frame {
  std::vector<SequencedWrite> writes;

  [[nodiscard]] bool empty() const { return writes.empty(); }
  [[nodiscard]] std::size_t size() const { return writes.size(); }
  [[nodiscard]] std::uint64_t first_seq() const { return writes.front().seq; }
  [[nodiscard]] std::uint64_t last_seq() const { return writes.back().seq; }
};

/// A pooled, refcounted frame in flight. The multicast path used to wrap
/// every flushed frame in a fresh shared_ptr<const Frame>; FramePayload
/// objects instead live forever in a util::RecyclePool and keep their
/// writes vector's capacity across reuse, so shipping a frame allocates
/// nothing at steady state.
struct FramePayload {
  Frame frame;
  std::uint32_t refs = 0;
  util::RecyclePool<FramePayload>* pool = nullptr;
};

/// Copyable handle keeping a FramePayload alive while delivery closures
/// reference it. Release happens in the DESTRUCTOR, not on invocation: the
/// reliable channel destroys expired packets' callbacks without ever
/// calling them, and the payload must flow back to the pool regardless.
class FrameRef {
 public:
  FrameRef() = default;
  explicit FrameRef(FramePayload* p) : p_(p) {
    if (p_ != nullptr) ++p_->refs;
  }
  // Copy ops are noexcept on purpose: closures capturing a FrameRef must
  // stay nothrow-move-constructible (a const capture degrades a lambda's
  // move to a copy), or SmallFn's inline gate rejects them and every frame
  // delivery heap-allocates.
  FrameRef(const FrameRef& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs;
  }
  FrameRef(FrameRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  FrameRef& operator=(const FrameRef& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      if (p_ != nullptr) ++p_->refs;
    }
    return *this;
  }
  FrameRef& operator=(FrameRef&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~FrameRef() { release(); }

  [[nodiscard]] const Frame& operator*() const { return p_->frame; }
  [[nodiscard]] const Frame* operator->() const { return &p_->frame; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  void release() {
    if (p_ != nullptr && --p_->refs == 0) {
      p_->frame.writes.clear();  // keep capacity for the next frame
      p_->pool->release(p_);
    }
    p_ = nullptr;
  }
  FramePayload* p_ = nullptr;
};

/// Wire size of a frame whose writes total `sum_write_bytes` as standalone
/// messages: one shared header replaces the n per-message headers. See the
/// file comment for the floor. n == 1 yields exactly `sum_write_bytes`.
[[nodiscard]] inline std::uint32_t frame_wire_bytes(
    std::uint64_t sum_write_bytes, std::size_t n_writes,
    std::uint32_t header_bytes) {
  if (n_writes == 0) return 0;
  const std::uint64_t amortized =
      static_cast<std::uint64_t>(n_writes - 1) * header_bytes;
  const std::uint64_t floor =
      header_bytes + 4ull * static_cast<std::uint64_t>(n_writes);
  const std::uint64_t bytes =
      std::max(sum_write_bytes > amortized ? sum_write_bytes - amortized : 0,
               floor);
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      bytes, std::numeric_limits<std::uint32_t>::max()));
}

/// Splits a frame into chunks of at most `max_writes` writes each,
/// preserving order. The inverse of merge_frames; used by tests and by any
/// transport that needs to re-packetize (an MTU model, say).
[[nodiscard]] inline std::vector<Frame> split_frame(const Frame& f,
                                                    std::size_t max_writes) {
  std::vector<Frame> out;
  if (max_writes == 0) max_writes = 1;
  for (std::size_t i = 0; i < f.writes.size(); i += max_writes) {
    Frame chunk;
    const auto end = std::min(i + max_writes, f.writes.size());
    chunk.writes.assign(f.writes.begin() + static_cast<std::ptrdiff_t>(i),
                        f.writes.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(chunk));
  }
  return out;
}

/// Concatenates frames back into one, in order.
[[nodiscard]] inline Frame merge_frames(const std::vector<Frame>& parts) {
  Frame out;
  for (const Frame& p : parts) {
    out.writes.insert(out.writes.end(), p.writes.begin(), p.writes.end());
  }
  return out;
}

}  // namespace optsync::dsm
