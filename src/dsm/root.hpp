// The group root: sequencing arbiter and lock manager (paper §1.2, §2, §4).
//
// Every eagershared write of the group funnels to the root, which assigns a
// group-wide sequence number and multicasts it down the spanning tree. The
// root doubles as the lock manager for all lock variables of the group: lock
// requests and releases are consumed here and turned into sequenced grant /
// free writes. For optimistic synchronization the root additionally filters
// mutex-data writes from nodes that do not hold the guard lock ("the group
// root can suppress propagation of improper data changes", §4).
#pragma once

#include <cstdint>
#include <functional>

#include "dsm/frame.hpp"
#include "dsm/types.hpp"
#include "simkern/scheduler.hpp"
#include "util/ring.hpp"

namespace optsync::dsm {

class DsmSystem;

class GroupRoot {
 public:
  GroupRoot(DsmSystem& sys, GroupId gid);
  GroupRoot(const GroupRoot&) = delete;
  GroupRoot& operator=(const GroupRoot&) = delete;

  /// An eagershared write from `origin` arrives at the root. `ctx` is the
  /// causal context the message carried (invalid for untraced traffic);
  /// lock requests park it in the waiter queue so the eventual grant can
  /// be attributed to the requester's trace.
  void on_arrival(NodeId origin, VarId v, Word value,
                  telemetry::SpanContext ctx = {});

  /// Queue-lock state for one lock variable. The waiter queue is a flat
  /// ring buffer (deque surface, no per-node allocation): one push/pop per
  /// contended request sits on the sequencing hot path.
  struct LockState {
    NodeId holder = kNoNode;
    util::Ring<NodeId> queue;
    std::uint64_t requests = 0;
    std::uint64_t immediate_grants = 0;  ///< granted without queueing
    std::uint64_t queued_grants = 0;     ///< granted from the queue
    std::uint64_t releases = 0;
    std::size_t max_queue_depth = 0;
  };
  [[nodiscard]] const LockState& lock_state(VarId lock) const;

  struct Stats {
    std::uint64_t sequenced = 0;
    std::uint64_t speculative_drops = 0;  ///< filtered non-holder writes (§4)
    std::uint64_t frames = 0;             ///< multicast frames flushed
    std::uint64_t size_flushes = 0;       ///< frames closed by the size cap
    std::uint64_t timer_flushes = 0;      ///< frames closed by coalesce_max_ns
    std::size_t max_frame_writes = 0;     ///< largest frame shipped
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Flushes the pending frame now, if any (tests and shutdown barriers;
  /// normal operation flushes on the size cap or the coalesce timer).
  void flush();

  /// Writes sequenced but not yet multicast (the open frame's size).
  [[nodiscard]] std::size_t pending_writes() const {
    return pending_.writes.size();
  }

  // --- per-root coalescing override -------------------------------------
  /// Overrides the system-wide coalescing knobs for THIS root only. The
  /// adaptive per-shard controller (shard/coalesce_controller.hpp) drives
  /// these from live telemetry: a backlogged root batches aggressively, an
  /// idle one ships every write immediately. Roots start at the DsmConfig
  /// values. A cap of 0 is clamped to 1. Takes effect from the next
  /// sequenced write; an open frame keeps its armed deadline.
  void set_coalesce(std::uint32_t max_writes, sim::Duration max_ns);
  [[nodiscard]] std::uint32_t coalesce_max_writes() const {
    return coalesce_writes_;
  }
  [[nodiscard]] sim::Duration coalesce_max_ns() const { return coalesce_ns_; }

  // --- frame observation -------------------------------------------------
  /// Hook invoked on every frame flush, after the flush is sequenced but
  /// before the frame is multicast (the writes vector is swapped into the
  /// payload pool by multicast_frame, so this is the last point the frame
  /// is observable in place). The lease directory taps flushes here: the
  /// flush instant is when a frame's writes become the group's committed
  /// order, so lease epochs revoked inside the observer are revoked at
  /// exactly the GWC commit point. One observer per root (last set wins).
  using FrameObserver = std::function<void(const Frame&)>;
  void set_frame_observer(FrameObserver fn) { observer_ = std::move(fn); }

  [[nodiscard]] GroupId group() const { return gid_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  // --- online root migration (elastic::RootMigrator) ---------------------
  /// Quiesces the sequencer for a root handoff: the open coalesce frame is
  /// flushed (so the outgoing root's last frame is on the wire), and from
  /// this call every arriving write — lock words included — is parked in a
  /// bounded handoff log instead of being admitted. The sequencer state
  /// (next_seq_, lock table, waiter queues) is frozen at the cut.
  void begin_quiesce();

  /// Ends the quiesce after the group has been re-rooted: replays the
  /// handoff log through on_arrival() in original arrival order, so writes
  /// that raced the handoff are sequenced by the new root with no gap and
  /// no reordering. GWC order is one uninterrupted stream across the cut.
  void end_quiesce();

  [[nodiscard]] bool quiesced() const { return quiesced_; }
  [[nodiscard]] std::size_t handoff_log_size() const {
    return handoff_log_.size();
  }

  /// Total queued waiters across all lock variables — the waiter-queue
  /// portion of the state a migration must transfer to the successor.
  [[nodiscard]] std::size_t waiter_queue_depth() const;

  struct MigrationStats {
    std::uint64_t quiesces = 0;
    std::uint64_t handoff_logged = 0;    ///< writes parked during quiesce
    std::uint64_t handoff_replayed = 0;  ///< writes replayed at end_quiesce
    std::size_t max_handoff_log = 0;
  };
  [[nodiscard]] const MigrationStats& migration_stats() const {
    return mig_stats_;
  }

 private:
  void handle_lock_write(NodeId origin, VarId v, Word value,
                         telemetry::SpanContext ctx);
  void multicast(VarId v, Word value, NodeId origin,
                 telemetry::SpanContext ctx = {});
  void flush_pending(bool timer_fired);

  /// Trace metadata for queued lock waiters, kept in lockstep with
  /// LockState::queue (only handle_lock_write pushes/pops either). A
  /// side ring so the public LockState stays a plain NodeId queue.
  struct WaiterMeta {
    telemetry::SpanContext ctx{};
    sim::Time enqueued_at = 0;
  };

  /// One lock variable's full root-side state. The table is a flat vector
  /// scanned linearly: groups hold a handful of locks (the sharded service
  /// exactly one), and the scan beats hashing at that size.
  struct LockEntry {
    VarId var = kNoVar;
    LockState state;
    util::Ring<WaiterMeta> meta;
  };
  LockEntry& lock_entry(VarId v);

  /// One write parked while the root is quiesced for migration.
  struct HeldArrival {
    NodeId origin;
    VarId var;
    Word value;
    telemetry::SpanContext ctx;
  };

  DsmSystem* sys_;
  GroupId gid_;
  std::uint64_t next_seq_ = 1;
  std::vector<LockEntry> locks_;
  Frame pending_;                 ///< open frame awaiting flush
  FrameObserver observer_;        ///< flush tap (lease directory)
  sim::EventId flush_timer_ = 0;  ///< 0 = not armed
  std::uint32_t coalesce_writes_;
  sim::Duration coalesce_ns_;
  bool quiesced_ = false;
  std::vector<HeldArrival> handoff_log_;
  MigrationStats mig_stats_;
  Stats stats_;
};

}  // namespace optsync::dsm
