#include "dsm/demand_fetch.hpp"

#include <memory>

#include "simkern/assert.hpp"

namespace optsync::dsm {

DemandFetchStore::DemandFetchStore(net::Network& net, Config cfg)
    : net_(&net), cfg_(cfg) {}

VarId DemandFetchStore::define(std::string name, NodeId home, Word init) {
  OPTSYNC_EXPECT(home < net_->topology().size());
  const auto v = static_cast<VarId>(entries_.size());
  Entry e;
  e.name = std::move(name);
  e.home = home;
  e.owner = home;
  e.exclusive = true;
  e.value = init;
  entries_.push_back(std::move(e));
  return v;
}

DemandFetchStore::Entry& DemandFetchStore::entry(VarId v) {
  OPTSYNC_EXPECT(v < entries_.size());
  return entries_[v];
}

Word DemandFetchStore::peek(VarId v) const {
  OPTSYNC_EXPECT(v < entries_.size());
  return entries_[v].value;
}

bool DemandFetchStore::has_valid_copy(NodeId n, VarId v) const {
  OPTSYNC_EXPECT(v < entries_.size());
  const Entry& e = entries_[v];
  return e.owner == n || e.sharers.contains(n);
}

sim::Process DemandFetchStore::read(NodeId n, VarId v, Word* out) {
  OPTSYNC_EXPECT(out != nullptr);
  auto& sched = net_->scheduler();
  Entry& e = entry(v);

  if (e.owner == n || e.sharers.contains(n)) {
    ++stats_.read_hits;
    co_await sim::delay(sched, cfg_.local_ns);
    *out = e.value;
    co_return;
  }

  // Miss: request -> home -> (forward to owner when dirty) -> data reply.
  ++stats_.read_misses;
  bool done = false;
  sim::Signal wake(sched);
  net_->send(n, e.home, cfg_.ctrl_bytes, "df-read", [this, v, n, &done,
                                                     &wake] {
    Entry& k = entry(v);
    const NodeId supplier = k.exclusive ? k.owner : k.home;
    auto deliver = [this, v, n, supplier, &done, &wake] {
      net_->send(supplier, n, cfg_.data_bytes, "df-data", [this, v, n, &done,
                                                           &wake] {
        Entry& kk = entry(v);
        kk.exclusive = false;  // now shared
        kk.sharers.insert(n);
        kk.sharers.insert(kk.owner);
        done = true;
        wake.notify_all();
      });
    };
    if (supplier == k.home) {
      deliver();
    } else {
      // Forward the request one more hop to the dirty owner.
      net_->send(k.home, supplier, cfg_.ctrl_bytes, "df-fwd", deliver);
    }
  });
  while (!done) co_await wake.wait();
  *out = entry(v).value;
}

sim::Process DemandFetchStore::write(NodeId n, VarId v, Word value) {
  auto& sched = net_->scheduler();
  Entry& e = entry(v);

  if (e.owner == n && e.exclusive) {
    ++stats_.write_hits;
    co_await sim::delay(sched, cfg_.local_ns);
    e.value = value;
    co_return;
  }

  // Miss: obtain exclusivity via the home — invalidate every sharer (round
  // trips run in parallel; the slowest ack gates the grant), then transfer
  // ownership to the writer.
  ++stats_.write_misses;
  bool done = false;
  sim::Signal wake(sched);
  net_->send(n, e.home, cfg_.ctrl_bytes, "df-write", [this, v, n, value,
                                                      &done, &wake] {
    Entry& k = entry(v);
    const NodeId home = k.home;
    auto grant = [this, v, n, home, value, &done, &wake] {
      net_->send(home, n, cfg_.data_bytes, "df-own", [this, v, n, value,
                                                      &done, &wake] {
        Entry& gg = entry(v);
        gg.owner = n;
        gg.exclusive = true;
        gg.sharers.clear();
        gg.value = value;
        done = true;
        wake.notify_all();
      });
    };

    std::vector<NodeId> to_invalidate;
    for (const NodeId s : k.sharers) {
      if (s != n) to_invalidate.push_back(s);
    }
    if (k.exclusive && k.owner != n &&
        !k.sharers.contains(k.owner)) {
      to_invalidate.push_back(k.owner);
    }
    if (to_invalidate.empty()) {
      grant();
      return;
    }
    stats_.invalidations += to_invalidate.size();
    auto pending = std::make_shared<std::size_t>(to_invalidate.size());
    for (const NodeId r : to_invalidate) {
      net_->send(home, r, cfg_.ctrl_bytes, "df-inval",
                 [this, v, r, home, pending, grant] {
                   entry(v).sharers.erase(r);
                   net_->send(r, home, cfg_.ctrl_bytes, "df-inval-ack",
                              [pending, grant] {
                                if (--*pending == 0) grant();
                              });
                 });
    }
  });
  while (!done) co_await wake.wait();
}

}  // namespace optsync::dsm
