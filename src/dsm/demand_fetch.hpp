// Demand-fetch shared memory — the other end of the paper's §1.1 spectrum.
//
// "At one end are demand-driven methods, which delay accesses to remote data
// until each is actually needed, but the processor must halt until each
// remote datum can be fetched. Network traffic is minimized."
//
// A directory-based MSI-style protocol at variable granularity: each
// variable has a home node holding the directory entry; reads miss to the
// current owner and join the sharer set; writes obtain exclusivity by
// invalidating sharers through the home. This is the baseline the paper's
// §1.1 argues "does not scale well; for many important parallel algorithms,
// they do not execute efficiently on more than a few dozen processors" —
// quantified by bench/spectrum_remote_access.
//
// Like the entry/release engines, this is a timed centralized model of a
// distributed protocol: it charges every message the real pattern sends but
// keeps bookkeeping in one place.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "dsm/types.hpp"
#include "net/network.hpp"
#include "simkern/coro.hpp"

namespace optsync::dsm {

class DemandFetchStore {
 public:
  struct Config {
    std::uint32_t ctrl_bytes = 16;   ///< request / invalidation / ack size
    std::uint32_t data_bytes = 24;   ///< reply carrying one datum
    sim::Duration local_ns = 25;     ///< cache-hit / local bookkeeping cost
  };

  DemandFetchStore(net::Network& net, Config cfg);
  explicit DemandFetchStore(net::Network& net)
      : DemandFetchStore(net, Config{}) {}
  DemandFetchStore(const DemandFetchStore&) = delete;
  DemandFetchStore& operator=(const DemandFetchStore&) = delete;

  /// Defines a variable homed (directory + initial copy) at `home`.
  VarId define(std::string name, NodeId home, Word init = 0);

  /// Reads `v` from node `n`. A valid local copy costs local_ns; a miss
  /// stalls the caller for the full fetch ("the processor must halt until
  /// each remote datum can be fetched"). The value is written to *out.
  sim::Process read(NodeId n, VarId v, Word* out);

  /// Writes `v` from node `n`. Exclusive ownership is acquired first
  /// (invalidating all sharers through the home); subsequent writes by the
  /// same node hit locally.
  sim::Process write(NodeId n, VarId v, Word value);

  /// Current committed value (the owner's copy) — test/verification only.
  [[nodiscard]] Word peek(VarId v) const;

  /// True when `n` holds a valid (shared or exclusive) copy of `v`.
  [[nodiscard]] bool has_valid_copy(NodeId n, VarId v) const;

  struct Stats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t invalidations = 0;  ///< individual invalidation messages
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string name;
    NodeId home = 0;
    NodeId owner = 0;  ///< node with the authoritative (dirty-able) copy
    bool exclusive = false;  ///< owner may write without a miss
    std::unordered_set<NodeId> sharers;  ///< includes owner when shared
    Word value = 0;
  };

  Entry& entry(VarId v);

  net::Network* net_;
  Config cfg_;
  std::vector<Entry> entries_;
  Stats stats_;
};

}  // namespace optsync::dsm
