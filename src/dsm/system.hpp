// DsmSystem: wires nodes, groups, roots, and the network together.
//
// This is the public entry point of the simulated Sesame substrate. Typical
// setup (see examples/quickstart.cpp):
//
//   sim::Scheduler sched;
//   auto topo = net::MeshTorus2D::near_square(16);
//   dsm::DsmSystem sys(sched, topo, dsm::DsmConfig{});
//   auto g    = sys.create_group({0,1,2,3}, /*root=*/1);
//   auto lock = sys.define_lock("L", g);
//   auto a    = sys.define_mutex_data("a", g, lock, /*init=*/0);
//   ... spawn sim::Process coroutines that read/write through sys.node(i) ...
//   sched.run();
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsm/frame.hpp"
#include "dsm/group.hpp"
#include "dsm/node.hpp"
#include "dsm/root.hpp"
#include "dsm/types.hpp"
#include "faults/fault_injector.hpp"
#include "net/network.hpp"
#include "net/reliable_channel.hpp"
#include "simkern/random.hpp"
#include "simkern/scheduler.hpp"

namespace optsync::dsm {

class DsmSystem {
 public:
  /// Creates one DsmNode per topology node. The topology must outlive the
  /// system.
  DsmSystem(sim::Scheduler& sched, const net::Topology& topo,
            DsmConfig config = {});

  DsmSystem(const DsmSystem&) = delete;
  DsmSystem& operator=(const DsmSystem&) = delete;

  // --- construction ----------------------------------------------------
  /// Creates a sharing group over `members` rooted at `root`.
  GroupId create_group(std::vector<NodeId> members, NodeId root);

  /// Defines a plain eagershared variable, initialized on all members.
  /// `wire_bytes` overrides the update packet size (0 = config default),
  /// for modelling aggregates larger than one word.
  VarId define_data(std::string name, GroupId g, Word init = 0,
                    std::uint32_t wire_bytes = 0);

  /// Defines a lock variable (initially free).
  VarId define_lock(std::string name, GroupId g);

  /// Defines a datum guarded by `lock` (root-filtered, HW-block eligible).
  VarId define_mutex_data(std::string name, GroupId g, VarId lock,
                          Word init = 0);

  /// Re-initializes a variable on every group member without any traffic.
  void initialize(VarId v, Word value);

  // --- online root migration --------------------------------------------
  /// Re-roots `g` at `new_root` (must be a member): rebuilds the spanning
  /// tree and delivery classes. The sequencer object (GroupRoot) is
  /// per-group and survives the move; callers (elastic::RootMigrator) must
  /// quiesce it first and drain in-flight frames — see GroupRoot's
  /// begin_quiesce()/end_quiesce() and group_clear_at().
  void reroot_group(GroupId g, NodeId new_root);

  /// When the root's serializer for `g` last goes quiet: the dispatch+wire
  /// clear instant of the newest multicast frame (0 if none yet). A
  /// migration waits past this (plus the flight radius) before re-rooting,
  /// so buffering in the nodes' delivery gates stays the exception.
  [[nodiscard]] sim::Time group_clear_at(GroupId g) const;

  // --- access ------------------------------------------------------------
  [[nodiscard]] DsmNode& node(NodeId n);
  [[nodiscard]] const DsmNode& node(NodeId n) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const Group& group(GroupId g) const;
  [[nodiscard]] GroupRoot& root_of(GroupId g);
  [[nodiscard]] const VarInfo& var(VarId v) const;
  [[nodiscard]] std::size_t var_count() const { return vars_.size(); }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const DsmConfig& config() const { return config_; }
  [[nodiscard]] const net::Topology& topology() const { return *topo_; }

  /// True when substrate traffic goes through the reliable channel (faults
  /// configured, or ReliableConfig::enabled set).
  [[nodiscard]] bool reliable_transport() const { return reliable_on_; }
  [[nodiscard]] const net::ReliableChannel& reliable() const { return rel_; }

  /// The active fault injector, or nullptr when the run is fault-free.
  [[nodiscard]] faults::FaultInjector* injector() {
    return injector_ ? &*injector_ : nullptr;
  }

  /// The attached flight recorder, or nullptr (from DsmConfig::recorder).
  [[nodiscard]] trace::Recorder* recorder() const { return config_.recorder; }

  /// The attached causal tracer, or nullptr (from DsmConfig::tracer).
  [[nodiscard]] telemetry::Tracer* tracer() const { return config_.tracer; }

  /// The attached decision journal, or nullptr (from DsmConfig::journal).
  [[nodiscard]] telemetry::Journal* journal() const {
    return config_.journal;
  }

  // --- substrate internals (used by DsmNode / GroupRoot) -----------------
  /// Ships a node's write to its group root (up the spanning tree).
  void share_out(NodeId origin, VarId v, Word value);

  /// Root -> members: multicasts a frame of sequenced writes down the tree.
  /// The whole frame travels as one message per member (per-frame header
  /// amortization; see dsm/frame.hpp for the byte model). The caller's
  /// writes vector is swapped into a pooled payload and replaced by an
  /// empty vector with recycled capacity — the root flushes into the same
  /// buffers forever, no per-frame allocation.
  void multicast_frame(GroupId g, Frame& frame);

  /// Frame-payload pool counters (kernel_overhead bench: reuse share must
  /// approach 1 at steady state).
  [[nodiscard]] const util::RecyclePool<FramePayload>::Stats& pool_stats()
      const {
    return frame_pool_.stats();
  }

  /// Wire size of messages about variable `v`.
  [[nodiscard]] std::uint32_t bytes_for(VarId v) const;

  /// Point-to-point service message between two nodes over the shortest
  /// topology path, riding the same transport as substrate traffic (the
  /// reliable channel when faults are configured, the raw network
  /// otherwise — so RPCs built on it survive drop/dup/partition runs).
  /// This is the client <-> shard-root RPC primitive of the service layer:
  /// lease grants, invalidations, and forwarded writes all travel here.
  /// `tag` must outlive the delivery (callers pass string literals).
  void send_direct(NodeId src, NodeId dst, std::uint32_t bytes,
                   std::string_view tag, net::DeliveryFn on_delivery);

 private:
  /// Routes one substrate message through the reliable channel or the raw
  /// network, per configuration.
  void transport_send(NodeId src, NodeId dst, unsigned hops,
                      std::uint32_t bytes, std::string_view tag,
                      net::DeliveryFn on_delivery);

  /// Records the wire-down (and any retransmit) telemetry spans for the
  /// traced lock grants a delivered frame carries for member `m`.
  void record_down_spans(telemetry::Tracer& trc, const Frame& frame, NodeId m,
                         sim::Time dispatch, sim::Duration base);

  sim::Scheduler* sched_;
  const net::Topology* topo_;
  DsmConfig config_;
  net::Network net_;
  net::ReliableChannel rel_;
  bool reliable_on_ = false;
  std::optional<faults::FaultInjector> injector_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<std::unique_ptr<GroupRoot>> roots_;
  std::vector<VarInfo> vars_;
  std::vector<sim::Time> group_busy_until_;  ///< root serial-dispatch clock
  /// When the root's interface finishes serializing its latest frame. A
  /// later, smaller frame may not be injected so soon after a larger one
  /// that it would overtake it on the (FIFO) down links — frames of one
  /// group vary in size, and per-member delivery order must stay FIFO.
  std::vector<sim::Time> group_wire_clear_;
  util::RecyclePool<FramePayload> frame_pool_;
  sim::Rng jitter_rng_{0};
};

}  // namespace optsync::dsm
