// Core identifiers and wire-format constants of the Sesame DSM model.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "faults/fault_plan.hpp"
#include "net/link_model.hpp"
#include "net/reliable_channel.hpp"
#include "net/topology.hpp"
#include "simkern/time.hpp"

namespace optsync::trace {
class Recorder;
}

namespace optsync::telemetry {
class Tracer;
class Journal;
}

namespace optsync::dsm {

using net::NodeId;

/// Identifies an eagerly shared variable. Dense, assigned by DsmSystem.
using VarId = std::uint32_t;

/// Identifies a sharing group. Dense, assigned by DsmSystem.
using GroupId = std::uint32_t;

/// Value type of shared variables. The paper's variables are scalar words;
/// aggregates are modelled as several variables plus an explicit byte size
/// used for serialization costs.
using Word = std::int64_t;

/// Distinguished lock value meaning "free" (the paper's -99..99: a unique
/// negative number matching no processor id).
inline constexpr Word kLockFree = -999'999'999;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// How the group root and the sharing interfaces treat a variable.
enum class VarKind {
  kData,       ///< plain eagershared datum: sequenced, echoed to the writer
  kMutexData,  ///< datum guarded by a lock: root filters writes from
               ///< non-holders; HW blocking drops self-echoes (Fig. 6)
  kLock        ///< lock variable: writes are requests/releases consumed by
               ///< the root, which emits grants/frees as sequenced writes
};

/// Stable label for trace records ("data" / "mutex-data" / "lock"). The
/// GWC checker keys its rules off these strings.
constexpr std::string_view var_kind_name(VarKind k) {
  switch (k) {
    case VarKind::kData:
      return "data";
    case VarKind::kMutexData:
      return "mutex-data";
    case VarKind::kLock:
      return "lock";
  }
  return "?";
}

/// Encodes a lock request for processor `id` (the paper writes the negated
/// processor number). Node ids are 0-based; the wire value is -(id + 1) so
/// node 0 is representable.
constexpr Word lock_request_value(NodeId id) {
  return -(static_cast<Word>(id) + 1);
}

/// Encodes a grant for processor `id` (the positive processor number).
constexpr Word lock_grant_value(NodeId id) {
  return static_cast<Word>(id) + 1;
}

/// True when a lock word means "granted to `id`".
constexpr bool lock_granted_to(Word v, NodeId id) {
  return v == lock_grant_value(id);
}

/// True when a lock word means "granted to someone".
constexpr bool lock_held(Word v) { return v > 0; }

/// Extracts the holder from a grant word. Precondition: lock_held(v).
constexpr NodeId lock_holder(Word v) { return static_cast<NodeId>(v - 1); }

/// Tuning knobs for the simulated Sesame substrate.
struct DsmConfig {
  net::LinkModel link = net::LinkModel::paper();
  net::CpuModel cpu = net::CpuModel::paper();

  /// Size on the wire of one sequenced data-update packet
  /// (header + variable id + 8-byte value).
  std::uint32_t update_bytes = 16;

  /// Size of lock request / grant / release packets.
  std::uint32_t lock_bytes = 16;

  /// Root packet-handling latency per message (sequencing is done by the
  /// sharing interface hardware; keep small).
  sim::Duration root_process_ns = 25;

  /// Root drops writes to mutex data from nodes not holding the guard lock
  /// (the enabling mechanism for optimistic synchronization, §4).
  bool root_filters_speculative = true;

  /// Sharing interfaces drop root echoes of their own mutex-data writes
  /// (the hardware blocking mechanism, Fig. 6).
  bool hardware_blocking = true;

  /// Adds a uniformly random [0, jitter) delay to each root sequencing step
  /// (congestion/fault injection for robustness tests). The whole multicast
  /// batch shares one draw, so per-member FIFO — and therefore GWC order —
  /// is preserved by construction. 0 disables. Deterministic per seed.
  sim::Duration root_jitter_ns = 0;
  std::uint64_t jitter_seed = 0x0dd5eedull;

  /// --- root write coalescing (multicast frames) -----------------------
  /// Maximum sequenced writes per multicast frame. 1 (the default) flushes
  /// every write the moment it is sequenced — packaging, timing, and wire
  /// bytes all identical to the unbatched model. Larger values let the root
  /// accumulate a frame and amortize per-message headers (dsm/frame.hpp).
  std::uint32_t coalesce_max_writes = 1;

  /// How long a partially filled frame may wait for more writes before the
  /// root flushes it anyway. Bounds the latency cost of batching (a lock
  /// grant sitting in an open frame is invisible until the flush) and
  /// guarantees progress. Irrelevant at coalesce_max_writes == 1, where
  /// every flush is size-triggered.
  sim::Duration coalesce_max_ns = 10'000;

  /// Per-message header bytes amortized when writes share a frame: an
  /// n-write frame costs sum(bytes_for(var)) - (n-1)*frame_header_bytes on
  /// the wire (floored; see dsm/frame.hpp).
  std::uint32_t frame_header_bytes = 8;

  /// Message-level fault schedule (drops, duplicates, reorder-within-jitter
  /// delays, node pauses, link partitions). Empty (the default) leaves the
  /// network loss-free and the substrate byte-identical to the seed model.
  /// A non-empty plan force-enables the reliable transport below — GWC
  /// cannot survive loss without retransmission.
  faults::FaultPlan faults;

  /// Reliable tree transport (sequence numbers + ack/retransmit + dedup)
  /// between nodes and group roots. `reliable.enabled` opts in explicitly;
  /// it is implied whenever `faults` is non-empty.
  net::ReliableConfig reliable;

  /// Optional flight recorder. When set, the substrate reports network
  /// deliveries, root sequencing/filtering, and member application into it
  /// (trace/recorder.hpp); core/OptimisticMutex adds lock and speculation
  /// transitions. Not owned; must outlive the DsmSystem. nullptr = off.
  trace::Recorder* recorder = nullptr;

  /// Optional causal tracer (telemetry/tracer.hpp). When set, lock traffic
  /// carries SpanContext end to end: the substrate records wire-up/queue/
  /// coalesce/dispatch/wire-down spans for every traced lock request so
  /// the critical-path analyzer can attribute op latency. Untraced ops
  /// (invalid node context) cost one branch. Not owned. nullptr = off.
  telemetry::Tracer* tracer = nullptr;

  /// Optional decision journal (telemetry/journal.hpp). When set, the
  /// speculative layers append typed forensics records — txn aborts with
  /// reason + conflicting stripe/owner, lease epoch transitions, elastic
  /// ladder steps with their triggering inputs. Bounded and pooled; a full
  /// journal drops silently. Not owned. nullptr = off.
  telemetry::Journal* journal = nullptr;
};

/// Variable metadata kept by the system.
struct VarInfo {
  std::string name;
  GroupId group = 0;
  VarKind kind = VarKind::kData;
  /// For kMutexData: the lock variable that guards it (kNoVar otherwise).
  VarId guard = std::numeric_limits<VarId>::max();
  /// Wire size of update packets for this variable; 0 means the config
  /// default. Lets workloads model aggregates larger than one word.
  std::uint32_t wire_bytes = 0;
};

inline constexpr VarId kNoVar = std::numeric_limits<VarId>::max();

}  // namespace optsync::dsm
