// Sharing groups: membership + the multicast tree rooted at the group root.
#pragma once

#include <vector>

#include "dsm/types.hpp"
#include "net/spanning_tree.hpp"

namespace optsync::dsm {

/// A sharing group: the set of nodes that eagerly share a set of variables,
/// with one member acting as root (sequencer, lock manager, retransmitter).
class Group {
 public:
  Group(GroupId id, const net::Topology& topo, std::vector<NodeId> members,
        NodeId root);

  [[nodiscard]] GroupId id() const { return id_; }
  [[nodiscard]] NodeId root() const { return tree_.root(); }
  [[nodiscard]] const std::vector<NodeId>& members() const {
    return tree_.members();
  }
  [[nodiscard]] bool contains(NodeId n) const { return tree_.contains(n); }
  [[nodiscard]] const net::SpanningTree& tree() const { return tree_; }

  /// Physical hops from a member up to the root along the tree.
  [[nodiscard]] unsigned up_hops(NodeId member) const {
    return tree_.hops_to_root(member);
  }

  /// Physical hops from the root down to a member along the tree.
  [[nodiscard]] unsigned down_hops(NodeId member) const {
    return tree_.hops_to_root(member);
  }

  /// Members bucketed by tree depth (down_hops), ascending by depth, each
  /// bucket preserving member order. Every member of a bucket receives a
  /// multicast frame at the same instant, so the substrate schedules one
  /// delivery event per bucket instead of one per member — on a 32x32
  /// torus that is ~33 pending events per frame in flight, not 1024.
  struct HopClass {
    unsigned hops = 0;
    std::vector<NodeId> members;
  };
  [[nodiscard]] const std::vector<HopClass>& down_classes() const {
    return classes_;
  }

  /// Re-roots the group at `new_root` (must be a member): rebuilds the
  /// spanning tree's parent links and the hop-depth delivery classes in
  /// place. Membership is unchanged. The caller (elastic::RootMigrator)
  /// is responsible for sequencer-state handoff and wire drain — this is
  /// purely the topology half of an online root migration.
  void reroot(NodeId new_root);

  /// Times this group has been re-rooted since construction.
  [[nodiscard]] std::uint64_t reroots() const { return reroots_; }

 private:
  void rebuild_classes();

  GroupId id_;
  const net::Topology* topo_;
  net::SpanningTree tree_;
  std::vector<HopClass> classes_;
  std::uint64_t reroots_ = 0;
};

}  // namespace optsync::dsm
