// Chrome trace-event JSON export for the flight recorder.
//
// Produces the "JSON Array Format" that chrome://tracing and Perfetto load
// directly: one pid for the whole simulation, one tid per simulated node,
// timestamps in microseconds (sim time is nanoseconds; fractional µs keeps
// full precision). Critical-section holds and speculative windows become
// duration slices (ph B/E) so a Fig. 7 run visibly shows the near CPU's
// speculate slice being cut short by the far CPU's rollback; everything
// else becomes thread-scoped instant events carrying their payload in args.
#pragma once

#include <ostream>

#include "trace/recorder.hpp"

namespace optsync::telemetry {
class Tracer;
}

namespace optsync::trace {

/// Writes the retained events as a complete Chrome trace JSON document.
void write_chrome_trace(std::ostream& out, const Recorder& rec);

/// Same document, plus the causal spans of `tracer` (when non-null) as
/// async begin/end pairs keyed by trace id — Perfetto draws each traced
/// op's request/wait/wire/queue/coalesce legs as one connected track.
void write_chrome_trace(std::ostream& out, const Recorder& rec,
                        const telemetry::Tracer* tracer);

}  // namespace optsync::trace
