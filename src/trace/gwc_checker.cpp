#include "trace/gwc_checker.hpp"

#include <sstream>

#include "dsm/types.hpp"

namespace optsync::trace {

void GwcChecker::install(Recorder& rec) {
  rec.add_sink([this](const Event& e) { on_event(e); });
}

void GwcChecker::violation(std::string msg) {
  // Cap retention: a systemic failure would otherwise flood memory with
  // one message per applied write.
  if (violations_.size() < 64) violations_.push_back(std::move(msg));
}

void GwcChecker::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kRootSequence: {
      GroupState& g = groups_[e.group];
      Sequenced s;
      s.var = e.var;
      s.value = e.value;
      s.origin = e.origin;
      s.is_lock = e.label == "lock";
      s.is_mutex_data = e.label == "mutex-data";
      // Rule 4: a mutex-data write reaching the sequencer must come from
      // the current lock holder; anything else is a speculative write
      // about to become visible to the whole group.
      if (s.is_mutex_data) {
        if (!g.lock_held) {
          std::ostringstream o;
          o << "group " << e.group << " seq " << e.seq
            << ": mutex-data write to var " << e.var << " from node "
            << e.origin << " sequenced while the lock is free";
          violation(o.str());
        } else if (e.origin != g.holder) {
          std::ostringstream o;
          o << "group " << e.group << " seq " << e.seq
            << ": speculative mutex-data write from node " << e.origin
            << " sequenced while node " << g.holder << " holds the lock";
          violation(o.str());
        }
      }
      if (s.is_lock) {
        // Track ownership from the sequenced lock words themselves:
        // positive = grant (holder encoded), kLockFree = release settled,
        // negative = request (no ownership change).
        if (dsm::lock_held(e.value)) {
          g.lock_held = true;
          g.holder = dsm::lock_holder(e.value);
        } else if (e.value == dsm::kLockFree) {
          g.lock_held = false;
          g.holder = ~0u;
        }
      }
      g.by_seq[e.seq] = s;
      break;
    }

    case EventKind::kNodeApply: {
      GroupState& g = groups_[e.group];
      writes_checked_ += 1;
      const std::uint64_t last = g.last_applied[e.node];  // 0 = none yet
      // Rule 1 (order): strictly increasing per member.
      if (e.seq <= last) {
        std::ostringstream o;
        o << "group " << e.group << " node " << e.node
          << ": applied seq " << e.seq << " after seq " << last;
        violation(o.str());
        break;
      }
      // Rule 2 (no invention) + rule 1 (content): the applied write must
      // be exactly the root-stamped one.
      const auto it = g.by_seq.find(e.seq);
      if (it == g.by_seq.end()) {
        std::ostringstream o;
        o << "group " << e.group << " node " << e.node << ": applied seq "
          << e.seq << " that the root never issued";
        violation(o.str());
      } else if (it->second.var != e.var || it->second.value != e.value) {
        std::ostringstream o;
        o << "group " << e.group << " node " << e.node << " seq " << e.seq
          << ": applied var " << e.var << "=" << e.value
          << " but the root sequenced var " << it->second.var << "="
          << it->second.value;
        violation(o.str());
      }
      // Rule 3 (gaps): every skipped sequence number must be this member's
      // own mutex-data echo, dropped by hardware blocking.
      for (std::uint64_t s = last + 1; s < e.seq; ++s) {
        const auto sit = g.by_seq.find(s);
        if (sit == g.by_seq.end()) continue;  // root gap reported on apply
        if (!sit->second.is_mutex_data || sit->second.origin != e.node) {
          std::ostringstream o;
          o << "group " << e.group << " node " << e.node << ": skipped seq "
            << s << " (var " << sit->second.var << " from node "
            << sit->second.origin
            << "), which is not its own mutex-data echo";
          violation(o.str());
        }
      }
      g.last_applied[e.node] = e.seq;
      break;
    }

    default:
      break;  // other kinds carry no GWC obligation
  }
}

std::string GwcChecker::report() const {
  if (violations_.empty()) return "GWC ok";
  std::ostringstream o;
  o << violations_.size() << " GWC violation(s):";
  for (const auto& v : violations_) o << "\n  " << v;
  return o.str();
}

}  // namespace optsync::trace
