#include "trace/chrome_export.hpp"

#include <set>
#include <string>

#include "stats/json.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::trace {

namespace {

using stats::JsonWriter;

double to_us(sim::Time t) { return static_cast<double>(t) / 1000.0; }

void common_fields(JsonWriter& w, const Event& e, std::string_view ph,
                   std::string_view name, std::string_view cat) {
  w.value("name", name)
      .value("cat", cat)
      .value("ph", ph)
      .value("ts", to_us(e.t))
      .value("pid", 0)
      .value("tid", static_cast<std::uint64_t>(e.node));
}

void write_args(JsonWriter& w, const Event& e) {
  w.begin_object("args")
      .value("kind", event_kind_name(e.kind))
      .value("label", e.label)
      .value("group", e.group)
      .value("var", e.var)
      .value("seq", e.seq)
      .value("value", e.value);
  if (e.origin != ~0u) w.value("origin", e.origin);
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Recorder& rec) {
  write_chrome_trace(out, rec, nullptr);
}

void write_chrome_trace(std::ostream& out, const Recorder& rec,
                        const telemetry::Tracer* tracer) {
  JsonWriter w(out);
  w.begin_object();
  w.value("displayTimeUnit", "ns");
  w.begin_array("traceEvents");

  // Thread-name metadata so Perfetto labels each row "node N".
  std::set<std::uint32_t> nodes;
  rec.for_each([&](const Event& e) { nodes.insert(e.node); });
  w.begin_object()
      .value("name", "process_name")
      .value("ph", "M")
      .value("pid", 0)
      .begin_object("args")
      .value("name", "optsync simulation")
      .end_object()
      .end_object();
  for (const auto n : nodes) {
    w.begin_object()
        .value("name", "thread_name")
        .value("ph", "M")
        .value("pid", 0)
        .value("tid", static_cast<std::uint64_t>(n))
        .begin_object("args")
        .value("name", std::string("node ") + std::to_string(n))
        .end_object()
        .end_object();
  }

  rec.for_each([&](const Event& e) {
    w.begin_object();
    switch (e.kind) {
      // Duration slices: a hold span opens at acquire and closes at
      // release; a speculative window opens at speculate-begin and closes
      // at commit or rollback. Perfetto renders an unmatched B (a span
      // that fell off the ring, or was cut by simulation end) as an
      // unfinished slice, which is the honest picture.
      case EventKind::kLockAcquire:
        common_fields(w, e, "B", "hold", "lock");
        write_args(w, e);
        break;
      case EventKind::kLockRelease:
        common_fields(w, e, "E", "hold", "lock");
        break;
      case EventKind::kSpeculateBegin:
        common_fields(w, e, "B", "speculate", "mutex");
        write_args(w, e);
        break;
      case EventKind::kSpeculateCommit:
        common_fields(w, e, "E", "speculate", "mutex");
        break;
      case EventKind::kRollback:
        // Close the speculative window, then drop an instant marker so the
        // rollback stands out even when zoomed far out.
        common_fields(w, e, "E", "speculate", "mutex");
        w.end_object();
        w.begin_object();
        common_fields(w, e, "i", "rollback", "mutex");
        w.value("s", "t");
        write_args(w, e);
        break;
      default: {
        const char* cat = "dsm";
        if (e.kind == EventKind::kSchedDispatch) cat = "sched";
        if (e.kind == EventKind::kNetDeliver) cat = "net";
        common_fields(w, e, "i", event_kind_name(e.kind), cat);
        w.value("s", "t");
        write_args(w, e);
      }
    }
    w.end_object();
  });

  if (tracer != nullptr) {
    // Causal spans as async begin/end pairs: one async track per trace id,
    // so Perfetto threads an op's legs together across nodes. The request
    // umbrella is named after the op class for quick filtering.
    tracer->for_each_span([&](const telemetry::Span& s) {
      if (s.end == 0) return;  // still open at export time
      std::string name;
      if (s.kind == telemetry::SpanKind::kRequest) {
        name = "op:";
        name += tracer->op_of(s.trace);
      } else {
        name = telemetry::span_kind_name(s.kind);
      }
      for (const std::string_view ph : {"b", "e"}) {
        w.begin_object()
            .value("name", name)
            .value("cat", "span")
            .value("ph", ph)
            .value("ts", to_us(ph == "b" ? s.start : s.end))
            .value("pid", 0)
            .value("tid", static_cast<std::uint64_t>(s.node))
            .value("id", s.trace);
        if (ph == "b") {
          w.begin_object("args")
              .value("span", s.id)
              .value("parent", s.parent)
              .end_object();
        }
        w.end_object();
      }
    });
  }

  w.end_array();
  // Ring accounting: lets a reader see whether the trace is the whole run
  // or only the most recent capacity() events.
  w.begin_object("otherData")
      .value("events_recorded", rec.total_recorded())
      .value("events_dropped_by_ring", rec.dropped())
      .end_object();
  w.end_object();
  out << "\n";
}

}  // namespace optsync::trace
