// Group Write Consistency invariant checker over the trace stream.
//
// GWC's contract (paper §2.2): every member of a group observes all writes
// to the group's variables in one total order — the root's sequence — and
// speculative writes by non-holders never become visible. The checker
// replays the flight-recorder stream and proves both properties for a run:
//
//   1. Total order: each member applies sequenced writes in strictly
//      increasing sequence order, and what it applies (variable, value)
//      is exactly what the root stamped with that sequence number.
//   2. No invented writes: a member never applies a sequence number the
//      root did not issue.
//   3. Gaps are only echoes: a member may skip a sequence number only when
//      hardware blocking dropped its own mutex-data echo — i.e. the skipped
//      write is mutex-data originated by that very member.
//   4. No speculative visibility: every sequenced mutex-data write was
//      originated by the node holding the guard lock at sequencing time
//      (tracked from the sequenced lock-word values themselves).
//
// Attach with install(): the checker registers a streaming sink on the
// recorder, so it sees every event even if the ring later evicts it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace optsync::trace {

class GwcChecker {
 public:
  /// Registers this checker as a sink on `rec`. The checker must outlive
  /// the recorder's use.
  void install(Recorder& rec);

  /// Feeds one event (install() wires this up automatically).
  void on_event(const Event& e);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  /// Violations joined for a test failure message; "GWC ok" when clean.
  [[nodiscard]] std::string report() const;

  [[nodiscard]] std::uint64_t writes_checked() const {
    return writes_checked_;
  }

 private:
  struct Sequenced {
    std::uint32_t var = 0;
    std::int64_t value = 0;
    std::uint32_t origin = ~0u;
    bool is_lock = false;
    bool is_mutex_data = false;
  };
  struct GroupState {
    std::map<std::uint64_t, Sequenced> by_seq;
    std::map<std::uint32_t, std::uint64_t> last_applied;  // node -> seq
    bool lock_held = false;
    std::uint32_t holder = ~0u;
  };

  void violation(std::string msg);

  std::map<std::uint32_t, GroupState> groups_;
  std::vector<std::string> violations_;
  std::uint64_t writes_checked_ = 0;
};

}  // namespace optsync::trace
