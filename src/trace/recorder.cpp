#include "trace/recorder.hpp"

#include "simkern/assert.hpp"

namespace optsync::trace {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSchedDispatch:
      return "sched-dispatch";
    case EventKind::kNetDeliver:
      return "net-deliver";
    case EventKind::kRootSequence:
      return "root-sequence";
    case EventKind::kRootDropSpec:
      return "root-drop-spec";
    case EventKind::kNodeApply:
      return "node-apply";
    case EventKind::kEchoDrop:
      return "echo-drop";
    case EventKind::kLockRequest:
      return "lock-request";
    case EventKind::kLockAcquire:
      return "lock-acquire";
    case EventKind::kLockRelease:
      return "lock-release";
    case EventKind::kSpeculateBegin:
      return "speculate-begin";
    case EventKind::kSpeculateCommit:
      return "speculate-commit";
    case EventKind::kRollback:
      return "rollback";
    case EventKind::kHistoryVeto:
      return "history-veto";
    case EventKind::kFrameFlush:
      return "frame-flush";
  }
  return "?";
}

Recorder::Recorder(std::size_t capacity) : ring_(capacity) {
  OPTSYNC_EXPECT(capacity > 0);
}

void Recorder::record(const Event& e) {
  recorded_ += 1;
  for (const auto& sink : sinks_) sink(e);
  if (size_ == ring_.size()) {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    dropped_ += 1;
  } else {
    ring_[(head_ + size_) % ring_.size()] = e;
    size_ += 1;
  }
}

void Recorder::for_each(const std::function<void(const Event&)>& fn) const {
  for (std::size_t i = 0; i < size_; ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

std::uint64_t Recorder::count(EventKind k) const {
  std::uint64_t n = 0;
  for_each([&](const Event& e) {
    if (e.kind == k) n += 1;
  });
  return n;
}

void Recorder::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace optsync::trace
