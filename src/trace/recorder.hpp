// Protocol flight recorder: a fixed-capacity ring buffer of typed events.
//
// Every layer of the stack reports what it did — scheduler dispatch, network
// delivery, reliable-channel outcomes, root sequencing, member application,
// and OptimisticMutex state transitions — into one time-ordered stream. Two
// consumers exist today: the Chrome trace-event exporter (chrome_export.hpp)
// renders the stream for Perfetto, and the GWC invariant checker
// (gwc_checker.hpp) replays it to prove total-order and no-speculative-
// visibility properties after a fault soak.
//
// The buffer is a ring so a long simulation can fly with the recorder
// always on: when full, the oldest events fall off (counted in dropped()).
// Sinks see every event at record time, before any wraparound, so checkers
// never miss one. The simulation is single-threaded; no locking anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "simkern/time.hpp"

namespace optsync::trace {

enum class EventKind : std::uint8_t {
  kSchedDispatch,    ///< simkern popped and ran an event
  kNetDeliver,       ///< network delivered (or dropped/expired) a message
  kRootSequence,     ///< root stamped a group write with a sequence number
  kRootDropSpec,     ///< root filtered a speculative mutex-data write
  kNodeApply,        ///< member applied a sequenced write to its replica
  kEchoDrop,         ///< member hardware-blocked its own mutex-data echo
  kLockRequest,      ///< mutex issued a lock-request write
  kLockAcquire,      ///< mutex confirmed ownership (section entry)
  kLockRelease,      ///< mutex issued the release write
  kSpeculateBegin,   ///< optimistic path entered the section speculatively
  kSpeculateCommit,  ///< speculation survived: writes are legitimate
  kRollback,         ///< interrupt proved another holder: state restored
  kHistoryVeto,      ///< EWMA history predicted contention; regular path
  kFrameFlush,       ///< root shipped a multicast frame (seq = first seq,
                     ///< value = writes in the frame, label = flush cause)
};

[[nodiscard]] std::string_view event_kind_name(EventKind k);

/// One recorded event. Fields are overloaded per kind (see the emitters):
///   node   — acting node (member, mutex owner, or delivery destination)
///   group  — DSM group id, or 0 where meaningless
///   var    — DSM variable id, or source node for kNetDeliver
///   seq    — root sequence number (kRootSequence / kNodeApply / kEchoDrop)
///   value  — written word, or message bytes for kNetDeliver
///   origin — node whose write this is (sequencing/apply), or ~0u
///   label  — static string: var-kind or message tag ("lock", "mutex-data",
///            "data", "lock-down", "rel-ack", ...). Must outlive the
///            recorder; all call sites pass literals or interned names.
struct Event {
  sim::Time t = 0;
  EventKind kind = EventKind::kSchedDispatch;
  std::uint32_t node = 0;
  std::uint32_t group = 0;
  std::uint32_t var = 0;
  std::uint64_t seq = 0;
  std::int64_t value = 0;
  std::uint32_t origin = ~0u;
  std::string_view label;
};

class Recorder {
 public:
  using Sink = std::function<void(const Event&)>;

  explicit Recorder(std::size_t capacity = 1 << 16);

  /// Appends an event; evicts the oldest when the ring is full. All sinks
  /// observe the event immediately, before eviction can lose it.
  void record(const Event& e);

  /// Registers a streaming consumer (e.g. the GWC checker).
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Visits retained events oldest-first.
  void for_each(const std::function<void(const Event&)>& fn) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Count of retained events matching a kind (test helper).
  [[nodiscard]] std::uint64_t count(EventKind k) const;

  void clear();

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Sink> sinks_;
};

}  // namespace optsync::trace
