#include "shard/client.hpp"

#include "simkern/assert.hpp"

namespace optsync::shard {

sim::Process Client::read(dsm::NodeId n, Key key,
                          std::optional<dsm::Word>* out, ReadOptions opts) {
  return store_->read_op(n, key, out, opts.level);
}

sim::Process Client::write(dsm::NodeId n, Key key, dsm::Word value,
                           WriteOptions opts) {
  (void)opts;
  return store_->write_op(n, key, value);
}

sim::Process Client::txn(dsm::NodeId n, TxnRequest req, TxnResult* result,
                         ReadOptions opts) {
  const int classes = (!req.puts.empty() ? 1 : 0) +
                      (!req.adds.empty() ? 1 : 0) +
                      (!req.reads.empty() ? 1 : 0);
  OPTSYNC_EXPECT(classes == 1);
  if (!req.puts.empty()) {
    return store_->multi_put_op(n, std::move(req.puts));
  }
  if (!req.adds.empty()) {
    return store_->multi_rmw_op(n, std::move(req.adds), req.delta);
  }
  OPTSYNC_EXPECT(result != nullptr);
  return store_->multi_get_op(n, std::move(req.reads), &result->values,
                              opts.level);
}

}  // namespace optsync::shard
