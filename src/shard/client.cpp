#include "shard/client.hpp"

#include "simkern/assert.hpp"

namespace optsync::shard {

sim::Process Client::sync_route(dsm::NodeId n, std::vector<Key> keys) {
  for (;;) {
    bool stale = false;
    for (const Key key : keys) {
      const ShardedStore::Route r = store_->route(key, view_epoch_);
      if (!r.stale) continue;
      stale = true;
      ++stats_.redirects;
      co_await store_->redirect_probe(n, r.believed).join();
    }
    if (const std::uint64_t now = store_->dir_epoch(); now != view_epoch_) {
      view_epoch_ = now;
      ++stats_.refreshes;
    }
    if (!stale) co_return;
    // Re-check at the refreshed epoch: the directory can move again while
    // a probe is in flight.
  }
}

sim::Process Client::read(dsm::NodeId n, Key key,
                          std::optional<dsm::Word>* out, ReadOptions opts) {
  if (store_->elastic()) co_await sync_route(n, std::vector<Key>(1, key)).join();
  co_await store_->read_op(n, key, out, opts.level).join();
}

sim::Process Client::write(dsm::NodeId n, Key key, dsm::Word value,
                           WriteOptions opts) {
  (void)opts;
  if (store_->elastic()) co_await sync_route(n, std::vector<Key>(1, key)).join();
  co_await store_->write_op(n, key, value).join();
}

sim::Process Client::txn(dsm::NodeId n, TxnRequest req, TxnResult* result,
                         ReadOptions opts) {
  const int classes = (!req.puts.empty() ? 1 : 0) +
                      (!req.adds.empty() ? 1 : 0) +
                      (!req.reads.empty() ? 1 : 0);
  OPTSYNC_EXPECT(classes == 1);
  if (store_->elastic()) {
    std::vector<Key> keys;
    if (!req.puts.empty()) {
      keys.reserve(req.puts.size());
      for (const auto& [key, value] : req.puts) {
        (void)value;
        keys.push_back(key);
      }
    } else {
      keys = !req.adds.empty() ? req.adds : req.reads;
    }
    co_await sync_route(n, std::move(keys)).join();
  }
  if (!req.puts.empty()) {
    co_await store_->multi_put_op(n, std::move(req.puts)).join();
    co_return;
  }
  if (!req.adds.empty()) {
    co_await store_->multi_rmw_op(n, std::move(req.adds), req.delta).join();
    co_return;
  }
  OPTSYNC_EXPECT(result != nullptr);
  co_await store_
      ->multi_get_op(n, std::move(req.reads), &result->values, opts.level)
      .join();
}

}  // namespace optsync::shard
