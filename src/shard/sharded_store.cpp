#include "shard/sharded_store.hpp"

#include <algorithm>
#include <string>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"
#include "stats/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::shard {

namespace {
ShardMap make_map(const ShardedStoreConfig& cfg) {
  return cfg.policy == ShardMap::Policy::kHash
             ? ShardMap::hashed(cfg.shards)
             : ShardMap::ranged(cfg.shards, cfg.key_space);
}
}  // namespace

ShardedStore::ShardedStore(dsm::DsmSystem& sys, ShardedStoreConfig cfg)
    : sys_(&sys), cfg_(cfg), map_(make_map(cfg)) {
  OPTSYNC_EXPECT(cfg.shards >= 1);
  OPTSYNC_EXPECT(cfg.slots_per_shard >= 1);
  OPTSYNC_EXPECT(cfg.root_stride >= 1);
  txn_stats_.name = "svc.txn";

  std::vector<dsm::NodeId> members;
  members.reserve(sys.node_count());
  for (dsm::NodeId i = 0; i < sys.node_count(); ++i) members.push_back(i);

  shards_.reserve(cfg.shards);
  for (std::uint32_t s = 0; s < cfg.shards; ++s) {
    auto sh = std::make_unique<Shard>(cfg.history_decay);
    sh->root = members[(static_cast<std::size_t>(s) * cfg.root_stride) %
                       members.size()];
    sh->group = sys.create_group(members, sh->root);
    const std::string base = "svc.s" + std::to_string(s);
    sh->lock = sys.define_lock(base + ".lock", sh->group);
    sh->version =
        sys.define_mutex_data(base + ".ver", sh->group, sh->lock, 0);
    sh->slot_keys.reserve(cfg.slots_per_shard);
    sh->slot_values.reserve(cfg.slots_per_shard);
    for (std::uint32_t k = 0; k < cfg.slots_per_shard; ++k) {
      const std::string slot = base + ".k" + std::to_string(k);
      sh->slot_keys.push_back(
          sys.define_mutex_data(slot + ".key", sh->group, sh->lock, 0));
      sh->slot_values.push_back(
          sys.define_mutex_data(slot + ".val", sh->group, sh->lock, 0));
    }
    sh->stats.name = base + ".lock";
    core::OptimisticMutex::Config mcfg;
    mcfg.history_threshold = cfg.history_threshold;
    mcfg.history_decay = cfg.history_decay;
    mcfg.lock_stats = &sh->stats;
    sh->mux = std::make_unique<core::OptimisticMutex>(sys, sh->lock, mcfg);
    sh->queue = std::make_unique<sync::GwcQueueLock>(sys, sh->lock);
    shards_.push_back(std::move(sh));
  }
}

std::size_t ShardedStore::slot_of(Key key) const {
  // Second mix constant decorrelates the slot choice from the shard
  // choice; without it every key of a hash shard would land in one slot.
  return static_cast<std::size_t>(sim::SplitMix64(key ^ 0x510750ull).next() %
                                  cfg_.slots_per_shard);
}

std::optional<dsm::Word> ShardedStore::get(dsm::NodeId n, Key key) const {
  OPTSYNC_EXPECT(key != 0);
  const Shard& sh = *shards_[map_.shard_of(key)];
  const auto& node = sys_->node(n);
  const std::size_t slot = slot_of(key);
  if (node.read(sh.slot_keys[slot]) == static_cast<dsm::Word>(key)) {
    return node.read(sh.slot_values[slot]);
  }
  return std::nullopt;
}

void ShardedStore::write_slot(Shard& sh, dsm::DsmNode& node, Key key,
                              dsm::Word value) {
  const std::size_t slot = slot_of(key);
  node.write(sh.slot_keys[slot], static_cast<dsm::Word>(key));
  node.write(sh.slot_values[slot], value);
}

sim::Process ShardedStore::put(dsm::NodeId n, Key key, dsm::Word value) {
  OPTSYNC_EXPECT(key != 0);
  Shard& sh = *shards_[map_.shard_of(key)];
  bool use_queue = false;
  switch (cfg_.lock) {
    case LockPolicy::kQueue:
      use_queue = true;
      break;
    case LockPolicy::kOptimistic:
      use_queue = false;
      break;
    case LockPolicy::kAdaptive: {
      // The §4 decision, per shard: fold the lock's busyness (local copy,
      // zero traffic) into the shard's EWMA, then pick the protocol.
      const dsm::Word lw = sys_->node(n).read(sh.lock);
      const bool busy = dsm::lock_held(lw) && !dsm::lock_granted_to(lw, n);
      sh.history.observe(busy ? 1.0 : 0.0);
      use_queue = sh.history.indicates_usage(cfg_.history_threshold);
      break;
    }
  }
  return use_queue ? put_queued(sh, n, key, value)
                   : put_optimistic(sh, n, key, value);
}

sim::Process ShardedStore::put_queued(Shard& sh, dsm::NodeId n, Key key,
                                      dsm::Word value) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  co_await sh.queue->acquire(n).join();
  const sim::Time acquired = sched.now();
  auto& node = sys_->node(n);
  co_await sim::delay(sched, cfg_.write_compute_ns);
  write_slot(sh, node, key, value);
  node.write(sh.version, node.read(sh.version) + 1);
  sh.queue->release(n);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kCs, n,
                       acquired, sched.now());
    }
  }
  // The queue path feeds the same per-shard flight record the optimistic
  // mutex feeds through Config::lock_stats, so one LockStats describes the
  // shard lock whatever mix of protocols served it.
  ++sh.stats.acquisitions;
  sh.stats.acquire_ns.record(static_cast<std::int64_t>(acquired - started));
  sh.stats.hold_ns.record(static_cast<std::int64_t>(sched.now() - acquired));
  ++sh.committed;
  ++sh.queue_ops;
}

sim::Process ShardedStore::put_optimistic(Shard& sh, dsm::NodeId n, Key key,
                                          dsm::Word value) {
  core::Section sec;
  sec.shared_writes.reserve(2 * cfg_.slots_per_shard + 1);
  for (std::uint32_t k = 0; k < cfg_.slots_per_shard; ++k) {
    sec.shared_writes.push_back(sh.slot_keys[k]);
    sec.shared_writes.push_back(sh.slot_values[k]);
  }
  sec.shared_writes.push_back(sh.version);
  sec.body = [this, &sh, key, value](dsm::DsmNode& node) -> sim::Process {
    co_await sim::delay(sys_->scheduler(), cfg_.write_compute_ns);
    write_slot(sh, node, key, value);
    node.write(sh.version, node.read(sh.version) + 1);
  };
  co_await sh.mux->execute(n, std::move(sec)).join();
  ++sh.committed;
  ++sh.optimistic_ops;
}

core::MultiGroupMutex& ShardedStore::txn_mutex(
    const std::vector<ShardId>& ids) {
  auto it = txn_muxes_.find(ids);
  if (it == txn_muxes_.end()) {
    std::vector<dsm::VarId> locks;
    locks.reserve(ids.size());
    for (const ShardId s : ids) locks.push_back(shards_[s]->lock);
    it = txn_muxes_
             .emplace(ids, std::make_unique<core::MultiGroupMutex>(
                               *sys_, std::move(locks)))
             .first;
  }
  return *it->second;
}

sim::Process ShardedStore::multi_put(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs) {
  OPTSYNC_EXPECT(!kvs.empty());
  std::vector<ShardId> ids;
  ids.reserve(kvs.size());
  for (const auto& [key, value] : kvs) {
    OPTSYNC_EXPECT(key != 0);
    (void)value;
    ids.push_back(map_.shard_of(key));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  core::MultiGroupMutex& mux = txn_mutex(ids);
  return multi_put_impl(n, std::move(kvs), std::move(ids), mux);
}

sim::Process ShardedStore::multi_put_impl(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs,
    std::vector<ShardId> ids, core::MultiGroupMutex& mux) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  co_await mux.acquire(n).join();
  const sim::Time acquired = sched.now();
  auto& node = sys_->node(n);
  co_await sim::delay(
      sched, cfg_.write_compute_ns * static_cast<sim::Duration>(kvs.size()));
  for (const auto& [key, value] : kvs) {
    write_slot(*shards_[map_.shard_of(key)], node, key, value);
  }
  // One version bump (and one ledger commit) per involved shard, however
  // many of the transaction's keys landed on it.
  for (const ShardId s : ids) {
    Shard& sh = *shards_[s];
    node.write(sh.version, node.read(sh.version) + 1);
  }
  mux.release(n);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kCs, n,
                       acquired, sched.now());
    }
  }
  for (const ShardId s : ids) ++shards_[s]->committed;
  ++txn_stats_.acquisitions;
  txn_stats_.acquire_ns.record(static_cast<std::int64_t>(acquired - started));
  txn_stats_.hold_ns.record(static_cast<std::int64_t>(sched.now() - acquired));
}

void ShardedStore::fill_report(stats::ServiceReport& report) {
  if (report.shards.size() < shards_.size()) {
    report.shards.resize(shards_.size());
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    auto& entry = report.shards[s];
    entry.shard = s;
    entry.lock_name = sh.stats.name;
    const auto& root = sys_->root_of(sh.group).stats();
    sh.stats.root_speculative_drops = root.speculative_drops;
    entry.lock = sh.stats;
    entry.sequenced = root.sequenced;
    entry.frames = root.frames;
    entry.max_frame_writes = root.max_frame_writes;
    entry.version = sys_->node(sh.root).read(sh.version);
    entry.committed_writes = sh.committed;
  }
  report.messages = sys_->network().stats().messages;
  report.faults = stats::collect_fault_report(sys_->network().stats(),
                                              sys_->reliable().stats());
}

void ShardedStore::register_telemetry(telemetry::Sampler& sampler,
                                      const stats::ServiceReport& live) {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard* sh = shards_[s].get();
    const telemetry::Labels labels{{"shard", std::to_string(s)}};
    sampler.add_gauge("optsync_shard_backlog", labels, [&live, s] {
      if (s >= live.shards.size()) return 0.0;
      std::uint64_t issued = 0;
      std::uint64_t completed = 0;
      for (const auto& o : live.shards[s].ops) {
        issued += o.issued;
        completed += o.completed;
      }
      return static_cast<double>(issued) - static_cast<double>(completed);
    });
    sampler.add_gauge("optsync_lock_queue", labels, [this, sh] {
      return static_cast<double>(
          sys_->root_of(sh->group).lock_state(sh->lock).queue.size());
    });
    sampler.add_gauge("optsync_frame_pending", labels, [this, sh] {
      return static_cast<double>(sys_->root_of(sh->group).pending_writes());
    });
    sampler.add_rate("optsync_shard_goodput_rps", labels, [&live, s] {
      if (s >= live.shards.size()) return 0.0;
      std::uint64_t completed = 0;
      for (const auto& o : live.shards[s].ops) completed += o.completed;
      return static_cast<double>(completed);
    });
  }
  sampler.add_rate("optsync_messages_per_s", {}, [this] {
    return static_cast<double>(sys_->network().stats().messages);
  });
  sampler.add_rate("optsync_retransmits_per_s", {}, [this] {
    return static_cast<double>(sys_->reliable().stats().retransmits);
  });
}

bool ShardedStore::replicas_converged() const {
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    const auto& members = sys_->group(sh.group).members();
    std::vector<dsm::VarId> vars = sh.slot_keys;
    vars.insert(vars.end(), sh.slot_values.begin(), sh.slot_values.end());
    vars.push_back(sh.version);
    for (const dsm::VarId v : vars) {
      const dsm::Word expect = sys_->node(members[0]).read(v);
      for (const dsm::NodeId m : members) {
        if (sys_->node(m).read(v) != expect) return false;
      }
    }
  }
  return true;
}

dsm::VarId ShardedStore::lock_var(ShardId s) const {
  return shards_.at(s)->lock;
}

dsm::GroupId ShardedStore::group_of(ShardId s) const {
  return shards_.at(s)->group;
}

std::uint64_t ShardedStore::committed_writes(ShardId s) const {
  return shards_.at(s)->committed;
}

dsm::Word ShardedStore::version(ShardId s) const {
  const Shard& sh = *shards_.at(s);
  return sys_->node(sh.root).read(sh.version);
}

const stats::LockStats& ShardedStore::lock_stats(ShardId s) const {
  return shards_.at(s)->stats;
}

double ShardedStore::shard_history(ShardId s) const {
  return shards_.at(s)->history.value();
}

std::uint64_t ShardedStore::queue_path_ops(ShardId s) const {
  return shards_.at(s)->queue_ops;
}

std::uint64_t ShardedStore::optimistic_path_ops(ShardId s) const {
  return shards_.at(s)->optimistic_ops;
}

}  // namespace optsync::shard
