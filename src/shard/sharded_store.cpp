#include "shard/sharded_store.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"
#include "stats/metrics.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::shard {

namespace {
ShardMap make_map(const ShardedStoreConfig& cfg) {
  return cfg.policy == ShardMap::Policy::kHash
             ? ShardMap::hashed(cfg.shards)
             : ShardMap::ranged(cfg.shards, cfg.key_space);
}

/// Forwarded-op rendezvous: the origin parks here until the completion ack
/// from the executing root arrives.
struct FwdRendezvous {
  explicit FwdRendezvous(sim::Scheduler& s) : sig(s) {}
  sim::Signal sig;
  bool done = false;
};

sim::Process ack_when_done(dsm::DsmSystem& sys, sim::Process op,
                           dsm::NodeId server, dsm::NodeId client,
                           std::uint32_t reply_bytes,
                           std::shared_ptr<FwdRendezvous> rv) {
  co_await op.join();
  sys.send_direct(server, client, reply_bytes, "svc-fwd-ack", [rv] {
    rv->done = true;
    rv->sig.notify_all();
  });
}

/// Already-completed Process for paths that did all their work
/// synchronously (warm-lease snapshot serves).
sim::Process completed_process() { co_return; }
}  // namespace

ShardedStore::ShardedStore(dsm::DsmSystem& sys, ShardedStoreConfig cfg)
    : sys_(&sys), cfg_(cfg), map_(make_map(cfg)) {
  OPTSYNC_EXPECT(cfg.shards >= 1);
  OPTSYNC_EXPECT(cfg.slots_per_shard >= 1);
  OPTSYNC_EXPECT(cfg.root_stride >= 1);
  txn_stats_.name = "svc.txn";

  // Group membership: every node (full replication, the default) or the
  // server prefix [0, server_nodes). server_nodes covering the whole
  // machine normalizes to full replication — there would be no clients.
  std::uint32_t span = cfg.lease.server_nodes;
  if (span == 0 || span >= sys.node_count()) {
    span = sys.node_count();
    cfg_.lease.server_nodes = 0;
  }
  std::vector<dsm::NodeId> members;
  members.reserve(span);
  for (dsm::NodeId i = 0; i < span; ++i) members.push_back(i);

  // Elastic mode appends dedicated hot groups after the base shards; the
  // base ShardMap never routes to them — only pins do.
  const std::uint32_t total_shards =
      cfg.shards + (cfg.elastic.enabled ? cfg.elastic.hot_groups : 0);

  // Root placement: members[(s * root_stride) % members]. A stride sharing
  // a factor with the member count cycles through only members/gcd distinct
  // nodes — shard roots would silently stack on a few nodes while the rest
  // sit idle. Reject that at construction; an even wrap (stride coprime
  // with the member count) is still allowed when shards > members.
  {
    const std::size_t m = members.size();
    const std::size_t g =
        std::gcd(static_cast<std::size_t>(cfg.root_stride) % m, m);
    const std::size_t distinct = m / g;
    OPTSYNC_EXPECT(distinct == m || total_shards <= distinct);
  }

  if (cfg.elastic.enabled && span == sys.node_count()) {
    // Full replication: directory moves execute on a reserved control node
    // (one instruction stream per node — the Fig. 4 rule); callers must
    // keep regular traffic off it. Partial mode uses proxy chains instead.
    control_node_ = cfg.elastic.control_node == dsm::kNoNode
                        ? members.back()
                        : cfg.elastic.control_node;
    OPTSYNC_EXPECT(control_node_ < sys.node_count());
  }

  shards_.reserve(total_shards);
  for (std::uint32_t s = 0; s < total_shards; ++s) {
    auto sh = std::make_unique<Shard>(cfg.history_decay);
    sh->root = members[(static_cast<std::size_t>(s) * cfg.root_stride) %
                       members.size()];
    sh->group = sys.create_group(members, sh->root);
    const std::string base = "svc.s" + std::to_string(s);
    sh->lock = sys.define_lock(base + ".lock", sh->group);
    sh->version =
        sys.define_mutex_data(base + ".ver", sh->group, sh->lock, 0);
    sh->slot_keys.reserve(cfg.slots_per_shard);
    sh->slot_values.reserve(cfg.slots_per_shard);
    for (std::uint32_t k = 0; k < cfg.slots_per_shard; ++k) {
      const std::string slot = base + ".k" + std::to_string(k);
      sh->slot_keys.push_back(
          sys.define_mutex_data(slot + ".key", sh->group, sh->lock, 0));
      sh->slot_values.push_back(
          sys.define_mutex_data(slot + ".val", sh->group, sh->lock, 0));
    }
    sh->stats.name = base + ".lock";
    // Heatmap rows: one per orec stripe, plus the elastic directory stripe
    // (index slots_per_shard) so dir-epoch conflicts land somewhere real.
    sh->stripe_conflicts.assign(cfg.slots_per_shard + 1, 0);
    core::OptimisticMutex::Config mcfg;
    mcfg.history_threshold = cfg.history_threshold;
    mcfg.history_decay = cfg.history_decay;
    mcfg.lock_stats = &sh->stats;
    sh->mux = std::make_unique<core::OptimisticMutex>(sys, sh->lock, mcfg);
    sh->queue = std::make_unique<sync::GwcQueueLock>(sys, sh->lock);
    shards_.push_back(std::move(sh));
  }

  // The txn layer stripes orecs by slot (stripe == slot index), so any
  // committed slot write bumps exactly the orec its readers validated.
  // Elastic fabrics get one extra stripe per site — the DIRECTORY stripe
  // (index slots_per_shard), bumped only by elastic_reassign. OCC writers
  // read it per involved shard, so a directory move dooms transactions
  // speculated against the old epoch without single-key puts (which bump
  // slot stripes constantly) ever inducing a false conflict.
  cfg_.txn.tuning.orec_stripes =
      cfg.slots_per_shard + (cfg.elastic.enabled ? 1 : 0);
  txn_mgr_ = std::make_unique<txn::TxnManager>(sys, cfg_.txn.tuning);
  for (std::uint32_t s = 0; s < total_shards; ++s) {
    Shard& sh = *shards_[s];
    sh.site = txn_mgr_->add_site("svc.s" + std::to_string(s), sh.group,
                                 sh.lock, sh.version);
    OPTSYNC_ENSURE(sh.site == static_cast<txn::SiteId>(s));
  }

  // Partial replication: stand up the lease tier (after the txn layer, so
  // the orec vars exist to be watched) and the proxy chains.
  if (span < sys.node_count()) {
    lease_mgr_ =
        std::make_unique<LeaseManager>(sys, cfg_.lease, cfg.slots_per_shard);
    for (std::uint32_t s = 0; s < total_shards; ++s) {
      Shard& sh = *shards_[s];
      lease_mgr_->register_shard(s, sh.group, sh.root, sh.slot_keys,
                                 sh.slot_values,
                                 txn_mgr_->orecs().site_vars(sh.site),
                                 sh.version);
    }
    proxies_.resize(sys.node_count());
  }

  if (cfg.coalesce.max_writes != 0 || cfg.coalesce.max_ns >= 0) {
    const auto& base = sys.config();
    const std::uint32_t mw = cfg.coalesce.max_writes != 0
                                 ? cfg.coalesce.max_writes
                                 : base.coalesce_max_writes;
    const sim::Duration mn =
        cfg.coalesce.max_ns >= 0
            ? static_cast<sim::Duration>(cfg.coalesce.max_ns)
            : base.coalesce_max_ns;
    for (auto& shp : shards_) {
      sys.root_of(shp->group).set_coalesce(mw, mn);
    }
  }
}

std::size_t ShardedStore::slot_of(Key key) const {
  // Second mix constant decorrelates the slot choice from the shard
  // choice; without it every key of a hash shard would land in one slot.
  return static_cast<std::size_t>(sim::SplitMix64(key ^ 0x510750ull).next() %
                                  cfg_.slots_per_shard);
}

std::optional<dsm::Word> ShardedStore::local_get(dsm::NodeId n,
                                                 Key key) const {
  OPTSYNC_EXPECT(key != 0);
  const Shard& sh = *shards_[map_.shard_of(key)];
  const auto& node = sys_->node(n);
  const std::size_t slot = slot_of(key);
  if (node.read(sh.slot_keys[slot]) == static_cast<dsm::Word>(key)) {
    return node.read(sh.slot_values[slot]);
  }
  return std::nullopt;
}

std::optional<dsm::Word> ShardedStore::get(dsm::NodeId n, Key key) const {
  // Pre-Client shim. It predates partial replication, so it requires a
  // member node — a client has no replica to read; use Client::read.
  OPTSYNC_EXPECT(is_member(n));
  return local_get(n, key);
}

sim::Process ShardedStore::put(dsm::NodeId n, Key key, dsm::Word value) {
  return write_op(n, key, value);
}

sim::Process ShardedStore::multi_put(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs) {
  return multi_put_op(n, std::move(kvs));
}

sim::Process ShardedStore::multi_rmw(dsm::NodeId n, std::vector<Key> keys,
                                     dsm::Word delta) {
  return multi_rmw_op(n, std::move(keys), delta);
}

sim::Process ShardedStore::multi_get(
    dsm::NodeId n, std::vector<Key> keys,
    std::vector<std::optional<dsm::Word>>* out) {
  return multi_get_op(n, std::move(keys), out,
                      ConsistencyLevel::kLinearizable);
}

// --- Client entry points ---------------------------------------------------

sim::Process ShardedStore::read_op(dsm::NodeId n, Key key,
                                   std::optional<dsm::Word>* out,
                                   ConsistencyLevel level) {
  OPTSYNC_EXPECT(key != 0);
  OPTSYNC_EXPECT(out != nullptr);
  if (access_observer_) access_observer_(map_.shard_of(key), key);
  if (is_member(n)) {
    // Members read their local replica at every level — that is
    // eagersharing's contract; consistency levels distinguish clients.
    *out = local_get(n, key);
    co_return;
  }
  const ShardId s = map_.shard_of(key);
  co_await lease_mgr_
      ->client_read(n, s, slot_of(key), key, out,
                    level != ConsistencyLevel::kLinearizable)
      .join();
}

sim::Process ShardedStore::write_op(dsm::NodeId n, Key key, dsm::Word value) {
  OPTSYNC_EXPECT(key != 0);
  if (access_observer_) access_observer_(map_.shard_of(key), key);
  if (!partial()) return put_direct(n, key, value);
  const ShardId s = map_.shard_of(key);
  const dsm::NodeId server = shards_[s]->root;
  const std::uint32_t req = cfg_.lease.ctrl_bytes + cfg_.lease.data_bytes;
  return forward_op(n, s, req, cfg_.lease.ctrl_bytes,
                    [this, server, key, value] {
                      return put_direct(server, key, value);
                    });
}

sim::Process ShardedStore::multi_put_op(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs) {
  OPTSYNC_EXPECT(!kvs.empty());
  if (access_observer_) {
    for (const auto& [key, value] : kvs) {
      (void)value;
      access_observer_(map_.shard_of(key), key);
    }
  }
  if (!partial()) return multi_put_direct(n, std::move(kvs));
  std::vector<Key> keys;
  keys.reserve(kvs.size());
  for (const auto& [key, value] : kvs) {
    (void)value;
    keys.push_back(key);
  }
  const ShardId primary = involved_shards(keys).front();
  const dsm::NodeId server = shards_[primary]->root;
  const auto req = static_cast<std::uint32_t>(
      cfg_.lease.ctrl_bytes + cfg_.lease.data_bytes * kvs.size());
  return forward_op(n, primary, req, cfg_.lease.ctrl_bytes,
                    [this, server, kvs = std::move(kvs)]() mutable {
                      return multi_put_direct(server, std::move(kvs));
                    });
}

sim::Process ShardedStore::multi_rmw_op(dsm::NodeId n, std::vector<Key> keys,
                                        dsm::Word delta) {
  OPTSYNC_EXPECT(!keys.empty());
  if (access_observer_) {
    for (const Key key : keys) access_observer_(map_.shard_of(key), key);
  }
  if (!partial()) return multi_rmw_direct(n, std::move(keys), delta);
  const ShardId primary = involved_shards(keys).front();
  const dsm::NodeId server = shards_[primary]->root;
  const auto req = static_cast<std::uint32_t>(
      cfg_.lease.ctrl_bytes + cfg_.lease.data_bytes * keys.size());
  return forward_op(n, primary, req, cfg_.lease.ctrl_bytes,
                    [this, server, delta, keys = std::move(keys)]() mutable {
                      return multi_rmw_direct(server, std::move(keys), delta);
                    });
}

sim::Process ShardedStore::multi_get_op(
    dsm::NodeId n, std::vector<Key> keys,
    std::vector<std::optional<dsm::Word>>* out, ConsistencyLevel level) {
  OPTSYNC_EXPECT(!keys.empty());
  OPTSYNC_EXPECT(out != nullptr);
  if (access_observer_) {
    for (const Key key : keys) access_observer_(map_.shard_of(key), key);
  }
  if (!partial()) return multi_get_direct(n, std::move(keys), out);

  if (!is_member(n) && level != ConsistencyLevel::kLinearizable) {
    // kSnapshot warm path: when EVERY key's stripe holds a valid lease the
    // whole read set is served locally with zero messages. Stripe == orec
    // stripe, so the leased epochs are exactly the orec versions an OCC
    // multi_get would validate; each is within the lease staleness bound.
    bool all_warm = true;
    std::vector<std::vector<std::size_t>> by_shard(shards_.size());
    for (const Key key : keys) {
      by_shard[map_.shard_of(key)].push_back(slot_of(key));
    }
    for (ShardId s = 0; s < shards_.size() && all_warm; ++s) {
      if (!by_shard[s].empty()) {
        all_warm = lease_mgr_->warm(n, s, by_shard[s]);
      }
    }
    if (all_warm) {
      out->assign(keys.size(), std::nullopt);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        lease_mgr_->serve_warm(n, map_.shard_of(keys[i]), slot_of(keys[i]),
                               keys[i], &(*out)[i]);
      }
      return completed_process();
    }
  }

  // Cold (or linearizable, or a member): the full OCC snapshot protocol,
  // executed at the primary shard's root through its proxy chain.
  const ShardId primary = involved_shards(keys).front();
  const dsm::NodeId server = shards_[primary]->root;
  const auto req = static_cast<std::uint32_t>(
      cfg_.lease.ctrl_bytes + cfg_.lease.data_bytes * keys.size());
  const auto reply = static_cast<std::uint32_t>(
      cfg_.lease.ctrl_bytes + cfg_.lease.data_bytes * keys.size());
  return forward_op(n, primary, req, reply,
                    [this, server, out, keys = std::move(keys)]() mutable {
                      return multi_get_direct(server, std::move(keys), out);
                    });
}

// --- partial-replication routing -------------------------------------------

sim::Process ShardedStore::chain_after(sim::Process prev, OpThunk thunk) {
  co_await prev.join();
  co_await thunk().join();
}

sim::Process ShardedStore::enqueue_proxy(dsm::NodeId server, OpThunk thunk) {
  // One mutating instruction stream per node: each proxied op starts only
  // after the previous one completed — the Fig. 4 nesting rule, upheld on
  // root nodes however many clients forward to them.
  ProxySlot& p = proxies_[server];
  p.tail = p.active ? chain_after(p.tail, std::move(thunk)) : thunk();
  p.active = true;
  return p.tail;
}

sim::Process ShardedStore::forward_op(dsm::NodeId n, ShardId primary,
                                      std::uint32_t req_bytes,
                                      std::uint32_t reply_bytes,
                                      OpThunk thunk) {
  const dsm::NodeId server = shards_[primary]->root;
  lease_mgr_->note_forwarded(primary);
  if (n == server) {
    co_await enqueue_proxy(server, std::move(thunk)).join();
    co_return;
  }
  auto rv = std::make_shared<FwdRendezvous>(sys_->scheduler());
  sys_->send_direct(
      n, server, req_bytes, "svc-fwd",
      [this, n, server, reply_bytes, rv, thunk = std::move(thunk)]() mutable {
        (void)ack_when_done(*sys_, enqueue_proxy(server, std::move(thunk)),
                            server, n, reply_bytes, rv);
      });
  while (!rv->done) co_await rv->sig.wait();
}

// --- lock-policy write path ------------------------------------------------

void ShardedStore::write_slot(Shard& sh, dsm::DsmNode& node, Key key,
                              dsm::Word value) {
  const std::size_t slot = slot_of(key);
  node.write(sh.slot_keys[slot], static_cast<dsm::Word>(key));
  node.write(sh.slot_values[slot], value);
  // Every committed slot write bumps its orec stripe, so an OCC reader
  // that validated the stripe sees single-key puts as conflicts too.
  txn_mgr_->orecs().bump(node.id(), sh.site,
                         static_cast<std::uint32_t>(slot));
}

sim::Process ShardedStore::put_direct(dsm::NodeId n, Key key,
                                      dsm::Word value) {
  for (;;) {
    const ShardId sid = map_.shard_of(key);
    Shard& sh = *shards_[sid];
    bool use_queue = false;
    switch (cfg_.lock) {
      case LockPolicy::kQueue:
        use_queue = true;
        break;
      case LockPolicy::kOptimistic:
        use_queue = false;
        break;
      case LockPolicy::kAdaptive: {
        // The §4 decision, per shard: fold the lock's busyness (local copy,
        // zero traffic) into the shard's EWMA, then pick the protocol.
        const dsm::Word lw = sys_->node(n).read(sh.lock);
        const bool busy = dsm::lock_held(lw) && !dsm::lock_granted_to(lw, n);
        sh.history.observe(busy ? 1.0 : 0.0);
        use_queue = sh.history.indicates_usage(cfg_.history_threshold);
        break;
      }
    }
    bool moved = false;
    if (use_queue) {
      co_await put_queued(sh, sid, n, key, value, &moved).join();
    } else {
      co_await put_optimistic(sh, sid, n, key, value, &moved).join();
    }
    if (!moved) co_return;
    // The directory reassigned the key between routing and lock grant: the
    // acquired lock was the wrong shard's and nothing was written. Count
    // the re-route against the old owner and retry at the new one.
    ++sh.redirects;
  }
}

sim::Process ShardedStore::put_queued(Shard& sh, ShardId sid, dsm::NodeId n,
                                      Key key, dsm::Word value, bool* moved) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  co_await sh.queue->acquire(n).join();
  if (cfg_.elastic.enabled && map_.shard_of(key) != sid) {
    sh.queue->release(n);
    *moved = true;
    co_return;
  }
  const sim::Time acquired = sched.now();
  auto& node = sys_->node(n);
  co_await sim::delay(sched, cfg_.write_compute_ns);
  write_slot(sh, node, key, value);
  node.write(sh.version, node.read(sh.version) + 1);
  sh.queue->release(n);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kCs, n,
                       acquired, sched.now());
    }
  }
  // The queue path feeds the same per-shard flight record the optimistic
  // mutex feeds through Config::lock_stats, so one LockStats describes the
  // shard lock whatever mix of protocols served it.
  ++sh.stats.acquisitions;
  sh.stats.acquire_ns.record(static_cast<std::int64_t>(acquired - started));
  sh.stats.hold_ns.record(static_cast<std::int64_t>(sched.now() - acquired));
  ++sh.committed;
  ++sh.queue_ops;
}

sim::Process ShardedStore::put_optimistic(Shard& sh, ShardId sid,
                                          dsm::NodeId n, Key key,
                                          dsm::Word value, bool* moved) {
  core::Section sec;
  sec.shared_writes.reserve(3 * cfg_.slots_per_shard + 1);
  for (std::uint32_t k = 0; k < cfg_.slots_per_shard; ++k) {
    sec.shared_writes.push_back(sh.slot_keys[k]);
    sec.shared_writes.push_back(sh.slot_values[k]);
  }
  // write_slot also bumps the slot's orec stripe inside the body.
  const auto& orec_vars = txn_mgr_->orecs().site_vars(sh.site);
  sec.shared_writes.insert(sec.shared_writes.end(), orec_vars.begin(),
                           orec_vars.end());
  sec.shared_writes.push_back(sh.version);
  sec.body = [this, &sh, sid, key, value,
              moved](dsm::DsmNode& node) -> sim::Process {
    // Re-checked inside the body: the section may retry after rollback,
    // and the directory can move the key during any wait. The last
    // (committed) execution's verdict is the one that sticks.
    if (cfg_.elastic.enabled && map_.shard_of(key) != sid) {
      *moved = true;
      co_return;
    }
    *moved = false;
    co_await sim::delay(sys_->scheduler(), cfg_.write_compute_ns);
    write_slot(sh, node, key, value);
    node.write(sh.version, node.read(sh.version) + 1);
  };
  co_await sh.mux->execute(n, std::move(sec)).join();
  if (*moved) co_return;
  ++sh.committed;
  ++sh.optimistic_ops;
}

core::MultiGroupMutex& ShardedStore::txn_mutex(
    const std::vector<ShardId>& ids) {
  auto it = txn_muxes_.find(ids);
  if (it == txn_muxes_.end()) {
    std::vector<dsm::VarId> locks;
    locks.reserve(ids.size());
    for (const ShardId s : ids) locks.push_back(shards_[s]->lock);
    it = txn_muxes_
             .emplace(ids, std::make_unique<core::MultiGroupMutex>(
                               *sys_, std::move(locks)))
             .first;
  }
  return *it->second;
}

std::vector<ShardId> ShardedStore::involved_shards(
    const std::vector<Key>& keys) const {
  std::vector<ShardId> ids;
  ids.reserve(keys.size());
  for (const Key key : keys) {
    OPTSYNC_EXPECT(key != 0);
    ids.push_back(map_.shard_of(key));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void ShardedStore::record_txn_flight(sim::Time started, sim::Time acquired) {
  const sim::Time now = sys_->scheduler().now();
  ++txn_stats_.acquisitions;
  txn_stats_.acquire_ns.record(static_cast<std::int64_t>(acquired - started));
  txn_stats_.hold_ns.record(static_cast<std::int64_t>(now - acquired));
}

sim::Process ShardedStore::multi_put_direct(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs) {
  std::vector<Key> keys;
  keys.reserve(kvs.size());
  for (const auto& [key, value] : kvs) {
    (void)value;
    keys.push_back(key);
  }
  std::vector<ShardId> ids = involved_shards(keys);
  if (cfg_.txn.mode == TxnMode::kOcc) {
    return multi_put_occ(n, std::move(kvs), std::move(ids));
  }
  core::MultiGroupMutex& mux = txn_mutex(ids);
  return multi_put_impl(n, std::move(kvs), std::move(ids), mux);
}

sim::Process ShardedStore::multi_put_occ(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs,
    std::vector<ShardId> ids) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  auto& cm = txn_mgr_->contention();
  std::vector<Key> keys;
  if (cfg_.elastic.enabled) {
    keys.reserve(kvs.size());
    for (const auto& [key, value] : kvs) {
      (void)value;
      keys.push_back(key);
    }
  }
  std::uint32_t aborts = 0;
  for (;;) {
    // A directory move between attempts re-homes keys; route each attempt
    // against the live map so retries land on the new owners.
    if (cfg_.elastic.enabled) ids = involved_shards(keys);
    if (cm.should_fallback(aborts)) {
      // Abort budget exhausted: go irrevocable. The legacy path acquires
      // the same locks in the same ascending order, so progress is
      // guaranteed however hot the keys.
      cm.note_fallback();
      for (const ShardId s : ids) ++shards_[s]->txn_fallbacks;
      record_txn_fallback(n, ids, aborts);
      core::MultiGroupMutex& mux = txn_mutex(ids);
      co_await multi_put_impl(n, std::move(kvs), std::move(ids), mux).join();
      co_return;
    }
    txn::Txn t;
    txn_mgr_->begin(t, n);
    if (cfg_.elastic.enabled) {
      // Blind puts gain a read-set entry on each involved shard's
      // DIRECTORY orec stripe: elastic_reassign bumps it under the shard
      // locks, so a put speculated against the old epoch fails validation
      // (doomed, not lost) instead of publishing to a shard its key has
      // already left. Reading the directory stripe — not the slot stripes,
      // which every single-key put bumps — keeps static traffic free of
      // false conflicts.
      for (const ShardId s : ids) {
        Shard& sh = *shards_[s];
        (void)txn_mgr_->read_word(t, sh.site, cfg_.slots_per_shard,
                                  sh.version);
      }
    }
    const sim::Time spec_began = sched.now();
    for (const auto& [key, value] : kvs) {
      Shard& sh = *shards_[map_.shard_of(key)];
      const auto slot = static_cast<std::uint32_t>(slot_of(key));
      txn_mgr_->write_word(t, sh.site, slot, sh.slot_keys[slot],
                           static_cast<dsm::Word>(key));
      txn_mgr_->write_word(t, sh.site, slot, sh.slot_values[slot], value);
    }
    co_await sim::delay(
        sched, (cfg_.write_compute_ns + 2 * cfg_.txn.tuning.save_ns_per_var) *
                   static_cast<sim::Duration>(kvs.size()));
    if (auto* trc = sys_->tracer()) {
      if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
        trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kSpeculate,
                         n, spec_began, sched.now());
      }
    }
    txn::TxnManager::CommitResult res;
    co_await txn_mgr_->commit(t, &res).join();
    if (res.committed) {
      for (const ShardId s : ids) {
        ++shards_[s]->committed;
        ++shards_[s]->txn_commits;
      }
      record_txn_flight(started, res.locks_acquired_at);
      co_return;
    }
    ++aborts;
    for (const ShardId s : ids) {
      ++shards_[s]->txn_aborts;
      ++shards_[s]->txn_retries;
    }
    record_txn_abort(n, res, ids, aborts);
    co_await cm.backoff(n, aborts).join();
  }
}

sim::Process ShardedStore::multi_rmw_direct(dsm::NodeId n,
                                            std::vector<Key> keys,
                                            dsm::Word delta) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  std::vector<ShardId> ids = involved_shards(keys);
  auto& cm = txn_mgr_->contention();
  std::uint32_t aborts = 0;
  for (;;) {
    if (cfg_.elastic.enabled) ids = involved_shards(keys);
    if (cfg_.txn.mode == TxnMode::kLegacy || cm.should_fallback(aborts)) {
      if (cfg_.txn.mode == TxnMode::kOcc) {
        cm.note_fallback();
        for (const ShardId s : ids) ++shards_[s]->txn_fallbacks;
        record_txn_fallback(n, ids, aborts);
      }
      core::MultiGroupMutex& mux = txn_mutex(ids);
      co_await multi_rmw_impl(n, std::move(keys), std::move(ids), mux, delta)
          .join();
      co_return;
    }
    txn::Txn t;
    txn_mgr_->begin(t, n);
    if (cfg_.elastic.enabled) {
      // Same doomed-not-lost guard as multi_put_occ: a key ABSENT from its
      // (old) owner leaves no moved slot behind to bump, so the slot reads
      // below would not catch a concurrent directory move — the directory
      // stripe does.
      for (const ShardId s : ids) {
        Shard& sh = *shards_[s];
        (void)txn_mgr_->read_word(t, sh.site, cfg_.slots_per_shard,
                                  sh.version);
      }
    }
    const sim::Time spec_began = sched.now();
    auto& node = sys_->node(n);
    for (const Key key : keys) {
      Shard& sh = *shards_[map_.shard_of(key)];
      const auto slot = static_cast<std::uint32_t>(slot_of(key));
      // Read-your-writes: both reads are covered by this stripe's write
      // lock at commit, so the rmw is strictly serializable.
      const dsm::Word cur_key =
          txn_mgr_->read_word(t, sh.site, slot, sh.slot_keys[slot]);
      const dsm::Word cur_val =
          cur_key == static_cast<dsm::Word>(key)
              ? node.read(sh.slot_values[slot])
              : 0;
      txn_mgr_->write_word(t, sh.site, slot, sh.slot_keys[slot],
                           static_cast<dsm::Word>(key));
      txn_mgr_->write_word(t, sh.site, slot, sh.slot_values[slot],
                           cur_val + delta);
    }
    co_await sim::delay(
        sched, (cfg_.write_compute_ns + 2 * cfg_.txn.tuning.save_ns_per_var) *
                   static_cast<sim::Duration>(keys.size()));
    if (auto* trc = sys_->tracer()) {
      if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
        trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kSpeculate,
                         n, spec_began, sched.now());
      }
    }
    txn::TxnManager::CommitResult res;
    co_await txn_mgr_->commit(t, &res).join();
    if (res.committed) {
      for (const ShardId s : ids) {
        ++shards_[s]->committed;
        ++shards_[s]->txn_commits;
      }
      record_txn_flight(started, res.locks_acquired_at);
      co_return;
    }
    ++aborts;
    for (const ShardId s : ids) {
      ++shards_[s]->txn_aborts;
      ++shards_[s]->txn_retries;
    }
    record_txn_abort(n, res, ids, aborts);
    co_await cm.backoff(n, aborts).join();
  }
}

sim::Process ShardedStore::multi_rmw_impl(dsm::NodeId n, std::vector<Key> keys,
                                          std::vector<ShardId> ids,
                                          core::MultiGroupMutex& mux,
                                          dsm::Word delta) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  core::MultiGroupMutex* m = &mux;
  for (;;) {
    co_await m->acquire(n).join();
    if (!cfg_.elastic.enabled) break;
    // The irrevocable path holds the owners' locks across the compute; if
    // the directory moved a key while we queued, release and re-acquire
    // the correct (ascending-ordered) set — never write under the wrong
    // shard's lock.
    std::vector<ShardId> now_ids = involved_shards(keys);
    if (now_ids == ids) break;
    m->release(n);
    ids = std::move(now_ids);
    m = &txn_mutex(ids);
  }
  const sim::Time acquired = sched.now();
  auto& node = sys_->node(n);
  co_await sim::delay(
      sched, cfg_.write_compute_ns * static_cast<sim::Duration>(keys.size()));
  for (const Key key : keys) {
    Shard& sh = *shards_[map_.shard_of(key)];
    const std::size_t slot = slot_of(key);
    const dsm::Word cur =
        node.read(sh.slot_keys[slot]) == static_cast<dsm::Word>(key)
            ? node.read(sh.slot_values[slot])
            : 0;
    write_slot(sh, node, key, cur + delta);
  }
  for (const ShardId s : ids) {
    Shard& sh = *shards_[s];
    node.write(sh.version, node.read(sh.version) + 1);
  }
  m->release(n);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kCs, n,
                       acquired, sched.now());
    }
  }
  for (const ShardId s : ids) ++shards_[s]->committed;
  record_txn_flight(started, acquired);
}

sim::Process ShardedStore::multi_get_direct(
    dsm::NodeId n, std::vector<Key> keys,
    std::vector<std::optional<dsm::Word>>* out) {
  std::vector<ShardId> ids = involved_shards(keys);
  auto& cm = txn_mgr_->contention();
  auto& node = sys_->node(n);
  std::uint32_t aborts = 0;
  for (;;) {
    if (cfg_.elastic.enabled) ids = involved_shards(keys);
    if (cfg_.txn.mode == TxnMode::kLegacy || cm.should_fallback(aborts)) {
      // Irrevocable snapshot: read under every involved shard lock.
      if (cfg_.txn.mode == TxnMode::kOcc) {
        cm.note_fallback();
        for (const ShardId s : ids) ++shards_[s]->txn_fallbacks;
        record_txn_fallback(n, ids, aborts);
      }
      core::MultiGroupMutex* mux = &txn_mutex(ids);
      for (;;) {
        co_await mux->acquire(n).join();
        if (!cfg_.elastic.enabled) break;
        std::vector<ShardId> now_ids = involved_shards(keys);
        if (now_ids == ids) break;
        // The directory moved a key while we queued: the locks held are
        // the wrong set. Release and chase the new owners.
        mux->release(n);
        ids = std::move(now_ids);
        mux = &txn_mutex(ids);
      }
      out->clear();
      for (const Key key : keys) {
        out->push_back(local_get(n, key));
      }
      mux->release(n);
      co_return;
    }
    txn::Txn t;
    txn_mgr_->begin(t, n);
    std::vector<std::optional<dsm::Word>> snap;
    snap.reserve(keys.size());
    for (const Key key : keys) {
      Shard& sh = *shards_[map_.shard_of(key)];
      const auto slot = static_cast<std::uint32_t>(slot_of(key));
      const dsm::Word cur_key =
          txn_mgr_->read_word(t, sh.site, slot, sh.slot_keys[slot]);
      if (cur_key == static_cast<dsm::Word>(key)) {
        snap.emplace_back(node.read(sh.slot_values[slot]));
      } else {
        snap.emplace_back(std::nullopt);
      }
    }
    // Empty write set: commit takes no locks, just validates the read-set
    // orecs and charges the per-entry cost.
    txn::TxnManager::CommitResult res;
    co_await txn_mgr_->commit(t, &res).join();
    if (res.committed) {
      *out = std::move(snap);
      co_return;
    }
    ++aborts;
    for (const ShardId s : ids) {
      ++shards_[s]->txn_aborts;
      ++shards_[s]->txn_retries;
    }
    record_txn_abort(n, res, ids, aborts);
    co_await cm.backoff(n, aborts).join();
  }
}

sim::Process ShardedStore::multi_put_impl(
    dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs,
    std::vector<ShardId> ids, core::MultiGroupMutex& mux) {
  auto& sched = sys_->scheduler();
  const sim::Time started = sched.now();
  core::MultiGroupMutex* m = &mux;
  if (cfg_.elastic.enabled) {
    std::vector<Key> keys;
    keys.reserve(kvs.size());
    for (const auto& [key, value] : kvs) {
      (void)value;
      keys.push_back(key);
    }
    for (;;) {
      co_await m->acquire(n).join();
      std::vector<ShardId> now_ids = involved_shards(keys);
      if (now_ids == ids) break;
      m->release(n);
      ids = std::move(now_ids);
      m = &txn_mutex(ids);
    }
  } else {
    co_await m->acquire(n).join();
  }
  const sim::Time acquired = sched.now();
  auto& node = sys_->node(n);
  co_await sim::delay(
      sched, cfg_.write_compute_ns * static_cast<sim::Duration>(kvs.size()));
  for (const auto& [key, value] : kvs) {
    write_slot(*shards_[map_.shard_of(key)], node, key, value);
  }
  // One version bump (and one ledger commit) per involved shard, however
  // many of the transaction's keys landed on it.
  for (const ShardId s : ids) {
    Shard& sh = *shards_[s];
    node.write(sh.version, node.read(sh.version) + 1);
  }
  m->release(n);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kCs, n,
                       acquired, sched.now());
    }
  }
  for (const ShardId s : ids) ++shards_[s]->committed;
  ++txn_stats_.acquisitions;
  txn_stats_.acquire_ns.record(static_cast<std::int64_t>(acquired - started));
  txn_stats_.hold_ns.record(static_cast<std::int64_t>(sched.now() - acquired));
}

// --- elastic fabric --------------------------------------------------------

ShardedStore::Route ShardedStore::route(Key key, std::uint64_t epoch) const {
  Route r;
  r.owner = map_.shard_of(key);
  if (epoch == map_.version()) {
    r.believed = r.owner;
    return r;
  }
  for (auto it = map_history_.rbegin(); it != map_history_.rend(); ++it) {
    if (it->version() == epoch) {
      r.believed = it->shard_of(key);
      r.stale = r.believed != r.owner;
      return r;
    }
  }
  // Epoch aged out of the bounded history: we can't prove the client's
  // routing was right, so force one refresh round trip.
  r.believed = r.owner;
  r.stale = true;
  return r;
}

sim::Process ShardedStore::redirect_probe(dsm::NodeId n, ShardId believed) {
  Shard& sh = *shards_.at(believed);
  ++sh.redirects;
  if (n == sh.root) co_return;
  auto rv = std::make_shared<FwdRendezvous>(sys_->scheduler());
  sys_->send_direct(n, sh.root, cfg_.lease.ctrl_bytes, "svc-redirect",
                    [this, n, root = sh.root, rv] {
                      sys_->send_direct(root, n, cfg_.lease.ctrl_bytes,
                                        "svc-redirect-ack", [rv] {
                                          rv->done = true;
                                          rv->sig.notify_all();
                                        });
                    });
  while (!rv->done) co_await rv->sig.wait();
}

void ShardedStore::apply_root_move(ShardId s, dsm::NodeId to) {
  Shard& sh = *shards_.at(s);
  sys_->reroot_group(sh.group, to);
  sh.root = to;
  ++sh.migrations;
  // Lease epochs are root-location independent (keyed per client/stripe);
  // only the directory's notion of where to fetch from changes.
  if (lease_mgr_) lease_mgr_->set_root(s, to);
}

sim::Process ShardedStore::reassign_body(dsm::NodeId exec, ShardId src,
                                         ShardId dst,
                                         std::function<bool(Key)> pred,
                                         std::function<void(ShardMap&)> mutate,
                                         std::uint64_t* moved_slots) {
  OPTSYNC_EXPECT(src != dst);
  auto& sched = sys_->scheduler();
  std::vector<ShardId> ids{src, dst};
  std::sort(ids.begin(), ids.end());
  core::MultiGroupMutex& mux = txn_mutex(ids);
  co_await mux.acquire(exec).join();
  Shard& from = *shards_[src];
  Shard& to = *shards_[dst];
  auto& node = sys_->node(exec);
  std::uint64_t moved = 0;
  for (std::uint32_t slot = 0; slot < cfg_.slots_per_shard; ++slot) {
    const dsm::Word k = node.read(from.slot_keys[slot]);
    if (k == 0 || !pred(static_cast<Key>(k))) continue;
    const dsm::Word v = node.read(from.slot_values[slot]);
    // slot_of is shard-independent, so the key keeps its slot index (and
    // with it its orec stripe and lease stripe) in the destination.
    node.write(to.slot_keys[slot], k);
    node.write(to.slot_values[slot], v);
    txn_mgr_->orecs().bump(exec, to.site, slot);
    node.write(from.slot_keys[slot], 0);
    node.write(from.slot_values[slot], 0);
    // The vacated slot changed too: an OCC reader holding its pre-move
    // value must revalidate (and re-route) rather than serve a key the
    // shard no longer owns.
    txn_mgr_->orecs().bump(exec, from.site, slot);
    ++moved;
  }
  co_await sim::delay(sched, cfg_.write_compute_ns *
                                 static_cast<sim::Duration>(moved + 1));
  // Bump both DIRECTORY stripes (index slots_per_shard): every OCC writer
  // reads them for its involved shards, so transactions speculated against
  // the old epoch fail validation wherever their keys sat — including keys
  // that were absent and left no moved slot behind. Slot stripes stay
  // untouched unless a slot actually moved, so static traffic never pays a
  // false conflict for the guard.
  txn_mgr_->orecs().bump(exec, from.site, cfg_.slots_per_shard);
  txn_mgr_->orecs().bump(exec, to.site, cfg_.slots_per_shard);
  // One write section per involved shard keeps the serializability ledger
  // exact: version words move in lockstep with committed counts.
  node.write(from.version, node.read(from.version) + 1);
  node.write(to.version, node.read(to.version) + 1);
  ++from.committed;
  ++to.committed;
  // Snapshot the outgoing epoch, then install the new one — still under
  // both shard locks, so no op ever sees a half-moved directory.
  map_history_.push_back(map_);
  if (map_history_.size() > kMapHistory) {
    map_history_.erase(map_history_.begin());
  }
  mutate(map_);
  mux.release(exec);
  if (moved_slots != nullptr) *moved_slots = moved;
}

sim::Process ShardedStore::elastic_reassign(
    ShardId src, ShardId dst, std::function<bool(Key)> pred,
    std::function<void(ShardMap&)> mutate, std::uint64_t* moved_slots) {
  OPTSYNC_EXPECT(cfg_.elastic.enabled);
  OPTSYNC_EXPECT(src < shards_.size());
  OPTSYNC_EXPECT(dst < shards_.size());
  if (partial()) {
    // Partial mode: every mutation flows through a proxy chain; the move
    // is one more op on the destination root's instruction stream. The
    // closures ride behind a shared_ptr and every owning object here is a
    // named local: GCC 12's coroutine lowering double-destroys init-captures
    // that move from frame parameters inside a co_await full expression,
    // which double-frees the std::function targets.
    const dsm::NodeId exec = shards_[dst]->root;
    auto fns = std::make_shared<
        std::pair<std::function<bool(Key)>, std::function<void(ShardMap&)>>>(
        std::move(pred), std::move(mutate));
    OpThunk thunk = [this, exec, src, dst, fns, moved_slots]() {
      return reassign_body(exec, src, dst, fns->first, fns->second,
                           moved_slots);
    };
    sim::Process queued = enqueue_proxy(exec, std::move(thunk));
    co_await queued.join();
    co_return;
  }
  // Full replication: the reserved control node is the mover's instruction
  // stream (the generator must keep regular traffic off it).
  OPTSYNC_EXPECT(control_node_ != dsm::kNoNode);
  co_await reassign_body(control_node_, src, dst, std::move(pred),
                         std::move(mutate), moved_slots)
      .join();
}

std::uint64_t ShardedStore::migrations(ShardId s) const {
  return shards_.at(s)->migrations;
}

std::uint64_t ShardedStore::splits(ShardId s) const {
  return shards_.at(s)->splits;
}

std::uint64_t ShardedStore::merges(ShardId s) const {
  return shards_.at(s)->merges;
}

std::uint64_t ShardedStore::promotions(ShardId s) const {
  return shards_.at(s)->promotions;
}

std::uint64_t ShardedStore::demotions(ShardId s) const {
  return shards_.at(s)->demotions;
}

std::uint64_t ShardedStore::redirects(ShardId s) const {
  return shards_.at(s)->redirects;
}

void ShardedStore::fill_report(stats::ServiceReport& report) {
  if (report.shards.size() < shards_.size()) {
    report.shards.resize(shards_.size());
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    auto& entry = report.shards[s];
    entry.shard = s;
    entry.lock_name = sh.stats.name;
    const auto& root = sys_->root_of(sh.group).stats();
    sh.stats.root_speculative_drops = root.speculative_drops;
    entry.lock = sh.stats;
    entry.sequenced = root.sequenced;
    entry.frames = root.frames;
    entry.max_frame_writes = root.max_frame_writes;
    entry.version = sys_->node(sh.root).read(sh.version);
    entry.committed_writes = sh.committed;
    entry.root_node = sh.root;  // effective placement, post-migration
    entry.migrations = sh.migrations;
    entry.splits = sh.splits;
    entry.merges = sh.merges;
    entry.promotions = sh.promotions;
    entry.demotions = sh.demotions;
    entry.redirects = sh.redirects;
    entry.txn_commits = sh.txn_commits;
    entry.txn_aborts = sh.txn_aborts;
    entry.txn_retries = sh.txn_retries;
    entry.txn_fallbacks = sh.txn_fallbacks;
    entry.aborts_read_clobber = sh.aborts_read_clobber;
    entry.aborts_validation = sh.aborts_validation;
    entry.aborts_dir_epoch = sh.aborts_dir_epoch;
    entry.stripe_conflicts = sh.stripe_conflicts;
    if (lease_mgr_) {
      const auto& c = lease_mgr_->counters(s);
      entry.lease_hits = c.hits;
      entry.lease_grants = c.grants;
      entry.lease_invalidations = c.invalidations;
      entry.remote_reads = c.remote_reads;
      entry.forwarded_ops = c.forwarded;
    }
  }
  report.messages = sys_->network().stats().messages;
  report.faults = stats::collect_fault_report(sys_->network().stats(),
                                              sys_->reliable().stats());
}

void ShardedStore::register_telemetry(telemetry::Sampler& sampler,
                                      const stats::ServiceReport& live) {
  sampler.set_help("optsync_shard_backlog",
                   "Requests issued but not yet completed, per shard");
  sampler.set_help("optsync_lock_queue",
                   "Waiters queued on the shard's root lock");
  sampler.set_help("optsync_frame_pending",
                   "Speculative write frames pending at the shard root");
  sampler.set_help("optsync_shard_goodput_rps",
                   "Completed requests per second, per shard");
  sampler.set_help("optsync_messages_per_s",
                   "Network messages per second across all nodes");
  sampler.set_help("optsync_retransmits_per_s",
                   "Reliable-channel retransmits per second");
  sampler.set_help("optsync_txn_commits_per_s",
                   "OCC transaction commits per second");
  sampler.set_help("optsync_txn_aborts_per_s",
                   "OCC transaction aborts per second (all reasons)");
  sampler.set_help("optsync_lease_hits_per_s",
                   "Reads served locally from a valid lease, per second");
  sampler.set_help("optsync_lease_invalidations_per_s",
                   "Lease invalidation round trips per second");
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Shard* sh = shards_[s].get();
    const telemetry::Labels labels{{"shard", std::to_string(s)}};
    sampler.add_gauge("optsync_shard_backlog", labels, [&live, s] {
      if (s >= live.shards.size()) return 0.0;
      std::uint64_t issued = 0;
      std::uint64_t completed = 0;
      for (const auto& o : live.shards[s].ops) {
        issued += o.issued;
        completed += o.completed;
      }
      return static_cast<double>(issued) - static_cast<double>(completed);
    });
    sampler.add_gauge("optsync_lock_queue", labels, [this, sh] {
      return static_cast<double>(
          sys_->root_of(sh->group).lock_state(sh->lock).queue.size());
    });
    sampler.add_gauge("optsync_frame_pending", labels, [this, sh] {
      return static_cast<double>(sys_->root_of(sh->group).pending_writes());
    });
    sampler.add_rate("optsync_shard_goodput_rps", labels, [&live, s] {
      if (s >= live.shards.size()) return 0.0;
      std::uint64_t completed = 0;
      for (const auto& o : live.shards[s].ops) completed += o.completed;
      return static_cast<double>(completed);
    });
  }
  sampler.add_rate("optsync_messages_per_s", {}, [this] {
    return static_cast<double>(sys_->network().stats().messages);
  });
  sampler.add_rate("optsync_retransmits_per_s", {}, [this] {
    return static_cast<double>(sys_->reliable().stats().retransmits);
  });
  sampler.add_rate("optsync_txn_commits_per_s", {}, [this] {
    return static_cast<double>(txn_mgr_->commits());
  });
  sampler.add_rate("optsync_txn_aborts_per_s", {}, [this] {
    return static_cast<double>(txn_mgr_->aborts());
  });
  if (lease_mgr_) {
    sampler.add_rate("optsync_lease_hits_per_s", {}, [this] {
      double v = 0.0;
      for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        v += static_cast<double>(lease_mgr_->counters(s).hits);
      }
      return v;
    });
    sampler.add_rate("optsync_lease_invalidations_per_s", {}, [this] {
      double v = 0.0;
      for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        v += static_cast<double>(lease_mgr_->counters(s).invalidations);
      }
      return v;
    });
  }
}

bool ShardedStore::replicas_converged() const {
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    const auto& members = sys_->group(sh.group).members();
    std::vector<dsm::VarId> vars = sh.slot_keys;
    vars.insert(vars.end(), sh.slot_values.begin(), sh.slot_values.end());
    const auto& orec_vars = txn_mgr_->orecs().site_vars(sh.site);
    vars.insert(vars.end(), orec_vars.begin(), orec_vars.end());
    vars.push_back(sh.version);
    for (const dsm::VarId v : vars) {
      const dsm::Word expect = sys_->node(members[0]).read(v);
      for (const dsm::NodeId m : members) {
        if (sys_->node(m).read(v) != expect) return false;
      }
    }
  }
  return true;
}

dsm::VarId ShardedStore::lock_var(ShardId s) const {
  return shards_.at(s)->lock;
}

dsm::GroupId ShardedStore::group_of(ShardId s) const {
  return shards_.at(s)->group;
}

dsm::NodeId ShardedStore::root_of(ShardId s) const {
  return shards_.at(s)->root;
}

std::uint64_t ShardedStore::committed_writes(ShardId s) const {
  return shards_.at(s)->committed;
}

dsm::Word ShardedStore::version(ShardId s) const {
  const Shard& sh = *shards_.at(s);
  return sys_->node(sh.root).read(sh.version);
}

const stats::LockStats& ShardedStore::lock_stats(ShardId s) const {
  return shards_.at(s)->stats;
}

double ShardedStore::shard_history(ShardId s) const {
  return shards_.at(s)->history.value();
}

std::uint64_t ShardedStore::queue_path_ops(ShardId s) const {
  return shards_.at(s)->queue_ops;
}

std::uint64_t ShardedStore::optimistic_path_ops(ShardId s) const {
  return shards_.at(s)->optimistic_ops;
}

std::uint64_t ShardedStore::txn_commits(ShardId s) const {
  return shards_.at(s)->txn_commits;
}

std::uint64_t ShardedStore::txn_aborts(ShardId s) const {
  return shards_.at(s)->txn_aborts;
}

std::uint64_t ShardedStore::txn_retries(ShardId s) const {
  return shards_.at(s)->txn_retries;
}

std::uint64_t ShardedStore::txn_fallbacks(ShardId s) const {
  return shards_.at(s)->txn_fallbacks;
}

std::uint64_t ShardedStore::aborts_read_clobber(ShardId s) const {
  return shards_.at(s)->aborts_read_clobber;
}

std::uint64_t ShardedStore::aborts_validation(ShardId s) const {
  return shards_.at(s)->aborts_validation;
}

std::uint64_t ShardedStore::aborts_dir_epoch(ShardId s) const {
  return shards_.at(s)->aborts_dir_epoch;
}

const std::vector<std::uint64_t>& ShardedStore::stripe_conflicts(
    ShardId s) const {
  return shards_.at(s)->stripe_conflicts;
}

void ShardedStore::record_txn_abort(dsm::NodeId n,
                                    const txn::TxnManager::CommitResult& res,
                                    const std::vector<ShardId>& ids,
                                    std::uint32_t attempt) {
  // Conflict location: the doom site for clobber aborts, the first failing
  // read-set entry for validation aborts (site id == shard id). A result
  // without attribution — possible only if an abort path predates the
  // conflict plumbing — falls back to the first involved shard, stripe 0.
  const ShardId conflict_shard =
      res.has_conflict ? static_cast<ShardId>(res.conflict_site) : ids.front();
  const std::uint32_t stripe = res.has_conflict ? res.conflict_stripe : 0;
  // Directory-epoch aborts are conflicts ON the directory stripe — the
  // reserved orec at index slots_per_shard that only elastic_reassign
  // bumps — whether the kill arrived as a clobber doom or as commit-time
  // validation.
  telemetry::AbortReason reason;
  if (res.has_conflict && stripe == cfg_.slots_per_shard) {
    reason = telemetry::AbortReason::kDirectoryEpoch;
  } else if (res.doomed_at_commit) {
    reason = telemetry::AbortReason::kReadSetClobber;
  } else {
    reason = telemetry::AbortReason::kCommitValidation;
  }
  for (const ShardId s : ids) {
    Shard& sh = *shards_[s];
    switch (reason) {
      case telemetry::AbortReason::kReadSetClobber:
        ++sh.aborts_read_clobber;
        break;
      case telemetry::AbortReason::kCommitValidation:
        ++sh.aborts_validation;
        break;
      case telemetry::AbortReason::kDirectoryEpoch:
        ++sh.aborts_dir_epoch;
        break;
      case telemetry::AbortReason::kFallbackEscalation:
        break;  // unreachable: not an abort reason here
    }
  }
  Shard& at = *shards_.at(conflict_shard);
  if (stripe < at.stripe_conflicts.size()) ++at.stripe_conflicts[stripe];
  if (auto* j = sys_->journal()) {
    const dsm::NodeId owner = res.conflict_origin != dsm::kNoNode
                                  ? res.conflict_origin
                                  : at.root;
    j->txn_abort(sys_->scheduler().now(), reason, n, conflict_shard, stripe,
                 owner, attempt);
  }
}

void ShardedStore::record_txn_fallback(dsm::NodeId n,
                                       const std::vector<ShardId>& ids,
                                       std::uint32_t attempts) {
  auto* j = sys_->journal();
  if (j == nullptr) return;
  // One escalation record per involved set; the deepest shard id is as
  // arbitrary as any — record the first (lowest) for determinism.
  j->txn_abort(sys_->scheduler().now(),
               telemetry::AbortReason::kFallbackEscalation, n, ids.front(),
               0, shards_[ids.front()]->root, attempts);
}

}  // namespace optsync::shard
