// ShardedStore: a KV namespace striped over N independent eagersharing
// groups — the service layer that turns the paper's single-group lock
// protocols into a horizontally scalable system.
//
// Single-root sequencing is the GWC scaling bottleneck: every write of a
// group funnels through one root. The store therefore creates one sharing
// group PER SHARD, each with its own root (spread round-robin over the
// machine so sequencing work is distributed), its own lock variable, a
// version word, and a set of KV slots. A ShardMap routes keys to shards;
// unrelated keys never meet a common sequencer or lock queue.
//
// Replication modes (LeaseConfig::server_nodes):
//   * full (0, the default) — every node is a member of every shard group;
//     reads are free everywhere, every write multicasts machine-wide.
//   * partial (N > 0) — groups span only nodes [0, N); the rest are pure
//     clients. Client reads go through the leased read-replica tier
//     (shard/lease.hpp): a warm lease serves locally with zero messages, a
//     miss round-trips to the shard root. Every mutating operation is
//     routed to the owning (primary) shard root's node and executed there
//     by that node's proxy chain — a per-node FIFO of operations, so the
//     root node stays one instruction stream (the Fig. 4 nesting rule)
//     however many clients forward to it.
//
// Per-shard lock protocol (LockPolicy):
//   * kQueue      — the §2 GWC queue lock (sync::GwcQueueLock);
//   * kOptimistic — core::OptimisticMutex, §4 speculation with the
//     per-node EWMA gate;
//   * kAdaptive   — a store-level per-shard core::UsageHistory observes
//     lock busyness at every write arrival and routes the write to the
//     queue-lock client when the shard looks contended, to the optimistic
//     mutex when it looks idle.
//
// Multi-key transactions that cross shards run, by default, on the
// optimistic txn::TxnManager layer (TxnConfig::mode == TxnMode::kOcc):
// speculate locally, detect conflicts through clobber interrupts and orec
// versions, then commit under the involved shard locks held only for
// validate+publish. Repeated aborts escalate to the irrevocable fallback —
// the TxnMode::kLegacy path, core::MultiGroupMutex held across the whole
// compute. Either way every involved shard's version word is bumped once,
// so the per-shard serializability ledger stays exact across shard
// boundaries, and every committed slot write bumps the slot's orec stripe,
// which is what multi_get/multi_rmw readers — and lease epochs — validate
// against.
//
// The operation surface lives on shard::Client (shard/client.hpp):
// read/write/txn with an explicit ConsistencyLevel. The get/put/multi_*
// methods below are the pre-Client API, kept as thin deprecated shims.
//
// Concurrency contract: operations on one node must not overlap (a node
// models one instruction stream — the Fig. 4 nesting rule). load::Generator
// serializes per node; direct callers must do the same. In partial mode the
// store's own proxy chains uphold the rule on root nodes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/multi_group_mutex.hpp"
#include "core/optimistic_mutex.hpp"
#include "core/usage_history.hpp"
#include "dsm/system.hpp"
#include "shard/lease.hpp"
#include "shard/shard_map.hpp"
#include "simkern/coro.hpp"
#include "stats/lock_stats.hpp"
#include "stats/service_report.hpp"
#include "sync/gwc_lock.hpp"
#include "telemetry/sampler.hpp"
#include "txn/txn.hpp"

namespace optsync::elastic {
class RootMigrator;
class DirectoryManager;
class ElasticController;
}  // namespace optsync::elastic

namespace optsync::shard {

class Client;

enum class LockPolicy { kQueue, kOptimistic, kAdaptive };

constexpr std::string_view lock_policy_name(LockPolicy p) {
  switch (p) {
    case LockPolicy::kQueue:
      return "queue";
    case LockPolicy::kOptimistic:
      return "optimistic";
    case LockPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

/// How cross-shard multi-key operations commit.
enum class TxnMode { kOcc, kLegacy };

constexpr std::string_view txn_mode_name(TxnMode m) {
  switch (m) {
    case TxnMode::kOcc:
      return "occ";
    case TxnMode::kLegacy:
      return "legacy";
  }
  return "?";
}

/// What a read is allowed to return (shard::Client::read / txn).
///   * kLinearizable — the value the shard root holds at serve time; a
///     client pays the full round trip on every read.
///   * kLeased       — serve from a valid local lease when warm (zero
///     messages), fetch a fresh lease otherwise. Bounded staleness: never
///     past the lease TTL, never a version the client saw invalidated.
///   * kSnapshot     — like kLeased for single reads; a multi-key read is
///     additionally served entirely from local leases only when EVERY
///     stripe is warm (epoch-consistent, the orec-validated snapshot),
///     else it falls back to the OCC multi_get protocol at the root.
/// On group-member nodes every level reads local replica memory — that is
/// eagersharing's contract.
enum class ConsistencyLevel { kLinearizable, kLeased, kSnapshot };

constexpr std::string_view consistency_level_name(ConsistencyLevel c) {
  switch (c) {
    case ConsistencyLevel::kLinearizable:
      return "linearizable";
    case ConsistencyLevel::kLeased:
      return "leased";
    case ConsistencyLevel::kSnapshot:
      return "snapshot";
  }
  return "?";
}

/// Cross-shard transaction commit configuration (nested — replaces the
/// old flat `txn_mode` + `txn` fields).
struct TxnConfig {
  /// kOcc speculates outside the locks and holds them only for
  /// validate+publish; kLegacy holds every involved lock across the whole
  /// compute (the pre-OCC MultiGroupMutex path, kept as baseline and as
  /// the OCC irrevocable fallback).
  TxnMode mode = TxnMode::kOcc;
  /// OCC layer tuning. `orec_stripes` is forced to slots_per_shard by the
  /// store (stripe == slot, so a slot write always bumps the orec its
  /// readers validated).
  txn::TxnConfig tuning;
};

/// Per-store override of the roots' coalescing knobs. Defaults inherit
/// the DsmConfig values untouched (the adaptive controller can still
/// retune per shard at runtime either way).
struct CoalesceConfig {
  std::uint32_t max_writes = 0;  ///< 0 = inherit DsmConfig
  std::int64_t max_ns = -1;      ///< < 0 = inherit DsmConfig
};

/// Elastic control-plane knobs (src/elastic/). Off by default: the fabric
/// is exactly the static store — no hot groups, no directory mutation, no
/// extra read-set entries on blind OCC puts.
struct ElasticConfig {
  bool enabled = false;
  /// Dedicated promotion groups appended after the base shards. A hot key
  /// pinned to one gets a private sequencer and lock — the "one-stripe
  /// group" of hot-key routing.
  std::uint32_t hot_groups = 2;
  /// Full replication only: the node directory moves execute on. It must
  /// not run regular traffic (one instruction stream per node — keep it
  /// out of the generator's node span); defaults to the last member.
  /// Partial replication routes moves through the destination root's
  /// proxy chain instead and ignores this.
  dsm::NodeId control_node = dsm::kNoNode;
};

struct ShardedStoreConfig {
  std::uint32_t shards = 4;
  std::uint32_t slots_per_shard = 8;  ///< KV slots (key, value var pairs)
  ShardMap::Policy policy = ShardMap::Policy::kHash;
  /// Range policy: the striped key domain [0, key_space).
  Key key_space = 1024;

  LockPolicy lock = LockPolicy::kAdaptive;
  /// Store-level adaptive gate (kAdaptive): route to the queue lock when
  /// the shard's EWMA busyness exceeds the threshold (paper's 0.30/0.95).
  double history_threshold = 0.30;
  double history_decay = 0.95;

  /// In-section compute per write (hash + slot scan).
  sim::Duration write_compute_ns = 800;

  TxnConfig txn;
  CoalesceConfig coalesce;
  /// Replication mode + leased read-replica tier (shard/lease.hpp).
  LeaseConfig lease;

  /// Shard s roots at members[(s * root_stride) % members.size()]; the
  /// default walks the machine so consecutive shards sequence on
  /// different nodes. Construction rejects strides whose cycle reaches
  /// fewer distinct nodes than there are shards while other members sit
  /// idle (gcd(stride, members) > 1 silently stacked roots before).
  std::uint32_t root_stride = 1;

  ElasticConfig elastic;
};

class ShardedStore {
 public:
  /// Creates one sharing group per shard. Group membership is all nodes
  /// (full replication) or nodes [0, lease.server_nodes) — see the header
  /// comment on replication modes.
  ShardedStore(dsm::DsmSystem& sys, ShardedStoreConfig cfg);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  [[nodiscard]] const ShardMap& map() const { return map_; }
  /// Total shard count, including elastic hot groups (report sizing,
  /// introspection loops). The base routing modulus is base_shards().
  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shards the base ShardMap policy routes over (the configured count;
  /// hot groups are reachable only through pins).
  [[nodiscard]] std::uint32_t base_shards() const { return map_.shards(); }
  [[nodiscard]] ShardId shard_of(Key key) const { return map_.shard_of(key); }
  /// The KV slot (== orec stripe == lease stripe at width 1) `key` maps to
  /// within its shard.
  [[nodiscard]] std::size_t slot_of(Key key) const;
  [[nodiscard]] dsm::DsmSystem& system() { return *sys_; }
  [[nodiscard]] const ShardedStoreConfig& config() const { return cfg_; }

  /// True in partial-replication mode (lease tier active).
  [[nodiscard]] bool partial() const { return lease_mgr_ != nullptr; }
  /// True when `n` is a member of the shard groups (always true in full
  /// replication).
  [[nodiscard]] bool is_member(dsm::NodeId n) const {
    return !partial() || n < cfg_.lease.server_nodes;
  }
  /// The lease tier, or nullptr under full replication.
  [[nodiscard]] LeaseManager* leases() { return lease_mgr_.get(); }
  [[nodiscard]] const LeaseManager* leases() const { return lease_mgr_.get(); }

  // --- versioned directory (elastic fabric) -------------------------------
  /// True when the elastic control plane is configured.
  [[nodiscard]] bool elastic() const { return cfg_.elastic.enabled; }
  /// Full replication: the reserved mover node (kNoNode when not elastic).
  [[nodiscard]] dsm::NodeId control_node() const { return control_node_; }
  /// Current directory epoch (== ShardMap::version of the live map).
  /// Clients snapshot this and compare on every routed op.
  [[nodiscard]] std::uint64_t dir_epoch() const { return map_.version(); }

  /// One routing decision checked against a client's directory epoch.
  struct Route {
    ShardId owner = 0;     ///< current directory's answer (always correct)
    ShardId believed = 0;  ///< what a client at `epoch` would have routed to
    bool stale = false;    ///< believed wrong (or epoch aged out of history)
  };
  [[nodiscard]] Route route(Key key, std::uint64_t epoch) const;

  /// The stale-directory penalty: one control round trip to the believed
  /// owner's root, answered with a redirect (counted against the believed
  /// shard). Free when `n` already is that root node.
  sim::Process redirect_probe(dsm::NodeId n, ShardId believed);

  // --- elastic counters (per shard; all zero on a static fabric) ----------
  [[nodiscard]] std::uint64_t migrations(ShardId s) const;
  [[nodiscard]] std::uint64_t splits(ShardId s) const;
  [[nodiscard]] std::uint64_t merges(ShardId s) const;
  [[nodiscard]] std::uint64_t promotions(ShardId s) const;
  [[nodiscard]] std::uint64_t demotions(ShardId s) const;
  [[nodiscard]] std::uint64_t redirects(ShardId s) const;

  /// Observer invoked with (current owner, key) at every keyed operation's
  /// routing point — the elastic key sketch taps accesses here. One
  /// observer (last set wins); null disables.
  void set_access_observer(std::function<void(ShardId, Key)> fn) {
    access_observer_ = std::move(fn);
  }

  // --- pre-Client API (deprecated shims) ---------------------------------
  /// Local read on node `n`. Full replication only — partial-replication
  /// reads need a consistency level; use shard::Client::read.
  [[deprecated("use shard::Client::read")]] std::optional<dsm::Word> get(
      dsm::NodeId n, Key key) const;

  /// Single-key write under the owning shard's lock.
  [[deprecated("use shard::Client::write")]] sim::Process put(
      dsm::NodeId n, Key key, dsm::Word value);

  /// Multi-key atomic write.
  [[deprecated("use shard::Client::txn")]] sim::Process multi_put(
      dsm::NodeId n, std::vector<std::pair<Key, dsm::Word>> kvs);

  /// Multi-key read-modify-write (+= delta; absent keys start at 0).
  [[deprecated("use shard::Client::txn")]] sim::Process multi_rmw(
      dsm::NodeId n, std::vector<Key> keys, dsm::Word delta);

  /// Multi-key consistent snapshot.
  [[deprecated("use shard::Client::txn")]] sim::Process multi_get(
      dsm::NodeId n, std::vector<Key> keys,
      std::vector<std::optional<dsm::Word>>* out);

  // --- end-of-run rollup -------------------------------------------------
  /// Fills the lock/root/ledger/lease side of `report` (resizing its shard
  /// list if needed): per-shard LockStats, root sequencing/frame rollup,
  /// final version vs. committed-write counts, lease counters,
  /// network/fault totals.
  void fill_report(stats::ServiceReport& report);

  /// True when every replica of every shard agrees on every slot and the
  /// version word (GWC convergence). Partial mode checks the members.
  [[nodiscard]] bool replicas_converged() const;

  /// Registers live per-shard gauges/rates on `sampler`: arrival backlog
  /// (issued - completed, read from `live` — the report the generator
  /// updates during the run), root lock-queue length, open-frame occupancy,
  /// goodput, plus global message/retransmit/lease rates. Both `sampler`
  /// and `live` must outlive the store's sampling window.
  void register_telemetry(telemetry::Sampler& sampler,
                          const stats::ServiceReport& live);

  // --- per-shard introspection (tests, benches) -------------------------
  [[nodiscard]] dsm::VarId lock_var(ShardId s) const;
  [[nodiscard]] dsm::GroupId group_of(ShardId s) const;
  [[nodiscard]] dsm::NodeId root_of(ShardId s) const;
  [[nodiscard]] std::uint64_t committed_writes(ShardId s) const;
  /// Final version word, read on the shard's root node.
  [[nodiscard]] dsm::Word version(ShardId s) const;
  [[nodiscard]] const stats::LockStats& lock_stats(ShardId s) const;
  /// Store-level adaptive-gate estimate for the shard (kAdaptive).
  [[nodiscard]] double shard_history(ShardId s) const;
  /// Writes routed to the queue-lock / optimistic client, per shard.
  [[nodiscard]] std::uint64_t queue_path_ops(ShardId s) const;
  [[nodiscard]] std::uint64_t optimistic_path_ops(ShardId s) const;
  /// Whole-chain flight record of cross-shard transactions ("svc.txn").
  [[nodiscard]] const stats::LockStats& txn_stats() const {
    return txn_stats_;
  }
  /// OCC layer introspection (orec versions, contention counters).
  [[nodiscard]] txn::TxnManager& txn_manager() { return *txn_mgr_; }
  /// Cross-shard transactions that committed / aborted / retried with this
  /// shard involved, plus escalations to the irrevocable fallback.
  [[nodiscard]] std::uint64_t txn_commits(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_aborts(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_retries(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_fallbacks(ShardId s) const;
  /// Abort-reason partition and per-stripe conflict heatmap (forensics;
  /// see the Shard field comments for the sum invariant).
  [[nodiscard]] std::uint64_t aborts_read_clobber(ShardId s) const;
  [[nodiscard]] std::uint64_t aborts_validation(ShardId s) const;
  [[nodiscard]] std::uint64_t aborts_dir_epoch(ShardId s) const;
  [[nodiscard]] const std::vector<std::uint64_t>& stripe_conflicts(
      ShardId s) const;

 private:
  friend class Client;
  friend class elastic::RootMigrator;
  friend class elastic::DirectoryManager;
  friend class elastic::ElasticController;

  struct Shard {
    explicit Shard(double decay) : history(decay) {}
    dsm::GroupId group = 0;
    dsm::NodeId root = 0;
    dsm::VarId lock = dsm::kNoVar;
    dsm::VarId version = dsm::kNoVar;
    std::vector<dsm::VarId> slot_keys;
    std::vector<dsm::VarId> slot_values;
    std::unique_ptr<core::OptimisticMutex> mux;
    std::unique_ptr<sync::GwcQueueLock> queue;
    core::UsageHistory history;  ///< store-level adaptive gate
    stats::LockStats stats;
    std::uint64_t committed = 0;  ///< write sections finished on this shard
    std::uint64_t queue_ops = 0;
    std::uint64_t optimistic_ops = 0;
    txn::SiteId site = 0;  ///< this shard's site in the txn layer
    std::uint64_t txn_commits = 0;
    std::uint64_t txn_aborts = 0;
    std::uint64_t txn_retries = 0;
    std::uint64_t txn_fallbacks = 0;
    // Abort-reason partition (telemetry/journal.hpp taxonomy). Bumped on
    // every involved shard, exactly like txn_aborts, so per shard and in
    // total: read_clobber + validation + dir_epoch == txn_aborts.
    std::uint64_t aborts_read_clobber = 0;
    std::uint64_t aborts_validation = 0;
    std::uint64_t aborts_dir_epoch = 0;
    /// Conflict heatmap: aborts attributed to each orec stripe OF THIS
    /// shard (bumped only on the conflict shard). Sized slots_per_shard+1;
    /// the last entry is the elastic directory stripe.
    std::vector<std::uint64_t> stripe_conflicts;
    // Elastic fabric counters (all stay zero on a static fabric).
    std::uint64_t migrations = 0;  ///< root moved away from/onto this shard
    std::uint64_t splits = 0;      ///< stripe ranges donated (counted on src)
    std::uint64_t merges = 0;      ///< donated ranges taken back (on src)
    std::uint64_t promotions = 0;  ///< hot keys pinned away (on src)
    std::uint64_t demotions = 0;   ///< pinned keys returned (on home shard)
    std::uint64_t redirects = 0;   ///< stale-epoch probes answered here
  };

  // --- Client entry points (shard/client.hpp delegates here) ------------
  sim::Process read_op(dsm::NodeId n, Key key, std::optional<dsm::Word>* out,
                       ConsistencyLevel level);
  sim::Process write_op(dsm::NodeId n, Key key, dsm::Word value);
  sim::Process multi_put_op(dsm::NodeId n,
                            std::vector<std::pair<Key, dsm::Word>> kvs);
  sim::Process multi_rmw_op(dsm::NodeId n, std::vector<Key> keys,
                            dsm::Word delta);
  sim::Process multi_get_op(dsm::NodeId n, std::vector<Key> keys,
                            std::vector<std::optional<dsm::Word>>* out,
                            ConsistencyLevel level);

  [[nodiscard]] std::optional<dsm::Word> local_get(dsm::NodeId n,
                                                   Key key) const;
  void write_slot(Shard& sh, dsm::DsmNode& node, Key key, dsm::Word value);
  /// The LockPolicy dispatch, executing on node `n` (full mode: the
  /// caller's node; partial mode: the shard root's, via its proxy chain).
  sim::Process put_direct(dsm::NodeId n, Key key, dsm::Word value);
  /// `moved` is set (and nothing written) when the directory reassigned
  /// the key between routing and lock acquisition — put_direct re-routes.
  sim::Process put_queued(Shard& sh, ShardId sid, dsm::NodeId n, Key key,
                          dsm::Word value, bool* moved);
  sim::Process put_optimistic(Shard& sh, ShardId sid, dsm::NodeId n, Key key,
                              dsm::Word value, bool* moved);
  sim::Process multi_put_direct(dsm::NodeId n,
                                std::vector<std::pair<Key, dsm::Word>> kvs);
  sim::Process multi_rmw_direct(dsm::NodeId n, std::vector<Key> keys,
                                dsm::Word delta);
  sim::Process multi_get_direct(dsm::NodeId n, std::vector<Key> keys,
                                std::vector<std::optional<dsm::Word>>* out);
  sim::Process multi_put_impl(dsm::NodeId n,
                              std::vector<std::pair<Key, dsm::Word>> kvs,
                              std::vector<ShardId> ids,
                              core::MultiGroupMutex& mux);
  sim::Process multi_put_occ(dsm::NodeId n,
                             std::vector<std::pair<Key, dsm::Word>> kvs,
                             std::vector<ShardId> ids);
  sim::Process multi_rmw_impl(dsm::NodeId n, std::vector<Key> keys,
                              std::vector<ShardId> ids,
                              core::MultiGroupMutex& mux, dsm::Word delta);

  // --- partial-replication routing --------------------------------------
  using OpThunk = std::function<sim::Process()>;
  /// Appends `thunk` to `server`'s proxy chain (the node's single
  /// instruction stream for mutating ops); returns a Process completing
  /// when the thunk has run.
  sim::Process enqueue_proxy(dsm::NodeId server, OpThunk thunk);
  sim::Process chain_after(sim::Process prev, OpThunk thunk);
  /// Routes an operation to `primary`'s root: enqueued directly when `n`
  /// IS the root node, else shipped as an RPC (request `req_bytes` up,
  /// `reply_bytes` back once the proxied op completes).
  sim::Process forward_op(dsm::NodeId n, ShardId primary,
                          std::uint32_t req_bytes, std::uint32_t reply_bytes,
                          OpThunk thunk);

  /// Cached MultiGroupMutex per involved-shard set (clients are stateless
  /// between acquisitions, so reuse is safe and keeps stats cumulative).
  core::MultiGroupMutex& txn_mutex(const std::vector<ShardId>& ids);
  [[nodiscard]] std::vector<ShardId> involved_shards(
      const std::vector<Key>& keys) const;
  void record_txn_flight(sim::Time started, sim::Time acquired);

  /// Classifies one failed OCC commit attempt, bumps the abort-reason
  /// counters on every involved shard + the conflict-stripe heatmap on the
  /// conflict shard, and journals the abort (when a journal is attached).
  void record_txn_abort(dsm::NodeId n,
                        const txn::TxnManager::CommitResult& res,
                        const std::vector<ShardId>& ids, std::uint32_t attempt);
  /// Journals a contention-manager escalation to the irrevocable fallback.
  void record_txn_fallback(dsm::NodeId n, const std::vector<ShardId>& ids,
                           std::uint32_t attempts);

  // --- elastic fabric internals (src/elastic/ drives these) --------------
  /// Applies the topology half of a root migration: spanning tree, the
  /// shard's root field, the lease directory. Called by elastic::
  /// RootMigrator between quiesce and handoff replay.
  void apply_root_move(ShardId s, dsm::NodeId to);

  /// The two-phase directory move primitive behind split/merge/promote/
  /// demote. Under the {src, dst} shard locks it moves every src slot
  /// whose key satisfies `pred` into dst, bumps every src orec stripe
  /// (dooming racing OCC transactions at the old epoch), commits one
  /// write section per involved shard (the ledger stays exact), snapshots
  /// the old map into history, and installs `mutate`'s new epoch. Runs on
  /// the control node (full replication) or through the destination
  /// root's proxy chain (partial).
  sim::Process elastic_reassign(ShardId src, ShardId dst,
                                std::function<bool(Key)> pred,
                                std::function<void(ShardMap&)> mutate,
                                std::uint64_t* moved_slots);
  sim::Process reassign_body(dsm::NodeId exec, ShardId src, ShardId dst,
                             std::function<bool(Key)> pred,
                             std::function<void(ShardMap&)> mutate,
                             std::uint64_t* moved_slots);

  dsm::DsmSystem* sys_;
  ShardedStoreConfig cfg_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Created after the shard groups so its orec vars slot into each
  /// shard's group; one site per shard, site id == shard id.
  std::unique_ptr<txn::TxnManager> txn_mgr_;
  /// Partial-replication lease tier; nullptr under full replication.
  std::unique_ptr<LeaseManager> lease_mgr_;
  /// Per-node proxy chain tails (partial mode; only root nodes used).
  struct ProxySlot {
    bool active = false;
    sim::Process tail;
  };
  std::vector<ProxySlot> proxies_;
  std::map<std::vector<ShardId>, std::unique_ptr<core::MultiGroupMutex>>
      txn_muxes_;
  stats::LockStats txn_stats_;
  /// Bounded history of past directory snapshots (newest last): a client
  /// whose epoch is still in history routes against its exact snapshot; an
  /// epoch that aged out forces one refresh. Only mutated maps are kept.
  std::vector<ShardMap> map_history_;
  static constexpr std::size_t kMapHistory = 16;
  dsm::NodeId control_node_ = dsm::kNoNode;
  std::function<void(ShardId, Key)> access_observer_;
};

}  // namespace optsync::shard
