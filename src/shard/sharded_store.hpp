// ShardedStore: a KV namespace striped over N independent eagersharing
// groups — the service layer that turns the paper's single-group lock
// protocols into a horizontally scalable system.
//
// Single-root sequencing is the GWC scaling bottleneck: every write of a
// group funnels through one root. The store therefore creates one sharing
// group PER SHARD, each with its own root (spread round-robin over the
// machine so sequencing work is distributed), its own lock variable, a
// version word, and a set of KV slots. A ShardMap routes keys to shards;
// unrelated keys never meet a common sequencer or lock queue.
//
// Per-shard lock protocol (LockPolicy):
//   * kQueue      — the §2 GWC queue lock (sync::GwcQueueLock);
//   * kOptimistic — core::OptimisticMutex, §4 speculation with the
//     per-node EWMA gate;
//   * kAdaptive   — a store-level per-shard core::UsageHistory observes
//     lock busyness at every write arrival and routes the write to the
//     queue-lock client when the shard looks contended, to the optimistic
//     mutex when it looks idle. This is the §4 decision lifted from
//     per-node to per-shard: a hot shard degenerates to the regular
//     protocol (zero extra traffic), a cold one commits writes in
//     roughly its compute time.
//
// Multi-key transactions that cross shards run, by default, on the
// optimistic txn::TxnManager layer (TxnMode::kOcc): speculate locally,
// detect conflicts through clobber interrupts and orec versions, then
// commit under the involved shard locks held only for validate+publish.
// Repeated aborts escalate to the irrevocable fallback — the legacy
// TxnMode::kLegacy path, core::MultiGroupMutex held across the whole
// compute (same ascending-VarId order, so the two paths are jointly
// deadlock-free). Either way every involved shard's version word is
// bumped once, so the per-shard serializability ledger (version ==
// committed writes) stays exact across shard boundaries. Every committed
// slot write — single-key or transactional — also bumps the slot's orec
// stripe, which is what multi_get/multi_rmw readers validate against.
//
// Concurrency contract: operations on one node must not overlap (a node
// models one instruction stream — the Fig. 4 nesting rule). load::Generator
// serializes per node; direct callers must do the same.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/multi_group_mutex.hpp"
#include "core/optimistic_mutex.hpp"
#include "core/usage_history.hpp"
#include "dsm/system.hpp"
#include "shard/shard_map.hpp"
#include "simkern/coro.hpp"
#include "stats/lock_stats.hpp"
#include "stats/service_report.hpp"
#include "sync/gwc_lock.hpp"
#include "telemetry/sampler.hpp"
#include "txn/txn.hpp"

namespace optsync::shard {

enum class LockPolicy { kQueue, kOptimistic, kAdaptive };

constexpr std::string_view lock_policy_name(LockPolicy p) {
  switch (p) {
    case LockPolicy::kQueue:
      return "queue";
    case LockPolicy::kOptimistic:
      return "optimistic";
    case LockPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

/// How cross-shard multi-key operations commit.
enum class TxnMode { kOcc, kLegacy };

constexpr std::string_view txn_mode_name(TxnMode m) {
  switch (m) {
    case TxnMode::kOcc:
      return "occ";
    case TxnMode::kLegacy:
      return "legacy";
  }
  return "?";
}

struct ShardedStoreConfig {
  std::uint32_t shards = 4;
  std::uint32_t slots_per_shard = 8;  ///< KV slots (key, value var pairs)
  ShardMap::Policy policy = ShardMap::Policy::kHash;
  /// Range policy: the striped key domain [0, key_space).
  Key key_space = 1024;

  LockPolicy lock = LockPolicy::kAdaptive;
  /// Store-level adaptive gate (kAdaptive): route to the queue lock when
  /// the shard's EWMA busyness exceeds the threshold (paper's 0.30/0.95).
  double history_threshold = 0.30;
  double history_decay = 0.95;

  /// In-section compute per write (hash + slot scan).
  sim::Duration write_compute_ns = 800;

  /// Cross-shard commit protocol. kOcc speculates outside the locks and
  /// holds them only for validate+publish; kLegacy holds every involved
  /// lock across the whole compute (the pre-OCC MultiGroupMutex path,
  /// kept as baseline and as the OCC irrevocable fallback).
  TxnMode txn_mode = TxnMode::kOcc;
  /// OCC layer tuning. `orec_stripes` is forced to slots_per_shard by the
  /// store (stripe == slot, so a slot write always bumps the orec its
  /// readers validated).
  txn::TxnConfig txn;

  /// Shard s roots at members[(s * root_stride) % members.size()]; the
  /// default walks the machine so consecutive shards sequence on
  /// different nodes.
  std::uint32_t root_stride = 1;
};

class ShardedStore {
 public:
  /// Creates one sharing group per shard over ALL nodes of `sys` (full
  /// replication — every node can serve local reads for every key).
  ShardedStore(dsm::DsmSystem& sys, ShardedStoreConfig cfg);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint32_t shards() const { return map_.shards(); }
  [[nodiscard]] ShardId shard_of(Key key) const { return map_.shard_of(key); }
  [[nodiscard]] dsm::DsmSystem& system() { return *sys_; }
  [[nodiscard]] const ShardedStoreConfig& config() const { return cfg_; }

  /// Local read on node `n` — zero network traffic (eagersharing keeps
  /// every replica warm). Empty when the key is absent or was evicted.
  [[nodiscard]] std::optional<dsm::Word> get(dsm::NodeId n, Key key) const;

  /// Single-key write under the owning shard's lock, per the configured
  /// LockPolicy. Keys are >= 1 (0 marks an empty slot).
  /// Use as: co_await store.put(n, key, value).join();
  sim::Process put(dsm::NodeId n, Key key, dsm::Word value);

  /// Multi-key transaction writing all pairs atomically and bumping each
  /// involved shard's version word once. TxnMode::kOcc speculates and
  /// commits through the txn layer, retrying with backoff on conflict and
  /// escalating to the irrevocable MultiGroupMutex path after the abort
  /// budget; TxnMode::kLegacy holds every involved lock across the write.
  sim::Process multi_put(dsm::NodeId n,
                         std::vector<std::pair<Key, dsm::Word>> kvs);

  /// Multi-key read-modify-write: atomically adds `delta` to every key's
  /// value (absent keys start at 0, so this also inserts). The read set
  /// is covered by the write locks at commit, making the transaction
  /// strictly serializable — the lost-update test case (YCSB-F idiom).
  sim::Process multi_rmw(dsm::NodeId n, std::vector<Key> keys,
                         dsm::Word delta);

  /// Multi-key consistent snapshot into `*out` (aligned with `keys`;
  /// absent keys read as nullopt). Validates the read set through the OCC
  /// commit protocol (no locks taken); falls back to reading under the
  /// involved shard locks after the abort budget.
  sim::Process multi_get(dsm::NodeId n, std::vector<Key> keys,
                         std::vector<std::optional<dsm::Word>>* out);

  // --- end-of-run rollup -------------------------------------------------
  /// Fills the lock/root/ledger side of `report` (resizing its shard list
  /// if needed): per-shard LockStats, root sequencing/frame rollup, final
  /// version vs. committed-write counts, network/fault totals.
  void fill_report(stats::ServiceReport& report);

  /// True when every replica of every shard agrees on every slot and the
  /// version word (GWC convergence).
  [[nodiscard]] bool replicas_converged() const;

  /// Registers live per-shard gauges/rates on `sampler`: arrival backlog
  /// (issued - completed, read from `live` — the report the generator
  /// updates during the run), root lock-queue length, open-frame occupancy,
  /// goodput, plus global message/retransmit rates. Both `sampler` and
  /// `live` must outlive the store's sampling window.
  void register_telemetry(telemetry::Sampler& sampler,
                          const stats::ServiceReport& live);

  // --- per-shard introspection (tests, benches) -------------------------
  [[nodiscard]] dsm::VarId lock_var(ShardId s) const;
  [[nodiscard]] dsm::GroupId group_of(ShardId s) const;
  [[nodiscard]] std::uint64_t committed_writes(ShardId s) const;
  /// Final version word, read on the shard's root node.
  [[nodiscard]] dsm::Word version(ShardId s) const;
  [[nodiscard]] const stats::LockStats& lock_stats(ShardId s) const;
  /// Store-level adaptive-gate estimate for the shard (kAdaptive).
  [[nodiscard]] double shard_history(ShardId s) const;
  /// Writes routed to the queue-lock / optimistic client, per shard.
  [[nodiscard]] std::uint64_t queue_path_ops(ShardId s) const;
  [[nodiscard]] std::uint64_t optimistic_path_ops(ShardId s) const;
  /// Whole-chain flight record of cross-shard transactions ("svc.txn").
  [[nodiscard]] const stats::LockStats& txn_stats() const {
    return txn_stats_;
  }
  /// OCC layer introspection (orec versions, contention counters).
  [[nodiscard]] txn::TxnManager& txn_manager() { return *txn_mgr_; }
  /// Cross-shard transactions that committed / aborted / retried with this
  /// shard involved, plus escalations to the irrevocable fallback.
  [[nodiscard]] std::uint64_t txn_commits(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_aborts(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_retries(ShardId s) const;
  [[nodiscard]] std::uint64_t txn_fallbacks(ShardId s) const;

 private:
  struct Shard {
    explicit Shard(double decay) : history(decay) {}
    dsm::GroupId group = 0;
    dsm::NodeId root = 0;
    dsm::VarId lock = dsm::kNoVar;
    dsm::VarId version = dsm::kNoVar;
    std::vector<dsm::VarId> slot_keys;
    std::vector<dsm::VarId> slot_values;
    std::unique_ptr<core::OptimisticMutex> mux;
    std::unique_ptr<sync::GwcQueueLock> queue;
    core::UsageHistory history;  ///< store-level adaptive gate
    stats::LockStats stats;
    std::uint64_t committed = 0;  ///< write sections finished on this shard
    std::uint64_t queue_ops = 0;
    std::uint64_t optimistic_ops = 0;
    txn::SiteId site = 0;  ///< this shard's site in the txn layer
    std::uint64_t txn_commits = 0;
    std::uint64_t txn_aborts = 0;
    std::uint64_t txn_retries = 0;
    std::uint64_t txn_fallbacks = 0;
  };

  [[nodiscard]] std::size_t slot_of(Key key) const;
  void write_slot(Shard& sh, dsm::DsmNode& node, Key key, dsm::Word value);
  sim::Process put_queued(Shard& sh, dsm::NodeId n, Key key, dsm::Word value);
  sim::Process put_optimistic(Shard& sh, dsm::NodeId n, Key key,
                              dsm::Word value);
  sim::Process multi_put_impl(dsm::NodeId n,
                              std::vector<std::pair<Key, dsm::Word>> kvs,
                              std::vector<ShardId> ids,
                              core::MultiGroupMutex& mux);
  sim::Process multi_put_occ(dsm::NodeId n,
                             std::vector<std::pair<Key, dsm::Word>> kvs,
                             std::vector<ShardId> ids);
  sim::Process multi_rmw_impl(dsm::NodeId n, std::vector<Key> keys,
                              std::vector<ShardId> ids,
                              core::MultiGroupMutex& mux, dsm::Word delta);
  /// Cached MultiGroupMutex per involved-shard set (clients are stateless
  /// between acquisitions, so reuse is safe and keeps stats cumulative).
  core::MultiGroupMutex& txn_mutex(const std::vector<ShardId>& ids);
  [[nodiscard]] std::vector<ShardId> involved_shards(
      const std::vector<Key>& keys) const;
  void record_txn_flight(sim::Time started, sim::Time acquired);

  dsm::DsmSystem* sys_;
  ShardedStoreConfig cfg_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Created after the shard groups so its orec vars slot into each
  /// shard's group; one site per shard, site id == shard id.
  std::unique_ptr<txn::TxnManager> txn_mgr_;
  std::map<std::vector<ShardId>, std::unique_ptr<core::MultiGroupMutex>>
      txn_muxes_;
  stats::LockStats txn_stats_;
};

}  // namespace optsync::shard
