// Key -> shard directory for the sharded DSM service layer.
//
// A shard is one independent eagersharing group with its own root, lock,
// and KV slots (shard/sharded_store.hpp); the ShardMap is the routing
// function in front of them. Two base policies:
//
//   * kHash  — splitmix64-mixed key modulo shard count. Spreads any key
//     population (including dense sequential keys) uniformly; the mix is
//     the same one simkern/random uses for seeding, so routing is
//     platform-stable and deterministic.
//   * kRange — the key space [0, key_space) cut into contiguous stripes
//     of near-equal width: the first key_space % shards stripes hold one
//     extra key, so no stripe is ever more than one key wider than
//     another (the old scheme dumped the whole division remainder on the
//     last stripe — up to 2x the load at small key spaces). Keys
//     >= key_space clamp to the last shard. Keeps key locality
//     (neighbouring keys share a shard), the classic directory choice
//     when scans matter.
//
// On top of the base policy the directory is *versioned and mutable*: the
// elastic control plane overlays it with
//
//   * range overrides — a contiguous [lo, hi) reassigned to another shard
//     (stripe split, and its inverse, merge), and
//   * pins — single hot keys promoted to a dedicated shard.
//
// Lookup order is pins, then overrides, then the base policy. Every
// mutation bumps version(); the store keeps a bounded history of past
// snapshots so a client holding a stale version gets a redirect, never a
// wrong answer (shard/sharded_store.hpp).
//
// The directory is a value type: cheap to copy, no substrate references,
// usable by routers, benches, and tests alike.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace optsync::shard {

/// Dense shard index, [0, shards()).
using ShardId = std::uint32_t;

/// Service-level key. Keys are opaque 64-bit values; the KV layer reserves
/// 0 for "empty slot", so clients use keys >= 1.
using Key = std::uint64_t;

class ShardMap {
 public:
  enum class Policy { kHash, kRange };

  /// Hash-partitioned directory over `shards` shards (shards >= 1).
  static ShardMap hashed(std::uint32_t shards);

  /// Range-partitioned directory: [0, key_space) in `shards` contiguous
  /// stripes. Precondition: shards >= 1, key_space >= shards.
  static ShardMap ranged(std::uint32_t shards, Key key_space);

  [[nodiscard]] ShardId shard_of(Key key) const;

  /// The base policy's answer, ignoring pins and overrides.
  [[nodiscard]] ShardId base_shard_of(Key key) const;

  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  [[nodiscard]] Policy policy() const { return policy_; }
  /// Range policy only: base stripe width (the first `key_space % shards`
  /// stripes hold one more key).
  [[nodiscard]] Key stripe_width() const { return stripe_; }
  /// Range policy only: stripes holding stripe_width() + 1 keys.
  [[nodiscard]] std::uint32_t wide_stripes() const { return wide_; }

  /// Range policy only: the base stripe extent [lo, hi) of shard `s`
  /// (before overrides; keys >= key_space clamp into the last stripe).
  [[nodiscard]] std::pair<Key, Key> base_range(ShardId s) const;

  // --- elastic overlays --------------------------------------------------
  /// A contiguous [lo, hi) routed to `owner` instead of the base policy.
  struct RangeOverride {
    Key lo;
    Key hi;  ///< exclusive
    ShardId owner;
  };

  /// Routes `key` to `owner` (hot-key promotion). Owner may be any shard
  /// index the caller considers valid — including dedicated hot groups
  /// beyond the base modulus; the map itself doesn't range-check it.
  void pin(Key key, ShardId owner);

  /// Removes a pin; the key falls back to overrides/base policy.
  void unpin(Key key);

  /// Reassigns [lo, hi) to `owner` (stripe split). Overlapping overrides
  /// are trimmed or replaced — overrides never overlap.
  void assign_range(Key lo, Key hi, ShardId owner);

  /// Drops any override coverage of [lo, hi) (stripe merge: the span
  /// falls back to the base policy). Partially-covered overrides are
  /// trimmed.
  void clear_range(Key lo, Key hi);

  /// Directory version: bumped by every mutation. A client caches the
  /// version it routed with; a mismatch against the store's current map is
  /// the stale-directory signal (redirect, refresh, retry).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] const std::vector<RangeOverride>& overrides() const {
    return overrides_;
  }
  [[nodiscard]] std::size_t pinned_keys() const { return pinned_.size(); }
  [[nodiscard]] bool mutated() const { return version_ != 0; }

 private:
  ShardMap(Policy policy, std::uint32_t shards, Key stripe,
           std::uint32_t wide)
      : policy_(policy), shards_(shards), stripe_(stripe), wide_(wide) {}

  Policy policy_;
  std::uint32_t shards_;
  Key stripe_;          // range policy: base width; 0 under hash
  std::uint32_t wide_;  // range policy: stripes one key wider; 0 under hash
  std::uint64_t version_ = 0;
  std::vector<RangeOverride> overrides_;  // sorted by lo, non-overlapping
  std::unordered_map<Key, ShardId> pinned_;
};

}  // namespace optsync::shard
