// Key -> shard directory for the sharded DSM service layer.
//
// A shard is one independent eagersharing group with its own root, lock,
// and KV slots (shard/sharded_store.hpp); the ShardMap is the pure routing
// function in front of them. Two policies:
//
//   * kHash  — splitmix64-mixed key modulo shard count. Spreads any key
//     population (including dense sequential keys) uniformly; the mix is
//     the same one simkern/random uses for seeding, so routing is
//     platform-stable and deterministic.
//   * kRange — the key space [0, key_space) cut into contiguous stripes
//     of near-equal width: the first key_space % shards stripes hold one
//     extra key, so no stripe is ever more than one key wider than
//     another (the old scheme dumped the whole division remainder on the
//     last stripe — up to 2x the load at small key spaces). Keys
//     >= key_space clamp to the last shard. Keeps key locality
//     (neighbouring keys share a shard), the classic directory choice
//     when scans matter.
//
// The directory is a value type: cheap to copy, no substrate references,
// usable by routers, benches, and tests alike.
#pragma once

#include <cstdint>

namespace optsync::shard {

/// Dense shard index, [0, shards()).
using ShardId = std::uint32_t;

/// Service-level key. Keys are opaque 64-bit values; the KV layer reserves
/// 0 for "empty slot", so clients use keys >= 1.
using Key = std::uint64_t;

class ShardMap {
 public:
  enum class Policy { kHash, kRange };

  /// Hash-partitioned directory over `shards` shards (shards >= 1).
  static ShardMap hashed(std::uint32_t shards);

  /// Range-partitioned directory: [0, key_space) in `shards` contiguous
  /// stripes. Precondition: shards >= 1, key_space >= shards.
  static ShardMap ranged(std::uint32_t shards, Key key_space);

  [[nodiscard]] ShardId shard_of(Key key) const;

  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  [[nodiscard]] Policy policy() const { return policy_; }
  /// Range policy only: base stripe width (the first `key_space % shards`
  /// stripes hold one more key).
  [[nodiscard]] Key stripe_width() const { return stripe_; }
  /// Range policy only: stripes holding stripe_width() + 1 keys.
  [[nodiscard]] std::uint32_t wide_stripes() const { return wide_; }

 private:
  ShardMap(Policy policy, std::uint32_t shards, Key stripe,
           std::uint32_t wide)
      : policy_(policy), shards_(shards), stripe_(stripe), wide_(wide) {}

  Policy policy_;
  std::uint32_t shards_;
  Key stripe_;          // range policy: base width; 0 under hash
  std::uint32_t wide_;  // range policy: stripes one key wider; 0 under hash
};

}  // namespace optsync::shard
