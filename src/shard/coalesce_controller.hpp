// Adaptive per-shard coalescing: the telemetry-driven control loop that
// closes ROADMAP's "per-shard coalesce tuning" item.
//
// One global --coalesce-max-writes is the wrong knob for a sharded service:
// batching amortizes the root's per-message work (a 4x message reduction at
// cap 4 under saturation), but a lock grant parked in an open frame is
// invisible to the waiter until the flush, so an IDLE shard pays the full
// coalesce deadline in op latency for nothing. The measured numbers behind
// the policy (bench/kernel_overhead, EXPERIMENTS.md): cap 4 with a sub-µs
// deadline is goodput-neutral at saturation while cutting wire messages
// ~4x; a fixed 10 µs deadline at low load collapses goodput by stalling
// grants.
//
// The controller therefore watches, per shard and per control tick, the
// live signals the telemetry layer already maintains:
//   * arrival backlog (issued - completed, from the generator's live
//     ServiceReport — the same series the overload detector's drowning
//     verdict is computed from), and
//   * the root's frame-close mix (size-cap vs. deadline flushes,
//     GroupRoot::Stats) — a frame closed by the timer proves the arrival
//     rate is too low to fill the cap before the deadline.
// A backlogged shard has its cap doubled (toward max_writes) with a short
// flush deadline: when writes queue at the root, batching is free — the
// frame fills from the queue, not from waiting. A drained shard (low
// backlog, or frames mostly closing on the timer) has its cap halved back
// toward 1, restoring the grant-latency-optimal unbatched path. Hysteresis
// between the high/low water marks keeps the cap stable under noise.
//
// Determinism: the controller runs as ordinary sim events off the same
// scheduler, reads only deterministic state, and re-arms only while the
// simulation is live (the Sampler idiom) — a controlled run with a fixed
// seed reproduces bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "shard/shard_map.hpp"
#include "simkern/time.hpp"
#include "stats/service_report.hpp"
#include "telemetry/sampler.hpp"

namespace optsync::shard {

class ShardedStore;

struct CoalesceControllerConfig {
  /// Control tick period. Default matches the telemetry sampler so cap
  /// decisions line up with the exported series.
  sim::Duration interval_ns = 50'000;

  std::uint32_t min_writes = 1;  ///< cap floor (unbatched)
  std::uint32_t max_writes = 64;  ///< cap ceiling while backlogged

  /// Flush deadline applied while a shard is batching (cap > min). Short on
  /// purpose: at saturation frames fill from the root's queue within one
  /// dispatch, and an idle interval must not hold a grant hostage.
  sim::Duration batch_deadline_ns = 500;

  /// Backlog (issued - completed) at which a shard engages batching, and
  /// below which it disengages. The gap is the hysteresis band.
  double backlog_high = 16.0;
  double backlog_low = 2.0;

  /// While batching, if more than this share of the tick's frames closed on
  /// the deadline rather than the size cap, the cap is too big for the
  /// arrival rate — halve it.
  double timer_share_high = 0.5;
};

class CoalesceController {
 public:
  /// `store` and `live` must outlive the controller; `live` is the report
  /// the load generator updates during the run (the same object passed to
  /// ShardedStore::register_telemetry).
  CoalesceController(ShardedStore& store, const stats::ServiceReport& live,
                     CoalesceControllerConfig cfg = {});

  CoalesceController(const CoalesceController&) = delete;
  CoalesceController& operator=(const CoalesceController&) = delete;

  /// Arms the periodic control tick (first decision one interval from now).
  void start();
  /// Cancels any pending tick.
  void stop();

  /// Registers the per-shard cap as a live gauge series
  /// ("optsync_coalesce_cap") so timeseries exports show the control loop
  /// acting.
  void register_telemetry(telemetry::Sampler& sampler);

  // --- introspection (benches, tests, the service CLI) ------------------
  [[nodiscard]] std::uint32_t cap(ShardId s) const { return ctl_[s].cap; }
  [[nodiscard]] std::uint64_t raises(ShardId s) const {
    return ctl_[s].raises;
  }
  [[nodiscard]] std::uint64_t lowers(ShardId s) const {
    return ctl_[s].lowers;
  }
  /// Largest cap the shard reached during the run.
  [[nodiscard]] std::uint32_t peak_cap(ShardId s) const {
    return ctl_[s].peak;
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] const CoalesceControllerConfig& config() const { return cfg_; }

 private:
  struct ShardCtl {
    std::uint32_t cap = 1;
    std::uint32_t peak = 1;
    std::uint64_t raises = 0;
    std::uint64_t lowers = 0;
    // Frame-stat snapshot at the previous tick (delta = this tick's frames).
    std::uint64_t last_frames = 0;
    std::uint64_t last_timer_flushes = 0;
  };

  void tick();
  [[nodiscard]] double backlog(ShardId s) const;
  void apply_cap(ShardId s, std::uint32_t cap);

  ShardedStore* store_;
  const stats::ServiceReport* live_;
  CoalesceControllerConfig cfg_;
  std::vector<ShardCtl> ctl_;
  sim::EventId pending_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace optsync::shard
