#include "shard/shard_map.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::shard {

ShardMap ShardMap::hashed(std::uint32_t shards) {
  OPTSYNC_EXPECT(shards >= 1);
  return ShardMap(Policy::kHash, shards, 0, 0);
}

ShardMap ShardMap::ranged(std::uint32_t shards, Key key_space) {
  OPTSYNC_EXPECT(shards >= 1);
  OPTSYNC_EXPECT(key_space >= shards);
  return ShardMap(Policy::kRange, shards, key_space / shards,
                  static_cast<std::uint32_t>(key_space % shards));
}

ShardId ShardMap::base_shard_of(Key key) const {
  if (policy_ == Policy::kHash) {
    // One splitmix64 round is a full-avalanche finalizer — dense key
    // populations spread uniformly, and the mapping is platform-stable.
    const std::uint64_t mixed = sim::SplitMix64(key).next();
    return static_cast<ShardId>(mixed % shards_);
  }
  // Balanced stripes: the first wide_ stripes hold stripe_ + 1 keys, the
  // rest stripe_ keys, so the division remainder is spread one key per
  // stripe instead of piling onto the last one. Keys >= key_space (and the
  // maximum key) clamp to the last shard.
  const Key wide_span = static_cast<Key>(wide_) * (stripe_ + 1);
  ShardId s;
  if (key < wide_span) {
    s = static_cast<ShardId>(key / (stripe_ + 1));
  } else {
    const Key idx = static_cast<Key>(wide_) + (key - wide_span) / stripe_;
    s = idx >= shards_ ? shards_ - 1 : static_cast<ShardId>(idx);
  }
  return s;
}

ShardId ShardMap::shard_of(Key key) const {
  if (!pinned_.empty()) {
    const auto it = pinned_.find(key);
    if (it != pinned_.end()) return it->second;
  }
  if (!overrides_.empty()) {
    // First override with hi > key; a hit iff it also starts at or below.
    const auto it = std::upper_bound(
        overrides_.begin(), overrides_.end(), key,
        [](Key k, const RangeOverride& o) { return k < o.hi; });
    if (it != overrides_.end() && it->lo <= key) return it->owner;
  }
  return base_shard_of(key);
}

std::pair<Key, Key> ShardMap::base_range(ShardId s) const {
  OPTSYNC_EXPECT(policy_ == Policy::kRange);
  OPTSYNC_EXPECT(s < shards_);
  const Key wide_span = static_cast<Key>(wide_) * (stripe_ + 1);
  if (s < wide_) {
    const Key lo = static_cast<Key>(s) * (stripe_ + 1);
    return {lo, lo + stripe_ + 1};
  }
  const Key lo = wide_span + static_cast<Key>(s - wide_) * stripe_;
  return {lo, lo + stripe_};
}

void ShardMap::pin(Key key, ShardId owner) {
  pinned_[key] = owner;
  ++version_;
}

void ShardMap::unpin(Key key) {
  pinned_.erase(key);
  ++version_;
}

void ShardMap::assign_range(Key lo, Key hi, ShardId owner) {
  OPTSYNC_EXPECT(lo < hi);
  clear_range(lo, hi);  // bumps version_; final state is what matters
  const auto at = std::lower_bound(
      overrides_.begin(), overrides_.end(), lo,
      [](const RangeOverride& o, Key k) { return o.lo < k; });
  overrides_.insert(at, RangeOverride{lo, hi, owner});
  ++version_;
}

void ShardMap::clear_range(Key lo, Key hi) {
  OPTSYNC_EXPECT(lo < hi);
  std::vector<RangeOverride> next;
  next.reserve(overrides_.size() + 1);
  for (const RangeOverride& o : overrides_) {
    if (o.hi <= lo || o.lo >= hi) {  // disjoint: keep whole
      next.push_back(o);
      continue;
    }
    if (o.lo < lo) next.push_back(RangeOverride{o.lo, lo, o.owner});
    if (o.hi > hi) next.push_back(RangeOverride{hi, o.hi, o.owner});
  }
  overrides_ = std::move(next);
  ++version_;
}

}  // namespace optsync::shard
