#include "shard/shard_map.hpp"

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::shard {

ShardMap ShardMap::hashed(std::uint32_t shards) {
  OPTSYNC_EXPECT(shards >= 1);
  return ShardMap(Policy::kHash, shards, 0);
}

ShardMap ShardMap::ranged(std::uint32_t shards, Key key_space) {
  OPTSYNC_EXPECT(shards >= 1);
  OPTSYNC_EXPECT(key_space >= shards);
  return ShardMap(Policy::kRange, shards, key_space / shards);
}

ShardId ShardMap::shard_of(Key key) const {
  if (policy_ == Policy::kHash) {
    // One splitmix64 round is a full-avalanche finalizer — dense key
    // populations spread uniformly, and the mapping is platform-stable.
    const std::uint64_t mixed = sim::SplitMix64(key).next();
    return static_cast<ShardId>(mixed % shards_);
  }
  const Key stripe = key / stripe_;
  return stripe >= shards_ ? shards_ - 1 : static_cast<ShardId>(stripe);
}

}  // namespace optsync::shard
