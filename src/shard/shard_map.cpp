#include "shard/shard_map.hpp"

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::shard {

ShardMap ShardMap::hashed(std::uint32_t shards) {
  OPTSYNC_EXPECT(shards >= 1);
  return ShardMap(Policy::kHash, shards, 0, 0);
}

ShardMap ShardMap::ranged(std::uint32_t shards, Key key_space) {
  OPTSYNC_EXPECT(shards >= 1);
  OPTSYNC_EXPECT(key_space >= shards);
  return ShardMap(Policy::kRange, shards, key_space / shards,
                  static_cast<std::uint32_t>(key_space % shards));
}

ShardId ShardMap::shard_of(Key key) const {
  if (policy_ == Policy::kHash) {
    // One splitmix64 round is a full-avalanche finalizer — dense key
    // populations spread uniformly, and the mapping is platform-stable.
    const std::uint64_t mixed = sim::SplitMix64(key).next();
    return static_cast<ShardId>(mixed % shards_);
  }
  // Balanced stripes: the first wide_ stripes hold stripe_ + 1 keys, the
  // rest stripe_ keys, so the division remainder is spread one key per
  // stripe instead of piling onto the last one. Keys >= key_space (and the
  // maximum key) clamp to the last shard.
  const Key wide_span = static_cast<Key>(wide_) * (stripe_ + 1);
  ShardId s;
  if (key < wide_span) {
    s = static_cast<ShardId>(key / (stripe_ + 1));
  } else {
    const Key idx = static_cast<Key>(wide_) + (key - wide_span) / stripe_;
    s = idx >= shards_ ? shards_ - 1 : static_cast<ShardId>(idx);
  }
  return s;
}

}  // namespace optsync::shard
