#include "shard/lease.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::shard {

// --- StaleReadAuditor ------------------------------------------------------

void StaleReadAuditor::on_invalidation(dsm::NodeId node, ShardId shard,
                                       std::uint32_t stripe,
                                       std::uint64_t epoch) {
  std::uint64_t& hw = highwater_[slot_key(node, shard, stripe)];
  hw = std::max(hw, epoch);
}

void StaleReadAuditor::on_serve(dsm::NodeId node, ShardId shard,
                                std::uint32_t stripe, std::uint64_t epoch,
                                sim::Time now, sim::Time expiry) {
  ++checks_;
  const auto it = highwater_.find(slot_key(node, shard, stripe));
  if (it != highwater_.end() && epoch < it->second) {
    // The client was already delivered an invalidation superseding this
    // epoch — serving it now reads a version the client knows is dead.
    ++violations_;
    ++stale_;
  }
  if (now > expiry) {
    ++violations_;
    ++expired_;
  }
}

std::string StaleReadAuditor::report() const {
  return "stale-read audit: " + std::to_string(checks_) + " serves, " +
         std::to_string(violations_) + " violations (" +
         std::to_string(stale_) + " superseded, " + std::to_string(expired_) +
         " past TTL)";
}

// --- LeaseManager ----------------------------------------------------------

LeaseManager::LeaseManager(dsm::DsmSystem& sys, LeaseConfig cfg,
                           std::uint32_t slots_per_shard)
    : sys_(&sys), cfg_(cfg), slots_(slots_per_shard) {
  OPTSYNC_EXPECT(cfg_.stripe_width >= 1);
  stripes_ = (slots_ + cfg_.stripe_width - 1) / cfg_.stripe_width;
  cache_.resize(sys.node_count());
  svc_clear_.assign(sys.node_count(), 0);
}

sim::Duration LeaseManager::serve_delay(dsm::NodeId root) {
  const sim::Time now = sys_->scheduler().now();
  sim::Time& clear = svc_clear_[root];
  const sim::Time start = now > clear ? now : clear;
  clear = start + cfg_.root_service_ns;
  return clear - now;
}

void LeaseManager::register_shard(ShardId shard, dsm::GroupId group,
                                  dsm::NodeId root,
                                  const std::vector<dsm::VarId>& slot_keys,
                                  const std::vector<dsm::VarId>& slot_values,
                                  const std::vector<dsm::VarId>& orec_vars,
                                  dsm::VarId version_var) {
  OPTSYNC_EXPECT(slot_keys.size() == slots_ && slot_values.size() == slots_);
  // Per-slot stripes map 1:1; elastic mode appends one extra directory
  // stripe (it guards routing, not a slot) which the lease tier ignores.
  OPTSYNC_EXPECT(orec_vars.size() >= slots_);
  if (dirs_.size() <= shard) dirs_.resize(shard + 1);
  auto dir = std::make_unique<ShardDir>();
  dir->shard = shard;
  dir->group = group;
  dir->root = root;
  dir->slot_key.assign(slots_, 0);
  dir->slot_val.assign(slots_, 0);
  dir->epoch.assign(stripes_, 0);
  dir->holder.resize(stripes_);
  for (std::uint32_t i = 0; i < slots_; ++i) {
    roles_[slot_keys[i]] = VarRole{shard, Role::kSlotKey, i};
    roles_[slot_values[i]] = VarRole{shard, Role::kSlotValue, i};
    roles_[orec_vars[i]] = VarRole{shard, Role::kOrec, i};
  }
  roles_[version_var] = VarRole{shard, Role::kVersion, 0};
  ShardDir* raw = dir.get();
  dirs_[shard] = std::move(dir);
  sys_->root_of(group).set_frame_observer(
      [this, raw](const dsm::Frame& frame) { on_flush(*raw, frame); });
}

void LeaseManager::on_flush(ShardDir& dir, const dsm::Frame& frame) {
  // Pass 1: fold the frame into the authoritative table and advance the
  // epochs of every stripe whose orec it bumps. Lock words (grants riding
  // the frame) have no lease role and fall through untouched — a grant
  // never supersedes data, so it must not revoke anything.
  std::vector<std::uint32_t> dirty;
  for (const dsm::SequencedWrite& w : frame.writes) {
    const auto it = roles_.find(w.var);
    if (it == roles_.end()) continue;
    const VarRole& r = it->second;
    switch (r.role) {
      case Role::kSlotKey:
        dir.slot_key[r.index] = w.value;
        break;
      case Role::kSlotValue:
        dir.slot_val[r.index] = w.value;
        break;
      case Role::kVersion:
        dir.version = w.value;
        break;
      case Role::kOrec: {
        const std::uint32_t ls = stripe_of(r.index);
        ++dir.epoch[ls];
        if (std::find(dirty.begin(), dirty.end(), ls) == dirty.end()) {
          dirty.push_back(ls);
        }
        break;
      }
    }
  }
  if (dirty.empty()) return;

  // Pass 2: revoke. Expired holders are pruned without a message (their
  // lease self-revoked at its TTL). Live holders behind the new epoch get
  // an update-carrying invalidation — this is eagersharing extended to the
  // client tier: the same flush that multicasts the frame to the group
  // members ships each leaseholder the stripe's new content, so the holder
  // stays a holder at the new epoch (until its TTL) instead of paying a
  // re-grant round trip for every hot-key write.
  const sim::Time now = sys_->scheduler().now();
  std::vector<std::pair<dsm::NodeId, std::uint32_t>> revoked;
  for (const std::uint32_t ls : dirty) {
    auto& holders = dir.holder[ls];
    for (std::size_t i = 0; i < holders.size();) {
      if (holders[i].expiry <= now) {
        if (auto* j = sys_->journal()) {
          j->lease_expiry(now, holders[i].node, dir.shard, ls,
                          holders[i].epoch);
        }
        holders[i] = holders.back();
        holders.pop_back();
        continue;
      }
      if (holders[i].epoch < dir.epoch[ls]) {
        revoked.emplace_back(holders[i].node, ls);
        if (auto* j = sys_->journal()) {
          j->lease_invalidation(now, holders[i].node, dir.shard, ls,
                                holders[i].epoch, dir.epoch[ls]);
        }
        holders[i].epoch = dir.epoch[ls];
      }
      ++i;
    }
  }
  if (!revoked.empty()) send_invalidations(dir, revoked);
}

void LeaseManager::send_invalidations(
    ShardDir& dir,
    const std::vector<std::pair<dsm::NodeId, std::uint32_t>>& revoked) {
  // One message per holder, listing every stripe this flush revoked for it
  // — the invalidation batches exactly as the frame batched.
  std::vector<dsm::NodeId> nodes;
  for (const auto& [node, ls] : revoked) {
    (void)ls;
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  }
  for (const dsm::NodeId node : nodes) {
    struct Record {
      std::uint32_t ls;
      std::uint64_t epoch;
      std::vector<dsm::Word> ks;
      std::vector<dsm::Word> vs;
    };
    std::vector<Record> records;
    for (const auto& [n, ls] : revoked) {
      if (n != node) continue;
      const std::size_t lo = static_cast<std::size_t>(ls) * cfg_.stripe_width;
      const std::size_t hi =
          std::min<std::size_t>(lo + cfg_.stripe_width, slots_);
      records.push_back(Record{
          ls, dir.epoch[ls],
          std::vector<dsm::Word>(dir.slot_key.begin() + lo,
                                 dir.slot_key.begin() + hi),
          std::vector<dsm::Word>(dir.slot_val.begin() + lo,
                                 dir.slot_val.begin() + hi)});
    }
    dir.counters.invalidations += records.size();
    std::uint32_t bytes = cfg_.inval_base_bytes;
    for (const Record& r : records) {
      bytes += cfg_.inval_stripe_bytes +
               cfg_.data_bytes * static_cast<std::uint32_t>(r.ks.size());
    }
    sys_->send_direct(
        dir.root, node, bytes, "lease-inval",
        [this, node, shard = dir.shard, records = std::move(records)] {
          for (const Record& r : records) {
            auditor_.on_invalidation(node, shard, r.ls, r.epoch);
            StripeLease& lease = cache_[node][cache_key(shard, r.ls)];
            lease.max_invalidated = std::max(lease.max_invalidated, r.epoch);
            if (lease.epoch < r.epoch) {
              // Install the pushed content: the lease refreshes in place at
              // the new epoch. TTL is NOT extended — only a grant does that,
              // so a client that stops reading ages out of the directory.
              lease.epoch = r.epoch;
              lease.slot_key = r.ks;
              lease.slot_val = r.vs;
              lease.valid = r.epoch >= lease.max_invalidated;
            }
          }
        });
  }
}

LeaseManager::StripeLease* LeaseManager::lease_at(dsm::NodeId n, ShardId shard,
                                                  std::uint32_t stripe) {
  auto& node_cache = cache_[n];
  const auto it = node_cache.find(cache_key(shard, stripe));
  return it != node_cache.end() ? &it->second : nullptr;
}

const LeaseManager::StripeLease* LeaseManager::lease_at(
    dsm::NodeId n, ShardId shard, std::uint32_t stripe) const {
  const auto& node_cache = cache_[n];
  const auto it = node_cache.find(cache_key(shard, stripe));
  return it != node_cache.end() ? &it->second : nullptr;
}

sim::Process LeaseManager::client_read(dsm::NodeId n, ShardId shard,
                                       std::size_t slot, Key key,
                                       std::optional<dsm::Word>* out,
                                       bool leased) {
  auto& sched = sys_->scheduler();
  ShardDir& dir = *dirs_[shard];
  const std::uint32_t ls = stripe_of(slot);
  const bool use_lease = leased && cfg_.enabled;
  const std::size_t off =
      slot - static_cast<std::size_t>(ls) * cfg_.stripe_width;

  if (use_lease) {
    if (StripeLease* lease = lease_at(n, shard, ls);
        lease != nullptr && lease->valid && sched.now() < lease->expiry) {
      ++dir.counters.hits;
      auditor_.on_serve(n, shard, ls, lease->epoch, sched.now(),
                        lease->expiry);
      *out = lease->slot_key[off] == static_cast<dsm::Word>(key)
                 ? std::optional<dsm::Word>(lease->slot_val[off])
                 : std::nullopt;
      co_return;
    }
  }

  // Miss (or linearizable): round trip to the shard root. The wait parks
  // on a per-request rendezvous; the reply delivery wakes it.
  struct Rendezvous {
    explicit Rendezvous(sim::Scheduler& s) : sig(s) {}
    sim::Signal sig;
    bool done = false;
    dsm::Word key_word = 0;
    dsm::Word val_word = 0;
    // Grant path: the root's atomic (epoch, content) answer, kept so a
    // grant whose TTL elapsed in flight can still be served once.
    std::uint64_t epoch = 0;
    std::vector<dsm::Word> ks;
    std::vector<dsm::Word> vs;
  };
  const sim::Time fetch_began = sched.now();
  for (;;) {
    auto rv = std::make_shared<Rendezvous>(sched);
    if (use_lease) {
      sys_->send_direct(
          n, dir.root, cfg_.ctrl_bytes, "lease-req",
          [this, d = &dir, n, shard, ls, rv] {
            // Root side: the request queues FIFO on the node's RPC
            // serializer (arrival order fixes the slot); the handler runs
            // when its slot completes. It registers the holder at the
            // then-current epoch and answers from the authoritative table
            // — value and epoch are read at one instant, so a grant can
            // never pair a new epoch with a superseded value (or vice
            // versa).
            sys_->scheduler().after(serve_delay(d->root), [this, d, n,
                                                           shard, ls, rv] {
              ShardDir& dr = *d;
              const std::uint64_t epoch = dr.epoch[ls];
              const sim::Time expiry = sys_->scheduler().now() + cfg_.ttl_ns;
              bool refreshed = false;
              std::uint64_t prior_epoch = epoch;  // fresh grant: delta 0
              for (Holder& h : dr.holder[ls]) {
                if (h.node == n) {
                  prior_epoch = h.epoch;
                  h.epoch = epoch;
                  h.expiry = expiry;
                  refreshed = true;
                  break;
                }
              }
              if (!refreshed) dr.holder[ls].push_back(Holder{n, epoch, expiry});
              ++dr.counters.grants;
              if (auto* j = sys_->journal()) {
                j->lease_grant(sys_->scheduler().now(), n, shard, ls,
                               prior_epoch, epoch);
              }
              const std::size_t lo =
                  static_cast<std::size_t>(ls) * cfg_.stripe_width;
              const std::size_t hi =
                  std::min<std::size_t>(lo + cfg_.stripe_width, slots_);
              std::vector<dsm::Word> ks(dr.slot_key.begin() + lo,
                                        dr.slot_key.begin() + hi);
              std::vector<dsm::Word> vs(dr.slot_val.begin() + lo,
                                        dr.slot_val.begin() + hi);
              const auto bytes = static_cast<std::uint32_t>(
                  cfg_.ctrl_bytes + cfg_.data_bytes * (hi - lo));
              sys_->send_direct(
                  dr.root, n, bytes, "lease-grant",
                  [this, n, shard, ls, epoch, expiry, ks = std::move(ks),
                   vs = std::move(vs), rv]() mutable {
                    StripeLease& lease = cache_[n][cache_key(shard, ls)];
                    // The TTL extension is real either way (the directory
                    // holder was refreshed at service time), but content
                    // installs only if no pushed update got here first
                    // with a newer epoch.
                    lease.expiry = std::max(lease.expiry, expiry);
                    rv->epoch = epoch;
                    rv->ks = ks;
                    rv->vs = vs;
                    if (epoch >= lease.epoch) {
                      lease.epoch = epoch;
                      lease.slot_key = std::move(ks);
                      lease.slot_val = std::move(vs);
                      // A grant that an already-delivered invalidation
                      // supersedes installs dead: the reader below
                      // refetches instead of serving a version the client
                      // saw revoked.
                      lease.valid = epoch >= lease.max_invalidated;
                    }
                    rv->done = true;
                    rv->sig.notify_all();
                  });
            });
          });
    } else {
      sys_->send_direct(
          n, dir.root, cfg_.ctrl_bytes, "read-req",
          [this, d = &dir, slot, n, rv] {
            // Linearizable remote reads share the same RPC serializer as
            // grants — the server node is one instruction stream.
            sys_->scheduler().after(serve_delay(d->root), [this, d, slot, n,
                                                           rv] {
              ShardDir& dr = *d;
              ++dr.counters.remote_reads;
              const dsm::Word k = dr.slot_key[slot];
              const dsm::Word v = dr.slot_val[slot];
              sys_->send_direct(dr.root, n, cfg_.ctrl_bytes + cfg_.data_bytes,
                                "read-reply", [rv, k, v] {
                                  rv->key_word = k;
                                  rv->val_word = v;
                                  rv->done = true;
                                  rv->sig.notify_all();
                                });
            });
          });
    }
    while (!rv->done) co_await rv->sig.wait();

    if (!use_lease) {
      *out = rv->key_word == static_cast<dsm::Word>(key)
                 ? std::optional<dsm::Word>(rv->val_word)
                 : std::nullopt;
      break;
    }
    StripeLease* lease = lease_at(n, shard, ls);
    if (lease != nullptr && lease->valid && sched.now() < lease->expiry) {
      auditor_.on_serve(n, shard, ls, lease->epoch, sched.now(),
                        lease->expiry);
      *out = lease->slot_key[off] == static_cast<dsm::Word>(key)
                 ? std::optional<dsm::Word>(lease->slot_val[off])
                 : std::nullopt;
      break;
    }
    // Grant TTL elapsed in flight but no newer invalidation was delivered:
    // serve the grant's own (epoch, content) answer once — it is the
    // root's atomic read at service time, exactly what a linearizable
    // round trip would have returned. Without this a TTL shorter than the
    // round trip retries forever.
    if (lease == nullptr || rv->epoch >= lease->max_invalidated) {
      *out = rv->ks[off] == static_cast<dsm::Word>(key)
                 ? std::optional<dsm::Word>(rv->vs[off])
                 : std::nullopt;
      break;
    }
    // The grant lost a race with a newer invalidation: fetch again — each
    // retry grants at the newest epoch.
  }
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kLeaseFetch,
                       n, fetch_began, sched.now());
    }
  }
}

bool LeaseManager::warm(dsm::NodeId n, ShardId shard,
                        const std::vector<std::size_t>& slots) const {
  if (!cfg_.enabled) return false;
  const sim::Time now = sys_->scheduler().now();
  for (const std::size_t slot : slots) {
    const StripeLease* lease =
        lease_at(n, shard, stripe_of(static_cast<std::uint32_t>(slot)));
    if (lease == nullptr || !lease->valid || now >= lease->expiry) {
      return false;
    }
  }
  return true;
}

void LeaseManager::serve_warm(dsm::NodeId n, ShardId shard, std::size_t slot,
                              Key key, std::optional<dsm::Word>* out) {
  const std::uint32_t ls = stripe_of(static_cast<std::uint32_t>(slot));
  StripeLease* lease = lease_at(n, shard, ls);
  OPTSYNC_EXPECT(lease != nullptr && lease->valid);
  ShardDir& dir = *dirs_[shard];
  ++dir.counters.hits;
  auditor_.on_serve(n, shard, ls, lease->epoch, sys_->scheduler().now(),
                    lease->expiry);
  const std::size_t off =
      slot - static_cast<std::size_t>(ls) * cfg_.stripe_width;
  *out = lease->slot_key[off] == static_cast<dsm::Word>(key)
             ? std::optional<dsm::Word>(lease->slot_val[off])
             : std::nullopt;
}

std::size_t LeaseManager::directory_size(ShardId s) const {
  std::size_t n = 0;
  for (const auto& holders : dirs_[s]->holder) n += holders.size();
  return n;
}

std::size_t LeaseManager::holders(ShardId s, std::uint32_t stripe) const {
  return dirs_[s]->holder[stripe].size();
}

std::uint64_t LeaseManager::stripe_epoch(ShardId s,
                                         std::uint32_t stripe) const {
  return dirs_[s]->epoch[stripe];
}

}  // namespace optsync::shard
