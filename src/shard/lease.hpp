// Leased read replicas: the local caching tier for partial replication.
//
// Full replication (the seed behavior, LeaseConfig::server_nodes == 0)
// makes every read free everywhere — and makes the machine pay a multicast
// per write per node. In partial-replication mode only the first
// `server_nodes` nodes are members of the shard groups; the rest are pure
// clients whose reads would otherwise pay a full round trip to the shard
// root on every access. The lease tier turns that remote read back into a
// local-memory operation (the RMR-bounding idea of local-spin DSM mutual
// exclusion, applied to data): a client acquires a *versioned read lease*
// on a key's stripe from the shard's group root, caches the stripe's
// slots, and serves subsequent reads with zero messages until the lease is
// invalidated or its TTL expires. The writer pays the invalidation.
//
// Consistency is anchored to GWC commit points. The root's LeaseDirectory
// taps every coalesce flush through GroupRoot::set_frame_observer — the
// instant a frame's writes become the group's committed order. At that
// instant the directory:
//   1. applies the frame's slot/version writes to its authoritative table
//      (grants are answered from this table, never from the root node's
//      trailing replica, so a grant's value and epoch always agree);
//   2. bumps the lease epoch of every stripe whose orec the frame bumps —
//      lease epochs advance in lockstep with the OCC orec versions readers
//      validate, which is what lets a warm kSnapshot multi_get stand in
//      for an orec-validated read set;
//   3. ships each affected live holder ONE coalesced update-carrying
//      invalidation listing the (stripe, epoch, new content) the flush
//      superseded — eagersharing extended to the client tier. The holder's
//      lease refreshes in place at the new epoch (its TTL does NOT extend;
//      only a grant does that, so idle clients age out of the directory),
//      which turns the re-grant round trip every hot-key write would
//      otherwise force into nothing. Invalidation work batches exactly as
//      the frame batched: a 64-write frame costs a holder one message.
//
// The consistency model for leased reads is bounded staleness: between a
// flush and the delivery of its invalidation a client may still serve the
// prior epoch (the same trailing-replica window every group member has,
// since frames take flight time too). The StaleReadAuditor makes the bound
// checkable: a read must never be served from a lease the client has
// already seen superseded — i.e. after an invalidation for a newer epoch
// was DELIVERED to that client — and never past its TTL.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/system.hpp"
#include "shard/shard_map.hpp"
#include "simkern/coro.hpp"

namespace optsync::shard {

struct LeaseConfig {
  /// Client-side caching switch. Off: client reads still work but every
  /// one pays the root round trip (the leases-off baseline benches compare
  /// against). The root-side directory runs either way in partial mode.
  bool enabled = false;

  /// 0 = full replication over all nodes (the pre-lease store, byte for
  /// byte). N > 0: shard groups span nodes [0, N); nodes >= N are clients.
  std::uint32_t server_nodes = 0;

  /// Lease lifetime. A client never serves a lease past grant + ttl_ns;
  /// the root prunes expired holders at the next flush without sending
  /// them invalidations (their lease already self-revoked).
  sim::Duration ttl_ns = 2'000'000;

  /// KV slots per lease stripe. Leases, epochs, and the holder directory
  /// are per stripe, so width bounds directory size: a shard tracks at
  /// most ceil(slots / width) * clients holder entries. Width 1 pins the
  /// lease stripe to the OCC orec stripe (stripe == slot == orec).
  std::uint32_t stripe_width = 1;

  /// Server-side cost to answer one lease RPC: directory lookup, holder
  /// bookkeeping, reply marshalling, and the reply's egress serialization
  /// at the 1 Gb/s link. Each server NODE is one software serializer —
  /// concurrent grants and linearizable remote reads queue FIFO behind it
  /// (the point-to-point network itself is latency-only, so this clock is
  /// what models the fan-in ceiling the lease tier exists to dodge, the
  /// same way GroupRoot's wire-clear models the frame egress).
  /// Invalidations are exempt: they ride the flush path, whose egress the
  /// frame wire-clear already charges.
  sim::Duration root_service_ns = 650;

  /// Wire model, mirroring dsm::DemandFetchConfig: requests and acks are
  /// control-sized, payloads add data_bytes per slot carried.
  std::uint32_t ctrl_bytes = 16;
  std::uint32_t data_bytes = 24;
  /// An update-carrying invalidation: base + per-revoked-stripe record +
  /// data_bytes per slot of pushed stripe content.
  std::uint32_t inval_base_bytes = 16;
  std::uint32_t inval_stripe_bytes = 8;
};

/// Independent witness for the lease tier's staleness bound. Fed two event
/// streams — invalidation deliveries and lease-served reads — it tracks,
/// per (client, shard, stripe), the newest epoch the client has been TOLD
/// is superseded, and flags any read served from an older epoch (or past
/// its TTL). Kept deliberately free of LeaseManager state so tests and the
/// service CLI can trust it as a second opinion.
class StaleReadAuditor {
 public:
  void on_invalidation(dsm::NodeId node, ShardId shard, std::uint32_t stripe,
                       std::uint64_t epoch);
  void on_serve(dsm::NodeId node, ShardId shard, std::uint32_t stripe,
                std::uint64_t epoch, sim::Time now, sim::Time expiry);

  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] bool ok() const { return violations_ == 0; }
  /// One-line verdict for CLI output / test failure messages.
  [[nodiscard]] std::string report() const;

 private:
  static std::uint64_t slot_key(dsm::NodeId node, ShardId shard,
                                std::uint32_t stripe) {
    return (static_cast<std::uint64_t>(node) << 44) |
           (static_cast<std::uint64_t>(shard) << 24) | stripe;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> highwater_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t expired_ = 0;
};

/// The lease tier: root-side directories (one per shard) + client-side
/// stripe caches + the RPC glue between them. Owned by ShardedStore in
/// partial-replication mode; inert (never constructed) under full
/// replication.
class LeaseManager {
 public:
  LeaseManager(dsm::DsmSystem& sys, LeaseConfig cfg,
               std::uint32_t slots_per_shard);

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Wires one shard into the tier: builds the var -> (slot | orec stripe |
  /// version) role table, seeds the authoritative value table, and installs
  /// the frame observer on the shard's root. Call once per shard, before
  /// any traffic.
  void register_shard(ShardId shard, dsm::GroupId group, dsm::NodeId root,
                      const std::vector<dsm::VarId>& slot_keys,
                      const std::vector<dsm::VarId>& slot_values,
                      const std::vector<dsm::VarId>& orec_vars,
                      dsm::VarId version_var);

  /// One client read against `shard`'s stripe of `slot`. With `leased` set
  /// (and LeaseConfig::enabled) the read is served from the local stripe
  /// cache when the lease is warm — zero messages — and otherwise fetches
  /// a fresh lease from the root. Without it the read is a plain
  /// linearizable round trip (no lease installed). `*out` receives the
  /// key's value, or nullopt if absent.
  sim::Process client_read(dsm::NodeId n, ShardId shard, std::size_t slot,
                           Key key, std::optional<dsm::Word>* out,
                           bool leased);

  /// True when every slot the stripes of `slots` cover is warm on `n`:
  /// a valid, unexpired lease with cached values. A warm kSnapshot
  /// multi_get is served entirely locally.
  [[nodiscard]] bool warm(dsm::NodeId n, ShardId shard,
                          const std::vector<std::size_t>& slots) const;
  /// Serves one slot from the warm cache (caller checked warm()).
  void serve_warm(dsm::NodeId n, ShardId shard, std::size_t slot, Key key,
                  std::optional<dsm::Word>* out);

  [[nodiscard]] std::uint32_t stripe_of(std::size_t slot) const {
    return static_cast<std::uint32_t>(slot) / cfg_.stripe_width;
  }
  [[nodiscard]] std::uint32_t stripes() const { return stripes_; }
  [[nodiscard]] const LeaseConfig& config() const { return cfg_; }

  // --- introspection (fill_report, tests, benches) -----------------------
  struct ShardCounters {
    std::uint64_t hits = 0;
    std::uint64_t grants = 0;
    std::uint64_t invalidations = 0;  ///< per-holder stripe revocations sent
    std::uint64_t remote_reads = 0;   ///< linearizable round trips
    std::uint64_t forwarded = 0;      ///< writes/txns routed to the root
  };
  [[nodiscard]] const ShardCounters& counters(ShardId s) const {
    return dirs_[s]->counters;
  }
  void note_forwarded(ShardId s) { ++dirs_[s]->counters.forwarded; }

  /// Online root migration: points the shard's directory at the successor
  /// root. The directory itself (values, epochs, holders) is root-location
  /// independent — stripe epochs continue across the cut, which is why the
  /// StaleReadAuditor sees one uninterrupted stream — but grants,
  /// linearizable reads, and invalidations must originate at (and charge
  /// the RPC serializer of) the new root node from here on.
  void set_root(ShardId s, dsm::NodeId root) { dirs_[s]->root = root; }

  /// Live holder entries in `shard`'s directory (all stripes).
  [[nodiscard]] std::size_t directory_size(ShardId s) const;
  [[nodiscard]] std::size_t holders(ShardId s, std::uint32_t stripe) const;
  /// Root-side lease epoch of one stripe (== the orec version the stripe's
  /// last committed write published, when stripe_width == 1).
  [[nodiscard]] std::uint64_t stripe_epoch(ShardId s,
                                           std::uint32_t stripe) const;

  [[nodiscard]] StaleReadAuditor& auditor() { return auditor_; }
  [[nodiscard]] const StaleReadAuditor& auditor() const { return auditor_; }

 private:
  /// Where a frame write lands in the lease model.
  enum class Role : std::uint8_t { kSlotKey, kSlotValue, kOrec, kVersion };
  struct VarRole {
    ShardId shard;
    Role role;
    std::uint32_t index;  ///< slot (kSlotKey/kSlotValue) or orec stripe
  };

  struct Holder {
    dsm::NodeId node;
    std::uint64_t epoch;
    sim::Time expiry;
  };

  /// Root-side state for one shard: the authoritative (as-of-last-flush)
  /// value table grants are answered from, per-stripe epochs, and the
  /// holder directory.
  struct ShardDir {
    ShardId shard = 0;
    dsm::GroupId group = 0;
    dsm::NodeId root = 0;
    std::vector<dsm::Word> slot_key;
    std::vector<dsm::Word> slot_val;
    dsm::Word version = 0;
    std::vector<std::uint64_t> epoch;        ///< per lease stripe
    std::vector<std::vector<Holder>> holder; ///< per lease stripe
    ShardCounters counters;
  };

  /// Client-side cached stripe. `valid` false once invalidated or
  /// superseded; `max_invalidated` outlives the lease so a late grant that
  /// raced an invalidation is detected and refetched.
  struct StripeLease {
    std::uint64_t epoch = 0;
    std::uint64_t max_invalidated = 0;
    sim::Time expiry = 0;
    bool valid = false;
    std::vector<dsm::Word> slot_key;  ///< stripe's slots, cached at grant
    std::vector<dsm::Word> slot_val;
  };

  void on_flush(ShardDir& dir, const dsm::Frame& frame);
  void send_invalidations(
      ShardDir& dir,
      const std::vector<std::pair<dsm::NodeId, std::uint32_t>>& revoked);
  [[nodiscard]] StripeLease* lease_at(dsm::NodeId n, ShardId shard,
                                      std::uint32_t stripe);
  [[nodiscard]] const StripeLease* lease_at(dsm::NodeId n, ShardId shard,
                                            std::uint32_t stripe) const;
  static std::uint64_t cache_key(ShardId shard, std::uint32_t stripe) {
    return (static_cast<std::uint64_t>(shard) << 24) | stripe;
  }
  /// Reserves the next FIFO service slot on `root`'s RPC serializer and
  /// returns the delay from now until that slot completes (when the
  /// handler runs and the reply dispatches). See root_service_ns.
  [[nodiscard]] sim::Duration serve_delay(dsm::NodeId root);

  dsm::DsmSystem* sys_;
  LeaseConfig cfg_;
  std::uint32_t slots_;
  std::uint32_t stripes_;
  std::vector<std::unique_ptr<ShardDir>> dirs_;  ///< indexed by ShardId
  std::unordered_map<dsm::VarId, VarRole> roles_;
  /// Per-node stripe caches (clients only ever populate theirs).
  std::vector<std::unordered_map<std::uint64_t, StripeLease>> cache_;
  /// Per-node RPC-serializer clear times (see serve_delay); indexed by
  /// NodeId, only server nodes' entries ever advance.
  std::vector<sim::Time> svc_clear_;
  StaleReadAuditor auditor_;
};

}  // namespace optsync::shard
