#include "shard/coalesce_controller.hpp"

#include <algorithm>
#include <string>

#include "dsm/root.hpp"
#include "dsm/system.hpp"
#include "shard/sharded_store.hpp"

namespace optsync::shard {

CoalesceController::CoalesceController(ShardedStore& store,
                                       const stats::ServiceReport& live,
                                       CoalesceControllerConfig cfg)
    : store_(&store), live_(&live), cfg_(cfg) {
  if (cfg_.interval_ns <= 0) cfg_.interval_ns = 50'000;
  cfg_.min_writes = std::max(1u, cfg_.min_writes);
  cfg_.max_writes = std::max(cfg_.min_writes, cfg_.max_writes);
  ctl_.resize(store.shards());
  for (std::uint32_t s = 0; s < store.shards(); ++s) {
    auto& root = store.system().root_of(store.group_of(s));
    ctl_[s].cap = std::max(cfg_.min_writes, root.coalesce_max_writes());
    ctl_[s].peak = ctl_[s].cap;
  }
}

void CoalesceController::start() {
  pending_ = store_->system().scheduler().after_housekeeping(
      cfg_.interval_ns, [this] { tick(); });
}

void CoalesceController::stop() {
  if (pending_ != 0) {
    store_->system().scheduler().cancel_housekeeping(pending_);
    pending_ = 0;
  }
}

void CoalesceController::register_telemetry(telemetry::Sampler& sampler) {
  sampler.set_help("optsync_coalesce_cap",
                   "Current write-coalescing batch cap, per shard");
  for (std::uint32_t s = 0; s < ctl_.size(); ++s) {
    sampler.add_gauge("optsync_coalesce_cap",
                      {{"shard", std::to_string(s)}},
                      [this, s] { return static_cast<double>(ctl_[s].cap); });
  }
}

double CoalesceController::backlog(ShardId s) const {
  if (s >= live_->shards.size()) return 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  for (const auto& o : live_->shards[s].ops) {
    issued += o.issued;
    completed += o.completed;
  }
  return static_cast<double>(issued) - static_cast<double>(completed);
}

void CoalesceController::apply_cap(ShardId s, std::uint32_t cap) {
  ShardCtl& c = ctl_[s];
  if (cap == c.cap) return;
  if (cap > c.cap) {
    ++c.raises;
  } else {
    ++c.lowers;
  }
  c.cap = cap;
  c.peak = std::max(c.peak, cap);
  auto& root = store_->system().root_of(store_->group_of(s));
  // At the floor the deadline is irrelevant (every flush is size-triggered);
  // while batching, use the short deadline so an arrival lull cannot hold a
  // parked grant past batch_deadline_ns.
  root.set_coalesce(cap, cfg_.batch_deadline_ns);
}

void CoalesceController::tick() {
  pending_ = 0;
  ++ticks_;
  for (std::uint32_t s = 0; s < ctl_.size(); ++s) {
    ShardCtl& c = ctl_[s];
    const auto& root_stats =
        store_->system().root_of(store_->group_of(s)).stats();
    const std::uint64_t d_frames = root_stats.frames - c.last_frames;
    const std::uint64_t d_timer =
        root_stats.timer_flushes - c.last_timer_flushes;
    c.last_frames = root_stats.frames;
    c.last_timer_flushes = root_stats.timer_flushes;

    const double b = backlog(s);
    std::uint32_t next = c.cap;
    if (b >= cfg_.backlog_high) {
      // Root-bound: writes are queueing faster than they complete, so
      // frames fill from the queue — batching is latency-free here and
      // halves the message count per doubling.
      next = std::min(cfg_.max_writes, std::max(2u, c.cap * 2));
    } else if (b <= cfg_.backlog_low) {
      next = std::max(cfg_.min_writes, c.cap / 2);
    } else if (c.cap > cfg_.min_writes && d_frames > 0 &&
               static_cast<double>(d_timer) >
                   cfg_.timer_share_high * static_cast<double>(d_frames)) {
      // Mid-band but frames mostly close on the deadline: the cap outruns
      // the arrival rate and only adds latency. Back off one step.
      next = std::max(cfg_.min_writes, c.cap / 2);
    }
    apply_cap(s, next);
  }
  // Re-arm only while the simulation is still doing real work, so the run
  // can drain (telemetry::Sampler's idiom). busy(), not !idle(): the
  // sampler's own armed tick must not count as work, or the two
  // housekeeping loops keep each other alive and run() never returns.
  if (store_->system().scheduler().busy()) {
    pending_ = store_->system().scheduler().after_housekeeping(
        cfg_.interval_ns, [this] { tick(); });
  }
}

}  // namespace optsync::shard
