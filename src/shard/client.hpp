// shard::Client: the consistency-aware operation facade over ShardedStore.
//
// The store's historical surface grew one method per operation shape
// (get/put/multi_put/multi_rmw/multi_get), with consistency implied by the
// method rather than requested by the caller. Client collapses that into
// three verbs —
//
//   read(node, key, &out, {ConsistencyLevel})
//   write(node, key, value)
//   txn(node, TxnRequest{puts | adds+delta | reads}, &result)
//
// — with the read-side consistency an explicit, per-call choice:
//
//   kLinearizable  the root's current value; clients pay a round trip.
//   kLeased        serve from a warm local lease, zero messages; bounded
//                  staleness (never past TTL, never a version the client
//                  saw invalidated).
//   kSnapshot      kLeased for single reads; a txn of `reads` is served
//                  entirely from local leases when every stripe is warm,
//                  else it runs the OCC snapshot protocol at the root.
//
// Under full replication every level reads local replica memory, so the
// level only changes behavior for client (non-member) nodes in
// partial-replication mode — which is exactly when the caller must say
// what staleness it can tolerate.
//
// On an elastic fabric (ElasticConfig::enabled) the client additionally
// carries a cached directory epoch. Every operation first checks its view
// against the store's live directory; a stale view pays one redirect probe
// to the believed owner's root, refreshes the epoch, and retries the check
// before the operation proceeds against the true owner. Stale-map clients
// are therefore slower, never wrong. On a static fabric the check is a
// single version compare.
//
// Client is otherwise stateless (a pointer to the store plus the epoch and
// its redirect counters), so any number can be constructed; the per-node
// one-instruction-stream rule still applies to the operations themselves.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "shard/sharded_store.hpp"
#include "simkern/coro.hpp"

namespace optsync::shard {

struct ReadOptions {
  ConsistencyLevel level = ConsistencyLevel::kLinearizable;
};

/// Write-side knobs. Empty today — writes always commit through the owning
/// shard's lock protocol — kept so call sites name their intent and future
/// knobs (durability class, async ack) land without a signature change.
struct WriteOptions {};

/// One multi-key transaction. Exactly one operation class may be
/// populated:
///   * puts  — atomic multi-key write;
///   * adds  — multi-key read-modify-write (each value += delta, absent
///             keys start at 0; the YCSB-F idiom);
///   * reads — consistent multi-key snapshot (values land in
///             TxnResult::values, aligned with `reads`).
struct TxnRequest {
  std::vector<std::pair<Key, dsm::Word>> puts;
  std::vector<Key> adds;
  dsm::Word delta = 0;
  std::vector<Key> reads;
};

struct TxnResult {
  std::vector<std::optional<dsm::Word>> values;
};

class Client {
 public:
  explicit Client(ShardedStore& store)
      : store_(&store), view_epoch_(store.dir_epoch()) {}

  [[nodiscard]] ShardedStore& store() { return *store_; }
  [[nodiscard]] const ShardedStore& store() const { return *store_; }

  /// Directory-staleness accounting (elastic fabric; zero otherwise).
  struct Stats {
    std::uint64_t redirects = 0;  ///< probes paid for routing with a stale map
    std::uint64_t refreshes = 0;  ///< directory epoch updates taken
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// The directory epoch this client last routed with.
  [[nodiscard]] std::uint64_t view_epoch() const { return view_epoch_; }

  /// Single-key read on node `n` at the requested consistency level.
  /// `*out` receives the value, or nullopt if the key is absent.
  sim::Process read(dsm::NodeId n, Key key, std::optional<dsm::Word>* out,
                    ReadOptions opts = {});

  /// Single-key write under the owning shard's lock protocol.
  sim::Process write(dsm::NodeId n, Key key, dsm::Word value,
                     WriteOptions opts = {});

  /// Multi-key transaction. `result` may be null unless `req.reads` is the
  /// populated class. `opts.level` applies to the reads class only.
  sim::Process txn(dsm::NodeId n, TxnRequest req, TxnResult* result = nullptr,
                   ReadOptions opts = {});

 private:
  /// Pays the stale-directory penalty for every key the op touches, then
  /// refreshes view_epoch_. Loops until the view is current — the map can
  /// move again while a probe is in flight.
  sim::Process sync_route(dsm::NodeId n, std::vector<Key> keys);

  ShardedStore* store_;
  std::uint64_t view_epoch_ = 0;
  Stats stats_;
};

}  // namespace optsync::shard
