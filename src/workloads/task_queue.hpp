// Task-management workload (paper §3.1 / Fig. 2).
//
// One producer generates `total_tasks` tasks into a shared bounded queue
// guarded by one mutual exclusion lock; the other N-1 processors dequeue and
// execute them. The producer "waits for the last to be executed before
// stopping". Task production is much faster than execution (the paper's
// ratio assumption); past the point where N-1 exceeds 1/ratio the producer
// cannot keep everyone busy and efficiency collapses — the downturn visible
// at the right edge of Fig. 2.
//
// Three variants regenerate the figure's three lines:
//   * run_task_queue_gwc    — eagersharing + GWC queue lock (Sesame);
//   * run_task_queue_entry  — the "fast" entry consistency baseline
//                             (owner always known, local releases, data
//                             moves with the lock, demand-fetched tests);
//   * run_task_queue_ideal  — GWC with a zero-delay network: the
//                             "maximum speedup possible if network delays
//                             were zero" bound.
#pragma once

#include <cstdint>

#include "dsm/types.hpp"
#include "net/topology.hpp"
#include "simkern/time.hpp"

namespace optsync::workloads {

struct TaskQueueParams {
  std::uint32_t total_tasks = 1024;

  /// Task execution cost. 8448 flops at 33 MFLOPS = 256 us.
  std::uint64_t exec_flops = 8448;

  /// t_produce = produce_ratio * t_execute. 1/128 reproduces the paper's
  /// "with over 100 processors, there are not enough tasks produced to
  /// keep all processors busy".
  double produce_ratio = 1.0 / 128.0;

  std::uint32_t queue_capacity = 128;

  /// Local cost of testing the queue state (a couple of loads + compare).
  sim::Duration local_test_ns = 50;

  /// Tasks enqueued per lock acquisition. The producer generates tasks one
  /// by one (t_produce each) but amortizes the lock over a batch — without
  /// this, one grant per enqueue lets the consumers' grant cycles starve
  /// the producer and the queue never fills. 64 (half the queue) gives the
  /// paper's scaling; calibration in EXPERIMENTS.md.
  std::uint32_t producer_batch = 64;

  /// An idle consumer re-tests the (local, free) queue state this often
  /// instead of stampeding on every enqueue; 0 = half the task execution
  /// time. Keeps wasted grants O(1) per task in the starved regime.
  sim::Duration poll_interval_ns = 0;

  /// Base seed mixed into every per-node polling-jitter generator.
  std::uint64_t seed = 0;

  net::NodeId producer = 0;
  net::NodeId group_root = 0;

  /// Number of processors actually used (ids [0, nodes_used)); 0 = every
  /// topology node. Lets awkward counts like 129 run on a compact torus
  /// with a few idle slots instead of a degenerate 3x43 grid.
  std::size_t nodes_used = 0;
};

struct TaskQueueResult {
  double network_power = 0.0;   ///< the figure's "speedup"
  double avg_efficiency = 0.0;
  sim::Time elapsed = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t wasted_grants = 0;     ///< lock acquired, queue was empty
  std::uint64_t demand_fetches = 0;    ///< entry variant only
  std::uint64_t invalidation_rounds = 0;  ///< entry variant only
};

/// Sesame: eagersharing + GWC queue lock. The queue lives in real DSM
/// variables; values flow through the substrate end to end.
TaskQueueResult run_task_queue_gwc(const TaskQueueParams& params,
                                   const net::Topology& topo,
                                   const dsm::DsmConfig& cfg);

/// Entry consistency baseline over the same topology and link model.
TaskQueueResult run_task_queue_entry(const TaskQueueParams& params,
                                     const net::Topology& topo,
                                     const net::LinkModel& link);

/// Zero-network-delay bound (GWC protocol, free messages).
TaskQueueResult run_task_queue_ideal(const TaskQueueParams& params,
                                     const net::Topology& topo);

}  // namespace optsync::workloads
