// The paper's Figure 1: idle time during three successive mutually
// exclusive accesses under (a) Sesame GWC, (b) entry consistency, and
// (c) weak/release consistency.
//
// Three CPUs contend for one lock. CPU1 and CPU3 request early (CPU3
// slightly after CPU1), CPU2 — the group root / lock manager — requests
// later. Each performs one read-update-release of the shared data. The
// scenario records a per-CPU activity timeline and the wasted idle time
// each model incurs.
#pragma once

#include <array>
#include <string>

#include "dsm/types.hpp"
#include "simkern/time.hpp"

namespace optsync::workloads {

enum class Fig1Model { kGwc, kEntry, kWeakRelease };

struct Fig1Params {
  /// Compute time of each CPU's update section (5 us default).
  sim::Duration update_ns = 5'000;
  /// Number of shared-variable writes each update performs.
  std::uint32_t writes_per_update = 8;
  /// Guarded-data size shipped by entry consistency grants.
  std::uint32_t entry_data_bytes = 128;
  /// CPU3 requests this long after CPU1.
  sim::Duration cpu3_offset_ns = 1'000;
  /// CPU2 requests this long after CPU1.
  sim::Duration cpu2_offset_ns = 12'000;
  /// Substrate config for the GWC model (fault plan + reliable transport);
  /// the entry and weak/release models run on their own engines.
  dsm::DsmConfig dsm;
};

struct Fig1Result {
  /// Wall-clock until the last release completes.
  sim::Time total_ns = 0;
  /// Per-CPU idle (lock-wait) time; index 0 = CPU1, 1 = CPU2, 2 = CPU3.
  std::array<sim::Duration, 3> idle_ns{};
  /// Rendered ASCII timeline of the run.
  std::string timeline;
  /// Order in which CPUs entered the critical section (1-based ids).
  std::array<int, 3> grant_order{};
  /// Network totals for the run (every model fills these from its engine's
  /// Network; the coalescing comparison in bench/fig1_locking_comparison
  /// diffs them across --coalesce-max-writes settings).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hop_bytes = 0;
  /// Multicast frames the root flushed (GWC model only).
  std::uint64_t frames = 0;
};

Fig1Result run_scenario_fig1(Fig1Model model, const Fig1Params& params);

std::string fig1_model_name(Fig1Model model);

}  // namespace optsync::workloads
