// The paper's Figure 7: "The Most Complex Rollback Interaction".
//
// A requester far from the group root speculates (optimistically updates
// a = x, where x depends on a) while a nearer processor's request, update
// (a = y), and release all reach the root first. The far node's interrupt
// fires on the other grant, it rolls back, waits, receives the lock, and
// performs the correct update (a = r, computed from y). The root silently
// drops the speculative a = x. The scenario records the full message trace
// and the checks that prove each mechanism fired.
#pragma once

#include <cstdint>
#include <string>

#include "dsm/types.hpp"
#include "simkern/time.hpp"
#include "stats/lock_stats.hpp"
#include "stats/metrics.hpp"

namespace optsync::workloads {

struct Fig7Params {
  /// Mutex-section compute time of the winning (near) requester. Long
  /// enough that the far node's speculative update reaches the root while
  /// the near node still holds the lock — the figure's "Data (a=x) dropped"
  /// arrow requires the root to see the write from a non-holder.
  sim::Duration near_section_ns = 30'000;
  /// Mutex-section compute time of the speculating (far) requester.
  sim::Duration far_section_ns = 2'000;
  /// The near requester starts this much earlier than the far one.
  sim::Duration near_head_start_ns = 100;
  /// Ring size; the far node sits opposite the root.
  std::size_t nodes = 8;
  /// Substrate config — lets the soak tests replay the figure-7 interaction
  /// over a lossy network with the reliable layer on.
  dsm::DsmConfig dsm;
};

struct Fig7Result {
  dsm::Word final_a = 0;        ///< must equal f(f(a0)) applied in order
  dsm::Word expected_a = 0;
  std::uint64_t rollbacks = 0;          ///< must be 1
  std::uint64_t speculative_drops = 0;  ///< root filtered a = x; must be >= 1
  std::uint64_t echoes_dropped = 0;     ///< HW blocking events on the far node
  bool far_used_optimistic = false;
  bool near_used_optimistic = false;
  sim::Time elapsed = 0;
  std::string trace;  ///< message-level log of the interaction
  stats::FaultReport faults;  ///< all-zero when the run had no faults
  stats::LockStats lock_stats;  ///< per-lock record for fig7.lock
};

Fig7Result run_scenario_fig7(const Fig7Params& params);

}  // namespace optsync::workloads
