#include "workloads/scenario_fig1.hpp"

#include <sstream>
#include <vector>

#include "consistency/entry.hpp"
#include "consistency/release.hpp"
#include "dsm/system.hpp"
#include "net/topology.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"
#include "stats/timeline.hpp"
#include "sync/gwc_lock.hpp"

namespace optsync::workloads {

namespace {

// The figure's layout: three CPUs, CPU2 (node index 1) is the group root /
// lock owner / lock manager in all three models.
constexpr net::NodeId kCpu1 = 0;
constexpr net::NodeId kCpu2 = 1;
constexpr net::NodeId kCpu3 = 2;

struct Shared {
  const Fig1Params* params;
  sim::Scheduler* sched;
  stats::Timeline* timeline;
  std::array<sim::Duration, 3>* idle;
  std::array<int, 3>* grant_order;
  int granted_so_far = 0;
  sim::Time last_release = 0;

  void note_grant(net::NodeId cpu, sim::Time requested_at) {
    (*idle)[cpu] += sched->now() - requested_at;
    (*grant_order)[static_cast<std::size_t>(granted_so_far++)] =
        static_cast<int>(cpu) + 1;
    timeline->record(cpu, requested_at, sched->now(),
                     stats::Activity::kWait);
  }
  void note_section(net::NodeId cpu, sim::Time began) {
    timeline->record(cpu, began, sched->now(), stats::Activity::kMutex);
    last_release = std::max(last_release, sched->now());
  }
};

sim::Process gwc_cpu(Shared& sh, dsm::DsmSystem& sys, sync::GwcQueueLock& lk,
                     const std::vector<dsm::VarId>& data, net::NodeId cpu,
                     sim::Duration start_at) {
  auto& sched = sys.scheduler();
  const auto& p = *sh.params;
  co_await sim::delay(sched, start_at);
  const sim::Time requested = sched.now();
  co_await lk.acquire(cpu).join();
  sh.note_grant(cpu, requested);

  const sim::Time began = sched.now();
  auto& node = sys.node(cpu);
  // Reads are local (eagersharing); writes stream out without stalling.
  const sim::Duration slice = p.update_ns / p.writes_per_update;
  for (std::uint32_t w = 0; w < p.writes_per_update; ++w) {
    co_await sim::delay(sched, slice);
    node.write(data[w], static_cast<dsm::Word>(cpu * 100 + w));
  }
  // "When CPU1 finishes its last update, it immediately releases the lock."
  lk.release(cpu);
  sh.note_section(cpu, began);
}

Fig1Result run_gwc(const Fig1Params& p) {
  sim::Scheduler sched;
  net::FullyConnected topo(3);
  dsm::DsmSystem sys(sched, topo, p.dsm);
  const dsm::GroupId g = sys.create_group({kCpu1, kCpu2, kCpu3}, kCpu2);
  const dsm::VarId lock = sys.define_lock("fig1.lock", g);
  std::vector<dsm::VarId> data;
  for (std::uint32_t w = 0; w < p.writes_per_update; ++w) {
    data.push_back(
        sys.define_mutex_data("fig1.d" + std::to_string(w), g, lock));
  }
  sync::GwcQueueLock lk(sys, lock);

  Fig1Result res;
  stats::Timeline tl(3);
  Shared sh{&p, &sched, &tl, &res.idle_ns, &res.grant_order};

  std::vector<sim::Process> procs;
  procs.push_back(gwc_cpu(sh, sys, lk, data, kCpu1, 0));
  procs.push_back(gwc_cpu(sh, sys, lk, data, kCpu3, p.cpu3_offset_ns));
  procs.push_back(gwc_cpu(sh, sys, lk, data, kCpu2, p.cpu2_offset_ns));
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();

  res.total_ns = sh.last_release;
  res.messages = sys.network().stats().messages;
  res.bytes = sys.network().stats().bytes;
  res.hop_bytes = sys.network().stats().hop_bytes;
  res.frames = sys.root_of(g).stats().frames;
  std::ostringstream os;
  tl.render(os, res.total_ns, 84, {"CPU1", "CPU2", "CPU3"});
  res.timeline = os.str();
  return res;
}

sim::Process entry_cpu(Shared& sh, sim::Scheduler& sched,
                       consistency::EntryEngine& ec,
                       consistency::EntryEngine::LockId l, net::NodeId cpu,
                       sim::Duration start_at) {
  const auto& p = *sh.params;
  co_await sim::delay(sched, start_at);
  const sim::Time requested = sched.now();
  co_await ec.acquire(cpu, l).join();
  sh.note_grant(cpu, requested);

  const sim::Time began = sched.now();
  // Under entry consistency the guarded data arrived with the grant, so the
  // update itself is local computation.
  co_await sim::delay(sched, p.update_ns);
  ec.release(cpu, l);  // local release
  sh.note_section(cpu, began);
}

Fig1Result run_entry(const Fig1Params& p) {
  sim::Scheduler sched;
  net::FullyConnected topo(3);
  net::Network net(sched, topo, net::LinkModel::paper());
  consistency::EntryEngine ec(net, consistency::EntryEngine::Config{});
  const auto l = ec.create_lock(kCpu2, p.entry_data_bytes);
  // The figure starts with CPU1 and CPU3 holding the data in non-exclusive
  // mode, forcing the invalidation round before the first grant.
  ec.add_reader(l, kCpu1);
  ec.add_reader(l, kCpu3);

  Fig1Result res;
  stats::Timeline tl(3);
  Shared sh{&p, &sched, &tl, &res.idle_ns, &res.grant_order};

  std::vector<sim::Process> procs;
  procs.push_back(entry_cpu(sh, sched, ec, l, kCpu1, 0));
  procs.push_back(entry_cpu(sh, sched, ec, l, kCpu3, p.cpu3_offset_ns));
  procs.push_back(entry_cpu(sh, sched, ec, l, kCpu2, p.cpu2_offset_ns));
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();

  res.total_ns = sh.last_release;
  res.messages = net.stats().messages;
  res.bytes = net.stats().bytes;
  res.hop_bytes = net.stats().hop_bytes;
  std::ostringstream os;
  tl.render(os, res.total_ns, 84, {"CPU1", "CPU2", "CPU3"});
  res.timeline = os.str();
  return res;
}

sim::Process release_cpu(Shared& sh, sim::Scheduler& sched,
                         consistency::ReleaseEngine& rc,
                         consistency::ReleaseEngine::LockId l, net::NodeId cpu,
                         sim::Duration start_at) {
  const auto& p = *sh.params;
  co_await sim::delay(sched, start_at);
  const sim::Time requested = sched.now();
  co_await rc.acquire(cpu, l).join();
  sh.note_grant(cpu, requested);

  const sim::Time began = sched.now();
  const sim::Duration slice = p.update_ns / p.writes_per_update;
  for (std::uint32_t w = 0; w < p.writes_per_update; ++w) {
    co_await sim::delay(sched, slice);
    rc.write_shared(cpu, l);
  }
  // Release blocks until the updates reach all nodes (Fig. 1c).
  co_await rc.release(cpu, l).join();
  sh.note_section(cpu, began);
}

Fig1Result run_weak_release(const Fig1Params& p) {
  sim::Scheduler sched;
  net::FullyConnected topo(3);
  net::Network net(sched, topo, net::LinkModel::paper());
  consistency::ReleaseEngine rc(net, {kCpu1, kCpu2, kCpu3},
                                consistency::ReleaseEngine::Config{});
  const auto l = rc.create_lock(kCpu2);

  Fig1Result res;
  stats::Timeline tl(3);
  Shared sh{&p, &sched, &tl, &res.idle_ns, &res.grant_order};

  std::vector<sim::Process> procs;
  procs.push_back(release_cpu(sh, sched, rc, l, kCpu1, 0));
  procs.push_back(release_cpu(sh, sched, rc, l, kCpu3, p.cpu3_offset_ns));
  procs.push_back(release_cpu(sh, sched, rc, l, kCpu2, p.cpu2_offset_ns));
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();

  res.total_ns = sh.last_release;
  res.messages = net.stats().messages;
  res.bytes = net.stats().bytes;
  res.hop_bytes = net.stats().hop_bytes;
  std::ostringstream os;
  tl.render(os, res.total_ns, 84, {"CPU1", "CPU2", "CPU3"});
  res.timeline = os.str();
  return res;
}

}  // namespace

Fig1Result run_scenario_fig1(Fig1Model model, const Fig1Params& params) {
  switch (model) {
    case Fig1Model::kGwc:
      return run_gwc(params);
    case Fig1Model::kEntry:
      return run_entry(params);
    case Fig1Model::kWeakRelease:
      return run_weak_release(params);
  }
  OPTSYNC_ENSURE(false && "unreachable: unknown Fig1Model");
  return {};
}

std::string fig1_model_name(Fig1Model model) {
  switch (model) {
    case Fig1Model::kGwc:
      return "Sesame GWC";
    case Fig1Model::kEntry:
      return "entry consistency";
    case Fig1Model::kWeakRelease:
      return "weak/release consistency";
  }
  return "?";
}

}  // namespace optsync::workloads
