#include "workloads/task_queue.hpp"

#include <deque>
#include <vector>

#include "consistency/entry.hpp"
#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"
#include "simkern/random.hpp"
#include "stats/metrics.hpp"
#include "sync/gwc_lock.hpp"

namespace optsync::workloads {

namespace {

constexpr dsm::Word kPoison = -1;

struct Times {
  sim::Duration exec;
  sim::Duration produce;
};

Times compute_times(const TaskQueueParams& p, const net::CpuModel& cpu) {
  const sim::Duration exec = cpu.flops_time(p.exec_flops);
  const auto produce = static_cast<sim::Duration>(
      static_cast<double>(exec) * p.produce_ratio);
  return Times{exec, produce};
}

sim::Duration poll_interval(const TaskQueueParams& p, const Times& t) {
  return p.poll_interval_ns != 0 ? p.poll_interval_ns : t.exec / 2;
}

// Deterministic per-consumer jitter so idle pollers spread out instead of
// synchronizing (factor in [0.5, 1.5)).
sim::Duration jittered(sim::Duration base, sim::Rng& rng) {
  return static_cast<sim::Duration>(static_cast<double>(base) *
                                    (0.5 + rng.uniform01()));
}

// ------------------------------------------------------------------ GWC ---

struct GwcQueueVars {
  dsm::VarId lock;
  dsm::VarId head;
  dsm::VarId tail;
  std::vector<dsm::VarId> slots;
  dsm::VarId done_tick;                ///< multi-writer wake-up for producer
  std::vector<dsm::VarId> done_per_consumer;
};

struct GwcRun {
  const TaskQueueParams* params;
  Times times;
  dsm::DsmSystem* sys;
  sync::GwcQueueLock* lock;
  GwcQueueVars vars;
  stats::EfficiencyMeter* meter;
  std::uint64_t wasted_grants = 0;
  std::uint64_t tasks_executed = 0;
  sim::Time finished_at = 0;
};

sim::Process gwc_producer(GwcRun& run) {
  const auto& p = *run.params;
  auto& sys = *run.sys;
  auto& sched = sys.scheduler();
  auto& node = sys.node(p.producer);
  const std::size_t n_consumers = run.vars.done_per_consumer.size();

  // Enqueues a batch under one lock grant: per-slot writes plus a single
  // tail update (GWC ordering makes the tail write publish the whole batch).
  auto enqueue_batch = [&](const std::vector<dsm::Word>& batch)
      -> sim::Process {
    // Only the producer writes tail, so space observed once holds until we
    // enqueue (consumers only advance head).
    while (node.read(run.vars.tail) - node.read(run.vars.head) +
               static_cast<dsm::Word>(batch.size()) >
           static_cast<dsm::Word>(p.queue_capacity)) {
      co_await node.on_change(run.vars.head).wait();
    }
    co_await run.lock->acquire(p.producer).join();
    const dsm::Word tail = node.read(run.vars.tail);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      node.write(run.vars.slots[static_cast<std::size_t>(tail + i) %
                                p.queue_capacity],
                 batch[i]);
    }
    node.write(run.vars.tail, tail + static_cast<dsm::Word>(batch.size()));
    run.lock->release(p.producer);
  };

  // A batch larger than the queue could never fit and would stall forever.
  const std::uint32_t batch_max =
      std::max(1u, std::min(p.producer_batch, p.queue_capacity));
  std::vector<dsm::Word> batch;
  for (std::uint32_t t = 0; t < p.total_tasks; ++t) {
    co_await sim::delay(sched, run.times.produce);
    run.meter->add_useful(p.producer, run.times.produce);
    batch.push_back(static_cast<dsm::Word>(t + 1));
    if (batch.size() >= batch_max || t + 1 == p.total_tasks) {
      co_await enqueue_batch(batch).join();
      batch.clear();
    }
  }
  // One poison pill per consumer terminates the network.
  for (std::size_t c = 0; c < n_consumers; ++c) {
    batch.push_back(kPoison);
    if (batch.size() >= batch_max || c + 1 == n_consumers) {
      co_await enqueue_batch(batch).join();
      batch.clear();
    }
  }

  // "One producer generates a total of 1024 tasks and waits for the last to
  // be executed before stopping." Completion counts are single-writer
  // eagershared variables; the producer sums its local copies.
  for (;;) {
    dsm::Word done = 0;
    for (const dsm::VarId v : run.vars.done_per_consumer) {
      done += node.read(v);
    }
    if (done >= static_cast<dsm::Word>(p.total_tasks)) break;
    co_await node.on_change(run.vars.done_tick).wait();
  }
  run.finished_at = sched.now();
}

sim::Process gwc_consumer(GwcRun& run, net::NodeId me, dsm::VarId my_done) {
  const auto& p = *run.params;
  auto& sys = *run.sys;
  auto& sched = sys.scheduler();
  auto& node = sys.node(me);
  dsm::Word completed = 0;
  sim::Rng rng(0x7a5f + p.seed * 0x9e3779b9ull + me * 977);
  const sim::Duration poll = poll_interval(p, run.times);
  sim::Duration cur_poll = poll;  // doubles on wasted grants (backoff)

  for (;;) {
    // Local test — eagersharing keeps head/tail in local memory. An empty
    // queue means sleep-and-repoll; re-testing is free on the network, and
    // spreading the polls avoids a request stampede on every enqueue.
    co_await sim::delay(sched, p.local_test_ns);
    if (node.read(run.vars.head) == node.read(run.vars.tail)) {
      co_await sim::delay(sched, jittered(cur_poll, rng));
      continue;
    }
    co_await run.lock->acquire(me).join();
    const dsm::Word head = node.read(run.vars.head);
    const dsm::Word tail = node.read(run.vars.tail);
    if (head == tail) {
      // Someone else drained the queue between our local test and the
      // grant. Back off multiplicatively so the hungry-consumer population
      // self-regulates to the task arrival rate.
      run.lock->release(me);
      ++run.wasted_grants;
      cur_poll = std::min<sim::Duration>(cur_poll * 2, poll * 8);
      co_await sim::delay(sched, jittered(cur_poll, rng));
      continue;
    }
    cur_poll = poll;
    const dsm::Word task = node.read(
        run.vars.slots[static_cast<std::size_t>(head) % p.queue_capacity]);
    node.write(run.vars.head, head + 1);
    run.lock->release(me);

    if (task == kPoison) break;
    OPTSYNC_ENSURE(task > 0);
    co_await sim::delay(sched, run.times.exec);
    run.meter->add_useful(me, run.times.exec);
    ++run.tasks_executed;
    ++completed;
    node.write(my_done, completed);
    node.write(run.vars.done_tick, completed);
  }
}

TaskQueueResult run_gwc_impl(const TaskQueueParams& params,
                             const net::Topology& topo,
                             const dsm::DsmConfig& cfg) {
  const std::size_t used = params.nodes_used == 0
                               ? topo.size()
                               : std::min(params.nodes_used, topo.size());
  OPTSYNC_EXPECT(used >= 2);
  sim::Scheduler sched;
  dsm::DsmSystem sys(sched, topo, cfg);

  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < used; ++i) members.push_back(i);
  const dsm::GroupId g = sys.create_group(members, params.group_root);

  GwcQueueVars vars;
  vars.lock = sys.define_lock("taskq.lock", g);
  vars.head = sys.define_mutex_data("taskq.head", g, vars.lock, 0);
  vars.tail = sys.define_mutex_data("taskq.tail", g, vars.lock, 0);
  for (std::uint32_t i = 0; i < params.queue_capacity; ++i) {
    vars.slots.push_back(
        sys.define_mutex_data("taskq.slot" + std::to_string(i), g, vars.lock));
  }
  vars.done_tick = sys.define_data("taskq.done_tick", g);
  for (net::NodeId i = 0; i < used; ++i) {
    if (i == params.producer) continue;
    vars.done_per_consumer.push_back(
        sys.define_data("taskq.done." + std::to_string(i), g));
  }

  sync::GwcQueueLock lock(sys, vars.lock);
  stats::EfficiencyMeter meter(used);

  GwcRun run;
  run.params = &params;
  run.times = compute_times(params, cfg.cpu);
  run.sys = &sys;
  run.lock = &lock;
  run.vars = vars;
  run.meter = &meter;

  std::vector<sim::Process> procs;
  procs.push_back(gwc_producer(run));
  std::size_t done_idx = 0;
  for (net::NodeId i = 0; i < used; ++i) {
    if (i == params.producer) continue;
    procs.push_back(gwc_consumer(run, i, vars.done_per_consumer[done_idx++]));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  TaskQueueResult res;
  res.elapsed = run.finished_at;
  res.network_power = meter.network_power(res.elapsed);
  res.avg_efficiency = meter.average_efficiency(res.elapsed);
  res.tasks_executed = run.tasks_executed;
  res.messages = sys.network().stats().messages;
  res.bytes = sys.network().stats().bytes;
  res.lock_acquisitions = lock.stats().acquisitions;
  res.wasted_grants = run.wasted_grants;
  return res;
}

// ---------------------------------------------------------------- entry ---

struct EntryRun {
  const TaskQueueParams* params;
  Times times;
  sim::Scheduler* sched;
  consistency::EntryEngine* ec;
  consistency::EntryEngine::LockId lock;
  std::deque<dsm::Word> queue;  ///< ground truth; protocol costs via engine
  stats::EfficiencyMeter* meter;
  sim::Signal* done_sig;
  std::uint64_t done = 0;
  std::uint64_t wasted_grants = 0;
  std::uint64_t tasks_executed = 0;
  sim::Time finished_at = 0;
};

sim::Process entry_producer(EntryRun& run, std::size_t n_consumers) {
  const auto& p = *run.params;
  auto& sched = *run.sched;
  auto& ec = *run.ec;

  sim::Rng rng(0x600d + p.seed * 0x9e3779b9ull);
  const sim::Duration poll = poll_interval(p, run.times);

  auto enqueue_batch = [&](const std::vector<dsm::Word>& batch)
      -> sim::Process {
    // Fullness test: a demand-fetched read unless we own the data; when
    // full, sleep and re-test.
    for (;;) {
      co_await ec.read_nonexclusive(p.producer, run.lock).join();
      if (run.queue.size() + batch.size() <= p.queue_capacity) break;
      co_await sim::delay(sched, jittered(poll, rng));
    }
    co_await ec.acquire(p.producer, run.lock).join();
    for (const dsm::Word v : batch) run.queue.push_back(v);
    ec.release(p.producer, run.lock);
  };

  const std::uint32_t batch_max =
      std::max(1u, std::min(p.producer_batch, p.queue_capacity));
  std::vector<dsm::Word> batch;
  for (std::uint32_t t = 0; t < p.total_tasks; ++t) {
    co_await sim::delay(sched, run.times.produce);
    run.meter->add_useful(p.producer, run.times.produce);
    batch.push_back(static_cast<dsm::Word>(t + 1));
    if (batch.size() >= batch_max || t + 1 == p.total_tasks) {
      co_await enqueue_batch(batch).join();
      batch.clear();
    }
  }
  for (std::size_t c = 0; c < n_consumers; ++c) {
    batch.push_back(kPoison);
    if (batch.size() >= batch_max || c + 1 == n_consumers) {
      co_await enqueue_batch(batch).join();
      batch.clear();
    }
  }

  // Completion notification is modelled as free for the baseline (GWC pays
  // for its done-counter updates; the asymmetry favors entry consistency).
  while (run.done < p.total_tasks) co_await run.done_sig->wait();
  run.finished_at = sched.now();
}

sim::Process entry_consumer(EntryRun& run, net::NodeId me) {
  const auto& p = *run.params;
  auto& sched = *run.sched;
  auto& ec = *run.ec;
  sim::Rng rng(0xbeef + p.seed * 0x9e3779b9ull + me * 977);
  const sim::Duration poll = poll_interval(p, run.times);
  sim::Duration cur_poll = poll;

  for (;;) {
    // "The processors must fetch and test a variable written by the
    // producer ... causing network traffic and delays." Each test after an
    // invalidation is a fresh demand-fetch round trip (engine-charged).
    co_await ec.read_nonexclusive(me, run.lock).join();
    if (run.queue.empty()) {
      co_await sim::delay(sched, jittered(cur_poll, rng));
      continue;
    }
    co_await ec.acquire(me, run.lock).join();
    if (run.queue.empty()) {
      ec.release(me, run.lock);
      ++run.wasted_grants;
      cur_poll = std::min<sim::Duration>(cur_poll * 2, poll * 8);
      co_await sim::delay(sched, jittered(cur_poll, rng));
      continue;
    }
    cur_poll = poll;
    const dsm::Word task = run.queue.front();
    run.queue.pop_front();
    ec.release(me, run.lock);

    if (task == kPoison) break;
    co_await sim::delay(sched, run.times.exec);
    run.meter->add_useful(me, run.times.exec);
    ++run.tasks_executed;
    ++run.done;
    run.done_sig->notify_all();
  }
}

}  // namespace

TaskQueueResult run_task_queue_gwc(const TaskQueueParams& params,
                                   const net::Topology& topo,
                                   const dsm::DsmConfig& cfg) {
  return run_gwc_impl(params, topo, cfg);
}

TaskQueueResult run_task_queue_ideal(const TaskQueueParams& params,
                                     const net::Topology& topo) {
  dsm::DsmConfig cfg;
  cfg.link = net::LinkModel::zero();
  cfg.root_process_ns = 0;
  return run_gwc_impl(params, topo, cfg);
}

TaskQueueResult run_task_queue_entry(const TaskQueueParams& params,
                                     const net::Topology& topo,
                                     const net::LinkModel& link) {
  const std::size_t used = params.nodes_used == 0
                               ? topo.size()
                               : std::min(params.nodes_used, topo.size());
  OPTSYNC_EXPECT(used >= 2);
  sim::Scheduler sched;
  net::Network net(sched, topo, link);

  consistency::EntryEngine::Config ec_cfg;
  ec_cfg.cache_reads = true;  // Midway keeps non-exclusive copies valid
                              // until the next exclusive transfer
  consistency::EntryEngine ec(net, ec_cfg);
  // The guarded section is the queue object: head, tail, and the task ring.
  const auto lock =
      ec.create_lock(params.producer, 16 + 8 * params.queue_capacity);

  stats::EfficiencyMeter meter(used);
  sim::Signal done_sig(sched);

  EntryRun run;
  run.params = &params;
  net::CpuModel cpu;  // same 33 MFLOPS CPUs in all variants
  run.times = compute_times(params, cpu);
  run.sched = &sched;
  run.ec = &ec;
  run.lock = lock;
  run.meter = &meter;
  run.done_sig = &done_sig;

  std::vector<sim::Process> procs;
  procs.push_back(entry_producer(run, used - 1));
  for (net::NodeId i = 0; i < used; ++i) {
    if (i == params.producer) continue;
    procs.push_back(entry_consumer(run, i));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  TaskQueueResult res;
  res.elapsed = run.finished_at;
  res.network_power = meter.network_power(res.elapsed);
  res.avg_efficiency = meter.average_efficiency(res.elapsed);
  res.tasks_executed = run.tasks_executed;
  res.messages = net.stats().messages;
  res.bytes = net.stats().bytes;
  res.lock_acquisitions = ec.stats().acquisitions;
  res.wasted_grants = run.wasted_grants;
  res.demand_fetches = ec.stats().demand_fetches;
  res.invalidation_rounds = ec.stats().invalidations;
  return res;
}

}  // namespace optsync::workloads
