#include "workloads/counter.hpp"

#include <vector>

#include "consistency/entry.hpp"
#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"
#include "simkern/random.hpp"
#include "stats/metrics.hpp"
#include "sync/spin_lock.hpp"

namespace optsync::workloads {

namespace {

sim::Duration think_time(const CounterParams& p, sim::Rng& rng) {
  if (!p.jitter) return p.think_mean_ns;
  return static_cast<sim::Duration>(
      rng.exponential(static_cast<double>(p.think_mean_ns)));
}

struct OverheadAccum {
  sim::Duration total = 0;
  std::uint64_t sections = 0;
  void add(sim::Duration wall, sim::Duration compute) {
    total += wall > compute ? wall - compute : 0;
    ++sections;
  }
  [[nodiscard]] double mean() const {
    return sections == 0 ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(sections);
  }
};

// ------------------------------------------------------------------ GWC ---

struct GwcCtx {
  const CounterParams* params;
  dsm::DsmSystem* sys;
  core::OptimisticMutex* mux;
  dsm::VarId counter;
  OverheadAccum overhead;
  // Ground-truth exclusivity check: true while some node is executing the
  // section body with the lock actually required.
  int in_section = 0;
  sim::Time finished_at = 0;
};

sim::Process gwc_counter_node(GwcCtx& ctx, net::NodeId me) {
  const auto& p = *ctx.params;
  auto& sched = ctx.sys->scheduler();
  sim::Rng rng(p.seed ^ (0x9e37ull * (me + 1)));

  for (std::uint32_t k = 0; k < p.increments_per_node; ++k) {
    co_await sim::delay(sched, think_time(p, rng));
    const sim::Time entered = sched.now();

    core::Section sec;
    sec.shared_writes = {ctx.counter};
    sec.body = [&ctx, &sched](dsm::DsmNode& nd) -> sim::Process {
      const dsm::Word before = nd.read(ctx.counter);
      co_await sim::delay(sched, ctx.params->section_ns);
      nd.write(ctx.counter, before + 1);
    };
    co_await ctx.mux->execute(me, sec).join();
    ctx.overhead.add(sched.now() - entered, p.section_ns);
  }
  ctx.finished_at = std::max(ctx.finished_at, sched.now());
}

CounterResult run_gwc(const CounterParams& p, const net::Topology& topo,
                      bool optimistic) {
  sim::Scheduler sched;
  dsm::DsmSystem sys(sched, topo, p.dsm);
  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < topo.size(); ++i) members.push_back(i);
  const dsm::GroupId g = sys.create_group(members, p.group_root);
  const dsm::VarId lock = sys.define_lock("ctr.lock", g);
  const dsm::VarId counter = sys.define_mutex_data("ctr.value", g, lock, 0);

  stats::LockStats lstats;
  lstats.name = "ctr.lock";
  core::OptimisticMutex::Config mcfg;
  mcfg.enable_optimistic = optimistic;
  mcfg.history_threshold = p.history_threshold;
  mcfg.history_decay = p.history_decay;
  mcfg.lock_stats = &lstats;
  core::OptimisticMutex mux(sys, lock, mcfg);

  GwcCtx ctx;
  ctx.params = &p;
  ctx.sys = &sys;
  ctx.mux = &mux;
  ctx.counter = counter;

  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < topo.size(); ++i) {
    procs.push_back(gwc_counter_node(ctx, i));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  CounterResult res;
  res.final_count = sys.node(p.group_root).read(counter);
  res.expected_count =
      static_cast<dsm::Word>(topo.size()) * p.increments_per_node;
  res.elapsed = ctx.finished_at;
  res.sections_per_ms =
      res.elapsed == 0 ? 0.0
                       : static_cast<double>(res.expected_count) /
                             (static_cast<double>(res.elapsed) / 1e6);
  res.messages = sys.network().stats().messages;
  res.rollbacks = mux.stats().rollbacks;
  res.optimistic_attempts = mux.stats().optimistic_attempts;
  res.optimistic_successes = mux.stats().optimistic_successes;
  res.regular_paths = mux.stats().regular_paths;
  res.avg_sync_overhead_ns = ctx.overhead.mean();
  res.faults =
      stats::collect_fault_report(sys.network().stats(), sys.reliable().stats());
  lstats.root_speculative_drops = sys.root_of(g).stats().speculative_drops;
  res.lock_stats = std::move(lstats);
  return res;
}

// ---------------------------------------------------------------- entry ---

struct EntryCtx {
  const CounterParams* params;
  sim::Scheduler* sched;
  consistency::EntryEngine* ec;
  consistency::EntryEngine::LockId lock;
  dsm::Word counter = 0;
  int in_section = 0;
  OverheadAccum overhead;
  sim::Time finished_at = 0;
};

sim::Process entry_counter_node(EntryCtx& ctx, net::NodeId me) {
  const auto& p = *ctx.params;
  auto& sched = *ctx.sched;
  sim::Rng rng(p.seed ^ (0x9e37ull * (me + 1)));

  for (std::uint32_t k = 0; k < p.increments_per_node; ++k) {
    co_await sim::delay(sched, think_time(p, rng));
    const sim::Time entered = sched.now();
    co_await ctx.ec->acquire(me, ctx.lock).join();
    OPTSYNC_ENSURE(++ctx.in_section == 1);
    const dsm::Word before = ctx.counter;
    co_await sim::delay(sched, p.section_ns);
    ctx.counter = before + 1;
    OPTSYNC_ENSURE(--ctx.in_section == 0);
    ctx.ec->release(me, ctx.lock);
    ctx.overhead.add(sched.now() - entered, p.section_ns);
  }
  ctx.finished_at = std::max(ctx.finished_at, sched.now());
}

CounterResult run_entry(const CounterParams& p, const net::Topology& topo) {
  sim::Scheduler sched;
  net::Network net(sched, topo, net::LinkModel::paper());
  consistency::EntryEngine ec(net, consistency::EntryEngine::Config{});
  const auto lock = ec.create_lock(p.group_root, p.entry_data_bytes);

  EntryCtx ctx;
  ctx.params = &p;
  ctx.sched = &sched;
  ctx.ec = &ec;
  ctx.lock = lock;

  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < topo.size(); ++i) {
    procs.push_back(entry_counter_node(ctx, i));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  CounterResult res;
  res.final_count = ctx.counter;
  res.expected_count =
      static_cast<dsm::Word>(topo.size()) * p.increments_per_node;
  res.elapsed = ctx.finished_at;
  res.sections_per_ms =
      res.elapsed == 0 ? 0.0
                       : static_cast<double>(res.expected_count) /
                             (static_cast<double>(res.elapsed) / 1e6);
  res.messages = net.stats().messages;
  res.avg_sync_overhead_ns = ctx.overhead.mean();
  return res;
}

// ------------------------------------------------------------------ TAS ---

struct TasCtx {
  const CounterParams* params;
  sim::Scheduler* sched;
  sync::TasSpinLock* lock;
  dsm::Word counter = 0;
  int in_section = 0;
  OverheadAccum overhead;
  sim::Time finished_at = 0;
};

sim::Process tas_counter_node(TasCtx& ctx, net::NodeId me) {
  const auto& p = *ctx.params;
  auto& sched = *ctx.sched;
  sim::Rng rng(p.seed ^ (0x9e37ull * (me + 1)));

  for (std::uint32_t k = 0; k < p.increments_per_node; ++k) {
    co_await sim::delay(sched, think_time(p, rng));
    const sim::Time entered = sched.now();
    co_await ctx.lock->acquire(me).join();
    OPTSYNC_ENSURE(++ctx.in_section == 1);
    const dsm::Word before = ctx.counter;
    co_await sim::delay(sched, p.section_ns);
    ctx.counter = before + 1;
    OPTSYNC_ENSURE(--ctx.in_section == 0);
    ctx.lock->release(me);
    ctx.overhead.add(sched.now() - entered, p.section_ns);
  }
  ctx.finished_at = std::max(ctx.finished_at, sched.now());
}

CounterResult run_tas(const CounterParams& p, const net::Topology& topo) {
  sim::Scheduler sched;
  net::Network net(sched, topo, net::LinkModel::paper());
  sync::TasSpinLock lock(net, p.group_root, sync::TasSpinLock::Config{});

  TasCtx ctx;
  ctx.params = &p;
  ctx.sched = &sched;
  ctx.lock = &lock;

  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < topo.size(); ++i) {
    procs.push_back(tas_counter_node(ctx, i));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  CounterResult res;
  res.final_count = ctx.counter;
  res.expected_count =
      static_cast<dsm::Word>(topo.size()) * p.increments_per_node;
  res.elapsed = ctx.finished_at;
  res.sections_per_ms =
      res.elapsed == 0 ? 0.0
                       : static_cast<double>(res.expected_count) /
                             (static_cast<double>(res.elapsed) / 1e6);
  res.messages = net.stats().messages;
  res.spin_attempts = lock.stats().attempts;
  res.avg_sync_overhead_ns = ctx.overhead.mean();
  return res;
}

}  // namespace

CounterResult run_counter(CounterMethod method, const CounterParams& params,
                          const net::Topology& topo) {
  OPTSYNC_EXPECT(topo.size() >= 1);
  switch (method) {
    case CounterMethod::kOptimisticGwc:
      return run_gwc(params, topo, /*optimistic=*/true);
    case CounterMethod::kRegularGwc:
      return run_gwc(params, topo, /*optimistic=*/false);
    case CounterMethod::kEntry:
      return run_entry(params, topo);
    case CounterMethod::kTasSpin:
      return run_tas(params, topo);
  }
  OPTSYNC_ENSURE(false && "unreachable: unknown CounterMethod");
  return {};
}

}  // namespace optsync::workloads
