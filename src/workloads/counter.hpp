// Contended shared counter — the ablation workload.
//
// Every node repeatedly: thinks (uncontended local work), then increments a
// single shared counter inside a critical section. Sweeping the think time
// moves the lock from idle to saturated, which is exactly the regime knob
// the optimistic/regular decision (usage-frequency history) responds to.
// The final counter value doubles as a mutual-exclusion correctness check:
// it must equal nodes * increments under every method, including failed
// speculations that rolled back.
#pragma once

#include <cstdint>

#include "dsm/types.hpp"
#include "net/topology.hpp"
#include "simkern/time.hpp"
#include "stats/lock_stats.hpp"
#include "stats/metrics.hpp"

namespace optsync::workloads {

enum class CounterMethod {
  kOptimisticGwc,  ///< OptimisticMutex, history-gated speculation
  kRegularGwc,     ///< GWC queue lock, no speculation
  kEntry,          ///< entry consistency baseline
  kTasSpin         ///< test-and-set spin lock baseline
};

struct CounterParams {
  std::uint32_t increments_per_node = 50;
  sim::Duration section_ns = 1'000;
  /// Mean think time between sections; smaller = more contention.
  sim::Duration think_mean_ns = 50'000;
  /// Exponentially distributed think times when true, fixed when false.
  bool jitter = true;
  std::uint64_t seed = 42;
  double history_threshold = 0.30;
  double history_decay = 0.95;
  net::NodeId group_root = 0;
  std::uint32_t entry_data_bytes = 64;
  /// Substrate configuration for the GWC variants — carries the fault plan
  /// and reliable-transport knobs for fault sweeps (ablation_fault_rate,
  /// the soak tests). The entry/TAS baselines ignore it.
  dsm::DsmConfig dsm;
};

struct CounterResult {
  dsm::Word final_count = 0;
  dsm::Word expected_count = 0;
  sim::Time elapsed = 0;
  double sections_per_ms = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t optimistic_attempts = 0;
  std::uint64_t optimistic_successes = 0;
  std::uint64_t regular_paths = 0;
  std::uint64_t spin_attempts = 0;  ///< TAS round trips (kTasSpin only)
  /// Mean time from deciding to enter until release completes, minus the
  /// section compute itself: pure synchronization overhead per section.
  double avg_sync_overhead_ns = 0.0;
  /// Injection/reliability counters (all zero when the run had no faults
  /// and the reliable layer was off). GWC variants only.
  stats::FaultReport faults;
  /// Per-lock observability record for the counter's one lock: acquire/hold
  /// latency histograms, speculation outcomes, history-gate decisions.
  /// GWC variants only (empty for the entry/TAS baselines).
  stats::LockStats lock_stats;
};

CounterResult run_counter(CounterMethod method, const CounterParams& params,
                          const net::Topology& topo);

}  // namespace optsync::workloads
