#include "workloads/scenario_fig7.hpp"

#include <sstream>
#include <vector>

#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "net/topology.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"

namespace optsync::workloads {

namespace {

// The update of Fig. 7: the new value depends on the old one, which is what
// makes stale speculation observable (a = 2a + 1 distinguishes orderings).
constexpr dsm::Word update(dsm::Word a) { return 2 * a + 1; }

sim::Process requester(dsm::DsmSystem& sys, core::OptimisticMutex& mux,
                       dsm::VarId a, net::NodeId me, sim::Duration start_at,
                       sim::Duration section_ns, core::ExecuteStats* stats) {
  auto& sched = sys.scheduler();
  co_await sim::delay(sched, start_at);
  core::Section sec;
  sec.shared_writes = {a};
  sec.body = [&sys, &sched, a, section_ns](dsm::DsmNode& nd) -> sim::Process {
    (void)sys;
    const dsm::Word before = nd.read(a);
    co_await sim::delay(sched, section_ns);
    nd.write(a, update(before));
  };
  co_await mux.execute(me, sec, stats).join();
}

}  // namespace

Fig7Result run_scenario_fig7(const Fig7Params& p) {
  OPTSYNC_EXPECT(p.nodes >= 3);
  sim::Scheduler sched;
  net::Ring topo(p.nodes);

  dsm::DsmSystem sys(sched, topo, p.dsm);
  const net::NodeId root = 0;
  const net::NodeId near = 1;  // one hop from the root: its request wins
  const auto far = static_cast<net::NodeId>(p.nodes / 2);  // opposite side

  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < p.nodes; ++i) members.push_back(i);
  const dsm::GroupId g = sys.create_group(members, root);
  const dsm::VarId lock = sys.define_lock("fig7.lock", g);
  constexpr dsm::Word kInitial = 3;
  const dsm::VarId a = sys.define_mutex_data("fig7.a", g, lock, kInitial);

  stats::LockStats lstats;
  lstats.name = "fig7.lock";
  core::OptimisticMutex::Config mcfg;
  mcfg.lock_stats = &lstats;
  core::OptimisticMutex mux(sys, lock, mcfg);

  // Capture the message-level interaction.
  std::ostringstream trace;
  sys.network().set_trace_hook([&trace, &sched](const net::MessageTrace& m) {
    trace << "[" << sim::format_time(sched.now()) << "] n" << m.src << " -> n"
          << m.dst << "  " << m.tag << " (" << m.bytes << "B, sent "
          << sim::format_time(m.sent_at) << ")\n";
  });

  core::ExecuteStats near_stats;
  core::ExecuteStats far_stats;
  // Both see a free lock and speculate; the near node's request reaches the
  // root first, so the far node's speculation must roll back.
  auto pn = requester(sys, mux, a, near, 0, p.near_section_ns, &near_stats);
  auto pf = requester(sys, mux, a, far, p.near_head_start_ns,
                      p.far_section_ns, &far_stats);
  sched.run();
  pn.rethrow_if_failed();
  pf.rethrow_if_failed();
  OPTSYNC_ENSURE(pn.done() && pf.done());

  Fig7Result res;
  res.final_a = sys.node(root).read(a);
  res.expected_a = update(update(kInitial));
  res.rollbacks = mux.stats().rollbacks;
  res.speculative_drops = sys.root_of(g).stats().speculative_drops;
  res.echoes_dropped = sys.node(far).stats().echoes_dropped;
  res.far_used_optimistic = far_stats.used_optimistic;
  res.near_used_optimistic = near_stats.used_optimistic;
  res.elapsed = sched.now();
  res.trace = trace.str();
  res.faults =
      stats::collect_fault_report(sys.network().stats(), sys.reliable().stats());
  lstats.root_speculative_drops = res.speculative_drops;
  res.lock_stats = std::move(lstats);
  return res;
}

}  // namespace optsync::workloads
