// Linear pipeline workload (paper §4.1 / Fig. 8).
//
// "Each processor repeatedly waits for data from processor i-1, performs
// local computations, gets a lock, performs more local computations and
// updates shared data in a mutually exclusive section. After releasing the
// lock, it calculates new data and shares it with processor i+1. Processor i
// then continues local calculations before looping again."
//
// One wavefront circulates a ring of N processors for `data_items` total
// hops (1024 data -> 1024/N iterations per processor, "from 1024 to 8
// iterations of the main loop" for 1..128 CPUs). Exactly one processor wants
// the single global mutex at a time — the pipeline serializes requests — so
// "there is no contention ... and no rollbacks occur": the workload isolates
// how much of the lock round trip each method hides.
//
// Methods (the figure's four lines):
//   kNoDelay    — zero network delay: the "maximum network speedup
//                 (1.89 for 2 or more processors)" bound (linear pipelining
//                 keeps it below 2);
//   kOptimistic — optimistic mutual exclusion under GWC;
//   kRegular    — non-optimistic GWC queue lock;
//   kEntry      — entry consistency (data travels with the lock; pipeline
//                 data is demand-fetched).
#pragma once

#include <cstdint>

#include "dsm/types.hpp"
#include "net/topology.hpp"
#include "simkern/time.hpp"
#include "stats/lock_stats.hpp"

namespace optsync::workloads {

enum class PipelineMethod { kNoDelay, kOptimistic, kRegular, kEntry };

struct PipelineParams {
  /// Total wavefront hops; each processor runs data_items / N iterations.
  std::uint32_t data_items = 1024;

  /// One set of local calculations (the paper's "local task"):
  /// 165 flops at 33 MFLOPS = 5 us.
  std::uint64_t local_flops = 165;

  /// Mutex section compute = mutex_ratio * local compute. The paper selects
  /// the ratio so the section is "smaller than the local task time, but not
  /// so small that local calculations completely dominate" and so the lock
  /// request delay "can initially be overlapped by calculations" — 1/5.
  double mutex_ratio = 0.2;

  /// Pipeline datum size (written by i, read by i+1).
  std::uint32_t pipe_data_bytes = 32;

  /// Size of the data guarded by the mutex; entry consistency ships it with
  /// every grant ("extra time ... to transmit the shared data").
  std::uint32_t mutex_data_bytes = 640;

  net::NodeId group_root = 0;

  /// Substrate config for the GWC variants (coalescing, reliability, the
  /// recorder). kNoDelay overrides the link/root costs on a copy; kEntry
  /// ignores it entirely.
  dsm::DsmConfig dsm;
};

struct PipelineResult {
  double network_power = 0.0;
  double avg_efficiency = 0.0;
  sim::Time elapsed = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t optimistic_attempts = 0;
  std::uint64_t optimistic_successes = 0;
  std::uint64_t rollbacks = 0;
  /// Final value of the mutex-updated accumulator; equals the hop count in
  /// every correct run (used by the integration tests).
  std::int64_t shared_accumulator = 0;
  /// Per-lock observability record for pipe.lock (GWC variants only).
  stats::LockStats lock_stats;
};

PipelineResult run_pipeline(PipelineMethod method, const PipelineParams& p,
                            const net::Topology& topo);

}  // namespace optsync::workloads
